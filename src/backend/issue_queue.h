// Out-of-order issue queue of one cluster. Holds dispatched µops until
// their source operands (physical registers in *this* cluster) are ready.
// Selection is age-ordered among ready entries, subject to the cluster's
// issue-port constraints (arbitrated by the core's issue stage).
//
// Readiness is event-driven, modelling the paper's IQ wakeup CAM: a source
// that is not ready at dispatch registers a *watch* on its physical
// register; when the producer completes, wakeup() walks that register's
// consumer list, and an entry whose last missing source arrived moves onto
// its thread's age-ordered ready list. The issue stage therefore scans
// only ready entries instead of re-probing every occupied slot every
// cycle.
//
// Age and ready lists are intrusive and kept *per thread*: a thread
// dispatches in program order and its producers complete in rough program
// order, so per-thread inserts are O(1) appends near the tail — whereas a
// single cross-thread list degrades to deep walks whenever two threads'
// sequence counters diverge. Global age order (seq, then thread id) is
// recovered on demand by OrderedIter, a k-way merge over the at-most-
// kMaxThreads per-thread lists.
#pragma once

#include <cstdint>
#include <vector>

#include "common/phys_ref.h"
#include "common/types.h"
#include "trace/uop.h"

namespace clusmt::backend {

/// Issue-queue entry. `rob_ref` is an opaque handle the core uses to map a
/// granted entry back to its in-flight µop.
struct IqEntry {
  ThreadId tid = -1;
  std::uint64_t seq = 0;  // per-thread age; ties broken by thread id
  trace::UopClass cls = trace::UopClass::kIntAlu;
  PhysRef src0;           // invalid => no register dependency
  PhysRef src1;
  std::uint64_t rob_ref = 0;
};

class IssueQueue {
 public:
  /// Merged age-ordered cursor over the per-thread lists (oldest first:
  /// lowest (seq, tid)). next() returns -1 at the end. The cursor is
  /// advanced past a slot *before* that slot is handed out, so the caller
  /// may remove the returned slot (issue grant) while iterating; inserting
  /// or removing any *other* slot invalidates the cursor.
  class OrderedIter {
   public:
    [[nodiscard]] int next();

   private:
    friend class IssueQueue;
    OrderedIter(const IssueQueue& iq, const int* heads, bool ready_links);
    const IssueQueue* iq_;
    bool ready_links_;
    int cursor_[kMaxThreads];
  };

  explicit IssueQueue(int capacity);

  /// Inserts an entry; returns the slot index or -1 when full.
  /// `src0_ready`/`src1_ready` carry the dispatch-time readiness of the
  /// matching source register (invalid refs carry no dependency and are
  /// always treated as ready). A not-ready source registers a wakeup watch
  /// on its register; the watch is torn down by wakeup() or remove().
  int insert(const IqEntry& entry, bool src0_ready = true,
             bool src1_ready = true);

  /// Frees a slot (issue grant or squash) in O(1), unregistering any
  /// wakeup watches the entry still holds.
  void remove(int slot);

  /// Producer completion for register `(cls, index)`: clears the watch of
  /// every consumer; entries whose last missing source this was move onto
  /// their thread's ready list.
  void wakeup(RegClass cls, std::int16_t index);

  [[nodiscard]] const IqEntry& entry(int slot) const;
  [[nodiscard]] bool occupied(int slot) const;
  /// True when every source of the entry at `slot` is ready.
  [[nodiscard]] bool entry_ready(int slot) const;

  [[nodiscard]] int capacity() const noexcept { return capacity_; }
  [[nodiscard]] int occupancy() const noexcept { return occupancy_; }
  [[nodiscard]] int occupancy_of(ThreadId tid) const {
    return per_thread_[tid];
  }
  [[nodiscard]] bool full() const noexcept { return occupancy_ == capacity_; }

  /// Entries of `tid` still waiting on at least one source (the paper's
  /// per-thread IQ unready counters, maintained incrementally).
  [[nodiscard]] int waiting_of(ThreadId tid) const {
    return per_thread_[tid] - ready_per_thread_[tid];
  }
  [[nodiscard]] int ready_count() const noexcept { return ready_count_; }

  /// True when register `(cls, index)` has at least one registered watch.
  [[nodiscard]] bool has_consumers(RegClass cls, std::int16_t index) const;

  /// Merged oldest-first cursor over all occupied entries.
  [[nodiscard]] OrderedIter age_iter() const {
    return OrderedIter(*this, age_head_, /*ready_links=*/false);
  }
  /// Merged oldest-first cursor over ready entries only.
  [[nodiscard]] OrderedIter ready_iter() const {
    return OrderedIter(*this, ready_head_, /*ready_links=*/true);
  }

  /// Cross-checks every incrementally-maintained structure (occupancy
  /// counters, per-thread list order, ready membership, watch links)
  /// against first principles. Test/debug aid; returns false on any drift.
  [[nodiscard]] bool validate() const;

 private:
  struct Slot {
    IqEntry entry;
    bool in_use = false;
    std::uint8_t unready = 0;     // sources still watched
    std::uint8_t watch_mask = 0;  // bit i: source i is on a consumer list
    // Intrusive links within the owning thread's lists.
    int age_prev = -1;
    int age_next = -1;
    int ready_prev = -1;
    int ready_next = -1;
    // Consumer-list links per source; a link value encodes (slot << 1) | i.
    std::int32_t cons_prev[2] = {-1, -1};
    std::int32_t cons_next[2] = {-1, -1};
  };

  void thread_list_insert(int slot, int* head, int* tail,
                          int Slot::* prev_link, int Slot::* next_link);
  void thread_list_remove(int slot, int* head, int* tail,
                          int Slot::* prev_link, int Slot::* next_link);
  void ready_list_insert(int slot);
  void watch_source(int slot, int i, const PhysRef& ref);
  void unwatch_source(int slot, int i);

  std::vector<Slot> slots_;
  std::vector<int> free_slots_;
  // Per-register consumer-list heads, grown on demand to the largest
  // watched register index (unbounded register files stay cheap until a
  // high index is actually watched).
  std::vector<std::int32_t> watch_heads_[kNumRegClasses];
  int age_head_[kMaxThreads];
  int age_tail_[kMaxThreads];
  int ready_head_[kMaxThreads];
  int ready_tail_[kMaxThreads];
  int capacity_;
  int occupancy_ = 0;
  int ready_count_ = 0;
  int per_thread_[kMaxThreads] = {};
  int ready_per_thread_[kMaxThreads] = {};
};

}  // namespace clusmt::backend
