// Out-of-order issue queue of one cluster. Holds dispatched µops until
// their source operands (physical registers in *this* cluster) are ready.
// Selection is age-ordered among ready entries, subject to the cluster's
// issue-port constraints (arbitrated by the core's issue stage).
#pragma once

#include <cstdint>
#include <vector>

#include "common/phys_ref.h"
#include "common/types.h"
#include "trace/uop.h"

namespace clusmt::backend {

/// Issue-queue entry. `rob_ref` is an opaque handle the core uses to map a
/// granted entry back to its in-flight µop.
struct IqEntry {
  ThreadId tid = -1;
  std::uint64_t seq = 0;  // per-thread age; ties broken by thread id
  trace::UopClass cls = trace::UopClass::kIntAlu;
  PhysRef src0;           // invalid => no register dependency
  PhysRef src1;
  std::uint64_t rob_ref = 0;
};

class IssueQueue {
 public:
  explicit IssueQueue(int capacity);

  /// Inserts an entry; returns the slot index or -1 when full.
  int insert(const IqEntry& entry);

  /// Frees a slot (issue grant or squash).
  void remove(int slot);

  [[nodiscard]] const IqEntry& entry(int slot) const;
  [[nodiscard]] bool occupied(int slot) const;

  [[nodiscard]] int capacity() const noexcept { return capacity_; }
  [[nodiscard]] int occupancy() const noexcept { return occupancy_; }
  [[nodiscard]] int occupancy_of(ThreadId tid) const {
    return per_thread_[tid];
  }
  [[nodiscard]] bool full() const noexcept { return occupancy_ == capacity_; }

  /// Occupied slot indices sorted oldest-first (seq, then thread id),
  /// maintained incrementally on insert/remove. The reference is
  /// invalidated by insert/remove — callers that mutate while iterating
  /// must take a copy.
  [[nodiscard]] const std::vector<int>& slots_by_age() const noexcept {
    return order_;
  }

 private:
  struct Slot {
    IqEntry entry;
    bool in_use = false;
  };

  /// True when entry at slot `a` is older than the one at `b`.
  [[nodiscard]] bool older(int a, int b) const noexcept;

  std::vector<Slot> slots_;
  std::vector<int> free_slots_;
  std::vector<int> order_;  // occupied slots, oldest first
  int capacity_;
  int occupancy_ = 0;
  int per_thread_[kMaxThreads] = {};
};

}  // namespace clusmt::backend
