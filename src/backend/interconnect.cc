#include "backend/interconnect.h"

#include <stdexcept>

namespace clusmt::backend {

Interconnect::Interconnect(int num_links, int latency_cycles)
    : num_links_(num_links), latency_(latency_cycles) {
  if (num_links < 1) throw std::invalid_argument("need at least one link");
  if (latency_cycles < 0) throw std::invalid_argument("negative latency");
}

void Interconnect::set_pair_latency(int from, int to, int latency_cycles) {
  if (from < 0 || from >= kMaxClusters || to < 0 || to >= kMaxClusters) {
    throw std::invalid_argument("cluster pair out of range");
  }
  if (latency_cycles < 0) throw std::invalid_argument("negative latency");
  pair_latency_[from][to] = latency_cycles;
}

bool Interconnect::try_acquire() noexcept {
  if (used_this_cycle_ >= num_links_) {
    ++stats_.denied;
    return false;
  }
  ++used_this_cycle_;
  ++stats_.transfers;
  return true;
}

}  // namespace clusmt::backend
