// Issue-port model of one cluster (paper Table 1):
//   Port 0: int, fp, simd     Port 1: int, fp, simd     Port 2: int, mem
// Each port accepts one µop per cycle. Figure 5's workload-imbalance
// accounting asks, per port class, whether a cluster had a free compatible
// port after selection — exposed here via free_compatible().
#pragma once

#include <array>

#include "trace/uop.h"

namespace clusmt::backend {

class PortSet {
 public:
  static constexpr int kNumPorts = 3;

  /// Resets all ports to free (start of cycle).
  void new_cycle() noexcept { busy_ = {}; }

  /// Books a free port compatible with `cls`; false when none remains.
  bool try_book(trace::PortClass cls) noexcept;

  /// Number of free ports still compatible with `cls`.
  [[nodiscard]] int free_compatible(trace::PortClass cls) const noexcept;

  [[nodiscard]] bool port_busy(int port) const noexcept {
    return busy_[port];
  }

  /// True when every port is booked this cycle (no class can issue).
  [[nodiscard]] bool all_booked() const noexcept {
    return busy_[0] && busy_[1] && busy_[2];
  }

  /// Static compatibility: can `port` execute µops of `cls`?
  [[nodiscard]] static constexpr bool compatible(
      int port, trace::PortClass cls) noexcept {
    switch (cls) {
      case trace::PortClass::kInt:
        return true;  // all three ports execute integer µops
      case trace::PortClass::kFpSimd:
        return port == 0 || port == 1;
      case trace::PortClass::kMem:
        return port == 2;
    }
    return false;
  }

 private:
  std::array<bool, kNumPorts> busy_ = {};
};

}  // namespace clusmt::backend
