// Issue-port model of one cluster. At the paper's width of 3 (Table 1):
//   Port 0: int, fp, simd     Port 1: int, fp, simd     Port 2: int, mem
// Heterogeneous grids vary the width per cluster; the mix generalizes as
// "last port is int+mem, every earlier port is int+fp/simd" (a width-1
// cluster has one universal port), which reproduces Table 1 exactly at
// width 3. Each port accepts one µop per cycle. Figure 5's workload-
// imbalance accounting asks, per port class, whether a cluster had a free
// compatible port after selection — exposed here via free_compatible().
#pragma once

#include <array>

#include "trace/uop.h"

namespace clusmt::backend {

class PortSet {
 public:
  static constexpr int kNumPorts = 3;  // paper Table 1 width
  static constexpr int kMaxPorts = 8;  // hard bound on per-cluster width

  PortSet() noexcept = default;
  explicit PortSet(int num_ports) noexcept : num_ports_(num_ports) {}

  [[nodiscard]] int num_ports() const noexcept { return num_ports_; }

  /// Resets all ports to free (start of cycle).
  void new_cycle() noexcept { busy_ = {}; }

  /// Books a free port compatible with `cls`; false when none remains.
  bool try_book(trace::PortClass cls) noexcept;

  /// Number of free ports still compatible with `cls`.
  [[nodiscard]] int free_compatible(trace::PortClass cls) const noexcept;

  [[nodiscard]] bool port_busy(int port) const noexcept {
    return busy_[port];
  }

  /// True when every port is booked this cycle (no class can issue).
  [[nodiscard]] bool all_booked() const noexcept {
    for (int p = 0; p < num_ports_; ++p) {
      if (!busy_[p]) return false;
    }
    return true;
  }

  /// Compatibility under the generalized mix: can `port` of a
  /// `num_ports`-wide cluster execute µops of `cls`?
  [[nodiscard]] static constexpr bool compatible(
      int port, trace::PortClass cls, int num_ports = kNumPorts) noexcept {
    switch (cls) {
      case trace::PortClass::kInt:
        return true;  // every port executes integer µops
      case trace::PortClass::kFpSimd:
        return num_ports == 1 || port < num_ports - 1;
      case trace::PortClass::kMem:
        return port == num_ports - 1;
    }
    return false;
  }

 private:
  int num_ports_ = kNumPorts;
  std::array<bool, kMaxPorts> busy_ = {};
};

}  // namespace clusmt::backend
