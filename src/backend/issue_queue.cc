#include "backend/issue_queue.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace clusmt::backend {

IssueQueue::IssueQueue(int capacity) : capacity_(capacity) {
  if (capacity < 1) throw std::invalid_argument("IQ capacity < 1");
  slots_.resize(static_cast<std::size_t>(capacity));
  free_slots_.reserve(static_cast<std::size_t>(capacity));
  order_.reserve(static_cast<std::size_t>(capacity));
  for (int i = capacity - 1; i >= 0; --i) free_slots_.push_back(i);
}

bool IssueQueue::older(int a, int b) const noexcept {
  const IqEntry& ea = slots_[a].entry;
  const IqEntry& eb = slots_[b].entry;
  if (ea.seq != eb.seq) return ea.seq < eb.seq;
  return ea.tid < eb.tid;
}

int IssueQueue::insert(const IqEntry& entry) {
  assert(entry.tid >= 0 && entry.tid < kMaxThreads);
  if (free_slots_.empty()) return -1;
  const int slot = free_slots_.back();
  free_slots_.pop_back();
  slots_[slot].entry = entry;
  slots_[slot].in_use = true;
  ++occupancy_;
  ++per_thread_[entry.tid];
  // Insertions arrive in (nearly) program order, so the binary-searched
  // position is almost always the back: amortised O(1).
  auto pos = std::lower_bound(
      order_.begin(), order_.end(), slot,
      [this](int a, int b) { return older(a, b); });
  order_.insert(pos, slot);
  return slot;
}

void IssueQueue::remove(int slot) {
  Slot& s = slots_.at(slot);
  assert(s.in_use);
  const auto pos = std::find(order_.begin(), order_.end(), slot);
  assert(pos != order_.end());
  order_.erase(pos);
  s.in_use = false;
  --occupancy_;
  --per_thread_[s.entry.tid];
  assert(per_thread_[s.entry.tid] >= 0);
  free_slots_.push_back(slot);
}

const IqEntry& IssueQueue::entry(int slot) const {
  const Slot& s = slots_.at(slot);
  assert(s.in_use);
  return s.entry;
}

bool IssueQueue::occupied(int slot) const { return slots_.at(slot).in_use; }

}  // namespace clusmt::backend
