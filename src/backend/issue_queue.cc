#include "backend/issue_queue.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace clusmt::backend {

namespace {

[[nodiscard]] constexpr std::int32_t cons_ref(int slot, int i) noexcept {
  return static_cast<std::int32_t>(slot << 1) | i;
}
[[nodiscard]] constexpr int cons_slot(std::int32_t ref) noexcept {
  return static_cast<int>(ref >> 1);
}
[[nodiscard]] constexpr int cons_src(std::int32_t ref) noexcept {
  return static_cast<int>(ref & 1);
}

}  // namespace

IssueQueue::OrderedIter::OrderedIter(const IssueQueue& iq, const int* heads,
                                     bool ready_links)
    : iq_(&iq), ready_links_(ready_links) {
  for (int t = 0; t < kMaxThreads; ++t) cursor_[t] = heads[t];
}

int IssueQueue::OrderedIter::next() {
  // Global age order is (seq, tid); each per-thread list is seq-sorted, so
  // the oldest remaining entry is the minimum-seq head (ties resolved by
  // the ascending thread order of the scan itself).
  int best_t = -1;
  std::uint64_t best_seq = 0;
  for (int t = 0; t < kMaxThreads; ++t) {
    const int slot = cursor_[t];
    if (slot == -1) continue;
    const std::uint64_t seq = iq_->slots_[slot].entry.seq;
    if (best_t < 0 || seq < best_seq) {
      best_t = t;
      best_seq = seq;
    }
  }
  if (best_t < 0) return -1;
  const int slot = cursor_[best_t];
  const auto& s = iq_->slots_[slot];
  cursor_[best_t] = ready_links_ ? s.ready_next : s.age_next;
  return slot;
}

IssueQueue::IssueQueue(int capacity) : capacity_(capacity) {
  if (capacity < 1) throw std::invalid_argument("IQ capacity < 1");
  slots_.resize(static_cast<std::size_t>(capacity));
  free_slots_.reserve(static_cast<std::size_t>(capacity));
  for (int i = capacity - 1; i >= 0; --i) free_slots_.push_back(i);
  for (int t = 0; t < kMaxThreads; ++t) {
    age_head_[t] = age_tail_[t] = -1;
    ready_head_[t] = ready_tail_[t] = -1;
  }
}

void IssueQueue::thread_list_insert(int slot, int* head, int* tail,
                                    int Slot::* prev_link,
                                    int Slot::* next_link) {
  // Entries of one thread arrive in (nearly) increasing seq, so walking
  // back from the tail finds the position in amortised O(1).
  const std::uint64_t seq = slots_[slot].entry.seq;
  int after = *tail;
  while (after != -1 && seq < slots_[after].entry.seq) {
    after = slots_[after].*prev_link;
  }
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  s.*prev_link = after;
  if (after == -1) {
    s.*next_link = *head;
    *head = slot;
  } else {
    s.*next_link = slots_[after].*next_link;
    slots_[after].*next_link = slot;
  }
  if (s.*next_link == -1) {
    *tail = slot;
  } else {
    slots_[s.*next_link].*prev_link = slot;
  }
}

void IssueQueue::thread_list_remove(int slot, int* head, int* tail,
                                    int Slot::* prev_link,
                                    int Slot::* next_link) {
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  if (s.*prev_link == -1) {
    *head = s.*next_link;
  } else {
    slots_[s.*prev_link].*next_link = s.*next_link;
  }
  if (s.*next_link == -1) {
    *tail = s.*prev_link;
  } else {
    slots_[s.*next_link].*prev_link = s.*prev_link;
  }
  s.*prev_link = s.*next_link = -1;
}

void IssueQueue::ready_list_insert(int slot) {
  const ThreadId tid = slots_[slot].entry.tid;
  thread_list_insert(slot, &ready_head_[tid], &ready_tail_[tid],
                     &Slot::ready_prev, &Slot::ready_next);
  ++ready_per_thread_[tid];
  ++ready_count_;
}

void IssueQueue::watch_source(int slot, int i, const PhysRef& ref) {
  auto& heads = watch_heads_[static_cast<int>(ref.cls)];
  if (static_cast<std::size_t>(ref.index) >= heads.size()) {
    heads.resize(static_cast<std::size_t>(ref.index) + 1, -1);
  }
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  const std::int32_t ref_id = cons_ref(slot, i);
  const std::int32_t head = heads[static_cast<std::size_t>(ref.index)];
  s.cons_prev[i] = -1;
  s.cons_next[i] = head;
  if (head != -1) slots_[cons_slot(head)].cons_prev[cons_src(head)] = ref_id;
  heads[static_cast<std::size_t>(ref.index)] = ref_id;
  s.watch_mask |= static_cast<std::uint8_t>(1u << i);
  ++s.unready;
}

void IssueQueue::unwatch_source(int slot, int i) {
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  const PhysRef& ref = i == 0 ? s.entry.src0 : s.entry.src1;
  auto& heads = watch_heads_[static_cast<int>(ref.cls)];
  const std::int32_t prev = s.cons_prev[i];
  const std::int32_t next = s.cons_next[i];
  if (prev == -1) {
    heads[static_cast<std::size_t>(ref.index)] = next;
  } else {
    slots_[cons_slot(prev)].cons_next[cons_src(prev)] = next;
  }
  if (next != -1) slots_[cons_slot(next)].cons_prev[cons_src(next)] = prev;
  s.cons_prev[i] = s.cons_next[i] = -1;
  s.watch_mask &= static_cast<std::uint8_t>(~(1u << i));
  --s.unready;
}

int IssueQueue::insert(const IqEntry& entry, bool src0_ready,
                       bool src1_ready) {
  assert(entry.tid >= 0 && entry.tid < kMaxThreads);
  if (free_slots_.empty()) return -1;
  const int slot = free_slots_.back();
  free_slots_.pop_back();
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  s.entry = entry;
  s.in_use = true;
  s.unready = 0;
  s.watch_mask = 0;
  ++occupancy_;
  ++per_thread_[entry.tid];
  thread_list_insert(slot, &age_head_[entry.tid], &age_tail_[entry.tid],
                     &Slot::age_prev, &Slot::age_next);
  if (entry.src0.valid() && !src0_ready) watch_source(slot, 0, entry.src0);
  if (entry.src1.valid() && !src1_ready) watch_source(slot, 1, entry.src1);
  if (s.unready == 0) ready_list_insert(slot);
  return slot;
}

void IssueQueue::remove(int slot) {
  Slot& s = slots_.at(static_cast<std::size_t>(slot));
  assert(s.in_use);
  const ThreadId tid = s.entry.tid;
  if (s.unready == 0) {
    thread_list_remove(slot, &ready_head_[tid], &ready_tail_[tid],
                       &Slot::ready_prev, &Slot::ready_next);
    --ready_per_thread_[tid];
    --ready_count_;
  } else {
    if (s.watch_mask & 1u) unwatch_source(slot, 0);
    if (s.watch_mask & 2u) unwatch_source(slot, 1);
    s.unready = 0;
  }
  thread_list_remove(slot, &age_head_[tid], &age_tail_[tid], &Slot::age_prev,
                     &Slot::age_next);
  s.in_use = false;
  --occupancy_;
  --per_thread_[tid];
  assert(per_thread_[tid] >= 0);
  free_slots_.push_back(slot);
}

void IssueQueue::wakeup(RegClass cls, std::int16_t index) {
  auto& heads = watch_heads_[static_cast<int>(cls)];
  if (static_cast<std::size_t>(index) >= heads.size()) return;
  std::int32_t ref = heads[static_cast<std::size_t>(index)];
  heads[static_cast<std::size_t>(index)] = -1;
  while (ref != -1) {
    const int slot = cons_slot(ref);
    const int i = cons_src(ref);
    Slot& s = slots_[static_cast<std::size_t>(slot)];
    assert(s.in_use && (s.watch_mask & (1u << i)));
    ref = s.cons_next[i];
    s.cons_prev[i] = s.cons_next[i] = -1;
    s.watch_mask &= static_cast<std::uint8_t>(~(1u << i));
    if (--s.unready == 0) ready_list_insert(slot);
  }
}

const IqEntry& IssueQueue::entry(int slot) const {
  const Slot& s = slots_.at(static_cast<std::size_t>(slot));
  assert(s.in_use);
  return s.entry;
}

bool IssueQueue::occupied(int slot) const {
  return slots_.at(static_cast<std::size_t>(slot)).in_use;
}

bool IssueQueue::entry_ready(int slot) const {
  const Slot& s = slots_.at(static_cast<std::size_t>(slot));
  assert(s.in_use);
  return s.unready == 0;
}

bool IssueQueue::has_consumers(RegClass cls, std::int16_t index) const {
  const auto& heads = watch_heads_[static_cast<int>(cls)];
  return static_cast<std::size_t>(index) < heads.size() &&
         heads[static_cast<std::size_t>(index)] != -1;
}

bool IssueQueue::validate() const {
  int occupied_count = 0;
  int per_thread[kMaxThreads] = {};
  int ready[kMaxThreads] = {};
  for (int slot = 0; slot < capacity_; ++slot) {
    const Slot& s = slots_[static_cast<std::size_t>(slot)];
    if (!s.in_use) continue;
    ++occupied_count;
    ++per_thread[s.entry.tid];
    if (s.unready == 0) ++ready[s.entry.tid];
    // unready must mirror the watch mask, and each watched source must sit
    // on the consumer list of its own register (reachable from the head).
    int watched = 0;
    for (int i = 0; i < 2; ++i) {
      if (!(s.watch_mask & (1u << i))) continue;
      ++watched;
      const PhysRef& ref = i == 0 ? s.entry.src0 : s.entry.src1;
      if (!ref.valid()) return false;
      const auto& heads = watch_heads_[static_cast<int>(ref.cls)];
      if (static_cast<std::size_t>(ref.index) >= heads.size()) return false;
      std::int32_t cur = heads[static_cast<std::size_t>(ref.index)];
      bool found = false;
      while (cur != -1) {
        if (cur == cons_ref(slot, i)) found = true;
        const Slot& node = slots_[static_cast<std::size_t>(cons_slot(cur))];
        cur = node.cons_next[cons_src(cur)];
      }
      if (!found) return false;
    }
    if (watched != s.unready) return false;
  }
  if (occupied_count != occupancy_) return false;
  int ready_total = 0;
  for (int t = 0; t < kMaxThreads; ++t) {
    if (per_thread[t] != per_thread_[t]) return false;
    if (ready[t] != ready_per_thread_[t]) return false;
    ready_total += ready[t];
  }
  if (ready_total != ready_count_) return false;
  // Per-thread lists must cover exactly their slot sets in seq order, and
  // every listed slot must belong to the thread whose list holds it.
  for (int t = 0; t < kMaxThreads; ++t) {
    int walked = 0;
    for (int slot = age_head_[t]; slot != -1;
         slot = slots_[static_cast<std::size_t>(slot)].age_next) {
      const Slot& s = slots_[static_cast<std::size_t>(slot)];
      if (!s.in_use || s.entry.tid != t) return false;
      if (s.age_next != -1 &&
          s.entry.seq >= slots_[static_cast<std::size_t>(s.age_next)]
                             .entry.seq) {
        return false;
      }
      ++walked;
    }
    if (walked != per_thread_[t]) return false;
    walked = 0;
    for (int slot = ready_head_[t]; slot != -1;
         slot = slots_[static_cast<std::size_t>(slot)].ready_next) {
      const Slot& s = slots_[static_cast<std::size_t>(slot)];
      if (!s.in_use || s.entry.tid != t || s.unready != 0) return false;
      if (s.ready_next != -1 &&
          s.entry.seq >= slots_[static_cast<std::size_t>(s.ready_next)]
                             .entry.seq) {
        return false;
      }
      ++walked;
    }
    if (walked != ready_per_thread_[t]) return false;
  }
  return true;
}

}  // namespace clusmt::backend
