#include "backend/ports.h"

namespace clusmt::backend {

bool PortSet::try_book(trace::PortClass cls) noexcept {
  // Prefer the most restrictive compatible port first so integer µops do
  // not needlessly consume the FP/SIMD-capable ports: for int, try port 2
  // (shared with mem) last.
  switch (cls) {
    case trace::PortClass::kFpSimd:
      for (int p : {0, 1}) {
        if (!busy_[p]) {
          busy_[p] = true;
          return true;
        }
      }
      return false;
    case trace::PortClass::kMem:
      if (!busy_[2]) {
        busy_[2] = true;
        return true;
      }
      return false;
    case trace::PortClass::kInt:
      for (int p : {0, 1, 2}) {
        if (!busy_[p]) {
          busy_[p] = true;
          return true;
        }
      }
      return false;
  }
  return false;
}

int PortSet::free_compatible(trace::PortClass cls) const noexcept {
  int count = 0;
  for (int p = 0; p < kNumPorts; ++p) {
    if (!busy_[p] && compatible(p, cls)) ++count;
  }
  return count;
}

}  // namespace clusmt::backend
