#include "backend/ports.h"

namespace clusmt::backend {

bool PortSet::try_book(trace::PortClass cls) noexcept {
  // Prefer the most restrictive compatible port first so integer µops do
  // not needlessly consume the FP/SIMD-capable ports: for int, try the
  // last port (shared with mem) last. Ascending order does exactly that
  // under the generalized mix (mem port is always the last index).
  switch (cls) {
    case trace::PortClass::kFpSimd: {
      const int fp_ports = num_ports_ == 1 ? 1 : num_ports_ - 1;
      for (int p = 0; p < fp_ports; ++p) {
        if (!busy_[p]) {
          busy_[p] = true;
          return true;
        }
      }
      return false;
    }
    case trace::PortClass::kMem: {
      const int mem_port = num_ports_ - 1;
      if (!busy_[mem_port]) {
        busy_[mem_port] = true;
        return true;
      }
      return false;
    }
    case trace::PortClass::kInt:
      for (int p = 0; p < num_ports_; ++p) {
        if (!busy_[p]) {
          busy_[p] = true;
          return true;
        }
      }
      return false;
  }
  return false;
}

int PortSet::free_compatible(trace::PortClass cls) const noexcept {
  int count = 0;
  for (int p = 0; p < num_ports_; ++p) {
    if (!busy_[p] && compatible(p, cls, num_ports_)) ++count;
  }
  return count;
}

}  // namespace clusmt::backend
