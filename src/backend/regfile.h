// Physical register file of one (cluster, register class) pair: free list,
// readiness scoreboard, and per-thread occupancy accounting (the input to
// the paper's register-file assignment schemes and the RFOC counters of
// CDPRF).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace clusmt::backend {

struct RegFileStats {
  std::uint64_t allocations = 0;
  std::uint64_t alloc_failures = 0;  // empty free list at request time
};

class RegisterFile {
 public:
  /// capacity == 0 selects the "unbounded" mode used by the paper's Figure
  /// 2 study (a pool large enough to never exhaust).
  explicit RegisterFile(int capacity);

  /// Allocates a register for `owner`; returns its index or -1 when the
  /// free list is empty. Fresh registers start not-ready.
  int allocate(ThreadId owner);

  /// Returns a register to the free list; returns the thread that owned it
  /// (so callers maintaining per-thread occupancy views stay O(1)).
  ThreadId release(std::int16_t index);

  [[nodiscard]] bool ready(std::int16_t index) const {
    return ready_[index] != 0;
  }
  void set_ready(std::int16_t index) { ready_[index] = 1; }

  [[nodiscard]] int capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool unbounded() const noexcept { return unbounded_; }
  [[nodiscard]] int free_count() const noexcept {
    return static_cast<int>(free_.size());
  }
  [[nodiscard]] int used_total() const noexcept {
    return capacity_ - free_count();
  }
  [[nodiscard]] int used_by(ThreadId tid) const { return used_by_[tid]; }
  [[nodiscard]] const RegFileStats& stats() const noexcept { return stats_; }

 private:
  int capacity_;
  bool unbounded_;
  std::vector<std::int16_t> free_;
  std::vector<std::uint8_t> ready_;
  std::vector<ThreadId> owner_;
  int used_by_[kMaxThreads] = {};
  RegFileStats stats_;
};

}  // namespace clusmt::backend
