#include "backend/regfile.h"

#include <cassert>
#include <stdexcept>

namespace clusmt::backend {

namespace {
// Pool size backing "unbounded" register files (paper Figure 2 isolates
// issue-queue effects with unbounded RF/ROB). Large enough that a 2-thread
// run with 4K-entry ROBs cannot exhaust it.
constexpr int kUnboundedCapacity = 16384;
}  // namespace

RegisterFile::RegisterFile(int capacity)
    : capacity_(capacity == 0 ? kUnboundedCapacity : capacity),
      unbounded_(capacity == 0) {
  if (capacity < 0) throw std::invalid_argument("negative RF capacity");
  free_.reserve(capacity_);
  for (int i = capacity_ - 1; i >= 0; --i) {
    free_.push_back(static_cast<std::int16_t>(i));
  }
  ready_.assign(static_cast<std::size_t>(capacity_), 0);
  owner_.assign(static_cast<std::size_t>(capacity_), -1);
}

int RegisterFile::allocate(ThreadId owner) {
  assert(owner >= 0 && owner < kMaxThreads);
  if (free_.empty()) {
    ++stats_.alloc_failures;
    return -1;
  }
  const std::int16_t index = free_.back();
  free_.pop_back();
  ready_[index] = 0;
  owner_[index] = owner;
  ++used_by_[owner];
  ++stats_.allocations;
  return index;
}

ThreadId RegisterFile::release(std::int16_t index) {
  assert(index >= 0 && index < capacity_);
  const ThreadId owner = owner_[index];
  assert(owner >= 0 && "double free of physical register");
  --used_by_[owner];
  assert(used_by_[owner] >= 0);
  owner_[index] = -1;
  free_.push_back(index);
  return owner;
}

}  // namespace clusmt::backend
