// One back-end cluster: issue queue, the two physical register files
// (integer and FP/SIMD) and the issue ports (three in the paper's Table 1
// shape; heterogeneous grids vary the width). The core's pipeline stages
// orchestrate these structures; the cluster only owns state.
#pragma once

#include <memory>

#include "backend/issue_queue.h"
#include "backend/ports.h"
#include "backend/regfile.h"
#include "common/types.h"

namespace clusmt::backend {

struct ClusterConfig {
  int iq_entries = 32;       // per-cluster issue queue (Table 1: 32-64)
  int int_registers = 128;   // 0 = unbounded (Figure 2 methodology)
  int fp_registers = 128;    // 0 = unbounded
  int issue_width = PortSet::kNumPorts;  // issue ports (Table 1: 3)
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config)
      : iq_(config.iq_entries),
        int_rf_(config.int_registers),
        fp_rf_(config.fp_registers),
        ports_(config.issue_width) {}

  [[nodiscard]] IssueQueue& iq() noexcept { return iq_; }
  [[nodiscard]] const IssueQueue& iq() const noexcept { return iq_; }

  [[nodiscard]] RegisterFile& rf(RegClass cls) noexcept {
    return cls == RegClass::kInt ? int_rf_ : fp_rf_;
  }
  [[nodiscard]] const RegisterFile& rf(RegClass cls) const noexcept {
    return cls == RegClass::kInt ? int_rf_ : fp_rf_;
  }

  [[nodiscard]] PortSet& ports() noexcept { return ports_; }
  [[nodiscard]] const PortSet& ports() const noexcept { return ports_; }

  /// Producer completion: marks the register ready in the scoreboard and
  /// wakes every issue-queue entry watching it. All consumers of a
  /// cluster's registers dispatch into the same cluster's issue queue
  /// (cross-cluster reads go through explicit copy µops), so the wakeup
  /// broadcast never leaves the cluster.
  void set_ready(RegClass cls, std::int16_t index) {
    rf(cls).set_ready(index);
    iq_.wakeup(cls, index);
  }

 private:
  IssueQueue iq_;
  RegisterFile int_rf_;
  RegisterFile fp_rf_;
  PortSet ports_;
};

}  // namespace clusmt::backend
