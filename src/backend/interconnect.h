// Inter-cluster interconnection network (paper Table 1): two point-to-point
// links of one-cycle latency. Copy µops arbitrate for a link slot in their
// issue cycle; link bandwidth is the global copies-per-cycle budget.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace clusmt::backend {

struct InterconnectStats {
  std::uint64_t transfers = 0;
  std::uint64_t denied = 0;  // copy ready but no link slot this cycle
};

class Interconnect {
 public:
  Interconnect(int num_links, int latency_cycles);

  void new_cycle() noexcept { used_this_cycle_ = 0; }

  /// Tries to reserve a link slot this cycle.
  bool try_acquire() noexcept;

  [[nodiscard]] int latency() const noexcept { return latency_; }
  [[nodiscard]] int num_links() const noexcept { return num_links_; }
  [[nodiscard]] const InterconnectStats& stats() const noexcept {
    return stats_;
  }
  void reset_stats() noexcept { stats_ = InterconnectStats{}; }

 private:
  int num_links_;
  int latency_;
  int used_this_cycle_ = 0;
  InterconnectStats stats_;
};

}  // namespace clusmt::backend
