// Inter-cluster interconnection network (paper Table 1): two point-to-point
// links of one-cycle latency. Copy µops arbitrate for a link slot in their
// issue cycle; link bandwidth is the global copies-per-cycle budget.
// Heterogeneous grids may override the latency per cluster pair
// (set_pair_latency); unset pairs keep the shared base latency.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace clusmt::backend {

struct InterconnectStats {
  std::uint64_t transfers = 0;
  std::uint64_t denied = 0;  // copy ready but no link slot this cycle
};

class Interconnect {
 public:
  Interconnect(int num_links, int latency_cycles);

  void new_cycle() noexcept { used_this_cycle_ = 0; }

  /// Tries to reserve a link slot this cycle.
  bool try_acquire() noexcept;

  [[nodiscard]] int latency() const noexcept { return latency_; }
  /// Copy latency from cluster `from` to cluster `to` (pair override,
  /// else the shared base latency).
  [[nodiscard]] int latency(int from, int to) const noexcept {
    const int v = pair_latency_[from][to];
    return v > 0 ? v : latency_;
  }
  /// Overrides one directed pair's latency (0 restores the base).
  void set_pair_latency(int from, int to, int latency_cycles);
  [[nodiscard]] int num_links() const noexcept { return num_links_; }
  [[nodiscard]] const InterconnectStats& stats() const noexcept {
    return stats_;
  }
  void reset_stats() noexcept { stats_ = InterconnectStats{}; }

 private:
  int num_links_;
  int latency_;
  int pair_latency_[kMaxClusters][kMaxClusters] = {};  // 0 = base latency
  int used_this_cycle_ = 0;
  InterconnectStats stats_;
};

}  // namespace clusmt::backend
