// Shared data-memory hierarchy (paper Table 1): 32 KB 2-way L1 (1 cycle),
// 4 MB 8-way L2 (12 cycles), 60-cycle memory, two L1<->L2 data buses, and a
// 1024-entry 8-way DTLB. Both SMT threads share every level, so
// cross-thread capacity and bus contention emerge naturally.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "memory/cache.h"
#include "memory/tlb.h"

namespace clusmt::memory {

struct HierarchyConfig {
  std::uint64_t l1_size = 32 * 1024;
  int l1_assoc = 2;
  int l1_latency = 1;
  std::uint64_t l2_size = 4 * 1024 * 1024;
  int l2_assoc = 8;
  int l2_latency = 12;
  int memory_latency = 60;
  int line_bytes = 64;
  int num_l1_l2_buses = 2;
  int bus_occupancy_cycles = 4;  // 64B line over a 16B/cycle bus
  int dtlb_entries = 1024;
  int dtlb_assoc = 8;
  int tlb_walk_latency = 30;
};

/// Where an access was satisfied.
enum class HitLevel : std::uint8_t { kL1 = 0, kL2, kMemory };

struct AccessResult {
  int latency = 0;       // total added cycles beyond AGU
  HitLevel level = HitLevel::kL1;
  bool l2_miss = false;  // true when the access went to memory
};

class MemoryHierarchy {
 public:
  explicit MemoryHierarchy(const HierarchyConfig& config);

  /// Data load at `cycle`. Walks DTLB, L1, L2; models bus queuing on L1
  /// misses. Returns total latency from issue to data-ready.
  [[nodiscard]] AccessResult load(std::uint64_t addr, Cycle cycle);

  /// Data store performed at commit. Write-allocate: misses fetch the line
  /// (consuming a bus slot) but do not stall commit in the model; returns
  /// the result for statistics and L2-miss tracking.
  AccessResult store(std::uint64_t addr, Cycle cycle);

  [[nodiscard]] const CacheStats& l1_stats() const noexcept {
    return l1_.stats();
  }
  [[nodiscard]] const CacheStats& l2_stats() const noexcept {
    return l2_.stats();
  }
  [[nodiscard]] const CacheStats& dtlb_stats() const noexcept {
    return dtlb_.stats();
  }
  [[nodiscard]] const HierarchyConfig& config() const noexcept {
    return config_;
  }

  /// Zeroes all level statistics; contents stay warm.
  void reset_stats() noexcept {
    l1_.reset_stats();
    l2_.reset_stats();
    dtlb_.reset_stats();
  }

 private:
  /// Earliest cycle a bus can accept a transfer at/after `cycle`; books it.
  [[nodiscard]] Cycle acquire_bus(Cycle cycle);
  [[nodiscard]] AccessResult access(std::uint64_t addr, bool is_write,
                                    Cycle cycle);

  HierarchyConfig config_;
  SetAssocCache l1_;
  SetAssocCache l2_;
  Tlb dtlb_;
  Cycle bus_free_[8] = {};  // next-free cycle per bus (max 8 buses)
};

}  // namespace clusmt::memory
