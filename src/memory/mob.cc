#include "memory/mob.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace clusmt::memory {

MemOrderBuffer::MemOrderBuffer(int capacity) : capacity_(capacity) {
  if (capacity < 1) throw std::invalid_argument("MOB capacity < 1");
  entries_.resize(static_cast<std::size_t>(capacity));
  free_slots_.reserve(static_cast<std::size_t>(capacity));
  for (int i = capacity - 1; i >= 0; --i) free_slots_.push_back(i);
}

int MemOrderBuffer::allocate(ThreadId tid, std::uint64_t seq, bool is_store) {
  assert(tid >= 0 && tid < kMaxThreads);
  if (free_slots_.empty()) return -1;
  const int slot = free_slots_.back();
  free_slots_.pop_back();
  Entry& e = entries_[slot];
  e = Entry{.tid = tid, .seq = seq, .is_store = is_store, .in_use = true};
  // Renaming allocates in program order, so seq is monotone per thread.
  assert(order_[tid].empty() ||
         entries_[order_[tid].back()].seq < seq);
  order_[tid].push_back(slot);
  if (is_store) store_order_[tid].push_back(slot);
  ++occupancy_;
  ++stats_.allocations;
  return slot;
}

void MemOrderBuffer::set_address(int slot, std::uint64_t addr) {
  Entry& e = entries_.at(slot);
  assert(e.in_use);
  e.addr = addr;
  e.addr_known = true;
}

LoadCheck MemOrderBuffer::check_load(int slot) {
  const Entry& load = entries_.at(slot);
  assert(load.in_use && !load.is_store && load.addr_known);
  const auto& stores = store_order_[load.tid];
  // Scan older same-thread stores from youngest to oldest; the youngest
  // matching store forwards. An unknown store address hides any older
  // match, so the load must conservatively wait. The deque is sorted by
  // seq, so the first older store is a binary search away.
  auto it = std::lower_bound(
      stores.begin(), stores.end(), load.seq,
      [this](int s, std::uint64_t seq) { return entries_[s].seq < seq; });
  while (it != stores.begin()) {
    const Entry& e = entries_[*--it];
    if (!e.addr_known) {
      ++stats_.waits;
      return LoadCheck::kWait;
    }
    if ((e.addr >> 3) == (load.addr >> 3)) {
      ++stats_.forwards;
      return LoadCheck::kForward;
    }
  }
  ++stats_.cache_accesses;
  return LoadCheck::kAccess;
}

void MemOrderBuffer::release(int slot) {
  Entry& e = entries_.at(slot);
  assert(e.in_use);
  auto& order = order_[e.tid];
  // Commit releases from the front, squash from the back; search both ends.
  if (!order.empty() && order.front() == slot) {
    order.pop_front();
  } else if (!order.empty() && order.back() == slot) {
    order.pop_back();
  } else {
    const auto it = std::find(order.begin(), order.end(), slot);
    assert(it != order.end());
    order.erase(it);
  }
  if (e.is_store) {
    auto& stores = store_order_[e.tid];
    if (!stores.empty() && stores.front() == slot) {
      stores.pop_front();
    } else if (!stores.empty() && stores.back() == slot) {
      stores.pop_back();
    } else {
      const auto it = std::find(stores.begin(), stores.end(), slot);
      assert(it != stores.end());
      stores.erase(it);
    }
  }
  e.in_use = false;
  free_slots_.push_back(slot);
  --occupancy_;
}

std::vector<int> MemOrderBuffer::thread_slots(ThreadId tid) const {
  return {order_[tid].begin(), order_[tid].end()};
}

}  // namespace clusmt::memory
