#include "memory/cache.h"

#include <bit>
#include <stdexcept>

namespace clusmt::memory {

SetAssocCache::SetAssocCache(std::uint64_t size_bytes, int assoc,
                             int line_bytes)
    : size_bytes_(size_bytes), assoc_(assoc), line_bytes_(line_bytes) {
  if (assoc < 1) throw std::invalid_argument("cache associativity < 1");
  if (!std::has_single_bit(size_bytes) ||
      !std::has_single_bit(static_cast<std::uint64_t>(line_bytes))) {
    throw std::invalid_argument("cache size/line must be powers of two");
  }
  const std::uint64_t lines = size_bytes / static_cast<std::uint64_t>(line_bytes);
  if (lines % static_cast<std::uint64_t>(assoc) != 0) {
    throw std::invalid_argument("cache size not divisible by assoc*line");
  }
  num_sets_ = lines / static_cast<std::uint64_t>(assoc);
  line_shift_ = std::countr_zero(static_cast<std::uint64_t>(line_bytes));
  lines_.resize(lines);
}

std::uint64_t SetAssocCache::set_of(std::uint64_t addr) const noexcept {
  return (addr >> line_shift_) & (num_sets_ - 1);
}

std::uint64_t SetAssocCache::tag_of(std::uint64_t addr) const noexcept {
  return addr >> line_shift_;
}

bool SetAssocCache::access(std::uint64_t addr, bool is_write) {
  ++stats_.accesses;
  ++lru_clock_;
  const std::uint64_t set = set_of(addr);
  const std::uint64_t tag = tag_of(addr);
  Line* base = &lines_[set * static_cast<std::uint64_t>(assoc_)];

  Line* victim = base;
  for (int w = 0; w < assoc_; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.lru = lru_clock_;
      line.dirty = line.dirty || is_write;
      ++stats_.hits;
      return true;
    }
    if (!line.valid) {
      victim = &line;
    } else if (victim->valid && line.lru < victim->lru) {
      victim = &line;
    }
  }

  if (victim->valid) {
    ++stats_.evictions;
    if (victim->dirty) ++stats_.dirty_evictions;
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = lru_clock_;
  victim->dirty = is_write;
  return false;
}

bool SetAssocCache::probe(std::uint64_t addr) const {
  const std::uint64_t set = set_of(addr);
  const std::uint64_t tag = tag_of(addr);
  const Line* base = &lines_[set * static_cast<std::uint64_t>(assoc_)];
  for (int w = 0; w < assoc_; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

void SetAssocCache::flush() {
  for (auto& line : lines_) line = Line{};
}

}  // namespace clusmt::memory
