#include "memory/cache.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace clusmt::memory {

SetAssocCache::SetAssocCache(std::uint64_t size_bytes, int assoc,
                             int line_bytes)
    : size_bytes_(size_bytes), assoc_(assoc), line_bytes_(line_bytes) {
  if (assoc < 1) throw std::invalid_argument("cache associativity < 1");
  if (!std::has_single_bit(size_bytes) ||
      !std::has_single_bit(static_cast<std::uint64_t>(line_bytes))) {
    throw std::invalid_argument("cache size/line must be powers of two");
  }
  const std::uint64_t lines = size_bytes / static_cast<std::uint64_t>(line_bytes);
  if (lines % static_cast<std::uint64_t>(assoc) != 0) {
    throw std::invalid_argument("cache size not divisible by assoc*line");
  }
  num_sets_ = lines / static_cast<std::uint64_t>(assoc);
  line_shift_ = std::countr_zero(static_cast<std::uint64_t>(line_bytes));
  tags_.resize(lines);
  lru_.resize(lines);
  flags_.resize(lines);
}

std::uint64_t SetAssocCache::set_of(std::uint64_t addr) const noexcept {
  return (addr >> line_shift_) & (num_sets_ - 1);
}

std::uint64_t SetAssocCache::tag_of(std::uint64_t addr) const noexcept {
  return addr >> line_shift_;
}

namespace {
constexpr std::uint8_t kValid = 1;
constexpr std::uint8_t kDirty = 2;
}  // namespace

bool SetAssocCache::access(std::uint64_t addr, bool is_write) {
  ++stats_.accesses;
  ++lru_clock_;
  const std::uint64_t set = set_of(addr);
  const std::uint64_t tag = tag_of(addr);
  const std::uint64_t base = set * static_cast<std::uint64_t>(assoc_);
  const std::uint64_t* tags = &tags_[base];
  std::uint8_t* flags = &flags_[base];

  int victim = 0;
  for (int w = 0; w < assoc_; ++w) {
    if ((flags[w] & kValid) && tags[w] == tag) {
      lru_[base + w] = lru_clock_;
      if (is_write) flags[w] |= kDirty;
      ++stats_.hits;
      return true;
    }
    if (!(flags[w] & kValid)) {
      victim = w;
    } else if ((flags[victim] & kValid) && lru_[base + w] < lru_[base + victim]) {
      victim = w;
    }
  }

  if (flags[victim] & kValid) {
    ++stats_.evictions;
    if (flags[victim] & kDirty) ++stats_.dirty_evictions;
  }
  flags[victim] = static_cast<std::uint8_t>(kValid | (is_write ? kDirty : 0));
  tags_[base + victim] = tag;
  lru_[base + victim] = lru_clock_;
  return false;
}

bool SetAssocCache::probe(std::uint64_t addr) const {
  const std::uint64_t set = set_of(addr);
  const std::uint64_t tag = tag_of(addr);
  const std::uint64_t base = set * static_cast<std::uint64_t>(assoc_);
  for (int w = 0; w < assoc_; ++w) {
    if ((flags_[base + w] & kValid) && tags_[base + w] == tag) return true;
  }
  return false;
}

void SetAssocCache::flush() {
  std::fill(flags_.begin(), flags_.end(), std::uint8_t{0});
  std::fill(tags_.begin(), tags_.end(), 0);
  std::fill(lru_.begin(), lru_.end(), 0);
}

}  // namespace clusmt::memory
