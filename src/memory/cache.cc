#include "memory/cache.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace clusmt::memory {

SetAssocCache::SetAssocCache(std::uint64_t size_bytes, int assoc,
                             int line_bytes)
    : size_bytes_(size_bytes), assoc_(assoc), line_bytes_(line_bytes) {
  if (assoc < 1) throw std::invalid_argument("cache associativity < 1");
  if (!std::has_single_bit(size_bytes) ||
      !std::has_single_bit(static_cast<std::uint64_t>(line_bytes))) {
    throw std::invalid_argument("cache size/line must be powers of two");
  }
  const std::uint64_t lines = size_bytes / static_cast<std::uint64_t>(line_bytes);
  if (lines % static_cast<std::uint64_t>(assoc) != 0) {
    throw std::invalid_argument("cache size not divisible by assoc*line");
  }
  num_sets_ = lines / static_cast<std::uint64_t>(assoc);
  line_shift_ = std::countr_zero(static_cast<std::uint64_t>(line_bytes));
  tags_.resize(lines);
  rank_.resize(lines);
  mru_way_.resize(num_sets_);
}

std::uint64_t SetAssocCache::set_of(std::uint64_t addr) const noexcept {
  return (addr >> line_shift_) & (num_sets_ - 1);
}

std::uint64_t SetAssocCache::tag_of(std::uint64_t addr) const noexcept {
  return addr >> line_shift_;
}

namespace {
constexpr std::uint64_t kValid = 1;
constexpr std::uint64_t kDirty = 2;
constexpr int kTagShift = 2;
}  // namespace

bool SetAssocCache::access(std::uint64_t addr, bool is_write) {
  ++stats_.accesses;
  const std::uint64_t tag = tag_of(addr);
  const std::uint64_t set = set_of(addr);
  const std::uint64_t base = set * static_cast<std::uint64_t>(assoc_);
  std::uint64_t* tags = &tags_[base];
  std::uint8_t* rank = &rank_[base];

  // MRU front check: a repeat hit on the most recently touched way is
  // already at the top rank, so the promotion sweep below would be a
  // no-op — answer with one compare and no rank traffic.
  const int mru = mru_way_[set];
  if ((tags[mru] & kValid) && (tags[mru] >> kTagShift) == tag) {
    if (is_write) tags[mru] |= kDirty;
    ++stats_.hits;
    return true;
  }

  // Promotes `w` to MRU: every way more recent than it steps down one
  // rank. This keeps the set's valid ways in exactly the recency order a
  // per-line clock stamp would, so victim choice below is unchanged.
  const auto touch = [&](int w) {
    const std::uint8_t r = rank[w];
    for (int v = 0; v < assoc_; ++v) {
      if (rank[v] > r) --rank[v];
    }
    rank[w] = static_cast<std::uint8_t>(assoc_ - 1);
    mru_way_[set] = static_cast<std::uint8_t>(w);
  };

  // Victim: the last invalid way of the scan if any, else the valid way
  // with the lowest rank (the set's LRU line) — the same choice the
  // clock-stamp scan made.
  int victim = 0;
  for (int w = 0; w < assoc_; ++w) {
    const std::uint64_t t = tags[w];
    if ((t & kValid) && (t >> kTagShift) == tag) {
      touch(w);
      if (is_write) tags[w] |= kDirty;
      ++stats_.hits;
      return true;
    }
    if (!(t & kValid)) {
      victim = w;
    } else if ((tags[victim] & kValid) && rank[w] < rank[victim]) {
      victim = w;
    }
  }

  if (tags[victim] & kValid) {
    ++stats_.evictions;
    if (tags[victim] & kDirty) ++stats_.dirty_evictions;
  }
  tags[victim] = (tag << kTagShift) | kValid |
                 (is_write ? kDirty : std::uint64_t{0});
  touch(victim);
  return false;
}

bool SetAssocCache::probe(std::uint64_t addr) const {
  const std::uint64_t tag = tag_of(addr);
  const std::uint64_t base = set_of(addr) * static_cast<std::uint64_t>(assoc_);
  for (int w = 0; w < assoc_; ++w) {
    const std::uint64_t t = tags_[base + static_cast<std::uint64_t>(w)];
    if ((t & kValid) && (t >> kTagShift) == tag) return true;
  }
  return false;
}

void SetAssocCache::flush() {
  std::fill(tags_.begin(), tags_.end(), 0);
  std::fill(rank_.begin(), rank_.end(), std::uint8_t{0});
  std::fill(mru_way_.begin(), mru_way_.end(), std::uint8_t{0});
}

}  // namespace clusmt::memory
