// Translation lookaside buffer: a set-associative cache of 4 KB page
// translations. Misses charge a fixed page-walk latency.
#pragma once

#include <cstdint>

#include "memory/cache.h"

namespace clusmt::memory {

class Tlb {
 public:
  /// `entries` and `assoc` as in Table 1 (1024-entry, 8-way).
  Tlb(int entries, int assoc, int walk_latency,
      int page_bytes = 4096);

  /// Translates; returns the added latency (0 on hit, walk latency on miss).
  [[nodiscard]] int access(std::uint64_t vaddr);

  [[nodiscard]] const CacheStats& stats() const noexcept {
    return cache_.stats();
  }
  void reset_stats() noexcept { cache_.reset_stats(); }
  [[nodiscard]] int walk_latency() const noexcept { return walk_latency_; }

 private:
  SetAssocCache cache_;
  int walk_latency_;
};

}  // namespace clusmt::memory
