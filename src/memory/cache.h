// Generic set-associative, write-back, write-allocate cache model with true
// LRU replacement. Purely a timing/presence model: no data is stored.
#pragma once

#include <cstdint>
#include <vector>

namespace clusmt::memory {

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dirty_evictions = 0;

  [[nodiscard]] std::uint64_t misses() const noexcept {
    return accesses - hits;
  }
  [[nodiscard]] double hit_rate() const noexcept {
    return accesses == 0 ? 0.0
                         : static_cast<double>(hits) /
                               static_cast<double>(accesses);
  }
};

class SetAssocCache {
 public:
  /// size_bytes and line_bytes must be powers of two; assoc >= 1.
  SetAssocCache(std::uint64_t size_bytes, int assoc, int line_bytes);

  /// Looks up `addr`; on miss, allocates the line (evicting LRU).
  /// Returns true on hit. `is_write` marks the line dirty.
  bool access(std::uint64_t addr, bool is_write);

  /// Lookup without allocation or LRU update (for tests/invariants).
  [[nodiscard]] bool probe(std::uint64_t addr) const;

  /// Invalidates the whole cache (keeps statistics).
  void flush();

  /// Zeroes the statistics (keeps contents — used after warmup phases).
  void reset_stats() noexcept { stats_ = CacheStats{}; }

  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint64_t size_bytes() const noexcept {
    return size_bytes_;
  }
  [[nodiscard]] int associativity() const noexcept { return assoc_; }
  [[nodiscard]] int line_bytes() const noexcept { return line_bytes_; }
  [[nodiscard]] std::uint64_t num_sets() const noexcept { return num_sets_; }

 private:
  [[nodiscard]] std::uint64_t set_of(std::uint64_t addr) const noexcept;
  [[nodiscard]] std::uint64_t tag_of(std::uint64_t addr) const noexcept;

  std::uint64_t size_bytes_;
  int assoc_;
  int line_bytes_;
  std::uint64_t num_sets_;
  int line_shift_;
  // Line metadata, structure-of-arrays by set (num_sets_ * assoc_). The
  // valid and dirty bits live in the low bits of the tag word (tags are
  // line addresses, so the bottom bits are free after shifting up) and
  // recency is a per-set permutation of 1-byte ranks (assoc-1 = MRU,
  // 0 = LRU) instead of a 64-bit global-clock stamp per line: one probe
  // touches one tag row plus one rank row, and a 4 MB simulated L2 carries
  // ~0.5 MB of metadata instead of ~1.1 MB — the host cache footprint of
  // the model is part of the simulator's own hot loop. Rank promotion
  // preserves exactly the recency order the clock stamps encoded, so hit/
  // miss/eviction sequences are unchanged.
  std::vector<std::uint64_t> tags_;  // (tag << 2) | dirty << 1 | valid
  std::vector<std::uint8_t> rank_;   // per-set LRU ranks
  // Way most recently touched in each set. Temporal locality makes
  // back-to-back accesses to the same line the dominant pattern, so
  // access() checks this way first: a hit there is already at max rank and
  // needs no promotion sweep — one tag compare, zero rank writes. Purely a
  // cached derivative of rank_ (the way holding rank assoc-1), so hit/miss
  // and eviction sequences are bit-identical with the scan path.
  std::vector<std::uint8_t> mru_way_;
  CacheStats stats_;
};

}  // namespace clusmt::memory
