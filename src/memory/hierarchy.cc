#include "memory/hierarchy.h"

#include <algorithm>
#include <stdexcept>

namespace clusmt::memory {

MemoryHierarchy::MemoryHierarchy(const HierarchyConfig& config)
    : config_(config),
      l1_(config.l1_size, config.l1_assoc, config.line_bytes),
      l2_(config.l2_size, config.l2_assoc, config.line_bytes),
      dtlb_(config.dtlb_entries, config.dtlb_assoc,
            config.tlb_walk_latency) {
  if (config.num_l1_l2_buses < 1 ||
      config.num_l1_l2_buses > static_cast<int>(std::size(bus_free_))) {
    throw std::invalid_argument("unsupported number of L1<->L2 buses");
  }
}

Cycle MemoryHierarchy::acquire_bus(Cycle cycle) {
  // Pick the earliest-available bus; book it for the transfer duration.
  int best = 0;
  for (int b = 1; b < config_.num_l1_l2_buses; ++b) {
    if (bus_free_[b] < bus_free_[best]) best = b;
  }
  const Cycle start = std::max(cycle, bus_free_[best]);
  bus_free_[best] = start + static_cast<Cycle>(config_.bus_occupancy_cycles);
  return start;
}

AccessResult MemoryHierarchy::access(std::uint64_t addr, bool is_write,
                                     Cycle cycle) {
  AccessResult result;
  result.latency = dtlb_.access(addr);

  if (l1_.access(addr, is_write)) {
    result.latency += config_.l1_latency;
    result.level = HitLevel::kL1;
    return result;
  }

  // L1 miss: the refill crosses one of the L1<->L2 data buses.
  const Cycle bus_start = acquire_bus(cycle + result.latency);
  const int queue_delay =
      static_cast<int>(bus_start - (cycle + result.latency));
  result.latency += queue_delay;

  if (l2_.access(addr, is_write)) {
    result.latency += config_.l1_latency + config_.l2_latency;
    result.level = HitLevel::kL2;
    return result;
  }

  result.latency +=
      config_.l1_latency + config_.l2_latency + config_.memory_latency;
  result.level = HitLevel::kMemory;
  result.l2_miss = true;
  return result;
}

AccessResult MemoryHierarchy::load(std::uint64_t addr, Cycle cycle) {
  return access(addr, /*is_write=*/false, cycle);
}

AccessResult MemoryHierarchy::store(std::uint64_t addr, Cycle cycle) {
  return access(addr, /*is_write=*/true, cycle);
}

}  // namespace clusmt::memory
