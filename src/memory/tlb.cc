#include "memory/tlb.h"

namespace clusmt::memory {

Tlb::Tlb(int entries, int assoc, int walk_latency, int page_bytes)
    : cache_(static_cast<std::uint64_t>(entries) *
                 static_cast<std::uint64_t>(page_bytes),
             assoc, page_bytes),
      walk_latency_(walk_latency) {}

int Tlb::access(std::uint64_t vaddr) {
  return cache_.access(vaddr, /*is_write=*/false) ? 0 : walk_latency_;
}

}  // namespace clusmt::memory
