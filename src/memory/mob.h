// Memory Order Buffer: the shared load/store queue of the paper's machine
// (Table 1: MOB 128). Tracks program order per thread, blocks loads behind
// older same-thread stores with unresolved addresses, and forwards data
// from a matching older store without a cache access.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.h"

namespace clusmt::memory {

/// Outcome of the disambiguation check for a load about to issue.
enum class LoadCheck : std::uint8_t {
  kWait,     // an older store's address is unknown: must retry later
  kForward,  // an older store to the same 8-byte word supplies the data
  kAccess,   // safe to access the data cache
};

struct MobStats {
  std::uint64_t allocations = 0;
  std::uint64_t full_stalls = 0;
  std::uint64_t forwards = 0;
  std::uint64_t waits = 0;
  std::uint64_t cache_accesses = 0;
};

class MemOrderBuffer {
 public:
  explicit MemOrderBuffer(int capacity);

  /// Allocates an entry in thread program order. Returns slot or -1 when
  /// full (renaming must stall).
  int allocate(ThreadId tid, std::uint64_t seq, bool is_store);

  /// Records the effective address once the AGU has produced it.
  void set_address(int slot, std::uint64_t addr);

  /// Disambiguates the load occupying `slot` against older same-thread
  /// stores. Updates forwarding statistics.
  [[nodiscard]] LoadCheck check_load(int slot);

  /// Frees an entry (commit or squash).
  void release(int slot);

  [[nodiscard]] int occupancy() const noexcept { return occupancy_; }
  [[nodiscard]] int capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool full() const noexcept { return occupancy_ == capacity_; }
  [[nodiscard]] const MobStats& stats() const noexcept { return stats_; }
  void note_full_stall() noexcept { ++stats_.full_stalls; }
  /// Bulk form for quiescent-cycle skip-ahead: the skipped cycles would
  /// each have recorded the same number of MOB-full rename stalls.
  void note_full_stalls(std::uint64_t n) noexcept { stats_.full_stalls += n; }
  /// Bulk-credits `n` load-wait checks, as if check_load had returned
  /// kWait `n` times (quiescent skip-ahead replicating blocked retries).
  void note_waits(std::uint64_t n) noexcept { stats_.waits += n; }
  void reset_stats() noexcept { stats_ = MobStats{}; }

  /// Occupied entries of a thread, oldest first (for tests/inspection).
  [[nodiscard]] std::vector<int> thread_slots(ThreadId tid) const;

 private:
  struct Entry {
    ThreadId tid = -1;
    std::uint64_t seq = 0;
    std::uint64_t addr = 0;
    bool is_store = false;
    bool addr_known = false;
    bool in_use = false;
  };

  std::vector<Entry> entries_;
  std::vector<int> free_slots_;
  std::deque<int> order_[kMaxThreads];  // per-thread slots, oldest first
  // Per-thread *store* slots only, oldest first. Disambiguation only ever
  // inspects stores, so check_load binary-searches its program-order
  // position here and walks stores alone instead of rescanning the whole
  // thread order (loads included) on every probe and retry.
  std::deque<int> store_order_[kMaxThreads];
  int capacity_;
  int occupancy_ = 0;
  MobStats stats_;
};

}  // namespace clusmt::memory
