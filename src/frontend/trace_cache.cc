#include "frontend/trace_cache.h"

namespace clusmt::frontend {

namespace {
constexpr std::uint64_t kUopBytes = 4;
}

TraceCache::TraceCache(const TraceCacheConfig& config)
    : cache_(config.capacity_uops * kUopBytes, config.assoc,
             static_cast<int>(config.line_uops * kUopBytes)) {}

bool TraceCache::lookup(std::uint64_t pc) {
  // Build-on-miss: a miss allocates the line, modelling the MITE filling
  // the TC while decoding at reduced width.
  return cache_.access(pc, /*is_write=*/false);
}

}  // namespace clusmt::frontend
