#include "frontend/branch_predictor.h"

#include <bit>
#include <stdexcept>

namespace clusmt::frontend {

BranchPredictor::BranchPredictor(const BranchPredictorConfig& config)
    : config_(config),
      counters_(static_cast<std::size_t>(config.gshare_entries), 2),
      indirect_(static_cast<std::size_t>(config.indirect_entries), 0),
      history_mask_((1ULL << config.history_bits) - 1) {
  if (!std::has_single_bit(static_cast<unsigned>(config.gshare_entries)) ||
      !std::has_single_bit(static_cast<unsigned>(config.indirect_entries))) {
    throw std::invalid_argument("predictor tables must be powers of two");
  }
}

std::size_t BranchPredictor::gshare_index(std::uint64_t history,
                                          std::uint64_t pc) const noexcept {
  // Classic gshare: XOR of history with the branch address (pc granularity
  // is 4 bytes, so drop the low two bits).
  const std::uint64_t mixed = (pc >> 2) ^ history;
  return mixed & (static_cast<std::uint64_t>(config_.gshare_entries) - 1);
}

bool BranchPredictor::predict_and_update_history(ThreadId tid,
                                                 std::uint64_t pc) {
  ++stats_.direction_lookups;
  const bool taken = counters_[gshare_index(history_[tid], pc)] >= 2;
  history_[tid] = ((history_[tid] << 1) | (taken ? 1u : 0u)) & history_mask_;
  return taken;
}

std::uint64_t BranchPredictor::predict_indirect(std::uint64_t pc) {
  ++stats_.indirect_lookups;
  return indirect_[(pc >> 2) &
                   (static_cast<std::uint64_t>(config_.indirect_entries) - 1)];
}

void BranchPredictor::train(ThreadId /*tid*/, std::uint64_t history_at_predict,
                            std::uint64_t pc, bool taken) {
  ++stats_.direction_updates;
  std::uint8_t& ctr = counters_[gshare_index(history_at_predict, pc)];
  if (taken && ctr < 3) ++ctr;
  if (!taken && ctr > 0) --ctr;
}

void BranchPredictor::train_indirect(std::uint64_t pc, std::uint64_t target) {
  indirect_[(pc >> 2) &
            (static_cast<std::uint64_t>(config_.indirect_entries) - 1)] =
      target;
}

void BranchPredictor::restore_history(ThreadId tid, std::uint64_t checkpoint,
                                      bool apply_outcome,
                                      bool taken) noexcept {
  history_[tid] = checkpoint & history_mask_;
  if (apply_outcome) {
    history_[tid] =
        ((history_[tid] << 1) | (taken ? 1u : 0u)) & history_mask_;
  }
}

}  // namespace clusmt::frontend
