#include "frontend/fetch.h"

#include <cassert>
#include <stdexcept>

namespace clusmt::frontend {

FetchEngine::FetchEngine(const FetchConfig& config, int num_threads)
    : config_(config),
      num_threads_(num_threads),
      predictor_(config.predictor),
      trace_cache_(config.trace_cache),
      itlb_(config.itlb_entries, config.itlb_assoc,
            config.itlb_walk_latency),
      threads_(static_cast<std::size_t>(num_threads)) {
  if (num_threads < 1 || num_threads > kMaxThreads) {
    throw std::invalid_argument("unsupported thread count");
  }
  for (ThreadState& ts : threads_) {
    ts.queue.reset_capacity(config.decode_queue_capacity);
  }
}

void FetchEngine::attach_thread(ThreadId tid,
                                std::shared_ptr<trace::TraceSource> source,
                                const trace::TraceProfile* profile,
                                std::uint64_t seed) {
  ThreadState& ts = threads_.at(tid);
  ts.source = std::move(source);
  ts.profile = profile;
  ts.seed = seed;
}

trace::MicroOp FetchEngine::next_correct_uop(ThreadState& ts) {
  if (!ts.replay.empty()) {
    trace::MicroOp op = ts.replay.front();
    ts.replay.pop_front();
    return op;
  }
  if (ts.buf_count == 0) {
    ts.source->fill(ts.buf.data(), kPrefetch);
    ts.buf_head = 0;
    ts.buf_count = kPrefetch;
  }
  --ts.buf_count;
  return ts.buf[static_cast<std::size_t>(ts.buf_head++)];
}

std::uint64_t FetchEngine::peek_pc(ThreadState& ts) {
  if (!ts.replay.empty()) return ts.replay.front().pc;
  if (ts.buf_count == 0) {
    ts.source->fill(ts.buf.data(), kPrefetch);
    ts.buf_head = 0;
    ts.buf_count = kPrefetch;
  }
  return ts.buf[static_cast<std::size_t>(ts.buf_head)].pc;
}

ThreadId FetchEngine::select_fetch_thread(std::uint32_t eligible_mask,
                                          Cycle now) {
  const auto can_fetch = [&](ThreadId t) {
    if (!(eligible_mask & (1u << t))) return false;
    const ThreadState& ts = threads_[t];
    return now >= ts.stall_until &&
           static_cast<int>(ts.queue.size()) < config_.decode_queue_capacity;
  };

  if (config_.selection == FetchSelection::kRoundRobin) {
    for (int offset = 0; offset < num_threads_; ++offset) {
      const ThreadId t =
          static_cast<ThreadId>((rr_cursor_ + offset) % num_threads_);
      if (!can_fetch(t)) continue;
      rr_cursor_ = (t + 1) % num_threads_;
      return t;
    }
    return -1;
  }

  // Paper §3: the thread with the fewest µops already queued.
  ThreadId best = -1;
  int best_depth = 0;
  for (ThreadId t = 0; t < num_threads_; ++t) {
    if (!can_fetch(t)) continue;
    const int depth = static_cast<int>(threads_[t].queue.size());
    if (best < 0 || depth < best_depth) {
      best = t;
      best_depth = depth;
    }
  }
  return best;
}

void FetchEngine::fetch_cycle(ThreadId tid, Cycle now) {
  ThreadState& ts = threads_.at(tid);
  assert(ts.source && "thread has no trace source attached");
  if (now < ts.stall_until) return;
  ++stats_.fetch_cycles;

  // I-TLB lookup for the page about to be fetched from.
  const std::uint64_t fetch_pc =
      ts.wrong_path_active ? ts.wrong_path.current_pc() : peek_pc(ts);
  const int itlb_penalty = itlb_.access(fetch_pc);
  if (itlb_penalty > 0) {
    ++stats_.itlb_stalls;
    ts.stall_until = now + static_cast<Cycle>(itlb_penalty);
    return;
  }

  // Trace cache hit determines this cycle's fetch bandwidth.
  const bool tc_hit = trace_cache_.lookup(fetch_pc);
  if (tc_hit) ++stats_.tc_hit_cycles;
  int budget = tc_hit ? config_.fetch_width : config_.mite_width;

  while (budget-- > 0) {
    if (static_cast<int>(ts.queue.size()) >= config_.decode_queue_capacity) {
      break;
    }

    // Built in place in the decode-queue slot: the entry is only published
    // through the queue size, which the stages read strictly after this.
    FetchedUop& fu = ts.queue.emplace_back();
    if (ts.wrong_path_active) {
      fu.op = ts.wrong_path.next();
      fu.wrong_path = true;
      ++stats_.wrong_path_uops;
    } else {
      fu.op = next_correct_uop(ts);
    }
    ++stats_.fetched_uops;

    bool stop_after = false;
    if (fu.op.is_branch() && !fu.wrong_path) {
      fu.history_checkpoint = predictor_.history(tid);
      fu.predicted_taken =
          predictor_.predict_and_update_history(tid, fu.op.pc);
      bool mispredict = fu.predicted_taken != fu.op.taken;
      std::uint64_t wrong_target =
          fu.predicted_taken ? fu.op.target : fu.op.fallthrough;
      if (fu.op.indirect) {
        const std::uint64_t pred_target = predictor_.predict_indirect(fu.op.pc);
        // Indirect jumps always redirect; a target mismatch mispredicts.
        if (pred_target != fu.op.target) {
          mispredict = true;
          wrong_target = pred_target != 0 ? pred_target : fu.op.pc + 4;
        }
      }
      if (mispredict) {
        fu.mispredicted = true;
        ++stats_.mispredicts_seen;
        ts.wrong_path_active = true;
        ts.wrong_path.reset(ts.profile, ts.seed, fu.op.pc, wrong_target);
        stop_after = true;  // redirection bubble
      } else if (fu.predicted_taken || fu.op.indirect) {
        stop_after = true;  // taken-branch redirect ends the fetch group
      }
    } else if (fu.op.is_branch()) {
      // Wrong-path branch: consult the predictor for timing realism but
      // never spawn nested wrong paths; history is restored on resolve.
      fu.history_checkpoint = predictor_.history(tid);
      fu.predicted_taken =
          predictor_.predict_and_update_history(tid, fu.op.pc);
      stop_after = fu.predicted_taken;
    }

    if (stop_after) break;
  }
}

void FetchEngine::resolve_mispredict(ThreadId tid,
                                     std::uint64_t history_checkpoint,
                                     bool actual_taken, Cycle now) {
  ThreadState& ts = threads_.at(tid);
  ts.wrong_path_active = false;
  ts.wrong_path.disarm();
  ts.queue.clear();  // only wrong-path µops are younger than the branch
  predictor_.restore_history(tid, history_checkpoint, /*apply_outcome=*/true,
                             actual_taken);
  ts.stall_until =
      std::max(ts.stall_until,
               now + static_cast<Cycle>(config_.mispredict_penalty));
}

void FetchEngine::flush_and_replay(
    ThreadId tid, std::span<const trace::MicroOp> replay_oldest_first,
    std::optional<std::uint64_t> history_checkpoint) {
  ThreadState& ts = threads_.at(tid);
  ts.wrong_path_active = false;
  ts.wrong_path.disarm();

  // Correct-path µops still sitting in the decode queue are squashed too;
  // they must be replayed after the ones already in the back-end.
  std::vector<trace::MicroOp> queued_correct;
  ts.queue.for_each([&](const FetchedUop& fu) {
    if (!fu.wrong_path) queued_correct.push_back(fu.op);
  });
  ts.queue.clear();

  // Rebuild replay front:
  // [replay_oldest_first][queued_correct][prefetch buffer][old replay]
  for (int i = ts.buf_count - 1; i >= 0; --i) {
    ts.replay.push_front(ts.buf[static_cast<std::size_t>(ts.buf_head + i)]);
  }
  ts.buf_head = 0;
  ts.buf_count = 0;
  for (auto it = queued_correct.rbegin(); it != queued_correct.rend(); ++it) {
    ts.replay.push_front(*it);
  }
  for (auto it = replay_oldest_first.rbegin();
       it != replay_oldest_first.rend(); ++it) {
    ts.replay.push_front(*it);
  }

  if (history_checkpoint) {
    predictor_.restore_history(tid, *history_checkpoint,
                               /*apply_outcome=*/false, false);
  }
}

void FetchEngine::stall_until(ThreadId tid, Cycle until) {
  ThreadState& ts = threads_.at(tid);
  ts.stall_until = std::max(ts.stall_until, until);
}

bool FetchEngine::stalled(ThreadId tid, Cycle now) const {
  return now < threads_.at(tid).stall_until;
}

bool FetchEngine::on_wrong_path(ThreadId tid) const {
  return threads_.at(tid).wrong_path_active;
}

}  // namespace clusmt::frontend
