#include "frontend/fetch.h"

#include <cassert>
#include <stdexcept>

namespace clusmt::frontend {

FetchEngine::FetchEngine(const FetchConfig& config, int num_threads)
    : config_(config),
      num_threads_(num_threads),
      predictor_(config.predictor),
      trace_cache_(config.trace_cache),
      itlb_(config.itlb_entries, config.itlb_assoc,
            config.itlb_walk_latency),
      threads_(static_cast<std::size_t>(num_threads)) {
  if (num_threads < 1 || num_threads > kMaxThreads) {
    throw std::invalid_argument("unsupported thread count");
  }
  for (ThreadState& ts : threads_) {
    ts.queue.reset_capacity(config.decode_queue_capacity);
  }
}

void FetchEngine::attach_thread(ThreadId tid,
                                std::shared_ptr<trace::TraceSource> source,
                                const trace::TraceProfile* profile,
                                std::uint64_t seed) {
  ThreadState& ts = threads_.at(tid);
  ts.source = std::move(source);
  ts.profile = profile;
  ts.seed = seed;
}

trace::MicroOp FetchEngine::next_correct_uop(ThreadState& ts) {
  if (!ts.replay.empty()) {
    trace::MicroOp op = ts.replay.front();
    ts.replay.pop_front();
    return op;
  }
  if (ts.buf_count == 0) refill_buffer(ts);
  --ts.buf_count;
  return ts.buf[static_cast<std::size_t>(ts.buf_head++)];
}

std::uint64_t FetchEngine::peek_pc(ThreadState& ts) {
  if (!ts.replay.empty()) return ts.replay.front().pc;
  if (ts.buf_count == 0) refill_buffer(ts);
  return ts.buf[static_cast<std::size_t>(ts.buf_head)].pc;
}

ThreadId FetchEngine::select_fetch_thread(std::uint32_t eligible_mask,
                                          Cycle now) {
  const auto can_fetch = [&](ThreadId t) {
    if (!(eligible_mask & (1u << t))) return false;
    const ThreadState& ts = threads_[t];
    return now >= ts.stall_until &&
           static_cast<int>(ts.queue.size()) < config_.decode_queue_capacity;
  };

  if (config_.selection == FetchSelection::kRoundRobin) {
    for (int offset = 0; offset < num_threads_; ++offset) {
      const ThreadId t =
          static_cast<ThreadId>((rr_cursor_ + offset) % num_threads_);
      if (!can_fetch(t)) continue;
      rr_cursor_ = (t + 1) % num_threads_;
      return t;
    }
    return -1;
  }

  // Paper §3: the thread with the fewest µops already queued.
  ThreadId best = -1;
  int best_depth = 0;
  for (ThreadId t = 0; t < num_threads_; ++t) {
    if (!can_fetch(t)) continue;
    const int depth = static_cast<int>(threads_[t].queue.size());
    if (best < 0 || depth < best_depth) {
      best = t;
      best_depth = depth;
    }
  }
  return best;
}

void FetchEngine::fetch_cycle(ThreadId tid, Cycle now) {
  ThreadState& ts = threads_.at(tid);
  assert(ts.source && "thread has no trace source attached");
  if (now < ts.stall_until) return;
  ++stats_.fetch_cycles;

  // I-TLB lookup for the page about to be fetched from.
  const std::uint64_t fetch_pc =
      ts.wrong_path_active ? ts.wrong_path.current_pc() : peek_pc(ts);
  const int itlb_penalty = itlb_.access(fetch_pc);
  if (itlb_penalty > 0) {
    ++stats_.itlb_stalls;
    ts.stall_until = now + static_cast<Cycle>(itlb_penalty);
    return;
  }

  // Trace cache hit determines this cycle's fetch bandwidth. The decode
  // queue only grows through this function within a cycle, so the capacity
  // check hoists out of the per-µop loop exactly.
  const bool tc_hit = trace_cache_.lookup(fetch_pc);
  if (tc_hit) ++stats_.tc_hit_cycles;
  int budget = tc_hit ? config_.fetch_width : config_.mite_width;
  const int room = config_.decode_queue_capacity - ts.queue.size();
  if (budget > room) budget = room;

  if (ts.wrong_path_active) {
    fetch_wrong_path(tid, ts, budget);
  } else {
    fetch_correct_path(tid, ts, budget);
  }
}

void FetchEngine::fetch_wrong_path(ThreadId tid, ThreadState& ts,
                                   int budget) {
  while (budget-- > 0) {
    FetchedUop& fu = ts.queue.emplace_back();
    fu.op = ts.wrong_path.next();
    fu.wrong_path = true;
    ++stats_.wrong_path_uops;
    ++stats_.fetched_uops;
    if (fu.op.is_branch()) {
      // Wrong-path branch: consult the predictor for timing realism but
      // never spawn nested wrong paths; history is restored on resolve.
      fu.history_checkpoint = predictor_.history(tid);
      fu.predicted_taken =
          predictor_.predict_and_update_history(tid, fu.op.pc);
      if (fu.predicted_taken) break;  // taken redirect ends the group
    }
  }
}

void FetchEngine::fetch_correct_path(ThreadId tid, ThreadState& ts,
                                     int budget) {
  while (budget > 0) {
    if (!ts.replay.empty()) {
      // Replay after a flush: cold path, delivered per µop until the deque
      // drains back into the prefetch buffer regime.
      FetchedUop& fu = ts.queue.emplace_back();
      fu.op = ts.replay.front();
      ts.replay.pop_front();
      ++stats_.fetched_uops;
      --budget;
      if (fu.op.is_branch() && handle_correct_branch(tid, ts, fu)) return;
      continue;
    }

    // Hot path: take a straight-line run (plus at most one terminating
    // branch) from the prefetch buffer in one bulk append, so branch
    // prediction and group-stop logic run once per run, not once per µop.
    if (ts.buf_count == 0) refill_buffer(ts);
    const int run_max = budget < ts.buf_count ? budget : ts.buf_count;
    const trace::MicroOp* ops =
        ts.buf.data() + static_cast<std::size_t>(ts.buf_head);
    int run = 0;
    while (run < run_max && !ops[run].is_branch()) ++run;
    const bool has_branch = run < run_max;
    const int take = run + (has_branch ? 1 : 0);  // >= 1: run_max >= 1 here
    FetchedUop& last = ts.queue.append_ops(ops, take);
    ts.buf_head += take;
    ts.buf_count -= take;
    stats_.fetched_uops += static_cast<std::uint64_t>(take);
    budget -= take;
    if (has_branch && handle_correct_branch(tid, ts, last)) return;
  }
}

bool FetchEngine::handle_correct_branch(ThreadId tid, ThreadState& ts,
                                        FetchedUop& fu) {
  fu.history_checkpoint = predictor_.history(tid);
  fu.predicted_taken = predictor_.predict_and_update_history(tid, fu.op.pc);
  bool mispredict = fu.predicted_taken != fu.op.taken;
  std::uint64_t wrong_target =
      fu.predicted_taken ? fu.op.target : fu.op.fallthrough;
  if (fu.op.indirect) {
    const std::uint64_t pred_target = predictor_.predict_indirect(fu.op.pc);
    // Indirect jumps always redirect; a target mismatch mispredicts.
    if (pred_target != fu.op.target) {
      mispredict = true;
      wrong_target = pred_target != 0 ? pred_target : fu.op.pc + 4;
    }
  }
  if (mispredict) {
    fu.mispredicted = true;
    ++stats_.mispredicts_seen;
    ts.wrong_path_active = true;
    ts.wrong_path.reset(ts.profile, ts.seed, fu.op.pc, wrong_target);
    return true;  // redirection bubble
  }
  // A taken or indirect branch redirects fetch and ends the group.
  return fu.predicted_taken || fu.op.indirect;
}

void FetchEngine::resolve_mispredict(ThreadId tid,
                                     std::uint64_t history_checkpoint,
                                     bool actual_taken, Cycle now) {
  ThreadState& ts = threads_.at(tid);
  ts.wrong_path_active = false;
  ts.wrong_path.disarm();
  ts.queue.clear();  // only wrong-path µops are younger than the branch
  predictor_.restore_history(tid, history_checkpoint, /*apply_outcome=*/true,
                             actual_taken);
  ts.stall_until =
      std::max(ts.stall_until,
               now + static_cast<Cycle>(config_.mispredict_penalty));
}

void FetchEngine::flush_and_replay(
    ThreadId tid, std::span<const trace::MicroOp> replay_oldest_first,
    std::optional<std::uint64_t> history_checkpoint) {
  ThreadState& ts = threads_.at(tid);
  ts.wrong_path_active = false;
  ts.wrong_path.disarm();

  // Correct-path µops still sitting in the decode queue are squashed too;
  // they must be replayed after the ones already in the back-end.
  std::vector<trace::MicroOp> queued_correct;
  ts.queue.for_each([&](const FetchedUop& fu) {
    if (!fu.wrong_path) queued_correct.push_back(fu.op);
  });
  ts.queue.clear();

  // Rebuild replay front:
  // [replay_oldest_first][queued_correct][prefetch buffer][old replay]
  for (int i = ts.buf_count - 1; i >= 0; --i) {
    ts.replay.push_front(ts.buf[static_cast<std::size_t>(ts.buf_head + i)]);
  }
  ts.buf_head = 0;
  ts.buf_count = 0;
  for (auto it = queued_correct.rbegin(); it != queued_correct.rend(); ++it) {
    ts.replay.push_front(*it);
  }
  for (auto it = replay_oldest_first.rbegin();
       it != replay_oldest_first.rend(); ++it) {
    ts.replay.push_front(*it);
  }

  if (history_checkpoint) {
    predictor_.restore_history(tid, *history_checkpoint,
                               /*apply_outcome=*/false, false);
  }
}

void FetchEngine::stall_until(ThreadId tid, Cycle until) {
  ThreadState& ts = threads_.at(tid);
  ts.stall_until = std::max(ts.stall_until, until);
}

bool FetchEngine::stalled(ThreadId tid, Cycle now) const {
  return now < threads_.at(tid).stall_until;
}

bool FetchEngine::on_wrong_path(ThreadId tid) const {
  return threads_.at(tid).wrong_path_active;
}

}  // namespace clusmt::frontend
