// Branch direction and indirect-target prediction (paper Table 1):
// 32K-entry gshare with 2-bit counters, a per-thread global history
// register (the only per-thread front-end structure besides renaming
// tables and the ROB, §3), and a 4096-entry last-target indirect predictor.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace clusmt::frontend {

struct BranchPredictorConfig {
  int gshare_entries = 32 * 1024;  // power of two
  int history_bits = 12;
  int indirect_entries = 4096;     // power of two
};

struct BranchPredictorStats {
  std::uint64_t direction_lookups = 0;
  std::uint64_t direction_updates = 0;
  std::uint64_t indirect_lookups = 0;
};

class BranchPredictor {
 public:
  explicit BranchPredictor(const BranchPredictorConfig& config);

  /// Predicts the direction of the conditional branch at `pc` for thread
  /// `tid` and speculatively shifts the predicted outcome into the thread's
  /// history. Returns the prediction.
  bool predict_and_update_history(ThreadId tid, std::uint64_t pc);

  /// Predicted target for an indirect branch (last target seen; 0 if cold).
  [[nodiscard]] std::uint64_t predict_indirect(std::uint64_t pc);

  /// Trains the 2-bit counter with the actual outcome (called at branch
  /// resolution for correct-path branches).
  void train(ThreadId tid, std::uint64_t history_at_predict, std::uint64_t pc,
             bool taken);

  void train_indirect(std::uint64_t pc, std::uint64_t target);

  /// Current speculative history (checkpointed by fetch before each branch).
  [[nodiscard]] std::uint64_t history(ThreadId tid) const noexcept {
    return history_[tid];
  }
  /// Restores history after a squash, re-applying the actual outcome of the
  /// resolving branch when `apply_outcome` is set.
  void restore_history(ThreadId tid, std::uint64_t checkpoint,
                       bool apply_outcome, bool taken) noexcept;

  [[nodiscard]] const BranchPredictorStats& stats() const noexcept {
    return stats_;
  }
  void reset_stats() noexcept { stats_ = BranchPredictorStats{}; }

 private:
  [[nodiscard]] std::size_t gshare_index(std::uint64_t history,
                                         std::uint64_t pc) const noexcept;

  BranchPredictorConfig config_;
  std::vector<std::uint8_t> counters_;       // 2-bit saturating
  std::vector<std::uint64_t> indirect_;      // last target per entry
  std::uint64_t history_[kMaxThreads] = {};  // per-thread global history
  std::uint64_t history_mask_;
  BranchPredictorStats stats_;
};

}  // namespace clusmt::frontend
