#include "frontend/rename_map.h"

#include <cassert>
#include <stdexcept>

namespace clusmt::frontend {

RenameMap::RenameMap(int num_clusters)
    : map_(kNumArchRegs), num_clusters_(num_clusters) {
  if (num_clusters < 1 || num_clusters > kMaxClusters) {
    throw std::invalid_argument("unsupported cluster count");
  }
}

ReplicaSet RenameMap::define(int arch, ClusterId cluster, std::int16_t phys) {
  assert(is_valid_arch_reg(arch));
  assert(cluster >= 0 && cluster < num_clusters_);
  ReplicaSet previous = map_[arch];
  ReplicaSet fresh;
  fresh.phys[cluster] = phys;
  fresh.mask = static_cast<std::uint8_t>(1u << cluster);
  map_[arch] = fresh;
  return previous;  // carries its own mask; restore() reinstates it whole
}

void RenameMap::add_replica(int arch, ClusterId cluster, std::int16_t phys) {
  assert(is_valid_arch_reg(arch));
  assert(!map_[arch].present(cluster) && "replica already present");
  map_[arch].phys[cluster] = phys;
  map_[arch].mask |= static_cast<std::uint8_t>(1u << cluster);
}

void RenameMap::remove_replica(int arch, ClusterId cluster) {
  assert(is_valid_arch_reg(arch));
  assert(map_[arch].present(cluster));
  map_[arch].phys[cluster] = -1;
  map_[arch].mask &= static_cast<std::uint8_t>(~(1u << cluster));
}

void RenameMap::restore(int arch, const ReplicaSet& previous) {
  assert(is_valid_arch_reg(arch));
  map_[arch] = previous;
}

}  // namespace clusmt::frontend
