// Trace cache bandwidth model (paper §3, [14]).
//
// The Pentium-4-style front-end stores decoded µops in a trace cache (TC).
// On a TC hit the fetch unit delivers the full fetch width of µops per
// cycle; on a miss the MITE decodes macro-instructions at a reduced width
// while (re)building the trace line. We model presence and bandwidth, not
// trace construction details: the TC is a set-associative cache over µop
// PCs, built on miss.
#pragma once

#include <cstdint>

#include "memory/cache.h"

namespace clusmt::frontend {

struct TraceCacheConfig {
  // 32K µops (Table 1) at 4 bytes of PC space per µop => 128 KB of PC reach.
  std::uint64_t capacity_uops = 32 * 1024;
  int line_uops = 8;  // µops per trace line
  int assoc = 8;
};

class TraceCache {
 public:
  explicit TraceCache(const TraceCacheConfig& config);

  /// Looks up the line containing `pc`, building it on miss.
  /// Returns true on hit (full-width fetch this cycle).
  bool lookup(std::uint64_t pc);

  [[nodiscard]] const memory::CacheStats& stats() const noexcept {
    return cache_.stats();
  }
  void reset_stats() noexcept { cache_.reset_stats(); }

 private:
  memory::SetAssocCache cache_;
};

}  // namespace clusmt::frontend
