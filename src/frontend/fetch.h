// Fetch engine: per-thread program cursors, branch prediction, wrong-path
// injection, the per-thread decode queues that live inside the thread
// selection unit (paper §3), and the fetch selection policy ("always fetch
// from the thread with the lowest number of instructions in its queue").
//
// The engine also supports replaying correct-path µops after a policy-
// induced flush (Flush+): squashed correct-path µops are pushed back and
// re-delivered before new trace µops.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"
#include "frontend/branch_predictor.h"
#include "frontend/trace_cache.h"
#include "memory/tlb.h"
#include "trace/trace_source.h"
#include "trace/wrong_path.h"

namespace clusmt::frontend {

/// Fetch selection policy. The paper fixes "always fetch from the thread
/// with the lowest number of instructions in its queue" (§3) so the rename
/// selection policy is never starved of choices; round-robin is the
/// natural control for the ablate_fetch bench.
enum class FetchSelection : std::uint8_t {
  kFewestInQueue = 0,  // paper §3
  kRoundRobin,
};

struct FetchConfig {
  int fetch_width = 6;        // µops/cycle on a trace-cache hit
  int mite_width = 3;         // µops/cycle on a trace-cache miss
  int decode_queue_capacity = 24;
  int mispredict_penalty = 14;  // pipeline refill after resolution (Table 1)
  int itlb_entries = 1024;
  int itlb_assoc = 8;
  int itlb_walk_latency = 30;
  FetchSelection selection = FetchSelection::kFewestInQueue;
  BranchPredictorConfig predictor;
  TraceCacheConfig trace_cache;
};

/// A fetched µop annotated with front-end state the core needs for
/// squash/recovery and predictor training.
struct FetchedUop {
  trace::MicroOp op;
  bool wrong_path = false;
  bool mispredicted = false;           // branch that will trigger a squash
  std::uint64_t history_checkpoint = 0;  // history before this branch
  bool predicted_taken = false;
};

struct FetchStats {
  std::uint64_t fetched_uops = 0;
  std::uint64_t wrong_path_uops = 0;
  std::uint64_t fetch_cycles = 0;
  std::uint64_t tc_hit_cycles = 0;
  std::uint64_t mispredicts_seen = 0;
  std::uint64_t itlb_stalls = 0;
};

/// Fixed-capacity FIFO for the per-thread decode queue. The capacity is
/// config-bounded and small, so a flat ring beats std::deque's chunked
/// storage on the three per-µop operations (push, front, pop).
class DecodeQueue {
 public:
  void reset_capacity(int capacity) {
    buf_.assign(static_cast<std::size_t>(capacity), FetchedUop{});
    head_ = 0;
    size_ = 0;
  }
  [[nodiscard]] int size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] const FetchedUop& front() const { return buf_[head_]; }
  /// Appends a default-initialised entry in place and returns it — the
  /// fetch path fills it directly instead of copying a stack temporary.
  [[nodiscard]] FetchedUop& emplace_back() {
    assert(size_ < static_cast<int>(buf_.size()));
    FetchedUop& fu = buf_[static_cast<std::size_t>(wrap(head_ + size_))];
    fu = FetchedUop{};
    ++size_;
    return fu;
  }
  /// Bulk append of `count` correct-path µops (flags cleared), returning the
  /// LAST appended entry so the caller can annotate a terminating branch.
  /// Requires count >= 1 and room for all entries.
  FetchedUop& append_ops(const trace::MicroOp* ops, int count) {
    assert(count >= 1 && size_ + count <= static_cast<int>(buf_.size()));
    FetchedUop* last = nullptr;
    for (int i = 0; i < count; ++i) {
      FetchedUop& fu = buf_[static_cast<std::size_t>(wrap(head_ + size_ + i))];
      fu = FetchedUop{};
      fu.op = ops[i];
      last = &fu;
    }
    size_ += count;
    return *last;
  }
  void pop_front() {
    assert(size_ > 0);
    head_ = wrap(head_ + 1);
    --size_;
  }
  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }
  /// Visits entries oldest to youngest.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (int i = 0; i < size_; ++i) {
      fn(buf_[static_cast<std::size_t>(wrap(head_ + i))]);
    }
  }

 private:
  [[nodiscard]] int wrap(int index) const noexcept {
    const int cap = static_cast<int>(buf_.size());
    return index >= cap ? index - cap : index;
  }
  std::vector<FetchedUop> buf_;
  int head_ = 0;
  int size_ = 0;
};

class FetchEngine {
 public:
  FetchEngine(const FetchConfig& config, int num_threads);

  /// Installs the correct-path source of a thread. The engine does not own
  /// the source's lifetime beyond the run; profiles must stay valid.
  void attach_thread(ThreadId tid, std::shared_ptr<trace::TraceSource> source,
                     const trace::TraceProfile* profile, std::uint64_t seed);

  /// Fetch selection policy (FetchConfig::selection): -1 when nobody can
  /// fetch. `eligible` bit i gates thread i (resource-assignment policies
  /// may veto threads, e.g. Stall/Flush+). Round-robin keeps a cursor, so
  /// selection mutates the engine.
  [[nodiscard]] ThreadId select_fetch_thread(std::uint32_t eligible_mask,
                                             Cycle now);

  /// Runs one fetch cycle for `tid`, pushing µops into its decode queue.
  void fetch_cycle(ThreadId tid, Cycle now);

  // --- Decode queue interface (consumed by rename) ---
  [[nodiscard]] int queue_size(ThreadId tid) const {
    return threads_[static_cast<std::size_t>(tid)].queue.size();
  }
  [[nodiscard]] bool queue_empty(ThreadId tid) const {
    return threads_[static_cast<std::size_t>(tid)].queue.empty();
  }
  [[nodiscard]] const FetchedUop& queue_front(ThreadId tid) const {
    return threads_[static_cast<std::size_t>(tid)].queue.front();
  }
  FetchedUop pop_front(ThreadId tid) {
    FetchedUop fu = queue_front(tid);
    drop_front(tid);
    return fu;
  }
  /// pop_front without materialising the (already consumed) front entry.
  void drop_front(ThreadId tid) {
    threads_[static_cast<std::size_t>(tid)].queue.pop_front();
  }

  // --- Recovery ---
  /// Branch misprediction resolved: drop wrong-path state, flush the decode
  /// queue (it only holds wrong-path µops), restore history and stall fetch
  /// for the refill penalty.
  void resolve_mispredict(ThreadId tid, std::uint64_t history_checkpoint,
                          bool actual_taken, Cycle now);

  /// Policy-induced flush (Flush+): clears wrong-path state and the decode
  /// queue, then requeues the squashed correct-path µops (oldest first) so
  /// they are re-delivered before new trace µops.
  void flush_and_replay(ThreadId tid,
                        std::span<const trace::MicroOp> replay_oldest_first,
                        std::optional<std::uint64_t> history_checkpoint);

  /// Blocks fetch for a thread until `until` (e.g. I-TLB walks, refill).
  void stall_until(ThreadId tid, Cycle until);
  [[nodiscard]] bool stalled(ThreadId tid, Cycle now) const;
  /// First cycle the thread may fetch again (skip-ahead horizon input).
  [[nodiscard]] Cycle stalled_until(ThreadId tid) const {
    return threads_[static_cast<std::size_t>(tid)].stall_until;
  }

  /// True while the thread is fetching down a mispredicted path.
  [[nodiscard]] bool on_wrong_path(ThreadId tid) const;

  [[nodiscard]] BranchPredictor& predictor() noexcept { return predictor_; }
  [[nodiscard]] TraceCache& trace_cache() noexcept { return trace_cache_; }
  [[nodiscard]] const FetchStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const FetchConfig& config() const noexcept { return config_; }

  /// Zeroes fetch/predictor/trace-cache statistics (state stays warm).
  void reset_stats() noexcept {
    stats_ = FetchStats{};
    predictor_.reset_stats();
    trace_cache_.reset_stats();
  }

 private:
  /// Correct-path µops prefetched per TraceSource::fill call: one virtual
  /// dispatch per buffer refill instead of one per µop. Sized at several
  /// fetch groups so tape replay amortises to chunk-copy rate.
  static constexpr int kPrefetch = 32;

  struct ThreadState {
    std::shared_ptr<trace::TraceSource> source;
    const trace::TraceProfile* profile = nullptr;
    std::uint64_t seed = 0;
    std::deque<trace::MicroOp> replay;  // refetch after flush, oldest first
    // Prefetch buffer over the source: buf[buf_head, buf_head+buf_count)
    // holds the next correct-path µops of the stream, refilled in batches.
    // Invariant: drained into `replay` on flush, so whenever `replay` is
    // non-empty the buffer is empty and replay is the stream front.
    std::array<trace::MicroOp, kPrefetch> buf;
    int buf_head = 0;
    int buf_count = 0;
    trace::WrongPathSource wrong_path;
    bool wrong_path_active = false;
    Cycle stall_until = 0;
    DecodeQueue queue;  // decode queue
  };

  /// Next correct-path µop (replay first, then the prefetch buffer).
  trace::MicroOp next_correct_uop(ThreadState& ts);
  [[nodiscard]] std::uint64_t peek_pc(ThreadState& ts);
  void refill_buffer(ThreadState& ts) {
    ts.source->fill(ts.buf.data(), kPrefetch);
    ts.buf_head = 0;
    ts.buf_count = kPrefetch;
  }

  // fetch_cycle body, split by path. A fetch group never mixes paths: a
  // mispredict ends the correct-path group (redirection bubble) and the
  // wrong path only clears outside fetch (resolve_mispredict / flush).
  void fetch_wrong_path(ThreadId tid, ThreadState& ts, int budget);
  void fetch_correct_path(ThreadId tid, ThreadState& ts, int budget);
  /// Predicts/updates for a correct-path branch already in the queue;
  /// returns true when the branch ends the fetch group.
  bool handle_correct_branch(ThreadId tid, ThreadState& ts, FetchedUop& fu);

  FetchConfig config_;
  int num_threads_;
  BranchPredictor predictor_;
  TraceCache trace_cache_;
  memory::Tlb itlb_;
  std::vector<ThreadState> threads_;
  FetchStats stats_;
  ThreadId rr_cursor_ = 0;  // next round-robin candidate
};

}  // namespace clusmt::frontend
