// Per-thread register renaming with cross-cluster replica tracking.
//
// In the clustered back-end a logical register value may be present in
// several clusters at once: the producer's cluster holds the "home" copy
// and copy µops create replicas in consumer clusters ([12]). The rename
// map therefore maps each architectural register to a *replica set*: one
// optional physical register per cluster. A redefinition supersedes the
// whole set (all replicas are freed when the redefining µop commits); a
// squash restores the previous set from per-µop undo records.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <vector>

#include "common/phys_ref.h"
#include "common/types.h"

namespace clusmt::frontend {

/// One physical register per cluster; -1 = no replica in that cluster.
/// `mask` mirrors the phys array (bit c set ⟺ phys[c] >= 0); RenameMap
/// maintains it on every mutation. The loop accessors below stay the
/// reference implementation — the simulator's rename-memo fast paths
/// (SimConfig::rename_memo) read the mask instead, and the two must agree
/// bit for bit (tests/skip_ahead_test.cc diffs the modes end to end).
struct ReplicaSet {
  std::array<std::int16_t, kMaxClusters> phys = {-1, -1, -1, -1};
  std::uint8_t mask = 0;

  [[nodiscard]] bool present(ClusterId c) const noexcept {
    return phys[c] >= 0;
  }
  [[nodiscard]] bool anywhere() const noexcept {
    for (auto p : phys) {
      if (p >= 0) return true;
    }
    return false;
  }
  /// First cluster holding a replica, or -1.
  [[nodiscard]] ClusterId any_cluster() const noexcept {
    for (int c = 0; c < kMaxClusters; ++c) {
      if (phys[c] >= 0) return c;
    }
    return -1;
  }
};

class RenameMap {
 public:
  explicit RenameMap(int num_clusters);

  /// Replica set of `arch`. Rename is the per-µop inner loop, so the
  /// lookup is unchecked in release builds; arch indices come from trace
  /// generation, which only emits valid architectural registers.
  [[nodiscard]] const ReplicaSet& get(int arch) const {
    assert(is_valid_arch_reg(arch));
    return map_[static_cast<std::size_t>(arch)];
  }

  /// Redefinition: the new mapping is exactly {cluster -> phys}. Returns
  /// the superseded set (the caller records it as the µop's undo/free log).
  ReplicaSet define(int arch, ClusterId cluster, std::int16_t phys);

  /// A copy µop materialised a replica in `cluster`.
  void add_replica(int arch, ClusterId cluster, std::int16_t phys);

  /// Squash undo for add_replica.
  void remove_replica(int arch, ClusterId cluster);

  /// Squash undo for define.
  void restore(int arch, const ReplicaSet& previous);

  [[nodiscard]] int num_clusters() const noexcept { return num_clusters_; }

 private:
  std::vector<ReplicaSet> map_;
  int num_clusters_;
};

}  // namespace clusmt::frontend
