// Instruction steering: chooses the *preferred* cluster for a µop at
// rename. The paper builds every resource-assignment scheme "on top of the
// state-of-the-art steering mechanism proposed in [12]" (Canal, Parcerisa,
// González — Dynamic Cluster Assignment Mechanisms, HPCA 2000): steer to
// the cluster where most source operands reside to minimise inter-cluster
// copies, overridden towards the least-loaded cluster when the workload
// imbalance between clusters exceeds a threshold.
//
// Round-robin (Raasch-style) and pure least-loaded steering are kept for
// ablation benches.
#pragma once

#include <cstdint>
#include <span>

#include "common/types.h"

namespace clusmt::steer {

enum class SteeringKind : std::uint8_t {
  kDependenceBalance,  // [12] §3.8 — the paper's baseline
  kRoundRobin,         // ablation: [24]'s first SMT-clustered evaluation
  kLeastLoaded,        // ablation: balance only, dependence blind
};

struct SteeringStats {
  std::uint64_t decisions = 0;
  std::uint64_t balance_overrides = 0;  // dependence vote overridden
  std::uint64_t dependence_free = 0;    // µops with no resident operands
};

/// Sealed (final, inline) steering dispatch: `preferred` is queried once
/// per renamed µop, so the kind switch lives in the header and inlines into
/// the rename stage instead of paying an out-of-line call per decision.
class Steering final {
 public:
  Steering(SteeringKind kind, int num_clusters, int imbalance_threshold = 6);

  /// Preferred cluster for a µop.
  /// `dep_count[c]` — number of the µop's source operands whose value is
  /// resident in cluster c; `iq_occupancy[c]` — current total issue-queue
  /// occupancy of cluster c.
  [[nodiscard]] ClusterId preferred(std::span<const int> dep_count,
                                    std::span<const int> iq_occupancy) {
    ++stats_.decisions;
    switch (kind_) {
      case SteeringKind::kRoundRobin: {
        const ClusterId c = rr_next_;
        rr_next_ = (rr_next_ + 1) % num_clusters_;
        return c;
      }
      case SteeringKind::kLeastLoaded:
        return least_loaded(iq_occupancy);
      case SteeringKind::kDependenceBalance:
        break;
    }
    return dependence_balance(dep_count, iq_occupancy);
  }

  [[nodiscard]] SteeringKind kind() const noexcept { return kind_; }
  [[nodiscard]] const SteeringStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = SteeringStats{}; }

 private:
  [[nodiscard]] ClusterId least_loaded(
      std::span<const int> iq_occupancy) const noexcept {
    ClusterId best = 0;
    for (int c = 1; c < num_clusters_; ++c) {
      if (iq_occupancy[c] < iq_occupancy[best]) best = c;
    }
    return best;
  }

  [[nodiscard]] ClusterId dependence_balance(
      std::span<const int> dep_count, std::span<const int> iq_occupancy);

  SteeringKind kind_;
  int num_clusters_;
  int imbalance_threshold_;
  int rr_next_ = 0;
  SteeringStats stats_;
};

}  // namespace clusmt::steer
