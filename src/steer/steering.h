// Instruction steering: chooses the *preferred* cluster for a µop at
// rename. The paper builds every resource-assignment scheme "on top of the
// state-of-the-art steering mechanism proposed in [12]" (Canal, Parcerisa,
// González — Dynamic Cluster Assignment Mechanisms, HPCA 2000): steer to
// the cluster where most source operands reside to minimise inter-cluster
// copies, overridden towards the least-loaded cluster when the workload
// imbalance between clusters exceeds a threshold.
//
// Round-robin (Raasch-style) and pure least-loaded steering are kept for
// ablation benches.
#pragma once

#include <cstdint>
#include <span>

#include "common/types.h"

namespace clusmt::steer {

enum class SteeringKind : std::uint8_t {
  kDependenceBalance,  // [12] §3.8 — the paper's baseline
  kRoundRobin,         // ablation: [24]'s first SMT-clustered evaluation
  kLeastLoaded,        // ablation: balance only, dependence blind
};

struct SteeringStats {
  std::uint64_t decisions = 0;
  std::uint64_t balance_overrides = 0;  // dependence vote overridden
  std::uint64_t dependence_free = 0;    // µops with no resident operands
};

/// Sealed (final, inline) steering dispatch: `preferred` is queried once
/// per renamed µop, so the kind switch lives in the header and inlines into
/// the rename stage instead of paying an out-of-line call per decision.
class Steering final {
 public:
  Steering(SteeringKind kind, int num_clusters, int imbalance_threshold = 6);

  /// Declares per-cluster issue-queue capacities for capability-aware
  /// balancing on heterogeneous grids: loads are compared relative to
  /// capacity, so a wide cluster legitimately holds more work before the
  /// balance override fires. All-equal capacities (and the default of
  /// never calling this) keep every comparison byte-identical to the raw
  /// homogeneous mechanism.
  void set_capacities(std::span<const int> capacities);

  /// `occupancy` normalised to the reference (largest) cluster capacity;
  /// the identity when capacities are homogeneous. The rename stage uses
  /// the same scale for its fallback cluster ordering.
  [[nodiscard]] int scaled_load(ClusterId c, int occupancy) const noexcept {
    if (!heterogeneous_) return occupancy;
    return static_cast<int>(static_cast<std::int64_t>(occupancy) * cap_ref_ /
                            capacity_[c]);
  }

  /// Preferred cluster for a µop.
  /// `dep_count[c]` — number of the µop's source operands whose value is
  /// resident in cluster c; `iq_occupancy[c]` — current total issue-queue
  /// occupancy of cluster c.
  [[nodiscard]] ClusterId preferred(std::span<const int> dep_count,
                                    std::span<const int> iq_occupancy) {
    ++stats_.decisions;
    switch (kind_) {
      case SteeringKind::kRoundRobin: {
        const ClusterId c = rr_next_;
        rr_next_ = (rr_next_ + 1) % num_clusters_;
        return c;
      }
      case SteeringKind::kLeastLoaded:
        return least_loaded(iq_occupancy);
      case SteeringKind::kDependenceBalance:
        break;
    }
    return dependence_balance(dep_count, iq_occupancy);
  }

  [[nodiscard]] SteeringKind kind() const noexcept { return kind_; }
  [[nodiscard]] const SteeringStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = SteeringStats{}; }
  /// Replays `times` repetitions of one cycle's stat delta (quiescent-cycle
  /// skip-ahead: each skipped cycle would have made identical decisions).
  /// The round-robin cursor is deliberately untouched — the core refuses to
  /// skip when a kRoundRobin cycle made any decision.
  void add_stats(const SteeringStats& delta, std::uint64_t times) noexcept {
    stats_.decisions += delta.decisions * times;
    stats_.balance_overrides += delta.balance_overrides * times;
    stats_.dependence_free += delta.dependence_free * times;
  }

 private:
  [[nodiscard]] ClusterId least_loaded(
      std::span<const int> iq_occupancy) const noexcept {
    ClusterId best = 0;
    int best_load = scaled_load(0, iq_occupancy[0]);
    for (int c = 1; c < num_clusters_; ++c) {
      const int load = scaled_load(c, iq_occupancy[c]);
      if (load < best_load) {
        best = c;
        best_load = load;
      }
    }
    return best;
  }

  [[nodiscard]] ClusterId dependence_balance(
      std::span<const int> dep_count, std::span<const int> iq_occupancy);

  SteeringKind kind_;
  int num_clusters_;
  int imbalance_threshold_;
  int rr_next_ = 0;
  bool heterogeneous_ = false;
  int cap_ref_ = 0;  // largest declared capacity (the scale reference)
  int capacity_[kMaxClusters] = {};
  SteeringStats stats_;
};

}  // namespace clusmt::steer
