#include "steer/steering.h"

#include <algorithm>
#include <stdexcept>

namespace clusmt::steer {

Steering::Steering(SteeringKind kind, int num_clusters,
                   int imbalance_threshold)
    : kind_(kind),
      num_clusters_(num_clusters),
      imbalance_threshold_(imbalance_threshold) {
  if (num_clusters < 1 || num_clusters > kMaxClusters) {
    throw std::invalid_argument("unsupported cluster count");
  }
}

ClusterId Steering::dependence_balance(std::span<const int> dep_count,
                                       std::span<const int> iq_occupancy) {
  // Dependence vote: cluster holding the most source operands. Values
  // replicated in several clusters vote for all of them, so ties (including
  // "no votes at all") fall through to workload balance — replicated or
  // absent operands impose no communication constraint.
  int best_votes = 0;
  for (int c = 0; c < num_clusters_; ++c) {
    best_votes = std::max(best_votes, dep_count[c]);
  }
  const ClusterId balanced = least_loaded(iq_occupancy);
  if (best_votes == 0) {
    ++stats_.dependence_free;
    return balanced;
  }
  ClusterId dep_best = -1;
  for (int c = 0; c < num_clusters_; ++c) {
    if (dep_count[c] == best_votes &&
        (dep_best < 0 || iq_occupancy[c] < iq_occupancy[dep_best])) {
      dep_best = c;
    }
  }
  // Workload-balance override: ignore the dependence vote when its cluster
  // is ahead of the lightest one by more than the threshold.
  if (iq_occupancy[dep_best] - iq_occupancy[balanced] >
      imbalance_threshold_) {
    ++stats_.balance_overrides;
    return balanced;
  }
  return dep_best;
}

}  // namespace clusmt::steer
