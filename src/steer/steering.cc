#include "steer/steering.h"

#include <algorithm>
#include <stdexcept>

namespace clusmt::steer {

Steering::Steering(SteeringKind kind, int num_clusters,
                   int imbalance_threshold)
    : kind_(kind),
      num_clusters_(num_clusters),
      imbalance_threshold_(imbalance_threshold) {
  if (num_clusters < 1 || num_clusters > kMaxClusters) {
    throw std::invalid_argument("unsupported cluster count");
  }
}

void Steering::set_capacities(std::span<const int> capacities) {
  if (static_cast<int>(capacities.size()) < num_clusters_) {
    throw std::invalid_argument("capacity for every cluster required");
  }
  cap_ref_ = 0;
  bool uniform = true;
  for (int c = 0; c < num_clusters_; ++c) {
    if (capacities[c] < 1) {
      throw std::invalid_argument("cluster capacity must be positive");
    }
    capacity_[c] = capacities[c];
    cap_ref_ = std::max(cap_ref_, capacities[c]);
    uniform = uniform && capacities[c] == capacities[0];
  }
  // Equal capacities scale to the identity; skip the arithmetic entirely
  // so the homogeneous machine keeps its raw-occupancy comparisons.
  heterogeneous_ = !uniform;
}

ClusterId Steering::dependence_balance(std::span<const int> dep_count,
                                       std::span<const int> iq_occupancy) {
  // Dependence vote: cluster holding the most source operands. Values
  // replicated in several clusters vote for all of them, so ties (including
  // "no votes at all") fall through to workload balance — replicated or
  // absent operands impose no communication constraint.
  int best_votes = 0;
  for (int c = 0; c < num_clusters_; ++c) {
    best_votes = std::max(best_votes, dep_count[c]);
  }
  const ClusterId balanced = least_loaded(iq_occupancy);
  if (best_votes == 0) {
    ++stats_.dependence_free;
    return balanced;
  }
  ClusterId dep_best = -1;
  int dep_best_load = 0;
  for (int c = 0; c < num_clusters_; ++c) {
    if (dep_count[c] != best_votes) continue;
    const int load = scaled_load(c, iq_occupancy[c]);
    if (dep_best < 0 || load < dep_best_load) {
      dep_best = c;
      dep_best_load = load;
    }
  }
  // Workload-balance override: ignore the dependence vote when its cluster
  // is ahead of the lightest one by more than the threshold. Loads are
  // capacity-scaled, so on heterogeneous grids a wide cluster is not
  // penalised for legitimately holding more µops.
  if (dep_best_load - scaled_load(balanced, iq_occupancy[balanced]) >
      imbalance_threshold_) {
    ++stats_.balance_overrides;
    return balanced;
  }
  return dep_best;
}

}  // namespace clusmt::steer
