// Register-file assignment schemes of Table 4 and the paper's proposal.
//
// All three keep CSSP as the issue-queue handler (the paper's §5.2 choice)
// and add register-allocation limits:
//   * CSSPRF — static, cluster-sensitive: a thread may hold at most half of
//     each cluster's register file of each class (shown inferior: it
//     contradicts the steering/IQ decisions).
//   * CISPRF — static, cluster-insensitive: at most half of the *total*
//     registers of each class.
//   * CDPRF — the proposal: cluster-insensitive *dynamic* partitioning. A
//     per-(thread, class) RFOC counter accumulates occupancy plus a
//     Starvation counter every cycle (Figure 7); at the end of each 128K-
//     cycle interval the average becomes the thread's guaranteed region,
//     clamped to half the register file (Figure 8). A thread above its
//     guarantee may allocate only while every other thread's guarantee
//     remains satisfiable.
#pragma once

#include <array>
#include <cstdint>

#include "policy/partition.h"

namespace clusmt::policy {

/// CSSP + per-cluster static register-file halves.
class CssprfPolicy final : public CsspPolicy {
 public:
  explicit CssprfPolicy(const PolicyConfig& config) : CsspPolicy(config) {}
  [[nodiscard]] std::string_view name() const override { return "CSSPRF"; }

  [[nodiscard]] bool allow_rf_alloc(const PipelineView& view, ThreadId tid,
                                    ClusterId c, RegClass cls,
                                    int count) override;
};

/// CSSP + total (cluster-insensitive) static register-file halves.
class CisprfPolicy final : public CsspPolicy {
 public:
  explicit CisprfPolicy(const PolicyConfig& config) : CsspPolicy(config) {}
  [[nodiscard]] std::string_view name() const override { return "CISPRF"; }

  [[nodiscard]] bool allow_rf_alloc(const PipelineView& view, ThreadId tid,
                                    ClusterId c, RegClass cls,
                                    int count) override;
};

/// CSSP + Cluster-insensitive Dynamically Partitioned Register File — the
/// paper's contribution (called CDPRF/CIDPRF in §5.2 and Figure 9).
class CdprfPolicy final : public CsspPolicy {
 public:
  explicit CdprfPolicy(const PolicyConfig& config);
  [[nodiscard]] std::string_view name() const override { return "CDPRF"; }

  void begin_cycle(const PipelineView& view) override;

  /// Closed form of `to - from` begin_cycle calls over a frozen view: the
  /// starvation counter ramps linearly on a blocked class, so the RFOC
  /// integral is quadratic-in-k triangular, not k times one delta.
  void quiesce(const PipelineView& view, Cycle from, Cycle to) override;
  /// Skips must not cross the 128K-cycle interval boundary — rollover
  /// rewrites every threshold and needs to run on a live cycle.
  [[nodiscard]] Cycle quiesce_horizon(Cycle now) const override;

  [[nodiscard]] bool allow_rf_alloc(const PipelineView& view, ThreadId tid,
                                    ClusterId c, RegClass cls,
                                    int count) override;

  // --- Introspection for tests and the micro-bench ---
  [[nodiscard]] std::uint64_t rfoc(ThreadId tid, RegClass cls) const {
    return state_[tid][static_cast<int>(cls)].rfoc;
  }
  [[nodiscard]] std::uint64_t starvation(ThreadId tid, RegClass cls) const {
    return state_[tid][static_cast<int>(cls)].starvation;
  }
  [[nodiscard]] int threshold(ThreadId tid, RegClass cls) const {
    return state_[tid][static_cast<int>(cls)].threshold;
  }
  [[nodiscard]] Cycle interval() const noexcept {
    return config_.cdprf_interval;
  }

 private:
  struct PerThreadClass {
    std::uint64_t rfoc = 0;        // Register File Occupancy accumulator
    std::uint64_t starvation = 0;  // consecutive RF-starved cycles
    int threshold = 0;             // guaranteed registers this interval
    bool threshold_initialised = false;
  };

  void roll_interval(const PipelineView& view);

  std::array<std::array<PerThreadClass, kNumRegClasses>, kMaxThreads> state_;
  Cycle interval_start_ = 0;
  bool started_ = false;
};

}  // namespace clusmt::policy
