// ResourceAssignmentPolicy: the interface every scheme of the paper
// implements (Tables 3 and 4). A policy controls
//   1. which threads may fetch (Stall/Flush+ gate threads with L2 misses),
//   2. which thread renames each cycle (the rename selection policy, §3),
//   3. whether a thread may dispatch µops into a cluster's issue queue
//      (the static/partial partitions: CISP, CSSP, CSPSP, PC),
//   4. whether a thread may allocate physical registers in a cluster
//      (CSSPRF, CISPRF and the dynamic CDPRF), and
//   5. flush requests (Flush+ releases a missing thread's resources).
//
// The default rename selection is Icount [1]: the thread with the fewest
// instructions between rename and issue.
//
// Dispatch contract: the simulator routes the hot per-µop queries through
// the sealed switch in policy/dispatch.h (one case per PolicyKind,
// non-virtual qualified calls), keeping this virtual interface for
// configuration time and the cold event paths. Adding a PolicyKind, or
// overriding one of the hot queries (eligibility, selection, allow_*,
// forced_cluster, begin_cycle, flush_request) in a policy class, requires
// the matching case in PolicyDispatch — tests/policy_dispatch_test.cc
// diffs the two dispatch modes across every scheme and fails on any
// divergence.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "policy/view.h"

namespace clusmt::policy {

/// Flush everything of `tid` younger than `after_seq` (the missing load),
/// then keep the thread fetch-gated until its miss resolves.
struct FlushRequest {
  ThreadId tid = -1;
  std::uint64_t after_seq = 0;
};

class ResourceAssignmentPolicy {
 public:
  virtual ~ResourceAssignmentPolicy() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Gate on fetch: subset of `candidates` allowed to fetch this cycle.
  [[nodiscard]] virtual std::uint32_t fetch_eligible(
      const PipelineView& view, std::uint32_t candidates) {
    (void)view;
    return candidates;
  }

  /// Gate on rename: subset of `candidates` eligible for rename selection.
  [[nodiscard]] virtual std::uint32_t rename_eligible(
      const PipelineView& view, std::uint32_t candidates) {
    (void)view;
    return candidates;
  }

  /// Rename selection policy. Default: Icount with round-robin tie-break.
  [[nodiscard]] virtual ThreadId select_rename_thread(
      const PipelineView& view, std::uint32_t candidates);

  /// May `tid` insert `count` more µops into cluster `c`'s issue queue,
  /// as part of a rename group adding `total_count` entries across all
  /// clusters (µop + copies)? Cluster-insensitive schemes must bound the
  /// thread's *total* occupancy using `total_count`. (Capacity itself is
  /// checked by the core; this is the policy limit.)
  [[nodiscard]] virtual bool allow_iq_dispatch(const PipelineView& view,
                                               ThreadId tid, ClusterId c,
                                               int count, int total_count) {
    (void)view;
    (void)tid;
    (void)c;
    (void)count;
    (void)total_count;
    return true;
  }

  /// May `tid` allocate `count` more registers of class `cls` in cluster
  /// `c`? (Free-list capacity is checked by the core.)
  [[nodiscard]] virtual bool allow_rf_alloc(const PipelineView& view,
                                            ThreadId tid, ClusterId c,
                                            RegClass cls, int count) {
    (void)view;
    (void)tid;
    (void)c;
    (void)cls;
    (void)count;
    return true;
  }

  /// Private-cluster schemes pin threads to clusters; -1 = unconstrained.
  [[nodiscard]] virtual ClusterId forced_cluster(const PipelineView& view,
                                                 ThreadId tid) const {
    (void)view;
    (void)tid;
    return -1;
  }

  /// Called once per cycle before any query (dynamic schemes update
  /// counters and interval state here).
  virtual void begin_cycle(const PipelineView& view) { (void)view; }

  /// Memory events (from the shared L2): `load_seq` identifies the missing
  /// load within the thread.
  virtual void on_l2_miss(ThreadId tid, std::uint64_t load_seq, Cycle now) {
    (void)tid;
    (void)load_seq;
    (void)now;
  }
  virtual void on_l2_resolved(ThreadId tid, std::uint64_t load_seq,
                              Cycle now) {
    (void)tid;
    (void)load_seq;
    (void)now;
  }

  /// Flush+ asks the core to squash a thread; the core performs the squash
  /// and confirms via on_flush_done.
  [[nodiscard]] virtual std::optional<FlushRequest> flush_request(Cycle now) {
    (void)now;
    return std::nullopt;
  }
  virtual void on_flush_done(ThreadId tid) { (void)tid; }

  // --- Quiescent-cycle skip-ahead support (core/simulator.cc) ---
  // When the core proves cycles [from, to) would change nothing but
  // monotone stall counters, it skips them and calls quiesce() once in
  // their place. The contract: quiesce(view, from, to) must leave the
  // policy in exactly the state `to - from` begin_cycle calls over the
  // frozen view would have — the default replays them literally; policies
  // with a closed form (CDPRF) override. These fire per skip episode, not
  // per µop, so they stay on the virtual cold path (no dispatch.h case).

  /// Replays the per-cycle bookkeeping for the skipped cycles [from, to).
  virtual void quiesce(const PipelineView& view, Cycle from, Cycle to);

  /// Earliest cycle the policy's decisions could change while the machine
  /// is otherwise frozen; skips never cross it. Interval policies return
  /// their next epoch boundary (the boundary cycle itself must execute
  /// normally so rollover sees a live view).
  [[nodiscard]] virtual Cycle quiesce_horizon(Cycle now) const;

  /// Fingerprint of the rename-selection cursor state. A skip is only
  /// valid when one probed cycle leaves this unchanged (the cursor is at a
  /// fixpoint); Icount's tie-break cursor alternates on ties, which this
  /// catches. Policies with their own cursor (UnreadyGate) override.
  [[nodiscard]] virtual std::uint64_t select_state_fingerprint() const {
    return static_cast<std::uint64_t>(rr_tiebreak_);
  }

 protected:
  /// Shared Icount implementation [1]: fewest µops between rename and
  /// issue; ties rotate round-robin for fairness.
  [[nodiscard]] ThreadId icount_select(const PipelineView& view,
                                       std::uint32_t candidates);

 private:
  ThreadId rr_tiebreak_ = 0;
};

/// Scheme identifiers: Tables 3 and 4, the paper's proposal, and the
/// future-work adaptations the paper names in §2/§6 (implemented in
/// policy/adaptive.h — Flush++ [25], DCRA [30], hill-climbing [32] and
/// unready-count front-end gating [20]).
enum class PolicyKind : std::uint8_t {
  kIcount = 0,
  kStall,
  kFlushPlus,
  kCisp,
  kCssp,
  kCspsp,
  kPrivateClusters,
  kCssprf,
  kCisprf,
  kCdprf,
  // --- extensions beyond the paper's evaluation ---
  kFlushPlusPlus,
  kDcra,
  kHillClimb,
  kUnreadyGate,
};

struct PolicyConfig {
  /// Fraction of a resource one thread may take under the static
  /// partitions; the paper's two-thread setting is 1/2.
  double partition_fraction = 0.5;
  /// CSPSP: guaranteed per-thread per-cluster fraction (paper: 25%).
  double cspsp_guarantee_fraction = 0.25;
  /// CDPRF measurement interval in cycles (paper: 128K, a power of two so
  /// the average is a shift).
  Cycle cdprf_interval = 128 * 1024;

  // --- Extension-policy knobs (policy/adaptive.h) ---
  /// DCRA: fraction of a slow thread's even share it may keep (Cazorla's
  /// slow threads get a reduced share; fast threads absorb the remainder).
  double dcra_slow_share = 0.5;
  /// Hill-climbing: cycles per measurement epoch and share step per trial.
  Cycle hillclimb_epoch = 16 * 1024;
  double hillclimb_delta = 1.0 / 16.0;
  /// Unready-count fetch gate: a thread is fetch-gated while its not-ready
  /// µops exceed this fraction of the total issue-queue capacity.
  double unready_gate_fraction = 0.25;
};

[[nodiscard]] std::unique_ptr<ResourceAssignmentPolicy> make_policy(
    PolicyKind kind, const PolicyConfig& config = {});

[[nodiscard]] std::string_view policy_kind_name(PolicyKind kind) noexcept;

/// Parses "Icount", "Flush+", "CDPRF", ... (case-sensitive paper names).
[[nodiscard]] std::optional<PolicyKind> parse_policy_kind(
    std::string_view name) noexcept;

/// All schemes in paper order.
[[nodiscard]] const std::vector<PolicyKind>& all_policy_kinds();

}  // namespace clusmt::policy
