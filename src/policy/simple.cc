#include "policy/simple.h"

#include <algorithm>

namespace clusmt::policy {

namespace {
/// Threads in `candidates` minus those with a pending L2 miss; if that
/// empties the set, keep it empty (the other thread's work continues; the
/// gated threads resume on resolution).
std::uint32_t mask_off_missing(const PipelineView& view,
                               std::uint32_t candidates) {
  std::uint32_t out = candidates;
  for (ThreadId t = 0; t < view.num_threads; ++t) {
    if (view.l2_pending[t]) out &= ~(1u << t);
  }
  return out;
}
}  // namespace

std::uint32_t StallPolicy::fetch_eligible(const PipelineView& view,
                                          std::uint32_t candidates) {
  return mask_off_missing(view, candidates);
}

std::uint32_t FlushPlusPolicy::gate(const PipelineView& view,
                                    std::uint32_t candidates) const {
  std::uint32_t out = candidates;
  // Identify the earliest misser; with two or more pending missers it is
  // exempt from gating ("the one that missed first is allowed to continue").
  int missing = 0;
  ThreadId earliest = -1;
  for (ThreadId t = 0; t < view.num_threads; ++t) {
    if (miss_[t].outstanding > 0) {
      ++missing;
      if (earliest < 0 ||
          miss_[t].first_miss_cycle < miss_[earliest].first_miss_cycle) {
        earliest = t;
      }
    }
  }
  for (ThreadId t = 0; t < view.num_threads; ++t) {
    if (miss_[t].outstanding == 0) continue;
    if (missing >= 2 && t == earliest) continue;
    out &= ~(1u << t);
  }
  return out;
}

std::uint32_t FlushPlusPolicy::fetch_eligible(const PipelineView& view,
                                              std::uint32_t candidates) {
  return gate(view, candidates);
}

std::uint32_t FlushPlusPolicy::rename_eligible(const PipelineView& view,
                                               std::uint32_t candidates) {
  return gate(view, candidates);
}

void FlushPlusPolicy::update_flush_targets() {
  int missing = 0;
  ThreadId earliest = -1;
  for (ThreadId t = 0; t < kMaxThreads; ++t) {
    if (miss_[t].outstanding > 0) {
      ++missing;
      if (earliest < 0 ||
          miss_[t].first_miss_cycle < miss_[earliest].first_miss_cycle) {
        earliest = t;
      }
    }
  }
  for (ThreadId t = 0; t < kMaxThreads; ++t) {
    MissState& m = miss_[t];
    if (m.outstanding == 0) continue;
    const bool exempt = missing >= 2 && t == earliest;
    if (!exempt && !m.flushed && !m.flush_pending) m.flush_pending = true;
  }
}

void FlushPlusPolicy::on_l2_miss(ThreadId tid, std::uint64_t load_seq,
                                 Cycle now) {
  MissState& m = miss_[tid];
  if (m.outstanding == 0) {
    m.first_miss_cycle = now;
    m.oldest_load_seq = load_seq;
  } else {
    m.oldest_load_seq = std::min(m.oldest_load_seq, load_seq);
  }
  ++m.outstanding;
  update_flush_targets();
}

void FlushPlusPolicy::on_l2_resolved(ThreadId tid, std::uint64_t /*load_seq*/,
                                     Cycle /*now*/) {
  MissState& m = miss_[tid];
  if (m.outstanding > 0) --m.outstanding;
  if (m.outstanding == 0) m = MissState{};
  update_flush_targets();
}

std::optional<FlushRequest> FlushPlusPolicy::flush_request(Cycle /*now*/) {
  for (ThreadId t = 0; t < kMaxThreads; ++t) {
    if (miss_[t].flush_pending) {
      return FlushRequest{.tid = t, .after_seq = miss_[t].oldest_load_seq};
    }
  }
  return std::nullopt;
}

void FlushPlusPolicy::on_flush_done(ThreadId tid) {
  miss_[tid].flush_pending = false;
  miss_[tid].flushed = true;
}

}  // namespace clusmt::policy
