// The non-partitioned schemes of Table 3: Icount [1], Stall [19] and
// Flush+ [25].
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "policy/policy.h"

namespace clusmt::policy {

/// Icount: rename the thread with the fewest µops between rename and
/// issue. No allocation limits.
class IcountPolicy final : public ResourceAssignmentPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "Icount"; }
};

/// Stall: Icount, plus a thread with a pending L2 miss stops *fetching*
/// until the miss resolves [19] (already-fetched µops keep renaming, as in
/// Tullsen & Brown's STALL).
class StallPolicy final : public ResourceAssignmentPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "Stall"; }

  [[nodiscard]] std::uint32_t fetch_eligible(const PipelineView& view,
                                             std::uint32_t candidates) override;
};

/// Flush+: a thread with a pending L2 miss releases all its allocated
/// resources (everything younger than the missing load is squashed) and is
/// fetch-gated until the miss resolves. When several threads miss, the one
/// that missed *first* is allowed to continue [25]. Subclassed by Flush++
/// (policy/adaptive.h), which suppresses the squash at low thread counts.
class FlushPlusPolicy : public ResourceAssignmentPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "Flush+"; }

  [[nodiscard]] std::uint32_t fetch_eligible(const PipelineView& view,
                                             std::uint32_t candidates) override;
  [[nodiscard]] std::uint32_t rename_eligible(
      const PipelineView& view, std::uint32_t candidates) override;

  void on_l2_miss(ThreadId tid, std::uint64_t load_seq, Cycle now) override;
  void on_l2_resolved(ThreadId tid, std::uint64_t load_seq,
                      Cycle now) override;
  [[nodiscard]] std::optional<FlushRequest> flush_request(Cycle now) override;
  void on_flush_done(ThreadId tid) override;

  /// True while the policy keeps `tid` gated (for tests).
  [[nodiscard]] bool gated(ThreadId tid) const noexcept {
    return miss_[tid].outstanding > 0 && miss_[tid].flushed;
  }

 protected:
  struct MissState {
    int outstanding = 0;
    Cycle first_miss_cycle = 0;
    std::uint64_t oldest_load_seq = 0;
    bool flushed = false;        // already released its resources
    bool flush_pending = false;  // squash requested, not yet performed
  };

  /// Recomputes which missing threads must be flushed: all of them, except
  /// the earliest misser when two or more threads are missing.
  void update_flush_targets();

  [[nodiscard]] std::uint32_t gate(const PipelineView& view,
                                   std::uint32_t candidates) const;

 private:
  std::array<MissState, kMaxThreads> miss_ = {};
};

}  // namespace clusmt::policy
