// Read-only snapshot of the pipeline state exposed to resource-assignment
// policies. The core refreshes it every cycle; policies never mutate
// machine state directly — they answer allocation/selection queries and
// request flushes.
#pragma once

#include "common/types.h"

namespace clusmt::policy {

struct PipelineView {
  Cycle now = 0;
  int num_threads = 2;
  int num_clusters = 2;

  // Capacities. The scalars are the homogeneous bases; the _c arrays are
  // per-cluster overrides for heterogeneous grids with zero-means-inherit
  // semantics (0 falls back to the base), so hand-built homogeneous views
  // never need to fill them. Policies read per-cluster capacity via the
  // *_of accessors, never the raw fields.
  int iq_capacity = 32;  // entries per cluster (homogeneous base)
  int iq_capacity_c[kMaxClusters] = {};
  int rf_capacity[kNumRegClasses] = {128, 128};  // per cluster, per class
  int rf_capacity_c[kMaxClusters][kNumRegClasses] = {};
  int issue_width = 3;  // issue ports per cluster (homogeneous base)
  int issue_width_c[kMaxClusters] = {};
  bool rf_unbounded = false;

  // Issue-queue occupancies.
  int iq_occ[kMaxClusters] = {};
  int iq_occ_tc[kMaxThreads][kMaxClusters] = {};

  // Register-file occupancies.
  int rf_used[kMaxThreads][kMaxClusters][kNumRegClasses] = {};
  int rf_free[kMaxClusters][kNumRegClasses] = {};

  // Front-end state.
  int decode_queue_depth[kMaxThreads] = {};
  int rob_occ[kMaxThreads] = {};

  // Memory state: outstanding L2 misses per thread.
  bool l2_pending[kMaxThreads] = {};

  // Did renaming block on a register of this class for this thread during
  // the previous cycle? Feeds CDPRF's Starvation counters.
  bool rf_blocked[kMaxThreads][kNumRegClasses] = {};

  // Cumulative useful µops committed per thread (monotonic between stat
  // resets). Feeds the hill-climbing policy's epoch measurements.
  std::uint64_t committed[kMaxThreads] = {};

  // µops held in each issue queue whose sources were not ready when the
  // issue stage last scanned (one cycle stale, as a hardware counter would
  // be). Feeds the unready-count front-end gate [20].
  int iq_unready_tc[kMaxThreads][kMaxClusters] = {};

  // The aggregation helpers below run inside the per-µop policy queries,
  // so they sum over the fixed kMaxClusters bound instead of the runtime
  // cluster count: slots past num_clusters are never written and stay
  // zero, the totals are identical, and the loops unroll branch-free.

  /// Instructions of `tid` between rename and issue (Icount's metric).
  [[nodiscard]] int iq_occ_thread_total(ThreadId tid) const noexcept {
    int total = 0;
    for (int c = 0; c < kMaxClusters; ++c) total += iq_occ_tc[tid][c];
    return total;
  }

  [[nodiscard]] int rf_used_total(ThreadId tid, RegClass cls) const noexcept {
    int total = 0;
    for (int c = 0; c < kMaxClusters; ++c) {
      total += rf_used[tid][c][static_cast<int>(cls)];
    }
    return total;
  }

  [[nodiscard]] int rf_free_total(RegClass cls) const noexcept {
    int total = 0;
    for (int c = 0; c < kMaxClusters; ++c) {
      total += rf_free[c][static_cast<int>(cls)];
    }
    return total;
  }

  /// Register-file capacity of one cluster (override, else the base).
  [[nodiscard]] int rf_capacity_of(ClusterId c, RegClass cls) const noexcept {
    const int v = rf_capacity_c[c][static_cast<int>(cls)];
    return v > 0 ? v : rf_capacity[static_cast<int>(cls)];
  }

  /// Machine-wide register capacity: the sum of each cluster's own file
  /// (NOT per-cluster × num_clusters — clusters may differ in shape).
  [[nodiscard]] int rf_capacity_total(RegClass cls) const noexcept {
    int total = 0;
    for (int c = 0; c < num_clusters; ++c) total += rf_capacity_of(c, cls);
    return total;
  }

  /// Issue-queue capacity of one cluster (override, else the base).
  [[nodiscard]] int iq_capacity_of(ClusterId c) const noexcept {
    return iq_capacity_c[c] > 0 ? iq_capacity_c[c] : iq_capacity;
  }

  [[nodiscard]] int iq_capacity_total() const noexcept {
    int total = 0;
    for (int c = 0; c < num_clusters; ++c) total += iq_capacity_of(c);
    return total;
  }

  /// Issue width of one cluster (override, else the base).
  [[nodiscard]] int issue_width_of(ClusterId c) const noexcept {
    return issue_width_c[c] > 0 ? issue_width_c[c] : issue_width;
  }

  [[nodiscard]] int issue_width_total() const noexcept {
    int total = 0;
    for (int c = 0; c < num_clusters; ++c) total += issue_width_of(c);
    return total;
  }

  [[nodiscard]] std::uint64_t committed_total() const noexcept {
    std::uint64_t total = 0;
    for (int t = 0; t < kMaxThreads; ++t) total += committed[t];
    return total;
  }

  /// Not-ready µops of `tid` across every issue queue.
  [[nodiscard]] int iq_unready_total(ThreadId tid) const noexcept {
    int total = 0;
    for (int c = 0; c < kMaxClusters; ++c) total += iq_unready_tc[tid][c];
    return total;
  }
};

}  // namespace clusmt::policy
