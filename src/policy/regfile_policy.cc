#include "policy/regfile_policy.h"

#include <algorithm>
#include <cmath>

namespace clusmt::policy {

namespace {
[[nodiscard]] int half_of(int capacity, double fraction) noexcept {
  return std::max(1, static_cast<int>(std::floor(capacity * fraction)));
}
}  // namespace

bool CssprfPolicy::allow_rf_alloc(const PipelineView& view, ThreadId tid,
                                  ClusterId c, RegClass cls, int count) {
  if (view.rf_unbounded) return true;
  // Cap against the target cluster's own file: on heterogeneous grids a
  // wide cluster's half is legitimately larger than a narrow one's.
  const int limit =
      half_of(view.rf_capacity_of(c, cls), config_.partition_fraction);
  return view.rf_used[tid][c][static_cast<int>(cls)] + count <= limit;
}

bool CisprfPolicy::allow_rf_alloc(const PipelineView& view, ThreadId tid,
                                  ClusterId /*c*/, RegClass cls, int count) {
  if (view.rf_unbounded) return true;
  const int limit =
      half_of(view.rf_capacity_total(cls), config_.partition_fraction);
  return view.rf_used_total(tid, cls) + count <= limit;
}

CdprfPolicy::CdprfPolicy(const PolicyConfig& config) : CsspPolicy(config) {
  for (auto& per_thread : state_) {
    for (auto& s : per_thread) s = PerThreadClass{};
  }
}

void CdprfPolicy::roll_interval(const PipelineView& view) {
  // Figure 8: threshold <- min(RFOC / interval, RF size / 2); RFOC <- 0.
  // The interval is a power of two so hardware divides with a shift.
  for (ThreadId t = 0; t < view.num_threads; ++t) {
    for (int k = 0; k < kNumRegClasses; ++k) {
      PerThreadClass& s = state_[t][k];
      const int half = half_of(view.rf_capacity_total(
                                   static_cast<RegClass>(k)),
                               config_.partition_fraction);
      const auto average =
          static_cast<int>(s.rfoc / std::max<Cycle>(1, config_.cdprf_interval));
      s.threshold = std::min(average, half);
      s.threshold_initialised = true;
      s.rfoc = 0;
    }
  }
}

void CdprfPolicy::begin_cycle(const PipelineView& view) {
  if (!started_) {
    started_ = true;
    interval_start_ = view.now;
    // Until the first measurement completes, guarantee each thread an equal
    // share of half the register file (behaves like CISPRF initially).
    for (ThreadId t = 0; t < view.num_threads; ++t) {
      for (int k = 0; k < kNumRegClasses; ++k) {
        state_[t][k].threshold =
            half_of(view.rf_capacity_total(static_cast<RegClass>(k)),
                    config_.partition_fraction);
      }
    }
  }

  // Figure 7, per cycle: starvation tracks consecutive register-starved
  // cycles; RFOC accumulates current occupancy plus the starvation counter
  // so a starved thread's threshold grows quickly next interval.
  for (ThreadId t = 0; t < view.num_threads; ++t) {
    for (int k = 0; k < kNumRegClasses; ++k) {
      PerThreadClass& s = state_[t][k];
      if (view.rf_blocked[t][k]) {
        ++s.starvation;
      } else {
        s.starvation = 0;
      }
      s.rfoc += static_cast<std::uint64_t>(
                    view.rf_used_total(t, static_cast<RegClass>(k))) +
                s.starvation;
    }
  }

  if (view.now - interval_start_ >= config_.cdprf_interval) {
    roll_interval(view);
    interval_start_ = view.now;
  }
}

void CdprfPolicy::quiesce(const PipelineView& view, Cycle from, Cycle to) {
  if (!started_ || to <= from) return;
  // Replays Figure 7's per-cycle accumulation for the k skipped cycles in
  // closed form. The view is frozen (occupancies and rf_blocked fixed) and
  // quiesce_horizon keeps [from, to) inside the current interval, so no
  // rollover can fire: on a blocked class the starvation counter runs
  // s0+1 .. s0+k and RFOC gains k*used + k*s0 + k(k+1)/2; otherwise
  // starvation pins at zero and RFOC gains k*used.
  const std::uint64_t k = to - from;
  for (ThreadId t = 0; t < view.num_threads; ++t) {
    for (int c = 0; c < kNumRegClasses; ++c) {
      PerThreadClass& s = state_[t][c];
      const auto used = static_cast<std::uint64_t>(
          view.rf_used_total(t, static_cast<RegClass>(c)));
      if (view.rf_blocked[t][c]) {
        s.rfoc += k * used + k * s.starvation + k * (k + 1) / 2;
        s.starvation += k;
      } else {
        s.starvation = 0;
        s.rfoc += k * used;
      }
    }
  }
}

Cycle CdprfPolicy::quiesce_horizon(Cycle now) const {
  if (!started_) return now;
  return interval_start_ + config_.cdprf_interval;
}

bool CdprfPolicy::allow_rf_alloc(const PipelineView& view, ThreadId tid,
                                 ClusterId /*c*/, RegClass cls, int count) {
  if (view.rf_unbounded) return true;
  const int k = static_cast<int>(cls);
  const int used = view.rf_used_total(tid, cls);

  // Within the guaranteed region: always allowed.
  if (used + count <= state_[tid][k].threshold) return true;

  // Beyond it: allowed only while every other thread can still reach its
  // own guaranteed region from the remaining free registers.
  int reserved_unused = 0;
  for (ThreadId t = 0; t < view.num_threads; ++t) {
    if (t == tid) continue;
    reserved_unused +=
        std::max(0, state_[t][k].threshold -
                        view.rf_used_total(t, static_cast<RegClass>(k)));
  }
  return view.rf_free_total(cls) - count >= reserved_unused;
}

}  // namespace clusmt::policy
