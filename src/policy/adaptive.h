// Adaptive resource-assignment schemes beyond the paper's evaluation.
//
// The paper closes (§6) by naming the sophisticated monolithic-SMT schemes
// it wants adapted to clustered machines as future work: the front-end
// policies of El-Moursy & Albonesi [20], DCRA of Cazorla et al. [30] and
// the learning-based hill-climbing of Choi & Yeung [32]; §5.1 also
// mentions Flush++ [25] for workloads of more than two threads. This
// module implements those adaptations, applying the paper's own
// conclusions: issue-queue limits are enforced cluster-sensitively
// (per cluster), register-file limits cluster-insensitively (totals).
//
// Each scheme is documented with its deviation from the original
// monolithic formulation; DESIGN.md §6 carries the inventory.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "policy/simple.h"

namespace clusmt::policy {

/// Flush++ [25]: a hybrid of Stall and Flush+. Flushing releases a missing
/// thread's resources so the *other* threads can absorb them — worthwhile
/// when contexts outnumber what the machine can comfortably co-run, an
/// overreaction otherwise (§5.1's observation). Flush++ therefore behaves
/// like Stall while at most two threads are running and like Flush+ when
/// three or more contexts compete.
class FlushPlusPlusPolicy final : public FlushPlusPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "Flush++"; }

  void begin_cycle(const PipelineView& view) override;

  /// Stall mode keeps renaming already-fetched µops; Flush+ mode gates.
  [[nodiscard]] std::uint32_t rename_eligible(
      const PipelineView& view, std::uint32_t candidates) override;

  /// Squashes are suppressed entirely in Stall mode.
  [[nodiscard]] std::optional<FlushRequest> flush_request(Cycle now) override;

  [[nodiscard]] bool stall_mode() const noexcept { return threads_ <= 2; }

 private:
  int threads_ = 2;
};

/// DCRA (Dynamically Controlled Resource Allocation, Cazorla et al. [30])
/// adapted to the clustered machine. Threads are classified each cycle:
///   * active  — owns back-end entries or has decoded µops waiting, and
///   * slow    — an L2 miss is outstanding (the original uses L1-miss
///               activity; our memory substrate exposes L2 state, which is
///               the signal the paper's own Stall/Flush+ schemes consume).
/// Every active thread is guaranteed a floor of a resource; slow threads
/// are *capped* near their floor so they cannot hoard entries while they
/// wait, and fast threads may grow into everything not guaranteed to
/// others. Following the paper's conclusions the caps are enforced
/// per-cluster for issue queues and on class totals for register files.
class DcraPolicy final : public ResourceAssignmentPolicy {
 public:
  explicit DcraPolicy(const PolicyConfig& config) : config_(config) {}
  [[nodiscard]] std::string_view name() const override { return "DCRA"; }

  [[nodiscard]] bool allow_iq_dispatch(const PipelineView& view, ThreadId tid,
                                       ClusterId c, int count,
                                       int total_count) override;
  [[nodiscard]] bool allow_rf_alloc(const PipelineView& view, ThreadId tid,
                                    ClusterId c, RegClass cls,
                                    int count) override;

  // --- Introspection (tests) ---
  [[nodiscard]] static bool is_active(const PipelineView& view, ThreadId tid);
  [[nodiscard]] static bool is_slow(const PipelineView& view, ThreadId tid);
  /// Entries of a resource of capacity `capacity` thread `tid` may hold.
  [[nodiscard]] int cap_of(const PipelineView& view, ThreadId tid,
                           int capacity) const;

 private:
  PolicyConfig config_;
};

/// Learning-based hill-climbing (Choi & Yeung [32]) adapted to the
/// clustered machine. The partition of the issue queues and register files
/// is a learned per-thread share vector instead of a fixed half. Time is
/// sliced into epochs; each round runs three trials — the incumbent
/// shares, then one thread's share nudged up by delta, then down — and
/// adopts the trial that committed the most µops. The nudged thread
/// rotates every round, which generalises the classic two-thread
/// {p, p+delta, p-delta} probe to any thread count. Shares bound the IQ
/// per cluster and the RF per class total (the paper's
/// sensitive/insensitive split).
class HillClimbPolicy final : public ResourceAssignmentPolicy {
 public:
  explicit HillClimbPolicy(const PolicyConfig& config);
  [[nodiscard]] std::string_view name() const override { return "HillClimb"; }

  void begin_cycle(const PipelineView& view) override;

  /// Epoch boundaries score trials and reshuffle shares; a skip must stop
  /// there so the boundary's begin_cycle runs on a live view. Within an
  /// epoch begin_cycle is a no-op, so the default quiesce replay is free.
  [[nodiscard]] Cycle quiesce_horizon(Cycle now) const override {
    return started_ ? epoch_start_ + config_.hillclimb_epoch : now;
  }

  [[nodiscard]] bool allow_iq_dispatch(const PipelineView& view, ThreadId tid,
                                       ClusterId c, int count,
                                       int total_count) override;
  [[nodiscard]] bool allow_rf_alloc(const PipelineView& view, ThreadId tid,
                                    ClusterId c, RegClass cls,
                                    int count) override;

  // --- Introspection (tests, the adaptive-policy example) ---
  [[nodiscard]] double share(ThreadId tid) const { return incumbent_[tid]; }
  [[nodiscard]] double trial_share(ThreadId tid) const { return trial_[tid]; }
  [[nodiscard]] std::uint64_t rounds_completed() const noexcept {
    return rounds_;
  }
  [[nodiscard]] Cycle epoch_length() const noexcept {
    return config_.hillclimb_epoch;
  }

  /// Lowest share the climber may assign to a thread (also how far the
  /// largest share can grow: 1 - (T-1) * floor).
  [[nodiscard]] static double share_floor(int num_threads) noexcept {
    return 0.5 / static_cast<double>(num_threads < 2 ? 2 : num_threads);
  }

 private:
  enum class Trial : std::uint8_t { kBase = 0, kUp = 1, kDown = 2 };

  void adopt_best_and_advance(int num_threads);
  void load_trial(int num_threads);
  [[nodiscard]] int iq_cap(const PipelineView& view, ThreadId tid,
                           ClusterId c) const;

  PolicyConfig config_;
  std::array<double, kMaxThreads> incumbent_;  // adopted shares, sum == 1
  std::array<double, kMaxThreads> trial_;      // shares being measured
  std::array<std::uint64_t, kMaxThreads> committed_at_epoch_start_ = {};
  std::array<std::uint64_t, 3> trial_score_ = {};  // committed per trial
  Trial phase_ = Trial::kBase;
  int perturbed_thread_ = 0;
  Cycle epoch_start_ = 0;
  std::uint64_t rounds_ = 0;
  bool started_ = false;
};

/// Unready-count front-end gating in the spirit of El-Moursy & Albonesi's
/// issue-efficiency fetch policies [20]. A thread whose µops sit in the
/// issue queues with unready sources is clogging entries that ready work
/// could use; the policy (a) fetch-gates a thread while its not-ready µops
/// exceed a fixed fraction of the total issue-queue capacity and (b)
/// replaces Icount's rename selection with "fewest not-ready µops".
/// Allocation is otherwise unrestricted — this is a pure front-end scheme.
class UnreadyGatePolicy final : public ResourceAssignmentPolicy {
 public:
  explicit UnreadyGatePolicy(const PolicyConfig& config) : config_(config) {}
  [[nodiscard]] std::string_view name() const override {
    return "UnreadyGate";
  }

  [[nodiscard]] std::uint32_t fetch_eligible(
      const PipelineView& view, std::uint32_t candidates) override;
  [[nodiscard]] ThreadId select_rename_thread(
      const PipelineView& view, std::uint32_t candidates) override;

  /// Skip-ahead validity: this scheme replaces Icount's cursor with its
  /// own round-robin tie-break, so the fingerprint must cover it.
  [[nodiscard]] std::uint64_t select_state_fingerprint() const override {
    return static_cast<std::uint64_t>(rr_tiebreak_);
  }

  [[nodiscard]] int gate_threshold(const PipelineView& view) const;

 private:
  PolicyConfig config_;
  ThreadId rr_tiebreak_ = 0;
};

}  // namespace clusmt::policy
