// Sealed, devirtualized dispatch over the resource-assignment schemes.
//
// The paper's schemes are evaluated per dispatched µop every cycle: the
// allow_iq_dispatch / allow_rf_alloc / eligibility queries are the inner
// loop of the whole reproduction. The scheme set is closed (PolicyKind), so
// the simulator routes every hot query through ONE switch over the kind and
// a qualified — hence non-virtual, inlinable — call into the concrete
// policy class. Schemes that use a query's default (e.g. Icount never
// limits allocation) collapse to an inline constant, costing nothing.
//
// The abstract ResourceAssignmentPolicy interface survives at configuration
// time (make_policy) and on the cold paths (memory events, flush requests,
// which fire per L2 miss, not per µop). set_devirtualized(false) routes
// every query back through the virtual interface; the two modes must be
// decision-identical — tests/policy_dispatch_test.cc pins that, so a new
// override added to a policy class without a matching dispatch case fails
// loudly instead of silently diverging.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "policy/adaptive.h"
#include "policy/partition.h"
#include "policy/policy.h"
#include "policy/regfile_policy.h"
#include "policy/simple.h"

namespace clusmt::policy {

class PolicyDispatch {
 public:
  PolicyDispatch(PolicyKind kind, const PolicyConfig& config);

  /// Parity-test hook: false routes every query through the virtual
  /// interface instead of the sealed switch. Decisions must be identical.
  void set_devirtualized(bool on) noexcept { devirt_ = on; }
  [[nodiscard]] bool devirtualized() const noexcept { return devirt_; }

  [[nodiscard]] PolicyKind kind() const noexcept { return kind_; }
  [[nodiscard]] ResourceAssignmentPolicy& impl() noexcept { return *impl_; }
  [[nodiscard]] const ResourceAssignmentPolicy& impl() const noexcept {
    return *impl_;
  }
  [[nodiscard]] std::string_view name() const { return impl_->name(); }

  // --- Hot per-cycle / per-µop queries (sealed switch) ---

  [[nodiscard]] std::uint32_t fetch_eligible(const PipelineView& view,
                                             std::uint32_t candidates) {
    if (!devirt_) return impl_->fetch_eligible(view, candidates);
    switch (kind_) {
      case PolicyKind::kStall:
        return as<StallPolicy>().StallPolicy::fetch_eligible(view,
                                                             candidates);
      case PolicyKind::kFlushPlus:
      case PolicyKind::kFlushPlusPlus:
        return as<FlushPlusPolicy>().FlushPlusPolicy::fetch_eligible(
            view, candidates);
      case PolicyKind::kUnreadyGate:
        return as<UnreadyGatePolicy>().UnreadyGatePolicy::fetch_eligible(
            view, candidates);
      default:
        return candidates;
    }
  }

  [[nodiscard]] std::uint32_t rename_eligible(const PipelineView& view,
                                              std::uint32_t candidates) {
    if (!devirt_) return impl_->rename_eligible(view, candidates);
    switch (kind_) {
      case PolicyKind::kFlushPlus:
        return as<FlushPlusPolicy>().FlushPlusPolicy::rename_eligible(
            view, candidates);
      case PolicyKind::kFlushPlusPlus:
        return as<FlushPlusPlusPolicy>()
            .FlushPlusPlusPolicy::rename_eligible(view, candidates);
      default:
        return candidates;
    }
  }

  [[nodiscard]] ThreadId select_rename_thread(const PipelineView& view,
                                              std::uint32_t candidates) {
    if (!devirt_) return impl_->select_rename_thread(view, candidates);
    switch (kind_) {
      case PolicyKind::kUnreadyGate:
        return as<UnreadyGatePolicy>()
            .UnreadyGatePolicy::select_rename_thread(view, candidates);
      default:
        // Every other scheme keeps the base Icount selection.
        return impl_->ResourceAssignmentPolicy::select_rename_thread(
            view, candidates);
    }
  }

  [[nodiscard]] bool allow_iq_dispatch(const PipelineView& view, ThreadId tid,
                                       ClusterId c, int count,
                                       int total_count) {
    if (!devirt_) {
      return impl_->allow_iq_dispatch(view, tid, c, count, total_count);
    }
    switch (kind_) {
      case PolicyKind::kCisp:
        return as<CispPolicy>().CispPolicy::allow_iq_dispatch(
            view, tid, c, count, total_count);
      case PolicyKind::kCssp:
      case PolicyKind::kCssprf:
      case PolicyKind::kCisprf:
      case PolicyKind::kCdprf:
        // The register-file schemes keep CSSP as their issue-queue handler.
        return as<CsspPolicy>().CsspPolicy::allow_iq_dispatch(
            view, tid, c, count, total_count);
      case PolicyKind::kCspsp:
        return as<CspspPolicy>().CspspPolicy::allow_iq_dispatch(
            view, tid, c, count, total_count);
      case PolicyKind::kPrivateClusters:
        return as<PrivateClustersPolicy>()
            .PrivateClustersPolicy::allow_iq_dispatch(view, tid, c, count,
                                                      total_count);
      case PolicyKind::kDcra:
        return as<DcraPolicy>().DcraPolicy::allow_iq_dispatch(
            view, tid, c, count, total_count);
      case PolicyKind::kHillClimb:
        return as<HillClimbPolicy>().HillClimbPolicy::allow_iq_dispatch(
            view, tid, c, count, total_count);
      default:
        return true;
    }
  }

  [[nodiscard]] bool allow_rf_alloc(const PipelineView& view, ThreadId tid,
                                    ClusterId c, RegClass cls, int count) {
    if (!devirt_) return impl_->allow_rf_alloc(view, tid, c, cls, count);
    switch (kind_) {
      case PolicyKind::kCssprf:
        return as<CssprfPolicy>().CssprfPolicy::allow_rf_alloc(view, tid, c,
                                                               cls, count);
      case PolicyKind::kCisprf:
        return as<CisprfPolicy>().CisprfPolicy::allow_rf_alloc(view, tid, c,
                                                               cls, count);
      case PolicyKind::kCdprf:
        return as<CdprfPolicy>().CdprfPolicy::allow_rf_alloc(view, tid, c,
                                                             cls, count);
      case PolicyKind::kDcra:
        return as<DcraPolicy>().DcraPolicy::allow_rf_alloc(view, tid, c,
                                                           cls, count);
      case PolicyKind::kHillClimb:
        return as<HillClimbPolicy>().HillClimbPolicy::allow_rf_alloc(
            view, tid, c, cls, count);
      default:
        return true;
    }
  }

  [[nodiscard]] ClusterId forced_cluster(const PipelineView& view,
                                         ThreadId tid) const {
    if (!devirt_) return impl_->forced_cluster(view, tid);
    switch (kind_) {
      case PolicyKind::kPrivateClusters:
        return static_cast<const PrivateClustersPolicy&>(*impl_)
            .PrivateClustersPolicy::forced_cluster(view, tid);
      default:
        return -1;
    }
  }

  void begin_cycle(const PipelineView& view) {
    if (!devirt_) {
      impl_->begin_cycle(view);
      return;
    }
    switch (kind_) {
      case PolicyKind::kCdprf:
        as<CdprfPolicy>().CdprfPolicy::begin_cycle(view);
        return;
      case PolicyKind::kHillClimb:
        as<HillClimbPolicy>().HillClimbPolicy::begin_cycle(view);
        return;
      case PolicyKind::kFlushPlusPlus:
        as<FlushPlusPlusPolicy>().FlushPlusPlusPolicy::begin_cycle(view);
        return;
      default:
        return;
    }
  }

  [[nodiscard]] std::optional<FlushRequest> flush_request(Cycle now) {
    if (!devirt_) return impl_->flush_request(now);
    switch (kind_) {
      case PolicyKind::kFlushPlus:
        return as<FlushPlusPolicy>().FlushPlusPolicy::flush_request(now);
      case PolicyKind::kFlushPlusPlus:
        return as<FlushPlusPlusPolicy>().FlushPlusPlusPolicy::flush_request(
            now);
      default:
        return std::nullopt;
    }
  }

  // --- Cold paths: per-memory-event or per-skip-episode, forwarded
  // virtually (dispatch.cc) ---
  void on_l2_miss(ThreadId tid, std::uint64_t load_seq, Cycle now);
  void on_l2_resolved(ThreadId tid, std::uint64_t load_seq, Cycle now);
  void on_flush_done(ThreadId tid);
  void quiesce(const PipelineView& view, Cycle from, Cycle to);
  [[nodiscard]] Cycle quiesce_horizon(Cycle now) const;
  [[nodiscard]] std::uint64_t select_state_fingerprint() const;

 private:
  template <typename Concrete>
  [[nodiscard]] Concrete& as() noexcept {
    return static_cast<Concrete&>(*impl_);
  }

  PolicyKind kind_;
  bool devirt_ = true;
  std::unique_ptr<ResourceAssignmentPolicy> impl_;
};

}  // namespace clusmt::policy
