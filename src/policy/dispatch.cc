#include "policy/dispatch.h"

namespace clusmt::policy {

PolicyDispatch::PolicyDispatch(PolicyKind kind, const PolicyConfig& config)
    : kind_(kind), impl_(make_policy(kind, config)) {}

// Memory events fire per L2 miss/fill, not per µop: virtual dispatch is
// fine here, and keeping these out of line keeps the hot switches small.

void PolicyDispatch::on_l2_miss(ThreadId tid, std::uint64_t load_seq,
                                Cycle now) {
  impl_->on_l2_miss(tid, load_seq, now);
}

void PolicyDispatch::on_l2_resolved(ThreadId tid, std::uint64_t load_seq,
                                    Cycle now) {
  impl_->on_l2_resolved(tid, load_seq, now);
}

void PolicyDispatch::on_flush_done(ThreadId tid) {
  impl_->on_flush_done(tid);
}

// Skip-ahead hooks fire once per skip episode (thousands of cycles), so
// they take the virtual route in both dispatch modes — parity is trivial.

void PolicyDispatch::quiesce(const PipelineView& view, Cycle from, Cycle to) {
  impl_->quiesce(view, from, to);
}

Cycle PolicyDispatch::quiesce_horizon(Cycle now) const {
  return impl_->quiesce_horizon(now);
}

std::uint64_t PolicyDispatch::select_state_fingerprint() const {
  return impl_->select_state_fingerprint();
}

}  // namespace clusmt::policy
