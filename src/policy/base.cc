#include "policy/policy.h"

#include <limits>

#include "policy/adaptive.h"
#include "policy/partition.h"
#include "policy/regfile_policy.h"
#include "policy/simple.h"

namespace clusmt::policy {

ThreadId ResourceAssignmentPolicy::icount_select(const PipelineView& view,
                                                 std::uint32_t candidates) {
  ThreadId best = -1;
  int best_count = 0;
  // Rotate the scan start so equal counts alternate between threads.
  for (int offset = 0; offset < view.num_threads; ++offset) {
    const ThreadId t =
        static_cast<ThreadId>((rr_tiebreak_ + offset) % view.num_threads);
    if (!(candidates & (1u << t))) continue;
    const int count = view.iq_occ_thread_total(t);
    if (best < 0 || count < best_count) {
      best = t;
      best_count = count;
    }
  }
  if (best >= 0) rr_tiebreak_ = (best + 1) % view.num_threads;
  return best;
}

ThreadId ResourceAssignmentPolicy::select_rename_thread(
    const PipelineView& view, std::uint32_t candidates) {
  return icount_select(view, candidates);
}

void ResourceAssignmentPolicy::quiesce(const PipelineView& view, Cycle from,
                                       Cycle to) {
  // Literal replay: the machine state is frozen, so only `now` moves.
  PipelineView v = view;
  for (Cycle c = from; c < to; ++c) {
    v.now = c;
    begin_cycle(v);
  }
}

Cycle ResourceAssignmentPolicy::quiesce_horizon(Cycle /*now*/) const {
  return std::numeric_limits<Cycle>::max();
}

std::unique_ptr<ResourceAssignmentPolicy> make_policy(
    PolicyKind kind, const PolicyConfig& config) {
  switch (kind) {
    case PolicyKind::kIcount:
      return std::make_unique<IcountPolicy>();
    case PolicyKind::kStall:
      return std::make_unique<StallPolicy>();
    case PolicyKind::kFlushPlus:
      return std::make_unique<FlushPlusPolicy>();
    case PolicyKind::kCisp:
      return std::make_unique<CispPolicy>(config);
    case PolicyKind::kCssp:
      return std::make_unique<CsspPolicy>(config);
    case PolicyKind::kCspsp:
      return std::make_unique<CspspPolicy>(config);
    case PolicyKind::kPrivateClusters:
      return std::make_unique<PrivateClustersPolicy>();
    case PolicyKind::kCssprf:
      return std::make_unique<CssprfPolicy>(config);
    case PolicyKind::kCisprf:
      return std::make_unique<CisprfPolicy>(config);
    case PolicyKind::kCdprf:
      return std::make_unique<CdprfPolicy>(config);
    case PolicyKind::kFlushPlusPlus:
      return std::make_unique<FlushPlusPlusPolicy>();
    case PolicyKind::kDcra:
      return std::make_unique<DcraPolicy>(config);
    case PolicyKind::kHillClimb:
      return std::make_unique<HillClimbPolicy>(config);
    case PolicyKind::kUnreadyGate:
      return std::make_unique<UnreadyGatePolicy>(config);
  }
  return std::make_unique<IcountPolicy>();
}

std::string_view policy_kind_name(PolicyKind kind) noexcept {
  switch (kind) {
    case PolicyKind::kIcount: return "Icount";
    case PolicyKind::kStall: return "Stall";
    case PolicyKind::kFlushPlus: return "Flush+";
    case PolicyKind::kCisp: return "CISP";
    case PolicyKind::kCssp: return "CSSP";
    case PolicyKind::kCspsp: return "CSPSP";
    case PolicyKind::kPrivateClusters: return "PC";
    case PolicyKind::kCssprf: return "CSSPRF";
    case PolicyKind::kCisprf: return "CISPRF";
    case PolicyKind::kCdprf: return "CDPRF";
    case PolicyKind::kFlushPlusPlus: return "Flush++";
    case PolicyKind::kDcra: return "DCRA";
    case PolicyKind::kHillClimb: return "HillClimb";
    case PolicyKind::kUnreadyGate: return "UnreadyGate";
  }
  return "?";
}

std::optional<PolicyKind> parse_policy_kind(std::string_view name) noexcept {
  for (PolicyKind kind : all_policy_kinds()) {
    if (policy_kind_name(kind) == name) return kind;
  }
  return std::nullopt;
}

const std::vector<PolicyKind>& all_policy_kinds() {
  static const std::vector<PolicyKind> kAll = {
      PolicyKind::kIcount, PolicyKind::kStall,  PolicyKind::kFlushPlus,
      PolicyKind::kCisp,   PolicyKind::kCssp,   PolicyKind::kCspsp,
      PolicyKind::kPrivateClusters, PolicyKind::kCssprf,
      PolicyKind::kCisprf, PolicyKind::kCdprf,
      // Extensions (policy/adaptive.h), after the paper's schemes.
      PolicyKind::kFlushPlusPlus, PolicyKind::kDcra,
      PolicyKind::kHillClimb,     PolicyKind::kUnreadyGate,
  };
  return kAll;
}

}  // namespace clusmt::policy
