#include "policy/adaptive.h"

#include <algorithm>
#include <cmath>

namespace clusmt::policy {

// ---------------------------------------------------------------------------
// Flush++
// ---------------------------------------------------------------------------

void FlushPlusPlusPolicy::begin_cycle(const PipelineView& view) {
  threads_ = view.num_threads;
  FlushPlusPolicy::begin_cycle(view);
}

std::uint32_t FlushPlusPlusPolicy::rename_eligible(const PipelineView& view,
                                                   std::uint32_t candidates) {
  if (stall_mode()) return candidates;  // Stall renames already-fetched µops
  return FlushPlusPolicy::rename_eligible(view, candidates);
}

std::optional<FlushRequest> FlushPlusPlusPolicy::flush_request(Cycle now) {
  if (stall_mode()) return std::nullopt;
  return FlushPlusPolicy::flush_request(now);
}

// ---------------------------------------------------------------------------
// DCRA
// ---------------------------------------------------------------------------

bool DcraPolicy::is_active(const PipelineView& view, ThreadId tid) {
  return view.decode_queue_depth[tid] > 0 || view.rob_occ[tid] > 0;
}

bool DcraPolicy::is_slow(const PipelineView& view, ThreadId tid) {
  return view.l2_pending[tid];
}

int DcraPolicy::cap_of(const PipelineView& view, ThreadId tid,
                       int capacity) const {
  int active = 0;
  for (ThreadId t = 0; t < view.num_threads; ++t) {
    if (is_active(view, t)) ++active;
  }
  if (active <= 1) return capacity;  // alone: the whole resource

  const double even_share = static_cast<double>(capacity) / active;
  // Floor guaranteed to every active thread. Fast threads get half their
  // even share as an inviolable floor; slow threads a configurable cut.
  const auto floor_of = [&](ThreadId t) {
    const double scale = is_slow(view, t) ? config_.dcra_slow_share : 0.5;
    return std::max(1, static_cast<int>(even_share * scale));
  };

  if (is_slow(view, tid)) return floor_of(tid);  // capped at its floor

  // Fast thread: everything not guaranteed to the other active threads.
  int reserved_for_others = 0;
  for (ThreadId t = 0; t < view.num_threads; ++t) {
    if (t == tid || !is_active(view, t)) continue;
    reserved_for_others += floor_of(t);
  }
  return std::max(1, capacity - reserved_for_others);
}

bool DcraPolicy::allow_iq_dispatch(const PipelineView& view, ThreadId tid,
                                   ClusterId c, int count,
                                   int /*total_count*/) {
  // Cluster-sensitive (paper §5.1): the cap applies inside each cluster.
  const int cap = cap_of(view, tid, view.iq_capacity_of(c));
  return view.iq_occ_tc[tid][c] + count <= cap;
}

bool DcraPolicy::allow_rf_alloc(const PipelineView& view, ThreadId tid,
                                ClusterId /*c*/, RegClass cls, int count) {
  if (view.rf_unbounded) return true;
  // Cluster-insensitive (paper §5.2): the cap applies to the class total.
  const int cap = cap_of(view, tid, view.rf_capacity_total(cls));
  return view.rf_used_total(tid, cls) + count <= cap;
}

// ---------------------------------------------------------------------------
// HillClimb
// ---------------------------------------------------------------------------

HillClimbPolicy::HillClimbPolicy(const PolicyConfig& config)
    : config_(config) {
  incumbent_.fill(1.0 / kMaxThreads);
  trial_ = incumbent_;
}

void HillClimbPolicy::load_trial(int num_threads) {
  trial_ = incumbent_;
  const double floor = share_floor(num_threads);
  const double ceiling = 1.0 - floor * (num_threads - 1);
  double delta = 0.0;
  if (phase_ == Trial::kUp) delta = config_.hillclimb_delta;
  if (phase_ == Trial::kDown) delta = -config_.hillclimb_delta;

  const ThreadId target = perturbed_thread_;
  const double proposed =
      std::clamp(trial_[target] + delta, floor, ceiling);
  const double applied = proposed - trial_[target];
  trial_[target] = proposed;
  // Take (or return) the moved share from the other threads in rotation
  // order, respecting their floors; any residue stays with the target.
  double residue = -applied;
  for (int step = 0; step < num_threads && std::abs(residue) > 1e-12;
       ++step) {
    const ThreadId t = (target + 1 + step) % num_threads;
    if (t == target) continue;
    const double adjusted = std::clamp(trial_[t] + residue, floor, ceiling);
    residue -= adjusted - trial_[t];
    trial_[t] = adjusted;
  }
  trial_[target] += residue;  // keep the vector summing to one
}

void HillClimbPolicy::adopt_best_and_advance(int num_threads) {
  // Adopt the share vector of the winning trial by replaying it.
  const int best = static_cast<int>(
      std::max_element(trial_score_.begin(), trial_score_.end()) -
      trial_score_.begin());
  phase_ = static_cast<Trial>(best);
  load_trial(num_threads);
  incumbent_ = trial_;

  trial_score_ = {};
  phase_ = Trial::kBase;
  perturbed_thread_ = (perturbed_thread_ + 1) % num_threads;
  ++rounds_;
  load_trial(num_threads);
}

void HillClimbPolicy::begin_cycle(const PipelineView& view) {
  const int threads = view.num_threads;
  if (!started_) {
    started_ = true;
    epoch_start_ = view.now;
    incumbent_.fill(1.0 / threads);
    load_trial(threads);
    for (ThreadId t = 0; t < threads; ++t) {
      committed_at_epoch_start_[t] = view.committed[t];
    }
    return;
  }
  if (view.now - epoch_start_ < config_.hillclimb_epoch) return;

  // Epoch boundary: score the finished trial. A stats reset (committed
  // running backwards) invalidates the measurement; re-arm the epoch.
  std::uint64_t committed = 0;
  bool reset_seen = false;
  for (ThreadId t = 0; t < threads; ++t) {
    if (view.committed[t] < committed_at_epoch_start_[t]) {
      reset_seen = true;
      break;
    }
    committed += view.committed[t] - committed_at_epoch_start_[t];
  }
  epoch_start_ = view.now;
  for (ThreadId t = 0; t < threads; ++t) {
    committed_at_epoch_start_[t] = view.committed[t];
  }
  if (reset_seen) return;

  trial_score_[static_cast<int>(phase_)] = committed;
  if (phase_ == Trial::kBase) {
    phase_ = Trial::kUp;
    load_trial(threads);
  } else if (phase_ == Trial::kUp) {
    phase_ = Trial::kDown;
    load_trial(threads);
  } else {
    adopt_best_and_advance(threads);
  }
}

int HillClimbPolicy::iq_cap(const PipelineView& view, ThreadId tid,
                            ClusterId c) const {
  return std::max(
      2, static_cast<int>(std::lround(trial_[tid] * view.iq_capacity_of(c))));
}

bool HillClimbPolicy::allow_iq_dispatch(const PipelineView& view,
                                        ThreadId tid, ClusterId c, int count,
                                        int /*total_count*/) {
  return view.iq_occ_tc[tid][c] + count <= iq_cap(view, tid, c);
}

bool HillClimbPolicy::allow_rf_alloc(const PipelineView& view, ThreadId tid,
                                     ClusterId /*c*/, RegClass cls,
                                     int count) {
  if (view.rf_unbounded) return true;
  const int total = view.rf_capacity_total(cls);
  const int cap =
      std::max(8, static_cast<int>(std::lround(trial_[tid] * total)));
  return view.rf_used_total(tid, cls) + count <= cap;
}

// ---------------------------------------------------------------------------
// UnreadyGate
// ---------------------------------------------------------------------------

int UnreadyGatePolicy::gate_threshold(const PipelineView& view) const {
  return std::max(4, static_cast<int>(config_.unready_gate_fraction *
                                      view.iq_capacity_total()));
}

std::uint32_t UnreadyGatePolicy::fetch_eligible(const PipelineView& view,
                                                std::uint32_t candidates) {
  const int threshold = gate_threshold(view);
  std::uint32_t out = candidates;
  for (ThreadId t = 0; t < view.num_threads; ++t) {
    if (view.iq_unready_total(t) > threshold) out &= ~(1u << t);
  }
  return out;
}

ThreadId UnreadyGatePolicy::select_rename_thread(const PipelineView& view,
                                                 std::uint32_t candidates) {
  ThreadId best = -1;
  int best_unready = 0;
  int best_icount = 0;
  for (int offset = 0; offset < view.num_threads; ++offset) {
    const ThreadId t =
        static_cast<ThreadId>((rr_tiebreak_ + offset) % view.num_threads);
    if (!(candidates & (1u << t))) continue;
    const int unready = view.iq_unready_total(t);
    const int icount = view.iq_occ_thread_total(t);
    if (best < 0 || unready < best_unready ||
        (unready == best_unready && icount < best_icount)) {
      best = t;
      best_unready = unready;
      best_icount = icount;
    }
  }
  if (best >= 0) rr_tiebreak_ = (best + 1) % view.num_threads;
  return best;
}

}  // namespace clusmt::policy
