// Issue-queue partitioning schemes of Table 3: CISP, CSSP, CSPSP and
// private clusters (PC). All keep Icount as the rename selection policy and
// differ only in where a thread may place µops.
#pragma once

#include "policy/policy.h"

namespace clusmt::policy {

/// Cluster-Insensitive Static Partitioning: a thread may hold at most
/// `partition_fraction` of the *total* issue-queue entries, wherever they
/// are ([31]-style).
class CispPolicy final : public ResourceAssignmentPolicy {
 public:
  explicit CispPolicy(const PolicyConfig& config) : config_(config) {}
  [[nodiscard]] std::string_view name() const override { return "CISP"; }

  [[nodiscard]] bool allow_iq_dispatch(const PipelineView& view, ThreadId tid,
                                       ClusterId c, int count,
                                       int total_count) override;

 private:
  PolicyConfig config_;
};

/// Cluster-Sensitive Static Partitioning: a thread may hold at most
/// `partition_fraction` of *each cluster's* issue queue — the scheme the
/// paper finds best for workload balance.
class CsspPolicy : public ResourceAssignmentPolicy {
 public:
  explicit CsspPolicy(const PolicyConfig& config) : config_(config) {}
  [[nodiscard]] std::string_view name() const override { return "CSSP"; }

  [[nodiscard]] bool allow_iq_dispatch(const PipelineView& view, ThreadId tid,
                                       ClusterId c, int count,
                                       int total_count) override;

 protected:
  PolicyConfig config_;
};

/// Cluster-Sensitive Partial Static Partitioning: only
/// `cspsp_guarantee_fraction` of each cluster's entries is reserved per
/// thread; the remainder is competed for.
class CspspPolicy final : public ResourceAssignmentPolicy {
 public:
  explicit CspspPolicy(const PolicyConfig& config) : config_(config) {}
  [[nodiscard]] std::string_view name() const override { return "CSPSP"; }

  [[nodiscard]] bool allow_iq_dispatch(const PipelineView& view, ThreadId tid,
                                       ClusterId c, int count,
                                       int total_count) override;

 private:
  PolicyConfig config_;
};

/// Private clusters: thread t executes only in cluster t (mod clusters).
class PrivateClustersPolicy final : public ResourceAssignmentPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "PC"; }

  [[nodiscard]] ClusterId forced_cluster(const PipelineView& view,
                                         ThreadId tid) const override;
  [[nodiscard]] bool allow_iq_dispatch(const PipelineView& view, ThreadId tid,
                                       ClusterId c, int count,
                                       int total_count) override;
};

}  // namespace clusmt::policy
