#include "policy/partition.h"

#include <algorithm>
#include <cmath>

namespace clusmt::policy {

namespace {
[[nodiscard]] int fraction_of(int capacity, double fraction) noexcept {
  return std::max(1, static_cast<int>(std::floor(capacity * fraction)));
}
}  // namespace

bool CispPolicy::allow_iq_dispatch(const PipelineView& view, ThreadId tid,
                                   ClusterId /*c*/, int /*count*/,
                                   int total_count) {
  // Cluster-insensitive: the cap applies to the thread's total occupancy,
  // so the whole rename group (µop + copies) counts at once.
  const int limit =
      fraction_of(view.iq_capacity_total(), config_.partition_fraction);
  return view.iq_occ_thread_total(tid) + total_count <= limit;
}

bool CsspPolicy::allow_iq_dispatch(const PipelineView& view, ThreadId tid,
                                   ClusterId c, int count,
                                   int /*total_count*/) {
  const int limit =
      fraction_of(view.iq_capacity_of(c), config_.partition_fraction);
  return view.iq_occ_tc[tid][c] + count <= limit;
}

bool CspspPolicy::allow_iq_dispatch(const PipelineView& view, ThreadId tid,
                                    ClusterId c, int count,
                                    int /*total_count*/) {
  const int guarantee =
      fraction_of(view.iq_capacity_of(c), config_.cspsp_guarantee_fraction);
  const int occ = view.iq_occ_tc[tid][c];
  if (occ + count <= guarantee) return true;

  // Beyond the guarantee, the thread competes for the shared pool of this
  // cluster: capacity minus every thread's reserved (still unused) slice.
  int reserved_unused = 0;
  for (ThreadId t = 0; t < view.num_threads; ++t) {
    if (t == tid) continue;
    reserved_unused += std::max(0, guarantee - view.iq_occ_tc[t][c]);
  }
  return view.iq_occ[c] + count + reserved_unused <= view.iq_capacity_of(c);
}

ClusterId PrivateClustersPolicy::forced_cluster(const PipelineView& view,
                                                ThreadId tid) const {
  return tid % view.num_clusters;
}

bool PrivateClustersPolicy::allow_iq_dispatch(const PipelineView& view,
                                              ThreadId tid, ClusterId c,
                                              int /*count*/,
                                              int /*total_count*/) {
  return c == tid % view.num_clusters;
}

}  // namespace clusmt::policy
