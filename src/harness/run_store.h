// Disk tier of the run cache: finished simulation cells serialized as
// compact, versioned binary records under a cache directory, keyed by
// their 128-bit RunKey. A record survives the process, so repeated bench
// invocations (figure regeneration, CI golden runs) reuse each other's
// simulations — and the record is the wire format for farming cells to
// other processes/hosts.
//
// Layout: <dir>/<hi-byte-of-key>/<032-hex-key>.run, one cell per file,
// written atomically (common/fsio.h) so concurrent writers and killed
// processes never leave a partial record in place. Records carry a format
// version, the full key, and a trailing checksum; load() treats any
// mismatch — version bump, truncation, bit rot, foreign key — as a miss
// and returns nothing, so corruption can only cost a recompute, never a
// wrong result.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "harness/run_key.h"
#include "harness/runner.h"

namespace clusmt::harness {

/// Bump whenever the record layout changes — a field added to RunResult or
/// core::SimStats, a string re-ordered, kMaxThreads resized. Old records
/// then read as misses instead of deserializing garbage.
inline constexpr std::uint32_t kRunStoreFormatVersion = 2;  // v2: ClusterShape keys

/// Serializes `result` (with its `key`) to a self-contained record.
[[nodiscard]] std::string encode_run_record(const RunKey& key,
                                            const RunResult& result);

/// Decodes a record, validating magic, version, embedded key (must equal
/// `key`), and checksum. Any failure yields nullopt.
[[nodiscard]] std::optional<RunResult> decode_run_record(
    const RunKey& key, std::string_view record);

/// Options for gc_run_store. Caps of 0 mean "unlimited" for that axis; a
/// dry run reports what would be deleted without touching the directory.
struct GcOptions {
  std::uint64_t max_bytes = 0;
  std::uint64_t max_files = 0;
  bool dry_run = false;
};

/// Outcome of one GC sweep over a run-store directory.
struct GcResult {
  std::uint64_t scanned_files = 0;
  std::uint64_t scanned_bytes = 0;
  std::uint64_t deleted_files = 0;  // dry runs count would-be deletions
  std::uint64_t deleted_bytes = 0;
  std::uint64_t removed_dirs = 0;   // emptied key-prefix subdirectories
};

/// Options for merge_run_store. A dry run reports what a merge would do
/// without writing anything.
struct MergeOptions {
  bool dry_run = false;
};

/// Outcome of unioning one source store into a destination store.
struct MergeResult {
  std::uint64_t scanned = 0;    // .run records seen in the source
  std::uint64_t copied = 0;     // new records written to the destination
  std::uint64_t identical = 0;  // already present, byte-identical: skipped
  std::uint64_t conflicts = 0;  // present with different bytes: kept dest
  std::uint64_t invalid = 0;    // failed key/checksum validation: skipped
};

/// Unions `from` into `into` (the scatter-gather merge for workers that
/// filled private cache dirs): every valid source record absent from the
/// destination is copied atomically; records already present are compared
/// byte-for-byte and skipped, with byte-level disagreement counted as a
/// conflict (the destination record wins — records are content-keyed, so a
/// conflict means corruption or a stale format, never two valid answers).
/// Source records whose embedded key or checksum fails validation are
/// skipped as invalid rather than propagated.
[[nodiscard]] MergeResult merge_run_store(const std::string& into,
                                          const std::string& from,
                                          const MergeOptions& options = {});

/// Parses the 32-hex-digit basename of a record path (as produced by
/// RunStore::path_of) back into its key; false on malformed names.
[[nodiscard]] bool parse_record_name(const std::string& basename,
                                     RunKey& key);

/// Process-wide count of reads that found a record on disk but rejected it
/// during validation (bad magic/version/key/checksum, truncation). Every
/// such record silently costs a recompute; the sweep progress line surfaces
/// the total as "N corrupt records ignored" so bit rot and format drift are
/// visible instead of just slow.
[[nodiscard]] std::uint64_t run_store_corrupt_reads();

/// Size/count-capped LRU sweep over a run-store directory: scans every
/// `*.run` record, and while the store exceeds `max_bytes`/`max_files`
/// deletes records oldest-mtime-first (a record's mtime is its last write;
/// readers that want LRU-by-use can touch records on load). Emptied
/// prefix subdirectories are pruned. A missing directory is an empty
/// store. Never deletes anything that is not a `.run` record.
[[nodiscard]] GcResult gc_run_store(const std::string& dir,
                                    const GcOptions& options);

class RunStore {
 public:
  /// `dir` is created (with parents) on first save; a missing dir just
  /// means every load misses.
  explicit RunStore(std::string dir);

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  /// Record path of `key` under the store's directory.
  [[nodiscard]] std::string path_of(const RunKey& key) const;

  /// Reads the cell for `key`; nullopt when absent, unreadable, or the
  /// record fails validation (never throws — a bad record is a miss).
  [[nodiscard]] std::optional<RunResult> load(const RunKey& key) const;

  /// Spills a finished cell. Best-effort: returns false on I/O failure
  /// (read-only dir, disk full) and leaves any existing record intact.
  bool save(const RunKey& key, const RunResult& result) const;

 private:
  std::string dir_;
};

}  // namespace clusmt::harness
