// Experiment runner: executes workloads under a machine configuration and
// scheme, fanning independent simulations across host cores. Single-thread
// fairness baselines go through the process-wide RunCache, keyed by full
// trace *content* (harness/run_key.h) — never by workload name.
//
// For grid-shaped experiments (scheme × config × suite) prefer the sweep
// engine in harness/sweep.h, which schedules every cell of the whole grid
// on one queue and shares the RunCache across grid points.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/simulator.h"
#include "core/stats.h"
#include "trace/workload.h"

namespace clusmt::harness {

/// Result of one two-thread simulation.
struct RunResult {
  std::string workload;
  std::string category;
  std::string type;
  core::SimStats stats;
  double ipc[kMaxThreads] = {};
  double throughput = 0.0;

  /// Fairness vs single-thread baselines; filled when the runner is asked
  /// for fairness (requires baseline runs).
  double fairness = 0.0;
};

/// Simulates one workload on `config` for `warmup` + `cycles` cycles and
/// collects the per-run metrics. Deterministic in its arguments alone (the
/// simulator draws all randomness from the workload's trace seeds), so the
/// result is cacheable by content hash and independent of host scheduling.
[[nodiscard]] RunResult simulate_workload(const core::SimConfig& config,
                                          const trace::WorkloadSpec& spec,
                                          Cycle cycles, Cycle warmup);

/// Process-wide skip-ahead activity (core quiescent-cycle fast path),
/// accumulated by simulate_workload over the *measured* phase of every run
/// this process simulated. Deliberately outside SimStats — skipping is a
/// model-speed fact, not a machine fact, and SimStats must stay bit-equal
/// with the feature off. Thread-safe monotone tallies (no reset), read as
/// deltas like the RunCache counters.
[[nodiscard]] std::uint64_t total_cycles_skipped() noexcept;
[[nodiscard]] std::uint64_t total_skip_episodes() noexcept;

class Runner {
 public:
  /// `cycles`: measured cycles per run; `warmup`: cycles simulated before
  /// statistics are reset (caches/predictors stay warm). `host_threads`
  /// 0 = all cores.
  Runner(core::SimConfig base_config, Cycle cycles, Cycle warmup = 0,
         std::size_t host_threads = 0);

  [[nodiscard]] const core::SimConfig& base_config() const noexcept {
    return config_;
  }
  [[nodiscard]] Cycle cycles() const noexcept { return cycles_; }
  [[nodiscard]] Cycle warmup() const noexcept { return warmup_; }

  /// Runs one workload under the configured scheme.
  [[nodiscard]] RunResult run_workload(const trace::WorkloadSpec& spec) const;

  /// Runs the whole suite in parallel (deterministic per-run results;
  /// output order matches the suite order).
  [[nodiscard]] std::vector<RunResult> run_suite(
      const std::vector<trace::WorkloadSpec>& suite) const;

  /// Single-thread baseline IPC of a trace on the same machine with the
  /// whole back-end to itself. Served from the process-wide RunCache keyed
  /// by trace content, so distinct traces that share a display name never
  /// collide, and identical baselines are simulated once per process even
  /// across Runner instances (thread-safe).
  [[nodiscard]] double single_thread_ipc(const trace::TraceSpec& spec) const;

  /// Computes the fairness metric for a finished run (triggers baseline
  /// runs on first use per trace).
  [[nodiscard]] double fairness_of(const RunResult& result,
                                   const trace::WorkloadSpec& spec) const;

  /// Runs the suite and fills fairness for every result.
  [[nodiscard]] std::vector<RunResult> run_suite_with_fairness(
      const std::vector<trace::WorkloadSpec>& suite) const;

 private:
  core::SimConfig config_;
  Cycle cycles_;
  Cycle warmup_;
  std::size_t host_threads_;
};

/// Arithmetic mean of `metric` over the workloads of each category, in the
/// paper's display order, followed by an "AVG" row over all workloads.
/// Categories absent from the suite are skipped.
[[nodiscard]] std::vector<std::pair<std::string, double>> by_category(
    const std::vector<trace::WorkloadSpec>& suite,
    const std::vector<double>& per_workload_metric);

}  // namespace clusmt::harness
