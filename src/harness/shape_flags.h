// Per-cluster shape flags shared by benches and tools: a uniform CLI
// surface for heterogeneous grids (README "Heterogeneous grids").
//
//   --clusters=N        cluster count (1..kMaxClusters)
//   --width=4,2         per-cluster issue width     (0 = inherit base)
//   --iq=48,16          per-cluster IQ entries      (0 = inherit base)
//   --int-regs=96,32    per-cluster int registers   (0 = inherit base)
//   --fp-regs=96,32     per-cluster fp registers    (0 = inherit base)
//   --link=1,4,4,1      row-major from→to link-latency matrix
//                       (num_clusters² entries; 0 = inherit link_latency)
//
// Every list must have exactly num_clusters elements (--link:
// num_clusters²); wrong arity — like any junk token or negative value,
// which CliArgs::get_int_list already rejects — is a usage error that
// exits(2). Value-range checks beyond non-negativity stay in the Simulator
// constructor, the single authority on what a runnable machine is.
#pragma once

#include "common/cli.h"
#include "core/config.h"

namespace clusmt::harness {

/// True when any shape flag is present (callers may branch on it to keep a
/// flag-less invocation on their default grid).
[[nodiscard]] bool has_shape_flags(const CliArgs& args);

/// Applies the flags above to `config`; exits(2) on malformed input.
void apply_shape_flags(const CliArgs& args, core::SimConfig& config);

}  // namespace clusmt::harness
