#include "harness/sweep.h"

#include <atomic>
#include <cstdio>
#include <map>
#include <stdexcept>

#include "common/csv.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "core/metrics.h"
#include "harness/run_key.h"
#include "harness/tape_registry.h"

namespace clusmt::harness {

namespace {

std::string default_label(const std::vector<std::string>& parts) {
  std::string out;
  for (const auto& part : parts) {
    if (part.empty()) continue;
    if (!out.empty()) out += '@';
    out += part;
  }
  return out;
}

}  // namespace

std::vector<ConfigPoint> SweepSpec::expand_points() const {
  std::vector<ConfigPoint> out;
  bool product_empty = axes.empty();
  for (const Axis& axis : axes) product_empty |= axis.values.empty();
  if (!product_empty) {
    // Odometer over the axes, first axis slowest.
    std::vector<std::size_t> index(axes.size(), 0);
    bool done = false;
    while (!done) {
      ConfigPoint point;
      point.config = base;
      point.config.skip_ahead = skip_ahead;
      point.config.rename_memo = rename_memo;
      std::vector<std::string> parts;
      parts.reserve(axes.size());
      for (std::size_t a = 0; a < axes.size(); ++a) {
        const AxisValue& value = axes[a].values[index[a]];
        if (value.apply) value.apply(point.config);
        parts.push_back(value.label);
      }
      point.label = label_fn ? label_fn(parts) : default_label(parts);
      out.push_back(std::move(point));

      std::size_t a = axes.size();
      while (a > 0) {
        --a;
        if (++index[a] < axes[a].values.size()) break;
        index[a] = 0;
        if (a == 0) done = true;  // slowest axis wrapped: product exhausted
      }
    }
  }
  for (ConfigPoint point : points) {
    point.config.skip_ahead = skip_ahead;
    point.config.rename_memo = rename_memo;
    out.push_back(std::move(point));
  }
  return out;
}

std::size_t SweepResult::point_index(const std::string& label) const {
  for (std::size_t p = 0; p < points.size(); ++p) {
    if (points[p].label == label) return p;
  }
  throw std::out_of_range("sweep has no point labelled '" + label + "'");
}

std::vector<double> SweepResult::metric(
    std::size_t point,
    const std::function<double(const RunResult&)>& fn) const {
  std::vector<double> out;
  out.reserve(cells.at(point).size());
  for (const RunResult& r : cells[point]) out.push_back(fn(r));
  return out;
}

std::vector<double> SweepResult::throughput(std::size_t point) const {
  return metric(point, [](const RunResult& r) { return r.throughput; });
}

std::vector<double> SweepResult::fairness(std::size_t point) const {
  return metric(point, [](const RunResult& r) { return r.fairness; });
}

SweepResult run_sweep(const SweepSpec& spec) {
  SweepResult out;
  out.points = spec.expand_points();
  out.suite = spec.suite;
  out.cycles = spec.cycles;
  out.warmup = spec.warmup;

  // Distributed mode: fill the store with every miss first (worker swarm),
  // so the in-process pass below runs entirely warm. Same requests, same
  // assembly, same bytes — only who simulated differs.
  if (spec.shard.workers > 0) {
    (void)shard_prefetch(spec, out.points);
  }

  RunCache& cache = spec.cache != nullptr ? *spec.cache : RunCache::instance();
  const std::uint64_t hits_before = cache.hits();
  const std::uint64_t misses_before = cache.misses();
  const std::uint64_t disk_hits_before = cache.disk_hits();
  const std::uint64_t corrupt_before = run_store_corrupt_reads();
  TapeRegistry& tapes = TapeRegistry::instance();
  const std::uint64_t skipped_before = total_cycles_skipped();
  const std::uint64_t episodes_before = total_skip_episodes();
  const std::uint64_t tape_hits_before = tapes.hits();
  const std::uint64_t tape_recordings_before = tapes.recordings();
  const std::uint64_t tape_live_before = tapes.live_sources();

  const std::size_t num_points = out.points.size();
  const std::size_t num_workloads = out.suite.size();
  out.cells.assign(num_points, std::vector<RunResult>(num_workloads));

  // Cells still pending per point, for the per-point progress line.
  std::vector<std::atomic<std::size_t>> remaining(num_points);
  for (auto& r : remaining) r.store(num_workloads, std::memory_order_relaxed);

  // The pool is declared after every state its tasks reference and joins
  // all queued work in its destructor, so an exception unwinding this frame
  // never frees state a worker still uses.
  ThreadPool pool(spec.jobs);

  // Fairness baselines, deduplicated by content across all points, go into
  // the same queue first: they are ready early, computed at most once, and
  // any SMT cell that finishes sooner pulls its baseline through the cache
  // inline rather than waiting on a phase barrier.
  std::vector<std::future<RunResult>> baseline_futures;
  if (spec.with_fairness) {
    std::map<RunKey, std::pair<core::SimConfig, trace::TraceSpec>> unique;
    for (const ConfigPoint& point : out.points) {
      for (const auto& workload : out.suite) {
        for (const auto& t : workload.threads) {
          unique.try_emplace(
              baseline_key(point.config, t, spec.cycles, spec.warmup),
              point.config, t);
        }
      }
    }
    baseline_futures.reserve(unique.size());
    for (const auto& [key, cell] : unique) {
      baseline_futures.push_back(pool.submit_task(
          [config = cell.first, trace = cell.second, &cache,
           cycles = spec.cycles, warmup = spec.warmup] {
            return baseline_run(cache, config, trace, cycles, warmup);
          }));
    }
  }

  std::vector<std::vector<std::future<RunResult>>> futures(num_points);
  for (std::size_t p = 0; p < num_points; ++p) {
    futures[p].reserve(num_workloads);
    for (std::size_t w = 0; w < num_workloads; ++w) {
      const RunKey key =
          run_key(out.points[p].config, out.suite[w], spec.cycles, spec.warmup);
      futures[p].push_back(pool.submit_task([&, key, p, w] {
        const core::SimConfig& config = out.points[p].config;
        const trace::WorkloadSpec& workload = out.suite[w];
        RunResult result = cache.get_or_run(key, [&] {
          return simulate_workload(config, workload, spec.cycles, spec.warmup);
        });
        // Keys hash trace *content* only, so a cache hit may carry the
        // display metadata of a content-equal twin under another name;
        // stamp the requesting workload's own labels.
        result.workload = workload.name;
        result.category = workload.category;
        result.type = workload.type;
        if (spec.with_fairness) {
          std::vector<double> smt;
          std::vector<double> alone_ipc;
          for (std::size_t t = 0; t < workload.threads.size(); ++t) {
            smt.push_back(result.ipc[t]);
            alone_ipc.push_back(baseline_run(cache, config,
                                             workload.threads[t], spec.cycles,
                                             spec.warmup)
                                    .ipc[0]);
          }
          result.fairness = core::fairness(smt, alone_ipc);
        }
        if (spec.progress &&
            remaining[p].fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::fprintf(stderr, "done: %s\n", out.points[p].label.c_str());
        }
        return result;
      }));
    }
  }

  // Join in deterministic order; the first failing cell rethrows here
  // (after the pool drains, via the declaration-order guarantee above).
  for (std::size_t p = 0; p < num_points; ++p) {
    for (std::size_t w = 0; w < num_workloads; ++w) {
      out.cells[p][w] = futures[p][w].get();
    }
  }
  for (auto& f : baseline_futures) (void)f.get();

  out.cache_hits = cache.hits() - hits_before;
  out.cache_misses = cache.misses() - misses_before;
  out.cache_disk_hits = cache.disk_hits() - disk_hits_before;
  out.tape_hits = tapes.hits() - tape_hits_before;
  out.tape_recordings = tapes.recordings() - tape_recordings_before;
  out.tape_live = tapes.live_sources() - tape_live_before;
  out.cycles_skipped = total_cycles_skipped() - skipped_before;
  out.skip_episodes = total_skip_episodes() - episodes_before;
  out.corrupt_records = run_store_corrupt_reads() - corrupt_before;
  if (spec.progress) {
    std::fprintf(
        stderr,
        "[sweep] %zu points x %zu workloads: %llu simulated, %llu cached, "
        "%llu loaded from disk; tapes: %llu replayed, %llu recorded, "
        "%llu live; skipped %llu cycles in %llu jumps",
        num_points, num_workloads,
        static_cast<unsigned long long>(out.cache_misses),
        static_cast<unsigned long long>(out.cache_hits),
        static_cast<unsigned long long>(out.cache_disk_hits),
        static_cast<unsigned long long>(out.tape_hits),
        static_cast<unsigned long long>(out.tape_recordings),
        static_cast<unsigned long long>(out.tape_live),
        static_cast<unsigned long long>(out.cycles_skipped),
        static_cast<unsigned long long>(out.skip_episodes));
    if (out.corrupt_records > 0) {
      std::fprintf(stderr, "; %llu corrupt records ignored",
                   static_cast<unsigned long long>(out.corrupt_records));
    }
    std::fprintf(stderr, "\n");
  }
  return out;
}

std::vector<double> ratio_to_baseline(const std::vector<double>& series,
                                      const std::vector<double>& baseline) {
  if (series.size() != baseline.size()) {
    throw std::invalid_argument("ratio_to_baseline: size mismatch");
  }
  std::vector<double> out(series.size());
  for (std::size_t i = 0; i < series.size(); ++i) {
    out[i] = baseline[i] == 0.0 ? 0.0 : series[i] / baseline[i];
  }
  return out;
}

std::string TableDoc::render_text() const {
  TextTable table(header);
  for (const auto& row : rows) table.add_row(row);
  return table.render();
}

namespace {
CsvWriter as_csv(const TableDoc& doc) {
  CsvWriter csv(doc.header);
  for (const auto& row : doc.rows) csv.add_row(row);
  return csv;
}
}  // namespace

std::string TableDoc::to_csv() const { return as_csv(*this).to_string(); }
std::string TableDoc::to_json() const { return as_csv(*this).to_json(); }

bool TableDoc::write_csv(const std::string& path) const {
  return as_csv(*this).write_file(path);
}

bool TableDoc::write_json(const std::string& path) const {
  return as_csv(*this).write_json_file(path);
}

TableDoc category_table(
    const std::vector<trace::WorkloadSpec>& suite,
    const std::vector<std::pair<std::string, std::vector<double>>>& series,
    int precision) {
  TableDoc doc;
  doc.header.push_back("category");
  for (const auto& [label, _] : series) doc.header.push_back(label);

  std::vector<std::vector<std::pair<std::string, double>>> per_series;
  per_series.reserve(series.size());
  for (const auto& [label, metric] : series) {
    per_series.push_back(by_category(suite, metric));
  }
  const std::size_t num_rows = per_series.empty() ? 0 : per_series[0].size();
  for (std::size_t r = 0; r < num_rows; ++r) {
    std::vector<std::string> cells = {per_series[0][r].first};
    for (const auto& s : per_series) {
      cells.push_back(format_double(s[r].second, precision));
    }
    doc.add_row(std::move(cells));
  }
  return doc;
}

}  // namespace clusmt::harness
