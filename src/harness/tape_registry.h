// Process-wide registry of replay tapes (trace/tape.h), keyed by trace
// *content* — the same 128-bit (profile, seed) hash the fairness-baseline
// cache uses — so every sweep cell, bench repeat, and baseline sharing a
// trace replays one recording instead of regenerating the stream. This is
// the trace-generation analogue of the RunCache: the RunCache dedups whole
// cells, the tape registry dedups the µop streams inside the cells that do
// simulate.
//
// Disabled mode (--no-tape) hands out live SyntheticTrace cursors instead;
// the two modes are pinned bit-identical by tests/trace_tape_test.cc, and
// the golden-numbers gate covers the tape path end to end.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "harness/run_key.h"
#include "trace/profile.h"
#include "trace/tape.h"
#include "trace/workload.h"

namespace clusmt::harness {

class TapeRegistry {
 public:
  TapeRegistry(const TapeRegistry&) = delete;
  TapeRegistry& operator=(const TapeRegistry&) = delete;

  /// The process-wide instance every harness entry point shares.
  [[nodiscard]] static TapeRegistry& instance();

  /// Tape replay on/off (the --no-tape oracle switch). Disabling does not
  /// drop existing tapes; re-enabling reuses them.
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// A fresh trace cursor for `spec`: a TapeTrace over the shared tape
  /// (recorded on demand, created on first request) when enabled, else a
  /// live SyntheticTrace. `profile_out`, when non-null, receives a pointer
  /// to a profile copy that outlives the returned source (the wrong-path
  /// synthesizer requires a stable profile).
  [[nodiscard]] std::shared_ptr<trace::TraceSource> source_for(
      const trace::TraceSpec& spec,
      const trace::TraceProfile** profile_out = nullptr);

  /// Requests served by an already-registered tape.
  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  /// Requests that created (and will record) a new tape.
  [[nodiscard]] std::uint64_t recordings() const noexcept {
    return recordings_.load(std::memory_order_relaxed);
  }
  /// Requests served with a live cursor because the registry was disabled.
  [[nodiscard]] std::uint64_t live_sources() const noexcept {
    return live_sources_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t size() const;

  /// Drops every tape and zeroes the counters, restoring the full chunk
  /// budget (intended for tests; must not race with live readers).
  void clear();

 private:
  TapeRegistry();

  std::atomic<bool> enabled_{true};
  mutable std::mutex mutex_;
  std::map<RunKey, std::shared_ptr<trace::TraceTape>> tapes_;
  std::uint64_t budget_bytes_ = 0;
  std::unique_ptr<trace::TapeBudget> budget_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> recordings_{0};
  std::atomic<std::uint64_t> live_sources_{0};
};

}  // namespace clusmt::harness
