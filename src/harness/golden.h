// Golden-numbers regression gate: parse the JSON tables the benches emit
// (CsvWriter::to_json — a flat array of objects with string/number/null
// values) and diff a freshly generated table against a checked-in golden
// with per-metric tolerances. tools/golden_diff is the CLI front end; CI
// runs it over bench/golden/ on every PR so a scheme-number drift fails
// the build with the offending metric named instead of slipping past by
// eyeball.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace clusmt::harness {

/// One parsed JSON cell. Exactly one of the shapes is active: a number, a
/// null, or a string (anything the table quoted — including "nan"/"12%").
struct GoldenValue {
  enum class Kind { kNumber, kString, kNull } kind = Kind::kNull;
  double number = 0.0;
  std::string text;

  [[nodiscard]] static GoldenValue of_number(double v) {
    return {Kind::kNumber, v, {}};
  }
  [[nodiscard]] static GoldenValue of_string(std::string s) {
    return {Kind::kString, 0.0, std::move(s)};
  }
  [[nodiscard]] static GoldenValue null() { return {}; }
};

/// One table row: (metric name, value) pairs in document order.
using GoldenRow = std::vector<std::pair<std::string, GoldenValue>>;

struct GoldenTable {
  std::vector<GoldenRow> rows;
};

/// Parses a CsvWriter::to_json-shaped document (array of flat objects).
/// Throws std::runtime_error with a position-tagged message on anything
/// malformed — a truncated or hand-mangled golden must fail loudly, not
/// diff as empty.
[[nodiscard]] GoldenTable parse_json_table(std::string_view json);

struct GoldenTolerance {
  /// Relative tolerance applied to numeric metrics without an override.
  double rtol = 1e-9;
  /// Absolute floor so metrics near zero don't demand infinite precision.
  double atol = 1e-12;
  /// Per-metric relative overrides, keyed by column name.
  std::map<std::string, double> per_metric;

  [[nodiscard]] double rtol_for(const std::string& metric) const {
    const auto it = per_metric.find(metric);
    return it == per_metric.end() ? rtol : it->second;
  }
};

/// One out-of-tolerance (or structurally mismatched) metric.
struct GoldenMismatch {
  std::size_t row = 0;        ///< row index in the golden table
  std::string row_key;        ///< first column's value, for readability
  std::string metric;         ///< offending column name
  std::string golden;         ///< golden value as text
  std::string fresh;          ///< fresh value as text
  double rel_error = 0.0;     ///< relative error (0 for structural issues)
};

struct GoldenDiffResult {
  std::vector<GoldenMismatch> mismatches;
  std::size_t metrics_compared = 0;

  [[nodiscard]] bool pass() const noexcept { return mismatches.empty(); }
  /// Human-readable per-metric report (one line per mismatch; "OK" line
  /// when passing) — what the CI job prints.
  [[nodiscard]] std::string report() const;
};

/// Compares `fresh` against `golden` row by row (tables are ordered):
/// numbers must agree within |g-f| <= atol + rtol(metric)*max(|g|,|f|),
/// strings and nulls must match exactly, and any structural drift — row
/// count, metric set, value kind — is itself a mismatch.
[[nodiscard]] GoldenDiffResult diff_golden_tables(const GoldenTable& golden,
                                                  const GoldenTable& fresh,
                                                  const GoldenTolerance& tol);

}  // namespace clusmt::harness
