// Sharded sweep execution: the coordinator side of the spool protocol
// (harness/spool.h). Given an expanded sweep grid, shard_prefetch()
// guarantees that every cell the sweep will request is present in the
// attached --cache-dir RunStore: warm cells are served instantly, misses
// are serialized into the spool and executed by sweep_worker processes —
// spawned locally, or already running on other hosts that share the spool
// directory. The sweep engine then assembles tables through the normal
// warm-store path, so output is bit-identical for any worker count,
// including 0 (pure in-process execution, the default).
//
// Straggler/failure handling: the coordinator re-queues cells whose lease
// went stale (dead or stuck worker), respawns exited workers while work
// remains (bounded by workers × max_attempts total spawns), and surfaces a
// cell that failed max_attempts times as a per-cell error listing every
// recorded message — never a hang.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace clusmt::harness {

struct SweepSpec;
struct ConfigPoint;

/// Distribution knobs of a sweep (SweepSpec::shard).
struct ShardSpec {
  /// Local sweep_worker processes to spawn. 0 = in-process execution; the
  /// spool is not consulted at all and no other field matters.
  int workers = 0;

  /// Shared spool directory (the cluster rendezvous point). Empty = a
  /// throwaway directory under $TMPDIR, removed after a successful sweep —
  /// right for single-host fan-out; multi-host runs name a shared path.
  std::string spool_dir;

  /// sweep_worker binary. Empty = $CLUSMT_WORKER_BIN, then `sweep_worker`
  /// next to the running binary, then `../tools/sweep_worker` (the build
  /// tree layout relative to build/bench and build/tests).
  std::string worker_bin;

  /// Executions per cell (worker exceptions + lease reclaims) before the
  /// cell turns into a terminal per-cell error.
  int max_attempts = 3;

  /// Lease heartbeat horizon: a claim untouched for this long is treated
  /// as abandoned and re-queued (straggler stealing).
  int lease_ms = 15000;

  /// Workers exit after this long without claiming anything (they also
  /// exit as soon as the spool drains).
  int idle_timeout_ms = 10000;

  /// Degrade instead of abort when the swarm cannot make progress: if the
  /// worker binary is missing, no worker can be spawned, the respawn
  /// budget runs out, or a cell turns terminal without a stored result,
  /// the remaining cells are simulated in-process (through the same cache,
  /// so tables stay bit-identical) with a surfaced warning, rather than
  /// throwing. Off by default: CI wants a dead swarm to be loud.
  bool degrade_local = false;
};

/// Cell traffic of one sharded prefetch, for progress/CI reporting.
struct ShardStats {
  std::size_t cells = 0;             // cells the sweep needs (incl. baselines)
  std::size_t served_from_store = 0; // already warm in memory or on disk
  std::size_t spooled = 0;           // misses handed to the worker swarm
  std::size_t simulated_by_workers = 0;
  std::size_t simulated_locally = 0; // degrade-local fallback executions
  int workers_spawned = 0;           // includes straggler respawns
};

/// Ensures every cell of (points × suite [+ fairness baselines]) is in the
/// RunStore attached to the sweep's cache, farming misses through the
/// spool to `spec.shard.workers` local worker processes (plus any remote
/// workers already watching the same spool). Throws std::runtime_error
/// when no store is attached, the worker binary cannot be found or
/// spawned, workers keep dying, or any cell exhausts its attempts — the
/// last with a per-cell list of the recorded failure messages. With
/// ShardSpec::degrade_local, every swarm-level failure after the
/// no-store check instead falls back to in-process simulation of the
/// affected cells (warning on stderr, counted in
/// ShardStats::simulated_locally).
ShardStats shard_prefetch(const SweepSpec& spec,
                          const std::vector<ConfigPoint>& points);

}  // namespace clusmt::harness
