// Directory-based work queue for farming sweep cells to other processes
// and hosts. The coordinator (harness/shard.h) serializes each cache-miss
// cell — its RunKey plus the full (config, workload, cycles, warmup) spec —
// into <spool>/todo/; workers (tools/sweep_worker.cc) claim cells by atomic
// rename into <spool>/claimed/<worker-id>/, write results to the shared
// --cache-dir RunStore, and ack by rename into <spool>/done/. The directory
// is the whole protocol: any filesystem shared between the participants
// (local disk for a single-host fan-out, NFS-like storage for multi-host)
// is a cluster.
//
// Layout (all entries named by the cell's 128-bit RunKey):
//   todo/<032hex>.a<N>.cell          pending; N prior attempts failed
//   claimed/<worker>/<032hex>.a<N>.cell   leased; mtime is the heartbeat
//   done/<032hex>.cell               acked (the result is in the store)
//   failed/<032hex>.cell + .err      terminal after max_attempts failures
//
// Failure semantics: a claim whose mtime goes stale (dead or stuck worker)
// is reclaimed — renamed back into todo/ with the attempt count bumped —
// by any other participant, so stragglers get stolen. Duplicate execution
// is harmless: results are content-keyed and byte-identical, and the store
// write is atomic. A cell that fails max_attempts times (worker exception,
// repeated lease expiry) moves to failed/ with the collected messages; the
// coordinator surfaces it as a per-cell error instead of hanging. An
// unreadable spec (corruption) is quarantined to failed/ immediately.
//
// Clock-skew / NFS caveat: lease staleness is judged from claim-file
// mtimes, which on a shared filesystem are stamped by *another host's*
// clock. reclaim_stale therefore treats a claim as stale when EITHER its
// absolute mtime age exceeds the lease (the fast path when clocks agree)
// OR this process has observed the same mtime unchanged for a full lease
// of its own steady-clock time (robust to hosts whose clocks run ahead —
// even to mtimes in the future). What the protocol does assume of the
// filesystem: atomic rename within the spool tree, and close-to-open
// visibility of renames and mtime updates. NFS provides both with default
// (close-to-open) consistency, but aggressive attribute caching
// (actimeo/nocto mounts) can delay heartbeat-mtime visibility by the
// attribute-cache TTL — size leases comfortably above `acdirmax`/`acregmax`
// (several × the heartbeat period at minimum) or stragglers get stolen
// spuriously. Duplicate execution stays harmless either way: results are
// content-keyed and store writes are atomic.
#pragma once

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "core/config.h"
#include "harness/run_key.h"
#include "trace/workload.h"

namespace clusmt::harness {

/// Bump whenever the cell-spec layout changes (a field added to
/// core::SimConfig or trace::TraceProfile, a string re-ordered). Workers
/// then treat stale-format specs as unreadable instead of simulating a
/// half-decoded machine.
inline constexpr std::uint32_t kSpoolFormatVersion =
    3;  // v3: skip_ahead/rename_memo knobs (v2: ClusterShape)

/// One spooled cell: everything a foreign process needs to reproduce the
/// simulation, plus the key its result files under.
struct SpoolCell {
  RunKey key;  // run_key(config, workload, cycles, warmup)
  core::SimConfig config;
  trace::WorkloadSpec workload;
  Cycle cycles = 0;
  Cycle warmup = 0;
};

/// Serializes `cell` to a self-contained, versioned, checksummed record
/// (same wire primitives as the run-store records). NOTE: the field list
/// mirrors hash_config/hash_trace in run_key.cc — when a knob is added
/// there, extend the codec in spool.cc and bump kSpoolFormatVersion.
[[nodiscard]] std::string encode_cell_spec(const SpoolCell& cell);

/// Decodes a spec, validating magic, version and checksum; nullopt on any
/// mismatch. Workers additionally re-derive run_key() from the decoded
/// spec and refuse cells whose embedded key disagrees (codec drift).
[[nodiscard]] std::optional<SpoolCell> decode_cell_spec(
    std::string_view record);

struct SpoolCounts {
  std::size_t todo = 0;
  std::size_t claimed = 0;
  std::size_t done = 0;
  std::size_t failed = 0;
};

class Spool {
 public:
  static constexpr int kDefaultMaxAttempts = 3;

  /// `dir` is the shared spool root; `max_attempts` bounds executions per
  /// cell (failures + lease reclaims) before it turns terminal.
  explicit Spool(std::string dir, int max_attempts = kDefaultMaxAttempts);

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] int max_attempts() const noexcept { return max_attempts_; }

  /// Creates todo/ claimed/ done/ failed/ (with parents). Idempotent.
  [[nodiscard]] bool init_dirs() const;

  /// Queues `cell` (atomic write into todo/). Re-pushing a key replaces the
  /// pending entry and resets its attempt count.
  [[nodiscard]] bool push(const SpoolCell& cell) const;

  /// A held lease. `attempt` is 1-based: the Nth execution of this cell.
  struct Claim {
    SpoolCell cell;
    std::string path;  // claimed/<worker>/<hex>.a<N>.cell
    int attempt = 1;
  };

  /// Claims any pending cell by atomic rename into claimed/<worker_id>/
  /// (the rename is the mutual exclusion: of two racing claimants exactly
  /// one wins). The fresh claim's mtime is touched so the lease starts
  /// now. Unreadable specs are quarantined to failed/ and skipped.
  /// nullopt when todo/ is empty.
  [[nodiscard]] std::optional<Claim> claim(const std::string& worker_id) const;

  /// Heartbeat: re-touches the claim's mtime. Returns false when the file
  /// is gone — the lease was stolen; the holder should finish (the result
  /// is still byte-identical) but expect ack() to no-op.
  static bool refresh_lease(const Claim& claim);

  /// Acks a finished cell: rename into done/. False when the lease was
  /// stolen meanwhile (benign — the thief will ack).
  [[nodiscard]] bool ack(const Claim& claim) const;

  /// Voluntarily returns an unfinished claim to todo/ WITHOUT bumping the
  /// attempt count — the drain path of a worker told to shut down
  /// (SIGTERM): the cell was never executed to failure, so surrendering it
  /// must not burn one of its attempts. False when the lease was stolen
  /// meanwhile (benign).
  [[nodiscard]] bool release(const Claim& claim) const;

  /// Records a failed execution: appends `message` to failed/<key>.err and
  /// either requeues the cell into todo/ with the attempt count bumped or,
  /// at the attempt cap, moves it to failed/ terminally.
  void fail(const Claim& claim, const std::string& message) const;

  /// Renames every stale claimed entry back into todo/ with the attempt
  /// count bumped (terminal past the cap), so cells of dead or stuck
  /// workers get stolen. A claim is stale when its mtime age exceeds
  /// `lease` OR this Spool instance has watched the same mtime sit
  /// unchanged for `lease` of local steady-clock time (see the clock-skew
  /// caveat in the header comment). Returns entries moved (requeued or
  /// terminally failed).
  std::size_t reclaim_stale(std::chrono::milliseconds lease) const;

  /// True when failed/<key>.cell exists (attempts exhausted / quarantined).
  [[nodiscard]] bool terminally_failed(const RunKey& key) const;

  /// Collected failure messages of `key` ("" when none recorded).
  [[nodiscard]] std::string failure_message(const RunKey& key) const;

  [[nodiscard]] SpoolCounts counts() const;

  /// True when nothing is pending or leased (workers may exit).
  [[nodiscard]] bool drained() const;

 private:
  std::string dir_;
  int max_attempts_;

  // Skew-robust staleness: per claim path, the last mtime seen and the
  // local steady-clock instant it was first seen at. Observation state of
  // this coordinator process only — never shared through the filesystem.
  struct LeaseObservation {
    std::filesystem::file_time_type mtime;
    std::chrono::steady_clock::time_point first_seen;
  };
  mutable std::mutex observed_mutex_;
  mutable std::map<std::string, LeaseObservation> observed_;
};

/// Hygiene options for long-lived spool directories (tools/cache_gc).
struct SpoolGcOptions {
  /// Claims older than this are orphaned leases: requeue them.
  std::chrono::seconds lease{300};
  /// Acked done/ entries and terminal failed/ entries older than this are
  /// deleted (their results/diagnostics have been consumed).
  std::chrono::seconds done_ttl{24 * 3600};
  bool dry_run = false;
};

struct SpoolGcResult {
  std::uint64_t scanned = 0;        // spool entries seen
  std::uint64_t reclaimed = 0;      // orphaned leases requeued to todo/
  std::uint64_t deleted_done = 0;   // expired done/ entries removed
  std::uint64_t deleted_failed = 0; // expired failed/ entries removed
  std::uint64_t removed_dirs = 0;   // emptied claimed/<worker> dirs pruned
};

/// One hygiene sweep: reclaims orphaned leases, expires acked/failed
/// entries past their TTL, prunes emptied per-worker claim dirs. A missing
/// or non-spool directory is a no-op. Only spool-protocol entries
/// (*.cell, *.err) are ever touched.
[[nodiscard]] SpoolGcResult gc_spool(const std::string& dir,
                                     const SpoolGcOptions& options);

}  // namespace clusmt::harness
