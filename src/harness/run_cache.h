// Process-wide, thread-safe memoisation of simulation runs, keyed by the
// RunKey content hash. Identical cells — repeated grid points, shared
// fairness baselines — are simulated exactly once per process no matter how
// many Runners or sweeps request them; concurrent requesters of an
// in-flight cell block on its future instead of recomputing.
//
// Attaching a RunStore (set_store_dir) adds a disk tier: a memory miss
// first tries to load the cell's persisted record, and freshly computed
// cells are spilled back, so identical cells are simulated at most once
// across *processes* sharing the cache directory.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "harness/run_key.h"
#include "harness/run_store.h"
#include "harness/runner.h"

namespace clusmt::harness {

class RunCache {
 public:
  RunCache() = default;
  RunCache(const RunCache&) = delete;
  RunCache& operator=(const RunCache&) = delete;

  /// The process-wide instance every Runner and sweep shares by default.
  [[nodiscard]] static RunCache& instance();

  /// Returns the result for `key`, invoking `compute` at most once per key
  /// process-wide. The first requester loads the cell from the attached
  /// store (if any) or computes inline (on its own thread — never by
  /// re-entering a pool queue, so cells may resolve dependencies through
  /// the cache without deadlock), spilling a fresh compute back to the
  /// store; later requesters count a hit and wait. A throwing `compute`
  /// propagates to every waiter.
  [[nodiscard]] RunResult get_or_run(
      const RunKey& key, const std::function<RunResult()>& compute);

  /// True when `key` has an in-memory entry (finished or in-flight). Used
  /// by the shard coordinator to skip spooling cells this process already
  /// owns; a false answer may still be a disk hit.
  [[nodiscard]] bool contains(const RunKey& key) const;

  /// Attaches (or, with an empty dir, detaches) the disk tier. Safe to call
  /// concurrently with get_or_run; in-flight owners keep the store they
  /// started with. Re-attaching also clears a write degradation (below).
  void set_store_dir(const std::string& dir);
  [[nodiscard]] std::string store_dir() const;

  /// True once the disk tier has been demoted to read-only: after
  /// kDegradeAfterSaveFailures *consecutive* failed spills (full disk,
  /// revoked permissions) the cache stops attempting writes, warns once on
  /// stderr, and keeps serving loads + memory-tier caching — a full disk
  /// costs persistence, never the sweep. Cleared by set_store_dir.
  [[nodiscard]] bool store_write_degraded() const noexcept {
    return store_degraded_.load(std::memory_order_relaxed);
  }

  /// Failed spill attempts observed (for tests and progress reporting).
  [[nodiscard]] std::uint64_t save_failures() const noexcept {
    return save_failures_.load(std::memory_order_relaxed);
  }

  static constexpr int kDegradeAfterSaveFailures = 3;

  /// Requests served from a finished or in-flight in-memory entry.
  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  /// Requests that invoked `compute` (actual simulations).
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Requests served by loading a persisted record instead of computing.
  [[nodiscard]] std::uint64_t disk_hits() const noexcept {
    return disk_hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t size() const;

  /// Drops every finished in-memory entry and resets counters (the disk
  /// tier is untouched). Must not race with in-flight get_or_run calls
  /// (intended for tests).
  void clear();

 private:
  mutable std::mutex mutex_;
  std::map<RunKey, std::shared_future<RunResult>> entries_;
  std::shared_ptr<const RunStore> store_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> disk_hits_{0};
  std::atomic<std::uint64_t> save_failures_{0};
  std::atomic<int> consecutive_save_failures_{0};
  std::atomic<bool> store_degraded_{false};
  std::atomic<bool> warned_save_failure_{false};
};

/// The single-thread workload a fairness baseline of `trace` runs as. The
/// ONE place baseline workloads are shaped — baseline_key/baseline_run and
/// the shard coordinator's spooled baseline cells all build it here, so
/// their keys agree by construction.
[[nodiscard]] trace::WorkloadSpec baseline_workload(
    const trace::TraceSpec& trace);

/// Key of the single-thread fairness-baseline cell of `trace` on
/// baseline_config(config). The ONE place baseline cells are keyed —
/// Runner::single_thread_ipc and both sweep-engine baseline paths go
/// through this pair, so their cache entries are shared by construction.
[[nodiscard]] RunKey baseline_key(const core::SimConfig& config,
                                  const trace::TraceSpec& trace, Cycle cycles,
                                  Cycle warmup);

/// Fetches (or runs exactly once) that baseline cell through `cache`.
[[nodiscard]] RunResult baseline_run(RunCache& cache,
                                     const core::SimConfig& config,
                                     const trace::TraceSpec& trace,
                                     Cycle cycles, Cycle warmup);

}  // namespace clusmt::harness
