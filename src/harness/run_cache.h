// Process-wide, thread-safe memoisation of simulation runs, keyed by the
// RunKey content hash. Identical cells — repeated grid points, shared
// fairness baselines — are simulated exactly once per process no matter how
// many Runners or sweeps request them; concurrent requesters of an
// in-flight cell block on its future instead of recomputing.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <mutex>

#include "harness/run_key.h"
#include "harness/runner.h"

namespace clusmt::harness {

class RunCache {
 public:
  RunCache() = default;
  RunCache(const RunCache&) = delete;
  RunCache& operator=(const RunCache&) = delete;

  /// The process-wide instance every Runner and sweep shares by default.
  [[nodiscard]] static RunCache& instance();

  /// Returns the result for `key`, invoking `compute` at most once per key
  /// process-wide. The first requester computes inline (on its own thread —
  /// never by re-entering a pool queue, so cells may resolve dependencies
  /// through the cache without deadlock); later requesters count a hit and
  /// wait. A throwing `compute` propagates to every waiter.
  [[nodiscard]] RunResult get_or_run(
      const RunKey& key, const std::function<RunResult()>& compute);

  /// Requests served from a finished or in-flight entry.
  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  /// Requests that had to compute.
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t size() const;

  /// Drops every finished entry and resets counters. Must not race with
  /// in-flight get_or_run calls (intended for tests).
  void clear();

 private:
  mutable std::mutex mutex_;
  std::map<RunKey, std::shared_future<RunResult>> entries_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

/// Key of the single-thread fairness-baseline cell of `trace` on
/// baseline_config(config). The ONE place baseline cells are keyed —
/// Runner::single_thread_ipc and both sweep-engine baseline paths go
/// through this pair, so their cache entries are shared by construction.
[[nodiscard]] RunKey baseline_key(const core::SimConfig& config,
                                  const trace::TraceSpec& trace, Cycle cycles,
                                  Cycle warmup);

/// Fetches (or runs exactly once) that baseline cell through `cache`.
[[nodiscard]] RunResult baseline_run(RunCache& cache,
                                     const core::SimConfig& config,
                                     const trace::TraceSpec& trace,
                                     Cycle cycles, Cycle warmup);

}  // namespace clusmt::harness
