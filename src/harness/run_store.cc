#include "harness/run_store.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "common/faultpoint.h"
#include "common/fsio.h"
#include "common/hash.h"
#include "common/wire.h"

namespace clusmt::harness {

namespace {

constexpr std::uint32_t kMagic = 0x4e524c43;  // "CLRN" little-endian

// NOTE: keep these two in field-for-field lockstep, and bump
// kRunStoreFormatVersion whenever RunResult or core::SimStats gains,
// drops, or reorders a field — stale-format records must read as misses.
void write_stats(ByteWriter& w, const core::SimStats& s) {
  w.u64(s.cycles);
  for (auto c : s.committed) w.u64(c);
  w.u64(s.committed_copies);
  w.u64(s.committed_branches);
  w.u64(s.committed_loads);
  w.u64(s.committed_stores);
  w.u64(s.renamed_uops);
  w.u64(s.copies_created);
  w.u64(s.rename_cycles);
  w.u64(s.rename_blocked_cycles);
  w.u64(s.rename_block_iq);
  w.u64(s.rename_block_rf);
  w.u64(s.rename_block_rob);
  w.u64(s.rename_block_mob);
  w.u64(s.iq_pref_stall_events);
  w.u64(s.non_preferred_dispatches);
  w.u64(s.issued_uops);
  w.u64(s.cycles_with_issue);
  for (const auto& side : s.imbalance_events) {
    for (auto e : side) w.u64(e);
  }
  w.u64(s.squashed_uops);
  w.u64(s.branches_resolved);
  w.u64(s.mispredicts_resolved);
  w.u64(s.policy_flushes);
  w.u64(s.load_l2_misses);
  w.u64(s.store_l2_misses);
  w.u64(s.load_forwards);
}

void read_stats(ByteReader& r, core::SimStats& s) {
  s.cycles = r.u64();
  for (auto& c : s.committed) c = r.u64();
  s.committed_copies = r.u64();
  s.committed_branches = r.u64();
  s.committed_loads = r.u64();
  s.committed_stores = r.u64();
  s.renamed_uops = r.u64();
  s.copies_created = r.u64();
  s.rename_cycles = r.u64();
  s.rename_blocked_cycles = r.u64();
  s.rename_block_iq = r.u64();
  s.rename_block_rf = r.u64();
  s.rename_block_rob = r.u64();
  s.rename_block_mob = r.u64();
  s.iq_pref_stall_events = r.u64();
  s.non_preferred_dispatches = r.u64();
  s.issued_uops = r.u64();
  s.cycles_with_issue = r.u64();
  for (auto& side : s.imbalance_events) {
    for (auto& e : side) e = r.u64();
  }
  s.squashed_uops = r.u64();
  s.branches_resolved = r.u64();
  s.mispredicts_resolved = r.u64();
  s.policy_flushes = r.u64();
  s.load_l2_misses = r.u64();
  s.store_l2_misses = r.u64();
  s.load_forwards = r.u64();
}

std::uint64_t checksum(std::string_view bytes) {
  Fnv1a h(~0ull);  // distinct seed from the RunKey passes
  h.add_bytes(bytes.data(), bytes.size());
  return h.digest();
}

std::atomic<std::uint64_t> g_corrupt_reads{0};

}  // namespace

std::uint64_t run_store_corrupt_reads() {
  return g_corrupt_reads.load(std::memory_order_relaxed);
}

std::string encode_run_record(const RunKey& key, const RunResult& result) {
  ByteWriter w;
  w.u32(kMagic);
  w.u32(kRunStoreFormatVersion);
  w.u64(key.hi);
  w.u64(key.lo);
  w.str(result.workload);
  w.str(result.category);
  w.str(result.type);
  write_stats(w, result.stats);
  for (double v : result.ipc) w.f64(v);
  w.f64(result.throughput);
  w.f64(result.fairness);
  w.u64(checksum(w.bytes()));
  return std::move(w).take();
}

std::optional<RunResult> decode_run_record(const RunKey& key,
                                           std::string_view record) {
  if (record.size() < sizeof(std::uint64_t)) return std::nullopt;
  const std::string_view body =
      record.substr(0, record.size() - sizeof(std::uint64_t));

  ByteReader r(record);
  if (r.u32() != kMagic) return std::nullopt;
  if (r.u32() != kRunStoreFormatVersion) return std::nullopt;
  if (r.u64() != key.hi || r.u64() != key.lo) return std::nullopt;

  RunResult result;
  result.workload = r.str();
  result.category = r.str();
  result.type = r.str();
  read_stats(r, result.stats);
  for (double& v : result.ipc) v = r.f64();
  result.throughput = r.f64();
  result.fairness = r.f64();
  const std::uint64_t stored_sum = r.u64();
  // The checksum covers everything before it; a flipped bit or a record cut
  // short (string lengths can mask truncation) fails here.
  if (!r.exhausted() || stored_sum != checksum(body)) return std::nullopt;
  return result;
}

RunStore::RunStore(std::string dir) : dir_(std::move(dir)) {}

std::string RunStore::path_of(const RunKey& key) const {
  char name[64];
  std::snprintf(name, sizeof name, "%02x/%016llx%016llx.run",
                static_cast<unsigned>(key.hi >> 56),
                static_cast<unsigned long long>(key.hi),
                static_cast<unsigned long long>(key.lo));
  return dir_ + "/" + name;
}

std::optional<RunResult> RunStore::load(const RunKey& key) const {
  // Fault point run_store.load (error → the read itself fails: a vanished
  // mount, an unreadable sector; partial → a truncated byte stream reaches
  // the decoder). Both must read as a miss, never as a wrong result.
  const faultpoint::Mode fault = faultpoint::maybe_fail("run_store.load");
  if (fault == faultpoint::Mode::kError ||
      fault == faultpoint::Mode::kEnospc) {
    return std::nullopt;
  }
  std::ifstream in(path_of(key), std::ios::binary);
  if (!in) return std::nullopt;  // absent: a plain miss, not corruption
  std::string record((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) return std::nullopt;
  if (fault == faultpoint::Mode::kPartial) record.resize(record.size() / 2);
  std::optional<RunResult> decoded = decode_run_record(key, record);
  if (!decoded) {
    // The file exists but failed validation: torn write, bit rot, stale
    // format, foreign key. Count it so the sweep can report the churn.
    g_corrupt_reads.fetch_add(1, std::memory_order_relaxed);
  }
  return decoded;
}

bool RunStore::save(const RunKey& key, const RunResult& result) const {
  // Fault point run_store.save: any error-like mode fails the save exactly
  // as a full disk does — callers must degrade, never abort (the RunCache
  // drops to memory-only caching after repeated failures).
  if (faultpoint::inject_error("run_store.save")) return false;
  const std::string path = path_of(key);
  std::error_code ec;
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path(), ec);
  if (ec) return false;
  return write_file_atomic(path, encode_run_record(key, result));
}

bool parse_record_name(const std::string& basename, RunKey& key) {
  // "<016hex-hi><016hex-lo>.run"
  if (basename.size() != 32 + 4 || basename.substr(32) != ".run") {
    return false;
  }
  std::uint64_t parts[2] = {0, 0};
  for (int half = 0; half < 2; ++half) {
    for (int i = 0; i < 16; ++i) {
      const char c = basename[half * 16 + i];
      std::uint64_t digit;
      if (c >= '0' && c <= '9') {
        digit = std::uint64_t(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = std::uint64_t(c - 'a') + 10;
      } else {
        return false;
      }
      parts[half] = parts[half] << 4 | digit;
    }
  }
  key.hi = parts[0];
  key.lo = parts[1];
  return true;
}

namespace {

std::string read_whole_file(const std::filesystem::path& path, bool& ok) {
  std::ifstream in(path, std::ios::binary);
  ok = static_cast<bool>(in);
  if (!ok) return {};
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  ok = in.good() || in.eof();
  return bytes;
}

}  // namespace

MergeResult merge_run_store(const std::string& into, const std::string& from,
                            const MergeOptions& options) {
  namespace fs = std::filesystem;
  MergeResult result;
  std::error_code ec;
  if (!fs::is_directory(from, ec) || ec) return result;  // empty source

  const RunStore dst(into);
  for (fs::recursive_directory_iterator it(from, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file(ec) || it->path().extension() != ".run") {
      continue;
    }
    ++result.scanned;
    RunKey key;
    if (!parse_record_name(it->path().filename().string(), key)) {
      ++result.invalid;
      continue;
    }
    bool ok = false;
    const std::string record = read_whole_file(it->path(), ok);
    if (!ok || !decode_run_record(key, record)) {
      ++result.invalid;
      continue;
    }
    const std::string dst_path = dst.path_of(key);
    bool dst_ok = false;
    const std::string existing = read_whole_file(dst_path, dst_ok);
    if (dst_ok) {
      ++(existing == record ? result.identical : result.conflicts);
      continue;
    }
    if (!options.dry_run) {
      std::error_code mk_ec;
      fs::create_directories(fs::path(dst_path).parent_path(), mk_ec);
      if (mk_ec || !write_file_atomic(dst_path, record)) {
        continue;  // best-effort, like RunStore::save
      }
    }
    ++result.copied;
  }
  return result;
}

GcResult gc_run_store(const std::string& dir, const GcOptions& options) {
  namespace fs = std::filesystem;
  GcResult result;
  std::error_code ec;
  if (!fs::is_directory(dir, ec) || ec) return result;  // empty store

  struct Record {
    fs::path path;
    std::uint64_t bytes = 0;
    fs::file_time_type mtime;
  };
  std::vector<Record> records;
  for (fs::recursive_directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file(ec) || it->path().extension() != ".run") {
      continue;
    }
    // A record can vanish between iteration and stat (concurrent GC or a
    // writer replacing it): skip it rather than record file_size's
    // uintmax_t(-1) error sentinel as ~16 EB of store.
    std::error_code size_ec;
    std::error_code time_ec;
    Record record{it->path(), it->file_size(size_ec), {}};
    record.mtime = fs::last_write_time(record.path, time_ec);
    if (size_ec || time_ec) continue;
    records.push_back(std::move(record));
  }
  result.scanned_files = records.size();
  for (const Record& record : records) result.scanned_bytes += record.bytes;

  // Oldest first; path breaks mtime ties so a sweep is deterministic on
  // filesystems with coarse timestamps.
  std::sort(records.begin(), records.end(),
            [](const Record& a, const Record& b) {
              if (a.mtime != b.mtime) return a.mtime < b.mtime;
              return a.path < b.path;
            });

  std::uint64_t live_files = result.scanned_files;
  std::uint64_t live_bytes = result.scanned_bytes;
  for (const Record& record : records) {
    const bool over_bytes = options.max_bytes != 0 &&
                            live_bytes > options.max_bytes;
    const bool over_files = options.max_files != 0 &&
                            live_files > options.max_files;
    if (!over_bytes && !over_files) break;
    if (!options.dry_run) {
      fs::remove(record.path, ec);
      if (ec) continue;  // busy/permission: skip, keep sweeping
    }
    ++result.deleted_files;
    result.deleted_bytes += record.bytes;
    --live_files;
    live_bytes -= record.bytes;
  }

  if (!options.dry_run && result.deleted_files > 0) {
    // Prune key-prefix subdirectories the sweep emptied (never the root).
    for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
      if (!it->is_directory(ec)) continue;
      std::error_code rm_ec;
      if (fs::is_empty(it->path(), rm_ec) && !rm_ec &&
          fs::remove(it->path(), rm_ec) && !rm_ec) {
        ++result.removed_dirs;
      }
    }
  }
  return result;
}

}  // namespace clusmt::harness
