#include "harness/runner.h"

#include <atomic>
#include <map>
#include <sstream>
#include <stdexcept>

#include "common/stats.h"
#include "common/thread_pool.h"
#include "core/metrics.h"
#include "harness/run_cache.h"
#include "harness/run_key.h"
#include "harness/tape_registry.h"

namespace clusmt::harness {

namespace {
std::atomic<std::uint64_t> g_cycles_skipped{0};
std::atomic<std::uint64_t> g_skip_episodes{0};
}  // namespace

std::uint64_t total_cycles_skipped() noexcept {
  return g_cycles_skipped.load(std::memory_order_relaxed);
}
std::uint64_t total_skip_episodes() noexcept {
  return g_skip_episodes.load(std::memory_order_relaxed);
}

RunResult simulate_workload(const core::SimConfig& config,
                            const trace::WorkloadSpec& spec, Cycle cycles,
                            Cycle warmup) {
  if (spec.threads.size() != static_cast<std::size_t>(config.num_threads)) {
    std::ostringstream err;
    err << "workload " << spec.name << " has " << spec.threads.size()
        << " threads; config expects " << config.num_threads;
    throw std::invalid_argument(err.str());
  }
  core::Simulator sim(config);
  auto& tapes = TapeRegistry::instance();
  for (std::size_t t = 0; t < spec.threads.size(); ++t) {
    // Route through the tape registry: cells sharing a (profile, seed)
    // trace replay one recording. Disabled (--no-tape), this hands back a
    // live generator — the differential oracle for the tape path.
    const trace::TraceProfile* profile = nullptr;
    auto source = tapes.source_for(spec.threads[t], &profile);
    sim.attach_thread(static_cast<ThreadId>(t), std::move(source), profile,
                      spec.threads[t].seed);
  }
  if (warmup > 0) {
    sim.run(warmup);
    sim.reset_stats();
  }
  sim.run(cycles);
  // reset_stats() above also cleared the skip tallies, so this is the
  // measured phase only.
  g_cycles_skipped.fetch_add(sim.cycles_skipped(), std::memory_order_relaxed);
  g_skip_episodes.fetch_add(sim.skip_episodes(), std::memory_order_relaxed);

  RunResult result;
  result.workload = spec.name;
  result.category = spec.category;
  result.type = spec.type;
  result.stats = sim.stats();
  result.throughput = sim.stats().throughput();
  for (int t = 0; t < config.num_threads; ++t) {
    result.ipc[t] = sim.stats().ipc(t);
  }
  return result;
}

Runner::Runner(core::SimConfig base_config, Cycle cycles, Cycle warmup,
               std::size_t host_threads)
    : config_(std::move(base_config)),
      cycles_(cycles),
      warmup_(warmup),
      host_threads_(host_threads) {}

RunResult Runner::run_workload(const trace::WorkloadSpec& spec) const {
  return simulate_workload(config_, spec, cycles_, warmup_);
}

std::vector<RunResult> Runner::run_suite(
    const std::vector<trace::WorkloadSpec>& suite) const {
  std::vector<RunResult> results(suite.size());
  parallel_for(
      suite.size(),
      [&](std::size_t i) { results[i] = run_workload(suite[i]); },
      host_threads_);
  return results;
}

double Runner::single_thread_ipc(const trace::TraceSpec& spec) const {
  return baseline_run(RunCache::instance(), config_, spec, cycles_, warmup_)
      .ipc[0];
}

double Runner::fairness_of(const RunResult& result,
                           const trace::WorkloadSpec& spec) const {
  std::vector<double> smt;
  std::vector<double> alone;
  for (std::size_t t = 0; t < spec.threads.size(); ++t) {
    smt.push_back(result.ipc[t]);
    alone.push_back(single_thread_ipc(spec.threads[t]));
  }
  return core::fairness(smt, alone);
}

std::vector<RunResult> Runner::run_suite_with_fairness(
    const std::vector<trace::WorkloadSpec>& suite) const {
  // Warm the baseline cache in parallel first (unique traces only — by
  // content, so same-name-different-content traces each get a run), then
  // run the SMT configurations.
  std::vector<const trace::TraceSpec*> unique;
  {
    std::map<RunKey, const trace::TraceSpec*> seen;
    for (const auto& w : suite) {
      for (const auto& t : w.threads) seen.emplace(trace_content_key(t), &t);
    }
    for (const auto& [key, ptr] : seen) unique.push_back(ptr);
  }
  parallel_for(
      unique.size(),
      [&](std::size_t i) { (void)single_thread_ipc(*unique[i]); },
      host_threads_);

  std::vector<RunResult> results = run_suite(suite);
  for (std::size_t i = 0; i < results.size(); ++i) {
    results[i].fairness = fairness_of(results[i], suite[i]);
  }
  return results;
}

std::vector<std::pair<std::string, double>> by_category(
    const std::vector<trace::WorkloadSpec>& suite,
    const std::vector<double>& per_workload_metric) {
  if (suite.size() != per_workload_metric.size()) {
    throw std::invalid_argument("by_category: size mismatch");
  }
  std::vector<std::pair<std::string, double>> rows;
  RunningStats overall;
  for (const std::string& category : trace::category_display_order()) {
    RunningStats acc;
    for (std::size_t i = 0; i < suite.size(); ++i) {
      if (suite[i].category == category) acc.add(per_workload_metric[i]);
    }
    if (acc.count() > 0) rows.emplace_back(category, acc.mean());
  }
  for (double m : per_workload_metric) overall.add(m);
  rows.emplace_back("AVG", overall.mean());
  return rows;
}

}  // namespace clusmt::harness
