#include "harness/spool.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/faultpoint.h"
#include "common/fsio.h"
#include "common/hash.h"
#include "common/wire.h"

namespace clusmt::harness {

namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kSpoolMagic = 0x50534c43;  // "CLSP" little-endian

std::uint64_t spec_checksum(std::string_view bytes) {
  Fnv1a h(0x53504f4f4cull);  // distinct seed from run-key/run-record passes
  h.add_bytes(bytes.data(), bytes.size());
  return h.digest();
}

// NOTE: keep write_config/read_config (and the trace pair below) in
// field-for-field lockstep with each other AND with hash_config/hash_trace
// in run_key.cc; bump kSpoolFormatVersion on any change. A field present in
// the hash but missing here would make a worker simulate a different
// machine than the key promises — which the worker's re-derived-key check
// turns into a clean per-cell error instead of a silently wrong record.
void write_config(ByteWriter& w, const core::SimConfig& c) {
  w.i64(c.num_threads);
  w.i64(c.num_clusters);

  w.i64(c.fetch_width);
  w.i64(c.rename_width);
  w.i64(c.commit_width);
  w.i64(c.decode_queue_capacity);
  w.i64(c.mispredict_penalty);
  w.u32(static_cast<std::uint32_t>(c.fetch_selection));
  w.i64(c.predictor.gshare_entries);
  w.i64(c.predictor.history_bits);
  w.i64(c.predictor.indirect_entries);
  w.u64(c.trace_cache.capacity_uops);
  w.i64(c.trace_cache.line_uops);
  w.i64(c.trace_cache.assoc);

  w.i64(c.rob_entries);
  w.i64(c.iq_entries);
  w.i64(c.int_regs);
  w.i64(c.fp_regs);
  w.i64(c.issue_width);
  w.i64(c.mob_entries);
  w.i64(c.num_links);
  w.i64(c.link_latency);
  w.i64(c.l1_write_ports);
  for (int i = 0; i < kMaxClusters; ++i) {
    w.i64(c.shape[i].issue_width);
    w.i64(c.shape[i].iq_entries);
    w.i64(c.shape[i].int_regs);
    w.i64(c.shape[i].fp_regs);
  }
  for (int i = 0; i < kMaxClusters; ++i) {
    for (int j = 0; j < kMaxClusters; ++j) w.i64(c.link_latency_cc[i][j]);
  }

  w.u64(c.memory.l1_size);
  w.i64(c.memory.l1_assoc);
  w.i64(c.memory.l1_latency);
  w.u64(c.memory.l2_size);
  w.i64(c.memory.l2_assoc);
  w.i64(c.memory.l2_latency);
  w.i64(c.memory.memory_latency);
  w.i64(c.memory.line_bytes);
  w.i64(c.memory.num_l1_l2_buses);
  w.i64(c.memory.bus_occupancy_cycles);
  w.i64(c.memory.dtlb_entries);
  w.i64(c.memory.dtlb_assoc);
  w.i64(c.memory.tlb_walk_latency);

  w.u32(static_cast<std::uint32_t>(c.steering));
  w.i64(c.steer_imbalance_threshold);

  w.u32(static_cast<std::uint32_t>(c.policy));
  w.f64(c.policy_config.partition_fraction);
  w.f64(c.policy_config.cspsp_guarantee_fraction);
  w.u64(c.policy_config.cdprf_interval);
  w.f64(c.policy_config.dcra_slow_share);
  w.u64(c.policy_config.hillclimb_epoch);
  w.f64(c.policy_config.hillclimb_delta);
  w.f64(c.policy_config.unready_gate_fraction);

  w.u64(c.watchdog_cycles);

  w.u32(static_cast<std::uint32_t>(c.skip_ahead));
  w.u32(static_cast<std::uint32_t>(c.rename_memo));
}

void read_config(ByteReader& r, core::SimConfig& c) {
  c.num_threads = static_cast<int>(r.i64());
  c.num_clusters = static_cast<int>(r.i64());

  c.fetch_width = static_cast<int>(r.i64());
  c.rename_width = static_cast<int>(r.i64());
  c.commit_width = static_cast<int>(r.i64());
  c.decode_queue_capacity = static_cast<int>(r.i64());
  c.mispredict_penalty = static_cast<int>(r.i64());
  c.fetch_selection = static_cast<frontend::FetchSelection>(r.u32());
  c.predictor.gshare_entries = static_cast<int>(r.i64());
  c.predictor.history_bits = static_cast<int>(r.i64());
  c.predictor.indirect_entries = static_cast<int>(r.i64());
  c.trace_cache.capacity_uops = r.u64();
  c.trace_cache.line_uops = static_cast<int>(r.i64());
  c.trace_cache.assoc = static_cast<int>(r.i64());

  c.rob_entries = static_cast<int>(r.i64());
  c.iq_entries = static_cast<int>(r.i64());
  c.int_regs = static_cast<int>(r.i64());
  c.fp_regs = static_cast<int>(r.i64());
  c.issue_width = static_cast<int>(r.i64());
  c.mob_entries = static_cast<int>(r.i64());
  c.num_links = static_cast<int>(r.i64());
  c.link_latency = static_cast<int>(r.i64());
  c.l1_write_ports = static_cast<int>(r.i64());
  for (int i = 0; i < kMaxClusters; ++i) {
    c.shape[i].issue_width = static_cast<int>(r.i64());
    c.shape[i].iq_entries = static_cast<int>(r.i64());
    c.shape[i].int_regs = static_cast<int>(r.i64());
    c.shape[i].fp_regs = static_cast<int>(r.i64());
  }
  for (int i = 0; i < kMaxClusters; ++i) {
    for (int j = 0; j < kMaxClusters; ++j) {
      c.link_latency_cc[i][j] = static_cast<int>(r.i64());
    }
  }

  c.memory.l1_size = r.u64();
  c.memory.l1_assoc = static_cast<int>(r.i64());
  c.memory.l1_latency = static_cast<int>(r.i64());
  c.memory.l2_size = r.u64();
  c.memory.l2_assoc = static_cast<int>(r.i64());
  c.memory.l2_latency = static_cast<int>(r.i64());
  c.memory.memory_latency = static_cast<int>(r.i64());
  c.memory.line_bytes = static_cast<int>(r.i64());
  c.memory.num_l1_l2_buses = static_cast<int>(r.i64());
  c.memory.bus_occupancy_cycles = static_cast<int>(r.i64());
  c.memory.dtlb_entries = static_cast<int>(r.i64());
  c.memory.dtlb_assoc = static_cast<int>(r.i64());
  c.memory.tlb_walk_latency = static_cast<int>(r.i64());

  c.steering = static_cast<steer::SteeringKind>(r.u32());
  c.steer_imbalance_threshold = static_cast<int>(r.i64());

  c.policy = static_cast<policy::PolicyKind>(r.u32());
  c.policy_config.partition_fraction = r.f64();
  c.policy_config.cspsp_guarantee_fraction = r.f64();
  c.policy_config.cdprf_interval = r.u64();
  c.policy_config.dcra_slow_share = r.f64();
  c.policy_config.hillclimb_epoch = r.u64();
  c.policy_config.hillclimb_delta = r.f64();
  c.policy_config.unready_gate_fraction = r.f64();

  c.watchdog_cycles = r.u64();

  c.skip_ahead = r.u32() != 0;
  c.rename_memo = r.u32() != 0;
}

void write_trace(ByteWriter& w, const trace::TraceSpec& t) {
  const trace::TraceProfile& p = t.profile;
  w.str(p.name);
  w.f64(p.frac_int_alu);
  w.f64(p.frac_int_mul);
  w.f64(p.frac_fp_add);
  w.f64(p.frac_fp_mul);
  w.f64(p.frac_simd);
  w.f64(p.frac_load);
  w.f64(p.frac_store);
  w.f64(p.avg_block_len);
  w.i64(p.num_blocks);
  w.f64(p.hard_branch_fraction);
  w.f64(p.indirect_fraction);
  w.f64(p.dep_geo_p);
  w.f64(p.two_src_prob);
  w.u64(p.footprint_bytes);
  w.f64(p.stream_fraction);
  w.f64(p.chase_fraction);
  w.u64(p.stream_stride);
  w.u64(p.hot_bytes);
  w.f64(p.old_src_p);
  w.f64(p.fp_load_fraction);
  w.u64(t.seed);
}

void read_trace(ByteReader& r, trace::TraceSpec& t) {
  trace::TraceProfile& p = t.profile;
  p.name = r.str();
  p.frac_int_alu = r.f64();
  p.frac_int_mul = r.f64();
  p.frac_fp_add = r.f64();
  p.frac_fp_mul = r.f64();
  p.frac_simd = r.f64();
  p.frac_load = r.f64();
  p.frac_store = r.f64();
  p.avg_block_len = r.f64();
  p.num_blocks = static_cast<int>(r.i64());
  p.hard_branch_fraction = r.f64();
  p.indirect_fraction = r.f64();
  p.dep_geo_p = r.f64();
  p.two_src_prob = r.f64();
  p.footprint_bytes = r.u64();
  p.stream_fraction = r.f64();
  p.chase_fraction = r.f64();
  p.stream_stride = r.u64();
  p.hot_bytes = r.u64();
  p.old_src_p = r.f64();
  p.fp_load_fraction = r.f64();
  t.seed = r.u64();
}

// ---- Spool entry names ---------------------------------------------------

std::string key_hex(const RunKey& key) {
  char name[36];
  std::snprintf(name, sizeof name, "%016llx%016llx",
                static_cast<unsigned long long>(key.hi),
                static_cast<unsigned long long>(key.lo));
  return name;
}

bool parse_hex(std::string_view hex, std::uint64_t& out) {
  out = 0;
  for (char c : hex) {
    std::uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = std::uint64_t(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = std::uint64_t(c - 'a') + 10;
    } else {
      return false;
    }
    out = out << 4 | digit;
  }
  return true;
}

/// "<032hex>.a<N>.cell" -> (key, N = prior failed attempts).
bool parse_cell_name(const std::string& name, RunKey& key, int& attempts) {
  constexpr std::string_view kSuffix = ".cell";
  if (name.size() < 32 + 2 + 1 + kSuffix.size()) return false;
  if (!parse_hex(std::string_view(name).substr(0, 16), key.hi)) return false;
  if (!parse_hex(std::string_view(name).substr(16, 16), key.lo)) return false;
  if (name[32] != '.' || name[33] != 'a') return false;
  const std::string_view rest(name.c_str() + 34, name.size() - 34);
  if (rest.size() <= kSuffix.size() ||
      rest.substr(rest.size() - kSuffix.size()) != kSuffix) {
    return false;
  }
  attempts = 0;
  for (char c : rest.substr(0, rest.size() - kSuffix.size())) {
    if (c < '0' || c > '9') return false;
    attempts = attempts * 10 + (c - '0');
  }
  return true;
}

std::string cell_name(const RunKey& key, int attempts) {
  return key_hex(key) + ".a" + std::to_string(attempts) + ".cell";
}

std::string read_whole_file(const fs::path& path, bool& ok) {
  std::ifstream in(path, std::ios::binary);
  ok = static_cast<bool>(in);
  if (!ok) return {};
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  ok = in.good() || in.eof();
  return bytes;
}

std::size_t count_files(const fs::path& dir, std::string_view extension) {
  std::size_t n = 0;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (it->is_regular_file(ec) && it->path().extension() == extension) ++n;
  }
  return n;
}

}  // namespace

std::string encode_cell_spec(const SpoolCell& cell) {
  ByteWriter w;
  w.u32(kSpoolMagic);
  w.u32(kSpoolFormatVersion);
  w.u64(cell.key.hi);
  w.u64(cell.key.lo);
  write_config(w, cell.config);
  w.str(cell.workload.category);
  w.str(cell.workload.type);
  w.str(cell.workload.name);
  w.u64(cell.workload.threads.size());
  for (const trace::TraceSpec& t : cell.workload.threads) write_trace(w, t);
  w.u64(cell.cycles);
  w.u64(cell.warmup);
  w.u64(spec_checksum(w.bytes()));
  return std::move(w).take();
}

std::optional<SpoolCell> decode_cell_spec(std::string_view record) {
  if (record.size() < sizeof(std::uint64_t)) return std::nullopt;
  const std::string_view body =
      record.substr(0, record.size() - sizeof(std::uint64_t));

  ByteReader r(record);
  if (r.u32() != kSpoolMagic) return std::nullopt;
  if (r.u32() != kSpoolFormatVersion) return std::nullopt;

  SpoolCell cell;
  cell.key.hi = r.u64();
  cell.key.lo = r.u64();
  read_config(r, cell.config);
  cell.workload.category = r.str();
  cell.workload.type = r.str();
  cell.workload.name = r.str();
  const std::uint64_t threads = r.u64();
  if (threads > 64) return std::nullopt;  // sanity bound before allocating
  cell.workload.threads.resize(static_cast<std::size_t>(threads));
  for (trace::TraceSpec& t : cell.workload.threads) read_trace(r, t);
  cell.cycles = r.u64();
  cell.warmup = r.u64();
  const std::uint64_t stored_sum = r.u64();
  if (!r.exhausted() || stored_sum != spec_checksum(body)) {
    return std::nullopt;
  }
  return cell;
}

Spool::Spool(std::string dir, int max_attempts)
    : dir_(std::move(dir)), max_attempts_(max_attempts < 1 ? 1 : max_attempts) {}

bool Spool::init_dirs() const {
  std::error_code ec;
  for (const char* sub : {"todo", "claimed", "done", "failed"}) {
    fs::create_directories(fs::path(dir_) / sub, ec);
    if (ec) return false;
  }
  return true;
}

bool Spool::push(const SpoolCell& cell) const {
  return write_file_atomic(
      (fs::path(dir_) / "todo" / cell_name(cell.key, 0)).string(),
      encode_cell_spec(cell));
}

namespace {

void append_error(const fs::path& failed_dir, const RunKey& key, int attempt,
                  const std::string& message) {
  std::error_code ec;
  fs::create_directories(failed_dir, ec);
  std::ofstream out(failed_dir / (key_hex(key) + ".err"), std::ios::app);
  out << "attempt " << attempt << ": " << message << "\n";
}

}  // namespace

std::optional<Spool::Claim> Spool::claim(const std::string& worker_id) const {
  std::error_code ec;
  const fs::path todo = fs::path(dir_) / "todo";
  const fs::path mine = fs::path(dir_) / "claimed" / worker_id;
  fs::create_directories(mine, ec);
  for (fs::directory_iterator it(todo, ec), end; !ec && it != end;
       it.increment(ec)) {
    const std::string name = it->path().filename().string();
    RunKey key;
    int attempts = 0;
    if (!parse_cell_name(name, key, attempts)) continue;
    const fs::path held = mine / name;
    std::error_code rn;
    fs::rename(it->path(), held, rn);
    if (rn) continue;  // another claimant won the rename race
    // rename preserves mtime; start the lease clock now, not at push time.
    std::error_code touch_ec;
    fs::last_write_time(held, fs::file_time_type::clock::now(), touch_ec);
    bool ok = false;
    const std::string bytes = read_whole_file(held, ok);
    std::optional<SpoolCell> cell =
        ok ? decode_cell_spec(bytes) : std::nullopt;
    if (!cell || !(cell->key == key)) {
      // Corrupt or foreign spec: quarantine so it cannot wedge the queue.
      append_error(fs::path(dir_) / "failed", key, attempts + 1,
                   "unreadable or mismatched cell spec");
      std::error_code q;
      fs::rename(held, fs::path(dir_) / "failed" / (key_hex(key) + ".cell"),
                 q);
      continue;
    }
    // Fault point `spool.claim`: crash → the claimant dies holding a
    // fresh lease (the classic crash-after-claim-rename window — the cell
    // sits in claimed/ until reclaim_stale steals it); error → the
    // claimant goes silent after claiming (same orphaned-lease outcome,
    // without killing the process).
    if (faultpoint::inject_error("spool.claim")) return std::nullopt;
    return Claim{*std::move(cell), held.string(), attempts + 1};
  }
  return std::nullopt;
}

bool Spool::refresh_lease(const Claim& claim) {
  std::error_code ec;
  fs::last_write_time(claim.path, fs::file_time_type::clock::now(), ec);
  return !ec;
}

bool Spool::ack(const Claim& claim) const {
  // Fault point `spool.ack`: crash → the worker dies after persisting the
  // result but before acking (the lease expires and the cell is re-run —
  // which the next worker satisfies straight from the store, so the
  // duplicate is a disk hit, not a recompute); error → the ack is lost the
  // same way without killing the process.
  if (faultpoint::inject_error("spool.ack")) return false;
  std::error_code ec;
  fs::rename(claim.path,
             fs::path(dir_) / "done" / (key_hex(claim.cell.key) + ".cell"),
             ec);
  return !ec;
}

bool Spool::release(const Claim& claim) const {
  std::error_code ec;
  fs::rename(
      claim.path,
      fs::path(dir_) / "todo" / cell_name(claim.cell.key, claim.attempt - 1),
      ec);
  return !ec;
}

void Spool::fail(const Claim& claim, const std::string& message) const {
  append_error(fs::path(dir_) / "failed", claim.cell.key, claim.attempt,
               message);
  std::error_code ec;  // rename failure = lease stolen meanwhile: benign
  if (claim.attempt >= max_attempts_) {
    fs::rename(claim.path,
               fs::path(dir_) / "failed" / (key_hex(claim.cell.key) + ".cell"),
               ec);
  } else {
    fs::rename(claim.path,
               fs::path(dir_) / "todo" / cell_name(claim.cell.key, claim.attempt),
               ec);
  }
}

std::size_t Spool::reclaim_stale(std::chrono::milliseconds lease) const {
  const auto now = fs::file_time_type::clock::now();
  const auto steady_now = std::chrono::steady_clock::now();
  std::size_t moved = 0;
  std::error_code ec;
  const fs::path claimed = fs::path(dir_) / "claimed";
  // Two independent staleness clauses (header comment): the absolute
  // mtime-age test catches dead workers immediately when clocks agree; the
  // observation test — "this very mtime has sat unchanged for a full lease
  // of OUR steady clock" — catches them even when the claimant's host
  // stamped an mtime from the future. Paths seen this scan; anything else
  // in observed_ is a finished/stolen claim whose state can be dropped.
  std::lock_guard observed_lock(observed_mutex_);
  std::map<std::string, LeaseObservation> still_present;
  for (fs::directory_iterator worker(claimed, ec), wend; !ec && worker != wend;
       worker.increment(ec)) {
    if (!worker->is_directory(ec)) continue;
    std::error_code fec;
    for (fs::directory_iterator it(worker->path(), fec), end;
         !fec && it != end; it.increment(fec)) {
      const std::string name = it->path().filename().string();
      RunKey key;
      int attempts = 0;
      if (!parse_cell_name(name, key, attempts)) continue;
      std::error_code mt;
      const auto mtime = fs::last_write_time(it->path(), mt);
      if (mt) continue;
      const std::string path = it->path().string();
      auto [obs, fresh] = observed_.try_emplace(
          path, LeaseObservation{mtime, steady_now});
      if (!fresh && obs->second.mtime != mtime) {
        obs->second = LeaseObservation{mtime, steady_now};  // heartbeat seen
      }
      const bool mtime_stale = now - mtime >= lease;
      const bool observed_stale =
          steady_now - obs->second.first_seen >= lease;
      still_present.emplace(path, obs->second);
      if (!mtime_stale && !observed_stale) continue;
      const int attempt = attempts + 1;  // the execution that went silent
      std::error_code rn;
      if (attempt >= max_attempts_) {
        append_error(fs::path(dir_) / "failed", key, attempt,
                     "lease expired (worker dead or stuck); "
                     "attempts exhausted");
        fs::rename(it->path(),
                   fs::path(dir_) / "failed" / (key_hex(key) + ".cell"), rn);
      } else {
        fs::rename(it->path(), fs::path(dir_) / "todo" / cell_name(key, attempt),
                   rn);
      }
      if (!rn) {
        ++moved;
        still_present.erase(path);
      }
    }
  }
  observed_ = std::move(still_present);
  return moved;
}

bool Spool::terminally_failed(const RunKey& key) const {
  std::error_code ec;
  return fs::exists(fs::path(dir_) / "failed" / (key_hex(key) + ".cell"), ec);
}

std::string Spool::failure_message(const RunKey& key) const {
  bool ok = false;
  std::string text = read_whole_file(
      fs::path(dir_) / "failed" / (key_hex(key) + ".err"), ok);
  return ok ? text : std::string();
}

SpoolCounts Spool::counts() const {
  SpoolCounts c;
  c.todo = count_files(fs::path(dir_) / "todo", ".cell");
  c.done = count_files(fs::path(dir_) / "done", ".cell");
  c.failed = count_files(fs::path(dir_) / "failed", ".cell");
  std::error_code ec;
  for (fs::directory_iterator it(fs::path(dir_) / "claimed", ec), end;
       !ec && it != end; it.increment(ec)) {
    if (it->is_directory(ec)) c.claimed += count_files(it->path(), ".cell");
  }
  return c;
}

bool Spool::drained() const {
  const SpoolCounts c = counts();
  return c.todo == 0 && c.claimed == 0;
}

SpoolGcResult gc_spool(const std::string& dir, const SpoolGcOptions& options) {
  SpoolGcResult result;
  std::error_code ec;
  if (!fs::is_directory(dir, ec) || ec) return result;
  const auto now = fs::file_time_type::clock::now();
  const Spool spool(dir);

  // Orphaned leases: stale claims requeue exactly as reclaim_stale does
  // (terminal past the attempt cap), so a crashed fleet's work survives.
  const fs::path claimed = fs::path(dir) / "claimed";
  for (fs::directory_iterator worker(claimed, ec), wend; !ec && worker != wend;
       worker.increment(ec)) {
    if (!worker->is_directory(ec)) continue;
    std::error_code fec;
    for (fs::directory_iterator it(worker->path(), fec), end;
         !fec && it != end; it.increment(fec)) {
      if (it->path().extension() != ".cell") continue;
      ++result.scanned;
      std::error_code mt;
      const auto mtime = fs::last_write_time(it->path(), mt);
      if (mt || now - mtime < options.lease) continue;
      ++result.reclaimed;
    }
  }
  if (!options.dry_run && result.reclaimed > 0) {
    result.reclaimed = spool.reclaim_stale(
        std::chrono::duration_cast<std::chrono::milliseconds>(options.lease));
  }

  // Expired done/ acks and failed/ diagnostics.
  const auto expire_in = [&](const char* sub, std::uint64_t& deleted) {
    std::error_code dec;
    for (fs::directory_iterator it(fs::path(dir) / sub, dec), end;
         !dec && it != end; it.increment(dec)) {
      const auto ext = it->path().extension();
      if (ext != ".cell" && ext != ".err") continue;
      ++result.scanned;
      std::error_code mt;
      const auto mtime = fs::last_write_time(it->path(), mt);
      if (mt || now - mtime < options.done_ttl) continue;
      std::error_code rm;
      if (!options.dry_run && (!fs::remove(it->path(), rm) || rm)) continue;
      ++deleted;
    }
  };
  expire_in("done", result.deleted_done);
  expire_in("failed", result.deleted_failed);

  // Emptied per-worker claim dirs.
  if (!options.dry_run) {
    std::error_code dec;
    for (fs::directory_iterator it(claimed, dec), end; !dec && it != end;
         it.increment(dec)) {
      if (!it->is_directory(dec)) continue;
      std::error_code rm;
      if (fs::is_empty(it->path(), rm) && !rm &&
          fs::remove(it->path(), rm) && !rm) {
        ++result.removed_dirs;
      }
    }
  }
  return result;
}

}  // namespace clusmt::harness
