// Machine-configuration presets matching the paper's experimental setups.
#pragma once

#include "core/config.h"

namespace clusmt::harness {

/// Table 1 baseline with bounded everything (32-entry IQs, 64 registers of
/// each class per cluster, 128-entry per-thread ROBs). This is the
/// configuration behind the register-file study (Figures 6, 9, 10) and the
/// headline 17.6% result.
[[nodiscard]] inline core::SimConfig paper_baseline() {
  core::SimConfig config;
  config.iq_entries = 32;
  config.int_regs = 64;
  config.fp_regs = 64;
  config.rob_entries = 128;
  return config;
}

/// Figure 2/3/4/5 methodology: the issue-queue study isolates IQ effects by
/// leaving the register files and ROB unbounded.
[[nodiscard]] inline core::SimConfig iq_study_config(int iq_entries) {
  core::SimConfig config;
  config.iq_entries = iq_entries;
  config.int_regs = 0;  // unbounded
  config.fp_regs = 0;   // unbounded
  config.rob_entries = 0;  // unbounded
  return config;
}

/// Figure 6/9 methodology: 32-entry IQs, bounded register files of
/// `regs_per_cluster` of each class, 128-entry ROBs.
[[nodiscard]] inline core::SimConfig rf_study_config(int regs_per_cluster) {
  core::SimConfig config;
  config.iq_entries = 32;
  config.int_regs = regs_per_cluster;
  config.fp_regs = regs_per_cluster;
  config.rob_entries = 128;
  return config;
}

/// Four-context extension runs (the ext_smt4 bench). Four threads x 32
/// FP/SIMD architectural registers pin 128 physical registers as committed
/// state, so SMT4 needs the 128-registers-per-cluster end of Table 1's
/// 64-128 range; 64 would leave rename no headroom (the Simulator
/// constructor rejects it).
[[nodiscard]] inline core::SimConfig smt4_baseline() {
  core::SimConfig config;
  config.num_threads = 4;
  config.iq_entries = 32;
  config.int_regs = 128;
  config.fp_regs = 128;
  config.rob_entries = 128;
  return config;
}

}  // namespace clusmt::harness
