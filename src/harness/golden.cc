#include "harness/golden.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace clusmt::harness {

namespace {

/// Recursive-descent parser for the subset of JSON the tables use: an
/// array of flat objects whose values are strings, numbers, or null.
/// Nested containers are rejected — a golden file is a table, not a tree.
class TableParser {
 public:
  explicit TableParser(std::string_view text) : text_(text) {}

  GoldenTable parse() {
    GoldenTable table;
    skip_ws();
    expect('[');
    skip_ws();
    if (!eat(']')) {
      do {
        table.rows.push_back(parse_row());
        skip_ws();
      } while (eat(','));
      expect(']');
    }
    skip_ws();
    if (pos_ != text_.size()) fail("trailing data after table");
    return table;
  }

 private:
  GoldenRow parse_row() {
    GoldenRow row;
    skip_ws();
    expect('{');
    skip_ws();
    if (!eat('}')) {
      do {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        skip_ws();
        row.emplace_back(std::move(key), parse_value());
        skip_ws();
      } while (eat(','));
      expect('}');
    }
    return row;
  }

  GoldenValue parse_value() {
    if (pos_ >= text_.size()) fail("unexpected end of document");
    const char c = text_[pos_];
    if (c == '"') return GoldenValue::of_string(parse_string());
    if (c == 'n') {
      expect_word("null");
      return GoldenValue::null();
    }
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail("expected a string, number, or null value");
  }

  GoldenValue parse_number() {
    const std::size_t start = pos_;
    eat('-');
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || token.empty()) {
      pos_ = start;
      fail("malformed number");
    }
    return GoldenValue::of_number(v);
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          // Tables only \u-escape control bytes (< 0x20); decode the
          // low byte and reject anything beyond Latin-1.
          if (text_.size() - pos_ < 4) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape digit");
            }
          }
          if (code > 0xFF) fail("unsupported \\u escape above 0xFF");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!eat(c)) {
      char msg[48];
      std::snprintf(msg, sizeof msg, "expected '%c'", c);
      fail(msg);
    }
  }

  void expect_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) fail("malformed literal");
    pos_ += word.size();
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("golden JSON parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::string value_text(const GoldenValue& v) {
  switch (v.kind) {
    case GoldenValue::Kind::kNumber: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", v.number);
      return buf;
    }
    case GoldenValue::Kind::kString: return "\"" + v.text + "\"";
    case GoldenValue::Kind::kNull: return "null";
  }
  return "?";
}

std::string row_key_of(const GoldenRow& row) {
  if (row.empty()) return "";
  return value_text(row.front().second);
}

}  // namespace

GoldenTable parse_json_table(std::string_view json) {
  return TableParser(json).parse();
}

GoldenDiffResult diff_golden_tables(const GoldenTable& golden,
                                    const GoldenTable& fresh,
                                    const GoldenTolerance& tol) {
  GoldenDiffResult out;
  auto mismatch = [&](std::size_t r, const std::string& metric,
                      const std::string& g, const std::string& f,
                      double rel) {
    const std::string key =
        r < golden.rows.size() ? row_key_of(golden.rows[r]) : "";
    out.mismatches.push_back({r, key, metric, g, f, rel});
  };

  if (golden.rows.size() != fresh.rows.size()) {
    mismatch(0, "<row count>", std::to_string(golden.rows.size()),
             std::to_string(fresh.rows.size()), 0.0);
    return out;  // index-aligned comparison is meaningless past this point
  }

  for (std::size_t r = 0; r < golden.rows.size(); ++r) {
    const GoldenRow& grow = golden.rows[r];
    const GoldenRow& frow = fresh.rows[r];
    if (grow.size() != frow.size()) {
      mismatch(r, "<column count>", std::to_string(grow.size()),
               std::to_string(frow.size()), 0.0);
      continue;
    }
    for (std::size_t c = 0; c < grow.size(); ++c) {
      const auto& [gkey, gval] = grow[c];
      const auto& [fkey, fval] = frow[c];
      if (gkey != fkey) {
        mismatch(r, gkey, "metric '" + gkey + "'", "metric '" + fkey + "'",
                 0.0);
        continue;
      }
      ++out.metrics_compared;
      if (gval.kind != fval.kind) {
        mismatch(r, gkey, value_text(gval), value_text(fval), 0.0);
        continue;
      }
      switch (gval.kind) {
        case GoldenValue::Kind::kNumber: {
          const double g = gval.number;
          const double f = fval.number;
          const double scale = std::max(std::fabs(g), std::fabs(f));
          const double abs_err = std::fabs(g - f);
          const double rel = scale == 0.0 ? 0.0 : abs_err / scale;
          if (abs_err > tol.atol + tol.rtol_for(gkey) * scale) {
            mismatch(r, gkey, value_text(gval), value_text(fval), rel);
          }
          break;
        }
        case GoldenValue::Kind::kString:
          if (gval.text != fval.text) {
            mismatch(r, gkey, value_text(gval), value_text(fval), 0.0);
          }
          break;
        case GoldenValue::Kind::kNull: break;  // null == null
      }
    }
  }
  return out;
}

std::string GoldenDiffResult::report() const {
  std::ostringstream out;
  if (pass()) {
    out << "OK: " << metrics_compared << " metrics within tolerance\n";
    return out.str();
  }
  for (const GoldenMismatch& m : mismatches) {
    out << "FAIL row " << m.row;
    if (!m.row_key.empty()) out << " (" << m.row_key << ")";
    out << " metric '" << m.metric << "': golden " << m.golden << ", fresh "
        << m.fresh;
    if (m.rel_error > 0.0) {
      char rel[32];
      std::snprintf(rel, sizeof rel, "%.3g", m.rel_error);
      out << " (rel err " << rel << ")";
    }
    out << "\n";
  }
  out << mismatches.size() << " metric(s) out of tolerance ("
      << metrics_compared << " compared)\n";
  return out.str();
}

}  // namespace clusmt::harness
