#include "harness/run_key.h"

namespace clusmt::harness {

// NOTE: these functions must cover every field that changes simulation
// behaviour. When adding a knob to core::SimConfig (or the nested
// frontend/memory/policy config structs) or trace::TraceProfile, extend the
// matching hash_* function here — a missing field silently merges cache
// entries that should stay distinct.

void hash_config(Fnv1a& h, const core::SimConfig& c) {
  h.add(c.num_threads);
  h.add(c.num_clusters);

  h.add(c.fetch_width);
  h.add(c.rename_width);
  h.add(c.commit_width);
  h.add(c.decode_queue_capacity);
  h.add(c.mispredict_penalty);
  h.add_enum(c.fetch_selection);
  h.add(c.predictor.gshare_entries);
  h.add(c.predictor.history_bits);
  h.add(c.predictor.indirect_entries);
  h.add(c.trace_cache.capacity_uops);
  h.add(c.trace_cache.line_uops);
  h.add(c.trace_cache.assoc);

  h.add(c.rob_entries);
  h.add(c.iq_entries);
  h.add(c.int_regs);
  h.add(c.fp_regs);
  h.add(c.issue_width);
  h.add(c.mob_entries);
  h.add(c.num_links);
  h.add(c.link_latency);
  h.add(c.l1_write_ports);
  for (int i = 0; i < kMaxClusters; ++i) {
    h.add(c.shape[i].issue_width);
    h.add(c.shape[i].iq_entries);
    h.add(c.shape[i].int_regs);
    h.add(c.shape[i].fp_regs);
  }
  for (int i = 0; i < kMaxClusters; ++i) {
    for (int j = 0; j < kMaxClusters; ++j) h.add(c.link_latency_cc[i][j]);
  }

  h.add(c.memory.l1_size);
  h.add(c.memory.l1_assoc);
  h.add(c.memory.l1_latency);
  h.add(c.memory.l2_size);
  h.add(c.memory.l2_assoc);
  h.add(c.memory.l2_latency);
  h.add(c.memory.memory_latency);
  h.add(c.memory.line_bytes);
  h.add(c.memory.num_l1_l2_buses);
  h.add(c.memory.bus_occupancy_cycles);
  h.add(c.memory.dtlb_entries);
  h.add(c.memory.dtlb_assoc);
  h.add(c.memory.tlb_walk_latency);

  h.add_enum(c.steering);
  h.add(c.steer_imbalance_threshold);

  h.add_enum(c.policy);
  h.add(c.policy_config.partition_fraction);
  h.add(c.policy_config.cspsp_guarantee_fraction);
  h.add(c.policy_config.cdprf_interval);
  h.add(c.policy_config.dcra_slow_share);
  h.add(c.policy_config.hillclimb_epoch);
  h.add(c.policy_config.hillclimb_delta);
  h.add(c.policy_config.unready_gate_fraction);

  h.add(c.watchdog_cycles);

  // Behavior-preserving fast paths still key the cache: a cached result
  // produced with a differential knob off must not satisfy a lookup with
  // it on (the whole point of the oracle runs is an independent rerun).
  h.add(static_cast<int>(c.skip_ahead));
  h.add(static_cast<int>(c.rename_memo));
}

void hash_trace(Fnv1a& h, const trace::TraceSpec& spec) {
  const trace::TraceProfile& p = spec.profile;
  // The name is display metadata, not content: excluded on purpose so two
  // identical traces with different labels share baseline runs — and two
  // *different* traces sharing a label never do.
  h.add(p.frac_int_alu);
  h.add(p.frac_int_mul);
  h.add(p.frac_fp_add);
  h.add(p.frac_fp_mul);
  h.add(p.frac_simd);
  h.add(p.frac_load);
  h.add(p.frac_store);
  h.add(p.avg_block_len);
  h.add(p.num_blocks);
  h.add(p.hard_branch_fraction);
  h.add(p.indirect_fraction);
  h.add(p.dep_geo_p);
  h.add(p.two_src_prob);
  h.add(p.footprint_bytes);
  h.add(p.stream_fraction);
  h.add(p.chase_fraction);
  h.add(p.stream_stride);
  h.add(p.hot_bytes);
  h.add(p.old_src_p);
  h.add(p.fp_load_fraction);
  h.add(spec.seed);
}

void hash_workload(Fnv1a& h, const trace::WorkloadSpec& spec) {
  h.add(spec.threads.size());
  for (const auto& t : spec.threads) hash_trace(h, t);
}

namespace {

template <typename Fn>
RunKey two_pass_key(const Fn& feed) {
  RunKey key;
  Fnv1a a(0);
  feed(a);
  key.hi = a.digest();
  Fnv1a b(1);
  feed(b);
  key.lo = b.digest();
  return key;
}

}  // namespace

RunKey trace_content_key(const trace::TraceSpec& spec) {
  return two_pass_key([&](Fnv1a& h) { hash_trace(h, spec); });
}

RunKey run_key(const core::SimConfig& config,
               const trace::WorkloadSpec& workload, Cycle cycles,
               Cycle warmup) {
  return two_pass_key([&](Fnv1a& h) {
    hash_config(h, config);
    hash_workload(h, workload);
    h.add(cycles);
    h.add(warmup);
  });
}

core::SimConfig baseline_config(const core::SimConfig& config) {
  core::SimConfig single = config;
  single.num_threads = 1;
  single.policy = policy::PolicyKind::kIcount;
  single.policy_config = policy::PolicyConfig{};
  return single;
}

}  // namespace clusmt::harness
