// Declarative sweep engine for grid-shaped experiments.
//
// Every figure/table of the paper is a grid: scheme × machine knob ×
// workload suite. A SweepSpec names the grid once — a base SimConfig,
// axes of labelled config mutators (or explicit points), a workload suite
// and a cycle budget — and run_sweep() expands it into a flat list of
// (point, workload) cells scheduled as ONE global queue on a ThreadPool.
// There is no per-grid-point barrier: a slow cell of one point overlaps
// with cells of every other point, and fairness baselines interleave with
// SMT cells instead of forming a separate phase.
//
// Cells are memoised in the process-wide RunCache (harness/run_cache.h) by
// content hash, so repeated cells — a baseline point shared by two sweeps,
// a knob sweep that revisits the default value, fairness baselines common
// to every grid point — are simulated exactly once per process.
//
// Determinism: a cell's result depends only on its (config, workload,
// cycles, warmup) spec — the simulator draws all randomness from the
// workload's own seeds — so the same SweepSpec yields bit-identical tables
// at any `jobs` count and any scheduling order.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/config.h"
#include "harness/run_cache.h"
#include "harness/runner.h"
#include "harness/shard.h"
#include "trace/workload.h"

namespace clusmt::harness {

/// One labelled value of an axis: a named mutation of the base config,
/// e.g. {"CSSP", [](auto& c) { c.policy = PolicyKind::kCssp; }}.
struct AxisValue {
  std::string label;
  std::function<void(core::SimConfig&)> apply;
};

/// A named axis of the grid, e.g. "scheme" or "iq entries".
struct Axis {
  std::string name;
  std::vector<AxisValue> values;
};

/// One expanded grid point: a fully specified machine with a display label.
struct ConfigPoint {
  std::string label;
  core::SimConfig config;
};

struct SweepSpec {
  /// Base machine the axis mutators are applied to.
  core::SimConfig base;

  /// Cross-product axes (first axis varies slowest). Mutators are applied
  /// in axis order to a copy of `base`.
  std::vector<Axis> axes;

  /// Explicit extra points, appended after the axis product (use alone for
  /// irregular grids whose labels don't compose from per-axis parts).
  std::vector<ConfigPoint> points;

  /// Composes a point label from per-axis value labels. Default: non-empty
  /// labels joined with '@' in axis order.
  std::function<std::string(const std::vector<std::string>&)> label_fn;

  /// The workload suite every point runs (cell list = points × suite).
  std::vector<trace::WorkloadSpec> suite;

  Cycle cycles = 0;
  Cycle warmup = 0;

  /// Model fast-path oracle switches (SimConfig::{skip_ahead,
  /// rename_memo}), stamped onto every expanded point — base-derived and
  /// explicit alike — *before* axis mutators run, so the bench-wide
  /// --no-skip-ahead/--no-rename-memo flags flip the whole grid while an
  /// axis can still override per point. Results are bit-identical either
  /// way; the flags exist to rerun a grid against the per-cycle oracle.
  bool skip_ahead = true;
  bool rename_memo = true;

  /// Also run single-thread baselines (shared across points through the
  /// cache) and fill RunResult::fairness for every cell.
  bool with_fairness = false;

  /// Host worker threads; 0 = all cores (or $CLUSMT_JOBS when set — the
  /// coordinator exports it so spawned workers never oversubscribe).
  std::size_t jobs = 0;

  /// Distributed execution (harness/shard.h): with shard.workers > 0 the
  /// cache-miss cells are farmed to sweep_worker processes through a spool
  /// directory before the (then fully warm) in-process assembly below —
  /// tables are bit-identical for any worker count.
  ShardSpec shard;

  /// Print per-point completion and a cache summary to stderr.
  bool progress = true;

  /// Cache to memoise cells in; nullptr = the process-wide instance.
  RunCache* cache = nullptr;

  /// Expands axes × base into labelled points (explicit `points` appended).
  [[nodiscard]] std::vector<ConfigPoint> expand_points() const;
};

struct SweepResult {
  std::vector<ConfigPoint> points;
  std::vector<trace::WorkloadSpec> suite;
  Cycle cycles = 0;
  Cycle warmup = 0;

  /// cells[p][w]: point p of `points`, workload w of `suite`.
  std::vector<std::vector<RunResult>> cells;

  /// Cache traffic attributable to this sweep (delta over its run):
  /// `cache_misses` cells were actually simulated, `cache_hits` served from
  /// memory, `cache_disk_hits` loaded from a persisted record (--cache-dir).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_disk_hits = 0;

  /// Trace-tape traffic (delta, same protocol as the cache counters):
  /// `tape_hits` thread attachments replayed an existing recording,
  /// `tape_recordings` created one, `tape_live` bypassed tapes (--no-tape).
  std::uint64_t tape_hits = 0;
  std::uint64_t tape_recordings = 0;
  std::uint64_t tape_live = 0;

  /// Quiescent-cycle skip-ahead activity of the cells this process
  /// actually simulated (delta protocol again; cached cells contribute
  /// nothing). `cycles_skipped` of the simulated cycles were replicated in
  /// closed form across `skip_episodes` jumps.
  std::uint64_t cycles_skipped = 0;
  std::uint64_t skip_episodes = 0;

  /// Store records found on disk during this sweep but rejected by
  /// validation (truncation, bit rot, stale format) — each silently cost a
  /// recompute; the progress line surfaces the count so corruption is
  /// visible instead of just slow.
  std::uint64_t corrupt_records = 0;

  /// Index of the point labelled `label`; throws std::out_of_range.
  [[nodiscard]] std::size_t point_index(const std::string& label) const;

  /// Per-workload metric vector of one point, suite order.
  [[nodiscard]] std::vector<double> metric(
      std::size_t point,
      const std::function<double(const RunResult&)>& fn) const;
  [[nodiscard]] std::vector<double> throughput(std::size_t point) const;
  [[nodiscard]] std::vector<double> fairness(std::size_t point) const;
};

/// Runs the whole grid as one flat cell queue. Exceptions from any cell
/// (e.g. thread-count mismatch) propagate after all cells drain.
[[nodiscard]] SweepResult run_sweep(const SweepSpec& spec);

// ---- Result shaping ------------------------------------------------------

/// Element-wise series[i] / baseline[i]; 0 where the baseline is 0. The
/// normalised ("speedup vs X") form every figure of the paper uses.
[[nodiscard]] std::vector<double> ratio_to_baseline(
    const std::vector<double>& series, const std::vector<double>& baseline);

/// A rendered results table with stable column order, emittable as aligned
/// text, CSV, or JSON (array of objects keyed by header).
struct TableDoc {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  void add_row(std::vector<std::string> cells) {
    rows.push_back(std::move(cells));
  }

  [[nodiscard]] std::string render_text() const;
  [[nodiscard]] std::string to_csv() const;
  [[nodiscard]] std::string to_json() const;
  bool write_csv(const std::string& path) const;
  bool write_json(const std::string& path) const;
};

/// Per-category aggregation table: one row per category of the paper's
/// display order (plus AVG), one column per (label, per-workload metric)
/// series. This is the layout of Figures 2-4, 6, 10 and the ablations.
[[nodiscard]] TableDoc category_table(
    const std::vector<trace::WorkloadSpec>& suite,
    const std::vector<std::pair<std::string, std::vector<double>>>& series,
    int precision = 3);

}  // namespace clusmt::harness
