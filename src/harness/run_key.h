// Content-addressed identity of a simulation run. A RunKey is a 128-bit
// hash of every input that determines a run's outcome — the full SimConfig
// (including nested predictor/memory/policy knobs), the workload's trace
// profiles and generator seeds, and the cycle budget — so the RunCache can
// equate runs across Runner/SweepSpec instances and never across runs that
// differ in any behavioural knob. In particular two traces that merely
// share a *name* hash differently when their content differs (the latent
// collision the old name-keyed baseline cache had).
#pragma once

#include <cstdint>

#include "common/hash.h"
#include "common/types.h"
#include "core/config.h"
#include "trace/workload.h"

namespace clusmt::harness {

struct RunKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend constexpr bool operator==(const RunKey&, const RunKey&) = default;
  friend constexpr bool operator<(const RunKey& a, const RunKey& b) noexcept {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }
};

/// Feed every behavioural field of `config` into `h`. Kept in sync with
/// core::SimConfig (and its nested config structs) by hand; run_key.cc
/// carries the authoritative field list.
void hash_config(Fnv1a& h, const core::SimConfig& config);

/// Feed the full trace content (profile knobs + generator seed) into `h`.
void hash_trace(Fnv1a& h, const trace::TraceSpec& spec);

/// Feed the workload's threads (content only — the display name/category
/// do not affect simulation) into `h`.
void hash_workload(Fnv1a& h, const trace::WorkloadSpec& spec);

/// 128-bit content key of one trace spec (profile + seed), independent of
/// any machine configuration. Used by tests and the Runner baseline cache.
[[nodiscard]] RunKey trace_content_key(const trace::TraceSpec& spec);

/// Key of a full simulation cell: machine × workload × cycle budget.
[[nodiscard]] RunKey run_key(const core::SimConfig& config,
                             const trace::WorkloadSpec& workload,
                             Cycle cycles, Cycle warmup);

/// The machine a single-thread fairness baseline runs on: `config` with one
/// thread and the scheme-independent Icount front end. Policy knobs are
/// reset to defaults — Icount reads none of them — so baselines are shared
/// across grid points that differ only in scheme parameters.
[[nodiscard]] core::SimConfig baseline_config(const core::SimConfig& config);

}  // namespace clusmt::harness
