#include "harness/run_cache.h"

#include <cstdio>

namespace clusmt::harness {

RunCache& RunCache::instance() {
  static RunCache cache;
  return cache;
}

RunResult RunCache::get_or_run(const RunKey& key,
                               const std::function<RunResult()>& compute) {
  std::promise<RunResult> promise;
  std::shared_future<RunResult> future;
  std::shared_ptr<const RunStore> store;
  bool owner = false;
  {
    std::lock_guard lock(mutex_);
    auto [it, inserted] = entries_.try_emplace(key);
    if (inserted) {
      it->second = promise.get_future().share();
      owner = true;
      store = store_;
    }
    future = it->second;
  }
  if (!owner) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return future.get();
  }
  // Disk tier before compute: a record persisted by an earlier process (or
  // a concurrent one — records are atomic, so a partial write is never
  // visible) satisfies the cell without simulating.
  if (store != nullptr) {
    if (std::optional<RunResult> loaded = store->load(key)) {
      disk_hits_.fetch_add(1, std::memory_order_relaxed);
      promise.set_value(*std::move(loaded));
      return future.get();
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  try {
    RunResult result = compute();
    // Best-effort spill: a full disk or read-only cache dir degrades to
    // process-local caching, it does not fail the run. After enough
    // consecutive failures the disk tier is demoted to read-only so a full
    // disk costs one warning and lost persistence, not a syscall per cell.
    if (store != nullptr &&
        !store_degraded_.load(std::memory_order_relaxed)) {
      if (store->save(key, result)) {
        consecutive_save_failures_.store(0, std::memory_order_relaxed);
      } else {
        save_failures_.fetch_add(1, std::memory_order_relaxed);
        if (!warned_save_failure_.exchange(true,
                                           std::memory_order_relaxed)) {
          std::fprintf(stderr,
                       "clusmt: warning: run-store spill to '%s' failed "
                       "(disk full or unwritable); results stay correct, "
                       "only persistence is lost\n",
                       store->dir().c_str());
        }
        const int consecutive =
            consecutive_save_failures_.fetch_add(
                1, std::memory_order_relaxed) + 1;
        if (consecutive >= kDegradeAfterSaveFailures &&
            !store_degraded_.exchange(true, std::memory_order_relaxed)) {
          std::fprintf(stderr,
                       "clusmt: warning: run store '%s' degraded to "
                       "memory-only after %d consecutive failed writes; "
                       "loads continue, new cells are not persisted\n",
                       store->dir().c_str(), consecutive);
        }
      }
    }
    promise.set_value(std::move(result));
  } catch (...) {
    // Cache the failure too: every requester of an invalid cell sees the
    // same exception instead of half of them re-running it.
    promise.set_exception(std::current_exception());
  }
  return future.get();
}

bool RunCache::contains(const RunKey& key) const {
  std::lock_guard lock(mutex_);
  return entries_.contains(key);
}

void RunCache::set_store_dir(const std::string& dir) {
  std::lock_guard lock(mutex_);
  store_ = dir.empty() ? nullptr : std::make_shared<const RunStore>(dir);
  // A new (or re-attached) directory gets a fresh chance at persistence.
  store_degraded_.store(false, std::memory_order_relaxed);
  consecutive_save_failures_.store(0, std::memory_order_relaxed);
  warned_save_failure_.store(false, std::memory_order_relaxed);
}

std::string RunCache::store_dir() const {
  std::lock_guard lock(mutex_);
  return store_ == nullptr ? std::string() : store_->dir();
}

std::size_t RunCache::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

void RunCache::clear() {
  std::lock_guard lock(mutex_);
  entries_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  disk_hits_.store(0, std::memory_order_relaxed);
  save_failures_.store(0, std::memory_order_relaxed);
  consecutive_save_failures_.store(0, std::memory_order_relaxed);
  store_degraded_.store(false, std::memory_order_relaxed);
  warned_save_failure_.store(false, std::memory_order_relaxed);
}

trace::WorkloadSpec baseline_workload(const trace::TraceSpec& trace) {
  trace::WorkloadSpec alone;
  alone.name = trace.id();
  alone.threads.push_back(trace);
  return alone;
}

RunKey baseline_key(const core::SimConfig& config,
                    const trace::TraceSpec& trace, Cycle cycles,
                    Cycle warmup) {
  return run_key(baseline_config(config), baseline_workload(trace), cycles,
                 warmup);
}

RunResult baseline_run(RunCache& cache, const core::SimConfig& config,
                       const trace::TraceSpec& trace, Cycle cycles,
                       Cycle warmup) {
  const core::SimConfig single = baseline_config(config);
  const trace::WorkloadSpec alone = baseline_workload(trace);
  return cache.get_or_run(
      run_key(single, alone, cycles, warmup),
      [&] { return simulate_workload(single, alone, cycles, warmup); });
}

}  // namespace clusmt::harness
