#include "harness/shard.h"

#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/backoff.h"
#include "common/faultpoint.h"
#include "harness/run_cache.h"
#include "harness/run_key.h"
#include "harness/spool.h"
#include "harness/sweep.h"

extern char** environ;

namespace clusmt::harness {

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

std::string resolve_worker_bin(const std::string& explicit_bin) {
  if (!explicit_bin.empty()) return explicit_bin;
  if (const char* env = std::getenv("CLUSMT_WORKER_BIN")) {
    if (*env != '\0') return env;
  }
  std::error_code ec;
  const fs::path self = fs::read_symlink("/proc/self/exe", ec);
  if (!ec) {
    const fs::path dir = self.parent_path();
    for (const fs::path& candidate :
         {dir / "sweep_worker", dir / ".." / "tools" / "sweep_worker"}) {
      std::error_code exists_ec;
      if (fs::exists(candidate, exists_ec) && !exists_ec) {
        return candidate.lexically_normal().string();
      }
    }
  }
  throw std::runtime_error(
      "sharded sweep: cannot locate the sweep_worker binary — build the "
      "`sweep_worker` target, or point --worker-bin / $CLUSMT_WORKER_BIN "
      "at it");
}

pid_t spawn_worker(const std::string& bin,
                   const std::vector<std::string>& args) {
  // Fault point `shard.spawn`: error → posix_spawn fails (pid/memory
  // limits), exercising the respawn-backoff and degrade-local paths.
  if (faultpoint::inject_error("shard.spawn")) return -1;
  std::vector<char*> argv;
  argv.reserve(args.size() + 2);
  argv.push_back(const_cast<char*>(bin.c_str()));
  for (const std::string& a : args) {
    argv.push_back(const_cast<char*>(a.c_str()));
  }
  argv.push_back(nullptr);
  pid_t pid = -1;
  if (posix_spawn(&pid, bin.c_str(), nullptr, nullptr, argv.data(),
                  environ) != 0) {
    return -1;
  }
  return pid;
}

/// Reaps exited workers out of `pids` (non-blocking).
void reap_exited(std::vector<pid_t>& pids) {
  for (auto it = pids.begin(); it != pids.end();) {
    int status = 0;
    if (waitpid(*it, &status, WNOHANG) == *it) {
      it = pids.erase(it);
    } else {
      ++it;
    }
  }
}

/// SIGTERM, short grace, SIGKILL; every pid is reaped before returning.
void terminate_workers(std::vector<pid_t>& pids) {
  for (pid_t pid : pids) kill(pid, SIGTERM);
  const auto deadline = Clock::now() + std::chrono::seconds(2);
  while (!pids.empty() && Clock::now() < deadline) {
    reap_exited(pids);
    if (pids.empty()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  for (pid_t pid : pids) kill(pid, SIGKILL);
  for (pid_t pid : pids) waitpid(pid, nullptr, 0);
  pids.clear();
}

std::string first_line(const std::string& text) {
  const std::size_t nl = text.find('\n');
  return nl == std::string::npos ? text : text.substr(0, nl);
}

}  // namespace

ShardStats shard_prefetch(const SweepSpec& spec,
                          const std::vector<ConfigPoint>& points) {
  ShardStats stats;
  RunCache& cache = spec.cache != nullptr ? *spec.cache : RunCache::instance();
  const std::string store_dir = cache.store_dir();
  if (store_dir.empty()) {
    throw std::runtime_error(
        "--shard-workers requires a --cache-dir / $CLUSMT_CACHE_DIR run "
        "store: workers hand results back through it");
  }
  const RunStore store(store_dir);

  // Enumerate every cell the sweep will request — grid cells plus, for
  // fairness sweeps, the content-deduplicated single-thread baselines —
  // exactly mirroring run_sweep's own requests so the assembly pass below
  // never simulates inline.
  struct Pending {
    SpoolCell cell;
    std::string label;
  };
  std::map<RunKey, Pending> needed;
  for (const ConfigPoint& point : points) {
    for (const trace::WorkloadSpec& workload : spec.suite) {
      const RunKey key =
          run_key(point.config, workload, spec.cycles, spec.warmup);
      needed.try_emplace(
          key, Pending{{key, point.config, workload, spec.cycles, spec.warmup},
                       point.label + " / " + workload.name});
      if (spec.with_fairness) {
        for (const trace::TraceSpec& t : workload.threads) {
          const RunKey bkey =
              baseline_key(point.config, t, spec.cycles, spec.warmup);
          needed.try_emplace(
              bkey,
              Pending{{bkey, baseline_config(point.config),
                       baseline_workload(t), spec.cycles, spec.warmup},
                      "baseline " + t.id()});
        }
      }
    }
  }
  stats.cells = needed.size();

  std::map<RunKey, Pending> outstanding;
  for (auto& [key, pending] : needed) {
    std::error_code ec;
    if (cache.contains(key) || fs::exists(store.path_of(key), ec)) {
      ++stats.served_from_store;
      continue;
    }
    outstanding.emplace(key, std::move(pending));
  }
  if (outstanding.empty()) {
    if (spec.progress) {
      std::fprintf(stderr,
                   "[shard] %zu cells: all served from store, 0 spooled\n",
                   stats.cells);
    }
    return stats;
  }

  std::string spool_dir = spec.shard.spool_dir;
  const bool temp_spool = spool_dir.empty();
  if (temp_spool) {
    std::error_code ec;
    spool_dir = (fs::temp_directory_path(ec) /
                 ("clusmt-spool-" + std::to_string(getpid())))
                    .string();
  }
  const Spool spool(spool_dir, spec.shard.max_attempts);
  if (!spool.init_dirs()) {
    throw std::runtime_error("sharded sweep: cannot create spool directory " +
                             spool_dir);
  }
  for (const auto& [key, pending] : outstanding) {
    if (!spool.push(pending.cell)) {
      throw std::runtime_error("sharded sweep: failed to spool a cell into " +
                               spool_dir);
    }
  }
  stats.spooled = outstanding.size();

  std::vector<std::string> failures;

  // Degrade-local fallback (ShardSpec::degrade_local): simulate a pending
  // cell in-process through the sweep's own cache — same key, same store
  // spill — so a dead swarm costs wall-clock, never the sweep or its
  // bit-identical tables. A cell whose *simulation* throws still lands in
  // `failures` (degrading does not launder genuinely poisoned cells).
  auto simulate_locally = [&](const Pending& pending) {
    const SpoolCell& c = pending.cell;
    try {
      (void)cache.get_or_run(c.key, [&] {
        return simulate_workload(c.config, c.workload, c.cycles, c.warmup);
      });
      ++stats.simulated_locally;
    } catch (const std::exception& e) {
      failures.push_back(pending.label + ": " + e.what());
    }
  };
  auto degrade_all = [&](const std::string& why) {
    std::fprintf(stderr,
                 "[shard] warning: %s; degrade-local is simulating the %zu "
                 "remaining cell(s) in-process\n",
                 why.c_str(), outstanding.size());
    for (const auto& [key, pending] : outstanding) simulate_locally(pending);
    outstanding.clear();
  };

  // Divide the host's cores among the local workers (each worker runs
  // --jobs claimant threads); remote workers watching the same spool
  // bring their own budget.
  const int workers = spec.shard.workers;
  std::string bin;
  try {
    bin = resolve_worker_bin(spec.shard.worker_bin);
  } catch (const std::exception& e) {
    if (!spec.shard.degrade_local) throw;
    degrade_all(e.what());
  }
  std::size_t total_cores =
      spec.jobs != 0 ? spec.jobs
                     : std::max(1u, std::thread::hardware_concurrency());
  const std::size_t jobs_per_worker =
      std::max<std::size_t>(1, total_cores / static_cast<std::size_t>(workers));

  const int spawn_cap = workers * spool.max_attempts();
  std::vector<pid_t> pids;
  auto spawn_one = [&]() {
    std::vector<std::string> args = {
        "--spool-dir", spool_dir,
        "--cache-dir", store_dir,
        "--jobs", std::to_string(jobs_per_worker),
        "--lease-ms", std::to_string(spec.shard.lease_ms),
        "--max-attempts", std::to_string(spec.shard.max_attempts),
        "--idle-timeout-ms", std::to_string(spec.shard.idle_timeout_ms),
        "--worker-id",
        "w" + std::to_string(stats.workers_spawned) + "-" +
            std::to_string(getpid()),
    };
    const pid_t pid = spawn_worker(bin, args);
    if (pid > 0) {
      pids.push_back(pid);
      ++stats.workers_spawned;
    }
  };
  for (int i = 0; i < workers && !outstanding.empty(); ++i) spawn_one();
  if (pids.empty() && !outstanding.empty()) {
    if (!spec.shard.degrade_local) {
      throw std::runtime_error("sharded sweep: failed to spawn any worker (" +
                               bin + ")");
    }
    degrade_all("failed to spawn any worker (" + bin + ")");
  }
  if (spec.progress && !pids.empty()) {
    std::fprintf(stderr,
                 "[shard] %zu cells: %zu served from store, %zu spooled to "
                 "%s; %d workers x %zu jobs\n",
                 stats.cells, stats.served_from_store, stats.spooled,
                 spool_dir.c_str(), workers, jobs_per_worker);
  }

  const auto lease = std::chrono::milliseconds(
      spec.shard.lease_ms < 1 ? 1 : spec.shard.lease_ms);
  // Respawn pacing: an immediate-respawn loop against a swarm that dies
  // instantly (bad binary, pid limit, injected spawn faults) is a fork
  // storm. Exponential backoff with jitter spaces the rounds out; a round
  // whose workers made progress resets the ramp.
  Backoff respawn_backoff(
      Backoff::Options{std::chrono::milliseconds(50),
                       std::chrono::milliseconds(2000), 2.0, 0.5},
      static_cast<std::uint64_t>(getpid()));
  std::size_t progress_at_last_respawn = 0;
  auto last_reclaim = Clock::now();
  auto last_progress = Clock::now();
  try {
  while (!outstanding.empty()) {
    for (auto it = outstanding.begin(); it != outstanding.end();) {
      std::error_code ec;
      if (fs::exists(store.path_of(it->first), ec)) {
        ++stats.simulated_by_workers;
        it = outstanding.erase(it);
      } else if (spool.terminally_failed(it->first)) {
        // Terminal in the spool — but a stolen-then-finished straggler may
        // still have delivered; the store is the source of truth.
        std::error_code again;
        if (fs::exists(store.path_of(it->first), again)) {
          ++stats.simulated_by_workers;
        } else if (spec.shard.degrade_local) {
          std::fprintf(stderr,
                       "[shard] warning: cell '%s' exhausted its attempts "
                       "(%s); degrade-local is simulating it in-process\n",
                       it->second.label.c_str(),
                       first_line(spool.failure_message(it->first)).c_str());
          simulate_locally(it->second);
        } else {
          failures.push_back(
              it->second.label + ": " +
              first_line(spool.failure_message(it->first)));
        }
        it = outstanding.erase(it);
      } else {
        ++it;
      }
    }
    if (outstanding.empty()) break;

    const auto now = Clock::now();
    if (now - last_reclaim >= lease) {
      (void)spool.reclaim_stale(lease);
      last_reclaim = now;
    }
    if (spec.progress && now - last_progress >= std::chrono::seconds(5)) {
      std::fprintf(stderr, "[shard] %zu/%zu spooled cells outstanding\n",
                   outstanding.size(), stats.spooled);
      last_progress = now;
    }

    reap_exited(pids);
    if (pids.empty()) {
      // Workers are gone with work left. Respawn while the attempt budget
      // lasts: a crash-looping cell turns terminal through lease reclaim,
      // so this loop is bounded either way. Rounds are spaced by the
      // backoff ramp, reset whenever the previous generation delivered.
      if (stats.simulated_by_workers > progress_at_last_respawn) {
        respawn_backoff.reset();
      }
      progress_at_last_respawn = stats.simulated_by_workers;
      if (stats.workers_spawned >= spawn_cap) {
        const std::string why =
            "workers keep exiting with " + std::to_string(outstanding.size()) +
            " cells outstanding (spawned " +
            std::to_string(stats.workers_spawned) + "; see " + spool_dir +
            "/failed)";
        if (spec.shard.degrade_local) {
          degrade_all(why);
          break;
        }
        throw std::runtime_error("sharded sweep: " + why);
      }
      std::this_thread::sleep_for(respawn_backoff.next());
      for (int i = 0; i < workers && stats.workers_spawned < spawn_cap; ++i) {
        spawn_one();
      }
      if (pids.empty()) {
        if (spec.shard.degrade_local) {
          degrade_all("failed to respawn workers (" + bin + ")");
          break;
        }
        throw std::runtime_error("sharded sweep: failed to respawn workers (" +
                                 bin + ")");
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  } catch (...) {
    terminate_workers(pids);  // never leak a swarm past an error
    throw;
  }

  terminate_workers(pids);
  if (!failures.empty()) {
    std::string message = "sharded sweep: " + std::to_string(failures.size()) +
                          " cell(s) failed after " +
                          std::to_string(spool.max_attempts()) + " attempts:";
    for (const std::string& f : failures) message += "\n  " + f;
    throw std::runtime_error(message);
  }
  if (spec.progress) {
    std::fprintf(stderr,
                 "[shard] %zu cells simulated by workers, %zu locally\n",
                 stats.simulated_by_workers, stats.simulated_locally);
  }
  if (temp_spool) {
    std::error_code ec;
    fs::remove_all(spool_dir, ec);  // best-effort cleanup of the throwaway
  }
  return stats;
}

}  // namespace clusmt::harness
