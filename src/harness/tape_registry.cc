#include "harness/tape_registry.h"

#include <cstdlib>

#include "trace/synthetic.h"

namespace clusmt::harness {

namespace {

/// Chunk-storage pool size: $CLUSMT_TAPE_BUDGET_MB or 1 GiB. When the pool
/// drains, new recording stops and readers continue live from the freeze
/// points — correctness never depends on the budget.
std::uint64_t budget_bytes_from_env() {
  constexpr std::uint64_t kDefaultMb = 1024;
  std::uint64_t mb = kDefaultMb;
  if (const char* env = std::getenv("CLUSMT_TAPE_BUDGET_MB")) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') mb = parsed;
  }
  return mb * 1024 * 1024;
}

}  // namespace

TapeRegistry::TapeRegistry()
    : budget_bytes_(budget_bytes_from_env()),
      budget_(std::make_unique<trace::TapeBudget>(budget_bytes_)) {}

TapeRegistry& TapeRegistry::instance() {
  static TapeRegistry* registry = new TapeRegistry();  // never destroyed
  return *registry;
}

std::shared_ptr<trace::TraceSource> TapeRegistry::source_for(
    const trace::TraceSpec& spec, const trace::TraceProfile** profile_out) {
  if (!enabled()) {
    live_sources_.fetch_add(1, std::memory_order_relaxed);
    auto source =
        std::make_shared<trace::SyntheticTrace>(spec.profile, spec.seed);
    if (profile_out != nullptr) {
      // The source's program owns a profile copy that outlives it.
      *profile_out = &source->program().profile();
    }
    return source;
  }

  const RunKey key = trace_content_key(spec);
  std::shared_ptr<trace::TraceTape> tape;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = tapes_.find(key);
    if (it != tapes_.end()) {
      tape = it->second;
      hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      auto program =
          std::make_shared<const trace::SyntheticProgram>(spec.profile,
                                                          spec.seed);
      tape = std::make_shared<trace::TraceTape>(std::move(program), spec.seed,
                                                budget_.get());
      tapes_.emplace(key, tape);
      recordings_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (profile_out != nullptr) *profile_out = &tape->program().profile();
  return std::make_shared<trace::TapeTrace>(std::move(tape));
}

std::size_t TapeRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tapes_.size();
}

void TapeRegistry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  tapes_.clear();
  budget_ = std::make_unique<trace::TapeBudget>(budget_bytes_);
  hits_.store(0, std::memory_order_relaxed);
  recordings_.store(0, std::memory_order_relaxed);
  live_sources_.store(0, std::memory_order_relaxed);
}

}  // namespace clusmt::harness
