#include "harness/shape_flags.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace clusmt::harness {

namespace {

[[noreturn]] void die_arity(const char* flag, std::size_t got,
                            std::size_t want) {
  std::fprintf(stderr,
               "error: --%s expects %zu comma-separated values (one per "
               "cluster%s), got %zu\n",
               flag, want, std::string(flag) == "link" ? " pair" : "", got);
  std::exit(2);
}

/// Fetches --`flag` and enforces one element per cluster (`want`).
std::vector<std::int64_t> cluster_list(const CliArgs& args, const char* flag,
                                       std::size_t want) {
  std::vector<std::int64_t> values = args.get_int_list(flag);
  if (!values.empty() && values.size() != want) {
    die_arity(flag, values.size(), want);
  }
  return values;
}

}  // namespace

bool has_shape_flags(const CliArgs& args) {
  for (const char* flag :
       {"clusters", "width", "iq", "int-regs", "fp-regs", "link"}) {
    if (args.has(flag)) return true;
  }
  return false;
}

void apply_shape_flags(const CliArgs& args, core::SimConfig& config) {
  const std::int64_t clusters =
      args.get_int("clusters", config.num_clusters);
  if (clusters < 1 || clusters > kMaxClusters) {
    std::fprintf(stderr, "error: --clusters expects 1..%d, got %lld\n",
                 kMaxClusters, static_cast<long long>(clusters));
    std::exit(2);
  }
  config.num_clusters = static_cast<int>(clusters);
  const auto n = static_cast<std::size_t>(config.num_clusters);

  const std::vector<std::int64_t> width = cluster_list(args, "width", n);
  const std::vector<std::int64_t> iq = cluster_list(args, "iq", n);
  const std::vector<std::int64_t> int_regs =
      cluster_list(args, "int-regs", n);
  const std::vector<std::int64_t> fp_regs = cluster_list(args, "fp-regs", n);
  for (std::size_t c = 0; c < n; ++c) {
    if (!width.empty()) config.shape[c].issue_width = static_cast<int>(width[c]);
    if (!iq.empty()) config.shape[c].iq_entries = static_cast<int>(iq[c]);
    if (!int_regs.empty()) {
      config.shape[c].int_regs = static_cast<int>(int_regs[c]);
    }
    if (!fp_regs.empty()) {
      config.shape[c].fp_regs = static_cast<int>(fp_regs[c]);
    }
  }

  const std::vector<std::int64_t> link = cluster_list(args, "link", n * n);
  for (std::size_t from = 0; from < n && !link.empty(); ++from) {
    for (std::size_t to = 0; to < n; ++to) {
      config.link_latency_cc[from][to] =
          static_cast<int>(link[from * n + to]);
    }
  }
}

}  // namespace clusmt::harness
