#include "trace/trace_io.h"

#include <array>
#include <cstdio>
#include <stdexcept>

#include "trace/synthetic.h"

namespace clusmt::trace {

namespace {

constexpr std::array<char, 8> kMagic = {'C', 'L', 'T', 'R',
                                        'A', 'C', 'E', '\0'};
constexpr std::uint32_t kVersion = 1;
// A µop record: pc, mem_addr, target, fallthrough (u64 each), dst, src0,
// src1 (i16 each), cls and flags (u8 each).
constexpr std::size_t kRecordBytes = 4 * 8 + 3 * 2 + 2;
constexpr std::uint64_t kMaxName = 4096;
constexpr std::uint64_t kMaxUops = std::uint64_t{1} << 32;

constexpr std::uint8_t kFlagTaken = 1u << 0;
constexpr std::uint8_t kFlagIndirect = 1u << 1;

/// RAII stdio handle (keeps the module free of iostream locale baggage).
class File {
 public:
  File(const std::string& path, const char* mode)
      : file_(std::fopen(path.c_str(), mode)), path_(path) {
    if (file_ == nullptr) {
      throw std::runtime_error("trace_io: cannot open " + path);
    }
  }
  ~File() {
    if (file_ != nullptr) std::fclose(file_);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  void write(const void* data, std::size_t bytes) {
    if (std::fwrite(data, 1, bytes, file_) != bytes) {
      throw std::runtime_error("trace_io: short write to " + path_);
    }
  }
  void read(void* data, std::size_t bytes) {
    if (std::fread(data, 1, bytes, file_) != bytes) {
      throw std::runtime_error("trace_io: truncated file " + path_);
    }
  }
  [[nodiscard]] bool at_eof() {
    const int c = std::fgetc(file_);
    if (c == EOF) return true;
    std::ungetc(c, file_);
    return false;
  }

 private:
  std::FILE* file_;
  std::string path_;
};

/// Little-endian scalar encoding, independent of host byte order.
template <typename T>
void put(std::vector<std::uint8_t>& out, T value) {
  auto v = static_cast<std::uint64_t>(value);
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

template <typename T>
[[nodiscard]] T get(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  }
  return static_cast<T>(v);
}

[[nodiscard]] std::uint64_t mix_checksum(std::uint64_t sum,
                                         const std::uint8_t* bytes,
                                         std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    sum ^= static_cast<std::uint64_t>(bytes[i]) << (8 * (i % 8));
    sum = sum * 0x9E3779B97F4A7C15ull + 1;
  }
  return sum;
}

void encode_uop(std::vector<std::uint8_t>& out, const MicroOp& op) {
  put<std::uint64_t>(out, op.pc);
  put<std::uint64_t>(out, op.mem_addr);
  put<std::uint64_t>(out, op.target);
  put<std::uint64_t>(out, op.fallthrough);
  put<std::int16_t>(out, op.dst);
  put<std::int16_t>(out, op.src0);
  put<std::int16_t>(out, op.src1);
  put<std::uint8_t>(out, static_cast<std::uint8_t>(op.cls));
  std::uint8_t flags = 0;
  if (op.taken) flags |= kFlagTaken;
  if (op.indirect) flags |= kFlagIndirect;
  put<std::uint8_t>(out, flags);
}

[[nodiscard]] MicroOp decode_uop(const std::uint8_t* in) {
  MicroOp op;
  op.pc = get<std::uint64_t>(in);
  op.mem_addr = get<std::uint64_t>(in + 8);
  op.target = get<std::uint64_t>(in + 16);
  op.fallthrough = get<std::uint64_t>(in + 24);
  op.dst = get<std::int16_t>(in + 32);
  op.src0 = get<std::int16_t>(in + 34);
  op.src1 = get<std::int16_t>(in + 36);
  const auto cls = get<std::uint8_t>(in + 38);
  if (cls >= kNumUopClasses ||
      static_cast<UopClass>(cls) == UopClass::kCopy) {
    throw std::runtime_error("trace_io: invalid µop class in record");
  }
  op.cls = static_cast<UopClass>(cls);
  const auto flags = get<std::uint8_t>(in + 39);
  if ((flags & ~(kFlagTaken | kFlagIndirect)) != 0) {
    throw std::runtime_error("trace_io: unknown flag bits in record");
  }
  op.taken = (flags & kFlagTaken) != 0;
  op.indirect = (flags & kFlagIndirect) != 0;
  return op;
}

}  // namespace

void save_trace(const std::string& path, const std::string& name,
                std::uint64_t seed, const std::vector<MicroOp>& uops) {
  if (name.size() > kMaxName) {
    throw std::runtime_error("trace_io: trace name too long");
  }
  File file(path, "wb");
  std::vector<std::uint8_t> header;
  header.insert(header.end(), kMagic.begin(), kMagic.end());
  put<std::uint32_t>(header, kVersion);
  put<std::uint32_t>(header, static_cast<std::uint32_t>(name.size()));
  header.insert(header.end(), name.begin(), name.end());
  put<std::uint64_t>(header, seed);
  put<std::uint64_t>(header, static_cast<std::uint64_t>(uops.size()));
  file.write(header.data(), header.size());

  std::uint64_t checksum = 0;
  std::vector<std::uint8_t> record;
  record.reserve(kRecordBytes);
  for (const MicroOp& op : uops) {
    record.clear();
    encode_uop(record, op);
    checksum = mix_checksum(checksum, record.data(), record.size());
    file.write(record.data(), record.size());
  }
  std::vector<std::uint8_t> footer;
  put<std::uint64_t>(footer, checksum);
  file.write(footer.data(), footer.size());
}

LoadedTrace load_trace(const std::string& path) {
  File file(path, "rb");

  std::array<std::uint8_t, 8> magic{};
  file.read(magic.data(), magic.size());
  for (std::size_t i = 0; i < kMagic.size(); ++i) {
    if (magic[i] != static_cast<std::uint8_t>(kMagic[i])) {
      throw std::runtime_error("trace_io: bad magic in " + path);
    }
  }

  std::array<std::uint8_t, 8> counts{};
  file.read(counts.data(), counts.size());
  const auto version = get<std::uint32_t>(counts.data());
  const auto name_len = get<std::uint32_t>(counts.data() + 4);
  if (version != kVersion) {
    throw std::runtime_error("trace_io: unsupported version in " + path);
  }
  if (name_len > kMaxName) {
    throw std::runtime_error("trace_io: oversized name in " + path);
  }

  LoadedTrace out;
  out.name.resize(name_len);
  if (name_len > 0) file.read(out.name.data(), name_len);

  std::array<std::uint8_t, 16> tail{};
  file.read(tail.data(), tail.size());
  out.seed = get<std::uint64_t>(tail.data());
  const auto count = get<std::uint64_t>(tail.data() + 8);
  if (count > kMaxUops) {
    throw std::runtime_error("trace_io: implausible µop count in " + path);
  }

  out.uops.reserve(static_cast<std::size_t>(count));
  std::uint64_t checksum = 0;
  std::array<std::uint8_t, kRecordBytes> record{};
  for (std::uint64_t i = 0; i < count; ++i) {
    file.read(record.data(), record.size());
    checksum = mix_checksum(checksum, record.data(), record.size());
    out.uops.push_back(decode_uop(record.data()));
  }

  std::array<std::uint8_t, 8> footer{};
  file.read(footer.data(), footer.size());
  if (get<std::uint64_t>(footer.data()) != checksum) {
    throw std::runtime_error("trace_io: checksum mismatch in " + path);
  }
  if (!file.at_eof()) {
    throw std::runtime_error("trace_io: trailing bytes in " + path);
  }
  return out;
}

std::vector<MicroOp> record_trace(const TraceSpec& spec, std::size_t count) {
  SyntheticTrace source(spec.profile, spec.seed);
  std::vector<MicroOp> uops;
  uops.reserve(count);
  for (std::size_t i = 0; i < count; ++i) uops.push_back(source.next());
  return uops;
}

void save_recorded_trace(const std::string& path, const TraceSpec& spec,
                         std::size_t count) {
  save_trace(path, spec.id(), spec.seed, record_trace(spec, count));
}

}  // namespace clusmt::trace
