// Wrong-path µop synthesis.
//
// The paper's traces "hold enough information to faithfully simulate wrong
// path execution" (§4.1). After the front-end follows a mispredicted
// branch, this source supplies plausible µops — sampled from the same
// profile mix, touching the same memory footprint — that occupy rename
// bandwidth, issue-queue entries, registers and cache ports until the
// branch resolves and the pipeline squashes them. Streams are deterministic
// in (seed, branch pc), so runs remain reproducible.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "trace/profile.h"
#include "trace/uop.h"

namespace clusmt::trace {

class WrongPathSource {
 public:
  /// Rearms the generator at a misprediction. `profile` must outlive the
  /// source (the thread's profile owned by the workload).
  void reset(const TraceProfile* profile, std::uint64_t seed,
             std::uint64_t branch_pc, std::uint64_t wrong_target);

  /// Next wrong-path µop. Must only be called after reset().
  [[nodiscard]] MicroOp next();

  [[nodiscard]] bool armed() const noexcept { return profile_ != nullptr; }
  void disarm() noexcept { profile_ = nullptr; }

  /// PC the next wrong-path µop will carry (for I-TLB/TC lookups).
  [[nodiscard]] std::uint64_t current_pc() const noexcept { return pc_; }

 private:
  const TraceProfile* profile_ = nullptr;
  Xoshiro256 rng_;
  std::uint64_t pc_ = 0;
  std::uint64_t base_addr_ = 0;
};

}  // namespace clusmt::trace
