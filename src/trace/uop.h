// Micro-operation (µop) format. The front-end of the modelled machine
// translates x86 macro-instructions into µops (Pentium-4 style, see paper
// §3); the trace substrate produces streams of already-decoded µops.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/types.h"

namespace clusmt::trace {

/// Functional classes. kCopy is never produced by a trace: the rename logic
/// generates copies on demand for inter-cluster communication.
enum class UopClass : std::uint8_t {
  kIntAlu = 0,
  kIntMul,
  kFpAdd,
  kFpMul,
  kSimd,
  kLoad,
  kStore,
  kBranch,
  kCopy,
  kNop,
};
inline constexpr int kNumUopClasses = 10;

/// Issue-port classes of the modelled cluster (paper Table 1):
///   P0: int, fp, simd   P1: int, fp, simd   P2: int, mem
/// Figure 5 classifies imbalance events by these three groups.
enum class PortClass : std::uint8_t { kInt = 0, kFpSimd = 1, kMem = 2 };
inline constexpr int kNumPortClasses = 3;

[[nodiscard]] constexpr PortClass port_class_of(UopClass cls) noexcept {
  switch (cls) {
    case UopClass::kFpAdd:
    case UopClass::kFpMul:
    case UopClass::kSimd:
      return PortClass::kFpSimd;
    case UopClass::kLoad:
    case UopClass::kStore:
      return PortClass::kMem;
    default:
      return PortClass::kInt;
  }
}

/// Execution latency in cycles once issued (loads add cache access time).
[[nodiscard]] constexpr int execution_latency(UopClass cls) noexcept {
  switch (cls) {
    case UopClass::kIntAlu: return 1;
    case UopClass::kIntMul: return 3;
    case UopClass::kFpAdd: return 3;
    case UopClass::kFpMul: return 5;
    case UopClass::kSimd: return 2;
    case UopClass::kLoad: return 1;   // AGU; cache latency added separately
    case UopClass::kStore: return 1;  // address generation
    case UopClass::kBranch: return 1;
    case UopClass::kCopy: return 1;   // + interconnect link latency
    case UopClass::kNop: return 1;
  }
  return 1;
}

[[nodiscard]] constexpr bool is_memory(UopClass cls) noexcept {
  return cls == UopClass::kLoad || cls == UopClass::kStore;
}

[[nodiscard]] constexpr std::string_view uop_class_name(UopClass cls) noexcept {
  switch (cls) {
    case UopClass::kIntAlu: return "int_alu";
    case UopClass::kIntMul: return "int_mul";
    case UopClass::kFpAdd: return "fp_add";
    case UopClass::kFpMul: return "fp_mul";
    case UopClass::kSimd: return "simd";
    case UopClass::kLoad: return "load";
    case UopClass::kStore: return "store";
    case UopClass::kBranch: return "branch";
    case UopClass::kCopy: return "copy";
    case UopClass::kNop: return "nop";
  }
  return "?";
}

/// A decoded micro-operation as it leaves the trace (or the MITE/TC model).
/// Register identifiers are architectural; renaming assigns physical
/// registers per cluster. src1 < 0 means "single-source µop".
struct MicroOp {
  std::uint64_t pc = 0;
  UopClass cls = UopClass::kIntAlu;
  std::int16_t dst = -1;   // architectural destination, -1 = none
  std::int16_t src0 = -1;  // first source, -1 = none
  std::int16_t src1 = -1;  // second source, -1 = none
  std::uint64_t mem_addr = 0;  // byte address for load/store
  bool taken = false;          // actual branch outcome
  bool indirect = false;       // indirect branch (uses target predictor)
  std::uint64_t target = 0;    // actual branch target (next pc when taken)
  std::uint64_t fallthrough = 0;  // next pc when not taken

  [[nodiscard]] bool has_dst() const noexcept { return dst >= 0; }
  [[nodiscard]] bool is_branch() const noexcept {
    return cls == UopClass::kBranch;
  }
  [[nodiscard]] bool is_load() const noexcept { return cls == UopClass::kLoad; }
  [[nodiscard]] bool is_store() const noexcept {
    return cls == UopClass::kStore;
  }
};

}  // namespace clusmt::trace
