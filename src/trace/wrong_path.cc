#include "trace/wrong_path.h"

namespace clusmt::trace {

void WrongPathSource::reset(const TraceProfile* profile, std::uint64_t seed,
                            std::uint64_t branch_pc,
                            std::uint64_t wrong_target) {
  profile_ = profile;
  rng_ = Xoshiro256(hash_combine(seed, hash_combine(branch_pc, 0x3B0)));
  pc_ = wrong_target;
  base_addr_ = (1 + (hash_combine(seed, 0xADD2E55) & 0x3F)) << 26;
}

MicroOp WrongPathSource::next() {
  const TraceProfile& p = *profile_;
  MicroOp op;
  op.pc = pc_;
  pc_ += 4;

  double u = rng_.uniform() * p.mix_sum();
  auto pick = [&](double frac) {
    if (u < frac) return true;
    u -= frac;
    return false;
  };
  if (pick(p.frac_int_alu)) op.cls = UopClass::kIntAlu;
  else if (pick(p.frac_int_mul)) op.cls = UopClass::kIntMul;
  else if (pick(p.frac_fp_add)) op.cls = UopClass::kFpAdd;
  else if (pick(p.frac_fp_mul)) op.cls = UopClass::kFpMul;
  else if (pick(p.frac_simd)) op.cls = UopClass::kSimd;
  else if (pick(p.frac_load)) op.cls = UopClass::kLoad;
  else op.cls = UopClass::kStore;

  auto rand_int = [&] {
    return static_cast<std::int16_t>(rng_.bounded(kNumIntArchRegs));
  };
  auto rand_fp = [&] {
    return static_cast<std::int16_t>(kNumIntArchRegs +
                                     rng_.bounded(kNumFpArchRegs));
  };

  switch (op.cls) {
    case UopClass::kIntAlu:
    case UopClass::kIntMul:
      op.dst = rand_int();
      op.src0 = rand_int();
      if (rng_.chance(p.two_src_prob)) op.src1 = rand_int();
      break;
    case UopClass::kFpAdd:
    case UopClass::kFpMul:
    case UopClass::kSimd:
      op.dst = rand_fp();
      op.src0 = rand_fp();
      if (rng_.chance(p.two_src_prob)) op.src1 = rand_fp();
      break;
    case UopClass::kLoad: {
      // Wrong-path accesses touch data near the program's recent working
      // set: a bounded hot region (they pollute L1 but mostly hit L2),
      // rather than cold random memory.
      op.dst = rng_.chance(p.effective_fp_load_fraction()) ? rand_fp()
                                                           : rand_int();
      op.src0 = rand_int();
      const std::uint64_t hot =
          std::min<std::uint64_t>(p.footprint_bytes, 256 * 1024);
      op.mem_addr = base_addr_ + (rng_.bounded(hot) & ~7ULL);
      break;
    }
    case UopClass::kStore: {
      op.src0 = rand_int();
      op.src1 = rand_int();
      const std::uint64_t hot =
          std::min<std::uint64_t>(p.footprint_bytes, 256 * 1024);
      op.mem_addr = base_addr_ + (rng_.bounded(hot) & ~7ULL);
      break;
    }
    default:
      break;
  }
  return op;
}

}  // namespace clusmt::trace
