// Statistical trace profiles: the knobs that make a synthetic µop stream
// behave like a benchmark of a given category (paper Table 2).
//
// The paper's traces are proprietary Intel captures of SPEC2K and commercial
// workloads. We substitute parameterised synthetic streams that reproduce
// the *resource pressure signatures* the resource-assignment schemes react
// to: instruction mix (port and register-file class pressure), dependence
// distances (ILP / issue-queue residency), memory footprint and pointer
// chasing (L1/L2 miss rates, Stall/Flush+ triggers) and branch entropy
// (wrong-path pollution). See DESIGN.md §1.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace clusmt::trace {

/// Behavioural flavour of a trace within its category (paper Table 2
/// "Types"): ILP = highly parallel & cache resident, MEM = memory bounded.
/// MIX workloads pair one ILP trace with one MEM trace.
enum class TraceKind : std::uint8_t { kIlp = 0, kMem = 1 };

/// All knobs of the synthetic generator. Fractions are of non-branch µops
/// and must sum to 1 (validated by `validate()`). Every knob feeds the
/// RunCache content hash: when adding one, also extend hash_trace() in
/// src/harness/run_key.cc.
struct TraceProfile {
  std::string name;

  // Instruction class mix.
  double frac_int_alu = 0.40;
  double frac_int_mul = 0.02;
  double frac_fp_add = 0.05;
  double frac_fp_mul = 0.03;
  double frac_simd = 0.08;
  double frac_load = 0.28;
  double frac_store = 0.14;

  // Control flow: average µops per basic block (a branch terminates each
  // block), static code footprint in blocks, branch behaviour.
  double avg_block_len = 8.0;
  int num_blocks = 64;
  double hard_branch_fraction = 0.08;  // statically unpredictable branches
  double indirect_fraction = 0.02;     // indirect branches (target predictor)

  // Dependences / ILP: source operands reach back a geometric(dep_geo_p)
  // number of same-class producers. Larger p => shorter distances => less
  // ILP => longer issue-queue residency.
  double dep_geo_p = 0.30;
  double two_src_prob = 0.55;

  // Memory behaviour.
  std::uint64_t footprint_bytes = 32 * 1024;
  double stream_fraction = 0.70;  // sequential-stride accesses
  double chase_fraction = 0.00;   // loads serialised on the previous load
  std::uint64_t stream_stride = 8;  // bytes between stream accesses (64 =>
                                    // a fresh cache line per access: high MLP)
  /// Chase and random accesses stay inside this hot region (0 = whole
  /// footprint). Memory-bound traces keep it L2-resident so the *streams*
  /// supply the parallel memory misses while chases serialise on L2 hits.
  std::uint64_t hot_bytes = 0;

  // Control/address sources (branch conditions, stream-load induction
  // variables) reach much further back than data dependences, so they are
  // usually ready: sampled with this flat geometric parameter.
  double old_src_p = 0.02;

  /// Fraction of load destinations that are FP/SIMD-class registers,
  /// derived from the FP share of the compute mix unless overridden (< 0).
  double fp_load_fraction = -1.0;

  /// Returns a human-readable validation error, or empty when coherent.
  [[nodiscard]] std::string validate() const;

  [[nodiscard]] double mix_sum() const noexcept {
    return frac_int_alu + frac_int_mul + frac_fp_add + frac_fp_mul +
           frac_simd + frac_load + frac_store;
  }

  /// Effective FP-destination probability for loads.
  [[nodiscard]] double effective_fp_load_fraction() const noexcept;
};

/// The 9 "plain" benchmark categories of Table 2. ISPEC-FSPEC and `mixes`
/// are pairing rules over these, not distinct profiles.
enum class Category : std::uint8_t {
  kDH = 0,
  kFSpec00,
  kISpec00,
  kMultimedia,
  kOffice,
  kProductivity,
  kServer,
  kWorkstation,
  kMiscellanea,
};
inline constexpr int kNumPlainCategories = 9;

[[nodiscard]] std::string_view category_name(Category c) noexcept;

/// Builds the profile for (category, kind, variant). `variant` perturbs
/// secondary knobs deterministically so the 3-4 traces of a category/type
/// are distinct programs, as in the paper's pool.
[[nodiscard]] TraceProfile make_profile(Category category, TraceKind kind,
                                        int variant);

/// All plain categories, in Table 2 order.
[[nodiscard]] const std::vector<Category>& all_plain_categories();

}  // namespace clusmt::trace
