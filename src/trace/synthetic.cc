#include "trace/synthetic.h"

#include <algorithm>
#include <cassert>

namespace clusmt::trace {

namespace {

constexpr std::uint64_t kUopBytes = 4;      // µop pc granularity
constexpr std::uint64_t kTextBase = 0x400000;
constexpr int kMaxBlockLen = 24;

/// Samples a µop class from the profile's non-branch mix.
UopClass sample_class(const TraceProfile& p, Xoshiro256& rng) {
  double u = rng.uniform() * p.mix_sum();
  if ((u -= p.frac_int_alu) < 0) return UopClass::kIntAlu;
  if ((u -= p.frac_int_mul) < 0) return UopClass::kIntMul;
  if ((u -= p.frac_fp_add) < 0) return UopClass::kFpAdd;
  if ((u -= p.frac_fp_mul) < 0) return UopClass::kFpMul;
  if ((u -= p.frac_simd) < 0) return UopClass::kSimd;
  if ((u -= p.frac_load) < 0) return UopClass::kLoad;
  return UopClass::kStore;
}

std::int16_t random_int_reg(Xoshiro256& rng) {
  return static_cast<std::int16_t>(rng.bounded(kNumIntArchRegs));
}

std::int16_t random_fp_reg(Xoshiro256& rng) {
  return static_cast<std::int16_t>(kNumIntArchRegs +
                                   rng.bounded(kNumFpArchRegs));
}

}  // namespace

SyntheticProgram::SyntheticProgram(const TraceProfile& profile,
                                   std::uint64_t seed)
    : profile_(profile), seed_(seed) {
  assert(profile.validate().empty() && "invalid trace profile");
  Xoshiro256 rng(hash_combine(seed, 0x5747A71C));

  const int n = profile.num_blocks;
  blocks_.resize(n);

  std::uint64_t pc = kTextBase;
  for (int b = 0; b < n; ++b) {
    BasicBlock& block = blocks_[b];
    block.start_pc = pc;

    // Body length: geometric around the mean, in [1, kMaxBlockLen].
    const double mean = profile.avg_block_len;
    const int len = static_cast<int>(std::clamp<std::uint64_t>(
        1 + rng.geometric(1.0 / std::max(1.5, mean), kMaxBlockLen - 1), 1,
        kMaxBlockLen));
    block.body.resize(len);
    for (auto& sop : block.body) {
      sop.cls = sample_class(profile, rng);
      switch (sop.cls) {
        case UopClass::kIntAlu:
        case UopClass::kIntMul:
          sop.dst = random_int_reg(rng);
          break;
        case UopClass::kFpAdd:
        case UopClass::kFpMul:
        case UopClass::kSimd:
          sop.dst = random_fp_reg(rng);
          break;
        case UopClass::kLoad:
          sop.fp_dst = rng.chance(profile.effective_fp_load_fraction());
          sop.dst = sop.fp_dst ? random_fp_reg(rng) : random_int_reg(rng);
          break;
        default:
          sop.dst = -1;  // stores have no destination
          break;
      }
    }
    pc += (block.body.size() + 1) * kUopBytes;

    // Terminating branch behaviour.
    if (rng.chance(profile.indirect_fraction)) {
      block.indirect = true;
      block.branch = BranchBehaviour::kRandom;
      const int fanout = 2 + static_cast<int>(rng.bounded(2));
      for (int t = 0; t < fanout; ++t) {
        block.indirect_targets.push_back(
            static_cast<int>(rng.bounded(static_cast<std::uint64_t>(n))));
      }
    } else if (rng.chance(profile.hard_branch_fraction)) {
      block.branch = BranchBehaviour::kRandom;
    } else {
      const double u = rng.uniform();
      if (u < 0.40) {
        block.branch = BranchBehaviour::kLoop;
        // Long enough trips that the exit mispredict is amortised.
        block.loop_trip = 8 + static_cast<int>(rng.bounded(56));
      } else if (u < 0.70) {
        block.branch = BranchBehaviour::kPeriodic;
        block.pattern_period = 2 + static_cast<int>(rng.bounded(6));
        block.pattern = static_cast<std::uint8_t>(rng() & 0xFF);
      } else if (u < 0.90) {
        block.branch = BranchBehaviour::kStronglyTaken;
      } else {
        block.branch = BranchBehaviour::kStronglyNotTaken;
      }
    }

    block.fallthrough_next = (b + 1) % n;
    if (block.branch == BranchBehaviour::kLoop) {
      // Loops jump a short distance backwards (including self-loops).
      const int back = static_cast<int>(rng.bounded(3));
      block.taken_next = (b - back % n + n) % n;
    } else {
      block.taken_next = static_cast<int>(rng.bounded(static_cast<std::uint64_t>(n)));
    }
  }

  flatten();
}

void SyntheticProgram::flatten() {
  std::size_t total = 0;
  for (const BasicBlock& block : blocks_) total += block.body.size() + 1;
  flat_.reserve(total);
  info_.resize(blocks_.size());

  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    const BasicBlock& block = blocks_[b];
    BlockInfo& bi = info_[b];
    bi.first_uop = static_cast<std::uint32_t>(flat_.size());
    for (std::size_t i = 0; i < block.body.size(); ++i) {
      const StaticUop& sop = block.body[i];
      flat_.push_back(FlatUop{.pc = block.start_pc + i * kUopBytes,
                              .cls = sop.cls,
                              .fp_dst = sop.fp_dst,
                              .is_branch = false,
                              .dst = sop.dst,
                              .block = static_cast<std::int32_t>(b)});
    }
    bi.branch_pc = block.start_pc + block.body.size() * kUopBytes;
    flat_.push_back(FlatUop{.pc = bi.branch_pc,
                            .cls = UopClass::kBranch,
                            .fp_dst = false,
                            .is_branch = true,
                            .dst = -1,
                            .block = static_cast<std::int32_t>(b)});

    bi.branch = block.branch;
    bi.indirect = block.indirect;
    bi.loop_trip = static_cast<std::uint16_t>(block.loop_trip);
    bi.pattern = block.pattern;
    bi.pattern_period = static_cast<std::uint8_t>(block.pattern_period);
    bi.taken_next = block.taken_next;
    bi.fallthrough_next = block.fallthrough_next;
    bi.taken_start_pc = blocks_[block.taken_next].start_pc;
    bi.fallthrough_start_pc = blocks_[block.fallthrough_next].start_pc;
    bi.indirect_begin = static_cast<std::uint32_t>(indirect_pool_.size());
    bi.indirect_count =
        static_cast<std::uint32_t>(block.indirect_targets.size());
    for (int target : block.indirect_targets) {
      indirect_pool_.push_back(IndirectTarget{
          .block = target, .start_pc = blocks_[target].start_pc});
    }
  }
}

// --------------------------------------------------------------------------
// Shared dynamic sampling
// --------------------------------------------------------------------------

SyntheticCursor::SyntheticCursor(
    std::shared_ptr<const SyntheticProgram> program, std::uint64_t seed)
    : program_(std::move(program)),
      rng_(hash_combine(seed, 0xD1AA11C5)),
      branch_state_(program_->blocks().size(), 0) {
  const TraceProfile& p = program_->profile();
  dep_dist_ = GeometricDist(p.dep_geo_p);
  old_dist_ = GeometricDist(p.old_src_p);
  indirect_skew_dist_ = GeometricDist(0.9);
  two_src_prob_ = p.two_src_prob;
  fp_store_prob_ = p.effective_fp_load_fraction();
  // Give each trace a distinct 64 MB-aligned address region, mimicking
  // distinct process address spaces that still compete for shared caches.
  base_addr_ = (1 + (hash_combine(seed, 0xADD2E55) & 0x3F)) << 26;
  const std::size_t n_streams = 4 + (rng_() & 0x3);
  for (std::size_t i = 0; i < n_streams; ++i) {
    // Stagger segments by three extra lines per stream so power-of-two
    // footprints do not put every stream into the same L1 set in lockstep.
    stream_ptrs_.push_back(base_addr_ +
                           i * (p.footprint_bytes / n_streams) + i * 192);
  }
  chase_addr_ = base_addr_;
}

bool SyntheticCursor::evaluate_branch(const BlockInfo& info,
                                      std::uint32_t& state) {
  switch (info.branch) {
    case BranchBehaviour::kStronglyTaken:
      return !rng_.chance(0.01);
    case BranchBehaviour::kStronglyNotTaken:
      return rng_.chance(0.01);
    case BranchBehaviour::kLoop: {
      const bool taken = static_cast<int>(state) + 1 <
                         std::max(2, static_cast<int>(info.loop_trip));
      state = taken ? state + 1 : 0;
      return taken;
    }
    case BranchBehaviour::kPeriodic: {
      const bool taken =
          (info.pattern >> (state % info.pattern_period)) & 1;
      state = (state + 1) % static_cast<std::uint32_t>(
                                 std::max(1, static_cast<int>(
                                                 info.pattern_period)));
      return taken;
    }
    case BranchBehaviour::kRandom:
      return rng_.chance(0.5);
  }
  return false;
}

std::int16_t SyntheticCursor::sample_source(RegClass cls,
                                            const GeometricDist& dist) {
  auto& ring = cls == RegClass::kInt ? recent_int_ : recent_fp_;
  if (ring.empty()) {
    return cls == RegClass::kInt ? std::int16_t{0}
                                 : std::int16_t{kNumIntArchRegs};
  }
  const std::uint64_t d = dist.sample(rng_, ring.size() - 1);
  return ring.from_back(d);
}

std::int16_t SyntheticCursor::sample_data_source(RegClass cls) {
  return sample_source(cls, dep_dist_);
}

std::int16_t SyntheticCursor::sample_old_source(RegClass cls) {
  return sample_source(cls, old_dist_);
}

std::uint64_t SyntheticCursor::sample_address(bool& out_is_chase,
                                              bool& out_is_stream) {
  const TraceProfile& p = program_->profile();
  const std::uint64_t hot =
      p.hot_bytes == 0 ? p.footprint_bytes
                       : std::min(p.hot_bytes, p.footprint_bytes);
  out_is_chase = false;
  out_is_stream = false;
  const double u = rng_.uniform();
  // Non-stream accesses skew towards an "ultra-hot" core (locality within
  // the hot region) so short runs warm up realistically.
  const std::uint64_t ultra = std::min<std::uint64_t>(hot, 64 * 1024);
  if (u < p.chase_fraction) {
    // Pointer chase: the next address is a hash of the previous one inside
    // the hot region, so consecutive chase loads are serialised.
    out_is_chase = true;
    std::uint64_t s = chase_addr_ ^ 0x9E3779B97F4A7C15ULL;
    const std::uint64_t region = rng_.chance(0.7) ? ultra : hot;
    chase_addr_ = base_addr_ + (splitmix64(s) % region & ~7ULL);
    return chase_addr_;
  }
  if (u < p.chase_fraction + p.stream_fraction) {
    out_is_stream = true;
    std::uint64_t& ptr = stream_ptrs_[next_stream_];
    next_stream_ = (next_stream_ + 1) % stream_ptrs_.size();
    ptr += p.stream_stride;
    if (ptr >= base_addr_ + p.footprint_bytes) {
      ptr = base_addr_ + (ptr - base_addr_) % p.footprint_bytes;
    }
    return ptr;
  }
  const std::uint64_t region = rng_.chance(0.7) ? ultra : hot;
  return base_addr_ + (rng_.bounded(region) & ~7ULL);
}

void SyntheticCursor::note_producer(std::int16_t arch) {
  if (arch < 0) return;
  auto& ring = arch_reg_class(arch) == RegClass::kInt ? recent_int_
                                                      : recent_fp_;
  ring.push(arch);
}

void SyntheticCursor::sample_body(MicroOp& op, bool fp_dst) {
  switch (op.cls) {
    case UopClass::kIntAlu:
    case UopClass::kIntMul:
      op.src0 = sample_data_source(RegClass::kInt);
      if (rng_.chance(two_src_prob_)) {
        op.src1 = sample_data_source(RegClass::kInt);
      }
      break;
    case UopClass::kFpAdd:
    case UopClass::kFpMul:
    case UopClass::kSimd:
      op.src0 = sample_data_source(RegClass::kFp);
      if (rng_.chance(two_src_prob_)) {
        op.src1 = sample_data_source(RegClass::kFp);
      }
      break;
    case UopClass::kLoad: {
      bool is_chase = false;
      bool is_stream = false;
      op.mem_addr = sample_address(is_chase, is_stream);
      if (is_chase && last_chase_dst_ >= 0) {
        // Serialise on the register that carried the previous pointer.
        op.src0 = last_chase_dst_;
      } else if (is_stream) {
        // Stream addresses come from induction variables: long-resolved
        // sources, so consecutive stream loads overlap (MLP).
        op.src0 = sample_old_source(RegClass::kInt);
      } else {
        op.src0 = sample_data_source(RegClass::kInt);
      }
      if (is_chase && !fp_dst) last_chase_dst_ = op.dst;
      break;
    }
    case UopClass::kStore: {
      bool is_chase = false;
      bool is_stream = false;
      op.mem_addr = sample_address(is_chase, is_stream);
      op.src0 = sample_old_source(RegClass::kInt);  // address
      const bool fp_data = rng_.chance(fp_store_prob_);
      op.src1 =
          sample_data_source(fp_data ? RegClass::kFp : RegClass::kInt);
      break;
    }
    default:
      break;
  }
  note_producer(op.dst);
}

int SyntheticCursor::take_branch(MicroOp& op, int block_index) {
  // Branch conditions (loop counters, flags) usually depend on
  // long-resolved values.
  const BlockInfo& bi = program_->block_info()[block_index];
  op.pc = bi.branch_pc;
  op.cls = UopClass::kBranch;
  op.src0 = sample_old_source(RegClass::kInt);
  op.indirect = bi.indirect;
  op.taken = evaluate_branch(bi, branch_state_[block_index]);

  int next_block;
  if (bi.indirect) {
    // Skewed dynamic target choice: mostly the first target so the
    // last-target predictor has something to learn, with excursions.
    const std::uint64_t skew = indirect_skew_dist_.sample(
        rng_, bi.indirect_count == 0 ? 0 : bi.indirect_count - 1);
    if (bi.indirect_count == 0) {
      next_block = bi.fallthrough_next;
      op.target = bi.fallthrough_start_pc;
    } else {
      const IndirectTarget& target =
          program_->indirect_targets()[bi.indirect_begin + skew];
      next_block = target.block;
      op.target = target.start_pc;
    }
    op.taken = true;  // indirect jumps always redirect
  } else {
    next_block = op.taken ? bi.taken_next : bi.fallthrough_next;
    op.target = op.taken ? bi.taken_start_pc : bi.fallthrough_start_pc;
  }
  op.fallthrough = bi.fallthrough_start_pc;
  return next_block;
}

// --------------------------------------------------------------------------
// Flat generator
// --------------------------------------------------------------------------

SyntheticTrace::SyntheticTrace(std::shared_ptr<const SyntheticProgram> program,
                               std::uint64_t seed)
    : SyntheticCursor(std::move(program), seed),
      flat_(program_->flat_uops().data()),
      info_(program_->block_info().data()),
      cursor_(info_[0].first_uop) {}

SyntheticTrace::SyntheticTrace(const TraceProfile& profile,
                               std::uint64_t seed)
    : SyntheticTrace(std::make_shared<SyntheticProgram>(profile, seed),
                     seed) {}

const std::string& SyntheticTrace::name() const {
  return program_->profile().name;
}

MicroOp SyntheticTrace::next_impl() {
  const FlatUop& f = flat_[cursor_];
  MicroOp op;
  op.pc = f.pc;
  op.cls = f.cls;
  if (!f.is_branch) {
    op.dst = f.dst;
    sample_body(op, f.fp_dst);
    ++cursor_;
    return op;
  }
  const int next_block = take_branch(op, f.block);
  cursor_ = info_[next_block].first_uop;
  return op;
}

MicroOp SyntheticTrace::next() { return next_impl(); }

void SyntheticTrace::fill(MicroOp* out, int count) {
  for (int i = 0; i < count; ++i) out[i] = next_impl();
}

// --------------------------------------------------------------------------
// Retained block walker (differential oracle)
// --------------------------------------------------------------------------

BlockWalkTrace::BlockWalkTrace(
    std::shared_ptr<const SyntheticProgram> program, std::uint64_t seed)
    : SyntheticCursor(std::move(program), seed) {}

BlockWalkTrace::BlockWalkTrace(const TraceProfile& profile,
                               std::uint64_t seed)
    : BlockWalkTrace(std::make_shared<SyntheticProgram>(profile, seed),
                     seed) {}

const std::string& BlockWalkTrace::name() const {
  return program_->profile().name;
}

MicroOp BlockWalkTrace::next() {
  const BasicBlock& block = program_->blocks()[current_block_];
  MicroOp op;

  if (block_pos_ < block.body.size()) {
    const StaticUop& sop = block.body[block_pos_];
    op.pc = block.start_pc + block_pos_ * kUopBytes;
    op.cls = sop.cls;
    op.dst = sop.dst;
    sample_body(op, sop.fp_dst);
    ++block_pos_;
    return op;
  }

  current_block_ = take_branch(op, current_block_);
  block_pos_ = 0;
  return op;
}

}  // namespace clusmt::trace
