// Abstract µop stream consumed by the simulator's fetch unit, plus a
// replay-from-vector implementation used heavily by unit tests.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "trace/uop.h"

namespace clusmt::trace {

/// An unbounded, deterministic stream of correct-path µops for one thread.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Next correct-path µop. Streams are conceptually infinite; sources that
  /// model finite programs must loop.
  virtual MicroOp next() = 0;

  /// Batched form of next(): writes the next `count` µops of the stream to
  /// `out`. Semantically identical to `count` next() calls — the fetch
  /// engine uses it to pay one virtual dispatch per fetch group instead of
  /// one per µop. Hot sources (SyntheticTrace) override it.
  virtual void fill(MicroOp* out, int count) {
    for (int i = 0; i < count; ++i) out[i] = next();
  }

  [[nodiscard]] virtual const std::string& name() const = 0;
};

/// Replays a fixed vector of µops, looping at the end. Intended for tests
/// and examples where exact instruction sequences are required.
class VectorTrace final : public TraceSource {
 public:
  VectorTrace(std::string name, std::vector<MicroOp> uops)
      : name_(std::move(name)), uops_(std::move(uops)) {}

  MicroOp next() override {
    MicroOp op = uops_[cursor_];
    cursor_ = (cursor_ + 1) % uops_.size();
    ++emitted_;
    return op;
  }

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::uint64_t emitted() const noexcept { return emitted_; }
  [[nodiscard]] std::size_t size() const noexcept { return uops_.size(); }

 private:
  std::string name_;
  std::vector<MicroOp> uops_;
  std::size_t cursor_ = 0;
  std::uint64_t emitted_ = 0;
};

}  // namespace clusmt::trace
