// Workload suite construction (paper Table 2 + Figure 9).
//
// The paper evaluates 120 two-threaded workloads built from a pool of
// single-thread traces: 9 "plain" categories with 3 ILP + 3 MEM + 2 MIX
// workloads each, an ISPEC-FSPEC category pairing SPECint with SPECfp
// traces (4 ILP + 4 MEM + 8 MIX, per Figure 9's x-axis), and 32
// cross-category "mixes". (Table 2's ISPEC-FSPEC row says 3/3/2, which sums
// to 112 total; Figure 9 shows 16 ISPEC-FSPEC workloads, which reaches the
// 120 the text states. We follow Figure 9.)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/profile.h"

namespace clusmt::trace {

/// One single-thread trace of the pool: profile + generator seed. The same
/// trace may appear in several workloads (and as its own single-thread
/// fairness baseline); identity is `profile.name`.
struct TraceSpec {
  TraceProfile profile;
  std::uint64_t seed = 0;

  [[nodiscard]] const std::string& id() const noexcept {
    return profile.name;
  }
};

/// A two-threaded workload.
struct WorkloadSpec {
  std::string category;  // display category, e.g. "ISPEC00", "mixes"
  std::string type;      // "ilp" | "mem" | "mix"
  std::string name;      // e.g. "ISPEC-FSPEC.mix.2.3"
  std::vector<TraceSpec> threads;  // exactly 2 in the paper's suite
};

/// The trace pool: every (plain category, kind, variant in [0,4)) trace.
class TracePool {
 public:
  explicit TracePool(std::uint64_t master_seed);

  [[nodiscard]] const TraceSpec& get(Category cat, TraceKind kind,
                                     int variant) const;
  [[nodiscard]] std::size_t size() const noexcept { return traces_.size(); }
  [[nodiscard]] const std::vector<TraceSpec>& all() const noexcept {
    return traces_;
  }

  static constexpr int kVariantsPerKind = 4;

 private:
  std::vector<TraceSpec> traces_;
};

/// Builds the full 120-workload suite.
[[nodiscard]] std::vector<WorkloadSpec> build_full_suite(
    std::uint64_t master_seed);

/// Builds a reduced suite keeping at most `per_type` workloads of each
/// (category, type) group — used by quick benchmark runs. `mixes_count`
/// caps the cross-category mixes.
[[nodiscard]] std::vector<WorkloadSpec> build_quick_suite(
    std::uint64_t master_seed, int per_type = 1, int mixes_count = 8);

/// Four-thread workloads (an extension beyond the paper's two-thread
/// suite; exercises Flush++ and the >2-thread behaviour of every scheme).
/// Each plain category contributes one ILP (4 ILP traces), one MEM and two
/// MIX (2 ILP + 2 MEM) workloads; ISPEC-FSPEC pairs two SPECint with two
/// SPECfp traces; `mixes_count` cross-category mixes close the suite.
/// Workload names use ".4." (e.g. "ISPEC00.mix.4.1").
[[nodiscard]] std::vector<WorkloadSpec> build_smt4_suite(
    std::uint64_t master_seed, int mixes_count = 16);

/// Category display order used by the paper's figures.
[[nodiscard]] const std::vector<std::string>& category_display_order();

/// All workloads of `suite` belonging to `category`.
[[nodiscard]] std::vector<WorkloadSpec> workloads_in_category(
    const std::vector<WorkloadSpec>& suite, const std::string& category);

}  // namespace clusmt::trace
