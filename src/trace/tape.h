// Replay tape: memoised output of a SyntheticTrace walk.
//
// Trace generation costs ~47 ns/µop of RNG-bound sampling, and the same
// (profile, seed) stream is regenerated many times per process — every
// repeat of a perf-bench cell, every sweep cell sharing a trace, every
// fairness baseline. A TraceTape records one warm walk of the generator
// into chunked contiguous MicroOp storage; TapeTrace cursors then replay
// the stream at memcpy rate. The recording is demand-driven (a reader that
// needs µop N extends the tape to N in chunk-sized steps), so a tape is
// exactly as long as its longest reader needs.
//
// Concurrency: many readers, one recorder. Chunk pointers live in a
// fixed-size array written under the tape mutex and published through the
// atomic recorded-count (release/acquire), so replaying an already-recorded
// range never takes a lock.
//
// Memory: tapes draw chunk storage from a shared byte budget (the registry
// wires one process-wide pool). When the budget runs dry a tape freezes;
// readers that outrun a frozen tape clone the recording cursor — the
// generator state is copyable by design — and continue generating live,
// bit-identically, from the freeze point. Capping therefore affects speed
// only, never the stream.
//
// The live generator (SyntheticTrace) stays the differential oracle for
// all of this: tests/trace_tape_test.cc pins tape-vs-live equality, and
// --no-tape routes every bench back through the live cursor.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "trace/synthetic.h"
#include "trace/trace_source.h"
#include "trace/uop.h"

namespace clusmt::trace {

/// Shared byte budget for tape chunk storage. `take` is all-or-nothing per
/// chunk, so a pool never strands a partial chunk.
class TapeBudget {
 public:
  explicit TapeBudget(std::uint64_t bytes) : remaining_(bytes) {}

  /// Reserves `bytes`; false when the pool cannot cover them.
  bool take(std::uint64_t bytes) noexcept {
    std::uint64_t cur = remaining_.load(std::memory_order_relaxed);
    while (cur >= bytes) {
      if (remaining_.compare_exchange_weak(cur, cur - bytes,
                                           std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }
  void give_back(std::uint64_t bytes) noexcept {
    remaining_.fetch_add(bytes, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t remaining() const noexcept {
    return remaining_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> remaining_;
};

/// One recorded (program, seed) stream. Grows on demand; shared by every
/// TapeTrace cursor replaying that stream.
class TraceTape {
 public:
  /// µops per storage chunk (also the recording step).
  static constexpr std::uint64_t kChunkUops = 1u << 14;

  /// `budget` may be nullptr (unbudgeted, for tests); it must outlive the
  /// tape. `max_uops` bounds this tape regardless of the budget.
  TraceTape(std::shared_ptr<const SyntheticProgram> program,
            std::uint64_t seed, TapeBudget* budget,
            std::uint64_t max_uops = 1ull << 32);
  ~TraceTape();

  TraceTape(const TraceTape&) = delete;
  TraceTape& operator=(const TraceTape&) = delete;

  [[nodiscard]] const SyntheticProgram& program() const noexcept {
    return *program_;
  }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// µops recorded so far (acquire: pairs with the recorder's release).
  [[nodiscard]] std::uint64_t recorded() const noexcept {
    return recorded_.load(std::memory_order_acquire);
  }
  /// True once recording stopped short of a reader's demand (budget dry or
  /// max_uops hit). A frozen tape never grows again.
  [[nodiscard]] bool frozen() const noexcept {
    return frozen_.load(std::memory_order_acquire);
  }

  /// Copies tape µops [pos, pos + count) into `out`. Requires
  /// pos + count <= recorded(). Lock-free.
  void copy(std::uint64_t pos, MicroOp* out, int count) const;

  /// Extends the recording to at least `target` µops (rounded up to a chunk
  /// boundary) and returns the new recorded(). May freeze the tape and
  /// return less than `target` when storage runs out.
  std::uint64_t extend_to(std::uint64_t target);

  /// Clone of the recording cursor, positioned exactly after recorded()
  /// µops. Readers outrunning a frozen tape continue live from this state.
  [[nodiscard]] std::unique_ptr<SyntheticTrace> clone_recorder() const;

 private:
  std::shared_ptr<const SyntheticProgram> program_;
  std::uint64_t seed_;
  TapeBudget* budget_;

  mutable std::mutex mutex_;        // recorder + chunk-table writes
  SyntheticTrace recorder_;         // always positioned at recorded_
  std::uint64_t max_chunks_;
  std::unique_ptr<std::atomic<MicroOp*>[]> chunks_;  // fixed table
  std::vector<std::unique_ptr<MicroOp[]>> chunk_storage_;
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<bool> frozen_{false};
};

/// TraceSource replaying a shared TraceTape. Each simulated thread gets its
/// own cursor; `fill` is a chunk-wise memcpy until the reader outruns a
/// frozen tape, after which it generates live from the freeze-point clone.
class TapeTrace final : public TraceSource {
 public:
  explicit TapeTrace(std::shared_ptr<TraceTape> tape)
      : tape_(std::move(tape)) {}

  MicroOp next() override {
    MicroOp op;
    fill(&op, 1);
    return op;
  }

  void fill(MicroOp* out, int count) override;

  [[nodiscard]] const std::string& name() const override {
    return tape_->program().profile().name;
  }

  /// µops served from the tape by this cursor (diagnostics/tests).
  [[nodiscard]] std::uint64_t replayed() const noexcept { return pos_; }
  /// True once this cursor fell off a frozen tape into live generation.
  [[nodiscard]] bool went_live() const noexcept { return live_ != nullptr; }

 private:
  std::shared_ptr<TraceTape> tape_;
  std::uint64_t pos_ = 0;
  std::unique_ptr<SyntheticTrace> live_;  // set after outrunning the tape
};

}  // namespace clusmt::trace
