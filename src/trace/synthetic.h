// Synthetic program model and trace generator.
//
// A SyntheticProgram is a static control-flow graph of basic blocks whose
// µop skeletons are fixed (classes, destinations, branch behaviour), so the
// branch predictor and trace cache observe realistic recurring PCs and
// learnable patterns. Dynamic properties — source-operand distances and
// memory addresses — are sampled per dynamic instance from the profile's
// distributions; this is a trace generator, not an executable program, and
// the simulator consumes only dependence/address/outcome information.
//
// Datapath layout: after the block graph is built, the program flattens the
// block bodies into ONE contiguous, immutable µop array (`flat_uops()`) and
// a per-block successor table (`block_info()`). The hot generator
// (SyntheticTrace) walks the flat array with a bare index cursor — a body
// µop is `flat[cursor++]`, a branch jumps to the successor's precomputed
// first index — so fetch-time generation touches one linear array instead
// of chasing per-block vectors. The original per-block walker is retained
// as BlockWalkTrace, the differential oracle for the flat layout (see
// tests/trace_flat_test.cc, analogous to the issue stage's kScanReference).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "trace/profile.h"
#include "trace/trace_source.h"
#include "trace/uop.h"

namespace clusmt::trace {

/// Per-static-branch behaviour. Patterns are learnable by gshare; kRandom
/// branches mispredict ~50% and model data-dependent control flow.
enum class BranchBehaviour : std::uint8_t {
  kStronglyTaken,
  kStronglyNotTaken,
  kLoop,      // taken (trip-1) times, then not taken, repeating
  kPeriodic,  // fixed taken/not-taken pattern of period <= 8
  kRandom,
};

/// Static µop skeleton inside a basic block.
struct StaticUop {
  UopClass cls = UopClass::kIntAlu;
  std::int16_t dst = -1;  // fixed architectural destination, -1 = none
  bool fp_dst = false;    // loads: destination register file class
};

/// Static basic block: skeleton µops terminated by one branch.
struct BasicBlock {
  std::uint64_t start_pc = 0;
  std::vector<StaticUop> body;  // excludes the terminating branch
  BranchBehaviour branch = BranchBehaviour::kStronglyTaken;
  bool indirect = false;
  int loop_trip = 8;                 // for kLoop
  std::uint8_t pattern = 0b10101010; // for kPeriodic
  int pattern_period = 4;
  int taken_next = 0;      // successor block when taken
  int fallthrough_next = 0;
  std::vector<int> indirect_targets;  // successor pool for indirect branches
};

/// One entry of the flattened µop stream: every static field the generator
/// needs, laid out contiguously in program order (body µops of block 0, its
/// branch, body µops of block 1, ...). Immutable after construction.
struct FlatUop {
  std::uint64_t pc = 0;
  UopClass cls = UopClass::kIntAlu;
  bool fp_dst = false;     // loads: destination register file class
  bool is_branch = false;  // terminating branch of `block`
  std::int16_t dst = -1;
  std::int32_t block = 0;  // owning block (branch evaluation / successors)
};

/// One entry of the shared indirect-branch target pool.
struct IndirectTarget {
  std::int32_t block = 0;
  std::uint64_t start_pc = 0;
};

/// Per-block successor table: everything the generator's branch path needs,
/// with successor start PCs and flat indices precomputed so taking a branch
/// is a table lookup, not a walk of the block vector.
struct BlockInfo {
  std::uint32_t first_uop = 0;  // flat index of the block's first body µop
  BranchBehaviour branch = BranchBehaviour::kStronglyTaken;
  bool indirect = false;
  std::uint16_t loop_trip = 8;      // for kLoop
  std::uint8_t pattern = 0;         // for kPeriodic
  std::uint8_t pattern_period = 4;  // for kPeriodic
  std::int32_t taken_next = 0;
  std::int32_t fallthrough_next = 0;
  std::uint64_t branch_pc = 0;
  std::uint64_t taken_start_pc = 0;
  std::uint64_t fallthrough_start_pc = 0;
  std::uint32_t indirect_begin = 0;  // range into indirect_targets()
  std::uint32_t indirect_count = 0;
};

/// The static side of a synthetic program, built deterministically from a
/// profile + seed. Immutable after construction and shareable between
/// multiple trace cursors (e.g. the SMT run and its single-thread baseline).
class SyntheticProgram {
 public:
  SyntheticProgram(const TraceProfile& profile, std::uint64_t seed);

  [[nodiscard]] const TraceProfile& profile() const noexcept {
    return profile_;
  }
  [[nodiscard]] const std::vector<BasicBlock>& blocks() const noexcept {
    return blocks_;
  }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  // --- Flattened layout (the hot generator's view) ---
  [[nodiscard]] const std::vector<FlatUop>& flat_uops() const noexcept {
    return flat_;
  }
  [[nodiscard]] const std::vector<BlockInfo>& block_info() const noexcept {
    return info_;
  }
  [[nodiscard]] const std::vector<IndirectTarget>& indirect_targets()
      const noexcept {
    return indirect_pool_;
  }

 private:
  void flatten();

  TraceProfile profile_;
  std::uint64_t seed_;
  std::vector<BasicBlock> blocks_;
  std::vector<FlatUop> flat_;
  std::vector<BlockInfo> info_;
  std::vector<IndirectTarget> indirect_pool_;
};

/// Dynamic-sampling machinery shared by the flat generator and the retained
/// block walker: RNG, producer rings, distributions, memory/branch state,
/// and the per-µop sampling routines. Both cursors call the SAME sampling
/// code in the SAME order, so their streams are bit-identical whenever the
/// cursor logic agrees — which is exactly what the differential test pins.
class SyntheticCursor {
 protected:
  SyntheticCursor(std::shared_ptr<const SyntheticProgram> program,
                  std::uint64_t seed);

  /// Bounded ring of recent same-class producers, most recent last.
  /// Push overwrites the oldest entry when full — same contents as the
  /// old append-then-erase vector, without the per-push memmove.
  class ProducerRing {
   public:
    void push(std::int16_t arch) noexcept {
      if (count_ < kCap) {
        buf_[(head_ + count_++) % kCap] = arch;
      } else {
        buf_[head_] = arch;
        head_ = (head_ + 1) % kCap;
      }
    }
    [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
    [[nodiscard]] std::size_t size() const noexcept { return count_; }
    /// `d` steps back from the most recent producer (d == 0 => newest).
    [[nodiscard]] std::int16_t from_back(std::size_t d) const noexcept {
      return buf_[(head_ + count_ - 1 - d) % kCap];
    }

   private:
    static constexpr std::size_t kCap = 64;  // recent-producer window
    std::int16_t buf_[kCap] = {};
    std::size_t head_ = 0;
    std::size_t count_ = 0;
  };

  /// Samples the dynamic fields (sources, addresses) of a body µop whose
  /// static fields (pc, cls, dst) are already set, and notes its producer.
  void sample_body(MicroOp& op, bool fp_dst);

  /// Emits the terminating branch of `block_index` into `op` (outcome,
  /// target, fallthrough) and returns the successor block.
  [[nodiscard]] int take_branch(MicroOp& op, int block_index);

  [[nodiscard]] bool evaluate_branch(const BlockInfo& info,
                                     std::uint32_t& state);
  /// Samples a same-class producer `dist` (geometric) steps back.
  [[nodiscard]] std::int16_t sample_source(RegClass cls,
                                           const GeometricDist& dist);
  /// Data-dependence distance (profile dep_geo_p).
  [[nodiscard]] std::int16_t sample_data_source(RegClass cls);
  /// Control/address source: far back, usually already computed.
  [[nodiscard]] std::int16_t sample_old_source(RegClass cls);
  [[nodiscard]] std::uint64_t sample_address(bool& out_is_chase,
                                             bool& out_is_stream);
  void note_producer(std::int16_t arch);

  std::shared_ptr<const SyntheticProgram> program_;
  Xoshiro256 rng_;

  // Per-static-branch dynamic state (loop counters, pattern phases).
  std::vector<std::uint32_t> branch_state_;

  // Recent same-class producers, most recent last (bounded ring).
  ProducerRing recent_int_;
  ProducerRing recent_fp_;

  // Hot per-µop geometric distributions (fixed p), with cached logs.
  GeometricDist dep_dist_;
  GeometricDist old_dist_;
  GeometricDist indirect_skew_dist_;

  // Profile scalars consulted per µop, cached out of the shared program.
  double two_src_prob_ = 0.0;
  double fp_store_prob_ = 0.0;

  // Memory state.
  std::uint64_t base_addr_ = 0;
  std::vector<std::uint64_t> stream_ptrs_;
  std::size_t next_stream_ = 0;
  std::uint64_t chase_addr_ = 0;
  std::int16_t last_chase_dst_ = -1;  // register carrying the chase pointer
};

/// Walks a SyntheticProgram's flattened µop array, producing the dynamic
/// µop stream. This is the hot generator behind every simulated thread.
class SyntheticTrace final : public TraceSource, private SyntheticCursor {
 public:
  SyntheticTrace(std::shared_ptr<const SyntheticProgram> program,
                 std::uint64_t seed);

  /// Convenience: builds the program internally.
  SyntheticTrace(const TraceProfile& profile, std::uint64_t seed);

  MicroOp next() override;
  void fill(MicroOp* out, int count) override;
  [[nodiscard]] const std::string& name() const override;

  [[nodiscard]] const SyntheticProgram& program() const noexcept {
    return *program_;
  }

 private:
  [[nodiscard]] MicroOp next_impl();

  // Flat-stream cursor: raw views of the program's immutable arrays plus
  // one index. `cursor_` always points at the next µop to emit.
  const FlatUop* flat_ = nullptr;
  const BlockInfo* info_ = nullptr;
  std::size_t cursor_ = 0;
};

/// The retained block-walking generator: same program, same sampling, but
/// the original (block, position) cursor chasing per-block vectors. Exists
/// solely as the differential oracle for SyntheticTrace's flat layout.
class BlockWalkTrace final : public TraceSource, private SyntheticCursor {
 public:
  BlockWalkTrace(std::shared_ptr<const SyntheticProgram> program,
                 std::uint64_t seed);
  BlockWalkTrace(const TraceProfile& profile, std::uint64_t seed);

  MicroOp next() override;
  [[nodiscard]] const std::string& name() const override;

  [[nodiscard]] const SyntheticProgram& program() const noexcept {
    return *program_;
  }

 private:
  int current_block_ = 0;
  std::size_t block_pos_ = 0;  // index into body; == body.size() => branch
};

}  // namespace clusmt::trace
