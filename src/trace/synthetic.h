// Synthetic program model and trace generator.
//
// A SyntheticProgram is a static control-flow graph of basic blocks whose
// µop skeletons are fixed (classes, destinations, branch behaviour), so the
// branch predictor and trace cache observe realistic recurring PCs and
// learnable patterns. Dynamic properties — source-operand distances and
// memory addresses — are sampled per dynamic instance from the profile's
// distributions; this is a trace generator, not an executable program, and
// the simulator consumes only dependence/address/outcome information.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "trace/profile.h"
#include "trace/trace_source.h"
#include "trace/uop.h"

namespace clusmt::trace {

/// Per-static-branch behaviour. Patterns are learnable by gshare; kRandom
/// branches mispredict ~50% and model data-dependent control flow.
enum class BranchBehaviour : std::uint8_t {
  kStronglyTaken,
  kStronglyNotTaken,
  kLoop,      // taken (trip-1) times, then not taken, repeating
  kPeriodic,  // fixed taken/not-taken pattern of period <= 8
  kRandom,
};

/// Static µop skeleton inside a basic block.
struct StaticUop {
  UopClass cls = UopClass::kIntAlu;
  std::int16_t dst = -1;  // fixed architectural destination, -1 = none
  bool fp_dst = false;    // loads: destination register file class
};

/// Static basic block: skeleton µops terminated by one branch.
struct BasicBlock {
  std::uint64_t start_pc = 0;
  std::vector<StaticUop> body;  // excludes the terminating branch
  BranchBehaviour branch = BranchBehaviour::kStronglyTaken;
  bool indirect = false;
  int loop_trip = 8;                 // for kLoop
  std::uint8_t pattern = 0b10101010; // for kPeriodic
  int pattern_period = 4;
  int taken_next = 0;      // successor block when taken
  int fallthrough_next = 0;
  std::vector<int> indirect_targets;  // successor pool for indirect branches
};

/// The static side of a synthetic program, built deterministically from a
/// profile + seed. Immutable after construction and shareable between
/// multiple trace cursors (e.g. the SMT run and its single-thread baseline).
class SyntheticProgram {
 public:
  SyntheticProgram(const TraceProfile& profile, std::uint64_t seed);

  [[nodiscard]] const TraceProfile& profile() const noexcept {
    return profile_;
  }
  [[nodiscard]] const std::vector<BasicBlock>& blocks() const noexcept {
    return blocks_;
  }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  TraceProfile profile_;
  std::uint64_t seed_;
  std::vector<BasicBlock> blocks_;
};

/// Walks a SyntheticProgram, producing the dynamic µop stream.
class SyntheticTrace final : public TraceSource {
 public:
  SyntheticTrace(std::shared_ptr<const SyntheticProgram> program,
                 std::uint64_t seed);

  /// Convenience: builds the program internally.
  SyntheticTrace(const TraceProfile& profile, std::uint64_t seed);

  MicroOp next() override;
  [[nodiscard]] const std::string& name() const override;

  [[nodiscard]] const SyntheticProgram& program() const noexcept {
    return *program_;
  }

 private:
  void refill_block();
  /// Bounded ring of recent same-class producers, most recent last.
  /// Push overwrites the oldest entry when full — same contents as the
  /// old append-then-erase vector, without the per-push memmove.
  class ProducerRing {
   public:
    void push(std::int16_t arch) noexcept {
      if (count_ < kCap) {
        buf_[(head_ + count_++) % kCap] = arch;
      } else {
        buf_[head_] = arch;
        head_ = (head_ + 1) % kCap;
      }
    }
    [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
    [[nodiscard]] std::size_t size() const noexcept { return count_; }
    /// `d` steps back from the most recent producer (d == 0 => newest).
    [[nodiscard]] std::int16_t from_back(std::size_t d) const noexcept {
      return buf_[(head_ + count_ - 1 - d) % kCap];
    }

   private:
    static constexpr std::size_t kCap = 64;  // recent-producer window
    std::int16_t buf_[kCap] = {};
    std::size_t head_ = 0;
    std::size_t count_ = 0;
  };

  [[nodiscard]] bool evaluate_branch(int block_index);
  /// Samples a same-class producer `dist` (geometric) steps back.
  [[nodiscard]] std::int16_t sample_source(RegClass cls,
                                           const GeometricDist& dist);
  /// Data-dependence distance (profile dep_geo_p).
  [[nodiscard]] std::int16_t sample_data_source(RegClass cls);
  /// Control/address source: far back, usually already computed.
  [[nodiscard]] std::int16_t sample_old_source(RegClass cls);
  [[nodiscard]] std::uint64_t sample_address(bool& out_is_chase,
                                             bool& out_is_stream);
  void note_producer(std::int16_t arch);

  std::shared_ptr<const SyntheticProgram> program_;
  Xoshiro256 rng_;

  // Dynamic cursor state.
  int current_block_ = 0;
  std::size_t block_pos_ = 0;   // index into body; == body.size() => branch
  std::uint64_t pc_ = 0;

  // Per-static-branch dynamic state (loop counters, pattern phases).
  std::vector<std::uint32_t> branch_state_;

  // Recent same-class producers, most recent last (bounded ring).
  ProducerRing recent_int_;
  ProducerRing recent_fp_;

  // Hot per-µop geometric distributions (fixed p), with cached logs.
  GeometricDist dep_dist_;
  GeometricDist old_dist_;
  GeometricDist indirect_skew_dist_;

  // Memory state.
  std::uint64_t base_addr_ = 0;
  std::vector<std::uint64_t> stream_ptrs_;
  std::size_t next_stream_ = 0;
  std::uint64_t chase_addr_ = 0;
  std::int16_t last_chase_dst_ = -1;  // register carrying the chase pointer
  bool last_load_was_chase_ = false;
};

}  // namespace clusmt::trace
