#include "trace/tape.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace clusmt::trace {

TraceTape::TraceTape(std::shared_ptr<const SyntheticProgram> program,
                     std::uint64_t seed, TapeBudget* budget,
                     std::uint64_t max_uops)
    : program_(program),
      seed_(seed),
      budget_(budget),
      recorder_(std::move(program), seed),
      max_chunks_((std::max<std::uint64_t>(max_uops, kChunkUops) +
                   kChunkUops - 1) /
                  kChunkUops),
      chunks_(new std::atomic<MicroOp*>[max_chunks_]) {
  for (std::uint64_t i = 0; i < max_chunks_; ++i) {
    chunks_[i].store(nullptr, std::memory_order_relaxed);
  }
  chunk_storage_.reserve(16);
}

TraceTape::~TraceTape() {
  if (budget_ != nullptr) {
    budget_->give_back(chunk_storage_.size() * kChunkUops * sizeof(MicroOp));
  }
}

void TraceTape::copy(std::uint64_t pos, MicroOp* out, int count) const {
  assert(pos + static_cast<std::uint64_t>(count) <= recorded());
  while (count > 0) {
    const std::uint64_t chunk = pos / kChunkUops;
    const std::uint64_t offset = pos % kChunkUops;
    const int n = static_cast<int>(
        std::min<std::uint64_t>(count, kChunkUops - offset));
    const MicroOp* src = chunks_[chunk].load(std::memory_order_relaxed);
    std::memcpy(out, src + offset, static_cast<std::size_t>(n) *
                                       sizeof(MicroOp));
    out += n;
    pos += n;
    count -= n;
  }
}

std::uint64_t TraceTape::extend_to(std::uint64_t target) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t size = recorded_.load(std::memory_order_relaxed);
  while (size < target && !frozen_.load(std::memory_order_relaxed)) {
    const std::uint64_t chunk = size / kChunkUops;
    constexpr std::uint64_t chunk_bytes = kChunkUops * sizeof(MicroOp);
    if (chunk >= max_chunks_ ||
        (budget_ != nullptr && !budget_->take(chunk_bytes))) {
      // Out of storage: freeze. recorder_ stays parked at `size`, ready to
      // be cloned by readers that need more.
      frozen_.store(true, std::memory_order_release);
      break;
    }
    auto storage = std::make_unique<MicroOp[]>(kChunkUops);
    recorder_.fill(storage.get(), static_cast<int>(kChunkUops));
    chunks_[chunk].store(storage.get(), std::memory_order_relaxed);
    chunk_storage_.push_back(std::move(storage));
    size += kChunkUops;
    // Publish after the chunk data and pointer are in place.
    recorded_.store(size, std::memory_order_release);
  }
  return size;
}

std::unique_ptr<SyntheticTrace> TraceTape::clone_recorder() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::make_unique<SyntheticTrace>(recorder_);
}

void TapeTrace::fill(MicroOp* out, int count) {
  if (live_ != nullptr) {
    live_->fill(out, count);
    return;
  }
  const std::uint64_t end = pos_ + static_cast<std::uint64_t>(count);
  std::uint64_t avail = tape_->recorded();
  if (end > avail) avail = tape_->extend_to(end);
  if (avail >= end) {
    tape_->copy(pos_, out, count);
    pos_ = end;
    return;
  }
  // The tape froze short of our demand: drain what it holds, then switch
  // this cursor to live generation from the freeze point. The clone's
  // state equals a live cursor that generated `avail` µops, so the stream
  // stays bit-identical across the seam.
  const int from_tape = static_cast<int>(avail - pos_);
  if (from_tape > 0) tape_->copy(pos_, out, from_tape);
  pos_ = avail;
  live_ = tape_->clone_recorder();
  live_->fill(out + from_tape, count - from_tape);
}

}  // namespace clusmt::trace
