// Binary trace files: persist a µop stream to disk and replay it later.
//
// The paper's methodology is trace-driven: the authors capture programs
// once and re-simulate the same stream under every scheme. The synthetic
// generator makes capture unnecessary inside this repo (streams are
// reproducible from a profile + seed), but a file format earns its keep
// for (a) interoperating with external trace producers, (b) archiving the
// exact streams behind a published experiment, and (c) the example tooling
// (examples/trace_tool.cpp).
//
// Format CLTR, version 1, little-endian, no alignment padding:
//   [8]  magic "CLTRACE\0"
//   [4]  u32 version
//   [4]  u32 name length N        [N] name bytes (UTF-8, no NUL)
//   [8]  u64 generator seed
//   [8]  u64 µop count M
//   M fixed-size records (see uop record layout in trace_io.cc)
//   [8]  u64 XOR checksum over all record words
// Loaders reject bad magic, unknown versions, truncation, oversized
// names/counts and checksum mismatches with std::runtime_error.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace_source.h"
#include "trace/uop.h"
#include "trace/workload.h"

namespace clusmt::trace {

/// In-memory image of a trace file.
struct LoadedTrace {
  std::string name;
  std::uint64_t seed = 0;
  std::vector<MicroOp> uops;

  /// Replay source (loops at the end, like every TraceSource).
  [[nodiscard]] std::unique_ptr<VectorTrace> make_source() const {
    return std::make_unique<VectorTrace>(name, uops);
  }
};

/// Writes `uops` to `path`. Throws std::runtime_error on I/O failure.
void save_trace(const std::string& path, const std::string& name,
                std::uint64_t seed, const std::vector<MicroOp>& uops);

/// Reads a trace file written by save_trace. Throws std::runtime_error on
/// malformed or truncated input.
[[nodiscard]] LoadedTrace load_trace(const std::string& path);

/// Materialises the first `count` µops of a TraceSpec's synthetic stream —
/// the capture step of the trace-driven workflow.
[[nodiscard]] std::vector<MicroOp> record_trace(const TraceSpec& spec,
                                                std::size_t count);

/// Capture + save in one step (what `trace_tool record` does).
void save_recorded_trace(const std::string& path, const TraceSpec& spec,
                         std::size_t count);

}  // namespace clusmt::trace
