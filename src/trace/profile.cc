#include "trace/profile.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/rng.h"

namespace clusmt::trace {

std::string TraceProfile::validate() const {
  std::ostringstream err;
  const double sum = mix_sum();
  if (std::abs(sum - 1.0) > 1e-6) {
    err << "instruction mix sums to " << sum << " (expected 1.0); ";
  }
  auto in01 = [&](double v, const char* what) {
    if (v < 0.0 || v > 1.0) err << what << " out of [0,1]; ";
  };
  in01(hard_branch_fraction, "hard_branch_fraction");
  in01(indirect_fraction, "indirect_fraction");
  in01(stream_fraction, "stream_fraction");
  in01(chase_fraction, "chase_fraction");
  in01(two_src_prob, "two_src_prob");
  if (dep_geo_p <= 0.0 || dep_geo_p > 1.0) err << "dep_geo_p out of (0,1]; ";
  if (avg_block_len < 2.0) err << "avg_block_len < 2; ";
  if (num_blocks < 2) err << "num_blocks < 2; ";
  if (footprint_bytes < 64) err << "footprint under one cache line; ";
  return err.str();
}

double TraceProfile::effective_fp_load_fraction() const noexcept {
  if (fp_load_fraction >= 0.0) return std::min(fp_load_fraction, 1.0);
  const double fp_compute = frac_fp_add + frac_fp_mul + frac_simd;
  const double all_compute = fp_compute + frac_int_alu + frac_int_mul;
  if (all_compute <= 0.0) return 0.0;
  return std::min(1.0, 0.9 * fp_compute / all_compute);
}

std::string_view category_name(Category c) noexcept {
  switch (c) {
    case Category::kDH: return "DH";
    case Category::kFSpec00: return "FSPEC00";
    case Category::kISpec00: return "ISPEC00";
    case Category::kMultimedia: return "multimedia";
    case Category::kOffice: return "office";
    case Category::kProductivity: return "productivity";
    case Category::kServer: return "server";
    case Category::kWorkstation: return "workstation";
    case Category::kMiscellanea: return "miscellanea";
  }
  return "?";
}

const std::vector<Category>& all_plain_categories() {
  static const std::vector<Category> kAll = {
      Category::kDH,           Category::kFSpec00,
      Category::kISpec00,      Category::kMultimedia,
      Category::kOffice,       Category::kProductivity,
      Category::kServer,       Category::kWorkstation,
      Category::kMiscellanea,
  };
  return kAll;
}

namespace {

/// Category base characteristics (ILP flavour); MEM flavour derives from it.
/// Mix values are renormalised after perturbation, so they only need to be
/// proportionally correct.
struct CategoryBase {
  double int_alu, int_mul, fp_add, fp_mul, simd, load, store;
  double avg_block_len;
  int num_blocks;
  double hard_branch;   // ILP-flavour unpredictable-branch fraction
  double indirect;
  double dep_geo_p_ilp; // ILP flavour: long dependence distances
  std::uint64_t footprint_ilp;
  double stream_ilp;
};

CategoryBase base_of(Category c) {
  switch (c) {
    case Category::kDH:  // Digital-home kernels: SIMD streaming.
      return {.int_alu = .18, .int_mul = .02, .fp_add = .05, .fp_mul = .03,
              .simd = .32, .load = .25, .store = .15, .avg_block_len = 12.0,
              .num_blocks = 48, .hard_branch = .015, .indirect = .005,
              .dep_geo_p_ilp = .020, .footprint_ilp = 24 * 1024,
              .stream_ilp = .90};
    case Category::kFSpec00:  // SPECfp2K: FP loops over arrays.
      return {.int_alu = .15, .int_mul = .02, .fp_add = .26, .fp_mul = .18,
              .simd = .04, .load = .24, .store = .11, .avg_block_len = 14.0,
              .num_blocks = 56, .hard_branch = .01, .indirect = .005,
              .dep_geo_p_ilp = .018, .footprint_ilp = 28 * 1024,
              .stream_ilp = .85};
    case Category::kISpec00:  // SPECint2K: branchy integer code.
      return {.int_alu = .46, .int_mul = .03, .fp_add = .01, .fp_mul = .01,
              .simd = .02, .load = .31, .store = .16, .avg_block_len = 6.0,
              .num_blocks = 96, .hard_branch = .05, .indirect = .015,
              .dep_geo_p_ilp = .040, .footprint_ilp = 24 * 1024,
              .stream_ilp = .55};
    case Category::kMultimedia:  // MPEG / speech: SIMD + int control.
      return {.int_alu = .26, .int_mul = .02, .fp_add = .05, .fp_mul = .04,
              .simd = .25, .load = .24, .store = .14, .avg_block_len = 9.0,
              .num_blocks = 64, .hard_branch = .025, .indirect = .010,
              .dep_geo_p_ilp = .025, .footprint_ilp = 28 * 1024,
              .stream_ilp = .80};
    case Category::kOffice:  // PowerPoint / Excel: irregular integer.
      return {.int_alu = .42, .int_mul = .02, .fp_add = .02, .fp_mul = .01,
              .simd = .04, .load = .32, .store = .17, .avg_block_len = 5.0,
              .num_blocks = 160, .hard_branch = .07, .indirect = .020,
              .dep_geo_p_ilp = .050, .footprint_ilp = 30 * 1024,
              .stream_ilp = .45};
    case Category::kProductivity:  // Sysmark2K.
      return {.int_alu = .40, .int_mul = .02, .fp_add = .03, .fp_mul = .02,
              .simd = .06, .load = .31, .store = .16, .avg_block_len = 6.0,
              .num_blocks = 144, .hard_branch = .06, .indirect = .015,
              .dep_geo_p_ilp = .045, .footprint_ilp = 28 * 1024,
              .stream_ilp = .50};
    case Category::kServer:  // TPC traces: pointer chasing, big data.
      return {.int_alu = .37, .int_mul = .02, .fp_add = .01, .fp_mul = .01,
              .simd = .02, .load = .36, .store = .21, .avg_block_len = 5.0,
              .num_blocks = 192, .hard_branch = .06, .indirect = .020,
              .dep_geo_p_ilp = .060, .footprint_ilp = 80 * 1024,
              .stream_ilp = .40};
    case Category::kWorkstation:  // CAD / rendering: FP + SIMD.
      return {.int_alu = .21, .int_mul = .02, .fp_add = .20, .fp_mul = .15,
              .simd = .11, .load = .22, .store = .09, .avg_block_len = 11.0,
              .num_blocks = 72, .hard_branch = .02, .indirect = .010,
              .dep_geo_p_ilp = .020, .footprint_ilp = 32 * 1024,
              .stream_ilp = .75};
    case Category::kMiscellanea:  // Games & matrix kernels.
      return {.int_alu = .30, .int_mul = .03, .fp_add = .10, .fp_mul = .08,
              .simd = .15, .load = .22, .store = .12, .avg_block_len = 8.0,
              .num_blocks = 88, .hard_branch = .035, .indirect = .015,
              .dep_geo_p_ilp = .025, .footprint_ilp = 28 * 1024,
              .stream_ilp = .70};
  }
  return base_of(Category::kISpec00);
}

/// Small deterministic multiplicative jitter so the N variants of a
/// category/type are distinct programs (different footprints, block counts,
/// branch behaviour) while staying in character.
double jitter(Xoshiro256& rng, double value, double rel) {
  return value * (1.0 + rel * (2.0 * rng.uniform() - 1.0));
}

}  // namespace

TraceProfile make_profile(Category category, TraceKind kind, int variant) {
  const CategoryBase base = base_of(category);
  const std::uint64_t seed =
      hash_combine(0xC1057E5EULL ^ static_cast<std::uint64_t>(category),
                   hash_combine(static_cast<std::uint64_t>(kind),
                                static_cast<std::uint64_t>(variant)));
  Xoshiro256 rng(seed);

  TraceProfile p;
  {
    std::ostringstream name;
    name << category_name(category) << '.'
         << (kind == TraceKind::kIlp ? "ilp" : "mem") << '.' << variant;
    p.name = name.str();
  }

  p.frac_int_alu = jitter(rng, base.int_alu, 0.10);
  p.frac_int_mul = jitter(rng, base.int_mul, 0.20);
  p.frac_fp_add = jitter(rng, base.fp_add, 0.15);
  p.frac_fp_mul = jitter(rng, base.fp_mul, 0.15);
  p.frac_simd = jitter(rng, base.simd, 0.15);
  p.frac_load = jitter(rng, base.load, 0.10);
  p.frac_store = jitter(rng, base.store, 0.10);

  p.avg_block_len = std::max(3.0, jitter(rng, base.avg_block_len, 0.20));
  p.num_blocks =
      std::max(8, static_cast<int>(jitter(rng, base.num_blocks, 0.25)));
  p.indirect_fraction = std::clamp(jitter(rng, base.indirect, 0.3), 0.0, 0.2);

  if (kind == TraceKind::kIlp) {
    p.dep_geo_p = std::clamp(jitter(rng, base.dep_geo_p_ilp, 0.2), 0.02, 0.5);
    p.footprint_bytes = static_cast<std::uint64_t>(
        std::max(4096.0, jitter(rng, static_cast<double>(base.footprint_ilp),
                                0.30)));
    p.stream_fraction = std::clamp(jitter(rng, base.stream_ilp, 0.1), 0.0, 1.0);
    p.chase_fraction =
        category == Category::kServer ? 0.10 : 0.0;  // TPC chases even at ILP
    p.hard_branch_fraction =
        std::clamp(jitter(rng, base.hard_branch, 0.3), 0.0, 0.5);
    p.stream_stride = 8;
  } else {
    // Memory-bounded flavour: footprint far beyond the 4 MB L2. Streams
    // sweep the whole footprint at stride 16 — one access in four starts a
    // fresh line whose previous visit was a full sweep ago, so it misses
    // L2: these independent misses are the memory-level parallelism that
    // fills the MOB and issue queues with long-latency work. Chases and
    // random accesses stay in an L2-resident hot region (serialised L2
    // pressure, not more memory misses).
    p.dep_geo_p =
        std::clamp(jitter(rng, base.dep_geo_p_ilp * 1.5, 0.2), 0.03, 0.6);
    const double mb = jitter(rng, 12.0, 0.4);  // 7-17 MB working set
    p.footprint_bytes =
        static_cast<std::uint64_t>(mb * 1024.0 * 1024.0);
    p.stream_fraction = std::clamp(jitter(rng, 0.50, 0.2), 0.25, 0.75);
    p.chase_fraction = std::clamp(jitter(rng, 0.12, 0.3), 0.06, 0.25);
    p.hard_branch_fraction =
        std::clamp(jitter(rng, base.hard_branch * 1.4, 0.3), 0.0, 0.5);
    p.frac_load *= 1.2;  // memory-bound codes are load-richer
    p.stream_stride = 16;
    p.hot_bytes = 2 * 1024 * 1024;
  }

  // Renormalise the mix to exactly 1.
  const double sum = p.mix_sum();
  p.frac_int_alu /= sum;
  p.frac_int_mul /= sum;
  p.frac_fp_add /= sum;
  p.frac_fp_mul /= sum;
  p.frac_simd /= sum;
  p.frac_load /= sum;
  p.frac_store /= sum;

  p.two_src_prob = std::clamp(jitter(rng, 0.45, 0.15), 0.0, 1.0);
  return p;
}

}  // namespace clusmt::trace
