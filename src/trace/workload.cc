#include "trace/workload.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

#include "common/rng.h"

namespace clusmt::trace {

namespace {

std::uint64_t trace_seed(std::uint64_t master, const std::string& id) {
  std::uint64_t h = master;
  for (char c : id) h = hash_combine(h, static_cast<std::uint64_t>(c));
  return h;
}

std::string workload_name(const std::string& category, const std::string& type,
                          int index, int threads = 2) {
  std::ostringstream name;
  name << category << '.' << type << '.' << threads << '.' << (index + 1);
  return name.str();
}

}  // namespace

TracePool::TracePool(std::uint64_t master_seed) {
  traces_.reserve(all_plain_categories().size() * 2 * kVariantsPerKind);
  for (Category cat : all_plain_categories()) {
    for (TraceKind kind : {TraceKind::kIlp, TraceKind::kMem}) {
      for (int v = 0; v < kVariantsPerKind; ++v) {
        TraceSpec spec;
        spec.profile = make_profile(cat, kind, v);
        spec.seed = trace_seed(master_seed, spec.profile.name);
        traces_.push_back(std::move(spec));
      }
    }
  }
}

const TraceSpec& TracePool::get(Category cat, TraceKind kind,
                                int variant) const {
  const std::size_t cat_index = static_cast<std::size_t>(cat);
  const std::size_t kind_index = static_cast<std::size_t>(kind);
  const std::size_t index =
      (cat_index * 2 + kind_index) * kVariantsPerKind +
      static_cast<std::size_t>(variant);
  if (variant < 0 || variant >= kVariantsPerKind || index >= traces_.size()) {
    throw std::out_of_range("TracePool::get: bad variant");
  }
  return traces_[index];
}

std::vector<WorkloadSpec> build_full_suite(std::uint64_t master_seed) {
  TracePool pool(master_seed);
  std::vector<WorkloadSpec> suite;
  suite.reserve(120);

  auto add = [&](const std::string& category, const std::string& type,
                 int index, const TraceSpec& a, const TraceSpec& b) {
    WorkloadSpec w;
    w.category = category;
    w.type = type;
    w.name = workload_name(category, type, index);
    w.threads = {a, b};
    suite.push_back(std::move(w));
  };

  // Plain categories: 3 ILP + 3 MEM + 2 MIX each (Table 2).
  constexpr int kIlpPairs[3][2] = {{0, 1}, {2, 3}, {1, 2}};
  for (Category cat : all_plain_categories()) {
    const std::string name{category_name(cat)};
    for (int i = 0; i < 3; ++i) {
      add(name, "ilp", i, pool.get(cat, TraceKind::kIlp, kIlpPairs[i][0]),
          pool.get(cat, TraceKind::kIlp, kIlpPairs[i][1]));
    }
    for (int i = 0; i < 3; ++i) {
      add(name, "mem", i, pool.get(cat, TraceKind::kMem, kIlpPairs[i][0]),
          pool.get(cat, TraceKind::kMem, kIlpPairs[i][1]));
    }
    for (int i = 0; i < 2; ++i) {
      add(name, "mix", i, pool.get(cat, TraceKind::kIlp, i),
          pool.get(cat, TraceKind::kMem, i));
    }
  }

  // ISPEC-FSPEC: 4 ILP + 4 MEM + 8 MIX (Figure 9's x-axis).
  const Category ispec = Category::kISpec00;
  const Category fspec = Category::kFSpec00;
  for (int k = 0; k < 4; ++k) {
    add("ISPEC-FSPEC", "ilp", k, pool.get(ispec, TraceKind::kIlp, k),
        pool.get(fspec, TraceKind::kIlp, k));
  }
  for (int k = 0; k < 4; ++k) {
    add("ISPEC-FSPEC", "mem", k, pool.get(ispec, TraceKind::kMem, k),
        pool.get(fspec, TraceKind::kMem, k));
  }
  for (int k = 0; k < 4; ++k) {
    add("ISPEC-FSPEC", "mix", k, pool.get(ispec, TraceKind::kIlp, k),
        pool.get(fspec, TraceKind::kMem, k));
  }
  for (int k = 0; k < 4; ++k) {
    add("ISPEC-FSPEC", "mix", 4 + k, pool.get(ispec, TraceKind::kMem, k),
        pool.get(fspec, TraceKind::kIlp, k));
  }

  // Cross-category mixes: 32 workloads over all plain categories.
  Xoshiro256 rng(hash_combine(master_seed, 0x3A13E5));
  const auto& cats = all_plain_categories();
  for (int i = 0; i < 32; ++i) {
    const Category cat_a = cats[rng.bounded(cats.size())];
    Category cat_b = cats[rng.bounded(cats.size())];
    while (cat_b == cat_a) cat_b = cats[rng.bounded(cats.size())];
    // Half ILP+MEM, one quarter ILP+ILP, one quarter MEM+MEM.
    TraceKind kind_a = TraceKind::kIlp;
    TraceKind kind_b = TraceKind::kMem;
    if (i % 4 == 2) kind_b = TraceKind::kIlp;
    if (i % 4 == 3) kind_a = TraceKind::kMem;
    const int va = static_cast<int>(rng.bounded(TracePool::kVariantsPerKind));
    const int vb = static_cast<int>(rng.bounded(TracePool::kVariantsPerKind));
    add("mixes", "mix", i, pool.get(cat_a, kind_a, va),
        pool.get(cat_b, kind_b, vb));
  }

  return suite;
}

std::vector<WorkloadSpec> build_smt4_suite(std::uint64_t master_seed,
                                           int mixes_count) {
  TracePool pool(master_seed);
  std::vector<WorkloadSpec> suite;

  auto add = [&](const std::string& category, const std::string& type,
                 int index, std::vector<TraceSpec> threads) {
    WorkloadSpec w;
    w.category = category;
    w.type = type;
    w.name = workload_name(category, type, index, /*threads=*/4);
    w.threads = std::move(threads);
    suite.push_back(std::move(w));
  };

  for (Category cat : all_plain_categories()) {
    const std::string name{category_name(cat)};
    add(name, "ilp", 0,
        {pool.get(cat, TraceKind::kIlp, 0), pool.get(cat, TraceKind::kIlp, 1),
         pool.get(cat, TraceKind::kIlp, 2),
         pool.get(cat, TraceKind::kIlp, 3)});
    add(name, "mem", 0,
        {pool.get(cat, TraceKind::kMem, 0), pool.get(cat, TraceKind::kMem, 1),
         pool.get(cat, TraceKind::kMem, 2),
         pool.get(cat, TraceKind::kMem, 3)});
    for (int i = 0; i < 2; ++i) {
      add(name, "mix", i,
          {pool.get(cat, TraceKind::kIlp, i),
           pool.get(cat, TraceKind::kIlp, i + 2),
           pool.get(cat, TraceKind::kMem, i),
           pool.get(cat, TraceKind::kMem, i + 2)});
    }
  }

  // ISPEC-FSPEC: two SPECint threads beside two SPECfp threads.
  const Category ispec = Category::kISpec00;
  const Category fspec = Category::kFSpec00;
  for (int k = 0; k < 2; ++k) {
    add("ISPEC-FSPEC", "mix", k,
        {pool.get(ispec, TraceKind::kIlp, k),
         pool.get(ispec, TraceKind::kMem, k),
         pool.get(fspec, TraceKind::kIlp, k),
         pool.get(fspec, TraceKind::kMem, k)});
  }

  // Cross-category mixes: four distinct categories per workload.
  Xoshiro256 rng(hash_combine(master_seed, 0x54A7D4));
  const auto& cats = all_plain_categories();
  for (int i = 0; i < mixes_count; ++i) {
    std::vector<TraceSpec> threads;
    std::vector<Category> chosen;
    while (chosen.size() < 4) {
      const Category cat = cats[rng.bounded(cats.size())];
      if (std::find(chosen.begin(), chosen.end(), cat) != chosen.end()) {
        continue;
      }
      chosen.push_back(cat);
      const TraceKind kind =
          chosen.size() % 2 == 1 ? TraceKind::kIlp : TraceKind::kMem;
      const int v = static_cast<int>(rng.bounded(TracePool::kVariantsPerKind));
      threads.push_back(pool.get(cat, kind, v));
    }
    add("mixes", "mix", i, std::move(threads));
  }

  return suite;
}

std::vector<WorkloadSpec> build_quick_suite(std::uint64_t master_seed,
                                            int per_type, int mixes_count) {
  const std::vector<WorkloadSpec> full = build_full_suite(master_seed);
  std::vector<WorkloadSpec> out;
  std::map<std::string, int> taken;  // key: category + "/" + type
  for (const WorkloadSpec& w : full) {
    const int limit = w.category == "mixes" ? mixes_count : per_type;
    int& used = taken[w.category + "/" + w.type];
    if (used < limit) {
      ++used;
      out.push_back(w);
    }
  }
  return out;
}

const std::vector<std::string>& category_display_order() {
  // Order of Figure 2's x-axis.
  static const std::vector<std::string> kOrder = {
      "DH",     "FSPEC00",      "ISPEC00", "ISPEC-FSPEC",
      "multimedia", "office",   "productivity", "server",
      "miscellanea", "workstation", "mixes",
  };
  return kOrder;
}

std::vector<WorkloadSpec> workloads_in_category(
    const std::vector<WorkloadSpec>& suite, const std::string& category) {
  std::vector<WorkloadSpec> out;
  std::copy_if(suite.begin(), suite.end(), std::back_inserter(out),
               [&](const WorkloadSpec& w) { return w.category == category; });
  return out;
}

}  // namespace clusmt::trace
