// Incremental FNV-1a content hashing. The harness uses it to derive
// RunCache keys from simulation inputs (SimConfig, trace profiles, seeds),
// so two runs hash equal exactly when every behavioural knob is equal.
// Header-only; values are canonicalised to fixed-width little-endian
// before hashing so the digest is stable across platforms.
#pragma once

#include <bit>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>

namespace clusmt {

class Fnv1a {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t kPrime = 0x00000100000001b3ull;

  /// `seed` perturbs the starting state so independent digests of the same
  /// stream (e.g. the two halves of a 128-bit key) are distinct.
  explicit constexpr Fnv1a(std::uint64_t seed = 0) noexcept
      : state_(kOffsetBasis ^ (seed * kPrime)) {}

  constexpr void add_byte(std::uint8_t b) noexcept {
    state_ = (state_ ^ b) * kPrime;
  }

  void add_bytes(const void* data, std::size_t n) noexcept {
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    for (std::size_t i = 0; i < n; ++i) add_byte(bytes[i]);
  }

  /// Integral values (including bool and enums via add_enum) hash as their
  /// 64-bit two's-complement image, so `int` and `int64_t` of equal value
  /// hash identically.
  template <std::integral T>
  constexpr void add(T v) noexcept {
    auto x = static_cast<std::uint64_t>(static_cast<std::int64_t>(v));
    for (int i = 0; i < 8; ++i) {
      add_byte(static_cast<std::uint8_t>(x & 0xFF));
      x >>= 8;
    }
  }

  /// Doubles hash by bit pattern (+0.0 and -0.0 differ; harmless for cache
  /// keying — at worst a spurious miss, never a wrong hit).
  constexpr void add(double v) noexcept {
    add(std::bit_cast<std::uint64_t>(v));
  }

  void add(std::string_view s) noexcept {
    add(s.size());  // length-prefix: "ab","c" must differ from "a","bc"
    add_bytes(s.data(), s.size());
  }
  void add(const std::string& s) noexcept { add(std::string_view(s)); }

  template <typename E>
    requires std::is_enum_v<E>
  constexpr void add_enum(E e) noexcept {
    add(static_cast<std::underlying_type_t<E>>(e));
  }

  [[nodiscard]] constexpr std::uint64_t digest() const noexcept {
    return state_;
  }

 private:
  std::uint64_t state_;
};

}  // namespace clusmt
