// Fixed-width little-endian wire primitives shared by every on-disk record
// the harness emits: RunStore cell results (harness/run_store.cc) and spool
// cell specs (harness/spool.cc). The layout is platform independent so a
// cache or spool directory can be shared across hosts of different
// endianness/word size.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>

namespace clusmt {

class ByteWriter {
 public:
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(char(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(char(v >> (8 * i)));
  }
  /// Signed values travel as their two's-complement u64 image.
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(const std::string& s) {
    u64(s.size());
    buf_.append(s);
  }
  [[nodiscard]] std::string take() && { return std::move(buf_); }
  [[nodiscard]] const std::string& bytes() const noexcept { return buf_; }

 private:
  std::string buf_;
};

/// Bounds-checked reader over an immutable byte view. Reads past the end
/// latch ok() false and return zero values; callers validate once at the
/// end (plus a checksum) instead of per field.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  std::uint32_t u32() {
    std::uint32_t v = 0;
    if (!take(4)) return 0;
    for (int i = 0; i < 4; ++i) {
      v |= std::uint32_t(std::uint8_t(data_[pos_ - 4 + i])) << (8 * i);
    }
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    if (!take(8)) return 0;
    for (int i = 0; i < 8; ++i) {
      v |= std::uint64_t(std::uint8_t(data_[pos_ - 8 + i])) << (8 * i);
    }
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint64_t n = u64();
    if (!take(n)) return {};
    return std::string(data_.substr(pos_ - n, n));
  }
  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] bool exhausted() const noexcept {
    return ok_ && pos_ == data_.size();
  }

 private:
  bool take(std::uint64_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    pos_ += static_cast<std::size_t>(n);
    return true;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace clusmt
