// Tiny command-line flag parser shared by bench binaries and examples.
// Supports --flag=value, --flag value, and boolean --flag forms.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace clusmt {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  /// Numeric getters require the flag's whole value to parse (leading
  /// whitespace aside): a malformed value like "--cycles=10k" prints a
  /// usage error and exits(2) instead of silently truncating to 10.
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  /// Comma-separated integer list ("--iq=48,16"); empty when the flag is
  /// absent. Junk tokens, empty elements ("48,,16", trailing comma),
  /// negative values and out-of-range literals are all usage errors that
  /// exit(2) — arity checks are the caller's job (the list length is
  /// context-dependent).
  [[nodiscard]] std::vector<std::int64_t> get_int_list(
      const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Non-flag positional arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace clusmt
