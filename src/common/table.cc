#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace clusmt {

std::string format_double(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

TextTable& TextTable::new_row() {
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::add_cell(std::string value) {
  if (rows_.empty()) rows_.emplace_back();
  rows_.back().push_back(std::move(value));
  return *this;
}

TextTable& TextTable::add_cell(double value, int precision) {
  return add_cell(format_double(value, precision));
}

TextTable& TextTable::add_cell(std::uint64_t value) {
  return add_cell(std::to_string(value));
}

TextTable& TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c >= widths.size()) widths.resize(c + 1, 0);
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      out << (c == 0 ? "" : "  ");
      // Left-align the first column (labels), right-align the rest (numbers).
      if (c == 0) {
        out << std::left << std::setw(static_cast<int>(widths[c])) << cell;
      } else {
        out << std::right << std::setw(static_cast<int>(widths[c])) << cell;
      }
    }
    out << "\n";
  };

  emit_row(header_);
  std::size_t rule_len = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule_len += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(rule_len, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

}  // namespace clusmt
