// Deterministic pseudo-random number generation.
//
// Every stochastic decision in the simulator and trace generator flows from
// one of these generators, seeded from a single 64-bit workload seed, so a
// simulation is bit-reproducible across runs and platforms.
#pragma once

#include <array>
#include <cstdint>

namespace clusmt {

/// SplitMix64: used to expand a single seed into generator state.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
/// Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return ~std::uint64_t{0};
  }

  result_type operator()() noexcept;

  /// Uniform in [0, bound). bound must be > 0. Uses Lemire's method.
  [[nodiscard]] std::uint64_t bounded(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Bernoulli draw with probability p (clamped to [0,1]).
  [[nodiscard]] bool chance(double p) noexcept;

  /// Geometric draw: number of failures before first success, success
  /// probability p in (0, 1]. Capped at `cap`.
  [[nodiscard]] std::uint64_t geometric(double p, std::uint64_t cap) noexcept;

  /// Derive an independent child generator (for splitting streams).
  [[nodiscard]] Xoshiro256 fork() noexcept;

 private:
  std::array<std::uint64_t, 4> s_;
};

/// Geometric sampler with a fixed success probability: caches log1p(-p) at
/// construction so each draw pays one log instead of two. sample() is
/// bit-identical to Xoshiro256::geometric(p, cap) from the same RNG state
/// (same guard conditions, same division operands), just cheaper for the
/// hot per-µop distributions whose p never changes.
class GeometricDist {
 public:
  GeometricDist() = default;
  explicit GeometricDist(double p) noexcept;

  [[nodiscard]] std::uint64_t sample(Xoshiro256& rng,
                                     std::uint64_t cap) const noexcept;

 private:
  double p_ = 0.0;
  double log1p_neg_p_ = 0.0;
};

/// Stable 64-bit hash combiner for deriving per-entity seeds
/// (e.g. per-thread, per-category) from a master seed.
[[nodiscard]] std::uint64_t hash_combine(std::uint64_t a,
                                         std::uint64_t b) noexcept;

}  // namespace clusmt
