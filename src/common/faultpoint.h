// Process-wide fault-injection registry. Every recovery path of the
// persistence/distribution stack (fsio, run_store, spool, shard,
// sweep_worker) guards its failure-prone operations with a named fault
// point; the point is compiled into ALL builds and costs one relaxed
// atomic load while nothing is armed, so production binaries carry the
// exact code paths the chaos tests exercise.
//
// Arming:
//   - environment: CLUSMT_FAULTS="<point>:<mode>[:<prob>[:<seed>[:<max_fires>
//     [:<delay_ms>]]]]" with entries separated by ',' or ';', parsed once at
//     the first fault-point use of the process. Spawned workers inherit the
//     variable, so one schedule arms a whole swarm.
//   - programmatic: arm()/arm_from_spec() from tests and the chaos harness.
//
// Modes (what a *fired* point does):
//   error    the call site returns its failure path (I/O error, spawn fail)
//   enospc   the call site emulates a full disk (partial write, then fail)
//   partial  a torn write: a prefix of the bytes lands and SUCCESS is
//            reported — the undetectable-at-write-time corruption that
//            checksummed readers must catch
//   crash    _exit(kCrashExitCode) inside maybe_fail — the process dies at
//            the point, exactly where a kill -9 or power loss would land
//   delay    sleeps delay_ms inside maybe_fail, then proceeds normally
//            (lease-expiry and straggler-stealing pressure)
//
// Firing is per-point pseudo-random: probability `prob` per evaluation,
// drawn from a deterministic stream seeded by (seed, point name, pid) — the
// pid mixing makes sibling worker processes fire at different call ordinals
// under one shared schedule. `max_fires` (0 = unlimited) retires a point
// after N fires, turning a fault transient.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace clusmt::faultpoint {

enum class Mode {
  kOff,
  kError,
  kPartial,
  kCrash,
  kDelay,
  kEnospc,
};

/// Exit status of a kCrash fire; distinguishable from real signals and
/// normal exits in worker post-mortems.
inline constexpr int kCrashExitCode = 86;

struct ArmSpec {
  Mode mode = Mode::kOff;
  double probability = 1.0;     // per-evaluation fire chance, clamped [0,1]
  std::uint64_t seed = 0;       // perturbs the per-point firing stream
  std::uint64_t max_fires = 0;  // retire after N fires; 0 = unlimited
  int delay_ms = 20;            // kDelay sleep per fire
};

/// Arms (or re-arms) `point`. Mode kOff disarms it.
void arm(std::string_view point, const ArmSpec& spec);
void arm(std::string_view point, Mode mode, double probability = 1.0,
         std::uint64_t seed = 0);

/// Removes one point / every point. disarm_all() also clears fire counters;
/// CLUSMT_FAULTS is only read once per process, so cleared env arming stays
/// cleared until re-armed explicitly (see arm_from_spec).
bool disarm(std::string_view point);
void disarm_all();

/// Parses a CLUSMT_FAULTS-style schedule and arms every entry. Returns
/// false (arming nothing further) on the first malformed entry. An empty
/// schedule is trivially true.
[[nodiscard]] bool arm_from_spec(std::string_view schedule);

/// Evaluates `point`: kOff when unarmed or the draw did not fire. kCrash
/// never returns (the process _exits); kDelay sleeps internally and then
/// reports kOff so call sites need no delay handling. kError / kEnospc /
/// kPartial are returned for the call site to interpret.
Mode maybe_fail(std::string_view point);

/// Convenience for call sites with a single failure behaviour: true when
/// any error-like mode (kError, kEnospc, kPartial) fired at `point`.
[[nodiscard]] bool inject_error(std::string_view point);

/// Fires recorded at `point` / across all points since the last
/// disarm_all() — lets tests assert a fault path was actually taken.
[[nodiscard]] std::uint64_t fires(std::string_view point);
[[nodiscard]] std::uint64_t total_fires();

/// Currently armed (non-retired) points.
[[nodiscard]] std::size_t armed_count();

/// Parses a mode name ("error", "partial", "crash", "delay", "enospc",
/// "off"); false on anything else.
[[nodiscard]] bool parse_mode(std::string_view name, Mode& out);

}  // namespace clusmt::faultpoint
