// Core scalar types and machine-wide constants shared by every subsystem.
#pragma once

#include <cstdint>

namespace clusmt {

/// Simulated clock cycle count.
using Cycle = std::uint64_t;

/// Hardware thread context index (SMT context). -1 means "no thread".
using ThreadId = int;

/// Back-end cluster index. -1 means "no cluster chosen yet".
using ClusterId = int;

/// Upper bounds used for fixed-size per-thread / per-cluster arrays.
/// The paper evaluates 2 threads on 2 clusters; the simulator accepts any
/// count up to these maxima.
inline constexpr int kMaxThreads = 4;
inline constexpr int kMaxClusters = 4;

/// Register classes: each cluster implements one physical register file per
/// class (the paper's "integer" and "floating point/SSE" files).
enum class RegClass : std::uint8_t { kInt = 0, kFp = 1 };
inline constexpr int kNumRegClasses = 2;

/// Architectural register space. Integer registers occupy
/// [0, kNumIntArchRegs); FP/SIMD registers occupy
/// [kNumIntArchRegs, kNumArchRegs). This mirrors an x86-64-like ISA
/// (16 integer registers, 32 FP/SSE registers).
inline constexpr int kNumIntArchRegs = 16;
inline constexpr int kNumFpArchRegs = 32;
inline constexpr int kNumArchRegs = kNumIntArchRegs + kNumFpArchRegs;

/// Register class of an architectural register index.
[[nodiscard]] constexpr RegClass arch_reg_class(int arch) noexcept {
  return arch < kNumIntArchRegs ? RegClass::kInt : RegClass::kFp;
}

/// True when `arch` names a real architectural register.
[[nodiscard]] constexpr bool is_valid_arch_reg(int arch) noexcept {
  return arch >= 0 && arch < kNumArchRegs;
}

}  // namespace clusmt
