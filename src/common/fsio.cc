#include "common/fsio.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>

namespace clusmt {

bool write_file_atomic(const std::string& path, std::string_view content) {
  // Unique per process *and* per call, so concurrent writers targeting the
  // same destination never share a temp file; the final rename picks a
  // last-writer-wins but always-complete version.
  static std::atomic<std::uint64_t> counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(counter.fetch_add(1));

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;

  bool ok = true;
  const char* data = content.data();
  std::size_t left = content.size();
  while (left > 0) {
    const ::ssize_t n = ::write(fd, data, left);
    if (n < 0) {
      ok = false;
      break;
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  if (ok && ::fsync(fd) != 0) ok = false;
  if (::close(fd) != 0) ok = false;
  if (ok && std::rename(tmp.c_str(), path.c_str()) != 0) ok = false;
  if (!ok) ::unlink(tmp.c_str());
  return ok;
}

}  // namespace clusmt
