#include "common/fsio.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>

#include "common/faultpoint.h"

namespace clusmt {

bool write_file_atomic(const std::string& path, std::string_view content) {
  // Fault points (inert unless armed, see common/faultpoint.h):
  //   fsio.write   error  → open fails (permission / path vanished)
  //                enospc → the disk fills mid-write: a prefix lands in the
  //                         temp file, the write fails, the temp is removed
  //                partial→ a TORN write: a prefix is renamed into place and
  //                         success is reported — the silent corruption a
  //                         non-atomic filesystem or firmware lie produces;
  //                         checksummed readers must treat it as a miss
  //                crash  → the process dies before writing anything
  //   fsio.rename  error  → the final rename fails (temp removed)
  //                crash  → the process dies between fsync and rename,
  //                         leaving a completed orphan temp file behind
  const faultpoint::Mode fault = faultpoint::maybe_fail("fsio.write");
  if (fault == faultpoint::Mode::kError) return false;

  // Unique per process *and* per call, so concurrent writers targeting the
  // same destination never share a temp file; the final rename picks a
  // last-writer-wins but always-complete version.
  static std::atomic<std::uint64_t> counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(counter.fetch_add(1));

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;

  const bool torn = fault == faultpoint::Mode::kPartial;
  const bool enospc = fault == faultpoint::Mode::kEnospc;
  bool ok = true;
  const char* data = content.data();
  std::size_t left = content.size();
  if (torn || enospc) left /= 2;  // only a prefix reaches the disk
  while (left > 0) {
    const ::ssize_t n = ::write(fd, data, left);
    if (n < 0) {
      ok = false;
      break;
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  if (enospc) ok = false;  // the kernel reported ENOSPC mid-stream
  if (ok && ::fsync(fd) != 0) ok = false;
  if (::close(fd) != 0) ok = false;
  if (ok && faultpoint::inject_error("fsio.rename")) ok = false;
  if (ok && std::rename(tmp.c_str(), path.c_str()) != 0) ok = false;
  if (!ok) ::unlink(tmp.c_str());
  // A torn write reports success: the writer believes the record landed.
  return ok;
}

}  // namespace clusmt
