// Fixed-size worker pool + parallel_for used by the experiment harness to
// fan simulations out over host cores. Simulations share no mutable state,
// so the only synchronisation is the work queue itself.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace clusmt {

class ThreadPool {
 public:
  /// threads == 0 means $CLUSMT_JOBS when set (the shard coordinator's
  /// per-process core budget), else hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Tasks must not throw; exceptions terminate.
  void submit(std::function<void()> task);

  /// Enqueue a callable and get its result (or exception) as a future.
  /// This is the form the sweep engine schedules cells with: one flat
  /// queue, completion observed per cell, no intermediate barriers.
  template <typename F, typename R = std::invoke_result_t<std::decay_t<F>>>
  [[nodiscard]] std::future<R> submit_task(F&& fn) {
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    submit([task = std::move(task)] { (*task)(); });
    return future;
  }

  /// Bulk submit: enqueues fn(i) for every i in [0, count) in one lock
  /// acquisition and returns per-index futures (exceptions propagate
  /// through the matching future).
  [[nodiscard]] std::vector<std::future<void>> submit_bulk(
      std::size_t count, std::function<void(std::size_t)> fn);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Runs fn(i) for i in [0, count) across `threads` workers (0 = all cores).
/// Blocks until completion. fn must be safe to call concurrently for
/// distinct indices.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

}  // namespace clusmt
