#include "common/csv.h"

#include <fstream>
#include <sstream>

namespace clusmt {

namespace {
std::string quote(const std::string& cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvWriter::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::to_string() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out << ',';
      out << quote(cells[i]);
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

bool CsvWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_string();
  return static_cast<bool>(out);
}

}  // namespace clusmt
