#include "common/csv.h"

#include <cstdio>
#include <sstream>

#include "common/fsio.h"

namespace clusmt {

namespace {
std::string quote(const std::string& cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
  return out;
}

/// A cell is emitted as a bare token only when it matches the strict JSON
/// number grammar -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)? — strtod
/// would also accept "inf"/"nan"/"0x1A", which are not valid JSON.
bool is_number(const std::string& cell) {
  const auto digit = [](char ch) { return ch >= '0' && ch <= '9'; };
  std::size_t i = 0;
  const std::size_t n = cell.size();
  if (i < n && cell[i] == '-') ++i;
  if (i >= n || !digit(cell[i])) return false;
  if (cell[i] == '0') {
    ++i;
  } else {
    while (i < n && digit(cell[i])) ++i;
  }
  if (i < n && cell[i] == '.') {
    ++i;
    if (i >= n || !digit(cell[i])) return false;
    while (i < n && digit(cell[i])) ++i;
  }
  if (i < n && (cell[i] == 'e' || cell[i] == 'E')) {
    ++i;
    if (i < n && (cell[i] == '+' || cell[i] == '-')) ++i;
    if (i >= n || !digit(cell[i])) return false;
    while (i < n && digit(cell[i])) ++i;
  }
  return i == n;
}
}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvWriter::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::to_string() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out << ',';
      out << quote(cells[i]);
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string CsvWriter::to_json() const {
  std::ostringstream out;
  out << "[\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out << "  {";
    const auto& row = rows_[r];
    // Every header key appears in every object (the stable-column
    // contract); a short row pads its missing trailing cells with null
    // instead of silently dropping the keys.
    for (std::size_t c = 0; c < header_.size(); ++c) {
      if (c) out << ", ";
      out << json_escape(header_[c]) << ": ";
      if (c >= row.size()) {
        out << "null";
      } else {
        out << (is_number(row[c]) ? row[c] : json_escape(row[c]));
      }
    }
    out << (r + 1 < rows_.size() ? "},\n" : "}\n");
  }
  out << "]\n";
  return out.str();
}

bool CsvWriter::write_file(const std::string& path) const {
  return write_file_atomic(path, to_string());
}

bool CsvWriter::write_json_file(const std::string& path) const {
  return write_file_atomic(path, to_json());
}

}  // namespace clusmt
