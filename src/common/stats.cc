#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace clusmt {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

bool GeomeanStats::add(double x) noexcept {
  if (!(x > 0.0)) return false;
  log_sum_ += std::log(x);
  ++n_;
  return true;
}

double GeomeanStats::geomean() const noexcept {
  return n_ ? std::exp(log_sum_ / static_cast<double>(n_)) : 0.0;
}

double mean_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double geomean_of(std::span<const double> xs) noexcept {
  GeomeanStats g;
  for (double x : xs) g.add(x);
  return g.geomean();
}

double harmonic_mean_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double inv_sum = 0.0;
  for (double x : xs) {
    if (!(x > 0.0)) return 0.0;
    inv_sum += 1.0 / x;
  }
  return static_cast<double>(xs.size()) / inv_sum;
}

}  // namespace clusmt
