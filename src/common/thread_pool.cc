#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

namespace clusmt {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    // $CLUSMT_JOBS caps the "all cores" default: the shard coordinator
    // exports it when it divides the host among several spawned worker
    // processes, so a worker's pools never oversubscribe the machine with
    // hardware_concurrency threads each.
    if (const char* env = std::getenv("CLUSMT_JOBS")) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(env, &end, 10);
      if (end != env && *end == '\0' && v > 0) {
        threads = static_cast<std::size_t>(v);
      }
    }
  }
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

std::vector<std::future<void>> ThreadPool::submit_bulk(
    std::size_t count, std::function<void(std::size_t)> fn) {
  auto shared_fn =
      std::make_shared<std::function<void(std::size_t)>>(std::move(fn));
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  {
    std::lock_guard lock(mutex_);
    for (std::size_t i = 0; i < count; ++i) {
      auto task = std::make_shared<std::packaged_task<void()>>(
          [shared_fn, i] { (*shared_fn)(i); });
      futures.push_back(task->get_future());
      queue_.push([task = std::move(task)] { (*task)(); });
      ++in_flight_;
    }
  }
  cv_task_.notify_all();
  return futures;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  std::size_t threads) {
  if (count == 0) return;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, count);
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        fn(i);
      }
    });
  }
  for (auto& worker : workers) worker.join();
}

}  // namespace clusmt
