#include "common/rng.h"

#include <cmath>

namespace clusmt {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::bounded(std::uint64_t bound) noexcept {
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::uniform() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Xoshiro256::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::uint64_t Xoshiro256::geometric(double p, std::uint64_t cap) noexcept {
  if (p >= 1.0) return 0;
  if (p <= 0.0) return cap;
  // Inverse transform sampling: floor(log(u) / log(1-p)).
  const double u = uniform();
  const double draw = std::log1p(-u) / std::log1p(-p);
  if (!(draw >= 0.0) || draw >= static_cast<double>(cap)) return cap;
  return static_cast<std::uint64_t>(draw);
}

Xoshiro256 Xoshiro256::fork() noexcept { return Xoshiro256((*this)()); }

GeometricDist::GeometricDist(double p) noexcept
    : p_(p),
      log1p_neg_p_(p > 0.0 && p < 1.0 ? std::log1p(-p) : 0.0) {}

std::uint64_t GeometricDist::sample(Xoshiro256& rng,
                                    std::uint64_t cap) const noexcept {
  if (p_ >= 1.0) return 0;
  if (p_ <= 0.0) return cap;
  const double u = rng.uniform();
  const double draw = std::log1p(-u) / log1p_neg_p_;
  if (!(draw >= 0.0) || draw >= static_cast<double>(cap)) return cap;
  return static_cast<std::uint64_t>(draw);
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t state = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return splitmix64(state);
}

}  // namespace clusmt
