// Bounded exponential backoff with deterministic jitter, shared by every
// retry loop that talks to flaky external state (worker respawns in
// harness/shard.cc, spool claim polling). Immediate-retry loops turn a
// transient failure — a spawn hitting a pid limit, a worker crash-looping
// on one bad cell — into a storm that starves the very resource that
// failed; this ramp spaces retries out exponentially and jitters them so a
// fleet of coordinators sharing a filesystem never retries in lock-step.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>

#include "common/rng.h"

namespace clusmt {

struct BackoffOptions {
  std::chrono::milliseconds initial{50};
  std::chrono::milliseconds max{5000};
  double multiplier = 2.0;
  /// Symmetric jitter fraction: a delay of D is drawn uniformly from
  /// [D*(1-jitter), D*(1+jitter)] (then clamped to [initial/2, max]).
  double jitter = 0.5;
};

class Backoff {
 public:
  using Options = BackoffOptions;

  explicit Backoff(Options options = {}, std::uint64_t seed = 1) noexcept
      : options_(options),
        rng_(seed),
        current_ms_(static_cast<double>(options.initial.count())) {}

  /// The next delay to sleep: the current (jittered) backoff, after which
  /// the un-jittered base advances by `multiplier` up to `max`.
  [[nodiscard]] std::chrono::milliseconds next() noexcept {
    const double base = current_ms_;
    current_ms_ = std::min(current_ms_ * options_.multiplier,
                           static_cast<double>(options_.max.count()));
    ++retries_;
    const double spread =
        base * options_.jitter * (2.0 * rng_.uniform() - 1.0);
    const double lo = static_cast<double>(options_.initial.count()) / 2.0;
    const double hi = static_cast<double>(options_.max.count());
    const double jittered = std::clamp(base + spread, lo, hi);
    return std::chrono::milliseconds(static_cast<std::int64_t>(jittered));
  }

  /// Back to the initial delay — call after a success so the next failure
  /// burst starts gentle again.
  void reset() noexcept {
    current_ms_ = static_cast<double>(options_.initial.count());
    retries_ = 0;
  }

  /// next() calls since construction or the last reset().
  [[nodiscard]] int retries() const noexcept { return retries_; }

 private:
  Options options_;
  Xoshiro256 rng_;
  double current_ms_;
  int retries_ = 0;
};

}  // namespace clusmt
