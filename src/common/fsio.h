// Durable file writes shared by every on-disk artifact the project emits
// (RunStore cell records, CSV/JSON tables). A plain ofstream left a
// truncated file when the process died mid-write; readers — the golden
// regression gate, a second process sharing a run cache — would then see a
// partial document and misreport it as a regression or corruption.
#pragma once

#include <string>
#include <string_view>

namespace clusmt {

/// Writes `content` to `path` atomically: the bytes go to a uniquely named
/// temporary file in the same directory, are fsync'd, and the temp file is
/// renamed over `path`. Readers therefore observe either the old file or
/// the complete new one, never a prefix. Returns false (and removes the
/// temp file) on any I/O failure; the previous `path` contents survive.
///
/// Carries the `fsio.write` / `fsio.rename` fault points
/// (common/faultpoint.h): open/rename failure, ENOSPC mid-write, a torn
/// write that reports success, and crashes before the write or between
/// fsync and rename are all injectable for recovery testing.
[[nodiscard]] bool write_file_atomic(const std::string& path,
                                     std::string_view content);

}  // namespace clusmt
