#include "common/faultpoint.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

#include "common/hash.h"
#include "common/rng.h"

namespace clusmt::faultpoint {

namespace {

struct Point {
  ArmSpec spec;
  Xoshiro256 rng;
  std::uint64_t fired = 0;
  bool retired = false;  // max_fires reached: stays for counters, never fires
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, Point, std::less<>> points;
  // Lock-free inert-path guard: maybe_fail returns immediately while zero
  // points are armed, so the hot paths of production runs pay one relaxed
  // load per fault point.
  std::atomic<std::size_t> armed{0};
};

Registry& registry() {
  static Registry r;
  return r;
}

/// Firing streams are independent per (seed, point, process): the pid mix
/// makes sibling workers sharing one CLUSMT_FAULTS schedule fire at
/// different call ordinals instead of in lock-step.
Xoshiro256 stream_for(std::string_view point, std::uint64_t seed) {
  Fnv1a h;
  h.add(point);
  return Xoshiro256(hash_combine(hash_combine(seed, h.digest()),
                                 static_cast<std::uint64_t>(::getpid())));
}

// The env parse must go through these _impl entry points, never the public
// arm()/arm_from_spec(): those call ensure_env_armed() first, and
// re-entering the call_once from inside its own callable deadlocks.
void arm_impl(std::string_view point, const ArmSpec& spec);
bool arm_from_spec_impl(std::string_view schedule);

void ensure_env_armed() {
  static std::once_flag once;
  std::call_once(once, [] {
    if (const char* env = std::getenv("CLUSMT_FAULTS")) {
      if (!arm_from_spec_impl(env)) {
        std::fprintf(stderr,
                     "warning: malformed CLUSMT_FAULTS entry ignored "
                     "(format: point:mode[:prob[:seed[:max_fires"
                     "[:delay_ms]]]])\n");
      }
    }
  });
}

void recount_armed_locked(Registry& r) {
  std::size_t n = 0;
  for (const auto& [_, p] : r.points) {
    if (p.spec.mode != Mode::kOff && !p.retired) ++n;
  }
  r.armed.store(n, std::memory_order_relaxed);
}

}  // namespace

bool parse_mode(std::string_view name, Mode& out) {
  if (name == "off") return out = Mode::kOff, true;
  if (name == "error") return out = Mode::kError, true;
  if (name == "partial") return out = Mode::kPartial, true;
  if (name == "crash") return out = Mode::kCrash, true;
  if (name == "delay") return out = Mode::kDelay, true;
  if (name == "enospc") return out = Mode::kEnospc, true;
  return false;
}

namespace {

void arm_impl(std::string_view point, const ArmSpec& spec) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  Point& p = r.points[std::string(point)];
  p.spec = spec;
  p.spec.probability = std::min(1.0, std::max(0.0, spec.probability));
  p.rng = stream_for(point, spec.seed);
  p.retired = false;
  recount_armed_locked(r);
}

}  // namespace

void arm(std::string_view point, const ArmSpec& spec) {
  ensure_env_armed();
  arm_impl(point, spec);
}

void arm(std::string_view point, Mode mode, double probability,
         std::uint64_t seed) {
  arm(point, ArmSpec{.mode = mode, .probability = probability, .seed = seed});
}

bool disarm(std::string_view point) {
  ensure_env_armed();
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  const auto it = r.points.find(point);
  if (it == r.points.end()) return false;
  r.points.erase(it);
  recount_armed_locked(r);
  return true;
}

void disarm_all() {
  ensure_env_armed();
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  r.points.clear();
  r.armed.store(0, std::memory_order_relaxed);
}

namespace {

bool arm_from_spec_impl(std::string_view schedule) {
  // Entries split on ',' or ';', fields on ':'. Trailing fields optional;
  // whitespace around entries and fields is tolerated (env values get
  // formatted by humans and CI YAML).
  const auto trim = [](std::string_view s) {
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
      s.remove_prefix(1);
    }
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
      s.remove_suffix(1);
    }
    return s;
  };
  std::size_t begin = 0;
  while (begin <= schedule.size()) {
    std::size_t end = schedule.find_first_of(",;", begin);
    if (end == std::string_view::npos) end = schedule.size();
    const std::string_view entry = trim(schedule.substr(begin, end - begin));
    begin = end + 1;
    if (entry.empty()) {
      if (end == schedule.size()) break;
      continue;
    }

    std::string_view fields[6];
    std::size_t count = 0;
    std::size_t from = 0;
    while (count < 6) {
      const std::size_t colon = entry.find(':', from);
      if (colon == std::string_view::npos) {
        fields[count++] = trim(entry.substr(from));
        break;
      }
      fields[count++] = trim(entry.substr(from, colon - from));
      from = colon + 1;
    }
    if (count < 2 || fields[0].empty()) return false;

    ArmSpec spec;
    if (!parse_mode(fields[1], spec.mode)) return false;
    const auto number = [](std::string_view s, double& out) {
      char* rest = nullptr;
      const std::string owned(s);
      out = std::strtod(owned.c_str(), &rest);
      return rest != nullptr && *rest == '\0' && !owned.empty();
    };
    double value = 0;
    if (count > 2) {
      if (!number(fields[2], value)) return false;
      spec.probability = value;
    }
    if (count > 3) {
      if (!number(fields[3], value) || value < 0) return false;
      spec.seed = static_cast<std::uint64_t>(value);
    }
    if (count > 4) {
      if (!number(fields[4], value) || value < 0) return false;
      spec.max_fires = static_cast<std::uint64_t>(value);
    }
    if (count > 5) {
      if (!number(fields[5], value) || value < 0) return false;
      spec.delay_ms = static_cast<int>(value);
    }
    arm_impl(fields[0], spec);
    if (end == schedule.size()) break;
  }
  return true;
}

}  // namespace

bool arm_from_spec(std::string_view schedule) {
  ensure_env_armed();
  return arm_from_spec_impl(schedule);
}

Mode maybe_fail(std::string_view point) {
  ensure_env_armed();
  Registry& r = registry();
  if (r.armed.load(std::memory_order_relaxed) == 0) return Mode::kOff;

  Mode fired = Mode::kOff;
  int delay_ms = 0;
  {
    std::lock_guard lock(r.mutex);
    const auto it = r.points.find(point);
    if (it == r.points.end()) return Mode::kOff;
    Point& p = it->second;
    if (p.spec.mode == Mode::kOff || p.retired) return Mode::kOff;
    if (!p.rng.chance(p.spec.probability)) return Mode::kOff;
    ++p.fired;
    if (p.spec.max_fires != 0 && p.fired >= p.spec.max_fires) {
      p.retired = true;
      recount_armed_locked(r);
    }
    fired = p.spec.mode;
    delay_ms = p.spec.delay_ms;
  }
  if (fired == Mode::kCrash) {
    // The whole process dies here, as a power cut or kill -9 would land at
    // this exact point: no destructors, no atexit, no flushing.
    ::_exit(kCrashExitCode);
  }
  if (fired == Mode::kDelay) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    return Mode::kOff;
  }
  return fired;
}

bool inject_error(std::string_view point) {
  const Mode mode = maybe_fail(point);
  return mode == Mode::kError || mode == Mode::kEnospc ||
         mode == Mode::kPartial;
}

std::uint64_t fires(std::string_view point) {
  ensure_env_armed();
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  const auto it = r.points.find(point);
  return it == r.points.end() ? 0 : it->second.fired;
}

std::uint64_t total_fires() {
  ensure_env_armed();
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  std::uint64_t total = 0;
  for (const auto& [_, p] : r.points) total += p.fired;
  return total;
}

std::size_t armed_count() {
  ensure_env_armed();
  return registry().armed.load(std::memory_order_relaxed);
}

}  // namespace clusmt::faultpoint
