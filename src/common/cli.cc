#include "common/cli.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace clusmt {

namespace {

/// A malformed flag value is a fatal usage error: silently truncating
/// "--cycles=10k" to 10 cycles (what a bare strtoll did) produces a
/// plausible-looking table from the wrong experiment.
[[noreturn]] void die_bad_value(const std::string& name,
                                const std::string& value,
                                const char* expected) {
  std::fprintf(stderr, "error: --%s expects %s, got '%s'\n", name.c_str(),
               expected, value.c_str());
  std::exit(2);
}

}  // namespace

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // --flag value (when next token is not itself a flag), else boolean.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::string CliArgs::get_string(const std::string& name,
                                const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const char* begin = it->second.c_str();
  char* end = nullptr;
  errno = 0;
  const std::int64_t value = std::strtoll(begin, &end, 10);
  // The whole token must parse: "10k", "", and a bare boolean "--cycles"
  // (value "true") are errors, not 10/0 — as is an out-of-range literal.
  if (end == begin || *end != '\0' || errno == ERANGE) {
    die_bad_value(name, it->second, "an integer");
  }
  return value;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const char* begin = it->second.c_str();
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(begin, &end);
  if (end == begin || *end != '\0' || errno == ERANGE) {
    die_bad_value(name, it->second, "a number");
  }
  return value;
}

std::vector<std::int64_t> CliArgs::get_int_list(
    const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return {};
  std::vector<std::int64_t> values;
  const std::string& text = it->second;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = text.find(',', start);
    const std::string token = text.substr(
        start, comma == std::string::npos ? std::string::npos
                                          : comma - start);
    const char* begin = token.c_str();
    char* end = nullptr;
    errno = 0;
    const std::int64_t value = std::strtoll(begin, &end, 10);
    if (end == begin || *end != '\0' || errno == ERANGE) {
      die_bad_value(name, text, "a comma-separated list of integers");
    }
    if (value < 0) {
      die_bad_value(name, text,
                    "a comma-separated list of non-negative integers");
    }
    values.push_back(value);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return values;
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second != "false" && it->second != "0" && it->second != "no";
}

}  // namespace clusmt
