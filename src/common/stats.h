// Online statistics accumulators used by the simulator's counters and the
// experiment harness (per-category averages, geometric means of speedups).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace clusmt {

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Geometric mean accumulator (the conventional way to average speedups).
/// Non-positive samples are rejected (returns false from add).
class GeomeanStats {
 public:
  bool add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double geomean() const noexcept;

 private:
  std::size_t n_ = 0;
  double log_sum_ = 0.0;
};

/// Arithmetic mean of a span; 0 for an empty span.
[[nodiscard]] double mean_of(std::span<const double> xs) noexcept;

/// Geometric mean of a span of positive values; 0 for an empty span.
[[nodiscard]] double geomean_of(std::span<const double> xs) noexcept;

/// Harmonic mean of a span of positive values; 0 for an empty span.
[[nodiscard]] double harmonic_mean_of(std::span<const double> xs) noexcept;

/// Ratio helper that tolerates zero denominators (returns 0).
[[nodiscard]] constexpr double safe_ratio(double num, double den) noexcept {
  return den == 0.0 ? 0.0 : num / den;
}

}  // namespace clusmt
