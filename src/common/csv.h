// Minimal CSV/JSON table writer; every bench binary mirrors its text table
// into a CSV (and optionally JSON) file so results can be re-plotted.
#pragma once

#include <string>
#include <vector>

namespace clusmt {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Serialises the full document (header + rows), RFC-4180 quoting.
  [[nodiscard]] std::string to_string() const;

  /// Serialises the rows as a JSON array of objects. Keys follow header
  /// order (stable column order) and every object carries every header key:
  /// a row shorter than the header pads the missing trailing columns with
  /// null. Cells that match the strict JSON number grammar are emitted
  /// unquoted, everything else ("nan", "inf", "12%") as JSON strings.
  [[nodiscard]] std::string to_json() const;

  /// Writes the CSV atomically (write-temp-then-rename via
  /// common/fsio.h): on failure the previous file survives untouched, and
  /// a killed process never leaves a truncated document behind.
  bool write_file(const std::string& path) const;

  /// Writes the to_json() document, with the same atomicity guarantee.
  bool write_json_file(const std::string& path) const;

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace clusmt
