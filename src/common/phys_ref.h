// Reference to a physical register: (cluster, register file class, index).
// Used across renaming, issue queues and the interconnect.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace clusmt {

struct PhysRef {
  std::int8_t cluster = -1;
  RegClass cls = RegClass::kInt;
  std::int16_t index = -1;

  [[nodiscard]] constexpr bool valid() const noexcept { return index >= 0; }

  friend constexpr bool operator==(const PhysRef&, const PhysRef&) = default;
};

inline constexpr PhysRef kNoPhysRef{};

}  // namespace clusmt
