// Aligned plain-text table emitter. The benchmark harness uses it to print
// the per-figure result tables in the same row/series layout as the paper.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace clusmt {

/// Column-aligned text table. Cells are strings; numeric helpers format with
/// fixed precision. Rows may be added incrementally; rendering computes
/// column widths over the full contents.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Starts a new row. Subsequent add_cell calls append to it.
  TextTable& new_row();
  TextTable& add_cell(std::string value);
  TextTable& add_cell(double value, int precision = 3);
  TextTable& add_cell(std::uint64_t value);

  /// Convenience: append a full row at once.
  TextTable& add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helper: fixed-precision double as string.
[[nodiscard]] std::string format_double(double value, int precision = 3);

}  // namespace clusmt
