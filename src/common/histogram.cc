#include "common/histogram.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace clusmt {

Histogram::Histogram(std::size_t num_buckets) : counts_(num_buckets, 0) {
  if (num_buckets == 0) {
    throw std::invalid_argument("Histogram needs at least one bucket");
  }
}

void Histogram::add(std::uint64_t value, std::uint64_t weight) noexcept {
  const std::size_t bucket =
      std::min<std::uint64_t>(value, counts_.size() - 1);
  counts_[bucket] += weight;
  total_ += weight;
  weighted_sum_ += value * weight;
}

void Histogram::merge(const Histogram& other) {
  if (other.counts_.size() != counts_.size()) {
    throw std::invalid_argument("Histogram::merge: bucket count mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
  weighted_sum_ += other.weighted_sum_;
}

void Histogram::reset() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
  weighted_sum_ = 0;
}

std::uint64_t Histogram::count(std::size_t bucket) const {
  return counts_.at(bucket);
}

double Histogram::mean() const noexcept {
  return total_ == 0 ? 0.0
                     : static_cast<double>(weighted_sum_) /
                           static_cast<double>(total_);
}

std::size_t Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0;
  const double target = q * static_cast<double>(total_);
  double running = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    running += static_cast<double>(counts_[i]);
    if (running >= target) return i;
  }
  return counts_.size() - 1;
}

double Histogram::fraction(std::size_t bucket) const {
  return total_ == 0 ? 0.0
                     : static_cast<double>(counts_.at(bucket)) /
                           static_cast<double>(total_);
}

std::string Histogram::to_string(int max_rows) const {
  std::ostringstream out;
  const std::size_t rows =
      std::min<std::size_t>(counts_.size(), static_cast<std::size_t>(max_rows));
  for (std::size_t i = 0; i < rows; ++i) {
    out << i << ": " << counts_[i] << "\n";
  }
  if (rows < counts_.size()) out << "... (" << counts_.size() - rows
                                 << " more buckets)\n";
  return out.str();
}

}  // namespace clusmt
