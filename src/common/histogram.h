// Fixed-bucket integer histogram used for occupancy and latency profiles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace clusmt {

/// Histogram over the integer range [0, num_buckets); samples beyond the
/// last bucket are clamped into it (the "overflow" bucket).
class Histogram {
 public:
  explicit Histogram(std::size_t num_buckets);

  void add(std::uint64_t value, std::uint64_t weight = 1) noexcept;
  void merge(const Histogram& other);
  void reset() noexcept;

  [[nodiscard]] std::size_t num_buckets() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::uint64_t count(std::size_t bucket) const;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double mean() const noexcept;
  /// Smallest bucket b such that at least `q` (0..1) of the mass is <= b.
  [[nodiscard]] std::size_t quantile(double q) const noexcept;
  /// Fraction of mass in `bucket`; 0 when empty.
  [[nodiscard]] double fraction(std::size_t bucket) const;

  [[nodiscard]] std::string to_string(int max_rows = 16) const;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t weighted_sum_ = 0;
};

}  // namespace clusmt
