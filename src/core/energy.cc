#include "core/energy.h"

namespace clusmt::core {

namespace {

/// Linear size scaling around the calibration point; unbounded resources
/// (capacity 0) charge the baseline cost.
[[nodiscard]] double scale(int configured, int baseline) {
  if (configured <= 0) return 1.0;
  return static_cast<double>(configured) / static_cast<double>(baseline);
}

}  // namespace

EnergyBreakdown estimate_energy(const SimStats& stats,
                                const SimConfig& config,
                                const EnergyParams& params) {
  EnergyBreakdown out;

  const double iq_scale = scale(config.iq_entries, params.baseline_iq_entries);
  // Both classes contribute; use the mean of their scales.
  const double rf_scale =
      (scale(config.int_regs, params.baseline_regs_per_cluster) +
       scale(config.fp_regs, params.baseline_regs_per_cluster)) /
      2.0;

  const auto renamed = static_cast<double>(stats.renamed_uops);
  const auto copies = static_cast<double>(stats.copies_created);
  const auto issued = static_cast<double>(stats.issued_uops);
  const auto squashed = static_cast<double>(stats.squashed_uops);

  // Every renamed µop (useful or wrong-path) paid fetch/decode/rename;
  // copies are injected at rename and skip fetch/decode.
  out.front_end = renamed * (params.fetch_decode + params.rename) +
                  copies * params.rename;

  // Dispatch inserts µop + its copies; each issue pays the CAM broadcast.
  out.issue_queue = (renamed + copies) * params.iq_dispatch * iq_scale +
                    issued * params.iq_issue * iq_scale;

  out.register_file =
      issued * params.avg_sources_per_uop * params.rf_read * rf_scale +
      issued * params.rf_write * rf_scale;

  out.execution = issued * (params.execute + params.bypass);

  // L1 sees every committed load and store; L2 only load misses into it
  // (committed stores retire through the write ports and mostly hit L1 in
  // this machine); DRAM sees the L2 misses the stats expose.
  const auto loads = static_cast<double>(stats.committed_loads);
  const auto stores = static_cast<double>(stats.committed_stores);
  const auto l2_misses = static_cast<double>(stats.load_l2_misses +
                                             stats.store_l2_misses);
  out.memory = (loads + stores) * params.l1_access +
               loads * 0.1 * params.l2_access +  // L1 load-miss traffic
               l2_misses * params.memory_access;

  out.interconnect = copies * params.link_transfer;

  // Squashed work re-pays its front-end and dispatch energy when
  // re-fetched; charge it once more as waste so schemes that flush
  // aggressively (Flush+) see their recovery cost.
  out.wasted = squashed * (params.fetch_decode + params.rename +
                           params.iq_dispatch * iq_scale);

  out.static_clock = static_cast<double>(stats.cycles) *
                     params.static_per_cluster * config.num_clusters *
                     (iq_scale + rf_scale) / 2.0;

  return out;
}

}  // namespace clusmt::core
