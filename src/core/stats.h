// Simulation counters. Every figure of the paper's evaluation reads one or
// more of these:
//   Figure 2/6/9 — committed useful µops (throughput),
//   Figure 3     — committed copies per retired µop,
//   Figure 4     — preferred-cluster issue-queue stall events,
//   Figure 5     — workload-imbalance event breakdown,
//   Figure 10    — per-thread IPCs (fairness vs single-thread baselines).
#pragma once

#include <cstdint>

#include "common/stats.h"
#include "common/types.h"
#include "trace/uop.h"

namespace clusmt::core {

struct SimStats {
  Cycle cycles = 0;

  // Commit.
  std::uint64_t committed[kMaxThreads] = {};  // useful µops (copies excluded)
  std::uint64_t committed_copies = 0;
  std::uint64_t committed_branches = 0;
  std::uint64_t committed_loads = 0;
  std::uint64_t committed_stores = 0;

  // Rename / dispatch.
  std::uint64_t renamed_uops = 0;
  std::uint64_t copies_created = 0;
  std::uint64_t rename_cycles = 0;          // cycles with >=1 rename
  std::uint64_t rename_blocked_cycles = 0;  // selected thread fully blocked
  std::uint64_t rename_block_iq = 0;
  std::uint64_t rename_block_rf = 0;
  std::uint64_t rename_block_rob = 0;
  std::uint64_t rename_block_mob = 0;

  /// Figure 4: µop could not be placed in its *preferred* cluster because
  /// that cluster's IQ was full or the policy cap was reached (whether the
  /// µop was then re-steered or renaming blocked).
  std::uint64_t iq_pref_stall_events = 0;
  std::uint64_t non_preferred_dispatches = 0;

  // Issue / execute.
  std::uint64_t issued_uops = 0;
  std::uint64_t cycles_with_issue = 0;
  /// Figure 5: [could_run_in_other_cluster][port class] event counts.
  std::uint64_t imbalance_events[2][trace::kNumPortClasses] = {};

  // Squash & control.
  std::uint64_t squashed_uops = 0;
  std::uint64_t branches_resolved = 0;
  std::uint64_t mispredicts_resolved = 0;
  std::uint64_t policy_flushes = 0;

  // Memory.
  std::uint64_t load_l2_misses = 0;
  std::uint64_t store_l2_misses = 0;
  std::uint64_t load_forwards = 0;

  [[nodiscard]] std::uint64_t committed_total() const noexcept {
    std::uint64_t total = 0;
    for (auto c : committed) total += c;
    return total;
  }

  /// Useful committed µops per cycle (the paper's throughput metric;
  /// copies are overhead, not useful work).
  [[nodiscard]] double throughput() const noexcept {
    return safe_ratio(static_cast<double>(committed_total()),
                      static_cast<double>(cycles));
  }

  [[nodiscard]] double ipc(ThreadId tid) const noexcept {
    return safe_ratio(static_cast<double>(committed[tid]),
                      static_cast<double>(cycles));
  }

  /// Figure 3 metric.
  [[nodiscard]] double copies_per_retired() const noexcept {
    return safe_ratio(static_cast<double>(committed_copies),
                      static_cast<double>(committed_total()));
  }

  /// Figure 4 metric.
  [[nodiscard]] double iq_stalls_per_retired() const noexcept {
    return safe_ratio(static_cast<double>(iq_pref_stall_events),
                      static_cast<double>(committed_total()));
  }
};

}  // namespace clusmt::core
