// Activity-based energy accounting.
//
// The paper motivates clustering with power and thermal budgets (§1) but
// never quantifies them; this extension closes that loop. Energy is
// estimated from the simulator's event counters with per-event costs in
// the style of Wattch-class models: each structure has a nominal per-event
// energy at the Table 1 baseline size, scaled linearly with the
// configured size where the dominant CMOS cost grows with entries or
// capacity (issue-queue CAM broadcast, register-file bitlines). Absolute
// joules are not meaningful — the paper's testbed is not reproducible —
// but *relative* energy between schemes on the same configuration is
// exactly what a resource-assignment study needs: squashes (Flush+) burn
// re-fetched work, copies (CSSP) burn link and register-file energy, and
// private clusters save both while losing throughput.
//
// All estimates derive from SimStats alone; documented approximations:
//   * register reads per issued µop ~ kAvgSourcesPerUop (operands are not
//     individually counted by the core),
//   * wrong-path work is charged front-end + dispatch energy via
//     squashed_uops (it never issues),
//   * clock/leakage is a per-cycle static charge proportional to the
//     machine's aggregate structure sizes.
#pragma once

#include "core/config.h"
#include "core/stats.h"

namespace clusmt::core {

/// Per-event energies (picojoules at the Table 1 baseline sizes) and
/// static power (picojoules per cycle). Defaults follow the relative
/// magnitudes of Wattch-class models: register-file and issue-queue
/// accesses dominate per-µop dynamic energy; L2 and memory events are
/// rare but two orders costlier.
struct EnergyParams {
  // Front end, per µop.
  double fetch_decode = 6.0;
  double rename = 4.0;

  // Back end, per event, at baseline sizes (32-entry IQ, 64-reg files).
  double iq_dispatch = 3.0;   // insert + tag write
  double iq_issue = 8.0;      // wakeup broadcast + select, scales w/ entries
  double rf_read = 2.5;       // per operand, scales with registers/cluster
  double rf_write = 3.5;      // per result, scales with registers/cluster
  double execute = 10.0;      // average functional-unit op
  double bypass = 1.5;        // result broadcast

  // Memory hierarchy, per access.
  double l1_access = 12.0;
  double l2_access = 120.0;
  double memory_access = 1200.0;

  // Inter-cluster communication, per copy µop.
  double link_transfer = 9.0;

  // Static/clock charge per cycle per cluster at baseline sizes.
  double static_per_cluster = 20.0;

  /// Reference sizes the nominal energies are calibrated at.
  int baseline_iq_entries = 32;
  int baseline_regs_per_cluster = 64;

  /// Average register sources per issued µop (approximation, see header).
  double avg_sources_per_uop = 1.6;
};

/// Energy totals in picojoules, split by component.
struct EnergyBreakdown {
  double front_end = 0.0;     // fetch/decode/rename of every renamed µop
  double issue_queue = 0.0;   // dispatch + wakeup/select
  double register_file = 0.0; // operand reads + result writes
  double execution = 0.0;     // FUs + bypass
  double memory = 0.0;        // L1/L2/DRAM accesses
  double interconnect = 0.0;  // copy transfers
  double wasted = 0.0;        // front-end+dispatch energy of squashed µops
  double static_clock = 0.0;  // leakage/clock tree

  [[nodiscard]] double total() const noexcept {
    return front_end + issue_queue + register_file + execution + memory +
           interconnect + wasted + static_clock;
  }

  /// Picojoules per committed useful µop (the efficiency metric).
  [[nodiscard]] double per_committed_uop(
      const SimStats& stats) const noexcept {
    const auto committed = static_cast<double>(stats.committed_total());
    return committed == 0.0 ? 0.0 : total() / committed;
  }

  /// Energy-delay product per unit of work (relative units): energy per
  /// committed µop x cycles per committed µop. Runs here simulate a fixed
  /// cycle window rather than a fixed program, so the raw energy x cycles
  /// product would only mirror total energy; normalising both factors by
  /// committed work restores the usual fixed-work EDP semantics.
  [[nodiscard]] double edp(const SimStats& stats) const noexcept {
    const auto committed = static_cast<double>(stats.committed_total());
    if (committed == 0.0) return 0.0;
    return (total() / committed) *
           (static_cast<double>(stats.cycles) / committed);
  }
};

/// Estimates the energy of a finished run from its statistics. Pure
/// function of (stats, config, params); deterministic runs produce
/// identical breakdowns.
[[nodiscard]] EnergyBreakdown estimate_energy(const SimStats& stats,
                                              const SimConfig& config,
                                              const EnergyParams& params = {});

}  // namespace clusmt::core
