// Machine configuration (paper Table 1 defaults).
//
// Every field here feeds the RunCache content hash: when adding a knob,
// also extend hash_config() in src/harness/run_key.cc.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "frontend/fetch.h"
#include "memory/hierarchy.h"
#include "policy/policy.h"
#include "steer/steering.h"

namespace clusmt::core {

/// Per-cluster capability overrides for heterogeneous grids. Every field
/// uses zero-means-inherit: 0 falls back to the corresponding SimConfig
/// scalar, so a default-constructed shape describes a cluster identical to
/// the homogeneous machine.
struct ClusterShape {
  int issue_width = 0;  // issue ports (0 = SimConfig::issue_width)
  int iq_entries = 0;   // issue-queue entries (0 = SimConfig::iq_entries)
  int int_regs = 0;     // int register file (0 = SimConfig::int_regs)
  int fp_regs = 0;      // fp register file (0 = SimConfig::fp_regs)
};

struct SimConfig {
  int num_threads = 2;
  int num_clusters = 2;

  // Front end.
  int fetch_width = 6;   // Table 1: fetch width 6
  int rename_width = 6;  // rename/steer bandwidth, one thread per cycle
  int commit_width = 6;  // Table 1: commit width 6
  int decode_queue_capacity = 24;
  int mispredict_penalty = 14;  // Table 1: misprediction pipeline 14
  frontend::FetchSelection fetch_selection =
      frontend::FetchSelection::kFewestInQueue;  // paper §3
  frontend::BranchPredictorConfig predictor;
  frontend::TraceCacheConfig trace_cache;

  // Back end (per cluster unless stated).
  int rob_entries = 128;  // per thread; 0 = unbounded (Figure 2 methodology)
  int iq_entries = 32;    // Table 1: 32-64 per cluster
  int int_regs = 128;     // Table 1: 64-128 per cluster; 0 = unbounded
  int fp_regs = 128;      // 0 = unbounded
  int issue_width = 3;    // issue ports per cluster (Table 1: 3-port mix)
  int mob_entries = 128;  // shared
  int num_links = 2;      // Table 1: 2 point-to-point links
  int link_latency = 1;   // Table 1: 1 cycle
  int l1_write_ports = 2;  // stores retiring per cycle (Table 1: 2 write)

  // Heterogeneous grids: per-cluster capability overrides (zero-means-
  // inherit, see ClusterShape) and a per-cluster-pair link-latency matrix
  // (link_latency_cc[from][to]; 0 inherits link_latency).
  ClusterShape shape[kMaxClusters] = {};
  int link_latency_cc[kMaxClusters][kMaxClusters] = {};

  // Memory hierarchy.
  memory::HierarchyConfig memory;

  // Steering.
  steer::SteeringKind steering = steer::SteeringKind::kDependenceBalance;
  int steer_imbalance_threshold = 6;

  // Resource assignment scheme under evaluation.
  policy::PolicyKind policy = policy::PolicyKind::kIcount;
  policy::PolicyConfig policy_config;

  /// Aborts the run if no µop commits for this many cycles (deadlock trap).
  Cycle watchdog_cycles = 100000;

  // --- Model-level fast paths (behavior-preserving; differential knobs) ---
  /// Quiescent-cycle skip-ahead: when a cycle provably changes nothing but
  /// monotone stall counters (no fetch/rename/issue/commit/event progress),
  /// jump `now` to the next timing-wheel event (capped at interval-policy
  /// boundaries and the watchdog limit) and replicate the per-cycle stat
  /// deltas in closed form. SimStats are bit-identical either way; OFF is
  /// the differential oracle (tests/skip_ahead_test.cc).
  bool skip_ahead = true;
  /// Rename-plan memoization: replica-set presence masks and a per-thread
  /// plan-shape cache keyed by (µop identity, replica masks, forced
  /// cluster) replace the per-µop copy-plan rederivation. Pure-function
  /// cache — decisions are bit-identical; OFF is the oracle.
  bool rename_memo = true;

  /// Effective per-thread ROB capacity (0 selects the unbounded mode).
  [[nodiscard]] int effective_rob_entries() const noexcept {
    return rob_entries == 0 ? 4096 : rob_entries;
  }
  /// Issue-queue entries of `cluster` (shape override, else the base).
  [[nodiscard]] int effective_iq_entries(int cluster) const noexcept {
    const int v = shape[cluster].iq_entries;
    return v > 0 ? v : iq_entries;
  }
  /// Issue ports of `cluster` (shape override, else the base width).
  [[nodiscard]] int effective_issue_width(int cluster) const noexcept {
    const int v = shape[cluster].issue_width;
    return v > 0 ? v : issue_width;
  }
  /// Int register-file size of `cluster` (shape override, else the base).
  [[nodiscard]] int effective_int_regs(int cluster) const noexcept {
    const int v = shape[cluster].int_regs;
    return v > 0 ? v : int_regs;
  }
  /// Fp register-file size of `cluster` (shape override, else the base).
  [[nodiscard]] int effective_fp_regs(int cluster) const noexcept {
    const int v = shape[cluster].fp_regs;
    return v > 0 ? v : fp_regs;
  }
  [[nodiscard]] int effective_regs(int cluster, RegClass cls) const noexcept {
    return cls == RegClass::kInt ? effective_int_regs(cluster)
                                 : effective_fp_regs(cluster);
  }
  /// Inter-cluster copy latency from → to (matrix override, else the
  /// shared link_latency).
  [[nodiscard]] int effective_link_latency(int from, int to) const noexcept {
    const int v = link_latency_cc[from][to];
    return v > 0 ? v : link_latency;
  }
  [[nodiscard]] bool rf_unbounded() const noexcept {
    return int_regs == 0 || fp_regs == 0;
  }
};

}  // namespace clusmt::core
