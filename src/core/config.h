// Machine configuration (paper Table 1 defaults).
//
// Every field here feeds the RunCache content hash: when adding a knob,
// also extend hash_config() in src/harness/run_key.cc.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "frontend/fetch.h"
#include "memory/hierarchy.h"
#include "policy/policy.h"
#include "steer/steering.h"

namespace clusmt::core {

struct SimConfig {
  int num_threads = 2;
  int num_clusters = 2;

  // Front end.
  int fetch_width = 6;   // Table 1: fetch width 6
  int rename_width = 6;  // rename/steer bandwidth, one thread per cycle
  int commit_width = 6;  // Table 1: commit width 6
  int decode_queue_capacity = 24;
  int mispredict_penalty = 14;  // Table 1: misprediction pipeline 14
  frontend::FetchSelection fetch_selection =
      frontend::FetchSelection::kFewestInQueue;  // paper §3
  frontend::BranchPredictorConfig predictor;
  frontend::TraceCacheConfig trace_cache;

  // Back end (per cluster unless stated).
  int rob_entries = 128;  // per thread; 0 = unbounded (Figure 2 methodology)
  int iq_entries = 32;    // Table 1: 32-64 per cluster
  // Per-cluster issue-queue override (heterogeneous grids); 0 keeps
  // iq_entries for that cluster.
  int iq_entries_c[kMaxClusters] = {};
  int int_regs = 128;     // Table 1: 64-128 per cluster; 0 = unbounded
  int fp_regs = 128;      // 0 = unbounded
  int mob_entries = 128;  // shared
  int num_links = 2;      // Table 1: 2 point-to-point links
  int link_latency = 1;   // Table 1: 1 cycle
  int l1_write_ports = 2;  // stores retiring per cycle (Table 1: 2 write)

  // Memory hierarchy.
  memory::HierarchyConfig memory;

  // Steering.
  steer::SteeringKind steering = steer::SteeringKind::kDependenceBalance;
  int steer_imbalance_threshold = 6;

  // Resource assignment scheme under evaluation.
  policy::PolicyKind policy = policy::PolicyKind::kIcount;
  policy::PolicyConfig policy_config;

  /// Aborts the run if no µop commits for this many cycles (deadlock trap).
  Cycle watchdog_cycles = 100000;

  /// Effective per-thread ROB capacity (0 selects the unbounded mode).
  [[nodiscard]] int effective_rob_entries() const noexcept {
    return rob_entries == 0 ? 4096 : rob_entries;
  }
  /// Issue-queue entries of `cluster` (override, else the shared size).
  [[nodiscard]] int effective_iq_entries(int cluster) const noexcept {
    return iq_entries_c[cluster] > 0 ? iq_entries_c[cluster] : iq_entries;
  }
  [[nodiscard]] bool rf_unbounded() const noexcept {
    return int_regs == 0 || fp_regs == 0;
  }
};

}  // namespace clusmt::core
