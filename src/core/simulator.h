// The cycle-level simulator: a monolithic SMT front-end feeding a two-
// cluster back-end through rename/steer, with a shared memory hierarchy
// (paper §3, Figure 1). Stages execute in reverse pipeline order each
// cycle: commit, writeback, issue, rename/steer/dispatch, fetch.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "backend/cluster.h"
#include "backend/interconnect.h"
#include "common/types.h"
#include "core/config.h"
#include "core/dyn_uop.h"
#include "core/stats.h"
#include "frontend/fetch.h"
#include "frontend/rename_map.h"
#include "memory/hierarchy.h"
#include "memory/mob.h"
#include "policy/policy.h"
#include "steer/steering.h"
#include "trace/trace_source.h"
#include "trace/workload.h"

namespace clusmt::core {

class Simulator {
 public:
  explicit Simulator(const SimConfig& config);

  /// Attaches a thread's µop source. `profile` must outlive the simulator
  /// (it parameterises wrong-path synthesis).
  void attach_thread(ThreadId tid, std::shared_ptr<trace::TraceSource> source,
                     const trace::TraceProfile* profile, std::uint64_t seed);

  /// Convenience: builds a synthetic trace from a workload TraceSpec.
  void attach_thread(ThreadId tid, const trace::TraceSpec& spec);

  /// Advances `cycles` simulated cycles.
  void run(Cycle cycles);
  void step();

  /// Zeroes every statistic while keeping the machine state (caches,
  /// predictors, in-flight µops) warm. Call after a warmup phase so
  /// measurements reflect steady state.
  void reset_stats();

  /// Observer invoked for every µop at commit, in commit order (copies
  /// included, flagged by DynUop::is_copy). Used for commit tracing and
  /// order-verification; pass nullptr to clear.
  using CommitHook = std::function<void(const DynUop&)>;
  void set_commit_hook(CommitHook hook) { commit_hook_ = std::move(hook); }

  [[nodiscard]] Cycle now() const noexcept { return now_; }
  [[nodiscard]] const SimStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }

  // Component access (tests, benches, examples).
  [[nodiscard]] const backend::Cluster& cluster(ClusterId c) const {
    return clusters_[c];
  }
  [[nodiscard]] const frontend::FetchEngine& fetch_engine() const {
    return *fetch_;
  }
  [[nodiscard]] const memory::MemoryHierarchy& hierarchy() const {
    return *hierarchy_;
  }
  [[nodiscard]] const memory::MemOrderBuffer& mob() const { return *mob_; }
  [[nodiscard]] const backend::Interconnect& interconnect() const {
    return *interconnect_;
  }
  [[nodiscard]] const steer::Steering& steering() const { return *steering_; }
  [[nodiscard]] const policy::ResourceAssignmentPolicy& policy() const {
    return *policy_;
  }
  [[nodiscard]] const Rob& rob(ThreadId tid) const { return robs_[tid]; }
  [[nodiscard]] const policy::PipelineView& view() const noexcept {
    return view_;
  }

 private:
  // --- Event machinery ---
  enum class EventKind : std::uint8_t {
    kAgu,         // load/store address generated
    kComplete,    // execution latency elapsed
    kCopyArrive,  // copy value reached the destination cluster
  };
  struct Event {
    Cycle cycle;
    std::uint64_t order;  // FIFO among same-cycle events
    EventKind kind;
    ThreadId tid;
    int rob_slot;
    std::uint64_t uid;
    friend bool operator>(const Event& a, const Event& b) {
      if (a.cycle != b.cycle) return a.cycle > b.cycle;
      return a.order > b.order;
    }
  };

  void schedule(Cycle cycle, EventKind kind, const DynUop& uop);
  [[nodiscard]] DynUop* resolve_event(const Event& event);

  // --- Pipeline stages ---
  void commit_stage();
  void writeback_stage();
  void retry_blocked_loads();
  void issue_stage();
  void rename_stage();
  void fetch_stage();
  void handle_flush_requests();

  // --- Rename helpers ---
  struct RenamePlan {
    ClusterId cluster = -1;
    // Copies: one per distinct source arch register missing from `cluster`.
    struct CopyPlan {
      int arch = -1;
      ClusterId from = -1;
      std::int16_t from_phys = -1;
    };
    int num_copies = 0;
    CopyPlan copies[2];
    bool off_preferred_iq = false;  // failed preferred cluster for IQ reasons
  };
  /// Attempts to rename+dispatch the front µop of `tid`; returns consumed
  /// rename bandwidth (1 + copies) or 0 when blocked.
  int try_rename_front(ThreadId tid);
  [[nodiscard]] bool plan_for_cluster(ThreadId tid,
                                      const frontend::FetchedUop& fu,
                                      ClusterId cluster, RenamePlan& plan,
                                      bool& iq_failure, bool& rf_failure);
  void execute_plan(ThreadId tid, const frontend::FetchedUop& fu,
                    const RenamePlan& plan);

  // --- Recovery ---
  void squash_younger_than(ThreadId tid, std::uint64_t boundary_seq,
                           std::vector<trace::MicroOp>* replay_out,
                           std::uint64_t* oldest_branch_checkpoint);
  void undo_uop(DynUop& uop);

  // --- Memory helpers ---
  void start_load_access(DynUop& uop);
  void note_l2_miss_started(DynUop& uop);
  void note_l2_miss_finished(DynUop& uop);

  void refresh_view();
  [[nodiscard]] bool source_ready(const PhysRef& ref) const;

  SimConfig config_;
  Cycle now_ = 0;
  std::uint64_t next_uid_ = 1;
  std::uint64_t next_seq_[kMaxThreads] = {};
  std::uint64_t event_order_ = 0;

  std::unique_ptr<frontend::FetchEngine> fetch_;
  std::vector<frontend::RenameMap> rename_maps_;
  std::vector<backend::Cluster> clusters_;
  std::unique_ptr<backend::Interconnect> interconnect_;
  std::unique_ptr<memory::MemoryHierarchy> hierarchy_;
  std::unique_ptr<memory::MemOrderBuffer> mob_;
  std::unique_ptr<steer::Steering> steering_;
  std::unique_ptr<policy::ResourceAssignmentPolicy> policy_;
  std::vector<Rob> robs_;

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  struct BlockedLoad {
    ThreadId tid;
    int rob_slot;
    std::uint64_t uid;
  };
  std::vector<BlockedLoad> blocked_loads_;
  std::vector<int> issue_scratch_;  // reused per-cycle issue order snapshot

  // Shadow trace profiles (wrong-path synthesis needs stable pointers).
  std::vector<std::unique_ptr<trace::TraceProfile>> owned_profiles_;

  policy::PipelineView view_;
  bool rf_blocked_flags_[kMaxThreads][kNumRegClasses] = {};
  // Refreshed by the issue stage each cycle (see PipelineView comment).
  int iq_unready_tc_[kMaxThreads][kMaxClusters] = {};
  int outstanding_l2_[kMaxThreads] = {};
  ThreadId commit_rr_ = 0;
  Cycle last_commit_cycle_ = 0;
  CommitHook commit_hook_;

  SimStats stats_;
};

}  // namespace clusmt::core
