// The cycle-level simulator: a monolithic SMT front-end feeding a two-
// cluster back-end through rename/steer, with a shared memory hierarchy
// (paper §3, Figure 1). Stages execute in reverse pipeline order each
// cycle: commit, writeback, issue, rename/steer/dispatch, fetch.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "backend/cluster.h"
#include "backend/interconnect.h"
#include "common/types.h"
#include "core/config.h"
#include "core/dyn_uop.h"
#include "core/stats.h"
#include "frontend/fetch.h"
#include "frontend/rename_map.h"
#include "memory/hierarchy.h"
#include "memory/mob.h"
#include "policy/dispatch.h"
#include "policy/policy.h"
#include "steer/steering.h"
#include "trace/trace_source.h"
#include "trace/workload.h"

namespace clusmt::core {

class Simulator {
 public:
  /// Issue-stage implementation. kWakeup (default) is the event-driven
  /// path: completing producers wake their consumers, and selection scans
  /// only the per-cluster ready lists. kScanReference re-probes every
  /// occupied issue-queue slot every cycle (the original model); it exists
  /// as the oracle for differential tests — both paths must produce
  /// bit-identical SimStats.
  enum class IssueModel : std::uint8_t { kWakeup = 0, kScanReference };

  /// Event-queue implementation. kCoalescedWheel (default) drains compact
  /// 16-byte per-cycle wheel records and merges duplicate same-cycle
  /// wakeups of one consumer at schedule time; kHeapReference is the
  /// original single global priority queue, retained as the differential
  /// oracle — both must produce bit-identical SimStats (see
  /// tests/event_queue_test.cc, the queue-level analogue of
  /// IssueModel::kScanReference).
  enum class EventModel : std::uint8_t { kCoalescedWheel = 0, kHeapReference };

  explicit Simulator(const SimConfig& config);

  void set_issue_model(IssueModel model) noexcept { issue_model_ = model; }
  [[nodiscard]] IssueModel issue_model() const noexcept {
    return issue_model_;
  }

  void set_event_model(EventModel model) noexcept { event_model_ = model; }
  [[nodiscard]] EventModel event_model() const noexcept {
    return event_model_;
  }
  /// Duplicate wakeups merged by the coalescing wheel (0 in the current
  /// model — the differential test pins that merging is behaviour-free).
  [[nodiscard]] std::uint64_t events_coalesced() const noexcept {
    return events_coalesced_;
  }

  /// Quiescent-cycle skip-ahead telemetry (SimConfig::skip_ahead). These
  /// live on the Simulator, NOT in SimStats: stats must stay bit-identical
  /// between the skipping and the oracle run, so the skip bookkeeping
  /// cannot be part of the compared record.
  [[nodiscard]] std::uint64_t cycles_skipped() const noexcept {
    return cycles_skipped_;
  }
  [[nodiscard]] std::uint64_t skip_episodes() const noexcept {
    return skip_episodes_;
  }

  /// Routes every hot policy query through the sealed per-kind switch
  /// (default) or the virtual interface (the differential-test oracle).
  /// Both modes must produce identical decisions — see
  /// tests/policy_dispatch_test.cc.
  void set_policy_devirtualized(bool on) noexcept {
    policy_.set_devirtualized(on);
  }
  [[nodiscard]] bool policy_devirtualized() const noexcept {
    return policy_.devirtualized();
  }

  /// Cross-checks every incrementally-maintained PipelineView counter
  /// against a from-scratch rebuild off the component state, printing any
  /// drift to stderr. Debug builds run this every cycle; tests assert it
  /// directly so counter drift fails loudly instead of silently skewing
  /// policies.
  [[nodiscard]] bool validate_view() const;

  /// Attaches a thread's µop source. `profile` must outlive the simulator
  /// (it parameterises wrong-path synthesis).
  void attach_thread(ThreadId tid, std::shared_ptr<trace::TraceSource> source,
                     const trace::TraceProfile* profile, std::uint64_t seed);

  /// Convenience: builds a synthetic trace from a workload TraceSpec.
  void attach_thread(ThreadId tid, const trace::TraceSpec& spec);

  /// Advances `cycles` simulated cycles.
  void run(Cycle cycles);
  void step();

  /// Zeroes every statistic while keeping the machine state (caches,
  /// predictors, in-flight µops) warm. Call after a warmup phase so
  /// measurements reflect steady state.
  void reset_stats();

  /// Observer invoked for every µop at commit, in commit order (copies
  /// included, flagged by DynUop::is_copy). Used for commit tracing and
  /// order-verification; pass nullptr to clear.
  using CommitHook = std::function<void(const DynUop&)>;
  void set_commit_hook(CommitHook hook) { commit_hook_ = std::move(hook); }

  [[nodiscard]] Cycle now() const noexcept { return now_; }
  [[nodiscard]] const SimStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }

  // Component access (tests, benches, examples).
  [[nodiscard]] const backend::Cluster& cluster(ClusterId c) const {
    return clusters_[c];
  }
  [[nodiscard]] const frontend::FetchEngine& fetch_engine() const {
    return *fetch_;
  }
  [[nodiscard]] const memory::MemoryHierarchy& hierarchy() const {
    return *hierarchy_;
  }
  [[nodiscard]] const memory::MemOrderBuffer& mob() const { return *mob_; }
  [[nodiscard]] const backend::Interconnect& interconnect() const {
    return *interconnect_;
  }
  [[nodiscard]] const steer::Steering& steering() const { return steering_; }
  [[nodiscard]] const policy::ResourceAssignmentPolicy& policy() const {
    return policy_.impl();
  }
  [[nodiscard]] const Rob& rob(ThreadId tid) const { return robs_[tid]; }
  [[nodiscard]] const policy::PipelineView& view() const noexcept {
    return view_;
  }

 private:
  // --- Event machinery ---
  enum class EventKind : std::uint8_t {
    kAgu,         // load/store address generated
    kComplete,    // execution latency elapsed
    kCopyArrive,  // copy value reached the destination cluster
  };
  /// Heap entry (overflow spills and the kHeapReference oracle): carries
  /// its due cycle and a global order stamp for (cycle, order) ordering.
  struct Event {
    Cycle cycle;
    std::uint64_t order;  // FIFO among same-cycle events
    EventKind kind;
    ThreadId tid;
    int rob_slot;
    std::uint64_t uid;
    friend bool operator>(const Event& a, const Event& b) {
      if (a.cycle != b.cycle) return a.cycle > b.cycle;
      return a.order > b.order;
    }
  };
  /// Compact wheel-bucket record: the due cycle IS the bucket and FIFO
  /// order IS the append position, so neither is stored — 16 bytes against
  /// the heap entry's 40, for the structure the writeback stage streams
  /// through every cycle.
  struct WheelRecord {
    std::uint64_t uid;
    std::int32_t rob_slot;
    std::int16_t tid;  // < kMaxThreads, narrowed losslessly
    EventKind kind;
  };

  void schedule(Cycle cycle, EventKind kind, const DynUop& uop);
  void drain_events();
  void dispatch_event(EventKind kind, ThreadId tid, int rob_slot,
                      std::uint64_t uid);

  /// Earliest cycle >= now_ with a pending event (wheel bucket or overflow
  /// heap), or Cycle max when none are pending. Stale records of squashed
  /// µops count — they only make the answer conservatively early. O(1)
  /// when next_event_hint_ is valid, else O(wheel distance to the first
  /// non-empty bucket).
  [[nodiscard]] Cycle next_event_cycle();

  // --- Quiescent-cycle skip-ahead (SimConfig::skip_ahead) ---
  /// Everything a quiescent cycle is allowed to touch, captured before the
  /// probe cycle and diffed after it. A probe whose delta fits the allowed
  /// shape proves the machine is frozen; the delta is then replicated in
  /// closed form for every skipped cycle.
  struct BlockedLoad {
    ThreadId tid;
    int rob_slot;
    std::uint64_t uid;
  };
  struct SkipSnapshot {
    SimStats stats;
    frontend::FetchStats fetch;
    steer::SteeringStats steer;
    memory::MobStats mob;
    std::uint64_t blocked_epoch = 0;
    std::uint64_t event_order = 0;
    std::uint64_t events_coalesced = 0;
    std::uint64_t select_fingerprint = 0;
    Cycle last_commit_cycle = 0;
    bool rf_blocked[kMaxThreads][kNumRegClasses] = {};
  };
  /// Cheap structural test: could this cycle possibly be quiescent? False
  /// on any ready IQ entry, committable ROB head, or fetchable thread.
  /// Blocked loads do NOT disqualify: while the MOB is frozen (no events,
  /// no rename/commit) every retry re-blocks identically, and the probe
  /// verifies exactly that.
  [[nodiscard]] bool maybe_quiescent();
  /// Skip horizon: first cycle at which the frozen state may change
  /// (next event, fetch-stall expiry, interval-policy boundary, watchdog
  /// trip, run end) — skipped cycles are strictly before it.
  [[nodiscard]] Cycle skip_horizon(Cycle end);
  void capture_snapshot(SkipSnapshot& snap) const;
  /// The allowed per-cycle movement of one probed quiescent cycle; all
  /// phases of a tie-rotation orbit must produce the same one.
  struct ProbeDelta {
    std::uint64_t rename_blocked_cycles = 0;
    std::uint64_t rename_block_iq = 0;
    std::uint64_t rename_block_rf = 0;
    std::uint64_t rename_block_rob = 0;
    std::uint64_t rename_block_mob = 0;
    std::uint64_t iq_pref_stall_events = 0;
    std::uint64_t mob_full_stalls = 0;
    std::uint64_t mob_waits = 0;
    std::uint64_t steer_decisions = 0;
    std::uint64_t steer_balance_overrides = 0;
    std::uint64_t steer_dependence_free = 0;
    bool operator==(const ProbeDelta&) const = default;
  };
  /// Probes up to num_threads cycles looking for a closed selection-cursor
  /// orbit with identical per-cycle deltas, then replicates to `horizon`.
  /// Returns false when a probe revealed real activity (feeds the
  /// exponential attempt backoff in run()).
  bool probe_and_replicate(Cycle horizon);
  /// True when the probe's delta over `snap` has the replicable quiescent
  /// shape (only per-cycle stall counters moved); the selection-cursor
  /// fingerprint is judged separately by probe_and_replicate's orbit scan.
  [[nodiscard]] bool probe_delta_replicable(const SkipSnapshot& snap) const;
  [[nodiscard]] ProbeDelta delta_since(const SkipSnapshot& snap) const;
  /// Applies the probe delta for the cycles up to `horizon` and jumps now_.
  void replicate_skip(const ProbeDelta& d, Cycle horizon);
  /// Advances the rename-selection cursor by k frozen-view select calls.
  void replay_select_cursor(std::uint64_t k);
  void check_watchdog() const;

  // --- Pipeline stages ---
  // The per-cycle stages and rename helpers are templated on the machine
  // shape: step() dispatches once per cycle to the <2, 2> instantiation
  // for the paper's two-thread/two-cluster machine (every cluster/thread
  // loop unrolls, bounds constant-fold) or to the generic <0, 0> one for
  // other shapes (bounds read from config_ as before). Both instantiate
  // from the same definitions, so behavior is identical by construction.
  template <int NC, int NT>
  void step_cycle();
  template <int NC, int NT>
  void commit_stage();
  void writeback_stage();
  void retry_blocked_loads();
  template <int NC, int NT>
  void issue_stage();
  template <int NC, int NT>
  void rename_stage();
  template <int NT>
  void fetch_stage();
  void handle_flush_requests();

  /// Loop bound: the compile-time shape when specialized (> 0), else the
  /// runtime configuration value.
  template <int N>
  [[nodiscard]] static constexpr int bound_or(int runtime) noexcept {
    return N > 0 ? N : runtime;
  }

  // --- Rename helpers ---
  struct RenamePlan {
    ClusterId cluster = -1;
    // Copies: one per distinct source arch register missing from `cluster`.
    struct CopyPlan {
      int arch = -1;
      ClusterId from = -1;
      std::int16_t from_phys = -1;
    };
    int num_copies = 0;
    CopyPlan copies[2];
    bool off_preferred_iq = false;  // failed preferred cluster for IQ reasons
  };
  /// Rename-plan memoization (SimConfig::rename_memo): caches the
  /// steering-independent *shape* of a µop's copy plan — which clusters
  /// need copies and the {arch, source-cluster} skeleton of each — keyed by
  /// exactly the inputs the shape is a pure function of: the source arch
  /// registers and their replica presence masks. The µop's pc is
  /// deliberately NOT in the key: the derivation never reads it, and the
  /// (src0, src1, mask0, mask1) domain is small and heavily skewed (hot
  /// registers dominate), so one shared direct-mapped table hits where a
  /// per-pc table would thrash. Pure function of the key, so the cache
  /// needs no invalidation on squash or epoch and is safely shared across
  /// threads; a colliding key simply refills the slot. Physical register
  /// numbers, capacity checks and policy limits are never cached — those
  /// stay live.
  struct PlanMemoEntry {
    std::int16_t src0 = -2;  // sentinel: never matches a real µop
    std::int16_t src1 = -2;
    std::uint8_t mask0 = 0;  // replica presence masks at memoization time
    std::uint8_t mask1 = 0;
    std::uint8_t copy_needed_mask = 0;  // bit c: >=1 copy needed in cluster c
    std::uint8_t num_copies[kMaxClusters] = {};
    struct CopySkeleton {
      std::int16_t arch = -1;
      std::int8_t from = -1;
    };
    CopySkeleton copies[kMaxClusters][2] = {};
  };
  static constexpr std::size_t kPlanMemoEntries = 512;  // power of two

  /// Attempts to rename+dispatch the front µop of `tid`; returns consumed
  /// rename bandwidth (1 + copies) or 0 when blocked. `forced` is the
  /// policy's forced cluster, hoisted per rename burst (it is a function of
  /// (scheme, tid) only).
  template <int NC>
  int try_rename_front(ThreadId tid, ClusterId forced);
  /// `srcs[i]` is the prefetched replica set of fu.op.src{0,1} (nullptr for
  /// absent sources) — looked up once per µop and shared by the steering
  /// vote and every per-cluster plan. `memo` (nullable) is the matching
  /// memo entry: when set, the copy skeleton is replayed from it instead of
  /// being re-derived from the replica sets (phys numbers still live).
  template <int NC>
  [[nodiscard]] bool plan_for_cluster(ThreadId tid,
                                      const frontend::FetchedUop& fu,
                                      const frontend::ReplicaSet* const
                                          srcs[2],
                                      ClusterId cluster, RenamePlan& plan,
                                      bool& iq_failure, bool& rf_failure,
                                      const PlanMemoEntry* memo = nullptr);
  /// Memo lookup/fill for the front µop; returns the entry whose key
  /// matches exactly (filling its slot on a miss). Only called when
  /// config_.rename_memo is on.
  const PlanMemoEntry* plan_memo_lookup(const frontend::FetchedUop& fu,
                                        const frontend::ReplicaSet* const
                                            srcs[2]);
  /// Fast path of plan_for_cluster for the common case where every source
  /// already has a replica in `cluster` (no copies): same checks, same
  /// policy-query order, same failure flags — minus the copy bookkeeping.
  [[nodiscard]] bool plan_no_copies(ThreadId tid,
                                    const frontend::FetchedUop& fu,
                                    ClusterId cluster, RenamePlan& plan,
                                    bool& iq_failure, bool& rf_failure);
  void execute_plan(ThreadId tid, const frontend::FetchedUop& fu,
                    const frontend::ReplicaSet* const srcs[2],
                    const RenamePlan& plan);

  // --- Recovery ---
  void squash_younger_than(ThreadId tid, std::uint64_t boundary_seq,
                           std::vector<trace::MicroOp>* replay_out,
                           std::uint64_t* oldest_branch_checkpoint);
  void undo_uop(DynUop& uop);

  // --- Memory helpers ---
  void start_load_access(DynUop& uop);
  void note_l2_miss_started(DynUop& uop);
  void note_l2_miss_finished(DynUop& uop);

  void refresh_view();
  void init_view();
  [[nodiscard]] bool source_ready(const PhysRef& ref) const;

  // --- Incremental-view mutation helpers ---
  // Every structural mutation goes through one of these so the
  // PipelineView occupancy counters stay current without per-cycle
  // rebuilds (validate_view() is the cross-check).
  int iq_insert(ClusterId c, const backend::IqEntry& entry);
  void iq_remove(ClusterId c, int slot);
  int rf_alloc(ClusterId c, RegClass cls, ThreadId tid);
  void rf_release(ClusterId c, RegClass cls, std::int16_t index);
  void make_ready(const PhysRef& ref);
  DynUop* rob_push(ThreadId tid);
  void sync_decode_depth(ThreadId tid);

  SimConfig config_;
  Cycle now_ = 0;
  std::uint64_t next_uid_ = 1;
  std::uint64_t next_seq_[kMaxThreads] = {};
  std::uint64_t event_order_ = 0;

  std::unique_ptr<frontend::FetchEngine> fetch_;
  std::vector<frontend::RenameMap> rename_maps_;
  std::vector<backend::Cluster> clusters_;
  std::unique_ptr<backend::Interconnect> interconnect_;
  std::unique_ptr<memory::MemoryHierarchy> hierarchy_;
  std::unique_ptr<memory::MemOrderBuffer> mob_;
  steer::Steering steering_;
  policy::PolicyDispatch policy_;
  std::vector<Rob> robs_;

  // Timing-wheel event queue. Every event is scheduled a bounded, known
  // latency ahead, so a calendar of per-cycle FIFO buckets replaces the
  // priority queue: schedule() appends to bucket[cycle % N] in O(1), and
  // the writeback stage drains exactly one bucket per cycle. Events
  // further than the wheel span ahead (pathological bus queueing) spill
  // into an overflow heap. The global (cycle, order) processing order is
  // preserved without any merge step: an overflow event due at cycle C was
  // scheduled at or before C - kEventWheelBuckets, while every bucket
  // record for C was scheduled after that, so all due overflow stamps
  // precede all bucket stamps — drain overflow first, then the bucket.
  // Under kHeapReference everything goes through the overflow heap.
  static constexpr std::size_t kEventWheelBuckets = 1024;  // power of two
  std::vector<std::vector<WheelRecord>> event_wheel_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>>
      event_overflow_;
  /// Records currently in wheel buckets (pushes minus drains). Lets
  /// next_event_cycle() skip the bucket scan entirely when the wheel is
  /// empty and stop at the first hit otherwise.
  std::size_t wheel_pending_ = 0;
  /// Lower bound on the earliest pending event cycle; values <= now_ mean
  /// "unknown". While valid (> now_), schedule() min-updates it, and
  /// events are only ever removed by the drain at their exact due cycle —
  /// so a valid hint IS the exact earliest pending cycle (a pending event
  /// below it would have pushed it down; its own minimizer can only have
  /// been drained once now_ reached it). A stale hint is left stale by
  /// schedule() and refreshed by the scan in next_event_cycle().
  Cycle next_event_hint_ = 0;
  std::vector<BlockedLoad> blocked_loads_;
  /// Bumped on every content change of blocked_loads_: a first-time
  /// block, and a retry pass that dropped any element (equal size implies
  /// element-wise identity — the rebuild preserves order and only
  /// removes). Lets the skip probe compare the list in O(1).
  std::uint64_t blocked_epoch_ = 0;
  /// True while retry_blocked_loads() rebuilds the list; re-blocks during
  /// the pass are netted out by its size check instead of bumping.
  bool in_blocked_retry_ = false;

  // Shadow trace profiles (wrong-path synthesis needs stable pointers).
  std::vector<std::unique_ptr<trace::TraceProfile>> owned_profiles_;

  policy::PipelineView view_;
  bool rf_blocked_flags_[kMaxThreads][kNumRegClasses] = {};
  int outstanding_l2_[kMaxThreads] = {};
  IssueModel issue_model_ = IssueModel::kWakeup;
  EventModel event_model_ = EventModel::kCoalescedWheel;
  std::uint64_t events_coalesced_ = 0;
  ThreadId commit_rr_ = 0;
  Cycle last_commit_cycle_ = 0;
  CommitHook commit_hook_;

  // Skip-ahead telemetry (intentionally outside SimStats; see accessors).
  std::uint64_t cycles_skipped_ = 0;
  std::uint64_t skip_episodes_ = 0;

  /// Exponential backoff after failed probes: no attempt before
  /// skip_retry_at_. Attempting less often never changes results —
  /// skipping is semantically the identity — it only bounds the snapshot
  /// cost on workloads that look idle for a cycle while work is in flight.
  Cycle skip_retry_at_ = 0;
  Cycle skip_backoff_ = 0;

  /// Plan-shape memo (SimConfig::rename_memo); allocated lazily on first
  /// use so disabled runs pay nothing. Shared across threads: the plan is
  /// a pure function of the key, so cross-thread hits are sound.
  std::vector<PlanMemoEntry> plan_memo_;

  SimStats stats_;
};

}  // namespace clusmt::core
