// SMT evaluation metrics (paper §4): throughput (useful committed µops per
// cycle) and the fairness metric of Gabor et al. [33] / Luo et al. [17]:
// the minimum, over thread pairs, of the ratio between their slowdowns
// relative to single-threaded execution.
#pragma once

#include <span>

#include "common/types.h"

namespace clusmt::core {

/// Per-thread slowdown: IPC alone / IPC in the SMT mix (>= 1 usually).
[[nodiscard]] double slowdown(double single_ipc, double smt_ipc) noexcept;

/// Fairness in [0, 1]: min over ordered thread pairs (i, j) of
/// slowdown_i / slowdown_j. 1 = perfectly equal slowdowns.
[[nodiscard]] double fairness(std::span<const double> smt_ipc,
                              std::span<const double> single_ipc) noexcept;

/// Weighted speedup (Snavely/Tullsen): sum of IPC_smt_i / IPC_single_i.
[[nodiscard]] double weighted_speedup(
    std::span<const double> smt_ipc,
    std::span<const double> single_ipc) noexcept;

/// Harmonic mean of relative IPCs — balances throughput and fairness.
[[nodiscard]] double harmonic_speedup(
    std::span<const double> smt_ipc,
    std::span<const double> single_ipc) noexcept;

}  // namespace clusmt::core
