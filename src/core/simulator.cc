#include "core/simulator.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdio>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "trace/synthetic.h"

namespace clusmt::core {

namespace {

[[nodiscard]] std::uint64_t pack_rob_ref(ThreadId tid, int slot) noexcept {
  return (static_cast<std::uint64_t>(tid) << 32) |
         static_cast<std::uint32_t>(slot);
}
[[nodiscard]] ThreadId rob_ref_tid(std::uint64_t ref) noexcept {
  return static_cast<ThreadId>(ref >> 32);
}
[[nodiscard]] int rob_ref_slot(std::uint64_t ref) noexcept {
  return static_cast<int>(ref & 0xFFFFFFFFu);
}

}  // namespace

Simulator::Simulator(const SimConfig& config)
    : config_(config),
      steering_(config.steering, config.num_clusters,
                config.steer_imbalance_threshold),
      policy_(config.policy, config.policy_config) {
  if (config.num_threads < 1 || config.num_threads > kMaxThreads) {
    throw std::invalid_argument("unsupported thread count");
  }
  if (config.num_clusters < 1 || config.num_clusters > kMaxClusters) {
    throw std::invalid_argument("unsupported cluster count");
  }
  // The timing-wheel event queue requires every event to land strictly in
  // the future (schedule() asserts delta >= 1). Completion latencies are
  // >= 1 by construction (trace::execution_latency, the 1-cycle AGU), so
  // the only zero-latency routes are these two config knobs; reject them
  // here rather than misfile events a wheel revolution late in release
  // builds.
  if (config.link_latency < 1) {
    throw std::invalid_argument("link_latency must be >= 1");
  }
  if (config.memory.l1_latency < 1) {
    throw std::invalid_argument("memory.l1_latency must be >= 1");
  }
  // Heterogeneous shape overrides: negative values are always malformed,
  // and a width override must fit the port model. Only the clusters that
  // exist are checked — trailing shape slots are inert.
  for (int c = 0; c < config.num_clusters; ++c) {
    const ClusterShape& s = config.shape[c];
    if (s.issue_width < 0 || s.iq_entries < 0 || s.int_regs < 0 ||
        s.fp_regs < 0) {
      throw std::invalid_argument("negative cluster shape override");
    }
    if (config.effective_issue_width(c) < 1 ||
        config.effective_issue_width(c) > backend::PortSet::kMaxPorts) {
      throw std::invalid_argument("issue width out of range");
    }
    // Unbounded register mode is a machine-wide policy branch
    // (rf_unbounded); mixing it with per-cluster bounded files would make
    // the policies' global view a lie. Reject the combination.
    if (config.rf_unbounded() && (s.int_regs > 0 || s.fp_regs > 0)) {
      throw std::invalid_argument(
          "per-cluster register override with unbounded register mode");
    }
    for (int to = 0; to < config.num_clusters; ++to) {
      if (config.link_latency_cc[c][to] < 0) {
        throw std::invalid_argument("negative pair link latency");
      }
    }
  }
  // Committed architectural mappings alone pin num_threads x arch-regs
  // physical registers of each class; without headroom on top, renaming
  // eventually starves with every ROB empty and nothing left to commit —
  // a silent machine-wide wedge, not a slow configuration. Reject it.
  // (The paper's two-thread setups all pass; four threads need the
  // 128-registers-per-cluster end of Table 1's range.)
  for (const RegClass cls : {RegClass::kInt, RegClass::kFp}) {
    const bool is_int = cls == RegClass::kInt;
    if ((is_int ? config.int_regs : config.fp_regs) == 0) {
      continue;  // unbounded mode
    }
    int total = 0;
    for (int c = 0; c < config.num_clusters; ++c) {
      total += config.effective_regs(c, cls);
    }
    const int arch = is_int ? kNumIntArchRegs : kNumFpArchRegs;
    const int committed_floor = config.num_threads * arch;
    if (total < committed_floor + config.rename_width) {
      std::ostringstream err;
      err << "config: " << total << " total " << (is_int ? "integer" : "FP/SIMD")
          << " physical registers cannot back " << config.num_threads
          << " threads x " << arch
          << " architectural registers plus rename headroom ("
          << committed_floor + config.rename_width << " required)";
      throw std::invalid_argument(err.str());
    }
  }

  frontend::FetchConfig fetch_config;
  fetch_config.fetch_width = config.fetch_width;
  fetch_config.decode_queue_capacity = config.decode_queue_capacity;
  fetch_config.mispredict_penalty = config.mispredict_penalty;
  fetch_config.selection = config.fetch_selection;
  fetch_config.predictor = config.predictor;
  fetch_config.trace_cache = config.trace_cache;
  fetch_ = std::make_unique<frontend::FetchEngine>(fetch_config,
                                                   config.num_threads);

  rename_maps_.reserve(config.num_threads);
  robs_.reserve(config.num_threads);
  for (int t = 0; t < config.num_threads; ++t) {
    rename_maps_.emplace_back(config.num_clusters);
    robs_.emplace_back(config.effective_rob_entries());
  }

  clusters_.reserve(config.num_clusters);
  for (int c = 0; c < config.num_clusters; ++c) {
    clusters_.emplace_back(
        backend::ClusterConfig{.iq_entries = config.effective_iq_entries(c),
                               .int_registers = config.effective_int_regs(c),
                               .fp_registers = config.effective_fp_regs(c),
                               .issue_width = config.effective_issue_width(c)});
  }
  // Capability-aware steering: balance loads relative to each cluster's IQ
  // capacity (the identity scale when all clusters match).
  {
    int caps[kMaxClusters] = {};
    for (int c = 0; c < config.num_clusters; ++c) {
      caps[c] = config.effective_iq_entries(c);
    }
    steering_.set_capacities(
        std::span<const int>(caps, config.num_clusters));
  }

  interconnect_ = std::make_unique<backend::Interconnect>(
      config.num_links, config.link_latency);
  for (int from = 0; from < config.num_clusters; ++from) {
    for (int to = 0; to < config.num_clusters; ++to) {
      interconnect_->set_pair_latency(from, to,
                                      config.link_latency_cc[from][to]);
    }
  }
  hierarchy_ = std::make_unique<memory::MemoryHierarchy>(config.memory);
  mob_ = std::make_unique<memory::MemOrderBuffer>(config.mob_entries);

  event_wheel_.resize(kEventWheelBuckets);
  init_view();
}

void Simulator::attach_thread(ThreadId tid,
                              std::shared_ptr<trace::TraceSource> source,
                              const trace::TraceProfile* profile,
                              std::uint64_t seed) {
  fetch_->attach_thread(tid, std::move(source), profile, seed);
}

void Simulator::attach_thread(ThreadId tid, const trace::TraceSpec& spec) {
  auto profile = std::make_unique<trace::TraceProfile>(spec.profile);
  const trace::TraceProfile* profile_ptr = profile.get();
  owned_profiles_.push_back(std::move(profile));
  attach_thread(tid,
                std::make_shared<trace::SyntheticTrace>(*profile_ptr,
                                                        spec.seed),
                profile_ptr, spec.seed);
}

void Simulator::run(Cycle cycles) {
  const Cycle end = now_ + cycles;
  while (now_ < end) {
    // Quiescent-cycle skip-ahead: when the structural pre-check passes and
    // the frozen state cannot change for >= 2 cycles, simulate ONE real
    // probe cycle. If its delta has the quiescent shape (only monotone
    // per-cycle stall counters moved), every cycle up to the horizon would
    // repeat it exactly — replicate the delta in closed form and jump.
    // Any other delta means the cycle did real work; it stands as a normal
    // simulated cycle and the loop continues. SimStats stay bit-identical
    // to the cycle-by-cycle oracle either way (tests/skip_ahead_test.cc).
    // A failed attempt costs only the snapshot: the probed cycle was a
    // real simulated cycle regardless. But on busy workloads the
    // structural pre-check passes spuriously for long stretches (the
    // machine looks idle for one cycle while work is in flight), so
    // failed probes back off exponentially — attempting less often is
    // always sound, because skipping is semantically the identity.
    if (config_.skip_ahead && now_ >= skip_retry_at_ && maybe_quiescent()) {
      const Cycle horizon = skip_horizon(end);
      if (horizon > now_ + 1) {
        if (probe_and_replicate(horizon)) {
          skip_backoff_ = 0;
        } else {
          skip_backoff_ = std::min<Cycle>(skip_backoff_ * 2 + 1, 64);
          skip_retry_at_ = now_ + skip_backoff_;
        }
        continue;
      }
    }
    step();
    check_watchdog();
  }
}

// Probes up to num_threads consecutive cycles. The machine may be frozen
// in every respect EXCEPT the rename-selection tie-break cursor, which on
// a tie rotates through the tied threads with some period p <= num_threads
// (the orbit of a deterministic map on a finite set, and the fingerprint
// captures its whole state). A window is replicable when p probed cycles
// bring the fingerprint back to its start, every probe's delta has the
// quiescent shape, and all p per-cycle deltas are identical — then every
// remaining cycle up to the horizon repeats that same delta, and the
// cursor advance is replayed exactly by k select calls over the frozen
// view. The common fixpoint case closes at p == 1 with no replay.
//
// Returns false only when a probe revealed real activity (the delta was
// not quiescent-shaped, phases disagreed, or no orbit closed) — the
// caller's backoff keys off that. Benign exits (window consumed or too
// short for another probe) return true: the machine really was idle.
bool Simulator::probe_and_replicate(Cycle horizon) {
  SkipSnapshot prev;
  capture_snapshot(prev);
  const std::uint64_t base_fp = prev.select_fingerprint;
  ProbeDelta d0{};
  int phase = 0;
  for (;;) {
    step();  // a probe: one fully simulated cycle
    check_watchdog();
    if (!probe_delta_replicable(prev)) {
      return false;  // the probe did real work; it stands as a normal cycle
    }
    ++phase;
    const ProbeDelta d = delta_since(prev);
    if (phase == 1) {
      d0 = d;
    } else if (!(d == d0)) {
      return false;  // phases stall on different resources: not replicable
    }
    if (policy_.select_state_fingerprint() == base_fp) {
      if (now_ >= horizon) return true;  // probes consumed the whole window
      const std::uint64_t k = horizon - now_;
      replicate_skip(d0, horizon);
      // Fixpoint (p == 1) needs no replay: f(s) == s implies f^k(s) == s.
      // For p > 1 the orbit just closed, so f^p is the identity on the
      // cursor and only k mod p of the k frozen cycles' calls remain.
      if (phase > 1) replay_select_cursor(k % static_cast<std::uint64_t>(phase));
      check_watchdog();
      return true;
    }
    if (phase >= config_.num_threads) return false;  // no closed orbit: bail
    if (now_ + 1 >= horizon) return true;  // no room for another probe
    capture_snapshot(prev);
  }
}

// Advances the rename-selection cursor exactly as k further frozen cycles
// would: rename_stage makes one select call per cycle whenever any thread
// has queued µops and is rename-eligible, and both queries are pure
// functions of the (frozen) view, so the per-cycle candidate mask is
// constant over the window.
void Simulator::replay_select_cursor(std::uint64_t k) {
  std::uint32_t candidates = 0;
  for (int t = 0; t < config_.num_threads; ++t) {
    if (!fetch_->queue_empty(t)) candidates |= 1u << t;
  }
  candidates = policy_.rename_eligible(view_, candidates);
  if (candidates == 0) return;  // select never runs; the cursor is frozen
  for (std::uint64_t i = 0; i < k; ++i) {
    (void)policy_.select_rename_thread(view_, candidates);
  }
}

// The watchdog fires on the same cycle with the same message whether the
// preceding cycles were simulated or skipped: skip_horizon() caps every
// jump at last_commit_cycle_ + watchdog_cycles + 1, the first now_ at
// which this condition can hold.
void Simulator::check_watchdog() const {
  if (now_ - last_commit_cycle_ > config_.watchdog_cycles) {
    std::ostringstream err;
    err << "simulator watchdog: no commit since cycle "
        << last_commit_cycle_ << " (now " << now_ << ", policy "
        << policy_.name() << ")";
    throw std::runtime_error(err.str());
  }
}

// --------------------------------------------------------------------------
// Quiescent-cycle skip-ahead (SimConfig::skip_ahead)
// --------------------------------------------------------------------------

// Structural pre-filter, run every iteration: can this cycle possibly make
// progress? Cheap O(clusters + threads) checks only — a false positive
// merely wastes one snapshot (the probe bails), a false negative merely
// simulates normally. Everything here is a pure query; in particular
// fetch_eligible is stateless for every scheme (gates read l2_pending /
// iq_unready, which are frozen between events).
bool Simulator::maybe_quiescent() {
  for (int c = 0; c < config_.num_clusters; ++c) {
    if (clusters_[c].iq().ready_count() > 0) return false;
  }
  for (int t = 0; t < config_.num_threads; ++t) {
    if (!robs_[t].empty() && robs_[t].head().stage == UopStage::kDone) {
      return false;
    }
  }
  // Fetch progress: mirror select_fetch_thread's can_fetch test — an
  // eligible thread with decode-queue room whose stall expired will fetch.
  // Structural part first: when every queue is full or stalled (the
  // common blocked shape) the policy's eligibility mask is irrelevant, so
  // the virtual query is skipped entirely.
  std::uint32_t can_fetch = 0;
  for (int t = 0; t < config_.num_threads; ++t) {
    if (now_ >= fetch_->stalled_until(t) &&
        fetch_->queue_size(t) < config_.decode_queue_capacity) {
      can_fetch |= 1u << t;
    }
  }
  if (can_fetch == 0) return true;
  const std::uint32_t all = (1u << config_.num_threads) - 1;
  return (policy_.fetch_eligible(view_, all) & can_fetch) == 0;
}

// First cycle at which the frozen machine may change, computed from
// pre-probe state (conservative: the probe can only push boundaries
// later). Skipped cycles are strictly before the returned horizon.
Cycle Simulator::skip_horizon(Cycle end) {
  Cycle h = std::min(end, next_event_cycle());
  // An event due this cycle or next forbids any skip; the caller's
  // horizon > now_+1 test will fail, so the remaining bounds are moot.
  if (h <= now_ + 1) return h;
  h = std::min(h, policy_.quiesce_horizon(now_));
  // The watchdog must throw at exactly the oracle's cycle (the message
  // embeds now_); the +1 is the first cycle the condition can hold.
  h = std::min(h, last_commit_cycle_ + config_.watchdog_cycles + 1);
  for (int t = 0; t < config_.num_threads; ++t) {
    // A stalled thread with queue room resumes fetching when the stall
    // expires (mispredict refill, I-TLB walk). Applied to policy-gated
    // threads too — conservative, never wrong.
    const Cycle until = fetch_->stalled_until(t);
    if (until > now_ &&
        fetch_->queue_size(t) < config_.decode_queue_capacity) {
      h = std::min(h, until);
    }
  }
  return h;
}

void Simulator::capture_snapshot(SkipSnapshot& snap) const {
  snap.stats = stats_;
  snap.blocked_epoch = blocked_epoch_;
  snap.fetch = fetch_->stats();
  snap.steer = steering_.stats();
  snap.mob = mob_->stats();
  snap.event_order = event_order_;
  snap.events_coalesced = events_coalesced_;
  snap.select_fingerprint = policy_.select_state_fingerprint();
  snap.last_commit_cycle = last_commit_cycle_;
  for (int t = 0; t < config_.num_threads; ++t) {
    for (int k = 0; k < kNumRegClasses; ++k) {
      snap.rf_blocked[t][k] = rf_blocked_flags_[t][k];
    }
  }
}

// The heart of the oracle: the probe cycle is valid to replicate iff its
// delta over the snapshot is exactly the quiescent shape. Allowed to move:
// stats_.cycles (+1), the per-cycle stall counters a fully blocked
// rename records (rename_blocked_cycles, rename_block_*,
// iq_pref_stall_events), the MOB's full_stalls and waits (blocked loads
// re-polling against a frozen store set), and the steering decision
// tallies of the doomed attempt. Everything else — commits, renames,
// issues, fetches, squashes, events, policy/steering cursors, starvation
// flags — must be frozen, or the next cycle would not repeat this one.
bool Simulator::probe_delta_replicable(const SkipSnapshot& snap) const {
  // Blocked loads may persist through the window, but the retry pass must
  // have rebuilt the list identically: any load that forwarded, accessed,
  // or was squashed changes the machine and forbids replication. The
  // epoch counts content changes, so one compare stands in for the
  // element-wise check.
  if (blocked_epoch_ != snap.blocked_epoch) return false;
  if (event_order_ != snap.event_order) return false;
  if (events_coalesced_ != snap.events_coalesced) return false;
  if (last_commit_cycle_ != snap.last_commit_cycle) return false;
  // Starvation flags feed CDPRF's counters through the view; replication
  // (and the quiesce replay) assume they repeat identically.
  for (int t = 0; t < config_.num_threads; ++t) {
    for (int k = 0; k < kNumRegClasses; ++k) {
      if (rf_blocked_flags_[t][k] != snap.rf_blocked[t][k]) return false;
    }
  }

  const SimStats& a = snap.stats;
  const SimStats& b = stats_;
  if (b.cycles != a.cycles + 1) return false;
  for (int t = 0; t < kMaxThreads; ++t) {
    if (b.committed[t] != a.committed[t]) return false;
  }
  if (b.committed_copies != a.committed_copies) return false;
  if (b.committed_branches != a.committed_branches) return false;
  if (b.committed_loads != a.committed_loads) return false;
  if (b.committed_stores != a.committed_stores) return false;
  if (b.renamed_uops != a.renamed_uops) return false;
  if (b.copies_created != a.copies_created) return false;
  if (b.rename_cycles != a.rename_cycles) return false;
  // rename_blocked_cycles, rename_block_{iq,rf,rob,mob} and
  // iq_pref_stall_events may move: they are the per-cycle stall counters
  // replicate_skip() scales.
  if (b.non_preferred_dispatches != a.non_preferred_dispatches) return false;
  if (b.issued_uops != a.issued_uops) return false;
  if (b.cycles_with_issue != a.cycles_with_issue) return false;
  for (int i = 0; i < 2; ++i) {
    for (int k = 0; k < trace::kNumPortClasses; ++k) {
      if (b.imbalance_events[i][k] != a.imbalance_events[i][k]) return false;
    }
  }
  if (b.squashed_uops != a.squashed_uops) return false;
  if (b.branches_resolved != a.branches_resolved) return false;
  if (b.mispredicts_resolved != a.mispredicts_resolved) return false;
  if (b.policy_flushes != a.policy_flushes) return false;
  if (b.load_l2_misses != a.load_l2_misses) return false;
  if (b.store_l2_misses != a.store_l2_misses) return false;
  if (b.load_forwards != a.load_forwards) return false;

  // The front end must not have moved at all (its cursors only advance on
  // a successful selection, which these counters would record).
  const frontend::FetchStats& f = fetch_->stats();
  if (f.fetched_uops != snap.fetch.fetched_uops) return false;
  if (f.wrong_path_uops != snap.fetch.wrong_path_uops) return false;
  if (f.fetch_cycles != snap.fetch.fetch_cycles) return false;
  if (f.tc_hit_cycles != snap.fetch.tc_hit_cycles) return false;
  if (f.mispredicts_seen != snap.fetch.mispredicts_seen) return false;
  if (f.itlb_stalls != snap.fetch.itlb_stalls) return false;

  // MOB: the full-stall tally of a blocked memory rename and the wait
  // tally of re-polled blocked loads may move (both replicate per cycle);
  // an allocation, forward, or cache access is real progress.
  const memory::MobStats& m = mob_->stats();
  if (m.allocations != snap.mob.allocations) return false;
  if (m.forwards != snap.mob.forwards) return false;
  if (m.cache_accesses != snap.mob.cache_accesses) return false;

  // Round-robin steering advances its cursor on every decision, even a
  // doomed one; replicating would skew every later steer. The stateless
  // kinds just replicate their tallies.
  if (steering_.kind() == steer::SteeringKind::kRoundRobin &&
      steering_.stats().decisions != snap.steer.decisions) {
    return false;
  }
  return true;
}

// The per-cycle delta of one probed cycle, restricted to the counters a
// quiescent cycle is allowed to move. Phases of a tie-rotation orbit must
// produce identical deltas for the window to be replicable, which the
// defaulted equality compares.
Simulator::ProbeDelta Simulator::delta_since(const SkipSnapshot& s) const {
  ProbeDelta d;
  d.rename_blocked_cycles =
      stats_.rename_blocked_cycles - s.stats.rename_blocked_cycles;
  d.rename_block_iq = stats_.rename_block_iq - s.stats.rename_block_iq;
  d.rename_block_rf = stats_.rename_block_rf - s.stats.rename_block_rf;
  d.rename_block_rob = stats_.rename_block_rob - s.stats.rename_block_rob;
  d.rename_block_mob = stats_.rename_block_mob - s.stats.rename_block_mob;
  d.iq_pref_stall_events =
      stats_.iq_pref_stall_events - s.stats.iq_pref_stall_events;
  d.mob_full_stalls = mob_->stats().full_stalls - s.mob.full_stalls;
  d.mob_waits = mob_->stats().waits - s.mob.waits;
  d.steer_decisions = steering_.stats().decisions - s.steer.decisions;
  d.steer_balance_overrides =
      steering_.stats().balance_overrides - s.steer.balance_overrides;
  d.steer_dependence_free =
      steering_.stats().dependence_free - s.steer.dependence_free;
  return d;
}

void Simulator::replicate_skip(const ProbeDelta& d, Cycle horizon) {
  const std::uint64_t k = horizon - now_;  // cycles skipped: [now_, horizon)
  stats_.cycles += k;
  stats_.rename_blocked_cycles += d.rename_blocked_cycles * k;
  stats_.rename_block_iq += d.rename_block_iq * k;
  stats_.rename_block_rf += d.rename_block_rf * k;
  stats_.rename_block_rob += d.rename_block_rob * k;
  stats_.rename_block_mob += d.rename_block_mob * k;
  stats_.iq_pref_stall_events += d.iq_pref_stall_events * k;

  mob_->note_full_stalls(d.mob_full_stalls * k);
  mob_->note_waits(d.mob_waits * k);
  steer::SteeringStats sd;
  sd.decisions = d.steer_decisions;
  sd.balance_overrides = d.steer_balance_overrides;
  sd.dependence_free = d.steer_dependence_free;
  steering_.add_stats(sd, k);

  // Interval policies integrate their per-cycle counters over the skipped
  // cycles (CDPRF in closed form). view_ carries the frozen occupancies
  // and the probe-validated rf_blocked flags.
  policy_.quiesce(view_, now_, horizon);

  // The commit round-robin rotates unconditionally every cycle.
  commit_rr_ = static_cast<ThreadId>(
      (static_cast<std::uint64_t>(commit_rr_) + k) %
      static_cast<std::uint64_t>(config_.num_threads));

  cycles_skipped_ += k;
  ++skip_episodes_;
  now_ = horizon;
}

void Simulator::reset_stats() {
  stats_ = SimStats{};
  for (int t = 0; t < config_.num_threads; ++t) view_.committed[t] = 0;
  hierarchy_->reset_stats();
  mob_->reset_stats();
  fetch_->reset_stats();
  interconnect_->reset_stats();
  steering_.reset_stats();
  cycles_skipped_ = 0;
  skip_episodes_ = 0;
}

void Simulator::step() {
  // One shape test per cycle selects the specialized datapath for the
  // paper's two-thread/two-cluster machine; everything else runs the
  // generic instantiation with runtime bounds (identical code, identical
  // behavior).
  if (config_.num_clusters == 2 && config_.num_threads == 2) {
    step_cycle<2, 2>();
  } else {
    step_cycle<0, 0>();
  }
}

template <int NC, int NT>
void Simulator::step_cycle() {
  refresh_view();
#ifndef NDEBUG
  assert(validate_view());
#endif
  policy_.begin_cycle(view_);
  handle_flush_requests();
  commit_stage<NC, NT>();
  writeback_stage();
  issue_stage<NC, NT>();
  rename_stage<NC, NT>();
  fetch_stage<NT>();
  ++now_;
  ++stats_.cycles;
}

// The PipelineView is maintained incrementally: occupancy/free/used
// counters change at the mutation helpers (iq_insert/iq_remove, rf_alloc/
// rf_release, rob push/pop, sync_decode_depth), iq_unready_tc is sampled
// once per cycle by the issue stage (the view's documented one-cycle-stale
// hardware-counter semantics), and only the rf_blocked starvation flags
// are double-buffered here. Their publication schedule is this call's
// placement, kept exactly where the full rebuild used to run: at the top
// of the cycle and after each successful rename — never between the
// rename stage's flag clear and its first policy query.
void Simulator::refresh_view() {
  view_.now = now_;
  for (int t = 0; t < config_.num_threads; ++t) {
    for (int k = 0; k < kNumRegClasses; ++k) {
      view_.rf_blocked[t][k] = rf_blocked_flags_[t][k];
    }
  }
}

void Simulator::init_view() {
  view_.now = now_;
  view_.num_threads = config_.num_threads;
  view_.num_clusters = config_.num_clusters;
  view_.iq_capacity = config_.iq_entries;
  for (int c = 0; c < config_.num_clusters; ++c) {
    view_.iq_capacity_c[c] = config_.effective_iq_entries(c);
  }
  view_.rf_capacity[0] = clusters_[0].rf(RegClass::kInt).capacity();
  view_.rf_capacity[1] = clusters_[0].rf(RegClass::kFp).capacity();
  view_.issue_width = config_.issue_width;
  for (int c = 0; c < config_.num_clusters; ++c) {
    view_.rf_capacity_c[c][0] = clusters_[c].rf(RegClass::kInt).capacity();
    view_.rf_capacity_c[c][1] = clusters_[c].rf(RegClass::kFp).capacity();
    view_.issue_width_c[c] = clusters_[c].ports().num_ports();
  }
  view_.rf_unbounded = config_.rf_unbounded();
  for (int c = 0; c < config_.num_clusters; ++c) {
    view_.iq_occ[c] = clusters_[c].iq().occupancy();
    for (int k = 0; k < kNumRegClasses; ++k) {
      view_.rf_free[c][k] =
          clusters_[c].rf(static_cast<RegClass>(k)).free_count();
    }
  }
}

bool Simulator::validate_view() const {
  bool ok = true;
  const auto check = [&ok](long long view_value, long long rebuilt,
                           const char* what) {
    if (view_value == rebuilt) return;
    std::fprintf(stderr,
                 "validate_view: %s drifted (view %lld, rebuilt %lld)\n",
                 what, view_value, rebuilt);
    ok = false;
  };
  for (int c = 0; c < config_.num_clusters; ++c) {
    check(view_.iq_occ[c], clusters_[c].iq().occupancy(), "iq_occ");
    for (int k = 0; k < kNumRegClasses; ++k) {
      check(view_.rf_free[c][k],
            clusters_[c].rf(static_cast<RegClass>(k)).free_count(),
            "rf_free");
    }
  }
  for (int t = 0; t < config_.num_threads; ++t) {
    for (int c = 0; c < config_.num_clusters; ++c) {
      check(view_.iq_occ_tc[t][c], clusters_[c].iq().occupancy_of(t),
            "iq_occ_tc");
      for (int k = 0; k < kNumRegClasses; ++k) {
        check(view_.rf_used[t][c][k],
              clusters_[c].rf(static_cast<RegClass>(k)).used_by(t),
              "rf_used");
      }
    }
    check(view_.decode_queue_depth[t], fetch_->queue_size(t),
          "decode_queue_depth");
    check(view_.rob_occ[t], robs_[t].size(), "rob_occ");
    check(view_.l2_pending[t] ? 1 : 0, outstanding_l2_[t] > 0 ? 1 : 0,
          "l2_pending");
    check(static_cast<long long>(view_.committed[t]),
          static_cast<long long>(stats_.committed[t]), "committed");
  }
  return ok;
}

// --------------------------------------------------------------------------
// Incremental-view mutation helpers
// --------------------------------------------------------------------------

int Simulator::iq_insert(ClusterId c, const backend::IqEntry& entry) {
  const int slot = clusters_[c].iq().insert(entry, source_ready(entry.src0),
                                            source_ready(entry.src1));
  if (slot >= 0) {
    ++view_.iq_occ[c];
    ++view_.iq_occ_tc[entry.tid][c];
  }
  return slot;
}

void Simulator::iq_remove(ClusterId c, int slot) {
  backend::IssueQueue& iq = clusters_[c].iq();
  const ThreadId tid = iq.entry(slot).tid;
  iq.remove(slot);
  --view_.iq_occ[c];
  --view_.iq_occ_tc[tid][c];
}

int Simulator::rf_alloc(ClusterId c, RegClass cls, ThreadId tid) {
  const int index = clusters_[c].rf(cls).allocate(tid);
  if (index >= 0) {
    --view_.rf_free[c][static_cast<int>(cls)];
    ++view_.rf_used[tid][c][static_cast<int>(cls)];
  }
  return index;
}

void Simulator::rf_release(ClusterId c, RegClass cls, std::int16_t index) {
  assert(!clusters_[c].iq().has_consumers(cls, index) &&
         "released a register with live issue-queue watchers");
  const ThreadId owner = clusters_[c].rf(cls).release(index);
  ++view_.rf_free[c][static_cast<int>(cls)];
  --view_.rf_used[owner][c][static_cast<int>(cls)];
}

void Simulator::make_ready(const PhysRef& ref) {
  clusters_[ref.cluster].set_ready(ref.cls, ref.index);
}

DynUop* Simulator::rob_push(ThreadId tid) {
  DynUop* uop = robs_[tid].push();
  if (uop != nullptr) ++view_.rob_occ[tid];
  return uop;
}

void Simulator::sync_decode_depth(ThreadId tid) {
  view_.decode_queue_depth[tid] = fetch_->queue_size(tid);
}

// --------------------------------------------------------------------------
// Events
// --------------------------------------------------------------------------

void Simulator::schedule(Cycle cycle, EventKind kind, const DynUop& uop) {
  const Cycle delta = cycle - now_;
  assert(delta >= 1 && "events must be scheduled strictly in the future");
  // Min-update the next-event hint while it is valid (> now_). A stale
  // hint must stay stale — earlier events it does not know about may be
  // pending — until next_event_cycle() rescans. The update is sound even
  // on the coalesce return below: a record for `cycle` already exists.
  if (next_event_hint_ > now_ && cycle < next_event_hint_) {
    next_event_hint_ = cycle;
  }
  const int rob_slot = robs_[uop.tid].slot_of(uop);
  if (event_model_ == EventModel::kCoalescedWheel &&
      delta < kEventWheelBuckets) {
    // The bucket holds only records for exactly `cycle` (buckets are fully
    // drained each turn of the wheel), so duplicate same-cycle wakeups of
    // one consumer coalesce here with a short scan. Appends are in global
    // schedule order, so the bucket stays FIFO without order stamps.
    std::vector<WheelRecord>& bucket =
        event_wheel_[cycle & (kEventWheelBuckets - 1)];
    for (const WheelRecord& r : bucket) {
      if (r.uid == uop.uid && r.kind == kind) {
        ++events_coalesced_;
        return;
      }
    }
    event_order_++;  // stamp consumed, mirroring the reference model
    ++wheel_pending_;
    bucket.push_back(WheelRecord{.uid = uop.uid,
                                 .rob_slot = rob_slot,
                                 .tid = static_cast<std::int16_t>(uop.tid),
                                 .kind = kind});
  } else {
    event_overflow_.push(Event{.cycle = cycle,
                               .order = event_order_++,
                               .kind = kind,
                               .tid = uop.tid,
                               .rob_slot = rob_slot,
                               .uid = uop.uid});
  }
}

// --------------------------------------------------------------------------
// Commit
// --------------------------------------------------------------------------

template <int NC, int NT>
void Simulator::commit_stage() {
  const int num_clusters = bound_or<NC>(config_.num_clusters);
  const int num_threads = bound_or<NT>(config_.num_threads);
  int budget = config_.commit_width;
  int store_ports = config_.l1_write_ports;

  for (int offset = 0; offset < num_threads && budget > 0; ++offset) {
    const ThreadId t = (commit_rr_ + offset) % num_threads;
    Rob& rob = robs_[t];
    while (budget > 0 && !rob.empty()) {
      DynUop& head = rob.head();
      if (head.stage != UopStage::kDone) break;
      assert(!head.wrong_path && "wrong-path uop reached commit");

      if (head.op.is_store()) {
        if (store_ports == 0) break;  // L1 write ports exhausted this cycle
        --store_ports;
        const auto result = hierarchy_->store(head.op.mem_addr, now_);
        if (result.l2_miss) ++stats_.store_l2_misses;
      }

      // Free the registers superseded by this µop's destination.
      if (head.has_prev) {
        const RegClass cls = arch_reg_class(head.op.dst);
        for (int c = 0; c < num_clusters; ++c) {
          if (head.prev_replicas.phys[c] >= 0) {
            rf_release(c, cls, head.prev_replicas.phys[c]);
          }
        }
      }
      if (head.mob_slot >= 0) mob_->release(head.mob_slot);

      if (head.is_copy) {
        ++stats_.committed_copies;
      } else {
        ++stats_.committed[t];
        view_.committed[t] = stats_.committed[t];
        if (head.op.is_branch()) ++stats_.committed_branches;
        if (head.op.is_load()) ++stats_.committed_loads;
        if (head.op.is_store()) ++stats_.committed_stores;
      }
      if (commit_hook_) commit_hook_(head);

      head.uid = 0;  // invalidate pending events
      rob.pop_head();
      --view_.rob_occ[t];
      --budget;
      last_commit_cycle_ = now_;
    }
  }
  commit_rr_ = (commit_rr_ + 1) % num_threads;
}

// --------------------------------------------------------------------------
// Writeback / memory
// --------------------------------------------------------------------------

void Simulator::note_l2_miss_started(DynUop& uop) {
  uop.l2_miss_outstanding = true;
  ++outstanding_l2_[uop.tid];
  view_.l2_pending[uop.tid] = true;
  policy_.on_l2_miss(uop.tid, uop.seq, now_);
}

void Simulator::note_l2_miss_finished(DynUop& uop) {
  assert(uop.l2_miss_outstanding);
  uop.l2_miss_outstanding = false;
  --outstanding_l2_[uop.tid];
  assert(outstanding_l2_[uop.tid] >= 0);
  view_.l2_pending[uop.tid] = outstanding_l2_[uop.tid] > 0;
  policy_.on_l2_resolved(uop.tid, uop.seq, now_);
}

void Simulator::start_load_access(DynUop& uop) {
  const auto check = mob_->check_load(uop.mob_slot);
  switch (check) {
    case memory::LoadCheck::kWait:
      // A first-time block changes the list content; a re-block during
      // the retry pass is netted out there by the size check.
      if (!in_blocked_retry_) ++blocked_epoch_;
      blocked_loads_.push_back(
          {uop.tid, robs_[uop.tid].slot_of(uop), uop.uid});
      return;
    case memory::LoadCheck::kForward:
      ++stats_.load_forwards;
      schedule(now_ + 1, EventKind::kComplete, uop);
      return;
    case memory::LoadCheck::kAccess: {
      const auto result = hierarchy_->load(uop.op.mem_addr, now_);
      if (result.l2_miss) {
        ++stats_.load_l2_misses;
        note_l2_miss_started(uop);
      }
      schedule(now_ + static_cast<Cycle>(result.latency),
               EventKind::kComplete, uop);
      return;
    }
  }
}

void Simulator::retry_blocked_loads() {
  if (blocked_loads_.empty()) return;
  std::vector<BlockedLoad> pending;
  pending.swap(blocked_loads_);
  in_blocked_retry_ = true;
  for (const BlockedLoad& bl : pending) {
    DynUop& uop = robs_[bl.tid].at_slot(bl.rob_slot);
    if (uop.uid != bl.uid) continue;  // squashed meanwhile
    start_load_access(uop);           // re-blocks if still ambiguous
  }
  in_blocked_retry_ = false;
  // The rebuild preserves order and only removes, so an unchanged size
  // means the list is element-wise identical to pending: no epoch bump.
  if (blocked_loads_.size() != pending.size()) ++blocked_epoch_;
}

void Simulator::writeback_stage() {
  retry_blocked_loads();
  drain_events();
}

void Simulator::drain_events() {
  // Due heap events first: an overflow event due now was scheduled at or
  // before now - kEventWheelBuckets, strictly before anything in this
  // cycle's bucket was stamped, so heap-then-bucket IS global
  // (cycle, order) order — no merge step. Under kHeapReference the bucket
  // is always empty and this is the original priority-queue drain.
  while (!event_overflow_.empty() && event_overflow_.top().cycle <= now_) {
    const Event event = event_overflow_.top();
    event_overflow_.pop();
    assert(event.cycle == now_ && "event missed its cycle");
    dispatch_event(event.kind, event.tid, event.rob_slot, event.uid);
  }

  // Then this cycle's wheel bucket, in append (= order-stamp) order.
  // Events dispatched here schedule follow-ups at least one cycle ahead,
  // which by construction land in a different bucket, so indexed
  // iteration is safe against reallocation.
  std::vector<WheelRecord>& bucket =
      event_wheel_[now_ & (kEventWheelBuckets - 1)];
  for (std::size_t i = 0; i < bucket.size(); ++i) {
    const WheelRecord r = bucket[i];
    dispatch_event(r.kind, static_cast<ThreadId>(r.tid), r.rob_slot, r.uid);
  }
  // Follow-ups scheduled during the drain landed in other buckets (and
  // already incremented the counter); this bucket's records all retire.
  wheel_pending_ -= bucket.size();
  bucket.clear();
}

Cycle Simulator::next_event_cycle() {
  // Valid-hint fast path: schedule() min-updates the hint and events are
  // only removed by the drain at their exact due cycle, so a hint still
  // in the future IS the exact earliest pending cycle (see the invariant
  // note at the member).
  if (next_event_hint_ > now_) return next_event_hint_;
  Cycle best = std::numeric_limits<Cycle>::max();
  if (!event_overflow_.empty()) best = event_overflow_.top().cycle;
  if (wheel_pending_ > 0) {
    // Every live wheel record is due within [now_, now_ + buckets): records
    // are drained at their due cycle, so none can be a full revolution
    // stale. Scan forward to the first non-empty bucket, stopping early if
    // the heap already wins.
    for (Cycle c = now_; c < now_ + static_cast<Cycle>(kEventWheelBuckets);
         ++c) {
      if (c >= best) break;
      if (!event_wheel_[c & (kEventWheelBuckets - 1)].empty()) {
        best = c;
        break;
      }
    }
  }
  next_event_hint_ = best;
  return best;
}

void Simulator::dispatch_event(EventKind kind, ThreadId tid, int rob_slot,
                               std::uint64_t uid) {
  DynUop* uop = &robs_[tid].at_slot(rob_slot);
  if (uop->uid != uid || uop->tid != tid) return;  // squashed meanwhile

  switch (kind) {
      case EventKind::kAgu: {
        mob_->set_address(uop->mob_slot, uop->op.mem_addr);
        if (uop->op.is_store()) {
          uop->stage = UopStage::kDone;  // data written at commit
          break;
        }
        start_load_access(*uop);
        break;
      }
      case EventKind::kComplete: {
        if (uop->is_copy) {
          // The copy's value crosses the interconnect; retry next cycle
          // when both links are busy.
          if (interconnect_->try_acquire()) {
            // A copy µop sits in the producer's cluster and writes the
            // consumer's (uop->cluster → dst.cluster); heterogeneous
            // grids may place that pair near or far.
            schedule(now_ + static_cast<Cycle>(interconnect_->latency(
                                uop->cluster, uop->dst.cluster)),
                     EventKind::kCopyArrive, *uop);
          } else {
            schedule(now_ + 1, EventKind::kComplete, *uop);
          }
          break;
        }
        if (uop->dst.valid()) make_ready(uop->dst);
        if (uop->op.is_load() && uop->l2_miss_outstanding) {
          note_l2_miss_finished(*uop);
        }
        uop->stage = UopStage::kDone;
        if (uop->op.is_branch()) {
          ++stats_.branches_resolved;
          if (!uop->wrong_path) {
            fetch_->predictor().train(uop->tid, uop->history_checkpoint,
                                      uop->op.pc, uop->op.taken);
            if (uop->op.indirect) {
              fetch_->predictor().train_indirect(uop->op.pc, uop->op.target);
            }
            if (uop->mispredicted) {
              ++stats_.mispredicts_resolved;
              squash_younger_than(uop->tid, uop->seq, nullptr, nullptr);
              fetch_->resolve_mispredict(uop->tid, uop->history_checkpoint,
                                         uop->op.taken, now_);
              sync_decode_depth(uop->tid);
            }
          }
        }
        break;
      }
      case EventKind::kCopyArrive: {
        make_ready(uop->dst);
        uop->stage = UopStage::kDone;
        break;
      }
  }
}

// --------------------------------------------------------------------------
// Issue
// --------------------------------------------------------------------------

bool Simulator::source_ready(const PhysRef& ref) const {
  if (!ref.valid()) return true;
  return clusters_[ref.cluster].rf(ref.cls).ready(ref.index);
}

template <int NC, int NT>
void Simulator::issue_stage() {
  const int num_clusters = bound_or<NC>(config_.num_clusters);
  const int num_threads = bound_or<NT>(config_.num_threads);
  interconnect_->new_cycle();
  bool any_issue = false;
  int ready_unissued[kMaxClusters][trace::kNumPortClasses] = {};

  // Grants an issue port to the (ready) entry at `slot` if one is free.
  const auto try_issue = [&](int c, int slot) {
    backend::Cluster& cluster = clusters_[c];
    const backend::IqEntry& entry = cluster.iq().entry(slot);
    const trace::PortClass port_class = trace::port_class_of(entry.cls);
    if (!cluster.ports().try_book(port_class)) {
      ++ready_unissued[c][static_cast<int>(port_class)];
      return;
    }
    DynUop& uop =
        robs_[rob_ref_tid(entry.rob_ref)].at_slot(rob_ref_slot(entry.rob_ref));
    iq_remove(c, slot);
    uop.iq_slot = -1;
    uop.stage = UopStage::kIssued;
    ++stats_.issued_uops;
    any_issue = true;
    if (trace::is_memory(uop.op.cls)) {
      schedule(now_ + 1, EventKind::kAgu, uop);  // 1-cycle AGU
    } else {
      schedule(now_ + static_cast<Cycle>(trace::execution_latency(uop.op.cls)),
               EventKind::kComplete, uop);
    }
  };

  for (int c = 0; c < num_clusters; ++c) {
    backend::Cluster& cluster = clusters_[c];
    cluster.ports().new_cycle();
    if (issue_model_ == IssueModel::kWakeup) {
      // The view's unready counters sample the wakeup bookkeeping here, at
      // the same point the reference scan would have counted them, keeping
      // the documented one-cycle-stale hardware-counter semantics.
      for (int t = 0; t < num_threads; ++t) {
        view_.iq_unready_tc[t][c] = cluster.iq().waiting_of(t);
      }
      // Scan only ready entries, oldest first (the iterator advances past
      // a slot before handing it out, so issuing may remove it).
      backend::IssueQueue::OrderedIter it = cluster.iq().ready_iter();
      for (int slot = it.next(); slot != -1; slot = it.next()) {
        try_issue(c, slot);
        if (cluster.ports().all_booked()) {
          // Every port is taken: the rest of the ready list can only be
          // denied. Tally the Figure 5 events without probing the ports
          // (try_book on a fully-booked set always fails).
          for (int rest = it.next(); rest != -1; rest = it.next()) {
            const trace::PortClass pc =
                trace::port_class_of(cluster.iq().entry(rest).cls);
            ++ready_unissued[c][static_cast<int>(pc)];
          }
          break;
        }
      }
    } else {
      // Reference model: probe every occupied slot through the register
      // files (the original per-cycle rescan). Kept as the differential-
      // test oracle for the wakeup path.
      for (int t = 0; t < num_threads; ++t) {
        view_.iq_unready_tc[t][c] = 0;
      }
      backend::IssueQueue::OrderedIter it = cluster.iq().age_iter();
      for (int slot = it.next(); slot != -1; slot = it.next()) {
        const backend::IqEntry& entry = cluster.iq().entry(slot);
        if (!source_ready(entry.src0) || !source_ready(entry.src1)) {
          ++view_.iq_unready_tc[entry.tid][c];
        } else {
          try_issue(c, slot);
        }
      }
    }
  }

  // Figure 5: ready µops denied an issue slot — could the other cluster
  // have executed them this cycle?
  for (int c = 0; c < num_clusters; ++c) {
    for (int k = 0; k < trace::kNumPortClasses; ++k) {
      const int denied = ready_unissued[c][k];
      if (denied == 0) continue;
      bool other_has_slot = false;
      for (int c2 = 0; c2 < num_clusters; ++c2) {
        if (c2 == c) continue;
        if (clusters_[c2].ports().free_compatible(
                static_cast<trace::PortClass>(k)) > 0) {
          other_has_slot = true;
          break;
        }
      }
      stats_.imbalance_events[other_has_slot ? 1 : 0][k] +=
          static_cast<std::uint64_t>(denied);
    }
  }
  if (any_issue) ++stats_.cycles_with_issue;
}

// --------------------------------------------------------------------------
// Rename / steer / dispatch
// --------------------------------------------------------------------------

template <int NC, int NT>
void Simulator::rename_stage() {
  const int num_threads = bound_or<NT>(config_.num_threads);
  refresh_view();
  for (int t = 0; t < num_threads; ++t) {
    for (int k = 0; k < kNumRegClasses; ++k) rf_blocked_flags_[t][k] = false;
  }

  std::uint32_t candidates = 0;
  for (int t = 0; t < num_threads; ++t) {
    if (!fetch_->queue_empty(t)) candidates |= 1u << t;
  }
  candidates = policy_.rename_eligible(view_, candidates);
  if (candidates == 0) return;

  const ThreadId tid = policy_.select_rename_thread(view_, candidates);
  if (tid < 0) return;

  // Per-burst invariants, hoisted out of the per-µop loop: the forced
  // cluster is a function of (scheme, tid) only.
  const ClusterId forced = policy_.forced_cluster(view_, tid);

  int budget = config_.rename_width;
  bool renamed_any = false;
  while (budget > 0 && !fetch_->queue_empty(tid)) {
    const int consumed = try_rename_front<NC>(tid, forced);
    if (consumed == 0) {
      ++stats_.rename_blocked_cycles;
      break;
    }
    budget -= consumed;
    renamed_any = true;
    // Republish the rf_blocked snapshot (occupancies are already live):
    // a successful rename cleared the thread's flags, and the next µop's
    // policy queries must see that, exactly as the old full refresh did.
    refresh_view();
  }
  if (renamed_any) ++stats_.rename_cycles;
}

// Rename-plan memoization (SimConfig::rename_memo). The copy-plan *shape*
// — which clusters need copies and each copy's {arch, source cluster} — is
// a pure function of (src0, src1, the sources' replica masks) alone, so
// the memo is keyed on exactly that tuple and shared by every thread and
// pc: hot registers dominate the synthetic traces' geometric operand
// distribution, which makes this small domain re-occur constantly even
// though (pc, srcs) pairs rarely repeat. Direct-mapped with the full key
// checked exactly: a collision or a changed replica mask is a miss that
// refills the slot. Physical register numbers are re-read live (phys ids
// recycle under the same mask), so no invalidation is ever needed.
const Simulator::PlanMemoEntry* Simulator::plan_memo_lookup(
    const frontend::FetchedUop& fu,
    const frontend::ReplicaSet* const srcs[2]) {
  if (plan_memo_.empty()) plan_memo_.resize(kPlanMemoEntries);
  const std::uint8_t mask0 = srcs[0] != nullptr ? srcs[0]->mask : 0;
  const std::uint8_t mask1 = srcs[1] != nullptr ? srcs[1]->mask : 0;
  const std::uint32_t h =
      (static_cast<std::uint32_t>(static_cast<std::uint16_t>(fu.op.src0)) *
       0x9e37u) ^
      (static_cast<std::uint32_t>(static_cast<std::uint16_t>(fu.op.src1)) *
       0x85ebu) ^
      (static_cast<std::uint32_t>(mask0) << 8) ^ mask1;
  PlanMemoEntry& e = plan_memo_[h & (kPlanMemoEntries - 1)];
  if (e.src0 == fu.op.src0 && e.src1 == fu.op.src1 && e.mask0 == mask0 &&
      e.mask1 == mask1) {
    return &e;
  }
  // Miss: rebuild the entry by replaying plan_for_cluster's plan_source
  // logic (same skip conditions, same dedup, same any_cluster choice) for
  // every cluster. The forced-cluster dispatch argument is deliberately
  // not in the key: the plan shape is derived for all clusters at once
  // and never depends on which one the caller targets.
  e = PlanMemoEntry{};
  e.src0 = static_cast<std::int16_t>(fu.op.src0);
  e.src1 = static_cast<std::int16_t>(fu.op.src1);
  e.mask0 = mask0;
  e.mask1 = mask1;
  for (int c = 0; c < config_.num_clusters; ++c) {
    int n = 0;
    const auto add = [&](int arch, std::uint8_t mask) {
      if (arch < 0) return;                 // absent source
      if (mask == 0) return;                // !anywhere()
      if ((mask >> c) & 1u) return;         // present(cluster)
      for (int i = 0; i < n; ++i) {
        if (e.copies[c][i].arch == arch) return;  // one copy per arch reg
      }
      e.copies[c][n].arch = static_cast<std::int16_t>(arch);
      // any_cluster() == lowest set bit of the presence mask.
      e.copies[c][n].from = static_cast<std::int8_t>(std::countr_zero(mask));
      ++n;
    };
    add(fu.op.src0, mask0);
    add(fu.op.src1, mask1);
    e.num_copies[c] = static_cast<std::uint8_t>(n);
    if (n > 0) e.copy_needed_mask |= static_cast<std::uint8_t>(1u << c);
  }
  return &e;
}

template <int NC>
bool Simulator::plan_for_cluster(ThreadId tid, const frontend::FetchedUop& fu,
                                 const frontend::ReplicaSet* const srcs[2],
                                 ClusterId cluster, RenamePlan& plan,
                                 bool& iq_failure, bool& rf_failure,
                                 const PlanMemoEntry* memo) {
  const int num_clusters = bound_or<NC>(config_.num_clusters);
  plan = RenamePlan{};
  plan.cluster = cluster;

  int iq_need[kMaxClusters] = {};
  iq_need[cluster] += 1;
  int rf_need[kNumRegClasses] = {};

  if (memo != nullptr) {
    // Replay the cached skeleton; only the physical register ids are read
    // live (the exact-mask key guarantees rs->phys[sk.from] >= 0).
    for (int i = 0; i < memo->num_copies[cluster]; ++i) {
      const PlanMemoEntry::CopySkeleton& sk = memo->copies[cluster][i];
      const frontend::ReplicaSet& rs =
          sk.arch == fu.op.src0 ? *srcs[0] : *srcs[1];
      plan.copies[plan.num_copies++] = RenamePlan::CopyPlan{
          sk.arch, sk.from, rs.phys[sk.from]};
      ++iq_need[sk.from];
      ++rf_need[static_cast<int>(arch_reg_class(sk.arch))];
    }
  } else {
    auto plan_source = [&](int arch, const frontend::ReplicaSet* rs) {
      if (rs == nullptr) return;
      if (!rs->anywhere() || rs->present(cluster)) return;
      for (int i = 0; i < plan.num_copies; ++i) {
        if (plan.copies[i].arch == arch) return;  // one copy per arch reg
      }
      const ClusterId from = rs->any_cluster();
      plan.copies[plan.num_copies++] =
          RenamePlan::CopyPlan{arch, from, rs->phys[from]};
      ++iq_need[from];
      ++rf_need[static_cast<int>(arch_reg_class(arch))];
    };
    plan_source(fu.op.src0, srcs[0]);
    plan_source(fu.op.src1, srcs[1]);
  }

  if (fu.op.has_dst()) {
    ++rf_need[static_cast<int>(arch_reg_class(fu.op.dst))];
  }

  if (robs_[tid].free_slots() < 1 + plan.num_copies) return false;

  int total_iq_need = 0;
  for (int c = 0; c < num_clusters; ++c) total_iq_need += iq_need[c];
  for (int c = 0; c < num_clusters; ++c) {
    if (iq_need[c] == 0) continue;
    if (clusters_[c].iq().occupancy() + iq_need[c] >
            clusters_[c].iq().capacity() ||
        !policy_.allow_iq_dispatch(view_, tid, c, iq_need[c],
                                    total_iq_need)) {
      iq_failure = true;
      return false;
    }
  }

  for (int k = 0; k < kNumRegClasses; ++k) {
    if (rf_need[k] == 0) continue;
    const RegClass cls = static_cast<RegClass>(k);
    if (clusters_[cluster].rf(cls).free_count() < rf_need[k] ||
        !policy_.allow_rf_alloc(view_, tid, cluster, cls, rf_need[k])) {
      rf_failure = true;
      rf_blocked_flags_[tid][k] = true;  // refined below when dispatched
      return false;
    }
  }
  return true;
}

// The checks, their order, the policy-query arguments and the failure
// flags are exactly plan_for_cluster's with num_copies == 0; only the copy
// bookkeeping (need arrays, copy scan) is gone. The parity is what the
// golden gate certifies.
bool Simulator::plan_no_copies(ThreadId tid, const frontend::FetchedUop& fu,
                               ClusterId cluster, RenamePlan& plan,
                               bool& iq_failure, bool& rf_failure) {
  plan.cluster = cluster;
  plan.num_copies = 0;
  plan.off_preferred_iq = false;

  if (robs_[tid].free_slots() < 1) return false;

  if (clusters_[cluster].iq().occupancy() + 1 >
          clusters_[cluster].iq().capacity() ||
      !policy_.allow_iq_dispatch(view_, tid, cluster, 1, 1)) {
    iq_failure = true;
    return false;
  }

  if (fu.op.has_dst()) {
    const RegClass cls = arch_reg_class(fu.op.dst);
    if (clusters_[cluster].rf(cls).free_count() < 1 ||
        !policy_.allow_rf_alloc(view_, tid, cluster, cls, 1)) {
      rf_failure = true;
      rf_blocked_flags_[tid][static_cast<int>(cls)] = true;
      return false;
    }
  }
  return true;
}

template <int NC>
int Simulator::try_rename_front(ThreadId tid, ClusterId forced) {
  const int num_clusters = bound_or<NC>(config_.num_clusters);
  const frontend::FetchedUop& fu = fetch_->queue_front(tid);

  // Memory-order-buffer slot is cluster independent.
  if (trace::is_memory(fu.op.cls) && mob_->full()) {
    ++stats_.rename_block_mob;
    mob_->note_full_stall();
    return 0;
  }

  // A full ROB fails every cluster's plan before its issue-queue or
  // register checks run, so no starvation flags or preferred-IQ events
  // would be recorded: take the blocked exit without voting/steering/
  // planning. Round-robin steering is excluded because its cursor advances
  // on every (even failed) decision and skipping would change later
  // cluster choices. For the stateless kinds only the Steering *decision
  // counters* stop counting these doomed attempts — SimStats and every
  // golden table are unaffected.
  if (robs_[tid].full() &&
      steering_.kind() != steer::SteeringKind::kRoundRobin) {
    ++stats_.rename_block_rob;
    return 0;
  }

  // Source replica sets, looked up once per µop and shared by the steering
  // vote and every per-cluster plan below.
  frontend::RenameMap& rmap = rename_maps_[tid];
  const frontend::ReplicaSet* srcs[2] = {
      fu.op.src0 >= 0 ? &rmap.get(fu.op.src0) : nullptr,
      fu.op.src1 >= 0 ? &rmap.get(fu.op.src1) : nullptr,
  };

  // Dependence vote for the steering heuristic. Sources whose value is
  // still in flight vote with triple weight: following them avoids a copy
  // that would serialise behind the producer and linger in the producer's
  // issue queue ([12] prioritises unavailable operands).
  int dep_count[kMaxClusters] = {};
  auto vote = [&](int arch, const frontend::ReplicaSet* rs) {
    if (rs == nullptr) return;
    const RegClass cls = arch_reg_class(arch);
    for (int c = 0; c < num_clusters; ++c) {
      if (!rs->present(c)) continue;
      const bool in_flight =
          !clusters_[c].rf(cls).ready(rs->phys[c]);
      dep_count[c] += in_flight ? 3 : 1;
    }
  };
  vote(fu.op.src0, srcs[0]);
  vote(fu.op.src1, srcs[1]);

  // A cluster needs no copies when every live source already has a
  // replica there — the overwhelmingly common case for the preferred
  // cluster, which plan_no_copies handles without the copy bookkeeping.
  const auto needs_copies = [&](ClusterId c) {
    return (srcs[0] != nullptr && srcs[0]->anywhere() &&
            !srcs[0]->present(c)) ||
           (srcs[1] != nullptr && srcs[1]->anywhere() &&
            !srcs[1]->present(c));
  };
  // Memoized copy-plan shape (SimConfig::rename_memo), consulted lazily:
  // the lookup runs only when some cluster's plan actually needs copies —
  // the no-copy fast path (the overwhelming majority of renames) must not
  // pay a table touch it cannot profit from. One lookup serves every
  // cluster planned for this µop. nullptr when the feature is off; the
  // entry's exact key makes the replay bit-identical to the loop it
  // replaces — tests/skip_ahead_test.cc diffs the modes.
  const PlanMemoEntry* memo = nullptr;
  bool memo_resolved = false;
  const auto plan_cluster = [&](ClusterId c, RenamePlan& plan,
                                bool& iq_failure, bool& rf_failure) {
    if (!needs_copies(c)) {
      return plan_no_copies(tid, fu, c, plan, iq_failure, rf_failure);
    }
    if (!memo_resolved) {
      memo_resolved = true;
      if (config_.rename_memo) memo = plan_memo_lookup(fu, srcs);
    }
    return plan_for_cluster<NC>(tid, fu, srcs, c, plan, iq_failure,
                                rf_failure, memo);
  };

  ClusterId preferred;
  int iq_occ[kMaxClusters];
  if (forced >= 0) {
    preferred = forced;
  } else {
    for (int c = 0; c < num_clusters; ++c) {
      iq_occ[c] = clusters_[c].iq().occupancy();
    }
    preferred = steering_.preferred(
        std::span<const int>(dep_count, num_clusters),
        std::span<const int>(iq_occ, num_clusters));
  }

  bool preferred_iq_failure = false;
  bool any_iq_failure = false;
  bool any_rf_failure = false;
  RenamePlan plan;
  bool planned = false;
  {
    bool iq_failure = false;
    bool rf_failure = false;
    if (plan_cluster(preferred, plan, iq_failure, rf_failure)) {
      plan.off_preferred_iq = false;
      planned = true;
    } else {
      preferred_iq_failure = iq_failure;
      any_iq_failure = iq_failure;
      any_rf_failure = rf_failure;
    }
  }

  if (!planned && forced < 0) {
    // Preferred cluster refused: only now build the fallback order —
    // remaining clusters, least loaded first (insertion sort; <= 3 items,
    // over the occupancies read before any planning, which planning does
    // not change).
    ClusterId order[kMaxClusters];
    int order_len = 0;
    for (int c = 0; c < num_clusters; ++c) {
      if (c == preferred) continue;
      // Capacity-scaled like the steering comparisons (identity on
      // homogeneous grids), so fallback order also respects shape.
      const int load = steering_.scaled_load(c, iq_occ[c]);
      int pos = order_len++;
      while (pos > 0 &&
             steering_.scaled_load(order[pos - 1], iq_occ[order[pos - 1]]) >
                 load) {
        order[pos] = order[pos - 1];
        --pos;
      }
      order[pos] = c;
    }
    for (int oi = 0; oi < order_len; ++oi) {
      const ClusterId c = order[oi];
      bool iq_failure = false;
      bool rf_failure = false;
      if (plan_cluster(c, plan, iq_failure, rf_failure)) {
        plan.off_preferred_iq = preferred_iq_failure;
        planned = true;
        break;
      }
      any_iq_failure |= iq_failure;
      any_rf_failure |= rf_failure;
    }
  }

  if (!planned) {
    // Figure 4 counts the µop's failure to enter its preferred cluster
    // whether or not renaming ultimately blocked.
    if (preferred_iq_failure) ++stats_.iq_pref_stall_events;
    if (any_iq_failure) ++stats_.rename_block_iq;
    if (any_rf_failure) ++stats_.rename_block_rf;
    if (!any_iq_failure && !any_rf_failure) ++stats_.rename_block_rob;
    return 0;
  }

  // The µop dispatched somewhere; clear speculative starvation marks made
  // while probing failed clusters.
  for (int k = 0; k < kNumRegClasses; ++k) rf_blocked_flags_[tid][k] = false;

  if (plan.off_preferred_iq) {
    ++stats_.iq_pref_stall_events;
    ++stats_.non_preferred_dispatches;
  }

  execute_plan(tid, fu, srcs, plan);
  fetch_->drop_front(tid);
  sync_decode_depth(tid);
  ++stats_.renamed_uops;
  stats_.copies_created += static_cast<std::uint64_t>(plan.num_copies);
  // Copies are injected by dedicated rename-stage ports ([12]: "generated
  // on demand by the rename logic") and do not consume the 6-wide rename
  // bandwidth; they do occupy ROB/IQ entries, registers and link slots.
  return 1;
}

void Simulator::execute_plan(ThreadId tid, const frontend::FetchedUop& fu,
                             const frontend::ReplicaSet* const srcs[2],
                             const RenamePlan& plan) {
  frontend::RenameMap& rmap = rename_maps_[tid];
  const ClusterId target = plan.cluster;

  // Copies precede the consumer in program order ([12]: generated
  // on demand by the rename logic).
  for (int i = 0; i < plan.num_copies; ++i) {
    const RenamePlan::CopyPlan& cp = plan.copies[i];
    const RegClass cls = arch_reg_class(cp.arch);
    DynUop* copy = rob_push(tid);
    assert(copy != nullptr);
    copy->op = trace::MicroOp{};  // Rob::push leaves the payload stale
    copy->op.cls = trace::UopClass::kCopy;
    copy->op.pc = fu.op.pc;
    copy->tid = tid;
    copy->seq = next_seq_[tid]++;
    copy->uid = next_uid_++;
    copy->wrong_path = fu.wrong_path;
    copy->is_copy = true;
    copy->cluster = cp.from;  // reads (and issues) in the producer cluster
    copy->srcs[0] = PhysRef{static_cast<std::int8_t>(cp.from), cls,
                            cp.from_phys};
    const int dst_index = rf_alloc(target, cls, tid);
    assert(dst_index >= 0);
    copy->dst = PhysRef{static_cast<std::int8_t>(target), cls,
                        static_cast<std::int16_t>(dst_index)};
    copy->copy_arch = cp.arch;
    rmap.add_replica(cp.arch, target, static_cast<std::int16_t>(dst_index));

    backend::IqEntry entry{.tid = tid,
                           .seq = copy->seq,
                           .cls = trace::UopClass::kCopy,
                           .src0 = copy->srcs[0],
                           .src1 = kNoPhysRef,
                           .rob_ref = pack_rob_ref(
                               tid, robs_[tid].slot_of(*copy))};
    copy->iq_slot = iq_insert(cp.from, entry);
    assert(copy->iq_slot >= 0);
  }

  DynUop* uop = rob_push(tid);
  assert(uop != nullptr);
  uop->op = fu.op;
  uop->tid = tid;
  uop->seq = next_seq_[tid]++;
  uop->uid = next_uid_++;
  uop->wrong_path = fu.wrong_path;
  uop->mispredicted = fu.mispredicted;
  uop->history_checkpoint = fu.history_checkpoint;
  uop->predicted_taken = fu.predicted_taken;
  uop->cluster = target;
  uop->steered_off_preferred = plan.off_preferred_iq;

  // Resolve sources after copies (replicas now exist in `target`) and
  // before the destination is redefined (a µop may read its own register).
  // When the plan made no copies the prefetched replica sets are still
  // current and the map lookup is skipped.
  auto resolve = [&](int arch, const frontend::ReplicaSet* rs) -> PhysRef {
    if (arch < 0) return kNoPhysRef;
    if (plan.num_copies != 0) rs = &rmap.get(arch);
    if (!rs->anywhere()) return kNoPhysRef;  // architecturally cold: ready
    assert(rs->present(target));
    return PhysRef{static_cast<std::int8_t>(target), arch_reg_class(arch),
                   rs->phys[target]};
  };
  uop->srcs[0] = resolve(fu.op.src0, srcs[0]);
  uop->srcs[1] = resolve(fu.op.src1, srcs[1]);

  if (fu.op.has_dst()) {
    const RegClass cls = arch_reg_class(fu.op.dst);
    const int dst_index = rf_alloc(target, cls, tid);
    assert(dst_index >= 0);
    uop->dst = PhysRef{static_cast<std::int8_t>(target), cls,
                       static_cast<std::int16_t>(dst_index)};
    uop->prev_replicas = rmap.define(fu.op.dst, target,
                                     static_cast<std::int16_t>(dst_index));
    uop->has_prev = true;
  }

  if (trace::is_memory(fu.op.cls)) {
    uop->mob_slot = mob_->allocate(tid, uop->seq, fu.op.is_store());
    assert(uop->mob_slot >= 0);
  }

  backend::IqEntry entry{.tid = tid,
                         .seq = uop->seq,
                         .cls = fu.op.cls,
                         .src0 = uop->srcs[0],
                         .src1 = uop->srcs[1],
                         .rob_ref =
                             pack_rob_ref(tid, robs_[tid].slot_of(*uop))};
  if (fu.op.is_store()) {
    // Stores model the x86 STA/STD split: the address µop issues as soon
    // as the address source (src0) is ready so younger loads can
    // disambiguate; the data (src1, produced by an older µop) is committed
    // with the store and never delays address generation.
    entry.src1 = kNoPhysRef;
  }
  uop->iq_slot = iq_insert(target, entry);
  assert(uop->iq_slot >= 0);
}

// --------------------------------------------------------------------------
// Fetch
// --------------------------------------------------------------------------

template <int NT>
void Simulator::fetch_stage() {
  const int num_threads = bound_or<NT>(config_.num_threads);
  std::uint32_t mask = (1u << num_threads) - 1;
  mask = policy_.fetch_eligible(view_, mask);
  const ThreadId tid = fetch_->select_fetch_thread(mask, now_);
  if (tid >= 0) {
    fetch_->fetch_cycle(tid, now_);
    sync_decode_depth(tid);
  }
}

// --------------------------------------------------------------------------
// Recovery
// --------------------------------------------------------------------------

void Simulator::undo_uop(DynUop& uop) {
  ++stats_.squashed_uops;
  if (uop.stage == UopStage::kDispatched && uop.iq_slot >= 0) {
    iq_remove(uop.cluster, uop.iq_slot);
    uop.iq_slot = -1;
  }
  if (uop.l2_miss_outstanding) note_l2_miss_finished(uop);
  if (uop.mob_slot >= 0) {
    mob_->release(uop.mob_slot);
    uop.mob_slot = -1;
  }
  if (uop.is_copy) {
    rename_maps_[uop.tid].remove_replica(uop.copy_arch, uop.dst.cluster);
    rf_release(uop.dst.cluster, uop.dst.cls, uop.dst.index);
  } else if (uop.has_prev) {
    rename_maps_[uop.tid].restore(uop.op.dst, uop.prev_replicas);
    rf_release(uop.dst.cluster, uop.dst.cls, uop.dst.index);
  }
  uop.uid = 0;  // poison pending events / blocked-load references
}

void Simulator::squash_younger_than(ThreadId tid, std::uint64_t boundary_seq,
                                    std::vector<trace::MicroOp>* replay_out,
                                    std::uint64_t* oldest_branch_checkpoint) {
  Rob& rob = robs_[tid];
  while (!rob.empty() && rob.tail().seq > boundary_seq) {
    DynUop& tail = rob.tail();
    if (replay_out && !tail.wrong_path && !tail.is_copy) {
      replay_out->push_back(tail.op);  // collected youngest-first
    }
    if (oldest_branch_checkpoint && tail.op.is_branch() && !tail.wrong_path &&
        !tail.is_copy) {
      *oldest_branch_checkpoint = tail.history_checkpoint;
    }
    undo_uop(tail);
    rob.pop_tail();
    --view_.rob_occ[tid];
  }
}

void Simulator::handle_flush_requests() {
  while (auto request = policy_.flush_request(now_)) {
    std::vector<trace::MicroOp> replay;
    std::uint64_t checkpoint = 0;
    bool any_branch = false;
    {
      // Detect whether a correct-path branch will be squashed so we know
      // to restore the history register.
      Rob& rob = robs_[request->tid];
      rob.for_each([&](DynUop& u) {
        if (u.seq > request->after_seq && u.op.is_branch() && !u.wrong_path &&
            !u.is_copy) {
          any_branch = true;
        }
      });
    }
    squash_younger_than(request->tid, request->after_seq, &replay,
                        &checkpoint);
    std::reverse(replay.begin(), replay.end());
    fetch_->flush_and_replay(request->tid, replay,
                             any_branch
                                 ? std::optional<std::uint64_t>(checkpoint)
                                 : std::nullopt);
    sync_decode_depth(request->tid);
    policy_.on_flush_done(request->tid);
    ++stats_.policy_flushes;
  }
}

}  // namespace clusmt::core
