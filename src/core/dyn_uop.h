// In-flight µop state and the per-thread reorder buffer.
#pragma once

#include <cstdint>
#include <vector>

#include "common/phys_ref.h"
#include "common/types.h"
#include "frontend/rename_map.h"
#include "trace/uop.h"

namespace clusmt::core {

enum class UopStage : std::uint8_t {
  kDispatched = 0,  // renamed, sitting in an issue queue
  kIssued,          // left the issue queue, executing
  kDone,            // result produced; eligible to commit
};

// Field order is deliberate: the identification and scheduling scalars the
// event queue, issue stage and commit stage touch every visit (uid, seq,
// stage, flags, refs, slots) share the struct's first cache line, so the
// common resolve-and-complete path does not also pull in the trailing
// MicroOp payload and rename-undo state.
struct DynUop {
  std::uint64_t uid = 0;   // globally unique (guards stale events)
  std::uint64_t seq = 0;   // per-thread program order (copies included)
  ThreadId tid = -1;
  ClusterId cluster = -1;  // execution cluster
  int iq_slot = -1;        // while kDispatched
  int mob_slot = -1;       // loads/stores until commit/squash

  UopStage stage = UopStage::kDispatched;
  bool wrong_path = false;
  bool mispredicted = false;  // branch that must squash at resolution
  bool is_copy = false;
  bool predicted_taken = false;
  bool has_prev = false;
  bool l2_miss_outstanding = false;  // load with an in-flight L2 miss
  bool steered_off_preferred = false;  // dispatched to a non-preferred cluster

  PhysRef dst;             // invalid when the µop writes no register
  PhysRef srcs[2];         // invalid entries carry no dependency

  trace::MicroOp op;
  std::uint64_t history_checkpoint = 0;  // branches: history before predict

  // Rename undo log.
  frontend::ReplicaSet prev_replicas;  // superseded mapping of op.dst
  std::int16_t copy_arch = -1;  // copies: replicated architectural register
};

/// Per-thread circular reorder buffer. Slots are stable (pointers remain
/// valid while the µop is in flight), so issue queues and the event queue
/// reference (thread, slot) pairs plus a uid.
class Rob {
 public:
  explicit Rob(int capacity)
      : buffer_(static_cast<std::size_t>(capacity)), capacity_(capacity) {}

  [[nodiscard]] bool full() const noexcept { return count_ == capacity_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] int size() const noexcept { return count_; }
  [[nodiscard]] int capacity() const noexcept { return capacity_; }
  [[nodiscard]] int free_slots() const noexcept { return capacity_ - count_; }

  /// Appends a fresh entry at the tail; returns nullptr when full.
  DynUop* push() {
    if (full()) return nullptr;
    const int slot = wrap(head_ + count_);
    ++count_;
    buffer_[slot] = DynUop{};
    return &buffer_[slot];
  }

  [[nodiscard]] DynUop& head() { return buffer_[head_]; }
  [[nodiscard]] DynUop& tail() {
    return buffer_[wrap(head_ + count_ - 1)];
  }
  void pop_head() {
    head_ = wrap(head_ + 1);
    --count_;
  }
  void pop_tail() { --count_; }

  [[nodiscard]] int slot_of(const DynUop& uop) const {
    return static_cast<int>(&uop - buffer_.data());
  }
  [[nodiscard]] DynUop& at_slot(int slot) { return buffer_[slot]; }
  [[nodiscard]] const DynUop& at_slot(int slot) const { return buffer_[slot]; }

  /// Visits entries oldest to youngest.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (int i = 0; i < count_; ++i) {
      fn(buffer_[wrap(head_ + i)]);
    }
  }

 private:
  /// Ring wrap without the modulo's integer divide; valid for any index
  /// in [0, 2*capacity), which every call site satisfies.
  [[nodiscard]] int wrap(int index) const noexcept {
    return index >= capacity_ ? index - capacity_ : index;
  }

  std::vector<DynUop> buffer_;
  int capacity_;
  int head_ = 0;
  int count_ = 0;
};

}  // namespace clusmt::core
