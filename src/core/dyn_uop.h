// In-flight µop state and the per-thread reorder buffer.
#pragma once

#include <cstdint>
#include <vector>

#include "common/phys_ref.h"
#include "common/types.h"
#include "frontend/rename_map.h"
#include "trace/uop.h"

namespace clusmt::core {

enum class UopStage : std::uint8_t {
  kDispatched = 0,  // renamed, sitting in an issue queue
  kIssued,          // left the issue queue, executing
  kDone,            // result produced; eligible to commit
};

// Holds only per-instance (dynamic) state: static µop fields live once in
// the trace layer's flat arrays (trace::FlatUop) and reach the core inside
// the MicroOp payload, which stays here because squash replay and commit
// hooks need the full µop after the fetch queue entry is gone.
//
// Layout is deliberate: identification/scheduling scalars are narrowed to
// the smallest types the machine bounds allow (kMaxThreads/kMaxClusters
// fit int8, IQ/MOB slots fit int16) and the one-bit flags pack into a
// single byte, so the scalars the event queue, issue stage and commit
// stage touch every visit share the struct's first cache line and the ROB
// working set stays small.
struct DynUop {
  std::uint64_t uid = 0;   // globally unique (guards stale events)
  std::uint64_t seq = 0;   // per-thread program order (copies included)
  std::int8_t tid = -1;
  std::int8_t cluster = -1;      // execution cluster
  std::int16_t iq_slot = -1;     // while kDispatched
  std::int16_t mob_slot = -1;    // loads/stores until commit/squash
  std::int16_t copy_arch = -1;   // copies: replicated architectural register

  UopStage stage = UopStage::kDispatched;
  bool wrong_path : 1 = false;
  bool mispredicted : 1 = false;  // branch that must squash at resolution
  bool is_copy : 1 = false;
  bool predicted_taken : 1 = false;
  bool has_prev : 1 = false;
  bool l2_miss_outstanding : 1 = false;  // load with an in-flight L2 miss
  bool steered_off_preferred : 1 = false;  // sent to a non-preferred cluster

  PhysRef dst;             // invalid when the µop writes no register
  PhysRef srcs[2];         // invalid entries carry no dependency

  std::uint64_t history_checkpoint = 0;  // branches: history before predict

  // Rename undo log.
  frontend::ReplicaSet prev_replicas;  // superseded mapping of op.dst

  trace::MicroOp op;

  /// Resets every field except the MicroOp payload. Rob::push uses this
  /// instead of a whole-struct clear: the dispatch paths overwrite `op`
  /// anyway (execute_plan copies the fetched µop in full; the copy-µop
  /// path writes its own skeleton), so clearing those 48 bytes per push
  /// would only burn rename-stage bandwidth.
  void reset_except_op() noexcept {
    uid = 0;
    seq = 0;
    tid = -1;
    cluster = -1;
    iq_slot = -1;
    mob_slot = -1;
    copy_arch = -1;
    stage = UopStage::kDispatched;
    wrong_path = false;
    mispredicted = false;
    is_copy = false;
    predicted_taken = false;
    has_prev = false;
    l2_miss_outstanding = false;
    steered_off_preferred = false;
    dst = PhysRef{};
    srcs[0] = PhysRef{};
    srcs[1] = PhysRef{};
    history_checkpoint = 0;
    prev_replicas = frontend::ReplicaSet{};
  }
};

/// Per-thread circular reorder buffer. Slots are stable (pointers remain
/// valid while the µop is in flight), so issue queues and the event queue
/// reference (thread, slot) pairs plus a uid.
class Rob {
 public:
  explicit Rob(int capacity)
      : buffer_(static_cast<std::size_t>(capacity)), capacity_(capacity) {}

  [[nodiscard]] bool full() const noexcept { return count_ == capacity_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] int size() const noexcept { return count_; }
  [[nodiscard]] int capacity() const noexcept { return capacity_; }
  [[nodiscard]] int free_slots() const noexcept { return capacity_ - count_; }

  /// Appends a fresh entry at the tail; returns nullptr when full. The
  /// MicroOp payload is NOT cleared — every caller overwrites it.
  DynUop* push() {
    if (full()) return nullptr;
    const int slot = wrap(head_ + count_);
    ++count_;
    buffer_[slot].reset_except_op();
    return &buffer_[slot];
  }

  [[nodiscard]] DynUop& head() { return buffer_[head_]; }
  [[nodiscard]] DynUop& tail() {
    return buffer_[wrap(head_ + count_ - 1)];
  }
  void pop_head() {
    head_ = wrap(head_ + 1);
    --count_;
  }
  void pop_tail() { --count_; }

  [[nodiscard]] int slot_of(const DynUop& uop) const {
    return static_cast<int>(&uop - buffer_.data());
  }
  [[nodiscard]] DynUop& at_slot(int slot) { return buffer_[slot]; }
  [[nodiscard]] const DynUop& at_slot(int slot) const { return buffer_[slot]; }

  /// Visits entries oldest to youngest.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (int i = 0; i < count_; ++i) {
      fn(buffer_[wrap(head_ + i)]);
    }
  }

 private:
  /// Ring wrap without the modulo's integer divide; valid for any index
  /// in [0, 2*capacity), which every call site satisfies.
  [[nodiscard]] int wrap(int index) const noexcept {
    return index >= capacity_ ? index - capacity_ : index;
  }

  std::vector<DynUop> buffer_;
  int capacity_;
  int head_ = 0;
  int count_ = 0;
};

}  // namespace clusmt::core
