#include "core/metrics.h"

#include <algorithm>

#include "common/stats.h"

namespace clusmt::core {

double slowdown(double single_ipc, double smt_ipc) noexcept {
  return safe_ratio(single_ipc, smt_ipc);
}

double fairness(std::span<const double> smt_ipc,
                std::span<const double> single_ipc) noexcept {
  if (smt_ipc.size() != single_ipc.size() || smt_ipc.empty()) return 0.0;
  double min_ratio = 1.0;
  for (std::size_t i = 0; i < smt_ipc.size(); ++i) {
    for (std::size_t j = 0; j < smt_ipc.size(); ++j) {
      if (i == j) continue;
      const double si = slowdown(single_ipc[i], smt_ipc[i]);
      const double sj = slowdown(single_ipc[j], smt_ipc[j]);
      if (sj == 0.0) return 0.0;
      min_ratio = std::min(min_ratio, si / sj);
    }
  }
  return min_ratio;
}

double weighted_speedup(std::span<const double> smt_ipc,
                        std::span<const double> single_ipc) noexcept {
  double total = 0.0;
  for (std::size_t i = 0; i < smt_ipc.size(); ++i) {
    total += safe_ratio(smt_ipc[i], single_ipc[i]);
  }
  return total;
}

double harmonic_speedup(std::span<const double> smt_ipc,
                        std::span<const double> single_ipc) noexcept {
  double denom = 0.0;
  for (std::size_t i = 0; i < smt_ipc.size(); ++i) {
    const double rel = safe_ratio(smt_ipc[i], single_ipc[i]);
    if (rel <= 0.0) return 0.0;
    denom += 1.0 / rel;
  }
  return denom == 0.0 ? 0.0
                      : static_cast<double>(smt_ipc.size()) / denom;
}

}  // namespace clusmt::core
