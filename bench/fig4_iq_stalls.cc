// Figure 4: renaming stalls due to lack of issue-queue entries per retired
// µop. A stall event is a µop that could not be placed in its *preferred*
// cluster because the IQ was full or the scheme's cap was reached — whether
// it was then re-steered (extra copies) or renaming blocked (paper §5.1).
#include "bench_util.h"
#include "harness/presets.h"

using namespace clusmt;

int main(int argc, char** argv) {
  const bench::BenchOptions opt =
      bench::BenchOptions::parse(argc, argv, /*default_cycles=*/120000);
  const auto suite = opt.suite();
  if (opt.handle_list(suite)) return 0;

  const std::vector<policy::PolicyKind> schemes = {
      policy::PolicyKind::kIcount,       policy::PolicyKind::kStall,
      policy::PolicyKind::kFlushPlus,    policy::PolicyKind::kCisp,
      policy::PolicyKind::kCssp,         policy::PolicyKind::kCspsp,
      policy::PolicyKind::kPrivateClusters,
  };

  harness::SweepSpec spec = opt.sweep(suite);
  spec.base = harness::iq_study_config(32);
  spec.axes = {bench::scheme_axis(schemes)};

  const harness::SweepResult res = harness::run_sweep(spec);

  std::vector<std::pair<std::string, std::vector<double>>> series;
  for (std::size_t p = 0; p < res.points.size(); ++p) {
    series.emplace_back(res.points[p].label,
                        res.metric(p, [](const harness::RunResult& r) {
                          return r.stats.iq_stalls_per_retired();
                        }));
  }

  bench::emit_category_table(
      "Figure 4 — IQ stalls (#IQ_stalls / #retired)", suite, series, opt);
  return 0;
}
