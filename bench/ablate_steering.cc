// Ablation (beyond the paper): how much does the dependence+balance
// steering of [12] matter? Compares it against round-robin ([24]'s first
// SMT-clustered evaluation) and pure least-loaded steering, under Icount
// and CSSP.
#include "bench_util.h"
#include "harness/presets.h"

using namespace clusmt;

int main(int argc, char** argv) {
  const bench::BenchOptions opt =
      bench::BenchOptions::parse(argc, argv, /*default_cycles=*/120000);
  const auto suite = opt.suite();
  if (opt.handle_list(suite)) return 0;

  harness::SweepSpec spec = opt.sweep(suite);
  spec.base = harness::iq_study_config(32);
  spec.axes = {
      bench::scheme_axis(
          {policy::PolicyKind::kIcount, policy::PolicyKind::kCssp}),
      {"steering",
       {{"dep+bal",
         [](core::SimConfig& c) {
           c.steering = steer::SteeringKind::kDependenceBalance;
         }},
        {"round-robin",
         [](core::SimConfig& c) {
           c.steering = steer::SteeringKind::kRoundRobin;
         }},
        {"least-loaded",
         [](core::SimConfig& c) {
           c.steering = steer::SteeringKind::kLeastLoaded;
         }}}},
  };
  spec.label_fn = [](const std::vector<std::string>& parts) {
    return parts[0] + "/" + parts[1];
  };

  const harness::SweepResult res = harness::run_sweep(spec);
  const auto baseline = res.throughput(res.point_index("Icount/dep+bal"));

  std::vector<std::pair<std::string, std::vector<double>>> series;
  for (std::size_t p = 0; p < res.points.size(); ++p) {
    series.emplace_back(res.points[p].label,
                        harness::ratio_to_baseline(res.throughput(p),
                                                   baseline));
  }

  bench::emit_category_table(
      "Ablation — steering heuristics (throughput vs Icount/dep+bal)", suite,
      series, opt);
  return 0;
}
