// Ablation (beyond the paper): how much does the dependence+balance
// steering of [12] matter? Compares it against round-robin ([24]'s first
// SMT-clustered evaluation) and pure least-loaded steering, under Icount
// and CSSP.
#include "bench_util.h"
#include "harness/presets.h"

using namespace clusmt;

int main(int argc, char** argv) {
  const bench::BenchOptions opt =
      bench::BenchOptions::parse(argc, argv, /*default_cycles=*/120000);
  const auto suite = opt.suite();

  struct Variant {
    const char* label;
    steer::SteeringKind kind;
  };
  const Variant variants[] = {
      {"dep+bal", steer::SteeringKind::kDependenceBalance},
      {"round-robin", steer::SteeringKind::kRoundRobin},
      {"least-loaded", steer::SteeringKind::kLeastLoaded},
  };

  std::vector<double> baseline;
  std::vector<std::pair<std::string, std::vector<double>>> series;
  for (policy::PolicyKind kind :
       {policy::PolicyKind::kIcount, policy::PolicyKind::kCssp}) {
    for (const Variant& v : variants) {
      core::SimConfig config = harness::iq_study_config(32);
      config.policy = kind;
      config.steering = v.kind;
      harness::Runner runner(config, opt.cycles, opt.warmup, opt.jobs);
      auto throughput = bench::metric_of(
          runner.run_suite(suite),
          [](const auto& r) { return r.throughput; });
      if (baseline.empty()) baseline = throughput;
      series.emplace_back(
          std::string(policy::policy_kind_name(kind)) + "/" + v.label,
          bench::ratio_of(throughput, baseline));
      std::fprintf(stderr, "done: %s/%s\n",
                   std::string(policy::policy_kind_name(kind)).c_str(),
                   v.label);
    }
  }

  bench::emit_category_table(
      "Ablation — steering heuristics (throughput vs Icount/dep+bal)", suite,
      series, opt);
  return 0;
}
