// Figure 6: throughput of the register-file schemes (CSSP without RF
// limits, CSSPRF, CISPRF) with 64 and 128 physical registers of each class
// per cluster, normalised per workload to Icount with 64 registers.
// 32-entry IQs, 128-entry ROBs (paper §5.2).
#include "bench_util.h"
#include "harness/presets.h"

using namespace clusmt;

int main(int argc, char** argv) {
  const bench::BenchOptions opt =
      bench::BenchOptions::parse(argc, argv, /*default_cycles=*/150000);
  const auto suite = opt.suite();

  const std::vector<policy::PolicyKind> schemes = {
      policy::PolicyKind::kCssp, policy::PolicyKind::kCssprf,
      policy::PolicyKind::kCisprf};

  // Baseline: Icount with 64 registers per cluster.
  std::vector<double> baseline;
  {
    core::SimConfig config = harness::rf_study_config(64);
    config.policy = policy::PolicyKind::kIcount;
    harness::Runner runner(config, opt.cycles, opt.warmup, opt.jobs);
    baseline = bench::metric_of(runner.run_suite(suite),
                                [](const auto& r) { return r.throughput; });
    std::fprintf(stderr, "done: Icount@64 baseline\n");
  }

  std::vector<std::pair<std::string, std::vector<double>>> series;
  for (int regs : {64, 128}) {
    for (policy::PolicyKind kind : schemes) {
      core::SimConfig config = harness::rf_study_config(regs);
      config.policy = kind;
      harness::Runner runner(config, opt.cycles, opt.warmup, opt.jobs);
      const auto throughput = bench::metric_of(
          runner.run_suite(suite),
          [](const auto& r) { return r.throughput; });
      series.emplace_back(std::string(policy::policy_kind_name(kind)) + "@" +
                              std::to_string(regs),
                          bench::ratio_of(throughput, baseline));
      std::fprintf(stderr, "done: %s@%d\n",
                   std::string(policy::policy_kind_name(kind)).c_str(), regs);
    }
  }

  bench::emit_category_table(
      "Figure 6 — Register-file schemes, throughput normalised to Icount@64 "
      "regs/cluster",
      suite, series, opt);
  return 0;
}
