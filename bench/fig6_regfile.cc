// Figure 6: throughput of the register-file schemes (CSSP without RF
// limits, CSSPRF, CISPRF) with 64 and 128 physical registers of each class
// per cluster, normalised per workload to Icount with 64 registers.
// 32-entry IQs, 128-entry ROBs (paper §5.2).
#include "bench_util.h"
#include "harness/presets.h"

using namespace clusmt;

int main(int argc, char** argv) {
  const bench::BenchOptions opt =
      bench::BenchOptions::parse(argc, argv, /*default_cycles=*/150000);
  const auto suite = opt.suite();
  if (opt.handle_list(suite)) return 0;

  const std::vector<policy::PolicyKind> schemes = {
      policy::PolicyKind::kCssp, policy::PolicyKind::kCssprf,
      policy::PolicyKind::kCisprf};

  harness::SweepSpec spec = opt.sweep(suite);
  spec.base = harness::rf_study_config(64);
  spec.axes = {
      {"regs",
       {{"64",
         [](core::SimConfig& c) { c.int_regs = c.fp_regs = 64; }},
        {"128",
         [](core::SimConfig& c) { c.int_regs = c.fp_regs = 128; }}}},
      bench::scheme_axis(schemes),
  };
  spec.label_fn = [](const std::vector<std::string>& parts) {
    return parts[1] + "@" + parts[0];
  };
  // Baseline point: Icount with 64 registers per cluster.
  {
    core::SimConfig config = harness::rf_study_config(64);
    config.policy = policy::PolicyKind::kIcount;
    spec.points.push_back({"Icount@64", config});
  }

  const harness::SweepResult res = harness::run_sweep(spec);
  const std::size_t base_point = res.point_index("Icount@64");
  const auto baseline = res.throughput(base_point);

  std::vector<std::pair<std::string, std::vector<double>>> series;
  for (std::size_t p = 0; p < res.points.size(); ++p) {
    if (p == base_point) continue;
    series.emplace_back(res.points[p].label,
                        harness::ratio_to_baseline(res.throughput(p),
                                                   baseline));
  }

  bench::emit_category_table(
      "Figure 6 — Register-file schemes, throughput normalised to Icount@64 "
      "regs/cluster",
      suite, series, opt);
  return 0;
}
