// Ablation (paper §5.2 design choice): sensitivity of CDPRF to the RFOC
// measurement interval. The paper picked 128K cycles "because it is a power
// of 2 so that dividing the RFOC by the interval is a simple shift"; this
// sweep shows the scheme is robust over a wide range.
#include "bench_util.h"
#include "harness/presets.h"

using namespace clusmt;

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::BenchOptions::parse(
      argc, argv, /*default_cycles=*/200000, /*default_warmup=*/80000);
  const auto suite = opt.suite();

  std::vector<double> baseline;
  {
    core::SimConfig config = harness::rf_study_config(64);
    config.policy = policy::PolicyKind::kIcount;
    harness::Runner runner(config, opt.cycles, opt.warmup, opt.jobs);
    baseline = bench::metric_of(runner.run_suite(suite),
                                [](const auto& r) { return r.throughput; });
    std::fprintf(stderr, "done: Icount baseline\n");
  }

  std::vector<std::pair<std::string, std::vector<double>>> series;
  for (Cycle interval : {8192u, 32768u, 131072u, 524288u}) {
    core::SimConfig config = harness::rf_study_config(64);
    config.policy = policy::PolicyKind::kCdprf;
    config.policy_config.cdprf_interval = interval;
    harness::Runner runner(config, opt.cycles, opt.warmup, opt.jobs);
    auto throughput =
        bench::metric_of(runner.run_suite(suite),
                         [](const auto& r) { return r.throughput; });
    series.emplace_back("CDPRF@" + std::to_string(interval / 1024) + "K",
                        bench::ratio_of(throughput, baseline));
    std::fprintf(stderr, "done: interval %llu\n",
                 static_cast<unsigned long long>(interval));
  }

  bench::emit_category_table(
      "Ablation — CDPRF interval sweep (throughput vs Icount)", suite,
      series, opt);
  return 0;
}
