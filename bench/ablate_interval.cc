// Ablation (paper §5.2 design choice): sensitivity of CDPRF to the RFOC
// measurement interval. The paper picked 128K cycles "because it is a power
// of 2 so that dividing the RFOC by the interval is a simple shift"; this
// sweep shows the scheme is robust over a wide range.
#include "bench_util.h"
#include "harness/presets.h"

using namespace clusmt;

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::BenchOptions::parse(
      argc, argv, /*default_cycles=*/200000, /*default_warmup=*/80000);
  const auto suite = opt.suite();
  if (opt.handle_list(suite)) return 0;

  harness::SweepSpec spec = opt.sweep(suite);
  {
    core::SimConfig config = harness::rf_study_config(64);
    config.policy = policy::PolicyKind::kIcount;
    spec.points.push_back({"Icount", config});
  }
  for (Cycle interval : {8192u, 32768u, 131072u, 524288u}) {
    core::SimConfig config = harness::rf_study_config(64);
    config.policy = policy::PolicyKind::kCdprf;
    config.policy_config.cdprf_interval = interval;
    spec.points.push_back(
        {"CDPRF@" + std::to_string(interval / 1024) + "K", config});
  }

  const harness::SweepResult res = harness::run_sweep(spec);
  const auto baseline = res.throughput(res.point_index("Icount"));

  std::vector<std::pair<std::string, std::vector<double>>> series;
  for (std::size_t p = 1; p < res.points.size(); ++p) {
    series.emplace_back(res.points[p].label,
                        harness::ratio_to_baseline(res.throughput(p),
                                                   baseline));
  }

  bench::emit_category_table(
      "Ablation — CDPRF interval sweep (throughput vs Icount)", suite,
      series, opt);
  return 0;
}
