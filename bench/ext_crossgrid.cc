// Extension survey (beyond the paper's figures): the first cross-knob
// scenario grid. The paper fixes the interconnect (2 links @ 1 cycle) and
// homogeneous clusters and varies schemes; this sweeps links ×
// inter-cluster latency × per-cluster IQ shape × scheme in one SweepSpec,
// so scheme robustness to the communication substrate and to an asymmetric
// back end is read off a single table — e.g. whether CDPRF's gains survive a slow
// interconnect, which scheme degrades fastest with a single link, and
// whether the conclusions of ablate_links (CSSP-only) generalise.
//
// The grid rides the shared run cache: cells repeated from other benches
// (e.g. every scheme @ 2links/1cyc is a paper-figure point) are not
// re-simulated. Emits the standard per-category table; --json/--csv mirror
// it (the first survey artifact the sweep engine was built to make cheap).
#include "bench_util.h"
#include "harness/presets.h"

using namespace clusmt;

int main(int argc, char** argv) {
  const bench::BenchOptions opt =
      bench::BenchOptions::parse(argc, argv, /*default_cycles=*/120000);
  const auto suite = opt.suite();
  if (opt.handle_list(suite)) return 0;

  harness::SweepSpec spec = opt.sweep(suite);
  spec.base = harness::rf_study_config(64);

  spec.axes = {bench::scheme_axis({policy::PolicyKind::kIcount,
                                   policy::PolicyKind::kCssp,
                                   policy::PolicyKind::kCdprf}),
               {"links", {}},
               {"latency", {}},
               {"iq", {}}};
  for (int links : {1, 2, 4}) {
    spec.axes[1].values.push_back(
        {std::to_string(links) + "L",
         [links](core::SimConfig& c) { c.num_links = links; }});
  }
  for (int latency : {1, 2, 4}) {
    spec.axes[2].values.push_back(
        {std::to_string(latency) + "cyc",
         [latency](core::SimConfig& c) { c.link_latency = latency; }});
  }
  // Per-cluster issue-queue shape at a fixed 64-entry total: the
  // homogeneous Table 1 split against a lopsided grid, probing whether any
  // scheme exploits (or tolerates) an asymmetric back end.
  spec.axes[3].values = {
      {"iq32:32", [](core::SimConfig&) {}},
      {"iq48:16",
       [](core::SimConfig& c) {
         c.shape[0].iq_entries = 48;
         c.shape[1].iq_entries = 16;
       }}};
  spec.label_fn = [](const std::vector<std::string>& parts) {
    return parts[0] + "@" + parts[1] + "/" + parts[2] + "/" + parts[3];
  };

  const harness::SweepResult res = harness::run_sweep(spec);

  // Normalise to the paper's machine point: Icount on the Table 1
  // interconnect (2 links, 1 cycle) with the homogeneous issue queues.
  const auto baseline =
      res.throughput(res.point_index("Icount@2L/1cyc/iq32:32"));
  std::vector<std::pair<std::string, std::vector<double>>> series;
  for (std::size_t p = 0; p < res.points.size(); ++p) {
    series.emplace_back(res.points[p].label,
                        harness::ratio_to_baseline(res.throughput(p),
                                                   baseline));
  }

  bench::emit_category_table(
      "Extension — links x latency x IQ shape x scheme cross-grid "
      "(vs Icount @ 2 links / 1 cycle / 32:32)",
      suite, series, opt);
  return 0;
}
