// Figure 9: CDPRF on the ISPEC-FSPEC category — per-workload throughput of
// CSSP, CSSPRF, CISPRF and CDPRF (normalised to Icount), plus the category
// average (AVG) and the all-categories average (AVG All).
//
// ISPEC-FSPEC pairs an integer-register-hungry trace with an FP-hungry one:
// static RF halving underutilises both files, and the dynamic scheme
// recovers the loss (paper §5.2).
//
// Extra flag: --interval N  (CDPRF measurement interval; default 32768 —
// the paper's 128K assumes full-length traces, we scale it to bench runs).
#include "bench_util.h"
#include "common/cli.h"
#include "harness/presets.h"

using namespace clusmt;

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::BenchOptions::parse(
      argc, argv, /*default_cycles=*/200000, /*default_warmup=*/80000);
  const CliArgs args(argc, argv);
  const Cycle interval = static_cast<Cycle>(args.get_int("interval", 32768));

  const auto all = opt.suite();
  const auto ispec_fspec = trace::workloads_in_category(all, "ISPEC-FSPEC");

  const std::vector<policy::PolicyKind> schemes = {
      policy::PolicyKind::kCssp, policy::PolicyKind::kCssprf,
      policy::PolicyKind::kCisprf, policy::PolicyKind::kCdprf};

  auto run_grid = [&](const std::vector<trace::WorkloadSpec>& suite) {
    std::vector<std::vector<double>> grid;  // [scheme][workload] speedup
    core::SimConfig base = harness::rf_study_config(64);
    base.policy = policy::PolicyKind::kIcount;
    harness::Runner base_runner(base, opt.cycles, opt.warmup, opt.jobs);
    const auto baseline =
        bench::metric_of(base_runner.run_suite(suite),
                         [](const auto& r) { return r.throughput; });
    for (policy::PolicyKind kind : schemes) {
      core::SimConfig config = harness::rf_study_config(64);
      config.policy = kind;
      config.policy_config.cdprf_interval = interval;
      harness::Runner runner(config, opt.cycles, opt.warmup, opt.jobs);
      grid.push_back(bench::ratio_of(
          bench::metric_of(runner.run_suite(suite),
                           [](const auto& r) { return r.throughput; }),
          baseline));
      std::fprintf(stderr, "done: %s\n",
                   std::string(policy::policy_kind_name(kind)).c_str());
    }
    return grid;
  };

  const auto grid = run_grid(ispec_fspec);
  const auto grid_all = run_grid(all);

  std::vector<std::string> header = {"workload"};
  for (policy::PolicyKind kind : schemes) {
    header.push_back(std::string(policy::policy_kind_name(kind)));
  }
  TextTable table(header);
  CsvWriter csv(header);

  auto add_row = [&](const std::string& label,
                     const std::vector<double>& values) {
    std::vector<std::string> cells = {label};
    for (double v : values) cells.push_back(format_double(v, 3));
    table.add_row(cells);
    csv.add_row(cells);
  };

  for (std::size_t w = 0; w < ispec_fspec.size(); ++w) {
    std::vector<double> row;
    for (std::size_t s = 0; s < schemes.size(); ++s) row.push_back(grid[s][w]);
    // Label like the paper's x-axis: ilp.2.1 ... mix.2.8.
    std::string label = ispec_fspec[w].name;
    const auto pos = label.find('.');
    if (pos != std::string::npos) label = label.substr(pos + 1);
    add_row(label, row);
  }
  std::vector<double> avg(schemes.size()), avg_all(schemes.size());
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    avg[s] = mean_of(grid[s]);
    avg_all[s] = mean_of(grid_all[s]);
  }
  add_row("AVG", avg);
  add_row("AVG All", avg_all);

  std::printf(
      "Figure 9 — CDPRF on ISPEC-FSPEC (throughput vs Icount, 64 "
      "regs/cluster,\nCDPRF interval %llu cycles)\n\n%s\n",
      static_cast<unsigned long long>(interval), table.render().c_str());
  if (!opt.csv_path.empty()) csv.write_file(opt.csv_path);
  return 0;
}
