// Figure 9: CDPRF on the ISPEC-FSPEC category — per-workload throughput of
// CSSP, CSSPRF, CISPRF and CDPRF (normalised to Icount), plus the category
// average (AVG) and the all-categories average (AVG All).
//
// ISPEC-FSPEC pairs an integer-register-hungry trace with an FP-hungry one:
// static RF halving underutilises both files, and the dynamic scheme
// recovers the loss (paper §5.2).
//
// Extra flag: --interval N  (CDPRF measurement interval; default 32768 —
// the paper's 128K assumes full-length traces, we scale it to bench runs).
//
// Runs two sweeps over the same grid points (ISPEC-FSPEC subset, then the
// full suite); the RunCache serves the subset's cells to the second sweep.
#include "bench_util.h"
#include "common/cli.h"
#include "harness/presets.h"

using namespace clusmt;

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::BenchOptions::parse(
      argc, argv, /*default_cycles=*/200000, /*default_warmup=*/80000);
  const CliArgs args(argc, argv);
  const Cycle interval = static_cast<Cycle>(args.get_int("interval", 32768));

  const auto all = opt.suite();
  if (opt.handle_list(all)) return 0;
  const auto ispec_fspec = trace::workloads_in_category(all, "ISPEC-FSPEC");

  const std::vector<policy::PolicyKind> schemes = {
      policy::PolicyKind::kCssp, policy::PolicyKind::kCssprf,
      policy::PolicyKind::kCisprf, policy::PolicyKind::kCdprf};

  auto run_grid = [&](const std::vector<trace::WorkloadSpec>& suite) {
    harness::SweepSpec spec = opt.sweep(suite);
    {
      core::SimConfig base = harness::rf_study_config(64);
      base.policy = policy::PolicyKind::kIcount;
      spec.points.push_back({"Icount", base});
    }
    for (policy::PolicyKind kind : schemes) {
      core::SimConfig config = harness::rf_study_config(64);
      config.policy = kind;
      config.policy_config.cdprf_interval = interval;
      spec.points.push_back(
          {std::string(policy::policy_kind_name(kind)), config});
    }
    const harness::SweepResult res = harness::run_sweep(spec);

    std::vector<std::vector<double>> grid;  // [scheme][workload] speedup
    const auto baseline = res.throughput(res.point_index("Icount"));
    for (policy::PolicyKind kind : schemes) {
      const std::size_t p =
          res.point_index(std::string(policy::policy_kind_name(kind)));
      grid.push_back(harness::ratio_to_baseline(res.throughput(p), baseline));
    }
    return grid;
  };

  const auto grid = run_grid(ispec_fspec);
  const auto grid_all = run_grid(all);

  harness::TableDoc doc;
  doc.header = {"workload"};
  for (policy::PolicyKind kind : schemes) {
    doc.header.push_back(std::string(policy::policy_kind_name(kind)));
  }

  auto add_row = [&](const std::string& label,
                     const std::vector<double>& values) {
    std::vector<std::string> cells = {label};
    for (double v : values) cells.push_back(format_double(v, 3));
    doc.add_row(std::move(cells));
  };

  for (std::size_t w = 0; w < ispec_fspec.size(); ++w) {
    std::vector<double> row;
    for (std::size_t s = 0; s < schemes.size(); ++s) row.push_back(grid[s][w]);
    // Label like the paper's x-axis: ilp.2.1 ... mix.2.8.
    std::string label = ispec_fspec[w].name;
    const auto pos = label.find('.');
    if (pos != std::string::npos) label = label.substr(pos + 1);
    add_row(label, row);
  }
  std::vector<double> avg(schemes.size()), avg_all(schemes.size());
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    avg[s] = mean_of(grid[s]);
    avg_all[s] = mean_of(grid_all[s]);
  }
  add_row("AVG", avg);
  add_row("AVG All", avg_all);

  std::printf(
      "Figure 9 — CDPRF on ISPEC-FSPEC (throughput vs Icount, 64 "
      "regs/cluster,\nCDPRF interval %llu cycles)\n\n%s\n",
      static_cast<unsigned long long>(interval), doc.render_text().c_str());
  bench::emit_doc(doc, opt);
  return 0;
}
