// Table 1: baseline processor configuration. Prints the machine parameters
// the simulator uses — including the per-cluster shape (issue width/port
// mix, IQ entries, register files, link-latency matrix), which the shared
// shape flags (--clusters, --width=4,2, --iq=48,16, --int-regs, --fp-regs,
// --link; see harness/shape_flags.h) can override to inspect a
// heterogeneous grid — and verifies the defaults match the paper's table.
#include <cassert>
#include <cstdio>
#include <string>

#include "backend/ports.h"
#include "common/cli.h"
#include "common/table.h"
#include "harness/presets.h"
#include "harness/shape_flags.h"

using namespace clusmt;

namespace {

/// "P0:int,fp,simd P1:int,mem" for one cluster's width under the
/// generalized port mix.
std::string port_mix(int width) {
  std::string mix;
  for (int p = 0; p < width; ++p) {
    if (!mix.empty()) mix += " ";
    mix += "P" + std::to_string(p) + ":int";
    if (backend::PortSet::compatible(p, trace::PortClass::kFpSimd, width)) {
      mix += ",fp,simd";
    }
    if (backend::PortSet::compatible(p, trace::PortClass::kMem, width)) {
      mix += ",mem";
    }
  }
  return mix;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  core::SimConfig c = harness::paper_baseline();
  harness::apply_shape_flags(args, c);

  TextTable table({"Parameter", "Value", "Parameter", "Value"});
  auto row = [&](const std::string& a, const std::string& av,
                 const std::string& b, const std::string& bv) {
    table.add_row({a, av, b, bv});
  };
  row("Fetch width", std::to_string(c.fetch_width), "Commit width",
      std::to_string(c.commit_width));
  row("Misprediction pipeline", std::to_string(c.mispredict_penalty),
      "ROB size", std::to_string(c.rob_entries) + " per thread");
  row("Indirect branch", std::to_string(c.predictor.indirect_entries),
      "Gshare entries", std::to_string(c.predictor.gshare_entries));
  row("Trace cache size",
      std::to_string(c.trace_cache.capacity_uops / 1024) + "K uops",
      "Issue width/cluster", std::to_string(c.issue_width) + " (base)");
  row("Issue queue size per cluster", std::to_string(c.iq_entries) + "-64",
      "MOB", std::to_string(c.mob_entries));
  row("Int physical registers", std::to_string(c.int_regs) + "-128 /cluster",
      "FP/SSE physical registers",
      std::to_string(c.fp_regs) + "-128 /cluster");
  row("DTLB entries", std::to_string(c.memory.dtlb_entries), "DTLB assoc",
      std::to_string(c.memory.dtlb_assoc));
  row("L1 size", std::to_string(c.memory.l1_size / 1024) + "KB", "L1 assoc",
      std::to_string(c.memory.l1_assoc));
  row("L1 hit latency", std::to_string(c.memory.l1_latency) + " cycle",
      "L1 ports", "2 read / 2 write");
  row("L2 size", std::to_string(c.memory.l2_size / (1024 * 1024)) + "MB",
      "L2 assoc", std::to_string(c.memory.l2_assoc));
  row("L2 hit latency", std::to_string(c.memory.l2_latency) + " cycles",
      "Memory latency", std::to_string(c.memory.memory_latency) + " cycles");
  row("# Point-to-point links", std::to_string(c.num_links),
      "Link latency", std::to_string(c.link_latency) + " cycle");
  row("# Data buses (L1 to L2)", std::to_string(c.memory.num_l1_l2_buses),
      "Clusters", std::to_string(c.num_clusters));

  std::printf("Table 1 — Baseline processor configuration\n\n%s\n",
              table.render().c_str());

  // Per-cluster effective shape: each field resolves zero-means-inherit
  // against the scalars above, so a homogeneous machine prints identical
  // rows and a shaped one shows exactly what each cluster got.
  TextTable shape({"Cluster", "Issue ports", "IQ", "Int regs", "FP regs"});
  for (int cl = 0; cl < c.num_clusters; ++cl) {
    shape.add_row({std::to_string(cl),
                   port_mix(c.effective_issue_width(cl)),
                   std::to_string(c.effective_iq_entries(cl)),
                   std::to_string(c.effective_int_regs(cl)),
                   std::to_string(c.effective_fp_regs(cl))});
  }
  std::printf("Per-cluster shape (zero-means-inherit resolved)\n\n%s\n",
              shape.render().c_str());

  TextTable links({"Link latency", "to ..."});
  for (int from = 0; from < c.num_clusters; ++from) {
    std::string latencies;
    for (int to = 0; to < c.num_clusters; ++to) {
      if (!latencies.empty()) latencies += " ";
      latencies += std::to_string(c.effective_link_latency(from, to));
    }
    links.add_row({"from " + std::to_string(from), latencies});
  }
  std::printf("Inter-cluster copy latency matrix\n\n%s\n",
              links.render().c_str());

  // Verify the defaults actually match the paper — against a pristine
  // baseline, so shape flags change what is printed, never the verdict.
  const core::SimConfig d = harness::paper_baseline();
  bool ok = d.fetch_width == 6 && d.commit_width == 6 &&
            d.mispredict_penalty == 14 && d.rob_entries == 128 &&
            d.predictor.gshare_entries == 32 * 1024 &&
            d.predictor.indirect_entries == 4096 &&
            d.memory.l1_size == 32 * 1024 && d.memory.l1_assoc == 2 &&
            d.memory.l2_size == 4 * 1024 * 1024 && d.memory.l2_assoc == 8 &&
            d.memory.l2_latency == 12 && d.memory.memory_latency == 60 &&
            d.memory.dtlb_entries == 1024 && d.memory.dtlb_assoc == 8 &&
            d.num_links == 2 && d.link_latency == 1 &&
            d.memory.num_l1_l2_buses == 2 && d.mob_entries == 128 &&
            d.num_clusters == 2 && d.issue_width == 3 &&
            port_mix(d.issue_width) ==
                "P0:int,fp,simd P1:int,fp,simd P2:int,mem";
  std::printf("Defaults match paper Table 1: %s\n", ok ? "YES" : "NO");
  return ok ? 0 : 1;
}
