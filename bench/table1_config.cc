// Table 1: baseline processor configuration. Prints the machine parameters
// the simulator uses and verifies they match the paper's table.
#include <cassert>
#include <cstdio>

#include "common/table.h"
#include "harness/presets.h"

using namespace clusmt;

int main() {
  const core::SimConfig c = harness::paper_baseline();

  TextTable table({"Parameter", "Value", "Parameter", "Value"});
  auto row = [&](const std::string& a, const std::string& av,
                 const std::string& b, const std::string& bv) {
    table.add_row({a, av, b, bv});
  };
  row("Fetch width", std::to_string(c.fetch_width), "Commit width",
      std::to_string(c.commit_width));
  row("Misprediction pipeline", std::to_string(c.mispredict_penalty),
      "ROB size", std::to_string(c.rob_entries) + " per thread");
  row("Indirect branch", std::to_string(c.predictor.indirect_entries),
      "Gshare entries", std::to_string(c.predictor.gshare_entries));
  row("Trace cache size",
      std::to_string(c.trace_cache.capacity_uops / 1024) + "K uops",
      "Issue ports/cluster", "P0:int,fp,simd P1:int,fp,simd P2:int,mem");
  row("Issue queue size per cluster", std::to_string(c.iq_entries) + "-64",
      "MOB", std::to_string(c.mob_entries));
  row("Int physical registers", std::to_string(c.int_regs) + "-128 /cluster",
      "FP/SSE physical registers",
      std::to_string(c.fp_regs) + "-128 /cluster");
  row("DTLB entries", std::to_string(c.memory.dtlb_entries), "DTLB assoc",
      std::to_string(c.memory.dtlb_assoc));
  row("L1 size", std::to_string(c.memory.l1_size / 1024) + "KB", "L1 assoc",
      std::to_string(c.memory.l1_assoc));
  row("L1 hit latency", std::to_string(c.memory.l1_latency) + " cycle",
      "L1 ports", "2 read / 2 write");
  row("L2 size", std::to_string(c.memory.l2_size / (1024 * 1024)) + "MB",
      "L2 assoc", std::to_string(c.memory.l2_assoc));
  row("L2 hit latency", std::to_string(c.memory.l2_latency) + " cycles",
      "Memory latency", std::to_string(c.memory.memory_latency) + " cycles");
  row("# Point-to-point links", std::to_string(c.num_links),
      "Link latency", std::to_string(c.link_latency) + " cycle");
  row("# Data buses (L1 to L2)", std::to_string(c.memory.num_l1_l2_buses),
      "Clusters", std::to_string(c.num_clusters));

  std::printf("Table 1 — Baseline processor configuration\n\n%s\n",
              table.render().c_str());

  // Verify the defaults actually match the paper.
  bool ok = c.fetch_width == 6 && c.commit_width == 6 &&
            c.mispredict_penalty == 14 && c.rob_entries == 128 &&
            c.predictor.gshare_entries == 32 * 1024 &&
            c.predictor.indirect_entries == 4096 &&
            c.memory.l1_size == 32 * 1024 && c.memory.l1_assoc == 2 &&
            c.memory.l2_size == 4 * 1024 * 1024 && c.memory.l2_assoc == 8 &&
            c.memory.l2_latency == 12 && c.memory.memory_latency == 60 &&
            c.memory.dtlb_entries == 1024 && c.memory.dtlb_assoc == 8 &&
            c.num_links == 2 && c.link_latency == 1 &&
            c.memory.num_l1_l2_buses == 2 && c.mob_entries == 128 &&
            c.num_clusters == 2;
  std::printf("Defaults match paper Table 1: %s\n", ok ? "YES" : "NO");
  return ok ? 0 : 1;
}
