// Table 2: the workload suite. Prints the per-category workload counts of
// the paper and a measured characterisation of every trace in the pool
// (single-thread IPC, cache miss rates, branch misprediction rate) so the
// ILP/MEM classification can be verified quantitatively.
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "core/simulator.h"
#include "harness/presets.h"

using namespace clusmt;

namespace {

struct TraceCharacter {
  double ipc = 0;
  double l1_miss = 0;
  double l2_miss = 0;       // of L2 accesses
  double l2_mpki = 0;       // L2 misses per kilo-instruction
  double bp_misp_rate = 0;  // resolved mispredicts per branch
  double tc_hit = 0;
  double copies = 0;        // inter-cluster copies per retired µop
};

TraceCharacter characterise(const trace::TraceSpec& spec, Cycle warmup,
                            Cycle cycles) {
  core::SimConfig config = harness::paper_baseline();
  config.num_threads = 1;
  core::Simulator sim(config);
  sim.attach_thread(0, spec);
  if (warmup > 0) {
    sim.run(warmup);
    sim.reset_stats();
  }
  sim.run(cycles);
  const auto& stats = sim.stats();
  const auto& l1 = sim.hierarchy().l1_stats();
  const auto& l2 = sim.hierarchy().l2_stats();
  const auto& fetch = sim.fetch_engine();
  TraceCharacter out;
  out.ipc = stats.ipc(0);
  out.l1_miss = 1.0 - l1.hit_rate();
  out.l2_miss = l2.accesses ? 1.0 - l2.hit_rate() : 0.0;
  out.l2_mpki = stats.committed[0]
                    ? 1000.0 * static_cast<double>(l2.misses()) /
                          static_cast<double>(stats.committed[0])
                    : 0.0;
  out.bp_misp_rate =
      stats.branches_resolved
          ? static_cast<double>(stats.mispredicts_resolved) /
                static_cast<double>(stats.branches_resolved)
          : 0.0;
  out.tc_hit = fetch.stats().fetch_cycles
                   ? static_cast<double>(fetch.stats().tc_hit_cycles) /
                         static_cast<double>(fetch.stats().fetch_cycles)
                   : 0.0;
  out.copies = stats.copies_per_retired();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opt =
      bench::BenchOptions::parse(argc, argv, /*default_cycles=*/60000);

  // Part 1: Table 2 — suite composition.
  {
    auto suite = trace::build_full_suite(opt.seed);
    opt.apply_filter(suite);
    if (opt.handle_list(suite)) return 0;
    std::map<std::string, std::map<std::string, int>> counts;
    for (const auto& w : suite) ++counts[w.category][w.type];
    TextTable table({"Category", "ILP", "MEM", "MIX", "#wkloads"});
    for (const auto& category : trace::category_display_order()) {
      const auto it = counts.find(category);
      if (it == counts.end()) continue;
      int total = 0;
      for (const auto& [_, n] : it->second) total += n;
      table.new_row()
          .add_cell(category)
          .add_cell(static_cast<std::uint64_t>(it->second["ilp"]))
          .add_cell(static_cast<std::uint64_t>(it->second["mem"]))
          .add_cell(static_cast<std::uint64_t>(it->second["mix"]))
          .add_cell(static_cast<std::uint64_t>(total));
    }
    std::printf(
        "Table 2 — Benchmark suite (%zu two-threaded workloads)\n\n%s\n",
        suite.size(), table.render().c_str());
  }

  // Part 2: measured characterisation of the trace pool, fanned out as one
  // bulk submission on the shared worker pool.
  {
    trace::TracePool pool(opt.seed);
    const auto& traces = pool.all();
    std::vector<TraceCharacter> chars(traces.size());
    ThreadPool workers(opt.jobs);
    auto done = workers.submit_bulk(traces.size(), [&](std::size_t i) {
      chars[i] = characterise(traces[i], opt.warmup, opt.cycles);
    });
    for (auto& f : done) f.get();

    harness::TableDoc doc;
    doc.header = {"trace", "ipc", "l1_miss", "l2_miss", "l2_mpki",
                  "bp_misp", "tc_hit", "copies"};
    TextTable table({"trace", "IPC", "L1 miss", "L2 miss", "L2 MPKI",
                     "BP misp", "TC hit", "copies"});
    for (std::size_t i = 0; i < traces.size(); ++i) {
      const auto& c = chars[i];
      std::vector<std::string> cells = {
          traces[i].id(),           format_double(c.ipc, 2),
          format_double(c.l1_miss, 3), format_double(c.l2_miss, 3),
          format_double(c.l2_mpki, 1), format_double(c.bp_misp_rate, 3),
          format_double(c.tc_hit, 3),  format_double(c.copies, 3)};
      table.add_row(cells);
      doc.add_row(std::move(cells));
    }
    std::printf("Trace pool characterisation (single-thread, %llu cycles)\n\n%s\n",
                static_cast<unsigned long long>(opt.cycles),
                table.render().c_str());
    bench::emit_doc(doc, opt);
  }
  return 0;
}
