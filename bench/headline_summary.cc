// Headline reproduction: the paper's abstract claims CDPRF achieves a
// 17.6% average throughput speedup over Icount while improving fairness by
// 24%. This bench measures both on the Table 1 baseline machine and prints
// paper-vs-measured.
#include "bench_util.h"
#include "common/cli.h"
#include "harness/presets.h"

using namespace clusmt;

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::BenchOptions::parse(
      argc, argv, /*default_cycles=*/200000, /*default_warmup=*/80000);
  const CliArgs args(argc, argv);
  const Cycle interval = static_cast<Cycle>(args.get_int("interval", 32768));
  const auto suite = opt.suite();

  struct Outcome {
    std::vector<double> throughput;
    std::vector<double> fairness;
  };
  auto measure = [&](policy::PolicyKind kind) {
    core::SimConfig config = harness::rf_study_config(64);
    config.policy = kind;
    config.policy_config.cdprf_interval = interval;
    harness::Runner runner(config, opt.cycles, opt.warmup, opt.jobs);
    const auto results = runner.run_suite_with_fairness(suite);
    Outcome out;
    out.throughput = bench::metric_of(
        results, [](const auto& r) { return r.throughput; });
    out.fairness =
        bench::metric_of(results, [](const auto& r) { return r.fairness; });
    std::fprintf(stderr, "done: %s\n",
                 std::string(policy::policy_kind_name(kind)).c_str());
    return out;
  };

  const Outcome icount = measure(policy::PolicyKind::kIcount);
  const Outcome cssp = measure(policy::PolicyKind::kCssp);
  const Outcome cdprf = measure(policy::PolicyKind::kCdprf);

  const double thr_cssp =
      mean_of(bench::ratio_of(cssp.throughput, icount.throughput));
  const double thr_cdprf =
      mean_of(bench::ratio_of(cdprf.throughput, icount.throughput));
  const double fair_cdprf =
      mean_of(bench::ratio_of(cdprf.fairness, icount.fairness));
  const double fair_cssp =
      mean_of(bench::ratio_of(cssp.fairness, icount.fairness));

  TextTable table({"claim", "paper", "measured"});
  table.add_row({"CDPRF throughput speedup vs Icount", "+17.6%",
                 format_double(100.0 * (thr_cdprf - 1.0), 1) + "%"});
  table.add_row({"CDPRF fairness improvement vs Icount", "+24%",
                 format_double(100.0 * (fair_cdprf - 1.0), 1) + "%"});
  table.add_row({"CSSP throughput speedup vs Icount", "~+16%",
                 format_double(100.0 * (thr_cssp - 1.0), 1) + "%"});
  table.add_row({"CSSP fairness vs Icount", "(not headline)",
                 format_double(100.0 * (fair_cssp - 1.0), 1) + "%"});

  std::printf(
      "Headline summary (%zu workloads, 64 regs/cluster, CDPRF interval "
      "%llu)\n\n%s\n",
      suite.size(), static_cast<unsigned long long>(interval),
      table.render().c_str());
  return 0;
}
