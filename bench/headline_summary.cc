// Headline reproduction: the paper's abstract claims CDPRF achieves a
// 17.6% average throughput speedup over Icount while improving fairness by
// 24%. This bench measures both on the Table 1 baseline machine and prints
// paper-vs-measured. One sweep covers all three schemes; the single-thread
// fairness baselines are shared across them through the RunCache instead of
// being recomputed per scheme.
#include "bench_util.h"
#include "common/cli.h"
#include "harness/presets.h"

using namespace clusmt;

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::BenchOptions::parse(
      argc, argv, /*default_cycles=*/200000, /*default_warmup=*/80000);
  const CliArgs args(argc, argv);
  const Cycle interval = static_cast<Cycle>(args.get_int("interval", 32768));
  const auto suite = opt.suite();
  if (opt.handle_list(suite)) return 0;

  harness::SweepSpec spec = opt.sweep(suite);
  spec.base = harness::rf_study_config(64);
  spec.base.policy_config.cdprf_interval = interval;
  spec.axes = {bench::scheme_axis({policy::PolicyKind::kIcount,
                                   policy::PolicyKind::kCssp,
                                   policy::PolicyKind::kCdprf})};
  spec.with_fairness = true;

  const harness::SweepResult res = harness::run_sweep(spec);
  const auto icount_thr = res.throughput(res.point_index("Icount"));
  const auto icount_fair = res.fairness(res.point_index("Icount"));
  const std::size_t cssp = res.point_index("CSSP");
  const std::size_t cdprf = res.point_index("CDPRF");

  const double thr_cssp =
      mean_of(harness::ratio_to_baseline(res.throughput(cssp), icount_thr));
  const double thr_cdprf =
      mean_of(harness::ratio_to_baseline(res.throughput(cdprf), icount_thr));
  const double fair_cdprf =
      mean_of(harness::ratio_to_baseline(res.fairness(cdprf), icount_fair));
  const double fair_cssp =
      mean_of(harness::ratio_to_baseline(res.fairness(cssp), icount_fair));

  harness::TableDoc doc;
  doc.header = {"claim", "paper", "measured"};
  doc.add_row({"CDPRF throughput speedup vs Icount", "+17.6%",
               format_double(100.0 * (thr_cdprf - 1.0), 1) + "%"});
  doc.add_row({"CDPRF fairness improvement vs Icount", "+24%",
               format_double(100.0 * (fair_cdprf - 1.0), 1) + "%"});
  doc.add_row({"CSSP throughput speedup vs Icount", "~+16%",
               format_double(100.0 * (thr_cssp - 1.0), 1) + "%"});
  doc.add_row({"CSSP fairness vs Icount", "(not headline)",
               format_double(100.0 * (fair_cssp - 1.0), 1) + "%"});

  std::printf(
      "Headline summary (%zu workloads, 64 regs/cluster, CDPRF interval "
      "%llu)\n\n%s\n",
      suite.size(), static_cast<unsigned long long>(interval),
      doc.render_text().c_str());
  bench::emit_doc(doc, opt);
  return 0;
}
