// Simulator-core throughput bench: wall-clock simulated kilocycles/sec
// over the paper's scheme × workload-character presets on the Table 1
// headline machine (64 registers/cluster). Unlike the figure benches this
// measures the *host* cost of simulation, not the modelled machine — it is
// the perf trajectory future optimization PRs defend (BENCH_sim.json).
//
// Every cell simulates from scratch (the run cache is deliberately not
// consulted: a cache hit would measure nothing), times only the measured
// phase (construction and warmup excluded), and reports the best of
// --repeat runs to shrink scheduler noise. Simulation results are
// deterministic, so repeats change timing only.
//
// Trace delivery goes through the tape registry (the product datapath):
// the first repetition of a (profile, seed) records its replay tape, later
// repetitions and cells replay it, so best-of measures the tape-warm rate.
// --no-tape measures the live-RNG generator instead. A TAPES row in the
// table reports the registry traffic alongside the timing rows.
//
// Flags:
//   --cycles N   measured cycles per cell            [default 100000]
//   --warmup N   warmup cycles before timing          [default 20000]
//   --repeat N   timed repetitions per cell, best-of  [default 3]
//   --seed S     trace pool master seed               [default 1]
//   --no-tape    bypass trace tapes (live generator oracle)
//   --csv PATH / --json PATH   mirror the table
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/cli.h"
#include "core/simulator.h"
#include "harness/presets.h"
#include "harness/sweep.h"
#include "harness/tape_registry.h"
#include "trace/workload.h"

using namespace clusmt;

namespace {

struct Preset {
  const char* name;
  trace::Category cat0;
  trace::TraceKind kind0;
  trace::Category cat1;
  trace::TraceKind kind1;
};

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::int64_t cycles_arg = args.get_int("cycles", 100000);
  const std::int64_t warmup_arg = args.get_int("warmup", 20000);
  const std::int64_t repeat_arg = args.get_int("repeat", 3);
  if (cycles_arg < 1 || warmup_arg < 0 || repeat_arg < 1) {
    std::fprintf(stderr,
                 "error: --cycles must be >= 1, --warmup >= 0, "
                 "--repeat >= 1\n");
    return 2;
  }
  const Cycle cycles = static_cast<Cycle>(cycles_arg);
  const Cycle warmup = static_cast<Cycle>(warmup_arg);
  const int repeat = static_cast<int>(repeat_arg);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::string csv_path = args.get_string("csv", "");
  const std::string json_path = args.get_string("json", "");
  harness::TapeRegistry& tapes = harness::TapeRegistry::instance();
  tapes.set_enabled(!args.get_bool("no-tape", false));

  const trace::TracePool pool(seed);
  const Preset presets[] = {
      {"ilp+ilp", trace::Category::kISpec00, trace::TraceKind::kIlp,
       trace::Category::kISpec00, trace::TraceKind::kIlp},
      {"mem+mem", trace::Category::kISpec00, trace::TraceKind::kMem,
       trace::Category::kISpec00, trace::TraceKind::kMem},
      {"int+fp mix", trace::Category::kISpec00, trace::TraceKind::kIlp,
       trace::Category::kFSpec00, trace::TraceKind::kMem},
  };
  const policy::PolicyKind schemes[] = {policy::PolicyKind::kIcount,
                                        policy::PolicyKind::kCssp,
                                        policy::PolicyKind::kCdprf};

  harness::TableDoc doc;
  doc.header = {"scheme",       "workload",     "sim_kcycles",
                "best_wall_ms", "kcycles_per_s", "commit_kuops_per_s"};

  double total_wall = 0.0;
  double total_kcycles = 0.0;
  for (const policy::PolicyKind scheme : schemes) {
    for (const Preset& preset : presets) {
      double best = 0.0;
      std::uint64_t committed = 0;
      for (int rep = 0; rep < repeat; ++rep) {
        core::SimConfig config = harness::rf_study_config(64);
        config.policy = scheme;
        core::Simulator sim(config);
        const trace::TraceSpec* specs[2] = {
            &pool.get(preset.cat0, preset.kind0, 0),
            &pool.get(preset.cat1, preset.kind1, 1)};
        for (ThreadId t = 0; t < 2; ++t) {
          const trace::TraceProfile* profile = nullptr;
          auto source = tapes.source_for(*specs[t], &profile);
          sim.attach_thread(t, std::move(source), profile, specs[t]->seed);
        }
        sim.run(warmup);
        sim.reset_stats();
        const double start = bench::wall_time_seconds();
        sim.run(cycles);
        const double wall = bench::wall_time_seconds() - start;
        if (rep == 0 || wall < best) best = wall;
        committed = sim.stats().committed_total();  // identical every rep
      }
      const double kcycles = static_cast<double>(cycles) / 1000.0;
      doc.add_row({std::string(policy::policy_kind_name(scheme)),
                   preset.name, format_double(kcycles, 0),
                   format_double(best * 1000.0, 2),
                   format_double(kcycles / best, 1),
                   format_double(static_cast<double>(committed) / 1000.0 /
                                     best,
                                 1)});
      total_wall += best;
      total_kcycles += kcycles;
    }
  }
  doc.add_row({"TOTAL", "(all cells)", format_double(total_kcycles, 0),
               format_double(total_wall * 1000.0, 2),
               format_double(total_kcycles / total_wall, 1), "-"});
  // Tape-registry traffic, mirrored into --csv/--json: replayed / recorded
  // / live attachments, reusing the row shape (regression tooling keys on
  // the first column, so an extra labelled row is additive).
  doc.add_row({"TAPES",
               tapes.enabled() ? "(replayed/recorded)" : "(--no-tape)",
               std::to_string(tapes.hits()), std::to_string(tapes.recordings()),
               std::to_string(tapes.live_sources()), "-"});

  std::printf(
      "Simulator throughput (best of %d, %llu warmup + %llu measured "
      "cycles/cell, seed %llu)\n\n%s\n",
      repeat, static_cast<unsigned long long>(warmup),
      static_cast<unsigned long long>(cycles),
      static_cast<unsigned long long>(seed), doc.render_text().c_str());

  bool failed = false;
  if (!csv_path.empty()) {
    if (doc.write_csv(csv_path)) {
      std::printf("CSV written to %s\n", csv_path.c_str());
    } else {
      std::fprintf(stderr, "error: failed to write CSV %s\n",
                   csv_path.c_str());
      failed = true;
    }
  }
  if (!json_path.empty()) {
    if (doc.write_json(json_path)) {
      std::printf("JSON written to %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "error: failed to write JSON %s\n",
                   json_path.c_str());
      failed = true;
    }
  }
  return failed ? 1 : 0;
}
