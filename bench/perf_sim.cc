// Simulator-core throughput bench: wall-clock simulated kilocycles/sec
// over the paper's scheme × workload-character presets on the Table 1
// headline machine (64 registers/cluster). Unlike the figure benches this
// measures the *host* cost of simulation, not the modelled machine — it is
// the perf trajectory future optimization PRs defend (BENCH_sim.json).
//
// Every cell simulates from scratch (the run cache is deliberately not
// consulted: a cache hit would measure nothing), times only the measured
// phase (construction and warmup excluded), and reports the best of
// --repeat runs to shrink scheduler noise. Simulation results are
// deterministic, so repeats change timing only.
//
// Trace delivery goes through the tape registry (the product datapath):
// the first repetition of a (profile, seed) records its replay tape, later
// repetitions and cells replay it, so best-of measures the tape-warm rate.
// --no-tape measures the live-RNG generator instead. A TAPES row in the
// table reports the registry traffic alongside the timing rows.
//
// Flags:
//   --cycles N   measured cycles per cell            [default 100000]
//   --warmup N   warmup cycles before timing          [default 20000]
//   --repeat N   timed repetitions per cell, best-of  [default 3]
//   --seed S     trace pool master seed               [default 1]
//   --no-tape    bypass trace tapes (live generator oracle)
//   --no-skip-ahead   disable quiescent-cycle skip-ahead (oracle mode)
//   --no-rename-memo  disable rename-plan memoization (oracle mode)
//   --csv PATH / --json PATH   mirror the table
//   --ab CMD     interleaved A/B comparison against a reference
//                bench_perf_sim. CMD is a command prefix (a binary path,
//                optionally with flags — e.g. "./bench_perf_sim_main" or
//                "build/bench/bench_perf_sim --no-skip-ahead"); the bench
//                alternates one timed pass of this binary (A) with one
//                invocation of CMD (B), --repeat times each, then reports
//                per-cell medians and the A/B speedup table. The main
//                table (and --csv/--json) carries A's medians, so the
//                mirrored JSON is an honest before/after artifact.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench_util.h"
#include "common/cli.h"
#include "core/simulator.h"
#include "harness/presets.h"
#include "harness/sweep.h"
#include "harness/tape_registry.h"
#include "trace/workload.h"

using namespace clusmt;

namespace {

struct Preset {
  const char* name;
  trace::Category cat0;
  trace::TraceKind kind0;
  trace::Category cat1;
  trace::TraceKind kind1;
};

/// One (scheme, preset) grid cell's identity plus its measurements.
struct Cell {
  policy::PolicyKind scheme;
  const Preset* preset;
  std::vector<double> wall_s;  // one sample per timed pass
  std::uint64_t committed = 0;
  std::uint64_t cycles_skipped = 0;
};

double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2.0;
}

/// Simulates one cell once and returns the measured-phase wall seconds.
/// Deterministic results: committed/skip tallies are identical every call.
double run_cell_once(Cell& cell, const trace::TracePool& pool, Cycle cycles,
                     Cycle warmup, bool skip_ahead, bool rename_memo) {
  core::SimConfig config = harness::rf_study_config(64);
  config.policy = cell.scheme;
  config.skip_ahead = skip_ahead;
  config.rename_memo = rename_memo;
  core::Simulator sim(config);
  auto& tapes = harness::TapeRegistry::instance();
  const trace::TraceSpec* specs[2] = {
      &pool.get(cell.preset->cat0, cell.preset->kind0, 0),
      &pool.get(cell.preset->cat1, cell.preset->kind1, 1)};
  for (ThreadId t = 0; t < 2; ++t) {
    const trace::TraceProfile* profile = nullptr;
    auto source = tapes.source_for(*specs[t], &profile);
    sim.attach_thread(t, std::move(source), profile, specs[t]->seed);
  }
  sim.run(warmup);
  sim.reset_stats();
  const double start = bench::wall_time_seconds();
  sim.run(cycles);
  const double wall = bench::wall_time_seconds() - start;
  cell.committed = sim.stats().committed_total();
  cell.cycles_skipped = sim.cycles_skipped();
  return wall;
}

/// Reads the reference side's JSON mirror: "scheme|workload" →
/// best_wall_ms. The committed bench_perf_sim format (one object per row,
/// stable key order) has carried these keys since the bench existed, so
/// any past build works as the reference binary.
bool parse_ref_json(const std::string& path,
                    std::vector<std::pair<std::string, double>>& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  std::size_t pos = 0;
  const auto field = [&](const std::string& row, const char* key,
                         std::string& value) {
    const std::string needle = std::string("\"") + key + "\": ";
    const std::size_t at = row.find(needle);
    if (at == std::string::npos) return false;
    std::size_t v = at + needle.size();
    std::size_t end = row.find_first_of(",}", v);
    if (end == std::string::npos) return false;
    value = row.substr(v, end - v);
    if (!value.empty() && value.front() == '"') {
      value = value.substr(1, value.size() - 2);
    }
    return true;
  };
  while ((pos = text.find('{', pos)) != std::string::npos) {
    const std::size_t close = text.find('}', pos);
    if (close == std::string::npos) break;
    const std::string row = text.substr(pos, close - pos + 1);
    pos = close + 1;
    std::string scheme, workload, wall;
    if (!field(row, "scheme", scheme) || !field(row, "workload", workload) ||
        !field(row, "best_wall_ms", wall)) {
      continue;
    }
    if (scheme == "TOTAL" || scheme == "TAPES") continue;
    char* endp = nullptr;
    const double ms = std::strtod(wall.c_str(), &endp);
    if (endp == wall.c_str()) continue;  // non-numeric (a "-" cell)
    out.emplace_back(scheme + "|" + workload, ms / 1000.0);
  }
  return !out.empty();
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::int64_t cycles_arg = args.get_int("cycles", 100000);
  const std::int64_t warmup_arg = args.get_int("warmup", 20000);
  const std::int64_t repeat_arg = args.get_int("repeat", 3);
  if (cycles_arg < 1 || warmup_arg < 0 || repeat_arg < 1) {
    std::fprintf(stderr,
                 "error: --cycles must be >= 1, --warmup >= 0, "
                 "--repeat >= 1\n");
    return 2;
  }
  const Cycle cycles = static_cast<Cycle>(cycles_arg);
  const Cycle warmup = static_cast<Cycle>(warmup_arg);
  const int repeat = static_cast<int>(repeat_arg);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::string csv_path = args.get_string("csv", "");
  const std::string json_path = args.get_string("json", "");
  const std::string ab_cmd = args.get_string("ab", "");
  const bool skip_ahead = !args.get_bool("no-skip-ahead", false);
  const bool rename_memo = !args.get_bool("no-rename-memo", false);
  harness::TapeRegistry& tapes = harness::TapeRegistry::instance();
  tapes.set_enabled(!args.get_bool("no-tape", false));

  const trace::TracePool pool(seed);
  const Preset presets[] = {
      {"ilp+ilp", trace::Category::kISpec00, trace::TraceKind::kIlp,
       trace::Category::kISpec00, trace::TraceKind::kIlp},
      {"mem+mem", trace::Category::kISpec00, trace::TraceKind::kMem,
       trace::Category::kISpec00, trace::TraceKind::kMem},
      {"int+fp mix", trace::Category::kISpec00, trace::TraceKind::kIlp,
       trace::Category::kFSpec00, trace::TraceKind::kMem},
  };
  const policy::PolicyKind schemes[] = {policy::PolicyKind::kIcount,
                                        policy::PolicyKind::kCssp,
                                        policy::PolicyKind::kCdprf};

  std::vector<Cell> cells;
  for (const policy::PolicyKind scheme : schemes) {
    for (const Preset& preset : presets) {
      cells.push_back(Cell{scheme, &preset, {}, 0, 0});
    }
  }

  // Reference-side medians ("scheme|workload" → wall seconds per pass),
  // filled in --ab mode only.
  std::vector<std::vector<std::pair<std::string, double>>> ref_passes;

  if (ab_cmd.empty()) {
    // Plain mode: per-cell best-of-`repeat` consecutive runs, exactly the
    // historical methodology behind the committed BENCH_sim.json points.
    for (Cell& cell : cells) {
      for (int rep = 0; rep < repeat; ++rep) {
        cell.wall_s.push_back(run_cell_once(cell, pool, cycles, warmup,
                                            skip_ahead, rename_memo));
      }
    }
  } else {
    // Interleaved A/B: one untimed pass first so A's later passes are all
    // tape-warm, then alternate a timed A pass with one B invocation
    // (--repeat 2 best-of makes B's sample tape-warm too — its first rep
    // records the child process's tapes, the second replays). Alternation
    // means slow host drift (thermal, noisy neighbours) hits both sides
    // equally instead of biasing whichever ran second.
    for (Cell& cell : cells) {
      (void)run_cell_once(cell, pool, cycles, warmup, skip_ahead,
                          rename_memo);
    }
    const std::string ref_json =
        "/tmp/perf_ab_ref." + std::to_string(getpid()) + ".json";
    for (int rep = 0; rep < repeat; ++rep) {
      for (Cell& cell : cells) {
        cell.wall_s.push_back(run_cell_once(cell, pool, cycles, warmup,
                                            skip_ahead, rename_memo));
      }
      std::ostringstream cmd;
      cmd << ab_cmd << " --cycles " << cycles << " --warmup " << warmup
          << " --repeat 2 --seed " << seed << " --json " << ref_json
          << " > /dev/null";
      if (std::system(cmd.str().c_str()) != 0) {
        std::fprintf(stderr, "error: reference command failed: %s\n",
                     cmd.str().c_str());
        std::remove(ref_json.c_str());
        return 2;
      }
      std::vector<std::pair<std::string, double>> pass;
      if (!parse_ref_json(ref_json, pass)) {
        std::fprintf(stderr, "error: could not parse reference JSON %s\n",
                     ref_json.c_str());
        std::remove(ref_json.c_str());
        return 2;
      }
      ref_passes.push_back(std::move(pass));
    }
    std::remove(ref_json.c_str());
  }

  harness::TableDoc doc;
  doc.header = {"scheme",        "workload",
                "sim_kcycles",   "best_wall_ms",
                "kcycles_per_s", "commit_kuops_per_s",
                "skip_pct"};

  const double kcycles = static_cast<double>(cycles) / 1000.0;
  double total_wall = 0.0;
  double total_kcycles = 0.0;
  std::uint64_t total_skipped = 0;
  for (const Cell& cell : cells) {
    // Plain mode summarises best-of (historical methodology); A/B mode
    // uses the median so the mirrored JSON is an honest central estimate.
    const double wall =
        ab_cmd.empty()
            ? *std::min_element(cell.wall_s.begin(), cell.wall_s.end())
            : median_of(cell.wall_s);
    const double skip_pct = 100.0 * static_cast<double>(cell.cycles_skipped) /
                            static_cast<double>(cycles);
    doc.add_row({std::string(policy::policy_kind_name(cell.scheme)),
                 cell.preset->name, format_double(kcycles, 0),
                 format_double(wall * 1000.0, 2),
                 format_double(kcycles / wall, 1),
                 format_double(
                     static_cast<double>(cell.committed) / 1000.0 / wall, 1),
                 format_double(skip_pct, 1)});
    total_wall += wall;
    total_kcycles += kcycles;
    total_skipped += cell.cycles_skipped;
  }
  doc.add_row({"TOTAL", "(all cells)", format_double(total_kcycles, 0),
               format_double(total_wall * 1000.0, 2),
               format_double(total_kcycles / total_wall, 1), "-",
               format_double(100.0 * static_cast<double>(total_skipped) /
                                 (static_cast<double>(cycles) *
                                  static_cast<double>(cells.size())),
                             1)});
  // Tape-registry traffic, mirrored into --csv/--json. The counters live
  // in the workload label on purpose: they are attachment counts, not
  // rates, and must not squat in the numeric rate columns (this row once
  // leaked live_sources into kcycles_per_s as a bogus 0).
  doc.add_row({"TAPES",
               (tapes.enabled() ? std::string("replayed=") +
                                      std::to_string(tapes.hits()) +
                                      " recorded=" +
                                      std::to_string(tapes.recordings()) +
                                      " live=" +
                                      std::to_string(tapes.live_sources())
                                : std::string("(--no-tape)")),
               "-", "-", "-", "-", "-"});

  std::printf(
      "Simulator throughput (%s of %d, %llu warmup + %llu measured "
      "cycles/cell, seed %llu%s)\n\n%s\n",
      ab_cmd.empty() ? "best" : "median", repeat,
      static_cast<unsigned long long>(warmup),
      static_cast<unsigned long long>(cycles),
      static_cast<unsigned long long>(seed),
      skip_ahead ? "" : ", skip-ahead OFF", doc.render_text().c_str());

  if (!ab_cmd.empty()) {
    // Per-cell A/B delta: reference median beside this binary's median.
    harness::TableDoc delta;
    delta.header = {"scheme", "workload", "ref_kcycles_per_s",
                    "new_kcycles_per_s", "speedup"};
    double ref_total = 0.0;
    double new_total = 0.0;
    bool missing = false;
    for (const Cell& cell : cells) {
      const std::string key =
          std::string(policy::policy_kind_name(cell.scheme)) + "|" +
          cell.preset->name;
      std::vector<double> ref_wall;
      for (const auto& pass : ref_passes) {
        for (const auto& [k, w] : pass) {
          if (k == key) ref_wall.push_back(w);
        }
      }
      const double new_wall = median_of(cell.wall_s);
      if (ref_wall.empty()) {
        delta.add_row({std::string(policy::policy_kind_name(cell.scheme)),
                       cell.preset->name, "-",
                       format_double(kcycles / new_wall, 1), "-"});
        missing = true;
        continue;
      }
      const double ref = median_of(ref_wall);
      delta.add_row({std::string(policy::policy_kind_name(cell.scheme)),
                     cell.preset->name, format_double(kcycles / ref, 1),
                     format_double(kcycles / new_wall, 1),
                     format_double(ref / new_wall, 2)});
      ref_total += ref;
      new_total += new_wall;
    }
    if (!missing && ref_total > 0.0) {
      delta.add_row({"TOTAL", "(all cells)",
                     format_double(total_kcycles / ref_total, 1),
                     format_double(total_kcycles / new_total, 1),
                     format_double(ref_total / new_total, 2)});
    }
    std::printf("A/B vs `%s` (median of %d interleaved passes/side)\n\n%s\n",
                ab_cmd.c_str(), repeat, delta.render_text().c_str());
  }

  bool failed = false;
  if (!csv_path.empty()) {
    if (doc.write_csv(csv_path)) {
      std::printf("CSV written to %s\n", csv_path.c_str());
    } else {
      std::fprintf(stderr, "error: failed to write CSV %s\n",
                   csv_path.c_str());
      failed = true;
    }
  }
  if (!json_path.empty()) {
    if (doc.write_json(json_path)) {
      std::printf("JSON written to %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "error: failed to write JSON %s\n",
                   json_path.c_str());
      failed = true;
    }
  }
  return failed ? 1 : 0;
}
