// Figure 10: fairness improvement vs Icount for Stall, Flush+, CSSP and
// CDPRF. Fairness is the Gabor/Luo metric (min ratio of thread slowdowns
// relative to single-threaded execution); bars are fairness(scheme) /
// fairness(Icount) per workload, averaged per category (paper §5.2).
#include "bench_util.h"
#include "common/cli.h"
#include "harness/presets.h"

using namespace clusmt;

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::BenchOptions::parse(
      argc, argv, /*default_cycles=*/200000, /*default_warmup=*/80000);
  const CliArgs args(argc, argv);
  const Cycle interval = static_cast<Cycle>(args.get_int("interval", 32768));
  const auto suite = opt.suite();
  if (opt.handle_list(suite)) return 0;

  harness::SweepSpec spec = opt.sweep(suite);
  spec.base = harness::rf_study_config(64);
  spec.base.policy_config.cdprf_interval = interval;
  spec.axes = {bench::scheme_axis(
      {policy::PolicyKind::kIcount, policy::PolicyKind::kStall,
       policy::PolicyKind::kFlushPlus, policy::PolicyKind::kCssp,
       policy::PolicyKind::kCdprf})};
  spec.with_fairness = true;

  const harness::SweepResult res = harness::run_sweep(spec);
  const auto base = res.fairness(res.point_index("Icount"));

  std::vector<std::pair<std::string, std::vector<double>>> series;
  for (std::size_t p = 1; p < res.points.size(); ++p) {
    series.emplace_back(res.points[p].label,
                        harness::ratio_to_baseline(res.fairness(p), base));
  }

  bench::emit_category_table(
      "Figure 10 — Fairness speedup vs Icount (64 regs/cluster)", suite,
      series, opt);
  return 0;
}
