// Figure 10: fairness improvement vs Icount for Stall, Flush+, CSSP and
// CDPRF. Fairness is the Gabor/Luo metric (min ratio of thread slowdowns
// relative to single-threaded execution); bars are fairness(scheme) /
// fairness(Icount) per workload, averaged per category (paper §5.2).
#include "bench_util.h"
#include "common/cli.h"
#include "harness/presets.h"

using namespace clusmt;

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::BenchOptions::parse(
      argc, argv, /*default_cycles=*/200000, /*default_warmup=*/80000);
  const CliArgs args(argc, argv);
  const Cycle interval = static_cast<Cycle>(args.get_int("interval", 32768));
  const auto suite = opt.suite();

  auto fairness_of = [&](policy::PolicyKind kind) {
    core::SimConfig config = harness::rf_study_config(64);
    config.policy = kind;
    config.policy_config.cdprf_interval = interval;
    harness::Runner runner(config, opt.cycles, opt.warmup, opt.jobs);
    const auto results = runner.run_suite_with_fairness(suite);
    std::fprintf(stderr, "done: %s\n",
                 std::string(policy::policy_kind_name(kind)).c_str());
    return bench::metric_of(results,
                            [](const auto& r) { return r.fairness; });
  };

  const std::vector<double> base = fairness_of(policy::PolicyKind::kIcount);

  std::vector<std::pair<std::string, std::vector<double>>> series;
  for (policy::PolicyKind kind :
       {policy::PolicyKind::kStall, policy::PolicyKind::kFlushPlus,
        policy::PolicyKind::kCssp, policy::PolicyKind::kCdprf}) {
    series.emplace_back(std::string(policy::policy_kind_name(kind)),
                        bench::ratio_of(fairness_of(kind), base));
  }

  bench::emit_category_table(
      "Figure 10 — Fairness speedup vs Icount (64 regs/cluster)", suite,
      series, opt);
  return 0;
}
