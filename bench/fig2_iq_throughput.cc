// Figure 2: throughput of the issue-queue management schemes (Icount,
// Stall, Flush+, CISP, CSSP, CSPSP, PC) with 32 and 64 IQ entries per
// cluster. Register files and ROB are unbounded to isolate IQ effects.
// Values are speedups normalised, per workload, to Icount with 32 entries,
// then averaged per category — the paper's Figure 2 layout.
#include "bench_util.h"
#include "harness/presets.h"
#include "policy/policy.h"

using namespace clusmt;

int main(int argc, char** argv) {
  const bench::BenchOptions opt =
      bench::BenchOptions::parse(argc, argv, /*default_cycles=*/120000);
  const auto suite = opt.suite();
  if (opt.handle_list(suite)) return 0;

  const std::vector<policy::PolicyKind> schemes = {
      policy::PolicyKind::kIcount,       policy::PolicyKind::kStall,
      policy::PolicyKind::kFlushPlus,    policy::PolicyKind::kCisp,
      policy::PolicyKind::kCssp,         policy::PolicyKind::kCspsp,
      policy::PolicyKind::kPrivateClusters,
  };

  harness::SweepSpec spec = opt.sweep(suite);
  spec.base = harness::iq_study_config(32);
  spec.axes = {
      {"iq",
       {{"32", [](core::SimConfig& c) { c.iq_entries = 32; }},
        {"64", [](core::SimConfig& c) { c.iq_entries = 64; }}}},
      bench::scheme_axis(schemes),
  };
  // Paper-style labels: scheme first, IQ size second ("Icount@32").
  spec.label_fn = [](const std::vector<std::string>& parts) {
    return parts[1] + "@" + parts[0];
  };

  const harness::SweepResult res = harness::run_sweep(spec);

  // Baseline: Icount @ 32 entries.
  const auto baseline = res.throughput(res.point_index("Icount@32"));
  std::vector<std::pair<std::string, std::vector<double>>> series;
  for (std::size_t p = 0; p < res.points.size(); ++p) {
    series.emplace_back(res.points[p].label,
                        harness::ratio_to_baseline(res.throughput(p),
                                                   baseline));
  }

  bench::emit_category_table(
      "Figure 2 — Throughput speedup vs Icount@32 (unbounded RF/ROB)", suite,
      series, opt);
  return 0;
}
