// Figure 2: throughput of the issue-queue management schemes (Icount,
// Stall, Flush+, CISP, CSSP, CSPSP, PC) with 32 and 64 IQ entries per
// cluster. Register files and ROB are unbounded to isolate IQ effects.
// Values are speedups normalised, per workload, to Icount with 32 entries,
// then averaged per category — the paper's Figure 2 layout.
#include <cstdio>

#include "bench_util.h"
#include "harness/presets.h"
#include "policy/policy.h"

using namespace clusmt;

int main(int argc, char** argv) {
  const bench::BenchOptions opt =
      bench::BenchOptions::parse(argc, argv, /*default_cycles=*/120000);
  const auto suite = opt.suite();

  const std::vector<policy::PolicyKind> schemes = {
      policy::PolicyKind::kIcount,       policy::PolicyKind::kStall,
      policy::PolicyKind::kFlushPlus,    policy::PolicyKind::kCisp,
      policy::PolicyKind::kCssp,         policy::PolicyKind::kCspsp,
      policy::PolicyKind::kPrivateClusters,
  };

  // Baseline: Icount @ 32 entries.
  std::vector<double> baseline;
  std::vector<std::pair<std::string, std::vector<double>>> series;

  for (int iq : {32, 64}) {
    for (policy::PolicyKind kind : schemes) {
      core::SimConfig config = harness::iq_study_config(iq);
      config.policy = kind;
      harness::Runner runner(config, opt.cycles, opt.warmup, opt.jobs);
      const auto results = runner.run_suite(suite);
      auto throughput = bench::metric_of(
          results, [](const harness::RunResult& r) { return r.throughput; });
      if (kind == policy::PolicyKind::kIcount && iq == 32) {
        baseline = throughput;
      }
      std::string label = std::string(policy::policy_kind_name(kind)) + "@" +
                          std::to_string(iq);
      series.emplace_back(std::move(label),
                          bench::ratio_of(throughput, baseline));
      std::fprintf(stderr, "done: %s@%d\n",
                   std::string(policy::policy_kind_name(kind)).c_str(), iq);
    }
  }

  bench::emit_category_table(
      "Figure 2 — Throughput speedup vs Icount@32 (unbounded RF/ROB)", suite,
      series, opt);
  return 0;
}
