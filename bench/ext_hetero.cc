// Extension survey (beyond the paper's figures): heterogeneous cluster
// shapes. The paper evaluates its 14 schemes only on identical clusters;
// real clustered machines are P+E asymmetric. This sweeps every scheme
// across four machine shapes on the Table 1 register-file baseline:
//
//   sym       the homogeneous paper machine (cache-shared with the
//             paper-figure benches)
//   w4:2      2:1 issue width — cluster 0 gets 4 ports, cluster 1 gets 2
//   iq48:16   asymmetric IQ and register file at a fixed total
//             (48/16 IQ entries, 96/32 registers of each class)
//   far4      a far interconnect: every cross-cluster copy takes 4 cycles
//             (the per-pair link matrix, links/bandwidth unchanged)
//
// The table is normalised to Icount on the symmetric machine, so each
// column reads as "scheme throughput on this shape vs the flat baseline"
// — which schemes degrade gracefully on asymmetric hardware, and which
// ones collapse.
//
// The shared shape flags (--width=4,2, --iq=48,16, --int-regs, --fp-regs,
// --link; see harness/shape_flags.h) move the *base* machine of the whole
// grid; the shape axis then applies its own overrides on top.
#include "bench_util.h"
#include "harness/presets.h"
#include "harness/shape_flags.h"

using namespace clusmt;

int main(int argc, char** argv) {
  const bench::BenchOptions opt =
      bench::BenchOptions::parse(argc, argv, /*default_cycles=*/120000);
  const CliArgs args(argc, argv);
  const auto suite = opt.suite();
  if (opt.handle_list(suite)) return 0;

  harness::SweepSpec spec = opt.sweep(suite);
  spec.base = harness::rf_study_config(64);
  harness::apply_shape_flags(args, spec.base);

  spec.axes = {bench::scheme_axis(policy::all_policy_kinds()),
               {"shape",
                {{"sym", [](core::SimConfig&) {}},
                 {"w4:2",
                  [](core::SimConfig& c) {
                    c.shape[0].issue_width = 4;
                    c.shape[1].issue_width = 2;
                  }},
                 {"iq48:16",
                  [](core::SimConfig& c) {
                    c.shape[0].iq_entries = 48;
                    c.shape[1].iq_entries = 16;
                    c.shape[0].int_regs = 96;
                    c.shape[1].int_regs = 32;
                    c.shape[0].fp_regs = 96;
                    c.shape[1].fp_regs = 32;
                  }},
                 {"far4",
                  [](core::SimConfig& c) {
                    for (int from = 0; from < c.num_clusters; ++from) {
                      for (int to = 0; to < c.num_clusters; ++to) {
                        if (from != to) c.link_latency_cc[from][to] = 4;
                      }
                    }
                  }}}}};
  spec.label_fn = [](const std::vector<std::string>& parts) {
    return parts[0] + "@" + parts[1];
  };

  const harness::SweepResult res = harness::run_sweep(spec);

  // Normalise to the flat paper machine: Icount on the symmetric shape.
  const auto baseline = res.throughput(res.point_index("Icount@sym"));
  std::vector<std::pair<std::string, std::vector<double>>> series;
  for (std::size_t p = 0; p < res.points.size(); ++p) {
    series.emplace_back(res.points[p].label,
                        harness::ratio_to_baseline(res.throughput(p),
                                                   baseline));
  }

  bench::emit_category_table(
      "Extension — scheme x heterogeneous cluster shape "
      "(vs Icount @ symmetric)",
      suite, series, opt);
  return 0;
}
