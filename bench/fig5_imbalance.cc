// Figure 5: workload-imbalance analysis for Icount, CISP, CSSP and PC
// (32-entry IQs, unbounded RF/ROB).
//
// An imbalance event is a ready µop denied an issue slot in its cluster;
// it is classified "1 <class>" when the other cluster had a free compatible
// port that cycle (the machine wasted an opportunity) and "0 <class>"
// otherwise. As in the paper, the six sections are normalised to sum to
// 100% — perfect balance drives the "1 *" sections to zero.
#include <array>

#include "bench_util.h"
#include "harness/presets.h"

using namespace clusmt;

int main(int argc, char** argv) {
  const bench::BenchOptions opt =
      bench::BenchOptions::parse(argc, argv, /*default_cycles=*/120000);
  const auto suite = opt.suite();
  if (opt.handle_list(suite)) return 0;

  const std::vector<policy::PolicyKind> schemes = {
      policy::PolicyKind::kIcount, policy::PolicyKind::kCisp,
      policy::PolicyKind::kCssp, policy::PolicyKind::kPrivateClusters};

  harness::SweepSpec spec = opt.sweep(suite);
  spec.base = harness::iq_study_config(32);
  spec.axes = {bench::scheme_axis(schemes)};

  const harness::SweepResult res = harness::run_sweep(spec);

  harness::TableDoc doc;
  doc.header = {"category/scheme", "0 Integer", "0 Fp/Simd", "0 Mem",
                "1 Integer",       "1 Fp/Simd", "1 Mem"};

  for (std::size_t p = 0; p < res.points.size(); ++p) {
    const auto& results = res.cells[p];

    // Aggregate the six event counters per category.
    auto rows = trace::category_display_order();
    rows.push_back("AVG");
    for (const std::string& category : rows) {
      std::array<double, 6> events = {};
      for (std::size_t i = 0; i < suite.size(); ++i) {
        if (category != "AVG" && suite[i].category != category) continue;
        for (int other = 0; other < 2; ++other) {
          for (int k = 0; k < trace::kNumPortClasses; ++k) {
            events[other * 3 + k] += static_cast<double>(
                results[i].stats.imbalance_events[other][k]);
          }
        }
      }
      double total = 0;
      for (double e : events) total += e;
      if (total == 0) continue;
      std::vector<std::string> cells = {category + "/" + res.points[p].label};
      for (double e : events) {
        cells.push_back(format_double(100.0 * e / total, 1));
      }
      doc.add_row(std::move(cells));
    }
  }

  std::printf(
      "Figure 5 — Workload imbalance breakdown (%% of imbalance events;\n"
      "'1 <class>' = the other cluster had a free compatible slot)\n\n%s\n",
      doc.render_text().c_str());
  bench::emit_doc(doc, opt);
  return 0;
}
