// Ablation: how sensitive are the static partitions to their fractions?
// The paper fixes CSSP/CISP at one half per thread and CSPSP's guarantee
// at one quarter (Table 3). This bench sweeps both knobs. Expected shape:
// CSSP peaks near 1/2 (its whole point is protecting both threads'
// entries in both clusters), while CSPSP degrades gracefully toward
// Icount as the guarantee shrinks to zero.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "harness/presets.h"
#include "policy/policy.h"

using namespace clusmt;

int main(int argc, char** argv) {
  const bench::BenchOptions opt =
      bench::BenchOptions::parse(argc, argv, /*default_cycles=*/120000);
  const auto suite = opt.suite();
  if (opt.handle_list(suite)) return 0;

  harness::SweepSpec spec = opt.sweep(suite);
  {
    core::SimConfig config = harness::iq_study_config(32);
    config.policy = policy::PolicyKind::kIcount;
    spec.points.push_back({"Icount", config});
  }

  // CSSP partition-fraction sweep (paper value: 0.50).
  for (double fraction : {0.375, 0.5, 0.625, 0.75}) {
    core::SimConfig config = harness::iq_study_config(32);
    config.policy = policy::PolicyKind::kCssp;
    config.policy_config.partition_fraction = fraction;
    char label[32];
    std::snprintf(label, sizeof label, "CSSP@%.3f", fraction);
    spec.points.push_back({label, config});
  }

  // CSPSP guarantee sweep (paper value: 0.25).
  for (double guarantee : {0.125, 0.25, 0.375, 0.5}) {
    core::SimConfig config = harness::iq_study_config(32);
    config.policy = policy::PolicyKind::kCspsp;
    config.policy_config.cspsp_guarantee_fraction = guarantee;
    char label[32];
    std::snprintf(label, sizeof label, "CSPSP@%.3f", guarantee);
    spec.points.push_back({label, config});
  }

  const harness::SweepResult res = harness::run_sweep(spec);
  const auto baseline = res.throughput(res.point_index("Icount"));

  std::vector<std::pair<std::string, std::vector<double>>> series;
  for (std::size_t p = 1; p < res.points.size(); ++p) {
    series.emplace_back(res.points[p].label,
                        harness::ratio_to_baseline(res.throughput(p),
                                                   baseline));
  }

  bench::emit_category_table(
      "Ablation — partition fractions (throughput vs Icount, 32-entry IQs)",
      suite, series, opt);
  return 0;
}
