// Google-benchmark micro-benchmarks for the hot simulator components: the
// per-cycle/per-µop costs that bound overall simulation speed, and the
// per-cycle hardware cost proxies of each resource-assignment scheme
// (Table 3/4 schemes are meant to be cheap enough for hardware; their
// software-model cost here tracks their bookkeeping complexity).
#include <benchmark/benchmark.h>

#include "backend/issue_queue.h"
#include "backend/ports.h"
#include "common/rng.h"
#include "core/simulator.h"
#include "frontend/branch_predictor.h"
#include "harness/presets.h"
#include "memory/cache.h"
#include "policy/policy.h"
#include "trace/synthetic.h"
#include "trace/workload.h"

using namespace clusmt;

namespace {

void BM_CacheAccess(benchmark::State& state) {
  memory::SetAssocCache cache(32 * 1024, 2, 64);
  Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(rng.bounded(1 << 20), false));
  }
}
BENCHMARK(BM_CacheAccess);

void BM_GsharePredict(benchmark::State& state) {
  frontend::BranchPredictor bp(frontend::BranchPredictorConfig{});
  Xoshiro256 rng(2);
  std::uint64_t pc = 0x400000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bp.predict_and_update_history(0, pc));
    pc += 4 * (1 + (rng() & 0xF));
  }
}
BENCHMARK(BM_GsharePredict);

void BM_IssueQueueInsertRemove(benchmark::State& state) {
  backend::IssueQueue iq(static_cast<int>(state.range(0)));
  std::uint64_t seq = 0;
  // Keep the queue half full and churn entries.
  for (int i = 0; i < iq.capacity() / 2; ++i) {
    iq.insert(backend::IqEntry{.tid = 0, .seq = seq++});
  }
  for (auto _ : state) {
    const int slot = iq.insert(backend::IqEntry{.tid = 0, .seq = seq++});
    iq.remove(slot);
  }
}
BENCHMARK(BM_IssueQueueInsertRemove)->Arg(32)->Arg(64);

void BM_TraceGeneration(benchmark::State& state) {
  trace::TracePool pool(7);
  trace::SyntheticTrace trace(
      pool.get(trace::Category::kISpec00, trace::TraceKind::kIlp, 0).profile,
      42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace.next());
  }
}
BENCHMARK(BM_TraceGeneration);

/// Whole-simulator cycles/second under each scheme: the per-cycle model
/// cost of the schemes' bookkeeping (CDPRF adds per-cycle counters).
void BM_SimulatorCycle(benchmark::State& state) {
  const auto kind = static_cast<policy::PolicyKind>(state.range(0));
  trace::TracePool pool(1);
  core::SimConfig config = harness::paper_baseline();
  config.policy = kind;
  core::Simulator sim(config);
  sim.attach_thread(0, pool.get(trace::Category::kISpec00,
                                trace::TraceKind::kIlp, 0));
  sim.attach_thread(1, pool.get(trace::Category::kFSpec00,
                                trace::TraceKind::kMem, 0));
  sim.run(5000);  // prime
  for (auto _ : state) {
    sim.step();
  }
  state.SetLabel(std::string(policy::policy_kind_name(kind)));
  state.counters["uops/cycle"] = benchmark::Counter(
      static_cast<double>(sim.stats().committed_total()) /
      static_cast<double>(sim.stats().cycles));
}
BENCHMARK(BM_SimulatorCycle)
    ->Arg(static_cast<int>(policy::PolicyKind::kIcount))
    ->Arg(static_cast<int>(policy::PolicyKind::kFlushPlus))
    ->Arg(static_cast<int>(policy::PolicyKind::kCssp))
    ->Arg(static_cast<int>(policy::PolicyKind::kCdprf));

void BM_PortBooking(benchmark::State& state) {
  backend::PortSet ports;
  for (auto _ : state) {
    ports.new_cycle();
    benchmark::DoNotOptimize(ports.try_book(trace::PortClass::kInt));
    benchmark::DoNotOptimize(ports.try_book(trace::PortClass::kFpSimd));
    benchmark::DoNotOptimize(ports.try_book(trace::PortClass::kMem));
  }
}
BENCHMARK(BM_PortBooking);

}  // namespace

BENCHMARK_MAIN();
