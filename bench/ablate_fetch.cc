// Ablation: fetch selection policy. The paper fixes fetch selection to
// "the thread with the lowest number of instructions in its queue" (§3) so
// the rename selection policy always has a choice of threads; this bench
// quantifies that decision against plain round-robin fetch, under both the
// Icount baseline and the paper's final scheme (CDPRF). Expected shape:
// fewest-in-queue >= round-robin everywhere, with the gap widening on
// asymmetric (mix) workloads where one thread drains its queue faster.
#include "bench_util.h"
#include "harness/presets.h"
#include "policy/policy.h"

using namespace clusmt;

int main(int argc, char** argv) {
  const bench::BenchOptions opt =
      bench::BenchOptions::parse(argc, argv, /*default_cycles=*/120000);
  const auto suite = opt.suite();
  if (opt.handle_list(suite)) return 0;

  harness::SweepSpec spec = opt.sweep(suite);
  spec.base = harness::paper_baseline();
  spec.axes = {
      bench::scheme_axis(
          {policy::PolicyKind::kIcount, policy::PolicyKind::kCdprf}),
      {"fetch",
       {{"fewest",
         [](core::SimConfig& c) {
           c.fetch_selection = frontend::FetchSelection::kFewestInQueue;
         }},
        {"rr",
         [](core::SimConfig& c) {
           c.fetch_selection = frontend::FetchSelection::kRoundRobin;
         }}}},
  };
  spec.label_fn = [](const std::vector<std::string>& parts) {
    return parts[0] + "/" + parts[1];
  };

  const harness::SweepResult res = harness::run_sweep(spec);
  const auto baseline = res.throughput(res.point_index("Icount/fewest"));

  std::vector<std::pair<std::string, std::vector<double>>> series;
  for (std::size_t p = 0; p < res.points.size(); ++p) {
    series.emplace_back(res.points[p].label,
                        harness::ratio_to_baseline(res.throughput(p),
                                                   baseline));
  }

  bench::emit_category_table(
      "Ablation — fetch selection (throughput vs Icount + fewest-in-queue)",
      suite, series, opt);
  return 0;
}
