// Ablation: fetch selection policy. The paper fixes fetch selection to
// "the thread with the lowest number of instructions in its queue" (§3) so
// the rename selection policy always has a choice of threads; this bench
// quantifies that decision against plain round-robin fetch, under both the
// Icount baseline and the paper's final scheme (CDPRF). Expected shape:
// fewest-in-queue >= round-robin everywhere, with the gap widening on
// asymmetric (mix) workloads where one thread drains its queue faster.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "harness/presets.h"
#include "policy/policy.h"

using namespace clusmt;

int main(int argc, char** argv) {
  const bench::BenchOptions opt =
      bench::BenchOptions::parse(argc, argv, /*default_cycles=*/120000);
  const auto suite = opt.suite();

  std::vector<double> baseline;
  std::vector<std::pair<std::string, std::vector<double>>> series;

  for (policy::PolicyKind kind :
       {policy::PolicyKind::kIcount, policy::PolicyKind::kCdprf}) {
    for (frontend::FetchSelection selection :
         {frontend::FetchSelection::kFewestInQueue,
          frontend::FetchSelection::kRoundRobin}) {
      core::SimConfig config = harness::paper_baseline();
      config.policy = kind;
      config.fetch_selection = selection;
      harness::Runner runner(config, opt.cycles, opt.warmup, opt.jobs);
      auto throughput = bench::metric_of(
          runner.run_suite(suite),
          [](const harness::RunResult& r) { return r.throughput; });
      const bool is_baseline =
          kind == policy::PolicyKind::kIcount &&
          selection == frontend::FetchSelection::kFewestInQueue;
      if (is_baseline) baseline = throughput;
      const std::string label =
          std::string(policy::policy_kind_name(kind)) +
          (selection == frontend::FetchSelection::kFewestInQueue ? "/fewest"
                                                                 : "/rr");
      series.emplace_back(label, bench::ratio_of(throughput, baseline));
      std::fprintf(stderr, "done: %s\n", label.c_str());
    }
  }

  bench::emit_category_table(
      "Ablation — fetch selection (throughput vs Icount + fewest-in-queue)",
      suite, series, opt);
  return 0;
}
