// Extension experiment: energy efficiency of the resource-assignment
// schemes. The paper motivates clustering with power budgets (§1) but
// reports no energy numbers; this bench applies the activity-based model
// of core/energy.h to every scheme on the paper's baseline machine.
// Columns: energy per committed µop and energy-delay product, both
// normalised per workload to Icount (lower is better).
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/energy.h"
#include "harness/presets.h"
#include "policy/policy.h"

using namespace clusmt;

int main(int argc, char** argv) {
  const bench::BenchOptions opt =
      bench::BenchOptions::parse(argc, argv, /*default_cycles=*/120000);
  const auto suite = opt.suite();

  const std::vector<policy::PolicyKind> schemes = {
      policy::PolicyKind::kIcount, policy::PolicyKind::kStall,
      policy::PolicyKind::kFlushPlus, policy::PolicyKind::kCssp,
      policy::PolicyKind::kPrivateClusters, policy::PolicyKind::kCdprf,
  };

  std::vector<double> epu_base;
  std::vector<double> edp_base;
  std::vector<std::pair<std::string, std::vector<double>>> epu_series;
  std::vector<std::pair<std::string, std::vector<double>>> edp_series;

  for (policy::PolicyKind kind : schemes) {
    core::SimConfig config = harness::paper_baseline();
    config.policy = kind;
    harness::Runner runner(config, opt.cycles, opt.warmup, opt.jobs);
    const auto results = runner.run_suite(suite);

    auto epu = bench::metric_of(results, [&](const harness::RunResult& r) {
      return core::estimate_energy(r.stats, config).per_committed_uop(
          r.stats);
    });
    auto edp = bench::metric_of(results, [&](const harness::RunResult& r) {
      return core::estimate_energy(r.stats, config).edp(r.stats);
    });
    if (kind == policy::PolicyKind::kIcount) {
      epu_base = epu;
      edp_base = edp;
    }
    const std::string label{policy::policy_kind_name(kind)};
    epu_series.emplace_back(label, bench::ratio_of(epu, epu_base));
    edp_series.emplace_back(label, bench::ratio_of(edp, edp_base));
    std::fprintf(stderr, "done: %s\n", label.c_str());
  }

  bench::BenchOptions edp_opt = opt;
  if (!opt.csv_path.empty()) edp_opt.csv_path = opt.csv_path + ".edp";

  bench::emit_category_table(
      "Extension — energy per committed µop vs Icount (lower is better)",
      suite, epu_series, opt);
  std::printf("\n");
  bench::emit_category_table(
      "Extension — energy-delay product vs Icount (lower is better)", suite,
      edp_series, edp_opt);
  return 0;
}
