// Extension experiment: energy efficiency of the resource-assignment
// schemes. The paper motivates clustering with power budgets (§1) but
// reports no energy numbers; this bench applies the activity-based model
// of core/energy.h to every scheme on the paper's baseline machine.
// Columns: energy per committed µop and energy-delay product, both
// normalised per workload to Icount (lower is better).
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/energy.h"
#include "harness/presets.h"
#include "policy/policy.h"

using namespace clusmt;

int main(int argc, char** argv) {
  const bench::BenchOptions opt =
      bench::BenchOptions::parse(argc, argv, /*default_cycles=*/120000);
  const auto suite = opt.suite();
  if (opt.handle_list(suite)) return 0;

  const std::vector<policy::PolicyKind> schemes = {
      policy::PolicyKind::kIcount, policy::PolicyKind::kStall,
      policy::PolicyKind::kFlushPlus, policy::PolicyKind::kCssp,
      policy::PolicyKind::kPrivateClusters, policy::PolicyKind::kCdprf,
  };

  harness::SweepSpec spec = opt.sweep(suite);
  spec.base = harness::paper_baseline();
  spec.axes = {bench::scheme_axis(schemes)};

  const harness::SweepResult res = harness::run_sweep(spec);

  std::vector<std::pair<std::string, std::vector<double>>> epu_series;
  std::vector<std::pair<std::string, std::vector<double>>> edp_series;
  std::vector<double> epu_base;
  std::vector<double> edp_base;
  for (std::size_t p = 0; p < res.points.size(); ++p) {
    const core::SimConfig& config = res.points[p].config;
    auto epu = res.metric(p, [&config](const harness::RunResult& r) {
      return core::estimate_energy(r.stats, config).per_committed_uop(
          r.stats);
    });
    auto edp = res.metric(p, [&config](const harness::RunResult& r) {
      return core::estimate_energy(r.stats, config).edp(r.stats);
    });
    if (res.points[p].config.policy == policy::PolicyKind::kIcount) {
      epu_base = epu;
      edp_base = edp;
    }
    epu_series.emplace_back(res.points[p].label,
                            harness::ratio_to_baseline(epu, epu_base));
    edp_series.emplace_back(res.points[p].label,
                            harness::ratio_to_baseline(edp, edp_base));
  }

  bench::BenchOptions edp_opt = opt;
  if (!opt.csv_path.empty()) edp_opt.csv_path = opt.csv_path + ".edp";
  if (!opt.json_path.empty()) edp_opt.json_path = opt.json_path + ".edp";

  bench::emit_category_table(
      "Extension — energy per committed µop vs Icount (lower is better)",
      suite, epu_series, opt);
  std::printf("\n");
  bench::emit_category_table(
      "Extension — energy-delay product vs Icount (lower is better)", suite,
      edp_series, edp_opt);
  return 0;
}
