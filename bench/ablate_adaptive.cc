// Ablation: the extension schemes' own knobs. HillClimb's epoch length
// trades reaction speed against measurement noise (Choi & Yeung use
// epochs long enough to amortise phase noise); its delta trades step size
// against overshoot. UnreadyGate's threshold trades IQ-clog protection
// against fetch starvation. Throughput vs Icount on the paper baseline.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "harness/presets.h"
#include "policy/policy.h"

using namespace clusmt;

int main(int argc, char** argv) {
  const bench::BenchOptions opt =
      bench::BenchOptions::parse(argc, argv, /*default_cycles=*/120000);
  const auto suite = opt.suite();
  if (opt.handle_list(suite)) return 0;

  harness::SweepSpec spec = opt.sweep(suite);
  {
    core::SimConfig config = harness::paper_baseline();
    config.policy = policy::PolicyKind::kIcount;
    spec.points.push_back({"Icount", config});
  }

  // HillClimb epoch sweep at the default delta (1/16).
  for (Cycle epoch : {Cycle{2048}, Cycle{8192}, Cycle{32768}}) {
    core::SimConfig config = harness::paper_baseline();
    config.policy = policy::PolicyKind::kHillClimb;
    config.policy_config.hillclimb_epoch = epoch;
    spec.points.push_back(
        {"HC/e" + std::to_string(epoch / 1024) + "K", config});
  }

  // HillClimb delta sweep at a mid epoch (8K).
  for (double delta : {1.0 / 32.0, 1.0 / 8.0}) {
    core::SimConfig config = harness::paper_baseline();
    config.policy = policy::PolicyKind::kHillClimb;
    config.policy_config.hillclimb_epoch = 8192;
    config.policy_config.hillclimb_delta = delta;
    char label[32];
    std::snprintf(label, sizeof label, "HC/d1:%d",
                  static_cast<int>(1.0 / delta));
    spec.points.push_back({label, config});
  }

  // UnreadyGate threshold sweep (fraction of total IQ capacity).
  for (double fraction : {0.125, 0.25, 0.5}) {
    core::SimConfig config = harness::paper_baseline();
    config.policy = policy::PolicyKind::kUnreadyGate;
    config.policy_config.unready_gate_fraction = fraction;
    char label[32];
    std::snprintf(label, sizeof label, "UG@%.3f", fraction);
    spec.points.push_back({label, config});
  }

  const harness::SweepResult res = harness::run_sweep(spec);
  const auto baseline = res.throughput(res.point_index("Icount"));

  std::vector<std::pair<std::string, std::vector<double>>> series;
  for (std::size_t p = 1; p < res.points.size(); ++p) {
    series.emplace_back(res.points[p].label,
                        harness::ratio_to_baseline(res.throughput(p),
                                                   baseline));
  }

  bench::emit_category_table(
      "Ablation — adaptive-scheme knobs (throughput vs Icount)", suite,
      series, opt);
  return 0;
}
