// Shared plumbing for the figure-reproduction benches: common CLI flags,
// suite construction, and table emission. Grid running itself lives in the
// sweep engine (harness/sweep.h); a bench declares a SweepSpec, calls
// run_sweep, shapes the cells into per-workload series and emits them.
//
// Common flags (all benches):
//   --cycles N     simulated cycles per run (default per bench)
//   --warmup N     warmup cycles before stats reset
//   --full         run the full 120-workload suite (default: quick subset)
//   --per-type N   quick-suite workloads per (category, type)   [default 1]
//   --mixes N      quick-suite cross-category mixes             [default 8]
//   --seed S       master workload seed                          [default 1]
//   --filter SUB   keep only workloads whose name contains SUB
//   --list         print the selected suite and exit
//   --csv PATH     also write the table as CSV
//   --json PATH    also write the table as JSON
//   --jobs N       host threads (default: all cores)
//   --cache-dir D  persist finished runs under D and reuse them across
//                  invocations (falls back to $CLUSMT_CACHE_DIR)
//   --no-tape      bypass the trace-tape registry: every thread generates
//                  its µop stream live (the tape differential oracle)
//   --no-skip-ahead  disable quiescent-cycle skip-ahead: simulate every
//                  cycle (the skip differential oracle; results identical)
//   --no-rename-memo disable rename-plan memoization (the memo oracle;
//                  results identical)
//   --golden-emit PATH  also write the table as golden JSON (the format
//                  tools/golden_diff compares; see bench/golden/)
//   --shard-workers N  distributed mode: farm cache-miss cells to N local
//                  sweep_worker processes through a spool directory, then
//                  assemble the tables from the (now warm) --cache-dir.
//                  Requires --cache-dir. Output is bit-identical for any
//                  N, including 0 (in-process). See README "Distributed
//                  sweeps".
//   --spool-dir D  shared spool directory for --shard-workers (falls back
//                  to $CLUSMT_SPOOL_DIR; default: a fresh temp dir). Point
//                  several hosts' workers at one shared D to fan out
//                  across machines.
//   --worker-bin P sweep_worker binary to spawn (falls back to
//                  $CLUSMT_WORKER_BIN, then next to the bench binary)
//   --degrade-local  when the worker swarm cannot make progress (missing
//                  binary, spawn failures, dead workers, exhausted cells),
//                  warn and simulate the remaining cells in-process
//                  instead of aborting the sweep; tables stay
//                  bit-identical
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/cli.h"
#include "common/table.h"
#include "harness/sweep.h"
#include "harness/tape_registry.h"
#include "policy/policy.h"
#include "trace/workload.h"

namespace clusmt::bench {

/// Monotonic wall-clock seconds for throughput benches (bench/perf_sim.cc).
[[nodiscard]] inline double wall_time_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct BenchOptions {
  Cycle cycles = 150000;
  Cycle warmup = 50000;
  bool full = false;
  int per_type = 1;
  int mixes = 8;
  std::uint64_t seed = 1;
  std::string filter;
  bool list = false;
  std::string csv_path;
  std::string json_path;
  std::string golden_path;
  std::string cache_dir;
  std::size_t jobs = 0;
  bool no_tape = false;
  bool skip_ahead = true;
  bool rename_memo = true;
  harness::ShardSpec shard;

  static BenchOptions parse(int argc, char** argv, Cycle default_cycles,
                            Cycle default_warmup = 50000) {
    const CliArgs args(argc, argv);
    BenchOptions opt;
    opt.cycles = static_cast<Cycle>(
        args.get_int("cycles", static_cast<std::int64_t>(default_cycles)));
    opt.warmup = static_cast<Cycle>(
        args.get_int("warmup", static_cast<std::int64_t>(default_warmup)));
    opt.full = args.get_bool("full", false);
    opt.per_type = static_cast<int>(args.get_int("per-type", 1));
    opt.mixes = static_cast<int>(args.get_int("mixes", 8));
    opt.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    opt.filter = args.get_string("filter", "");
    opt.list = args.get_bool("list", false);
    opt.csv_path = args.get_string("csv", "");
    opt.json_path = args.get_string("json", "");
    opt.golden_path = args.get_string("golden-emit", "");
    opt.jobs = static_cast<std::size_t>(args.get_int("jobs", 0));
    opt.cache_dir = args.get_string("cache-dir", "");
    if (opt.cache_dir.empty()) {
      if (const char* env = std::getenv("CLUSMT_CACHE_DIR")) {
        opt.cache_dir = env;
      }
    }
    // Attach the disk tier here so every bench gets --cache-dir for free:
    // all simulations funnel through the process-wide RunCache.
    harness::RunCache::instance().set_store_dir(opt.cache_dir);
    opt.no_tape = args.get_bool("no-tape", false);
    harness::TapeRegistry::instance().set_enabled(!opt.no_tape);
    opt.skip_ahead = !args.get_bool("no-skip-ahead", false);
    opt.rename_memo = !args.get_bool("no-rename-memo", false);
    opt.shard.workers = static_cast<int>(args.get_int("shard-workers", 0));
    opt.shard.spool_dir = args.get_string("spool-dir", "");
    if (opt.shard.spool_dir.empty()) {
      if (const char* env = std::getenv("CLUSMT_SPOOL_DIR")) {
        opt.shard.spool_dir = env;
      }
    }
    opt.shard.worker_bin = args.get_string("worker-bin", "");
    opt.shard.degrade_local = args.get_bool("degrade-local", false);
    return opt;
  }

  /// Drops workloads whose name does not contain --filter.
  void apply_filter(std::vector<trace::WorkloadSpec>& suite) const {
    if (filter.empty()) return;
    std::erase_if(suite, [&](const trace::WorkloadSpec& w) {
      return w.name.find(filter) == std::string::npos;
    });
  }

  [[nodiscard]] std::vector<trace::WorkloadSpec> suite() const {
    std::vector<trace::WorkloadSpec> s =
        full ? trace::build_full_suite(seed)
             : trace::build_quick_suite(seed, per_type, mixes);
    apply_filter(s);
    return s;
  }

  /// Honors --list: prints the selected suite and returns true, in which
  /// case the bench should exit 0 without running anything.
  [[nodiscard]] bool handle_list(
      const std::vector<trace::WorkloadSpec>& suite) const {
    if (!list) return false;
    for (const auto& w : suite) {
      std::string threads;
      for (const auto& t : w.threads) {
        if (!threads.empty()) threads += " + ";
        threads += t.id();
      }
      std::printf("%-24s %-12s %-4s %s\n", w.name.c_str(),
                  w.category.c_str(), w.type.c_str(), threads.c_str());
    }
    std::printf("%zu workloads\n", suite.size());
    return true;
  }

  /// A SweepSpec with the bench-wide knobs (suite, cycle budget, host
  /// threads) filled in; the bench adds base/axes/points.
  [[nodiscard]] harness::SweepSpec sweep(
      std::vector<trace::WorkloadSpec> s) const {
    harness::SweepSpec spec;
    spec.suite = std::move(s);
    spec.cycles = cycles;
    spec.warmup = warmup;
    spec.jobs = jobs;
    spec.shard = shard;
    spec.skip_ahead = skip_ahead;
    spec.rename_memo = rename_memo;
    return spec;
  }
};

/// Axis over resource-assignment schemes, labelled with the paper names.
[[nodiscard]] inline harness::Axis scheme_axis(
    const std::vector<policy::PolicyKind>& kinds,
    std::string name = "scheme") {
  harness::Axis axis{std::move(name), {}};
  axis.values.reserve(kinds.size());
  for (policy::PolicyKind kind : kinds) {
    axis.values.push_back(
        {std::string(policy::policy_kind_name(kind)),
         [kind](core::SimConfig& c) { c.policy = kind; }});
  }
  return axis;
}

/// Mirrors a finished table to --csv/--json/--golden-emit when given, with
/// uniform success/failure diagnostics. Every bench that renders a custom
/// TableDoc calls this instead of hand-rolling the write block. All writes
/// are attempted; any failure then exits(1) so callers (notably
/// tools/run_golden_suite.sh under set -e) never mistake a failed
/// regeneration for a refreshed artifact.
inline void emit_doc(const harness::TableDoc& doc, const BenchOptions& opt) {
  bool failed = false;
  const auto write = [&](const std::string& path, bool as_json,
                         const char* what) {
    if (path.empty()) return;
    if (as_json ? doc.write_json(path) : doc.write_csv(path)) {
      std::printf("%s written to %s\n", what, path.c_str());
    } else {
      std::fprintf(stderr, "error: failed to write %s %s\n", what,
                   path.c_str());
      failed = true;
    }
  };
  write(opt.csv_path, false, "CSV");
  write(opt.json_path, true, "JSON");
  write(opt.golden_path, true, "golden JSON");
  if (failed) std::exit(1);
}

/// Prints the per-category table (and mirrors it to --csv/--json when
/// given). First column = category, one column per series;
/// `series[s].second[i]` is the metric of workload i under series s.
inline void emit_category_table(
    const std::string& title, const std::vector<trace::WorkloadSpec>& suite,
    const std::vector<std::pair<std::string, std::vector<double>>>& series,
    const BenchOptions& opt, int precision = 3) {
  const harness::TableDoc doc =
      harness::category_table(suite, series, precision);

  std::printf(
      "%s\n(workloads: %zu%s, %llu warmup + %llu measured cycles/run, "
      "seed %llu)\n\n%s\n",
      title.c_str(), suite.size(), opt.full ? " [full suite]" : "",
      static_cast<unsigned long long>(opt.warmup),
      static_cast<unsigned long long>(opt.cycles),
      static_cast<unsigned long long>(opt.seed), doc.render_text().c_str());
  emit_doc(doc, opt);
}

}  // namespace clusmt::bench
