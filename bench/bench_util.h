// Shared plumbing for the figure-reproduction benches: common CLI flags,
// suite construction, grid running and table/CSV emission.
//
// Common flags (all benches):
//   --cycles N    simulated cycles per run (default per bench)
//   --full        run the full 120-workload suite (default: quick subset)
//   --per-type N  quick-suite workloads per (category, type)   [default 1]
//   --mixes N     quick-suite cross-category mixes             [default 4]
//   --seed S      master workload seed                          [default 1]
//   --csv PATH    also write the table as CSV
//   --jobs N      host threads (default: all cores)
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/cli.h"
#include "common/csv.h"
#include "common/table.h"
#include "harness/runner.h"
#include "trace/workload.h"

namespace clusmt::bench {

struct BenchOptions {
  Cycle cycles = 150000;
  Cycle warmup = 50000;
  bool full = false;
  int per_type = 1;
  int mixes = 8;
  std::uint64_t seed = 1;
  std::string csv_path;
  std::size_t jobs = 0;

  static BenchOptions parse(int argc, char** argv, Cycle default_cycles,
                            Cycle default_warmup = 50000) {
    const CliArgs args(argc, argv);
    BenchOptions opt;
    opt.cycles = static_cast<Cycle>(
        args.get_int("cycles", static_cast<std::int64_t>(default_cycles)));
    opt.warmup = static_cast<Cycle>(
        args.get_int("warmup", static_cast<std::int64_t>(default_warmup)));
    opt.full = args.get_bool("full", false);
    opt.per_type = static_cast<int>(args.get_int("per-type", 1));
    opt.mixes = static_cast<int>(args.get_int("mixes", 8));
    opt.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    opt.csv_path = args.get_string("csv", "");
    opt.jobs = static_cast<std::size_t>(args.get_int("jobs", 0));
    return opt;
  }

  [[nodiscard]] std::vector<trace::WorkloadSpec> suite() const {
    return full ? trace::build_full_suite(seed)
                : trace::build_quick_suite(seed, per_type, mixes);
  }
};

/// Per-category table: first column = category, one column per series.
/// `series[s].second[i]` is the metric of workload i under series s.
inline void emit_category_table(
    const std::string& title, const std::vector<trace::WorkloadSpec>& suite,
    const std::vector<std::pair<std::string, std::vector<double>>>& series,
    const BenchOptions& opt, int precision = 3) {
  std::vector<std::string> header = {"category"};
  for (const auto& [label, _] : series) header.push_back(label);

  TextTable table(header);
  CsvWriter csv(header);

  // Aggregate each series by category (display order + AVG).
  std::vector<std::vector<std::pair<std::string, double>>> per_series;
  per_series.reserve(series.size());
  for (const auto& [label, metric] : series) {
    per_series.push_back(harness::by_category(suite, metric));
  }
  const std::size_t rows = per_series.empty() ? 0 : per_series[0].size();
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<std::string> cells = {per_series[0][r].first};
    for (const auto& s : per_series) {
      cells.push_back(format_double(s[r].second, precision));
    }
    table.add_row(cells);
    csv.add_row(cells);
  }

  std::printf(
      "%s\n(workloads: %zu%s, %llu warmup + %llu measured cycles/run, "
      "seed %llu)\n\n%s\n",
      title.c_str(), suite.size(), opt.full ? " [full suite]" : "",
      static_cast<unsigned long long>(opt.warmup),
      static_cast<unsigned long long>(opt.cycles),
      static_cast<unsigned long long>(opt.seed), table.render().c_str());
  if (!opt.csv_path.empty()) {
    if (csv.write_file(opt.csv_path)) {
      std::printf("CSV written to %s\n", opt.csv_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write CSV %s\n", opt.csv_path.c_str());
    }
  }
}

/// Extracts a per-workload metric vector from run results.
template <typename Fn>
[[nodiscard]] std::vector<double> metric_of(
    const std::vector<harness::RunResult>& results, Fn&& fn) {
  std::vector<double> out;
  out.reserve(results.size());
  for (const auto& r : results) out.push_back(fn(r));
  return out;
}

/// Element-wise ratio helper for normalised (speedup) series.
[[nodiscard]] inline std::vector<double> ratio_of(
    const std::vector<double>& num, const std::vector<double>& den) {
  std::vector<double> out(num.size());
  for (std::size_t i = 0; i < num.size(); ++i) {
    out[i] = den[i] == 0.0 ? 0.0 : num[i] / den[i];
  }
  return out;
}

}  // namespace clusmt::bench
