// Ablation (beyond the paper): sensitivity of the best scheme (CSSP) to
// the inter-cluster interconnect — number of point-to-point links and their
// latency. The paper argues communication cost is largely hidden by
// multithreaded execution; this quantifies how far that holds.
#include "bench_util.h"
#include "harness/presets.h"

using namespace clusmt;

int main(int argc, char** argv) {
  const bench::BenchOptions opt =
      bench::BenchOptions::parse(argc, argv, /*default_cycles=*/120000);
  const auto suite = opt.suite();
  if (opt.handle_list(suite)) return 0;

  harness::SweepSpec spec = opt.sweep(suite);
  spec.base = harness::iq_study_config(32);
  spec.base.policy = policy::PolicyKind::kCssp;

  harness::Axis links_axis{"links", {}};
  for (int links : {1, 2, 4}) {
    links_axis.values.push_back(
        {std::to_string(links) + "links",
         [links](core::SimConfig& c) { c.num_links = links; }});
  }
  harness::Axis latency_axis{"latency", {}};
  for (int latency : {1, 2, 4}) {
    latency_axis.values.push_back(
        {std::to_string(latency) + "cyc",
         [latency](core::SimConfig& c) { c.link_latency = latency; }});
  }
  spec.axes = {links_axis, latency_axis};
  spec.label_fn = [](const std::vector<std::string>& parts) {
    return parts[0] + "/" + parts[1];
  };

  const harness::SweepResult res = harness::run_sweep(spec);

  // Normalise to the Table 1 interconnect (2 links, 1 cycle).
  const auto baseline = res.throughput(res.point_index("2links/1cyc"));
  std::vector<std::pair<std::string, std::vector<double>>> series;
  for (std::size_t p = 0; p < res.points.size(); ++p) {
    series.emplace_back(res.points[p].label,
                        harness::ratio_to_baseline(res.throughput(p),
                                                   baseline));
  }

  bench::emit_category_table(
      "Ablation — interconnect sensitivity (CSSP, vs 2 links @ 1 cycle)",
      suite, series, opt);
  return 0;
}
