// Ablation (beyond the paper): sensitivity of the best scheme (CSSP) to
// the inter-cluster interconnect — number of point-to-point links and their
// latency. The paper argues communication cost is largely hidden by
// multithreaded execution; this quantifies how far that holds.
#include "bench_util.h"
#include "harness/presets.h"

using namespace clusmt;

int main(int argc, char** argv) {
  const bench::BenchOptions opt =
      bench::BenchOptions::parse(argc, argv, /*default_cycles=*/120000);
  const auto suite = opt.suite();

  std::vector<double> baseline;
  std::vector<std::pair<std::string, std::vector<double>>> series;
  for (int links : {1, 2, 4}) {
    for (int latency : {1, 2, 4}) {
      core::SimConfig config = harness::iq_study_config(32);
      config.policy = policy::PolicyKind::kCssp;
      config.num_links = links;
      config.link_latency = latency;
      harness::Runner runner(config, opt.cycles, opt.warmup, opt.jobs);
      auto throughput = bench::metric_of(
          runner.run_suite(suite),
          [](const auto& r) { return r.throughput; });
      if (links == 2 && latency == 1) baseline = throughput;
      series.emplace_back(
          std::to_string(links) + "links/" + std::to_string(latency) + "cyc",
          throughput);
      std::fprintf(stderr, "done: %d links, %d cycles\n", links, latency);
    }
  }
  // Normalise to the Table 1 interconnect (2 links, 1 cycle).
  for (auto& [label, values] : series) {
    values = bench::ratio_of(values, baseline);
  }

  bench::emit_category_table(
      "Ablation — interconnect sensitivity (CSSP, vs 2 links @ 1 cycle)",
      suite, series, opt);
  return 0;
}
