// Extension experiment: four hardware threads on the two-cluster back-end.
// The paper's evaluation stops at two threads; this bench raises the
// context count to the machine maximum and compares every scheme family,
// including Flush++ [25] — the >2-thread enhancement the paper names but
// does not evaluate — against the paper's proposal (CDPRF) and Icount.
// Values are throughput speedups normalised per workload to Icount.
#include <cstdio>

#include "bench_util.h"
#include "harness/presets.h"
#include "policy/policy.h"

using namespace clusmt;

int main(int argc, char** argv) {
  const bench::BenchOptions opt =
      bench::BenchOptions::parse(argc, argv, /*default_cycles=*/120000);
  const auto suite = trace::build_smt4_suite(opt.seed, opt.mixes);

  const std::vector<policy::PolicyKind> schemes = {
      policy::PolicyKind::kIcount,        policy::PolicyKind::kStall,
      policy::PolicyKind::kFlushPlus,     policy::PolicyKind::kFlushPlusPlus,
      policy::PolicyKind::kCssp,          policy::PolicyKind::kDcra,
      policy::PolicyKind::kCdprf,
  };

  std::vector<double> baseline;
  std::vector<std::pair<std::string, std::vector<double>>> series;
  for (policy::PolicyKind kind : schemes) {
    core::SimConfig config = harness::smt4_baseline();
    config.policy = kind;
    harness::Runner runner(config, opt.cycles, opt.warmup, opt.jobs);
    const auto results = runner.run_suite(suite);
    auto throughput = bench::metric_of(
        results, [](const harness::RunResult& r) { return r.throughput; });
    if (kind == policy::PolicyKind::kIcount) baseline = throughput;
    series.emplace_back(std::string(policy::policy_kind_name(kind)),
                        bench::ratio_of(throughput, baseline));
    std::fprintf(stderr, "done: %s\n",
                 std::string(policy::policy_kind_name(kind)).c_str());
  }

  bench::emit_category_table(
      "Extension — SMT4: four threads on two clusters (throughput vs Icount)",
      suite, series, opt);
  return 0;
}
