// Extension experiment: four hardware threads on the two-cluster back-end.
// The paper's evaluation stops at two threads; this bench raises the
// context count to the machine maximum and compares every scheme family,
// including Flush++ [25] — the >2-thread enhancement the paper names but
// does not evaluate — against the paper's proposal (CDPRF) and Icount.
// Values are throughput speedups normalised per workload to Icount.
#include <cstdio>

#include "bench_util.h"
#include "harness/presets.h"
#include "policy/policy.h"

using namespace clusmt;

int main(int argc, char** argv) {
  const bench::BenchOptions opt =
      bench::BenchOptions::parse(argc, argv, /*default_cycles=*/120000);
  auto suite = trace::build_smt4_suite(opt.seed, opt.mixes);
  opt.apply_filter(suite);
  if (opt.handle_list(suite)) return 0;

  const std::vector<policy::PolicyKind> schemes = {
      policy::PolicyKind::kIcount,        policy::PolicyKind::kStall,
      policy::PolicyKind::kFlushPlus,     policy::PolicyKind::kFlushPlusPlus,
      policy::PolicyKind::kCssp,          policy::PolicyKind::kDcra,
      policy::PolicyKind::kCdprf,
  };

  harness::SweepSpec spec = opt.sweep(suite);
  spec.base = harness::smt4_baseline();
  spec.axes = {bench::scheme_axis(schemes)};

  const harness::SweepResult res = harness::run_sweep(spec);
  const auto baseline = res.throughput(res.point_index("Icount"));

  std::vector<std::pair<std::string, std::vector<double>>> series;
  for (std::size_t p = 0; p < res.points.size(); ++p) {
    series.emplace_back(res.points[p].label,
                        harness::ratio_to_baseline(res.throughput(p),
                                                   baseline));
  }

  bench::emit_category_table(
      "Extension — SMT4: four threads on two clusters (throughput vs Icount)",
      suite, series, opt);
  return 0;
}
