// Figure 3: inter-cluster communication — copy µops per retired µop for
// each issue-queue scheme (32-entry IQs, unbounded RF/ROB).
#include "bench_util.h"
#include "harness/presets.h"

using namespace clusmt;

int main(int argc, char** argv) {
  const bench::BenchOptions opt =
      bench::BenchOptions::parse(argc, argv, /*default_cycles=*/120000);
  const auto suite = opt.suite();

  const std::vector<policy::PolicyKind> schemes = {
      policy::PolicyKind::kIcount,       policy::PolicyKind::kStall,
      policy::PolicyKind::kFlushPlus,    policy::PolicyKind::kCisp,
      policy::PolicyKind::kCssp,         policy::PolicyKind::kCspsp,
      policy::PolicyKind::kPrivateClusters,
  };

  std::vector<std::pair<std::string, std::vector<double>>> series;
  for (policy::PolicyKind kind : schemes) {
    core::SimConfig config = harness::iq_study_config(32);
    config.policy = kind;
    harness::Runner runner(config, opt.cycles, opt.warmup, opt.jobs);
    const auto results = runner.run_suite(suite);
    series.emplace_back(std::string(policy::policy_kind_name(kind)),
                        bench::metric_of(results, [](const auto& r) {
                          return r.stats.copies_per_retired();
                        }));
    std::fprintf(stderr, "done: %s\n",
                 std::string(policy::policy_kind_name(kind)).c_str());
  }

  bench::emit_category_table(
      "Figure 3 — Inter-cluster communication (#copies / #retired)", suite,
      series, opt);
  return 0;
}
