// Extension experiment: the future-work schemes the paper names in §2/§6 —
// DCRA [30], hill-climbing [32] and unready-count front-end gating [20] —
// adapted to the clustered machine (policy/adaptive.h), beside the paper's
// own Icount baseline, best static scheme (CSSP) and proposal (CDPRF).
// Two tables: throughput speedup vs Icount, and the Figure-10 fairness
// speedup vs Icount.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "harness/presets.h"
#include "policy/policy.h"

using namespace clusmt;

int main(int argc, char** argv) {
  const bench::BenchOptions opt =
      bench::BenchOptions::parse(argc, argv, /*default_cycles=*/120000);
  const auto suite = opt.suite();

  const std::vector<policy::PolicyKind> schemes = {
      policy::PolicyKind::kIcount,    policy::PolicyKind::kCssp,
      policy::PolicyKind::kCdprf,     policy::PolicyKind::kDcra,
      policy::PolicyKind::kHillClimb, policy::PolicyKind::kUnreadyGate,
  };

  std::vector<double> throughput_base;
  std::vector<double> fairness_base;
  std::vector<std::pair<std::string, std::vector<double>>> throughput_series;
  std::vector<std::pair<std::string, std::vector<double>>> fairness_series;

  for (policy::PolicyKind kind : schemes) {
    core::SimConfig config = harness::paper_baseline();
    config.policy = kind;
    // Epochs must fit the measured window a few times over.
    config.policy_config.hillclimb_epoch = 4096;
    harness::Runner runner(config, opt.cycles, opt.warmup, opt.jobs);
    const auto results = runner.run_suite_with_fairness(suite);
    auto throughput = bench::metric_of(
        results, [](const harness::RunResult& r) { return r.throughput; });
    auto fairness = bench::metric_of(
        results, [](const harness::RunResult& r) { return r.fairness; });
    if (kind == policy::PolicyKind::kIcount) {
      throughput_base = throughput;
      fairness_base = fairness;
    }
    const std::string label{policy::policy_kind_name(kind)};
    throughput_series.emplace_back(label,
                                   bench::ratio_of(throughput,
                                                   throughput_base));
    fairness_series.emplace_back(label,
                                 bench::ratio_of(fairness, fairness_base));
    std::fprintf(stderr, "done: %s\n", label.c_str());
  }

  bench::BenchOptions fairness_opt = opt;  // avoid double CSV writes
  if (!opt.csv_path.empty()) fairness_opt.csv_path = opt.csv_path + ".fair";

  bench::emit_category_table(
      "Extension — future-work schemes (throughput vs Icount)", suite,
      throughput_series, opt);
  std::printf("\n");
  bench::emit_category_table(
      "Extension — future-work schemes (fairness speedup vs Icount)", suite,
      fairness_series, fairness_opt);
  return 0;
}
