// Extension experiment: the future-work schemes the paper names in §2/§6 —
// DCRA [30], hill-climbing [32] and unready-count front-end gating [20] —
// adapted to the clustered machine (policy/adaptive.h), beside the paper's
// own Icount baseline, best static scheme (CSSP) and proposal (CDPRF).
// Two tables: throughput speedup vs Icount, and the Figure-10 fairness
// speedup vs Icount.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "harness/presets.h"
#include "policy/policy.h"

using namespace clusmt;

int main(int argc, char** argv) {
  const bench::BenchOptions opt =
      bench::BenchOptions::parse(argc, argv, /*default_cycles=*/120000);
  const auto suite = opt.suite();
  if (opt.handle_list(suite)) return 0;

  const std::vector<policy::PolicyKind> schemes = {
      policy::PolicyKind::kIcount,    policy::PolicyKind::kCssp,
      policy::PolicyKind::kCdprf,     policy::PolicyKind::kDcra,
      policy::PolicyKind::kHillClimb, policy::PolicyKind::kUnreadyGate,
  };

  harness::SweepSpec spec = opt.sweep(suite);
  spec.base = harness::paper_baseline();
  // Epochs must fit the measured window a few times over.
  spec.base.policy_config.hillclimb_epoch = 4096;
  spec.axes = {bench::scheme_axis(schemes)};
  spec.with_fairness = true;

  const harness::SweepResult res = harness::run_sweep(spec);
  const auto throughput_base = res.throughput(res.point_index("Icount"));
  const auto fairness_base = res.fairness(res.point_index("Icount"));

  std::vector<std::pair<std::string, std::vector<double>>> throughput_series;
  std::vector<std::pair<std::string, std::vector<double>>> fairness_series;
  for (std::size_t p = 0; p < res.points.size(); ++p) {
    throughput_series.emplace_back(
        res.points[p].label,
        harness::ratio_to_baseline(res.throughput(p), throughput_base));
    fairness_series.emplace_back(
        res.points[p].label,
        harness::ratio_to_baseline(res.fairness(p), fairness_base));
  }

  bench::BenchOptions fairness_opt = opt;  // avoid double CSV writes
  if (!opt.csv_path.empty()) fairness_opt.csv_path = opt.csv_path + ".fair";
  if (!opt.json_path.empty()) {
    fairness_opt.json_path = opt.json_path + ".fair";
  }

  bench::emit_category_table(
      "Extension — future-work schemes (throughput vs Icount)", suite,
      throughput_series, opt);
  std::printf("\n");
  bench::emit_category_table(
      "Extension — future-work schemes (fairness speedup vs Icount)", suite,
      fairness_series, fairness_opt);
  return 0;
}
