// Scheme shootout: run one workload under *every* resource-assignment
// scheme of the paper and print a detailed comparison — the experiment an
// SMT architect would run first when evaluating a clustered design.
// Declared as a one-workload sweep: the scheme axis × a single-element
// suite, with fairness baselines shared through the run cache.
//
//   ./examples/scheme_shootout [--category ISPEC00] [--type mix]
//                              [--cycles N] [--warmup N] [--seed S]
//
// Type is "ilp", "mem" or "mix" (one ILP trace + one MEM trace).
#include <cstdio>
#include <string>

#include "common/cli.h"
#include "common/table.h"
#include "harness/presets.h"
#include "harness/sweep.h"
#include "trace/workload.h"

using namespace clusmt;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string category = args.get_string("category", "ISPEC00");
  const std::string type = args.get_string("type", "mix");
  const Cycle cycles = static_cast<Cycle>(args.get_int("cycles", 150000));
  const Cycle warmup = static_cast<Cycle>(args.get_int("warmup", 60000));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1));

  // Pick the first workload of the requested category/type from Table 2.
  const auto suite = trace::build_full_suite(seed);
  const trace::WorkloadSpec* chosen = nullptr;
  for (const auto& w : suite) {
    if (w.category == category && w.type == type) {
      chosen = &w;
      break;
    }
  }
  if (chosen == nullptr) {
    std::fprintf(stderr,
                 "no workload for category '%s' type '%s'.\n"
                 "categories: DH FSPEC00 ISPEC00 ISPEC-FSPEC multimedia "
                 "office productivity server miscellanea workstation mixes; "
                 "types: ilp mem mix\n",
                 category.c_str(), type.c_str());
    return 1;
  }
  std::printf("Workload %s: [%s] + [%s]\n\n", chosen->name.c_str(),
              chosen->threads[0].id().c_str(),
              chosen->threads[1].id().c_str());

  harness::SweepSpec spec;
  spec.suite = {*chosen};
  spec.cycles = cycles;
  spec.warmup = warmup;
  spec.with_fairness = true;
  spec.progress = false;
  for (policy::PolicyKind kind : policy::all_policy_kinds()) {
    core::SimConfig config = harness::paper_baseline();
    config.policy = kind;
    config.policy_config.cdprf_interval = 32768;  // scaled to run length
    spec.points.push_back(
        {std::string(policy::policy_kind_name(kind)), config});
  }
  const harness::SweepResult res = harness::run_sweep(spec);

  TextTable table({"scheme", "throughput", "IPC[0]", "IPC[1]", "fairness",
                   "copies/ret", "IQstall/ret", "flushes", "squashed"});
  double icount_throughput = 0.0;
  double icount_fairness = 0.0;
  for (std::size_t p = 0; p < res.points.size(); ++p) {
    const harness::RunResult& r = res.cells[p][0];
    if (res.points[p].config.policy == policy::PolicyKind::kIcount) {
      icount_throughput = r.throughput;
      icount_fairness = r.fairness;
    }
    table.new_row()
        .add_cell(res.points[p].label)
        .add_cell(r.throughput)
        .add_cell(r.ipc[0])
        .add_cell(r.ipc[1])
        .add_cell(r.fairness)
        .add_cell(r.stats.copies_per_retired())
        .add_cell(r.stats.iq_stalls_per_retired())
        .add_cell(r.stats.policy_flushes)
        .add_cell(r.stats.squashed_uops);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Icount reference: throughput %.3f uops/cycle, fairness %.3f\n",
      icount_throughput, icount_fairness);
  return 0;
}
