// Quickstart: build a two-thread workload, run it under two resource
// assignment schemes, and print the headline metrics.
//
//   ./examples/quickstart [--cycles N] [--policy NAME] [--seed S]
//
// This walks the whole public API surface: trace profiles -> workload
// specs -> SimConfig -> Simulator -> SimStats.
#include <cstdio>
#include <string>

#include "common/cli.h"
#include "common/table.h"
#include "core/metrics.h"
#include "core/simulator.h"
#include "harness/presets.h"
#include "harness/runner.h"
#include "trace/workload.h"

using namespace clusmt;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const Cycle cycles = static_cast<Cycle>(args.get_int("cycles", 100000));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  // 1. Pick two traces from the Table 2 pool: a branchy integer program and
  //    a memory-bound floating-point one.
  trace::TracePool pool(seed);
  trace::WorkloadSpec workload;
  workload.category = "demo";
  workload.type = "mix";
  workload.name = "quickstart.mix";
  workload.threads = {
      pool.get(trace::Category::kISpec00, trace::TraceKind::kIlp, 0),
      pool.get(trace::Category::kFSpec00, trace::TraceKind::kMem, 0),
  };

  // 2. Configure the machine (paper Table 1 baseline) and choose schemes.
  const std::string requested = args.get_string("policy", "");
  std::vector<policy::PolicyKind> schemes;
  if (requested.empty()) {
    schemes = {policy::PolicyKind::kIcount, policy::PolicyKind::kCdprf};
  } else {
    const auto kind = policy::parse_policy_kind(requested);
    if (!kind) {
      std::fprintf(stderr, "unknown policy '%s'\n", requested.c_str());
      return 1;
    }
    schemes = {*kind};
  }

  TextTable table({"scheme", "throughput (uops/cyc)", "IPC[t0]", "IPC[t1]",
                   "copies/retired", "IQ stalls/retired", "fairness"});
  for (policy::PolicyKind kind : schemes) {
    core::SimConfig config = harness::paper_baseline();
    config.policy = kind;

    harness::Runner runner(config, cycles);
    const harness::RunResult result = runner.run_workload(workload);
    const double fair = runner.fairness_of(result, workload);

    table.new_row()
        .add_cell(std::string(policy::policy_kind_name(kind)))
        .add_cell(result.throughput)
        .add_cell(result.ipc[0])
        .add_cell(result.ipc[1])
        .add_cell(result.stats.copies_per_retired())
        .add_cell(result.stats.iq_stalls_per_retired())
        .add_cell(fair);
  }
  std::printf("clusmt quickstart — %llu cycles per run\n\n%s\n",
              static_cast<unsigned long long>(cycles),
              table.render().c_str());
  std::puts("Tip: --policy CSSP (or Stall, Flush+, CISP, CSPSP, PC, CSSPRF,");
  std::puts("CISPRF, CDPRF — or the extensions Flush++, DCRA, HillClimb,");
  std::puts("UnreadyGate) selects a single scheme; --cycles N scales runs.");
  return 0;
}
