// trace_tool: record, inspect and verify binary trace files — the capture
// side of the trace-driven methodology (see src/trace/trace_io.h).
//
//   ./examples/trace_tool record <path> [--category C] [--kind ilp|mem]
//                                 [--variant V] [--count N] [--seed S]
//   ./examples/trace_tool info   <path>
//   ./examples/trace_tool replay <path> [--cycles N] [--policy NAME]
//
// `record` materialises a synthetic trace to disk; `info` prints the
// header plus an instruction-mix histogram; `replay` attaches the file to
// a single-thread simulator and reports IPC — demonstrating that archived
// streams reproduce live-generator results.
#include <cstdio>
#include <stdexcept>
#include <string>

#include "common/cli.h"
#include "common/table.h"
#include "core/simulator.h"
#include "harness/presets.h"
#include "trace/profile.h"
#include "trace/trace_io.h"
#include "trace/workload.h"

using namespace clusmt;

namespace {

trace::Category parse_category(const std::string& name) {
  for (int c = 0; c < trace::kNumPlainCategories; ++c) {
    const auto cat = static_cast<trace::Category>(c);
    if (trace::category_name(cat) == name) return cat;
  }
  throw std::runtime_error("unknown category: " + name);
}

int cmd_record(const CliArgs& args, const std::string& path) {
  const auto category = parse_category(args.get_string("category", "ISPEC00"));
  const std::string kind_name = args.get_string("kind", "ilp");
  if (kind_name != "ilp" && kind_name != "mem") {
    throw std::runtime_error("--kind must be ilp or mem");
  }
  const auto kind =
      kind_name == "ilp" ? trace::TraceKind::kIlp : trace::TraceKind::kMem;
  const int variant = static_cast<int>(args.get_int("variant", 0));
  const auto count = static_cast<std::size_t>(args.get_int("count", 200000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  trace::TracePool pool(seed);
  const trace::TraceSpec& spec = pool.get(category, kind, variant);
  trace::save_recorded_trace(path, spec, count);
  std::printf("recorded %zu µops of %s to %s\n", count, spec.id().c_str(),
              path.c_str());
  return 0;
}

int cmd_info(const std::string& path) {
  const trace::LoadedTrace loaded = trace::load_trace(path);
  std::printf("trace   %s\nname    %s\nseed    %llu\nµops    %zu\n\n",
              path.c_str(), loaded.name.c_str(),
              static_cast<unsigned long long>(loaded.seed),
              loaded.uops.size());

  std::size_t per_class[trace::kNumUopClasses] = {};
  std::size_t taken = 0;
  for (const auto& op : loaded.uops) {
    ++per_class[static_cast<int>(op.cls)];
    if (op.is_branch() && op.taken) ++taken;
  }
  TextTable table({"class", "count", "share"});
  for (int c = 0; c < trace::kNumUopClasses; ++c) {
    if (per_class[c] == 0) continue;
    table.new_row()
        .add_cell(std::string(
            trace::uop_class_name(static_cast<trace::UopClass>(c))))
        .add_cell(static_cast<double>(per_class[c]), 0)
        .add_cell(loaded.uops.empty()
                      ? 0.0
                      : static_cast<double>(per_class[c]) /
                            static_cast<double>(loaded.uops.size()));
  }
  std::printf("%s\n", table.render().c_str());
  const std::size_t branches =
      per_class[static_cast<int>(trace::UopClass::kBranch)];
  if (branches > 0) {
    std::printf("taken-branch ratio: %.3f\n",
                static_cast<double>(taken) / static_cast<double>(branches));
  }
  return 0;
}

int cmd_replay(const CliArgs& args, const std::string& path) {
  const trace::LoadedTrace loaded = trace::load_trace(path);
  const Cycle cycles = static_cast<Cycle>(args.get_int("cycles", 50000));
  const std::string policy_name = args.get_string("policy", "Icount");
  const auto kind = policy::parse_policy_kind(policy_name);
  if (!kind) {
    std::fprintf(stderr, "unknown policy '%s'\n", policy_name.c_str());
    return 1;
  }

  core::SimConfig config = harness::paper_baseline();
  config.num_threads = 1;
  config.policy = *kind;
  core::Simulator sim(config);
  // Replayed files carry no profile; wrong-path synthesis falls back to a
  // default profile keyed by the stored seed.
  trace::TraceProfile profile;
  profile.name = loaded.name;
  sim.attach_thread(0, loaded.make_source(), &profile, loaded.seed);
  sim.run(cycles);

  std::printf("replayed %s for %llu cycles under %s\n", path.c_str(),
              static_cast<unsigned long long>(cycles), policy_name.c_str());
  std::printf("  IPC            %.3f\n", sim.stats().ipc(0));
  std::printf("  L2 load misses %llu\n",
              static_cast<unsigned long long>(sim.stats().load_l2_misses));
  std::printf("  mispredicts    %llu\n",
              static_cast<unsigned long long>(
                  sim.stats().mispredicts_resolved));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s record|info|replay <path> [options]\n", argv[0]);
    return 1;
  }
  const std::string command = argv[1];
  const std::string path = argv[2];
  const CliArgs args(argc - 2, argv + 2);
  try {
    if (command == "record") return cmd_record(args, path);
    if (command == "info") return cmd_info(path);
    if (command == "replay") return cmd_replay(args, path);
    std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
