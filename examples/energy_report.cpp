// Energy report: run one workload under several schemes and print the
// full per-component energy breakdown (core/energy.h) — front end, issue
// queues, register files, execution, memory, interconnect, squash waste
// and static/clock — plus the derived efficiency metrics.
//
//   ./examples/energy_report [--cycles N] [--seed S] [--policy NAME]
//
// The component split shows *why* schemes differ: Flush+ pays in the
// "wasted" column (squash recovery), CSSP in "interconnect" (copies),
// PC saves both but commits less work per cycle.
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/table.h"
#include "core/energy.h"
#include "core/simulator.h"
#include "harness/presets.h"
#include "trace/workload.h"

using namespace clusmt;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const Cycle cycles = static_cast<Cycle>(args.get_int("cycles", 120000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  std::vector<policy::PolicyKind> schemes = {
      policy::PolicyKind::kIcount, policy::PolicyKind::kFlushPlus,
      policy::PolicyKind::kCssp, policy::PolicyKind::kPrivateClusters,
      policy::PolicyKind::kCdprf,
  };
  const std::string requested = args.get_string("policy", "");
  if (!requested.empty()) {
    const auto kind = policy::parse_policy_kind(requested);
    if (!kind) {
      std::fprintf(stderr, "unknown policy '%s'\n", requested.c_str());
      return 1;
    }
    schemes = {*kind};
  }

  trace::TracePool pool(seed);
  trace::WorkloadSpec workload;
  workload.name = "energy.mix";
  workload.threads = {
      pool.get(trace::Category::kProductivity, trace::TraceKind::kIlp, 0),
      pool.get(trace::Category::kServer, trace::TraceKind::kMem, 0),
  };

  TextTable table({"scheme", "front-end", "IQ", "regfile", "execute",
                   "memory", "links", "wasted", "static", "pJ/µop",
                   "EDP(rel)"});
  double edp_base = 0.0;
  for (policy::PolicyKind kind : schemes) {
    core::SimConfig config = harness::paper_baseline();
    config.policy = kind;
    core::Simulator sim(config);
    sim.attach_thread(0, workload.threads[0]);
    sim.attach_thread(1, workload.threads[1]);
    sim.run(cycles / 4);  // warmup
    sim.reset_stats();
    sim.run(cycles);

    const core::EnergyBreakdown e =
        core::estimate_energy(sim.stats(), config);
    const double total = e.total();
    if (edp_base == 0.0) edp_base = e.edp(sim.stats());
    auto share = [&](double component) {
      return total == 0.0 ? 0.0 : 100.0 * component / total;
    };
    table.new_row()
        .add_cell(std::string(policy::policy_kind_name(kind)))
        .add_cell(share(e.front_end), 1)
        .add_cell(share(e.issue_queue), 1)
        .add_cell(share(e.register_file), 1)
        .add_cell(share(e.execution), 1)
        .add_cell(share(e.memory), 1)
        .add_cell(share(e.interconnect), 1)
        .add_cell(share(e.wasted), 1)
        .add_cell(share(e.static_clock), 1)
        .add_cell(e.per_committed_uop(sim.stats()), 1)
        .add_cell(e.edp(sim.stats()) / edp_base);
  }

  std::printf("energy breakdown, ILP + MEM workload, %llu measured cycles\n"
              "(component columns are %% of that scheme's total energy;\n"
              " pJ/µop and EDP are the efficiency metrics — lower is "
              "better)\n\n%s\n",
              static_cast<unsigned long long>(cycles),
              table.render().c_str());
  return 0;
}
