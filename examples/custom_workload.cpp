// Custom workloads: the trace substrate is a public API — this example
// builds a bespoke behavioural profile (a pointer-chasing database-like
// thread) from scratch, pairs it with a hand-written µop kernel replayed
// from a vector, and measures how the CDPRF scheme shares the machine
// between them.
//
//   ./examples/custom_workload [--cycles N]
#include <cstdio>
#include <memory>
#include <vector>

#include "common/cli.h"
#include "common/table.h"
#include "core/simulator.h"
#include "harness/presets.h"
#include "trace/synthetic.h"
#include "trace/trace_source.h"

using namespace clusmt;

namespace {

/// A database-ish profile: integer heavy, pointer chasing over a working
/// set far beyond L2, hard-to-predict branches.
trace::TraceProfile make_database_profile() {
  trace::TraceProfile p;
  p.name = "custom.database";
  p.frac_int_alu = 0.40;
  p.frac_int_mul = 0.01;
  p.frac_fp_add = 0.01;
  p.frac_fp_mul = 0.01;
  p.frac_simd = 0.01;
  p.frac_load = 0.38;
  p.frac_store = 0.18;
  p.avg_block_len = 5.0;
  p.num_blocks = 200;
  p.hard_branch_fraction = 0.10;
  p.indirect_fraction = 0.02;
  p.dep_geo_p = 0.12;
  p.footprint_bytes = 16 * 1024 * 1024;
  p.stream_fraction = 0.30;
  p.stream_stride = 64;
  p.chase_fraction = 0.25;
  p.hot_bytes = 2 * 1024 * 1024;
  // Renormalise the mix exactly.
  const double sum = p.mix_sum();
  p.frac_int_alu /= sum;
  p.frac_int_mul /= sum;
  p.frac_fp_add /= sum;
  p.frac_fp_mul /= sum;
  p.frac_simd /= sum;
  p.frac_load /= sum;
  p.frac_store /= sum;
  return p;
}

/// A hand-written FP kernel: 4 independent multiply-add chains over a small
/// array, replayed as a loop — the kind of µop sequence a JIT or library
/// kernel would pin to the machine.
std::shared_ptr<trace::VectorTrace> make_fp_kernel() {
  using trace::MicroOp;
  using trace::UopClass;
  std::vector<MicroOp> ops;
  std::uint64_t pc = 0x800000;
  auto push = [&](MicroOp op) {
    op.pc = pc;
    pc += 4;
    ops.push_back(op);
  };
  for (int lane = 0; lane < 4; ++lane) {
    const auto acc = static_cast<std::int16_t>(kNumIntArchRegs + lane);
    const auto tmp = static_cast<std::int16_t>(kNumIntArchRegs + 8 + lane);
    MicroOp ld;  // load next operand (streaming, L1 resident)
    ld.cls = UopClass::kLoad;
    ld.dst = tmp;
    ld.src0 = static_cast<std::int16_t>(lane);
    ld.mem_addr = 0x20000 + static_cast<std::uint64_t>(lane) * 64;
    push(ld);
    MicroOp mul;
    mul.cls = UopClass::kFpMul;
    mul.dst = acc;
    mul.src0 = acc;
    mul.src1 = tmp;
    push(mul);
    MicroOp add;
    add.cls = UopClass::kFpAdd;
    add.dst = acc;
    add.src0 = acc;
    add.src1 = tmp;
    push(add);
  }
  MicroOp br;  // loop back
  br.cls = UopClass::kBranch;
  br.taken = true;
  br.target = 0x800000;
  br.fallthrough = pc + 4;
  br.src0 = 0;
  br.pc = pc;
  ops.push_back(br);
  return std::make_shared<trace::VectorTrace>("custom.fp_kernel",
                                              std::move(ops));
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const Cycle cycles = static_cast<Cycle>(args.get_int("cycles", 150000));

  const trace::TraceProfile database = make_database_profile();
  const std::string err = database.validate();
  if (!err.empty()) {
    std::fprintf(stderr, "profile invalid: %s\n", err.c_str());
    return 1;
  }

  TextTable table({"scheme", "throughput", "IPC[db]", "IPC[kernel]",
                   "copies/ret", "L2 miss (loads)"});
  for (policy::PolicyKind kind :
       {policy::PolicyKind::kIcount, policy::PolicyKind::kCssp,
        policy::PolicyKind::kCdprf}) {
    core::SimConfig config = harness::paper_baseline();
    config.policy = kind;
    config.policy_config.cdprf_interval = 32768;
    core::Simulator sim(config);
    // Thread 0: synthetic database trace built from the custom profile.
    sim.attach_thread(
        0, std::make_shared<trace::SyntheticTrace>(database, /*seed=*/7),
        &database, 7);
    // Thread 1: the hand-written kernel (no wrong-path profile needed: its
    // loop branch is perfectly predictable).
    sim.attach_thread(1, make_fp_kernel(), &database, 8);
    sim.run(cycles / 2);
    sim.reset_stats();
    sim.run(cycles);

    table.new_row()
        .add_cell(std::string(policy::policy_kind_name(kind)))
        .add_cell(sim.stats().throughput())
        .add_cell(sim.stats().ipc(0))
        .add_cell(sim.stats().ipc(1))
        .add_cell(sim.stats().copies_per_retired())
        .add_cell(sim.stats().load_l2_misses);
  }
  std::printf(
      "Custom workload: pointer-chasing database thread + FP kernel\n\n%s\n",
      table.render().c_str());
  return 0;
}
