// Tour of the future-work schemes (policy/adaptive.h): runs an asymmetric
// two-thread workload under the paper's proposal (CDPRF) and the three
// adapted monolithic-SMT schemes, then shows Flush++ switching from Stall
// semantics at two threads to Flush+ semantics at four.
//
//   ./examples/adaptive_policies [--cycles N] [--seed S]
//
// Demonstrated API surface: policy introspection (HillClimbPolicy shares,
// FlushPlusPlusPolicy::stall_mode), SimStats flush/copy counters and the
// SMT4 preset.
#include <cstdio>
#include <vector>

#include "common/cli.h"
#include "common/table.h"
#include "core/simulator.h"
#include "harness/presets.h"
#include "harness/runner.h"
#include "policy/adaptive.h"
#include "trace/workload.h"

using namespace clusmt;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const Cycle cycles = static_cast<Cycle>(args.get_int("cycles", 150000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  trace::TracePool pool(seed);

  // Part 1 — an asymmetric pairing (compute-bound integer program beside a
  // memory-bound FP program) is where adaptive partitioning matters: the
  // fixed half/half split of the static schemes fits neither thread.
  trace::WorkloadSpec workload;
  workload.category = "demo";
  workload.type = "mix";
  workload.name = "adaptive.mix";
  workload.threads = {
      pool.get(trace::Category::kISpec00, trace::TraceKind::kIlp, 0),
      pool.get(trace::Category::kFSpec00, trace::TraceKind::kMem, 0),
  };

  const std::vector<policy::PolicyKind> schemes = {
      policy::PolicyKind::kIcount,    policy::PolicyKind::kCssp,
      policy::PolicyKind::kCdprf,     policy::PolicyKind::kDcra,
      policy::PolicyKind::kHillClimb, policy::PolicyKind::kUnreadyGate,
  };

  TextTable table({"scheme", "throughput", "IPC[t0]", "IPC[t1]",
                   "copies/ret", "fairness"});
  for (policy::PolicyKind kind : schemes) {
    core::SimConfig config = harness::paper_baseline();
    config.policy = kind;
    config.policy_config.hillclimb_epoch = 4096;  // several rounds per run

    harness::Runner runner(config, cycles);
    const harness::RunResult result = runner.run_workload(workload);
    table.new_row()
        .add_cell(std::string(policy::policy_kind_name(kind)))
        .add_cell(result.throughput)
        .add_cell(result.ipc[0])
        .add_cell(result.ipc[1])
        .add_cell(result.stats.copies_per_retired())
        .add_cell(runner.fairness_of(result, workload));
  }
  std::printf("adaptive schemes on an asymmetric 2-thread mix "
              "(%llu cycles)\n\n%s\n",
              static_cast<unsigned long long>(cycles),
              table.render().c_str());

  // Part 2 — watch the hill climber learn: rerun with direct Simulator
  // access and report the shares it settled on.
  {
    core::SimConfig config = harness::paper_baseline();
    config.policy = policy::PolicyKind::kHillClimb;
    config.policy_config.hillclimb_epoch = 4096;
    core::Simulator sim(config);
    sim.attach_thread(0, workload.threads[0]);
    sim.attach_thread(1, workload.threads[1]);
    sim.run(cycles);
    const auto& climber =
        dynamic_cast<const policy::HillClimbPolicy&>(sim.policy());
    std::printf("hill climber after %llu rounds: share[t0]=%.3f "
                "share[t1]=%.3f\n\n",
                static_cast<unsigned long long>(climber.rounds_completed()),
                climber.share(0), climber.share(1));
  }

  // Part 3 — Flush++ hybrid behaviour. The same memory-bound traces run
  // under two and four contexts; policy_flushes stays zero in Stall mode.
  TextTable fpp({"threads", "mode", "policy flushes", "throughput"});
  for (int threads : {2, 4}) {
    core::SimConfig config =
        threads == 2 ? harness::paper_baseline() : harness::smt4_baseline();
    config.policy = policy::PolicyKind::kFlushPlusPlus;
    core::Simulator sim(config);
    for (int t = 0; t < threads; ++t) {
      sim.attach_thread(
          t, pool.get(trace::Category::kServer, trace::TraceKind::kMem,
                      t % trace::TracePool::kVariantsPerKind));
    }
    sim.run(cycles);
    const auto& policy =
        dynamic_cast<const policy::FlushPlusPlusPolicy&>(sim.policy());
    fpp.new_row()
        .add_cell(static_cast<std::uint64_t>(threads))
        .add_cell(std::string(policy.stall_mode() ? "Stall" : "Flush+"))
        .add_cell(sim.stats().policy_flushes)
        .add_cell(sim.stats().throughput());
  }
  std::printf("Flush++ hybrid on memory-bound server traces\n\n%s\n",
              fpp.render().c_str());
  return 0;
}
