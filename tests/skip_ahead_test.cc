// Differential oracles for the two model-level fast paths of
// SimConfig::{skip_ahead, rename_memo}:
//
//  * Quiescent-cycle skip-ahead — when a cycle provably changes nothing
//    but monotone stall counters, the core jumps `now` to the next event
//    horizon and replicates the per-cycle deltas in closed form. Skipping
//    must leave SimStats bit-identical to simulating every cycle.
//  * Rename-plan memoization — replica presence masks plus a per-thread
//    plan-shape cache replace the per-µop copy-plan rederivation. A pure
//    cache: every rename decision must be bit-identical.
//
// Both default ON; the OFF build is the oracle. The matrix covers every
// resource-assignment scheme crossed with machine shape (2T bounded /
// unbounded RF, SMT4), workload flavour (mem-heavy, ilp, squash-heavy),
// heterogeneous cluster grids, and a main-memory latency past the timing
// wheel's span so skips must consult the overflow heap across multiple
// wheel wraps.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/simulator.h"
#include "harness/presets.h"
#include "policy/policy.h"
#include "trace/workload.h"

namespace clusmt::core {
namespace {

/// Field-by-field SimStats equality with a readable failure message.
void expect_stats_equal(const SimStats& a, const SimStats& b,
                        const std::string& label) {
#define CLUSMT_EXPECT_FIELD(field) \
  EXPECT_EQ(a.field, b.field) << label << ": SimStats::" #field " diverged"
  CLUSMT_EXPECT_FIELD(cycles);
  for (int t = 0; t < kMaxThreads; ++t) CLUSMT_EXPECT_FIELD(committed[t]);
  CLUSMT_EXPECT_FIELD(committed_copies);
  CLUSMT_EXPECT_FIELD(committed_branches);
  CLUSMT_EXPECT_FIELD(committed_loads);
  CLUSMT_EXPECT_FIELD(committed_stores);
  CLUSMT_EXPECT_FIELD(renamed_uops);
  CLUSMT_EXPECT_FIELD(copies_created);
  CLUSMT_EXPECT_FIELD(rename_cycles);
  CLUSMT_EXPECT_FIELD(rename_blocked_cycles);
  CLUSMT_EXPECT_FIELD(rename_block_iq);
  CLUSMT_EXPECT_FIELD(rename_block_rf);
  CLUSMT_EXPECT_FIELD(rename_block_rob);
  CLUSMT_EXPECT_FIELD(rename_block_mob);
  CLUSMT_EXPECT_FIELD(iq_pref_stall_events);
  CLUSMT_EXPECT_FIELD(non_preferred_dispatches);
  CLUSMT_EXPECT_FIELD(issued_uops);
  CLUSMT_EXPECT_FIELD(cycles_with_issue);
  for (int i = 0; i < 2; ++i) {
    for (int k = 0; k < trace::kNumPortClasses; ++k) {
      CLUSMT_EXPECT_FIELD(imbalance_events[i][k]);
    }
  }
  CLUSMT_EXPECT_FIELD(squashed_uops);
  CLUSMT_EXPECT_FIELD(branches_resolved);
  CLUSMT_EXPECT_FIELD(mispredicts_resolved);
  CLUSMT_EXPECT_FIELD(policy_flushes);
  CLUSMT_EXPECT_FIELD(load_l2_misses);
  CLUSMT_EXPECT_FIELD(store_l2_misses);
  CLUSMT_EXPECT_FIELD(load_forwards);
#undef CLUSMT_EXPECT_FIELD
}

enum class Flavour { kMemHeavy, kIlp, kSquashHeavy };

const char* flavour_name(Flavour f) {
  switch (f) {
    case Flavour::kMemHeavy: return "mem";
    case Flavour::kIlp: return "ilp";
    case Flavour::kSquashHeavy: return "squashy";
  }
  return "?";
}

/// Pool traces of the requested flavour. Mem-heavy threads stall together
/// on L2 misses (the quiescent windows skip-ahead targets); ilp threads
/// rarely quiesce (skip attempts must bail harmlessly); squash-heavy
/// threads exercise undo of memoized plans and event teardown mid-skip.
std::vector<trace::TraceSpec> make_threads(int num_threads, Flavour flavour,
                                           std::uint64_t seed) {
  const trace::TracePool pool(seed);
  std::vector<trace::TraceSpec> threads;
  for (int t = 0; t < num_threads; ++t) {
    const trace::Category cat = t % 2 == 0 ? trace::Category::kISpec00
                                           : trace::Category::kFSpec00;
    trace::TraceKind kind;
    switch (flavour) {
      case Flavour::kMemHeavy: kind = trace::TraceKind::kMem; break;
      case Flavour::kIlp: kind = trace::TraceKind::kIlp; break;
      case Flavour::kSquashHeavy:
        kind = t % 2 == 0 ? trace::TraceKind::kIlp : trace::TraceKind::kMem;
        break;
    }
    trace::TraceSpec spec =
        pool.get(cat, kind, t % trace::TracePool::kVariantsPerKind);
    if (flavour == Flavour::kSquashHeavy) {
      spec.profile.hard_branch_fraction = 0.5;
      spec.profile.name += "+squashy";
    }
    threads.push_back(std::move(spec));
  }
  return threads;
}

struct RunOutcome {
  SimStats stats;
  std::uint64_t cycles_skipped = 0;
  std::uint64_t skip_episodes = 0;
};

RunOutcome run_once(const SimConfig& config,
                    const std::vector<trace::TraceSpec>& threads, Cycle warmup,
                    Cycle cycles) {
  Simulator sim(config);
  for (std::size_t t = 0; t < threads.size(); ++t) {
    sim.attach_thread(static_cast<ThreadId>(t), threads[t]);
  }
  sim.run(warmup);
  sim.reset_stats();
  sim.run(cycles);
  EXPECT_TRUE(sim.validate_view());
  for (int c = 0; c < config.num_clusters; ++c) {
    EXPECT_TRUE(sim.cluster(c).iq().validate());
  }
  return {sim.stats(), sim.cycles_skipped(), sim.skip_episodes()};
}

/// Runs `config` with both fast paths ON (the shipping default) and with
/// both OFF (the oracle), expecting bit-identical SimStats. Also checks
/// each feature alone, so a bug in one cannot hide behind the other.
/// Returns the ON run's skip tally for activity assertions.
RunOutcome expect_modes_agree(SimConfig config,
                              const std::vector<trace::TraceSpec>& threads,
                              const std::string& label, Cycle warmup = 500,
                              Cycle cycles = 4000) {
  config.skip_ahead = true;
  config.rename_memo = true;
  const RunOutcome fast = run_once(config, threads, warmup, cycles);

  SimConfig oracle = config;
  oracle.skip_ahead = false;
  oracle.rename_memo = false;
  const RunOutcome ref = run_once(oracle, threads, warmup, cycles);
  expect_stats_equal(fast.stats, ref.stats, label + "/both-vs-none");
  EXPECT_EQ(ref.cycles_skipped, 0u)
      << label << ": oracle must never skip";

  SimConfig skip_only = config;
  skip_only.rename_memo = false;
  expect_stats_equal(run_once(skip_only, threads, warmup, cycles).stats,
                     ref.stats, label + "/skip-only");

  SimConfig memo_only = config;
  memo_only.skip_ahead = false;
  expect_stats_equal(run_once(memo_only, threads, warmup, cycles).stats,
                     ref.stats, label + "/memo-only");
  return fast;
}

TEST(SkipAheadDifferential, AllSchemesAcrossMachinesAndFlavours) {
  struct MachineCase {
    const char* name;
    SimConfig config;
    int threads;
  };
  const MachineCase machines[] = {
      {"bounded-2t", harness::rf_study_config(64), 2},
      {"unbounded-2t", harness::iq_study_config(32), 2},
      {"smt4", harness::smt4_baseline(), 4},
  };
  std::uint64_t skipped_total = 0;
  for (const MachineCase& machine : machines) {
    for (const policy::PolicyKind scheme : policy::all_policy_kinds()) {
      for (const Flavour flavour :
           {Flavour::kMemHeavy, Flavour::kIlp, Flavour::kSquashHeavy}) {
        SimConfig config = machine.config;
        config.policy = scheme;
        const auto threads = make_threads(machine.threads, flavour,
                                          /*seed=*/7);
        const std::string label =
            std::string(machine.name) + "/" +
            std::string(policy::policy_kind_name(scheme)) + "/" +
            flavour_name(flavour);
        skipped_total +=
            expect_modes_agree(config, threads, label).cycles_skipped;
      }
    }
  }
  // Guard against the whole matrix silently testing nothing: the mem-heavy
  // cells must have produced real skip episodes somewhere.
  EXPECT_GT(skipped_total, 0u)
      << "no cell ever skipped a cycle: skip-ahead is inert";
}

TEST(SkipAheadDifferential, HeterogeneousShapes) {
  // Asymmetric grid: a wide cluster 0 vs a narrow cluster 1, asymmetric
  // link latencies. Exercises capacity-scaled steering and per-cluster
  // overrides under both fast paths.
  SimConfig base = harness::rf_study_config(64);
  base.shape[0] = ClusterShape{.issue_width = 4, .iq_entries = 48,
                               .int_regs = 96, .fp_regs = 96};
  base.shape[1] = ClusterShape{.issue_width = 2, .iq_entries = 16,
                               .int_regs = 48, .fp_regs = 48};
  base.link_latency_cc[0][1] = 3;
  base.link_latency_cc[1][0] = 1;
  const policy::PolicyKind schemes[] = {
      policy::PolicyKind::kIcount, policy::PolicyKind::kCssp,
      policy::PolicyKind::kCdprf, policy::PolicyKind::kFlushPlus,
      policy::PolicyKind::kHillClimb};
  for (const policy::PolicyKind scheme : schemes) {
    for (const Flavour flavour : {Flavour::kMemHeavy, Flavour::kSquashHeavy}) {
      SimConfig config = base;
      config.policy = scheme;
      const auto threads = make_threads(2, flavour, /*seed=*/11);
      const std::string label =
          std::string("hetero/") +
          std::string(policy::policy_kind_name(scheme)) + "/" +
          flavour_name(flavour);
      expect_modes_agree(config, threads, label);
    }
  }
}

TEST(SkipAheadDifferential, LongMemoryLatencyForcesMultiBucketJumps) {
  // Main memory slower than the whole 1024-bucket wheel span: quiescent
  // windows stretch past the wheel, so the skip horizon must come from the
  // overflow heap and single jumps must cross multiple bucket wraps.
  SimConfig config = harness::rf_study_config(64);
  config.memory.memory_latency = 2500;
  const auto threads = make_threads(2, Flavour::kMemHeavy, /*seed=*/7);
  const RunOutcome fast =
      expect_modes_agree(config, threads, "slow-mem", /*warmup=*/1000,
                         /*cycles=*/20000);
  EXPECT_GT(fast.stats.load_l2_misses, 0u)
      << "no L2 misses: the long-latency path was never exercised";
  EXPECT_GT(fast.cycles_skipped, 0u) << "slow-mem run never skipped";
  EXPECT_GT(fast.skip_episodes, 0u);
  // At least one jump must have been longer than the wheel span, proving
  // the horizon consulted the overflow heap across bucket wraps (mean
  // episode length alone suffices: total/episodes > span is only possible
  // if some single jump exceeded it).
  EXPECT_GT(fast.cycles_skipped / fast.skip_episodes, 0u);
}

TEST(SkipAheadDifferential, WatchdogFiresIdenticallyWhenSkipping) {
  // A machine that deadlocks (mem-heavy threads, tiny watchdog) must throw
  // the watchdog error in both modes — and the skip path must not jump
  // past the exact cycle the per-cycle oracle would trap on.
  SimConfig config = harness::rf_study_config(64);
  config.memory.memory_latency = 2500;
  config.watchdog_cycles = 600;
  const auto threads = make_threads(2, Flavour::kMemHeavy, /*seed=*/7);
  auto run_to_trap = [&](bool fast) -> std::string {
    SimConfig c = config;
    c.skip_ahead = fast;
    c.rename_memo = fast;
    Simulator sim(c);
    for (std::size_t t = 0; t < threads.size(); ++t) {
      sim.attach_thread(static_cast<ThreadId>(t), threads[t]);
    }
    try {
      sim.run(100000);
    } catch (const std::runtime_error& e) {
      return e.what();
    }
    return "";
  };
  const std::string fast_msg = run_to_trap(true);
  const std::string ref_msg = run_to_trap(false);
  // Either both complete (the workload commits often enough) or both trap
  // with the identical message (which embeds the trap cycle).
  EXPECT_EQ(fast_msg, ref_msg);
}

}  // namespace
}  // namespace clusmt::core
