// Differential coverage for the coalescing event wheel: the
// kCoalescedWheel model (16-byte per-cycle bucket records, duplicate
// same-cycle wakeups merged at schedule time, overflow heap for events
// beyond the wheel span) must be bit-identical to the kHeapReference
// oracle — the original single global priority queue, which never merges
// anything — across machines, schemes, squash-heavy traces, and a
// main-memory latency far past the wheel span (so bucket records and
// overflow events interleave at the same drain cycle). This is the
// queue-level analogue of IssueModel::kScanReference.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/simulator.h"
#include "harness/presets.h"
#include "policy/policy.h"
#include "trace/workload.h"

namespace clusmt::core {
namespace {

/// Field-by-field SimStats equality with a readable failure message.
void expect_stats_equal(const SimStats& a, const SimStats& b,
                        const std::string& label) {
#define CLUSMT_EXPECT_FIELD(field) \
  EXPECT_EQ(a.field, b.field) << label << ": SimStats::" #field " diverged"
  CLUSMT_EXPECT_FIELD(cycles);
  for (int t = 0; t < kMaxThreads; ++t) CLUSMT_EXPECT_FIELD(committed[t]);
  CLUSMT_EXPECT_FIELD(committed_copies);
  CLUSMT_EXPECT_FIELD(committed_branches);
  CLUSMT_EXPECT_FIELD(committed_loads);
  CLUSMT_EXPECT_FIELD(committed_stores);
  CLUSMT_EXPECT_FIELD(renamed_uops);
  CLUSMT_EXPECT_FIELD(copies_created);
  CLUSMT_EXPECT_FIELD(rename_cycles);
  CLUSMT_EXPECT_FIELD(rename_blocked_cycles);
  CLUSMT_EXPECT_FIELD(rename_block_iq);
  CLUSMT_EXPECT_FIELD(rename_block_rf);
  CLUSMT_EXPECT_FIELD(rename_block_rob);
  CLUSMT_EXPECT_FIELD(rename_block_mob);
  CLUSMT_EXPECT_FIELD(iq_pref_stall_events);
  CLUSMT_EXPECT_FIELD(non_preferred_dispatches);
  CLUSMT_EXPECT_FIELD(issued_uops);
  CLUSMT_EXPECT_FIELD(cycles_with_issue);
  for (int i = 0; i < 2; ++i) {
    for (int k = 0; k < trace::kNumPortClasses; ++k) {
      CLUSMT_EXPECT_FIELD(imbalance_events[i][k]);
    }
  }
  CLUSMT_EXPECT_FIELD(squashed_uops);
  CLUSMT_EXPECT_FIELD(branches_resolved);
  CLUSMT_EXPECT_FIELD(mispredicts_resolved);
  CLUSMT_EXPECT_FIELD(policy_flushes);
  CLUSMT_EXPECT_FIELD(load_l2_misses);
  CLUSMT_EXPECT_FIELD(store_l2_misses);
  CLUSMT_EXPECT_FIELD(load_forwards);
#undef CLUSMT_EXPECT_FIELD
}

/// Pool traces with an optional squash-heavy override, so event teardown
/// under wrong-path recovery is permanently exercised.
std::vector<trace::TraceSpec> make_threads(int num_threads, bool squash_heavy,
                                           std::uint64_t seed) {
  const trace::TracePool pool(seed);
  std::vector<trace::TraceSpec> threads;
  for (int t = 0; t < num_threads; ++t) {
    trace::TraceSpec spec =
        pool.get(t % 2 == 0 ? trace::Category::kISpec00
                            : trace::Category::kFSpec00,
                 t % 2 == 0 ? trace::TraceKind::kIlp : trace::TraceKind::kMem,
                 t % trace::TracePool::kVariantsPerKind);
    if (squash_heavy) {
      spec.profile.hard_branch_fraction = 0.5;
      spec.profile.name += "+squashy";
    }
    threads.push_back(std::move(spec));
  }
  return threads;
}

struct RunOutcome {
  SimStats stats;
  std::uint64_t coalesced = 0;
};

RunOutcome run_once(const SimConfig& config, Simulator::EventModel model,
                    const std::vector<trace::TraceSpec>& threads, Cycle warmup,
                    Cycle cycles) {
  Simulator sim(config);
  sim.set_event_model(model);
  for (std::size_t t = 0; t < threads.size(); ++t) {
    sim.attach_thread(static_cast<ThreadId>(t), threads[t]);
  }
  sim.run(warmup);
  sim.reset_stats();
  sim.run(cycles);
  EXPECT_TRUE(sim.validate_view());
  for (int c = 0; c < config.num_clusters; ++c) {
    EXPECT_TRUE(sim.cluster(c).iq().validate());
  }
  return {sim.stats(), sim.events_coalesced()};
}

TEST(EventQueueDifferential, WheelMatchesHeapReferenceAcrossGrid) {
  struct MachineCase {
    const char* name;
    SimConfig config;
    int threads;
  };
  MachineCase machines[] = {
      {"bounded-2t", harness::rf_study_config(64), 2},
      {"unbounded-2t", harness::iq_study_config(32), 2},
      {"smt4", harness::smt4_baseline(), 4},
      // Main memory slower than the whole wheel span: every L2 miss
      // completion lands in the overflow heap while cache hits keep the
      // buckets busy, pinning the heap-before-bucket drain order.
      {"slow-mem-2t", harness::rf_study_config(64), 2},
  };
  machines[3].config.memory.memory_latency = 1500;
  const policy::PolicyKind schemes[] = {
      policy::PolicyKind::kIcount, policy::PolicyKind::kCssp,
      policy::PolicyKind::kCdprf, policy::PolicyKind::kFlushPlus};

  for (const MachineCase& machine : machines) {
    for (const policy::PolicyKind scheme : schemes) {
      for (const bool squash_heavy : {false, true}) {
        SimConfig config = machine.config;
        config.policy = scheme;
        const auto threads =
            make_threads(machine.threads, squash_heavy, /*seed=*/7);
        const std::string label =
            std::string(machine.name) + "/" +
            std::string(policy::policy_kind_name(scheme)) +
            (squash_heavy ? "/squash-heavy" : "/plain");
        const RunOutcome wheel =
            run_once(config, Simulator::EventModel::kCoalescedWheel, threads,
                     /*warmup=*/1000, /*cycles=*/5000);
        const RunOutcome reference =
            run_once(config, Simulator::EventModel::kHeapReference, threads,
                     /*warmup=*/1000, /*cycles=*/5000);
        expect_stats_equal(wheel.stats, reference.stats, label);
        // The current model never schedules the same (consumer, kind) twice
        // for one cycle, so coalescing must be behaviour-free. If this ever
        // fires, a producer started double-scheduling — and the stats
        // comparison above proves the merge still preserved behaviour.
        EXPECT_EQ(wheel.coalesced, 0u) << label;
        EXPECT_EQ(reference.coalesced, 0u)
            << label << ": the reference heap must never merge";
      }
    }
  }
}

TEST(EventQueueDifferential, OverflowPathActuallyExercised) {
  // Guard against the slow-mem grid case silently testing nothing: with
  // main memory past the wheel span, L2 misses must both occur and retire.
  SimConfig config = harness::rf_study_config(64);
  config.memory.memory_latency = 1500;
  const auto threads = make_threads(2, /*squash_heavy=*/false, /*seed=*/7);
  const RunOutcome out =
      run_once(config, Simulator::EventModel::kCoalescedWheel, threads,
               /*warmup=*/1000, /*cycles=*/20000);
  EXPECT_GT(out.stats.load_l2_misses, 0u)
      << "no L2 misses: the overflow heap was never used";
  EXPECT_GT(out.stats.committed_loads, 0u);
}

}  // namespace
}  // namespace clusmt::core
