// End-to-end dynamics of the paper's proposal: CDPRF's thresholds must
// *diverge* when thread demands are asymmetric (the Figure 9 mechanism —
// an integer-heavy thread beside an FP-heavy thread should be granted
// asymmetric guaranteed regions) and stay near the even split when
// demands are symmetric (where the paper notes the dynamic scheme "ends
// up statically partitioning the register files").
#include <gtest/gtest.h>

#include <algorithm>

#include "core/simulator.h"
#include "harness/presets.h"
#include "policy/regfile_policy.h"
#include "trace/workload.h"

namespace clusmt::policy {
namespace {

/// Runs `spec_a` + `spec_b` under CDPRF with a short interval so several
/// threshold updates happen, then returns the policy for inspection.
const CdprfPolicy& run_cdprf(core::Simulator& sim,
                             const trace::TraceSpec& spec_a,
                             const trace::TraceSpec& spec_b, Cycle cycles) {
  sim.attach_thread(0, spec_a);
  sim.attach_thread(1, spec_b);
  sim.run(cycles);
  return dynamic_cast<const CdprfPolicy&>(sim.policy());
}

core::SimConfig cdprf_config() {
  core::SimConfig config = harness::rf_study_config(64);
  config.policy = PolicyKind::kCdprf;
  config.policy_config.cdprf_interval = 8192;  // several updates per run
  return config;
}

TEST(CdprfDynamics, AsymmetricDemandDivergesThresholdsByClass) {
  trace::TracePool pool(11);
  core::Simulator sim(cdprf_config());
  // Thread 0: SPECint (integer registers); thread 1: SPECfp (FP heavy).
  const auto& policy = run_cdprf(
      sim, pool.get(trace::Category::kISpec00, trace::TraceKind::kIlp, 0),
      pool.get(trace::Category::kFSpec00, trace::TraceKind::kIlp, 0),
      100000);

  // The integer thread's int guarantee should exceed the FP thread's int
  // guarantee, and vice versa for the FP file.
  EXPECT_GT(policy.threshold(0, RegClass::kInt),
            policy.threshold(1, RegClass::kInt));
  EXPECT_GT(policy.threshold(1, RegClass::kFp),
            policy.threshold(0, RegClass::kFp));
}

TEST(CdprfDynamics, SymmetricDemandKeepsThresholdsClose) {
  trace::TracePool pool(13);
  core::Simulator sim(cdprf_config());
  // Two variants of the same integer category: near-identical demand.
  const auto& policy = run_cdprf(
      sim, pool.get(trace::Category::kISpec00, trace::TraceKind::kIlp, 0),
      pool.get(trace::Category::kISpec00, trace::TraceKind::kIlp, 1),
      100000);

  const int t0 = policy.threshold(0, RegClass::kInt);
  const int t1 = policy.threshold(1, RegClass::kInt);
  ASSERT_GT(t0, 0);
  ASSERT_GT(t1, 0);
  // Within a third of each other — "ends up statically partitioning".
  EXPECT_LT(std::abs(t0 - t1), std::max(t0, t1) / 3 + 4);
}

TEST(CdprfDynamics, ThresholdsNeverExceedHalfTheTotalFile) {
  trace::TracePool pool(17);
  core::SimConfig config = cdprf_config();
  core::Simulator sim(config);
  const auto& policy = run_cdprf(
      sim, pool.get(trace::Category::kISpec00, trace::TraceKind::kMem, 0),
      pool.get(trace::Category::kISpec00, trace::TraceKind::kMem, 1),
      120000);

  // Paper Figure 8: private regions are clamped to half the register file
  // ("greater would not be fair for the other thread").
  const int half_total = config.int_regs * config.num_clusters / 2;
  for (ThreadId t = 0; t < 2; ++t) {
    EXPECT_LE(policy.threshold(t, RegClass::kInt), half_total);
    EXPECT_LE(policy.threshold(t, RegClass::kFp), half_total);
  }
}

TEST(CdprfDynamics, RfocAccumulatesWhileRunning) {
  trace::TracePool pool(19);
  core::Simulator sim(cdprf_config());
  const auto& policy = run_cdprf(
      sim, pool.get(trace::Category::kProductivity, trace::TraceKind::kIlp, 0),
      pool.get(trace::Category::kServer, trace::TraceKind::kMem, 0), 20000);
  // Both threads allocated integer registers, so both RFOC accumulators
  // moved within the current interval (or a threshold was already set).
  for (ThreadId t = 0; t < 2; ++t) {
    EXPECT_TRUE(policy.rfoc(t, RegClass::kInt) > 0 ||
                policy.threshold(t, RegClass::kInt) > 0)
        << "thread " << t;
  }
}

TEST(CdprfDynamics, BeatsStaticPartitionOnDisjointPair) {
  // The Figure 9 headline in miniature: on an int-heavy + fp-heavy pair,
  // CDPRF must not lose to the cluster-insensitive *static* partition
  // (CISPRF), because its partitions adapt to the disjoint demand.
  trace::TracePool pool(23);
  const auto& a = pool.get(trace::Category::kISpec00, trace::TraceKind::kIlp, 0);
  const auto& b = pool.get(trace::Category::kFSpec00, trace::TraceKind::kIlp, 0);

  auto throughput_under = [&](PolicyKind kind) {
    core::SimConfig config = harness::rf_study_config(64);
    config.policy = kind;
    config.policy_config.cdprf_interval = 8192;
    core::Simulator sim(config);
    sim.attach_thread(0, a);
    sim.attach_thread(1, b);
    sim.run(30000);
    sim.reset_stats();
    sim.run(90000);
    return sim.stats().throughput();
  };

  const double cdprf = throughput_under(PolicyKind::kCdprf);
  const double cisprf = throughput_under(PolicyKind::kCisprf);
  EXPECT_GE(cdprf, 0.98 * cisprf);  // at worst a whisker behind, never a loss
}

}  // namespace
}  // namespace clusmt::policy
