// Trace-file round trips and failure injection: every malformed input the
// loader documents (bad magic, wrong version, truncation, bit corruption,
// trailing bytes, bogus class/flags) must be rejected, and a loaded trace
// must drive the simulator exactly like its in-memory original.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/simulator.h"
#include "harness/presets.h"
#include "trace/synthetic.h"
#include "trace/trace_io.h"
#include "trace/workload.h"

namespace clusmt::trace {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("clusmt_trace_io_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + std::to_string(counter_++));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  [[nodiscard]] std::string path(const std::string& file) const {
    return (dir_ / file).string();
  }

  [[nodiscard]] static std::vector<MicroOp> sample_uops(std::size_t count) {
    TracePool pool(2024);
    return record_trace(pool.get(Category::kISpec00, TraceKind::kIlp, 0),
                        count);
  }

  [[nodiscard]] std::string write_sample(const std::string& file,
                                         std::size_t count) {
    const std::string p = path(file);
    save_trace(p, "sample", /*seed=*/42, sample_uops(count));
    return p;
  }

  [[nodiscard]] static std::vector<char> slurp(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  static void spit(const std::string& p, const std::vector<char>& bytes) {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::filesystem::path dir_;
  static int counter_;
};

int TraceIoTest::counter_ = 0;

TEST_F(TraceIoTest, RoundTripPreservesEveryField) {
  const auto uops = sample_uops(500);
  const std::string p = path("roundtrip.cltr");
  save_trace(p, "ispec.ilp.0", 77, uops);

  const LoadedTrace loaded = load_trace(p);
  EXPECT_EQ(loaded.name, "ispec.ilp.0");
  EXPECT_EQ(loaded.seed, 77u);
  ASSERT_EQ(loaded.uops.size(), uops.size());
  for (std::size_t i = 0; i < uops.size(); ++i) {
    EXPECT_EQ(loaded.uops[i].pc, uops[i].pc) << i;
    EXPECT_EQ(loaded.uops[i].cls, uops[i].cls) << i;
    EXPECT_EQ(loaded.uops[i].dst, uops[i].dst) << i;
    EXPECT_EQ(loaded.uops[i].src0, uops[i].src0) << i;
    EXPECT_EQ(loaded.uops[i].src1, uops[i].src1) << i;
    EXPECT_EQ(loaded.uops[i].mem_addr, uops[i].mem_addr) << i;
    EXPECT_EQ(loaded.uops[i].taken, uops[i].taken) << i;
    EXPECT_EQ(loaded.uops[i].indirect, uops[i].indirect) << i;
    EXPECT_EQ(loaded.uops[i].target, uops[i].target) << i;
    EXPECT_EQ(loaded.uops[i].fallthrough, uops[i].fallthrough) << i;
  }
}

TEST_F(TraceIoTest, EmptyTraceRoundTrips) {
  const std::string p = path("empty.cltr");
  save_trace(p, "", 0, {});
  const LoadedTrace loaded = load_trace(p);
  EXPECT_TRUE(loaded.name.empty());
  EXPECT_TRUE(loaded.uops.empty());
}

TEST_F(TraceIoTest, MissingFileThrows) {
  EXPECT_THROW((void)load_trace(path("no_such_file.cltr")),
               std::runtime_error);
}

TEST_F(TraceIoTest, BadMagicRejected) {
  const std::string p = write_sample("magic.cltr", 10);
  auto bytes = slurp(p);
  bytes[0] = 'X';
  spit(p, bytes);
  EXPECT_THROW((void)load_trace(p), std::runtime_error);
}

TEST_F(TraceIoTest, UnsupportedVersionRejected) {
  const std::string p = write_sample("version.cltr", 10);
  auto bytes = slurp(p);
  bytes[8] = 99;  // version u32 follows the 8-byte magic
  spit(p, bytes);
  EXPECT_THROW((void)load_trace(p), std::runtime_error);
}

TEST_F(TraceIoTest, TruncationRejected) {
  const std::string p = write_sample("trunc.cltr", 64);
  auto bytes = slurp(p);
  for (const std::size_t keep :
       {bytes.size() - 1, bytes.size() / 2, std::size_t{12}, std::size_t{4}}) {
    auto cut = bytes;
    cut.resize(keep);
    spit(p, cut);
    EXPECT_THROW((void)load_trace(p), std::runtime_error) << keep;
  }
}

TEST_F(TraceIoTest, PayloadCorruptionFailsChecksum) {
  const std::string p = write_sample("corrupt.cltr", 64);
  auto bytes = slurp(p);
  bytes[bytes.size() / 2] =
      static_cast<char>(~static_cast<unsigned char>(bytes[bytes.size() / 2]));
  spit(p, bytes);
  EXPECT_THROW((void)load_trace(p), std::runtime_error);
}

TEST_F(TraceIoTest, TrailingBytesRejected) {
  const std::string p = write_sample("trailing.cltr", 8);
  auto bytes = slurp(p);
  bytes.push_back('\0');
  spit(p, bytes);
  EXPECT_THROW((void)load_trace(p), std::runtime_error);
}

TEST_F(TraceIoTest, OversizedNameRejectedOnSave) {
  EXPECT_THROW(save_trace(path("name.cltr"), std::string(8192, 'n'), 0, {}),
               std::runtime_error);
}

TEST_F(TraceIoTest, RecordTraceIsDeterministic) {
  TracePool pool(7);
  const TraceSpec& spec = pool.get(Category::kServer, TraceKind::kMem, 1);
  const auto a = record_trace(spec, 200);
  const auto b = record_trace(spec, 200);
  ASSERT_EQ(a.size(), 200u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pc, b[i].pc);
    EXPECT_EQ(a[i].mem_addr, b[i].mem_addr);
  }
}

TEST_F(TraceIoTest, LoadedTraceDrivesSimulatorLikeTheOriginal) {
  TracePool pool(31);
  const TraceSpec& spec = pool.get(Category::kDH, TraceKind::kIlp, 0);

  // Long enough that the 25000-cycle run never wraps: replay and live
  // generation then produce identical streams.
  const std::string p = path("replay.cltr");
  save_recorded_trace(p, spec, 400000);
  const LoadedTrace loaded = load_trace(p);

  auto run = [&](std::shared_ptr<TraceSource> source) {
    core::SimConfig config = harness::paper_baseline();
    config.num_threads = 1;
    core::Simulator sim(config);
    sim.attach_thread(0, std::move(source), &spec.profile, spec.seed);
    sim.run(25000);
    return sim.stats();
  };

  const auto live = run(std::make_shared<SyntheticTrace>(spec.profile,
                                                         spec.seed));
  const auto replay = run(loaded.make_source());
  EXPECT_EQ(live.committed[0], replay.committed[0]);
  EXPECT_EQ(live.issued_uops, replay.issued_uops);
  EXPECT_EQ(live.load_l2_misses, replay.load_l2_misses);
}

TEST_F(TraceIoTest, InvalidUopClassRejected) {
  // Hand-craft a one-µop file, then poison the class byte. The class byte
  // sits 38 bytes into the record; the record starts after the header.
  const std::string p = path("class.cltr");
  MicroOp op;
  op.cls = UopClass::kIntAlu;
  save_trace(p, "x", 0, {op});
  auto bytes = slurp(p);
  const std::size_t header = 8 + 4 + 4 + 1 + 8 + 8;  // name "x" = 1 byte
  bytes[header + 38] = 8;  // kCopy: traces must never contain copies
  spit(p, bytes);
  EXPECT_THROW((void)load_trace(p), std::runtime_error);
}

}  // namespace
}  // namespace clusmt::trace
