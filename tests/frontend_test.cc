#include <gtest/gtest.h>

#include <memory>

#include "frontend/branch_predictor.h"
#include "frontend/fetch.h"
#include "frontend/rename_map.h"
#include "frontend/trace_cache.h"
#include "trace/trace_source.h"

namespace clusmt::frontend {
namespace {

using trace::MicroOp;
using trace::UopClass;

TEST(BranchPredictor, LearnsBias) {
  BranchPredictor bp(BranchPredictorConfig{});
  const std::uint64_t pc = 0x400100;
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t hist = bp.history(0);
    (void)bp.predict_and_update_history(0, pc);
    bp.train(0, hist, pc, /*taken=*/false);
    bp.restore_history(0, hist, true, false);
  }
  EXPECT_FALSE(bp.predict_and_update_history(0, pc));
}

TEST(BranchPredictor, PerThreadHistoryIsolated) {
  BranchPredictor bp(BranchPredictorConfig{});
  (void)bp.predict_and_update_history(0, 0x100);
  (void)bp.predict_and_update_history(0, 0x104);
  EXPECT_EQ(bp.history(1), 0u);
  EXPECT_NE(bp.history(0), bp.history(1));
}

TEST(BranchPredictor, HistoryRestoreAppliesOutcome) {
  BranchPredictor bp(BranchPredictorConfig{});
  bp.restore_history(0, 0b1010, /*apply_outcome=*/true, /*taken=*/true);
  EXPECT_EQ(bp.history(0), 0b10101u);
  bp.restore_history(0, 0b1010, /*apply_outcome=*/false, false);
  EXPECT_EQ(bp.history(0), 0b1010u);
}

TEST(BranchPredictor, IndirectLastTarget) {
  BranchPredictor bp(BranchPredictorConfig{});
  EXPECT_EQ(bp.predict_indirect(0x500), 0u);  // cold
  bp.train_indirect(0x500, 0x9000);
  EXPECT_EQ(bp.predict_indirect(0x500), 0x9000u);
  bp.train_indirect(0x500, 0x7000);
  EXPECT_EQ(bp.predict_indirect(0x500), 0x7000u);
}

TEST(BranchPredictor, RejectsNonPowerOfTwoTables) {
  BranchPredictorConfig cfg;
  cfg.gshare_entries = 1000;
  EXPECT_THROW(BranchPredictor{cfg}, std::invalid_argument);
}

TEST(TraceCache, BuildOnMissThenHit) {
  TraceCache tc(TraceCacheConfig{});
  EXPECT_FALSE(tc.lookup(0x400000));
  EXPECT_TRUE(tc.lookup(0x400000));
  EXPECT_TRUE(tc.lookup(0x400010));  // same line (8 µops x 4B)
}

namespace fetch_helpers {

/// Straight-line µops with one strongly-taken loop branch every `period`.
std::vector<MicroOp> make_loop(int period, bool taken = true) {
  std::vector<MicroOp> ops;
  for (int i = 0; i < period; ++i) {
    MicroOp op;
    op.pc = 0x400000 + i * 4;
    op.cls = UopClass::kIntAlu;
    op.dst = static_cast<std::int16_t>(i % 8);
    ops.push_back(op);
  }
  MicroOp br;
  br.pc = 0x400000 + period * 4;
  br.cls = UopClass::kBranch;
  br.taken = taken;
  br.target = 0x400000;
  br.fallthrough = br.pc + 4;
  ops.push_back(br);
  return ops;
}

FetchConfig small_config() {
  FetchConfig cfg;
  cfg.fetch_width = 6;
  cfg.decode_queue_capacity = 12;
  return cfg;
}

}  // namespace fetch_helpers

TEST(FetchEngine, SelectsSmallestQueue) {
  using namespace fetch_helpers;
  FetchEngine fe(small_config(), 2);
  auto t0 = std::make_shared<trace::VectorTrace>("t0", make_loop(8));
  auto t1 = std::make_shared<trace::VectorTrace>("t1", make_loop(8));
  fe.attach_thread(0, t0, nullptr, 1);
  fe.attach_thread(1, t1, nullptr, 2);

  EXPECT_EQ(fe.select_fetch_thread(0b11, 0), 0);  // both empty: lowest id
  // First access to a page walks the I-TLB and stalls the thread; warm it.
  fe.fetch_cycle(0, 0);
  EXPECT_EQ(fe.queue_size(0), 0);
  ASSERT_TRUE(fe.stalled(0, 1));
  fe.fetch_cycle(0, 100);
  EXPECT_GT(fe.queue_size(0), 0);
  EXPECT_EQ(fe.select_fetch_thread(0b11, 101), 1);  // t1 now emptier
  EXPECT_EQ(fe.select_fetch_thread(0b01, 101), 0);  // mask excludes t1
  EXPECT_EQ(fe.select_fetch_thread(0b00, 101), -1);
}

TEST(FetchEngine, RoundRobinRotatesRegardlessOfDepth) {
  using namespace fetch_helpers;
  FetchConfig cfg = small_config();
  cfg.selection = FetchSelection::kRoundRobin;
  FetchEngine fe(cfg, 2);
  fe.attach_thread(0, std::make_shared<trace::VectorTrace>("t0", make_loop(8)),
                   nullptr, 1);
  fe.attach_thread(1, std::make_shared<trace::VectorTrace>("t1", make_loop(8)),
                   nullptr, 2);

  // The cursor alternates even while both queues are empty (fewest-in-queue
  // would keep picking thread 0 on ties).
  EXPECT_EQ(fe.select_fetch_thread(0b11, 0), 0);
  EXPECT_EQ(fe.select_fetch_thread(0b11, 0), 1);
  EXPECT_EQ(fe.select_fetch_thread(0b11, 0), 0);

  // Masked threads are skipped without stalling the rotation.
  EXPECT_EQ(fe.select_fetch_thread(0b10, 0), 1);
  EXPECT_EQ(fe.select_fetch_thread(0b10, 0), 1);
  EXPECT_EQ(fe.select_fetch_thread(0b00, 0), -1);
}

TEST(FetchEngine, RoundRobinSkipsFullQueues) {
  using namespace fetch_helpers;
  FetchConfig cfg = small_config();
  cfg.selection = FetchSelection::kRoundRobin;
  FetchEngine fe(cfg, 2);
  fe.attach_thread(0, std::make_shared<trace::VectorTrace>("t0", make_loop(8)),
                   nullptr, 1);
  fe.attach_thread(1, std::make_shared<trace::VectorTrace>("t1", make_loop(8)),
                   nullptr, 2);

  // Fill thread 0's decode queue to capacity (warm the I-TLB first).
  fe.fetch_cycle(0, 0);
  Cycle now = 100;
  while (fe.queue_size(0) < cfg.decode_queue_capacity) {
    fe.fetch_cycle(0, now);
    now += 20;  // clear of any predicted-taken refetch stalls
  }
  EXPECT_EQ(fe.select_fetch_thread(0b11, now), 1);
  EXPECT_EQ(fe.select_fetch_thread(0b11, now), 1);
}

TEST(FetchEngine, StallBlocksSelection) {
  using namespace fetch_helpers;
  FetchEngine fe(small_config(), 1);
  fe.attach_thread(0, std::make_shared<trace::VectorTrace>("t", make_loop(8)),
                   nullptr, 1);
  fe.stall_until(0, 10);
  EXPECT_TRUE(fe.stalled(0, 5));
  EXPECT_EQ(fe.select_fetch_thread(0b1, 5), -1);
  EXPECT_FALSE(fe.stalled(0, 10));
  EXPECT_EQ(fe.select_fetch_thread(0b1, 10), 0);
}

TEST(FetchEngine, FetchStopsAtPredictedTakenBranch) {
  using namespace fetch_helpers;
  FetchEngine fe(small_config(), 1);
  // 2 µops then a taken loop branch; predictor warms to taken.
  fe.attach_thread(0, std::make_shared<trace::VectorTrace>("t", make_loop(2)),
                   nullptr, 1);
  Cycle now = 0;
  for (int i = 0; i < 50; ++i) {  // train the predictor
    fe.fetch_cycle(0, now);
    now += 20;
    while (!fe.queue_empty(0)) {
      const FetchedUop fu = fe.pop_front(0);
      if (fu.op.is_branch() && !fu.wrong_path) {
        fe.predictor().train(0, fu.history_checkpoint, fu.op.pc, fu.op.taken);
        if (fu.mispredicted) {
          fe.resolve_mispredict(0, fu.history_checkpoint, fu.op.taken, now);
        }
      }
    }
    now += 20;
  }
  // Trained: one fetch cycle delivers exactly one loop body (3 µops),
  // stopping at the taken branch even though width is 6.
  ASSERT_FALSE(fe.stalled(0, now));
  fe.fetch_cycle(0, now);
  EXPECT_EQ(fe.queue_size(0), 3);
  EXPECT_TRUE(fe.queue_front(0).op.pc == 0x400000);
}

TEST(FetchEngine, MispredictEntersWrongPathAndRecovers) {
  using namespace fetch_helpers;
  FetchConfig cfg = fetch_helpers::small_config();
  cfg.mispredict_penalty = 14;
  FetchEngine fe(cfg, 1);
  // Not-taken branch: a cold gshare (counters init weakly-taken) predicts
  // taken -> mispredict on first encounter.
  const trace::TraceProfile profile =
      trace::make_profile(trace::Category::kISpec00, trace::TraceKind::kIlp, 0);
  fe.attach_thread(
      0, std::make_shared<trace::VectorTrace>("t", make_loop(2, false)),
      &profile, 1);
  fe.fetch_cycle(0, 0);  // I-TLB walk
  fe.fetch_cycle(0, 100);
  // Find the mispredicted branch in the queue.
  bool saw_mispredict = false;
  std::uint64_t checkpoint = 0;
  while (!fe.queue_empty(0)) {
    const FetchedUop fu = fe.pop_front(0);
    if (fu.mispredicted) {
      saw_mispredict = true;
      checkpoint = fu.history_checkpoint;
      break;
    }
  }
  ASSERT_TRUE(saw_mispredict);
  EXPECT_TRUE(fe.on_wrong_path(0));
  // Wrong-path µops flow while the branch is unresolved (the wrong-path
  // page needs its own I-TLB walk first).
  fe.fetch_cycle(0, 101);
  fe.fetch_cycle(0, 200);
  EXPECT_GT(fe.queue_size(0), 0);
  EXPECT_TRUE(fe.queue_front(0).wrong_path);
  // Resolution: queue cleared, wrong path exits, fetch stalls 14 cycles.
  fe.resolve_mispredict(0, checkpoint, /*actual_taken=*/false, 300);
  EXPECT_FALSE(fe.on_wrong_path(0));
  EXPECT_EQ(fe.queue_size(0), 0);
  EXPECT_TRUE(fe.stalled(0, 313));
  EXPECT_FALSE(fe.stalled(0, 314));
  // Correct path resumes from the fall-through.
  fe.fetch_cycle(0, 314);
  ASSERT_FALSE(fe.queue_empty(0));
  EXPECT_FALSE(fe.queue_front(0).wrong_path);
}

TEST(FetchEngine, FlushReplaysSquashedUops) {
  using namespace fetch_helpers;
  FetchEngine fe(small_config(), 1);
  fe.attach_thread(0,
                   std::make_shared<trace::VectorTrace>("t", make_loop(20)),
                   nullptr, 1);
  fe.fetch_cycle(0, 0);  // I-TLB walk
  fe.fetch_cycle(0, 100);
  ASSERT_GE(fe.queue_size(0), 3);
  // Drain two µops (pretend they renamed), keep their ops for replay.
  const MicroOp first = fe.pop_front(0).op;
  const MicroOp second = fe.pop_front(0).op;
  const std::vector<MicroOp> replay = {first, second};
  fe.flush_and_replay(0, replay, std::nullopt);
  // The queue was cleared; refetching must deliver first, second, then the
  // previously-queued µops again, in order.
  fe.fetch_cycle(0, 200);
  ASSERT_GE(fe.queue_size(0), 2);
  EXPECT_EQ(fe.pop_front(0).op.pc, first.pc);
  EXPECT_EQ(fe.pop_front(0).op.pc, second.pc);
}

TEST(RenameMap, DefineSupersedesAndRestores) {
  RenameMap rm(2);
  EXPECT_FALSE(rm.get(3).anywhere());
  const ReplicaSet prev0 = rm.define(3, 0, 10);
  EXPECT_FALSE(prev0.anywhere());
  EXPECT_EQ(rm.get(3).phys[0], 10);
  rm.add_replica(3, 1, 22);
  EXPECT_TRUE(rm.get(3).present(1));

  const ReplicaSet prev1 = rm.define(3, 1, 30);  // supersedes both replicas
  EXPECT_EQ(prev1.phys[0], 10);
  EXPECT_EQ(prev1.phys[1], 22);
  EXPECT_FALSE(rm.get(3).present(0));
  EXPECT_EQ(rm.get(3).phys[1], 30);

  rm.restore(3, prev1);  // squash undo
  EXPECT_EQ(rm.get(3).phys[0], 10);
  EXPECT_EQ(rm.get(3).phys[1], 22);
}

TEST(RenameMap, ReplicaAddRemove) {
  RenameMap rm(2);
  rm.define(5, 0, 7);
  rm.add_replica(5, 1, 9);
  EXPECT_EQ(rm.get(5).any_cluster(), 0);
  rm.remove_replica(5, 1);
  EXPECT_FALSE(rm.get(5).present(1));
  EXPECT_TRUE(rm.get(5).present(0));
}

TEST(RenameMap, LifoUndoSequence) {
  // define A; copy; define B; squash B then copy restores exact state.
  RenameMap rm(2);
  rm.define(2, 0, 1);
  rm.add_replica(2, 1, 5);
  const ReplicaSet prev = rm.define(2, 0, 8);  // B
  EXPECT_FALSE(rm.get(2).present(1));
  rm.restore(2, prev);        // undo B
  rm.remove_replica(2, 1);    // undo copy
  EXPECT_EQ(rm.get(2).phys[0], 1);
  EXPECT_FALSE(rm.get(2).present(1));
}

}  // namespace
}  // namespace clusmt::frontend
