// Golden-numbers gate: JSON table parsing (the CsvWriter::to_json shape)
// and the tolerance comparator behind tools/golden_diff.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "common/csv.h"
#include "harness/golden.h"

namespace clusmt::harness {
namespace {

// ---- parse_json_table ----------------------------------------------------

TEST(GoldenParse, RoundTripsCsvWriterOutput) {
  CsvWriter csv({"category", "Icount", "CDPRF", "note"});
  csv.add_row({"DH", "1.000", "1.176", "he said \"hi\""});
  csv.add_row({"AVG", "-12.5e3", "0.5", "nan"});
  csv.add_row({"short"});  // padded with nulls by to_json

  const GoldenTable table = parse_json_table(csv.to_json());
  ASSERT_EQ(table.rows.size(), 3u);
  ASSERT_EQ(table.rows[0].size(), 4u);

  EXPECT_EQ(table.rows[0][0].first, "category");
  EXPECT_EQ(table.rows[0][0].second.kind, GoldenValue::Kind::kString);
  EXPECT_EQ(table.rows[0][0].second.text, "DH");
  EXPECT_EQ(table.rows[0][2].first, "CDPRF");
  EXPECT_EQ(table.rows[0][2].second.kind, GoldenValue::Kind::kNumber);
  EXPECT_DOUBLE_EQ(table.rows[0][2].second.number, 1.176);
  EXPECT_EQ(table.rows[0][3].second.text, "he said \"hi\"");

  EXPECT_DOUBLE_EQ(table.rows[1][1].second.number, -12.5e3);
  // "nan" is quoted by to_json, so it parses back as the string "nan".
  EXPECT_EQ(table.rows[1][3].second.kind, GoldenValue::Kind::kString);
  EXPECT_EQ(table.rows[1][3].second.text, "nan");

  // The short row carries every header key, trailing ones null.
  EXPECT_EQ(table.rows[2][0].second.text, "short");
  EXPECT_EQ(table.rows[2][1].second.kind, GoldenValue::Kind::kNull);
  EXPECT_EQ(table.rows[2][3].second.kind, GoldenValue::Kind::kNull);
}

TEST(GoldenParse, EmptyTableAndWhitespace) {
  EXPECT_TRUE(parse_json_table("[]").rows.empty());
  EXPECT_TRUE(parse_json_table(" [\n]\n").rows.empty());
  const GoldenTable t = parse_json_table("[{}]");
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_TRUE(t.rows[0].empty());
}

TEST(GoldenParse, MalformedDocumentsThrow) {
  for (const char* bad :
       {"", "[", "[{]", "[{\"a\":}]", "[{\"a\": 1} {\"b\": 2}]",
        "[{\"a\": 1}] trailing", "[{\"a\": [1]}]", "[{\"a\": 1.2.3}]",
        "[{\"a\": \"unterminated}]", "{\"not\": \"an array\"}"}) {
    EXPECT_THROW((void)parse_json_table(bad), std::runtime_error) << bad;
  }
}

// ---- diff_golden_tables --------------------------------------------------

GoldenTable table_of(const std::string& json) {
  return parse_json_table(json);
}

TEST(GoldenDiff, IdenticalTablesPass) {
  const std::string doc =
      R"([{"category": "DH", "CDPRF": 1.176, "note": "x"}])";
  const auto diff =
      diff_golden_tables(table_of(doc), table_of(doc), GoldenTolerance{});
  EXPECT_TRUE(diff.pass());
  EXPECT_EQ(diff.metrics_compared, 3u);
  EXPECT_NE(diff.report().find("OK"), std::string::npos);
}

TEST(GoldenDiff, OutOfToleranceNamesTheMetricAndRow) {
  const auto golden = table_of(R"([{"category": "AVG", "CDPRF": 1.176}])");
  const auto fresh = table_of(R"([{"category": "AVG", "CDPRF": 1.300}])");
  const auto diff = diff_golden_tables(golden, fresh, GoldenTolerance{});
  ASSERT_EQ(diff.mismatches.size(), 1u);
  EXPECT_EQ(diff.mismatches[0].metric, "CDPRF");
  EXPECT_EQ(diff.mismatches[0].row_key, "\"AVG\"");
  EXPECT_GT(diff.mismatches[0].rel_error, 0.09);
  EXPECT_NE(diff.report().find("CDPRF"), std::string::npos);
}

TEST(GoldenDiff, ToleranceScalesRelative) {
  const auto golden = table_of(R"([{"m": 100.0}])");
  const auto close = table_of(R"([{"m": 100.0001}])");

  GoldenTolerance strict;
  strict.rtol = 1e-9;
  EXPECT_FALSE(diff_golden_tables(golden, close, strict).pass());

  GoldenTolerance loose;
  loose.rtol = 1e-5;
  EXPECT_TRUE(diff_golden_tables(golden, close, loose).pass());
}

TEST(GoldenDiff, PerMetricOverrideBeatsDefault) {
  const auto golden = table_of(R"([{"noisy": 1.0, "exact": 1.0}])");
  const auto fresh = table_of(R"([{"noisy": 1.01, "exact": 1.01}])");

  GoldenTolerance tol;
  tol.rtol = 1e-9;
  tol.per_metric["noisy"] = 0.05;
  const auto diff = diff_golden_tables(golden, fresh, tol);
  ASSERT_EQ(diff.mismatches.size(), 1u);
  EXPECT_EQ(diff.mismatches[0].metric, "exact");
}

TEST(GoldenDiff, AbsoluteFloorCoversZeroMetrics) {
  const auto golden = table_of(R"([{"m": 0.0}])");
  const auto fresh = table_of(R"([{"m": 1e-13}])");
  // Pure relative comparison would fail (rel err 1.0); atol absorbs it.
  EXPECT_TRUE(
      diff_golden_tables(golden, fresh, GoldenTolerance{}).pass());
}

TEST(GoldenDiff, StructuralDriftFails) {
  const auto base = table_of(R"([{"a": 1.0, "b": 2.0}])");

  // Row count.
  const auto extra_row = table_of(R"([{"a": 1.0, "b": 2.0}, {"a": 1.0}])");
  auto diff = diff_golden_tables(base, extra_row, GoldenTolerance{});
  ASSERT_FALSE(diff.pass());
  EXPECT_EQ(diff.mismatches[0].metric, "<row count>");

  // Column count.
  const auto missing_col = table_of(R"([{"a": 1.0}])");
  diff = diff_golden_tables(base, missing_col, GoldenTolerance{});
  ASSERT_FALSE(diff.pass());
  EXPECT_EQ(diff.mismatches[0].metric, "<column count>");

  // Renamed metric.
  const auto renamed = table_of(R"([{"a": 1.0, "c": 2.0}])");
  EXPECT_FALSE(diff_golden_tables(base, renamed, GoldenTolerance{}).pass());

  // Type drift: a number that became a string (e.g. "nan").
  const auto nan_col = table_of(R"([{"a": 1.0, "b": "nan"}])");
  diff = diff_golden_tables(base, nan_col, GoldenTolerance{});
  ASSERT_FALSE(diff.pass());
  EXPECT_EQ(diff.mismatches[0].metric, "b");
}

TEST(GoldenDiff, StringMetricsCompareExactly) {
  const auto golden =
      table_of(R"([{"claim": "speedup", "measured": "17.6%"}])");
  const auto same =
      table_of(R"([{"claim": "speedup", "measured": "17.6%"}])");
  const auto drifted =
      table_of(R"([{"claim": "speedup", "measured": "3.1%"}])");

  EXPECT_TRUE(diff_golden_tables(golden, same, GoldenTolerance{}).pass());
  const auto diff = diff_golden_tables(golden, drifted, GoldenTolerance{});
  ASSERT_EQ(diff.mismatches.size(), 1u);
  EXPECT_EQ(diff.mismatches[0].metric, "measured");
}

}  // namespace
}  // namespace clusmt::harness
