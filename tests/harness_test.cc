#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <system_error>

#include "common/faultpoint.h"
#include "harness/presets.h"
#include "harness/run_cache.h"
#include "harness/runner.h"
#include "trace/workload.h"

namespace clusmt::harness {
namespace {

TEST(Presets, MatchPaperMethodology) {
  const core::SimConfig base = paper_baseline();
  EXPECT_EQ(base.iq_entries, 32);
  EXPECT_EQ(base.int_regs, 64);
  EXPECT_EQ(base.rob_entries, 128);
  EXPECT_FALSE(base.rf_unbounded());

  const core::SimConfig iq = iq_study_config(64);
  EXPECT_EQ(iq.iq_entries, 64);
  EXPECT_TRUE(iq.rf_unbounded());
  EXPECT_EQ(iq.effective_rob_entries(), 4096);

  const core::SimConfig rf = rf_study_config(128);
  EXPECT_EQ(rf.int_regs, 128);
  EXPECT_EQ(rf.fp_regs, 128);
}

TEST(Runner, DeterministicAcrossCalls) {
  const auto suite = trace::build_quick_suite(1, 1, 1);
  Runner runner(paper_baseline(), 4000, 1000);
  const RunResult a = runner.run_workload(suite[0]);
  const RunResult b = runner.run_workload(suite[0]);
  EXPECT_EQ(a.stats.committed_total(), b.stats.committed_total());
  EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
}

TEST(Runner, SuiteOrderMatchesInput) {
  const auto suite = trace::build_quick_suite(1, 1, 2);
  Runner runner(paper_baseline(), 2000, 500, 2);
  const auto results = runner.run_suite(suite);
  ASSERT_EQ(results.size(), suite.size());
  for (std::size_t i = 0; i < suite.size(); ++i) {
    EXPECT_EQ(results[i].workload, suite[i].name);
    EXPECT_EQ(results[i].category, suite[i].category);
    EXPECT_GT(results[i].throughput, 0.0);
  }
}

TEST(Runner, SingleThreadIpcCached) {
  const auto suite = trace::build_quick_suite(1, 1, 1);
  Runner runner(paper_baseline(), 3000, 1000);
  const double first = runner.single_thread_ipc(suite[0].threads[0]);
  const double second = runner.single_thread_ipc(suite[0].threads[0]);
  EXPECT_DOUBLE_EQ(first, second);
  EXPECT_GT(first, 0.0);
}

// Regression: the baseline cache used to key by workload *name*, so two
// distinct traces sharing a name silently served one trace's IPC for both.
// Content keying must give each its own baseline.
TEST(Runner, SingleThreadIpcKeyedByContentNotName) {
  const auto suite = trace::build_quick_suite(1, 1, 1);
  Runner runner(paper_baseline(), 3000, 1000);

  trace::TraceSpec ilp = suite[0].threads[0];
  trace::TraceSpec mem = ilp;  // same display name...
  mem.seed ^= 0x9e3779b97f4a7c15ull;
  mem.profile.dep_geo_p = 0.9;  // ...but a very different program
  mem.profile.chase_fraction = 0.3;
  ASSERT_EQ(ilp.id(), mem.id());

  const double ipc_ilp = runner.single_thread_ipc(ilp);
  const double ipc_mem = runner.single_thread_ipc(mem);
  EXPECT_GT(ipc_ilp, 0.0);
  EXPECT_GT(ipc_mem, 0.0);
  EXPECT_NE(ipc_ilp, ipc_mem);

  // And identical content under a different name shares the cached run.
  trace::TraceSpec alias = ilp;
  alias.profile.name = "alias-of-" + ilp.id();
  EXPECT_DOUBLE_EQ(runner.single_thread_ipc(alias), ipc_ilp);
}

TEST(Runner, FairnessInUnitInterval) {
  const auto suite = trace::build_quick_suite(3, 1, 1);
  Runner runner(paper_baseline(), 6000, 2000);
  const RunResult result = runner.run_workload(suite[0]);
  const double fair = runner.fairness_of(result, suite[0]);
  EXPECT_GT(fair, 0.0);
  EXPECT_LE(fair, 1.0);
}

TEST(Runner, RunSuiteWithFairnessFillsField) {
  const auto suite = trace::build_quick_suite(1, 1, 1);
  std::vector<trace::WorkloadSpec> two(suite.begin(),
                                       suite.begin() + std::min<std::size_t>(
                                                           2, suite.size()));
  Runner runner(paper_baseline(), 3000, 1000, 2);
  const auto results = runner.run_suite_with_fairness(two);
  for (const auto& r : results) {
    EXPECT_GT(r.fairness, 0.0);
    EXPECT_LE(r.fairness, 1.0);
  }
}

TEST(Runner, RejectsThreadCountMismatch) {
  trace::WorkloadSpec bad;
  bad.name = "bad";
  bad.threads.resize(1);  // config expects 2
  Runner runner(paper_baseline(), 1000);
  EXPECT_THROW((void)runner.run_workload(bad), std::invalid_argument);
}

TEST(ByCategory, AggregatesInDisplayOrderWithAvg) {
  const auto suite = trace::build_quick_suite(1, 1, 2);
  std::vector<double> metric(suite.size());
  for (std::size_t i = 0; i < metric.size(); ++i) {
    metric[i] = static_cast<double>(i + 1);
  }
  const auto rows = by_category(suite, metric);
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows.back().first, "AVG");
  double expected_avg = 0;
  for (double m : metric) expected_avg += m;
  expected_avg /= static_cast<double>(metric.size());
  EXPECT_NEAR(rows.back().second, expected_avg, 1e-12);
  // Categories appear in display order.
  const auto& order = trace::category_display_order();
  std::size_t cursor = 0;
  for (std::size_t r = 0; r + 1 < rows.size(); ++r) {
    while (cursor < order.size() && order[cursor] != rows[r].first) ++cursor;
    EXPECT_LT(cursor, order.size()) << "unexpected row " << rows[r].first;
  }
}

TEST(ByCategory, SizeMismatchThrows) {
  const auto suite = trace::build_quick_suite(1, 1, 1);
  EXPECT_THROW((void)by_category(suite, std::vector<double>(1)),
               std::invalid_argument);
}

TEST(RunCacheDegrade, ConsecutiveSaveFailuresDemoteTheStoreToReadOnly) {
  const std::string dir = ::testing::TempDir() + "clusmt_degrade_store";
  RunCache cache;
  cache.set_store_dir(dir);
  ASSERT_FALSE(cache.store_write_degraded());

  // Every spill fails, as on a full disk. One failure is not degradation
  // (a transient); kDegradeAfterSaveFailures consecutive ones are.
  faultpoint::arm("run_store.save", faultpoint::Mode::kError);
  const auto fill = [&](std::uint64_t from, std::uint64_t n) {
    for (std::uint64_t i = from; i < from + n; ++i) {
      (void)cache.get_or_run(RunKey{i, ~i}, [] { return RunResult{}; });
    }
  };
  fill(0, 1);
  EXPECT_FALSE(cache.store_write_degraded()) << "one failure is transient";
  EXPECT_EQ(cache.save_failures(), 1u);
  fill(1, RunCache::kDegradeAfterSaveFailures - 1);
  EXPECT_TRUE(cache.store_write_degraded());
  const std::uint64_t failures_at_degrade = cache.save_failures();

  // Degraded = memory-only: further cells compute fine, attempt no saves.
  faultpoint::disarm_all();  // the disk "recovers" — too late, we stopped
  fill(100, 3);
  EXPECT_EQ(cache.save_failures(), failures_at_degrade)
      << "degraded cache must stop attempting saves";
  EXPECT_TRUE(cache.store_write_degraded());
  EXPECT_EQ(cache.misses(),
            static_cast<std::uint64_t>(RunCache::kDegradeAfterSaveFailures) +
                3)
      << "every cell still computes and memoizes";

  // Re-attaching a store clears the demotion and saves flow again.
  cache.set_store_dir(dir);
  EXPECT_FALSE(cache.store_write_degraded());
  fill(200, 1);
  EXPECT_EQ(cache.save_failures(), failures_at_degrade)
      << "healthy disk: no new failures";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(RunCacheDegrade, RecoveryBetweenFailuresResetsTheStrikeCount) {
  const std::string dir = ::testing::TempDir() + "clusmt_flaky_store";
  RunCache cache;
  cache.set_store_dir(dir);

  std::uint64_t next = 0;
  const auto one = [&] {
    (void)cache.get_or_run(RunKey{next, ~next}, [] { return RunResult{}; });
    ++next;
  };
  // Alternate fail/succeed well past the threshold: never degrades,
  // because the failures are not consecutive.
  for (int i = 0; i < 2 * RunCache::kDegradeAfterSaveFailures; ++i) {
    faultpoint::arm("run_store.save", faultpoint::Mode::kError);
    one();
    faultpoint::disarm_all();
    one();
  }
  EXPECT_FALSE(cache.store_write_degraded());
  EXPECT_EQ(cache.save_failures(),
            static_cast<std::uint64_t>(2 * RunCache::kDegradeAfterSaveFailures));
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace clusmt::harness
