#include <gtest/gtest.h>

#include <array>

#include "steer/steering.h"

namespace clusmt::steer {
namespace {

TEST(Steering, FollowsDependenceVote) {
  Steering s(SteeringKind::kDependenceBalance, 2, 6);
  const std::array<int, 2> deps = {0, 2};
  const std::array<int, 2> occ = {0, 3};  // within threshold
  EXPECT_EQ(s.preferred(deps, occ), 1);
}

TEST(Steering, DependenceFreeGoesLeastLoaded) {
  Steering s(SteeringKind::kDependenceBalance, 2, 6);
  const std::array<int, 2> deps = {0, 0};
  const std::array<int, 2> occ = {5, 2};
  EXPECT_EQ(s.preferred(deps, occ), 1);
  EXPECT_EQ(s.stats().dependence_free, 1u);
}

TEST(Steering, TieVotesFallToBalance) {
  Steering s(SteeringKind::kDependenceBalance, 2, 6);
  const std::array<int, 2> deps = {1, 1};  // value replicated in both
  const std::array<int, 2> occ = {9, 4};
  EXPECT_EQ(s.preferred(deps, occ), 1);
}

TEST(Steering, BalanceOverrideBeyondThreshold) {
  Steering s(SteeringKind::kDependenceBalance, 2, 4);
  const std::array<int, 2> deps = {3, 0};
  const std::array<int, 2> occ_ok = {6, 2};   // diff 4: not above threshold
  EXPECT_EQ(s.preferred(deps, occ_ok), 0);
  const std::array<int, 2> occ_over = {7, 2};  // diff 5 > 4: override
  EXPECT_EQ(s.preferred(deps, occ_over), 1);
  EXPECT_EQ(s.stats().balance_overrides, 1u);
}

TEST(Steering, RoundRobinCycles) {
  Steering s(SteeringKind::kRoundRobin, 2);
  const std::array<int, 2> deps = {5, 0};  // ignored
  const std::array<int, 2> occ = {0, 0};
  EXPECT_EQ(s.preferred(deps, occ), 0);
  EXPECT_EQ(s.preferred(deps, occ), 1);
  EXPECT_EQ(s.preferred(deps, occ), 0);
}

TEST(Steering, LeastLoadedIgnoresDependences) {
  Steering s(SteeringKind::kLeastLoaded, 2);
  const std::array<int, 2> deps = {5, 0};
  const std::array<int, 2> occ = {8, 1};
  EXPECT_EQ(s.preferred(deps, occ), 1);
}

TEST(Steering, FourClusterVote) {
  Steering s(SteeringKind::kDependenceBalance, 4, 6);
  const std::array<int, 4> deps = {0, 1, 3, 1};
  const std::array<int, 4> occ = {0, 0, 2, 0};
  EXPECT_EQ(s.preferred(deps, occ), 2);
}

TEST(Steering, RejectsBadClusterCount) {
  EXPECT_THROW(Steering(SteeringKind::kRoundRobin, 0),
               std::invalid_argument);
  EXPECT_THROW(Steering(SteeringKind::kRoundRobin, kMaxClusters + 1),
               std::invalid_argument);
}

TEST(Steering, DecisionCountTracked) {
  Steering s(SteeringKind::kDependenceBalance, 2, 6);
  const std::array<int, 2> deps = {1, 0};
  const std::array<int, 2> occ = {0, 0};
  for (int i = 0; i < 5; ++i) (void)s.preferred(deps, occ);
  EXPECT_EQ(s.stats().decisions, 5u);
  s.reset_stats();
  EXPECT_EQ(s.stats().decisions, 0u);
}

}  // namespace
}  // namespace clusmt::steer
