#include <gtest/gtest.h>

#include "backend/cluster.h"
#include "backend/interconnect.h"
#include "backend/issue_queue.h"
#include "backend/ports.h"
#include "backend/regfile.h"

namespace clusmt::backend {
namespace {

TEST(RegisterFile, AllocateReleaseCycle) {
  RegisterFile rf(4);
  const int a = rf.allocate(0);
  const int b = rf.allocate(1);
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  EXPECT_NE(a, b);
  EXPECT_EQ(rf.used_by(0), 1);
  EXPECT_EQ(rf.used_by(1), 1);
  EXPECT_EQ(rf.free_count(), 2);
  rf.release(static_cast<std::int16_t>(a));
  EXPECT_EQ(rf.used_by(0), 0);
  EXPECT_EQ(rf.free_count(), 3);
}

TEST(RegisterFile, ExhaustionReturnsMinusOne) {
  RegisterFile rf(2);
  EXPECT_GE(rf.allocate(0), 0);
  EXPECT_GE(rf.allocate(0), 0);
  EXPECT_EQ(rf.allocate(0), -1);
  EXPECT_EQ(rf.stats().alloc_failures, 1u);
}

TEST(RegisterFile, FreshRegistersStartNotReady) {
  RegisterFile rf(4);
  const auto idx = static_cast<std::int16_t>(rf.allocate(0));
  EXPECT_FALSE(rf.ready(idx));
  rf.set_ready(idx);
  EXPECT_TRUE(rf.ready(idx));
  rf.release(idx);
  const auto again = static_cast<std::int16_t>(rf.allocate(1));
  EXPECT_EQ(again, idx);        // LIFO free list reuses the slot
  EXPECT_FALSE(rf.ready(again)); // readiness cleared on reallocation
}

TEST(RegisterFile, UnboundedMode) {
  RegisterFile rf(0);
  EXPECT_TRUE(rf.unbounded());
  for (int i = 0; i < 2000; ++i) ASSERT_GE(rf.allocate(0), 0);
  EXPECT_EQ(rf.used_by(0), 2000);
}

TEST(IssueQueue, InsertRemoveOccupancy) {
  IssueQueue iq(4);
  const int s0 = iq.insert(IqEntry{.tid = 0, .seq = 1});
  const int s1 = iq.insert(IqEntry{.tid = 1, .seq = 2});
  ASSERT_GE(s0, 0);
  ASSERT_GE(s1, 0);
  EXPECT_EQ(iq.occupancy(), 2);
  EXPECT_EQ(iq.occupancy_of(0), 1);
  EXPECT_EQ(iq.occupancy_of(1), 1);
  iq.remove(s0);
  EXPECT_EQ(iq.occupancy_of(0), 0);
  EXPECT_FALSE(iq.occupied(s0));
  EXPECT_TRUE(iq.occupied(s1));
}

TEST(IssueQueue, FullRejects) {
  IssueQueue iq(2);
  iq.insert(IqEntry{.tid = 0, .seq = 1});
  iq.insert(IqEntry{.tid = 0, .seq = 2});
  EXPECT_TRUE(iq.full());
  EXPECT_EQ(iq.insert(IqEntry{.tid = 0, .seq = 3}), -1);
}

/// Collects the merged age-ordered iteration into a vector.
std::vector<int> age_order(const IssueQueue& iq) {
  std::vector<int> order;
  IssueQueue::OrderedIter it = iq.age_iter();
  for (int slot = it.next(); slot != -1; slot = it.next()) {
    order.push_back(slot);
  }
  return order;
}

std::vector<int> ready_order(const IssueQueue& iq) {
  std::vector<int> order;
  IssueQueue::OrderedIter it = iq.ready_iter();
  for (int slot = it.next(); slot != -1; slot = it.next()) {
    order.push_back(slot);
  }
  return order;
}

TEST(IssueQueue, AgeOrderAcrossThreads) {
  IssueQueue iq(8);
  // Insert out of age order.
  const int s3 = iq.insert(IqEntry{.tid = 0, .seq = 30});
  const int s1 = iq.insert(IqEntry{.tid = 1, .seq = 10});
  const int s2 = iq.insert(IqEntry{.tid = 0, .seq = 20});
  EXPECT_EQ(age_order(iq), (std::vector<int>{s1, s2, s3}));
  // Same seq: lower thread id first.
  const int s4 = iq.insert(IqEntry{.tid = 1, .seq = 20});
  EXPECT_EQ(age_order(iq), (std::vector<int>{s1, s2, s4, s3}));
  EXPECT_TRUE(iq.validate());
}

TEST(IssueQueue, OrderMaintainedUnderChurn) {
  IssueQueue iq(16);
  std::uint64_t seq = 0;
  std::vector<int> slots;
  for (int i = 0; i < 16; ++i) {
    slots.push_back(iq.insert(IqEntry{.tid = 0, .seq = seq++}));
  }
  // Remove every other entry, insert new youngest ones.
  for (int i = 0; i < 16; i += 2) iq.remove(slots[i]);
  for (int i = 0; i < 8; ++i) iq.insert(IqEntry{.tid = 0, .seq = seq++});
  std::uint64_t last = 0;
  for (int slot : age_order(iq)) {
    EXPECT_GE(iq.entry(slot).seq, last);
    last = iq.entry(slot).seq;
  }
  EXPECT_TRUE(iq.validate());
}

TEST(IssueQueueWakeup, EntryWithReadySourcesIsReadyImmediately) {
  IssueQueue iq(8);
  const PhysRef reg{0, RegClass::kInt, 5};
  const int ready_slot =
      iq.insert(IqEntry{.tid = 0, .seq = 1, .src0 = reg}, /*src0_ready=*/true);
  const int no_dep_slot = iq.insert(IqEntry{.tid = 0, .seq = 2});
  EXPECT_TRUE(iq.entry_ready(ready_slot));
  EXPECT_TRUE(iq.entry_ready(no_dep_slot));
  EXPECT_EQ(iq.ready_count(), 2);
  EXPECT_EQ(iq.waiting_of(0), 0);
  EXPECT_EQ(ready_order(iq), (std::vector<int>{ready_slot, no_dep_slot}));
}

TEST(IssueQueueWakeup, WakeupMovesEntryOntoReadyListInAgeOrder) {
  IssueQueue iq(8);
  const PhysRef r1{0, RegClass::kInt, 3};
  const PhysRef r2{0, RegClass::kFp, 3};  // same index, other class
  const int young =
      iq.insert(IqEntry{.tid = 0, .seq = 20, .src0 = r1}, false);
  const int old = iq.insert(IqEntry{.tid = 0, .seq = 10, .src0 = r1}, false);
  const int fp = iq.insert(IqEntry{.tid = 1, .seq = 15, .src0 = r2}, false);
  EXPECT_EQ(iq.ready_count(), 0);
  EXPECT_EQ(iq.waiting_of(0), 2);
  EXPECT_EQ(iq.waiting_of(1), 1);

  iq.wakeup(RegClass::kInt, 3);  // must not wake the FP watcher
  EXPECT_EQ(iq.waiting_of(0), 0);
  EXPECT_EQ(iq.waiting_of(1), 1);
  EXPECT_FALSE(iq.entry_ready(fp));
  EXPECT_EQ(ready_order(iq), (std::vector<int>{old, young}));

  iq.wakeup(RegClass::kFp, 3);
  EXPECT_EQ(ready_order(iq), (std::vector<int>{old, fp, young}));
  EXPECT_TRUE(iq.validate());
}

TEST(IssueQueueWakeup, TwoSourceEntryNeedsBothProducers) {
  IssueQueue iq(8);
  const PhysRef a{0, RegClass::kInt, 1};
  const PhysRef b{0, RegClass::kInt, 2};
  const int slot = iq.insert(
      IqEntry{.tid = 0, .seq = 1, .src0 = a, .src1 = b}, false, false);
  EXPECT_FALSE(iq.entry_ready(slot));
  iq.wakeup(RegClass::kInt, 1);
  EXPECT_FALSE(iq.entry_ready(slot));
  EXPECT_EQ(iq.waiting_of(0), 1);
  iq.wakeup(RegClass::kInt, 2);
  EXPECT_TRUE(iq.entry_ready(slot));
  EXPECT_EQ(iq.waiting_of(0), 0);
  EXPECT_TRUE(iq.validate());
}

TEST(IssueQueueWakeup, RemoveTearsDownWatches) {
  IssueQueue iq(8);
  const PhysRef reg{0, RegClass::kInt, 7};
  const int a = iq.insert(IqEntry{.tid = 0, .seq = 1, .src0 = reg}, false);
  const int b = iq.insert(IqEntry{.tid = 0, .seq = 2, .src0 = reg}, false);
  const int c = iq.insert(IqEntry{.tid = 1, .seq = 3, .src0 = reg}, false);
  EXPECT_TRUE(iq.has_consumers(RegClass::kInt, 7));

  // Squash the middle consumer: the register's list must stay intact for
  // the survivors, and the squashed entry must not resurface on wakeup.
  iq.remove(b);
  EXPECT_EQ(iq.waiting_of(0), 1);
  EXPECT_TRUE(iq.validate());
  iq.wakeup(RegClass::kInt, 7);
  EXPECT_FALSE(iq.has_consumers(RegClass::kInt, 7));
  EXPECT_EQ(ready_order(iq), (std::vector<int>{a, c}));

  // Removing the remaining entries leaves a fully empty queue.
  iq.remove(a);
  iq.remove(c);
  EXPECT_EQ(iq.occupancy(), 0);
  EXPECT_EQ(iq.ready_count(), 0);
  EXPECT_TRUE(iq.validate());
}

TEST(IssueQueueWakeup, RemoveHeadAndTailConsumersUnlinksCleanly) {
  IssueQueue iq(8);
  const PhysRef reg{0, RegClass::kInt, 4};
  const int a = iq.insert(IqEntry{.tid = 0, .seq = 1, .src0 = reg}, false);
  const int b = iq.insert(IqEntry{.tid = 0, .seq = 2, .src0 = reg}, false);
  const int c = iq.insert(IqEntry{.tid = 0, .seq = 3, .src0 = reg}, false);
  iq.remove(c);  // list head (most recent watch)
  iq.remove(a);  // list tail
  EXPECT_TRUE(iq.validate());
  iq.wakeup(RegClass::kInt, 4);
  EXPECT_EQ(ready_order(iq), (std::vector<int>{b}));
  EXPECT_TRUE(iq.validate());
}

TEST(IssueQueueWakeup, SameRegisterOnBothSources) {
  IssueQueue iq(4);
  const PhysRef reg{0, RegClass::kInt, 9};
  const int slot = iq.insert(
      IqEntry{.tid = 0, .seq = 1, .src0 = reg, .src1 = reg}, false, false);
  EXPECT_EQ(iq.waiting_of(0), 1);  // one entry, not two watches' worth
  iq.wakeup(RegClass::kInt, 9);    // single completion satisfies both
  EXPECT_TRUE(iq.entry_ready(slot));
  EXPECT_TRUE(iq.validate());
}

TEST(Ports, CompatibilityMatrix) {
  EXPECT_TRUE(PortSet::compatible(0, trace::PortClass::kInt));
  EXPECT_TRUE(PortSet::compatible(1, trace::PortClass::kInt));
  EXPECT_TRUE(PortSet::compatible(2, trace::PortClass::kInt));
  EXPECT_TRUE(PortSet::compatible(0, trace::PortClass::kFpSimd));
  EXPECT_TRUE(PortSet::compatible(1, trace::PortClass::kFpSimd));
  EXPECT_FALSE(PortSet::compatible(2, trace::PortClass::kFpSimd));
  EXPECT_FALSE(PortSet::compatible(0, trace::PortClass::kMem));
  EXPECT_FALSE(PortSet::compatible(1, trace::PortClass::kMem));
  EXPECT_TRUE(PortSet::compatible(2, trace::PortClass::kMem));
}

TEST(Ports, OneMemPortPerCycle) {
  PortSet ports;
  ports.new_cycle();
  EXPECT_TRUE(ports.try_book(trace::PortClass::kMem));
  EXPECT_FALSE(ports.try_book(trace::PortClass::kMem));
  ports.new_cycle();
  EXPECT_TRUE(ports.try_book(trace::PortClass::kMem));
}

TEST(Ports, IntPrefersNonMemPorts) {
  PortSet ports;
  ports.new_cycle();
  EXPECT_TRUE(ports.try_book(trace::PortClass::kInt));   // takes P0
  EXPECT_TRUE(ports.try_book(trace::PortClass::kInt));   // takes P1
  EXPECT_TRUE(ports.try_book(trace::PortClass::kMem));   // P2 still free
  EXPECT_FALSE(ports.try_book(trace::PortClass::kFpSimd));
}

TEST(Ports, ThreeIntMaxPerCycle) {
  PortSet ports;
  ports.new_cycle();
  EXPECT_TRUE(ports.try_book(trace::PortClass::kInt));
  EXPECT_TRUE(ports.try_book(trace::PortClass::kInt));
  EXPECT_TRUE(ports.try_book(trace::PortClass::kInt));
  EXPECT_FALSE(ports.try_book(trace::PortClass::kInt));
}

TEST(Ports, FreeCompatibleCounts) {
  PortSet ports;
  ports.new_cycle();
  EXPECT_EQ(ports.free_compatible(trace::PortClass::kInt), 3);
  EXPECT_EQ(ports.free_compatible(trace::PortClass::kFpSimd), 2);
  EXPECT_EQ(ports.free_compatible(trace::PortClass::kMem), 1);
  (void)ports.try_book(trace::PortClass::kFpSimd);
  EXPECT_EQ(ports.free_compatible(trace::PortClass::kFpSimd), 1);
  EXPECT_EQ(ports.free_compatible(trace::PortClass::kInt), 2);
}

TEST(Interconnect, BandwidthPerCycle) {
  Interconnect net(2, 1);
  net.new_cycle();
  EXPECT_TRUE(net.try_acquire());
  EXPECT_TRUE(net.try_acquire());
  EXPECT_FALSE(net.try_acquire());
  EXPECT_EQ(net.stats().transfers, 2u);
  EXPECT_EQ(net.stats().denied, 1u);
  net.new_cycle();
  EXPECT_TRUE(net.try_acquire());
}

TEST(Cluster, BundlesComponents) {
  Cluster cluster(ClusterConfig{.iq_entries = 16, .int_registers = 8,
                                .fp_registers = 4});
  EXPECT_EQ(cluster.iq().capacity(), 16);
  EXPECT_EQ(cluster.rf(RegClass::kInt).capacity(), 8);
  EXPECT_EQ(cluster.rf(RegClass::kFp).capacity(), 4);
}

}  // namespace
}  // namespace clusmt::backend
