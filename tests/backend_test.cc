#include <gtest/gtest.h>

#include "backend/cluster.h"
#include "backend/interconnect.h"
#include "backend/issue_queue.h"
#include "backend/ports.h"
#include "backend/regfile.h"

namespace clusmt::backend {
namespace {

TEST(RegisterFile, AllocateReleaseCycle) {
  RegisterFile rf(4);
  const int a = rf.allocate(0);
  const int b = rf.allocate(1);
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  EXPECT_NE(a, b);
  EXPECT_EQ(rf.used_by(0), 1);
  EXPECT_EQ(rf.used_by(1), 1);
  EXPECT_EQ(rf.free_count(), 2);
  rf.release(static_cast<std::int16_t>(a));
  EXPECT_EQ(rf.used_by(0), 0);
  EXPECT_EQ(rf.free_count(), 3);
}

TEST(RegisterFile, ExhaustionReturnsMinusOne) {
  RegisterFile rf(2);
  EXPECT_GE(rf.allocate(0), 0);
  EXPECT_GE(rf.allocate(0), 0);
  EXPECT_EQ(rf.allocate(0), -1);
  EXPECT_EQ(rf.stats().alloc_failures, 1u);
}

TEST(RegisterFile, FreshRegistersStartNotReady) {
  RegisterFile rf(4);
  const auto idx = static_cast<std::int16_t>(rf.allocate(0));
  EXPECT_FALSE(rf.ready(idx));
  rf.set_ready(idx);
  EXPECT_TRUE(rf.ready(idx));
  rf.release(idx);
  const auto again = static_cast<std::int16_t>(rf.allocate(1));
  EXPECT_EQ(again, idx);        // LIFO free list reuses the slot
  EXPECT_FALSE(rf.ready(again)); // readiness cleared on reallocation
}

TEST(RegisterFile, UnboundedMode) {
  RegisterFile rf(0);
  EXPECT_TRUE(rf.unbounded());
  for (int i = 0; i < 2000; ++i) ASSERT_GE(rf.allocate(0), 0);
  EXPECT_EQ(rf.used_by(0), 2000);
}

TEST(IssueQueue, InsertRemoveOccupancy) {
  IssueQueue iq(4);
  const int s0 = iq.insert(IqEntry{.tid = 0, .seq = 1});
  const int s1 = iq.insert(IqEntry{.tid = 1, .seq = 2});
  ASSERT_GE(s0, 0);
  ASSERT_GE(s1, 0);
  EXPECT_EQ(iq.occupancy(), 2);
  EXPECT_EQ(iq.occupancy_of(0), 1);
  EXPECT_EQ(iq.occupancy_of(1), 1);
  iq.remove(s0);
  EXPECT_EQ(iq.occupancy_of(0), 0);
  EXPECT_FALSE(iq.occupied(s0));
  EXPECT_TRUE(iq.occupied(s1));
}

TEST(IssueQueue, FullRejects) {
  IssueQueue iq(2);
  iq.insert(IqEntry{.tid = 0, .seq = 1});
  iq.insert(IqEntry{.tid = 0, .seq = 2});
  EXPECT_TRUE(iq.full());
  EXPECT_EQ(iq.insert(IqEntry{.tid = 0, .seq = 3}), -1);
}

TEST(IssueQueue, AgeOrderAcrossThreads) {
  IssueQueue iq(8);
  // Insert out of age order.
  const int s3 = iq.insert(IqEntry{.tid = 0, .seq = 30});
  const int s1 = iq.insert(IqEntry{.tid = 1, .seq = 10});
  const int s2 = iq.insert(IqEntry{.tid = 0, .seq = 20});
  const auto& order = iq.slots_by_age();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], s1);
  EXPECT_EQ(order[1], s2);
  EXPECT_EQ(order[2], s3);
  // Same seq: lower thread id first.
  const int s4 = iq.insert(IqEntry{.tid = 1, .seq = 20});
  const auto& order2 = iq.slots_by_age();
  ASSERT_EQ(order2.size(), 4u);
  EXPECT_EQ(order2[1], s2);
  EXPECT_EQ(order2[2], s4);
}

TEST(IssueQueue, OrderMaintainedUnderChurn) {
  IssueQueue iq(16);
  std::uint64_t seq = 0;
  std::vector<int> slots;
  for (int i = 0; i < 16; ++i) {
    slots.push_back(iq.insert(IqEntry{.tid = 0, .seq = seq++}));
  }
  // Remove every other entry, insert new youngest ones.
  for (int i = 0; i < 16; i += 2) iq.remove(slots[i]);
  for (int i = 0; i < 8; ++i) iq.insert(IqEntry{.tid = 0, .seq = seq++});
  std::uint64_t last = 0;
  for (int slot : iq.slots_by_age()) {
    EXPECT_GE(iq.entry(slot).seq, last);
    last = iq.entry(slot).seq;
  }
}

TEST(Ports, CompatibilityMatrix) {
  EXPECT_TRUE(PortSet::compatible(0, trace::PortClass::kInt));
  EXPECT_TRUE(PortSet::compatible(1, trace::PortClass::kInt));
  EXPECT_TRUE(PortSet::compatible(2, trace::PortClass::kInt));
  EXPECT_TRUE(PortSet::compatible(0, trace::PortClass::kFpSimd));
  EXPECT_TRUE(PortSet::compatible(1, trace::PortClass::kFpSimd));
  EXPECT_FALSE(PortSet::compatible(2, trace::PortClass::kFpSimd));
  EXPECT_FALSE(PortSet::compatible(0, trace::PortClass::kMem));
  EXPECT_FALSE(PortSet::compatible(1, trace::PortClass::kMem));
  EXPECT_TRUE(PortSet::compatible(2, trace::PortClass::kMem));
}

TEST(Ports, OneMemPortPerCycle) {
  PortSet ports;
  ports.new_cycle();
  EXPECT_TRUE(ports.try_book(trace::PortClass::kMem));
  EXPECT_FALSE(ports.try_book(trace::PortClass::kMem));
  ports.new_cycle();
  EXPECT_TRUE(ports.try_book(trace::PortClass::kMem));
}

TEST(Ports, IntPrefersNonMemPorts) {
  PortSet ports;
  ports.new_cycle();
  EXPECT_TRUE(ports.try_book(trace::PortClass::kInt));   // takes P0
  EXPECT_TRUE(ports.try_book(trace::PortClass::kInt));   // takes P1
  EXPECT_TRUE(ports.try_book(trace::PortClass::kMem));   // P2 still free
  EXPECT_FALSE(ports.try_book(trace::PortClass::kFpSimd));
}

TEST(Ports, ThreeIntMaxPerCycle) {
  PortSet ports;
  ports.new_cycle();
  EXPECT_TRUE(ports.try_book(trace::PortClass::kInt));
  EXPECT_TRUE(ports.try_book(trace::PortClass::kInt));
  EXPECT_TRUE(ports.try_book(trace::PortClass::kInt));
  EXPECT_FALSE(ports.try_book(trace::PortClass::kInt));
}

TEST(Ports, FreeCompatibleCounts) {
  PortSet ports;
  ports.new_cycle();
  EXPECT_EQ(ports.free_compatible(trace::PortClass::kInt), 3);
  EXPECT_EQ(ports.free_compatible(trace::PortClass::kFpSimd), 2);
  EXPECT_EQ(ports.free_compatible(trace::PortClass::kMem), 1);
  (void)ports.try_book(trace::PortClass::kFpSimd);
  EXPECT_EQ(ports.free_compatible(trace::PortClass::kFpSimd), 1);
  EXPECT_EQ(ports.free_compatible(trace::PortClass::kInt), 2);
}

TEST(Interconnect, BandwidthPerCycle) {
  Interconnect net(2, 1);
  net.new_cycle();
  EXPECT_TRUE(net.try_acquire());
  EXPECT_TRUE(net.try_acquire());
  EXPECT_FALSE(net.try_acquire());
  EXPECT_EQ(net.stats().transfers, 2u);
  EXPECT_EQ(net.stats().denied, 1u);
  net.new_cycle();
  EXPECT_TRUE(net.try_acquire());
}

TEST(Cluster, BundlesComponents) {
  Cluster cluster(ClusterConfig{.iq_entries = 16, .int_registers = 8,
                                .fp_registers = 4});
  EXPECT_EQ(cluster.iq().capacity(), 16);
  EXPECT_EQ(cluster.rf(RegClass::kInt).capacity(), 8);
  EXPECT_EQ(cluster.rf(RegClass::kFp).capacity(), 4);
}

}  // namespace
}  // namespace clusmt::backend
