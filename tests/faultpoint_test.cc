// Fault-injection registry (common/faultpoint.h) and retry backoff
// (common/backoff.h) units: arming/disarming, deterministic probabilistic
// firing, max_fires retirement, CLUSMT_FAULTS-style schedule parsing
// (including rejection of malformed entries), fire counters, and the
// backoff ramp's bounds/reset behaviour. Crash and delay modes are
// exercised end-to-end by tests/chaos_test.cc; here only their parsing is
// covered (firing them would kill or stall the test binary).
#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <string>

#include "common/backoff.h"
#include "common/faultpoint.h"

namespace clusmt {
namespace {

class FaultPointTest : public ::testing::Test {
 protected:
  void SetUp() override { faultpoint::disarm_all(); }
  void TearDown() override { faultpoint::disarm_all(); }
};

TEST_F(FaultPointTest, UnarmedPointsAreInert) {
  EXPECT_EQ(faultpoint::armed_count(), 0u);
  EXPECT_EQ(faultpoint::maybe_fail("test.never_armed"),
            faultpoint::Mode::kOff);
  EXPECT_FALSE(faultpoint::inject_error("test.never_armed"));
  EXPECT_EQ(faultpoint::fires("test.never_armed"), 0u);
  EXPECT_EQ(faultpoint::total_fires(), 0u);
}

TEST_F(FaultPointTest, CertainErrorFiresEveryTimeAndCounts) {
  faultpoint::arm("test.err", faultpoint::Mode::kError);
  EXPECT_EQ(faultpoint::armed_count(), 1u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(faultpoint::maybe_fail("test.err"), faultpoint::Mode::kError);
  }
  EXPECT_EQ(faultpoint::fires("test.err"), 5u);
  EXPECT_EQ(faultpoint::total_fires(), 5u);
  // Other points remain inert while one is armed.
  EXPECT_EQ(faultpoint::maybe_fail("test.other"), faultpoint::Mode::kOff);
}

TEST_F(FaultPointTest, InjectErrorCoversAllErrorLikeModes) {
  for (const faultpoint::Mode mode :
       {faultpoint::Mode::kError, faultpoint::Mode::kPartial,
        faultpoint::Mode::kEnospc}) {
    faultpoint::disarm_all();
    faultpoint::arm("test.like_err", mode);
    EXPECT_TRUE(faultpoint::inject_error("test.like_err"))
        << static_cast<int>(mode);
  }
}

TEST_F(FaultPointTest, ProbabilityZeroNeverFiresProbabilityOneAlwaysDoes) {
  faultpoint::arm("test.p0", faultpoint::Mode::kError, 0.0);
  faultpoint::arm("test.p1", faultpoint::Mode::kError, 1.0);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(faultpoint::maybe_fail("test.p0"), faultpoint::Mode::kOff);
    EXPECT_EQ(faultpoint::maybe_fail("test.p1"), faultpoint::Mode::kError);
  }
  EXPECT_EQ(faultpoint::fires("test.p0"), 0u);
  EXPECT_EQ(faultpoint::fires("test.p1"), 200u);
}

TEST_F(FaultPointTest, FractionalProbabilityFiresSometimesDeterministically) {
  const auto run_schedule = [] {
    faultpoint::disarm_all();
    faultpoint::arm("test.half", faultpoint::Mode::kError, 0.5, /*seed=*/42);
    std::string pattern;
    for (int i = 0; i < 64; ++i) {
      pattern += faultpoint::maybe_fail("test.half") ==
                         faultpoint::Mode::kError
                     ? '1'
                     : '0';
    }
    return pattern;
  };
  const std::string first = run_schedule();
  EXPECT_NE(first.find('1'), std::string::npos) << first;
  EXPECT_NE(first.find('0'), std::string::npos) << first;
  // Same (point, seed, pid) → same stream: re-arming replays the pattern.
  EXPECT_EQ(first, run_schedule());
}

TEST_F(FaultPointTest, MaxFiresRetiresThePoint) {
  faultpoint::arm("test.twice",
                  {faultpoint::Mode::kError, 1.0, 0, /*max_fires=*/2, 20});
  EXPECT_EQ(faultpoint::maybe_fail("test.twice"), faultpoint::Mode::kError);
  EXPECT_EQ(faultpoint::maybe_fail("test.twice"), faultpoint::Mode::kError);
  EXPECT_EQ(faultpoint::maybe_fail("test.twice"), faultpoint::Mode::kOff)
      << "retired after max_fires";
  EXPECT_EQ(faultpoint::fires("test.twice"), 2u);
  EXPECT_EQ(faultpoint::armed_count(), 0u) << "retired points are not armed";
}

TEST_F(FaultPointTest, DisarmStopsFiring) {
  faultpoint::arm("test.d", faultpoint::Mode::kError);
  EXPECT_EQ(faultpoint::maybe_fail("test.d"), faultpoint::Mode::kError);
  EXPECT_TRUE(faultpoint::disarm("test.d"));
  EXPECT_EQ(faultpoint::maybe_fail("test.d"), faultpoint::Mode::kOff);
  EXPECT_FALSE(faultpoint::disarm("test.d")) << "already disarmed";
  // Re-arming with kOff is equivalent to disarming.
  faultpoint::arm("test.d", faultpoint::Mode::kError);
  faultpoint::arm("test.d", faultpoint::Mode::kOff);
  EXPECT_EQ(faultpoint::maybe_fail("test.d"), faultpoint::Mode::kOff);
}

TEST_F(FaultPointTest, ArmFromSpecParsesFullSchedules) {
  ASSERT_TRUE(faultpoint::arm_from_spec(
      "run_store.load:error:0.5:7;fsio.write:partial, "
      "spool.ack:error:1:0:3:5"));
  EXPECT_EQ(faultpoint::armed_count(), 3u);
  EXPECT_EQ(faultpoint::maybe_fail("fsio.write"), faultpoint::Mode::kPartial);
  // spool.ack carries max_fires=3.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(faultpoint::maybe_fail("spool.ack"), faultpoint::Mode::kError);
  }
  EXPECT_EQ(faultpoint::maybe_fail("spool.ack"), faultpoint::Mode::kOff);
}

TEST_F(FaultPointTest, ArmFromSpecToleratesEmptyAndRejectsMalformed) {
  EXPECT_TRUE(faultpoint::arm_from_spec(""));
  EXPECT_TRUE(faultpoint::arm_from_spec("  ,  ;  "));
  EXPECT_EQ(faultpoint::armed_count(), 0u);
  EXPECT_FALSE(faultpoint::arm_from_spec("lonely_point_no_mode"));
  EXPECT_FALSE(faultpoint::arm_from_spec("p:not_a_mode"));
  EXPECT_FALSE(faultpoint::arm_from_spec("p:error:not_a_number"));
  EXPECT_FALSE(faultpoint::arm_from_spec(":error"));
  // Crash/delay parse (their firing is covered by chaos_test).
  EXPECT_TRUE(faultpoint::arm_from_spec("p1:crash:0.0;p2:delay:0.0"));
  EXPECT_EQ(faultpoint::armed_count(), 2u);
}

TEST_F(FaultPointTest, ParseModeNamesEveryMode) {
  faultpoint::Mode mode;
  EXPECT_TRUE(faultpoint::parse_mode("error", mode));
  EXPECT_EQ(mode, faultpoint::Mode::kError);
  EXPECT_TRUE(faultpoint::parse_mode("partial", mode));
  EXPECT_EQ(mode, faultpoint::Mode::kPartial);
  EXPECT_TRUE(faultpoint::parse_mode("crash", mode));
  EXPECT_EQ(mode, faultpoint::Mode::kCrash);
  EXPECT_TRUE(faultpoint::parse_mode("delay", mode));
  EXPECT_EQ(mode, faultpoint::Mode::kDelay);
  EXPECT_TRUE(faultpoint::parse_mode("enospc", mode));
  EXPECT_EQ(mode, faultpoint::Mode::kEnospc);
  EXPECT_TRUE(faultpoint::parse_mode("off", mode));
  EXPECT_EQ(mode, faultpoint::Mode::kOff);
  EXPECT_FALSE(faultpoint::parse_mode("sigsegv", mode));
  EXPECT_FALSE(faultpoint::parse_mode("", mode));
}

// ---- Backoff -------------------------------------------------------------

TEST(BackoffTest, DelaysRampExponentiallyWithinBounds) {
  BackoffOptions options;
  options.initial = std::chrono::milliseconds(100);
  options.max = std::chrono::milliseconds(1000);
  options.multiplier = 2.0;
  options.jitter = 0.25;
  Backoff backoff(options, /*seed=*/7);
  std::chrono::milliseconds previous{0};
  for (int i = 0; i < 8; ++i) {
    const auto delay = backoff.next();
    EXPECT_GE(delay.count(), options.initial.count() / 2) << "retry " << i;
    EXPECT_LE(delay.count(), options.max.count()) << "retry " << i;
    previous = delay;
  }
  EXPECT_EQ(backoff.retries(), 8);
  // Deep into the ramp the base has saturated at max: the jittered delay
  // must stay within max*(1-jitter) .. max.
  EXPECT_GE(previous.count(),
            static_cast<std::int64_t>(1000 * (1.0 - options.jitter)) - 1);
}

TEST(BackoffTest, JitterSpreadsDelays) {
  BackoffOptions options;
  options.initial = std::chrono::milliseconds(1000);
  options.max = std::chrono::milliseconds(1000);
  options.jitter = 0.5;
  Backoff backoff(options, /*seed=*/3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 16; ++i) seen.insert(backoff.next().count());
  EXPECT_GT(seen.size(), 1u) << "jitter must not collapse to one value";
}

TEST(BackoffTest, ResetReturnsToInitialDelay) {
  BackoffOptions options;
  options.initial = std::chrono::milliseconds(50);
  options.max = std::chrono::milliseconds(5000);
  options.jitter = 0.0;  // deterministic delays for exact comparison
  Backoff backoff(options, /*seed=*/1);
  const auto first = backoff.next();
  EXPECT_EQ(first.count(), 50);
  (void)backoff.next();
  (void)backoff.next();
  EXPECT_EQ(backoff.retries(), 3);
  backoff.reset();
  EXPECT_EQ(backoff.retries(), 0);
  EXPECT_EQ(backoff.next().count(), 50) << "reset restarts the ramp";
  EXPECT_EQ(backoff.next().count(), 100);
}

}  // namespace
}  // namespace clusmt
