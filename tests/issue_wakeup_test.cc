// Differential coverage for the event-driven wakeup issue path: the
// kWakeup model must be bit-identical to the kScanReference oracle (the
// original probe-every-slot-every-cycle scan) across schemes, thread
// counts, bounded/unbounded register files and squash-heavy traces — and
// the incrementally-maintained structures (wakeup CAM, PipelineView
// counters) must survive squash storms and cross-cluster copy traffic.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/simulator.h"
#include "harness/presets.h"
#include "policy/policy.h"
#include "trace/workload.h"

namespace clusmt::core {
namespace {

/// Field-by-field SimStats equality with a readable failure message.
void expect_stats_equal(const SimStats& a, const SimStats& b,
                        const std::string& label) {
#define CLUSMT_EXPECT_FIELD(field) \
  EXPECT_EQ(a.field, b.field) << label << ": SimStats::" #field " diverged"
  CLUSMT_EXPECT_FIELD(cycles);
  for (int t = 0; t < kMaxThreads; ++t) CLUSMT_EXPECT_FIELD(committed[t]);
  CLUSMT_EXPECT_FIELD(committed_copies);
  CLUSMT_EXPECT_FIELD(committed_branches);
  CLUSMT_EXPECT_FIELD(committed_loads);
  CLUSMT_EXPECT_FIELD(committed_stores);
  CLUSMT_EXPECT_FIELD(renamed_uops);
  CLUSMT_EXPECT_FIELD(copies_created);
  CLUSMT_EXPECT_FIELD(rename_cycles);
  CLUSMT_EXPECT_FIELD(rename_blocked_cycles);
  CLUSMT_EXPECT_FIELD(rename_block_iq);
  CLUSMT_EXPECT_FIELD(rename_block_rf);
  CLUSMT_EXPECT_FIELD(rename_block_rob);
  CLUSMT_EXPECT_FIELD(rename_block_mob);
  CLUSMT_EXPECT_FIELD(iq_pref_stall_events);
  CLUSMT_EXPECT_FIELD(non_preferred_dispatches);
  CLUSMT_EXPECT_FIELD(issued_uops);
  CLUSMT_EXPECT_FIELD(cycles_with_issue);
  for (int i = 0; i < 2; ++i) {
    for (int k = 0; k < trace::kNumPortClasses; ++k) {
      CLUSMT_EXPECT_FIELD(imbalance_events[i][k]);
    }
  }
  CLUSMT_EXPECT_FIELD(squashed_uops);
  CLUSMT_EXPECT_FIELD(branches_resolved);
  CLUSMT_EXPECT_FIELD(mispredicts_resolved);
  CLUSMT_EXPECT_FIELD(policy_flushes);
  CLUSMT_EXPECT_FIELD(load_l2_misses);
  CLUSMT_EXPECT_FIELD(store_l2_misses);
  CLUSMT_EXPECT_FIELD(load_forwards);
#undef CLUSMT_EXPECT_FIELD
}

/// Pool traces with an optional squash-heavy override: a high fraction of
/// hard-to-predict branches keeps the recovery path (IQ teardown on
/// squash) permanently busy.
std::vector<trace::TraceSpec> make_threads(int num_threads, bool squash_heavy,
                                           std::uint64_t seed) {
  const trace::TracePool pool(seed);
  std::vector<trace::TraceSpec> threads;
  for (int t = 0; t < num_threads; ++t) {
    trace::TraceSpec spec =
        pool.get(t % 2 == 0 ? trace::Category::kISpec00
                            : trace::Category::kFSpec00,
                 t % 2 == 0 ? trace::TraceKind::kIlp : trace::TraceKind::kMem,
                 t % trace::TracePool::kVariantsPerKind);
    if (squash_heavy) {
      spec.profile.hard_branch_fraction = 0.5;
      spec.profile.name += "+squashy";
    }
    threads.push_back(std::move(spec));
  }
  return threads;
}

SimStats run_once(const SimConfig& config, Simulator::IssueModel model,
                  const std::vector<trace::TraceSpec>& threads, Cycle warmup,
                  Cycle cycles) {
  Simulator sim(config);
  sim.set_issue_model(model);
  for (std::size_t t = 0; t < threads.size(); ++t) {
    sim.attach_thread(static_cast<ThreadId>(t), threads[t]);
  }
  sim.run(warmup);
  sim.reset_stats();
  sim.run(cycles);
  // The incremental PipelineView must agree with a from-scratch rebuild
  // at the end of every run, and the wakeup CAM bookkeeping must be
  // internally consistent, in both issue models.
  EXPECT_TRUE(sim.validate_view());
  for (int c = 0; c < config.num_clusters; ++c) {
    EXPECT_TRUE(sim.cluster(c).iq().validate());
  }
  return sim.stats();
}

TEST(IssueWakeupDifferential, MatchesScanReferenceAcrossGrid) {
  struct MachineCase {
    const char* name;
    SimConfig config;
    int threads;
  };
  const MachineCase machines[] = {
      {"bounded-2t", harness::rf_study_config(64), 2},
      {"unbounded-2t", harness::iq_study_config(32), 2},
      {"smt4", harness::smt4_baseline(), 4},
  };
  const policy::PolicyKind schemes[] = {
      policy::PolicyKind::kIcount, policy::PolicyKind::kCssp,
      policy::PolicyKind::kCdprf, policy::PolicyKind::kFlushPlus};

  for (const MachineCase& machine : machines) {
    for (const policy::PolicyKind scheme : schemes) {
      for (const bool squash_heavy : {false, true}) {
        SimConfig config = machine.config;
        config.policy = scheme;
        const auto threads =
            make_threads(machine.threads, squash_heavy, /*seed=*/7);
        const std::string label =
            std::string(machine.name) + "/" +
            std::string(policy::policy_kind_name(scheme)) +
            (squash_heavy ? "/squash-heavy" : "/plain");
        const SimStats wakeup =
            run_once(config, Simulator::IssueModel::kWakeup, threads,
                     /*warmup=*/1000, /*cycles=*/5000);
        const SimStats reference =
            run_once(config, Simulator::IssueModel::kScanReference, threads,
                     /*warmup=*/1000, /*cycles=*/5000);
        expect_stats_equal(wakeup, reference, label);
      }
    }
  }
}

TEST(IssueWakeupDifferential, ConsumerTeardownSurvivesSquashStorm) {
  // Squash-heavy run, checked in small steps: every chunk boundary the
  // wakeup CAM (watch lists, ready lists, waiting counters) and the
  // incremental view must still cross-check — a leaked watch from a
  // squashed entry fails validate() loudly here.
  SimConfig config = harness::rf_study_config(64);
  config.policy = policy::PolicyKind::kIcount;
  Simulator sim(config);
  const auto threads = make_threads(2, /*squash_heavy=*/true, /*seed=*/11);
  for (int t = 0; t < 2; ++t) sim.attach_thread(t, threads[t]);
  for (int chunk = 0; chunk < 80; ++chunk) {
    sim.run(50);
    ASSERT_TRUE(sim.validate_view()) << "chunk " << chunk;
    for (int c = 0; c < config.num_clusters; ++c) {
      ASSERT_TRUE(sim.cluster(c).iq().validate())
          << "chunk " << chunk << " cluster " << c;
    }
  }
  EXPECT_GT(sim.stats().squashed_uops, 0u)
      << "squash-heavy trace never squashed; the storm test tested nothing";
}

TEST(IssueWakeupDifferential, CrossClusterCopyArrivalWakesConsumers) {
  // Dependence steering on a two-thread mix creates cross-cluster copies;
  // each consumer sleeps in the wakeup CAM until the copy's kCopyArrive
  // event marks the replica ready. If arrival-driven wakeup were broken,
  // consumers would deadlock (watchdog) or copies would never commit.
  SimConfig config = harness::rf_study_config(64);
  Simulator sim(config);
  const auto threads = make_threads(2, /*squash_heavy=*/false, /*seed=*/3);
  for (int t = 0; t < 2; ++t) sim.attach_thread(t, threads[t]);
  sim.run(6000);
  EXPECT_GT(sim.stats().copies_created, 0u);
  EXPECT_GT(sim.stats().committed_copies, 0u);
  EXPECT_TRUE(sim.validate_view());
  for (int c = 0; c < config.num_clusters; ++c) {
    EXPECT_TRUE(sim.cluster(c).iq().validate());
  }
}

}  // namespace
}  // namespace clusmt::core
