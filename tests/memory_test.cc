#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "memory/cache.h"
#include "memory/hierarchy.h"
#include "memory/mob.h"
#include "memory/tlb.h"

namespace clusmt::memory {
namespace {

TEST(Cache, MissThenHit) {
  SetAssocCache cache(1024, 2, 64);
  EXPECT_FALSE(cache.access(0x1000, false));
  EXPECT_TRUE(cache.access(0x1000, false));
  EXPECT_TRUE(cache.access(0x1038, false));  // same 64B line
  EXPECT_FALSE(cache.access(0x1040, false)); // next line
  EXPECT_EQ(cache.stats().accesses, 4u);
  EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(Cache, LruEviction) {
  // 2 sets x 2 ways x 64B lines = 256B. Addresses with bit 6 select the set.
  SetAssocCache cache(256, 2, 64);
  cache.access(0x0000, false);  // set 0, way A
  cache.access(0x0080, false);  // set 0, way B (0x80 = 2 lines)
  cache.access(0x0000, false);  // touch A: B becomes LRU
  cache.access(0x0100, false);  // set 0: evicts B
  EXPECT_TRUE(cache.probe(0x0000));
  EXPECT_FALSE(cache.probe(0x0080));
  EXPECT_TRUE(cache.probe(0x0100));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(Cache, DirtyEvictionTracked) {
  SetAssocCache cache(256, 2, 64);
  cache.access(0x0000, true);   // dirty
  cache.access(0x0080, false);
  cache.access(0x0100, false);  // evicts dirty 0x0000 (LRU)
  EXPECT_EQ(cache.stats().dirty_evictions, 1u);
}

TEST(Cache, ProbeDoesNotAllocateOrTouch) {
  SetAssocCache cache(256, 2, 64);
  EXPECT_FALSE(cache.probe(0x2000));
  EXPECT_FALSE(cache.access(0x2000, false));  // still a miss
  EXPECT_EQ(cache.stats().accesses, 1u);      // probe not counted
}

TEST(Cache, FlushInvalidates) {
  SetAssocCache cache(1024, 2, 64);
  cache.access(0x40, false);
  cache.flush();
  EXPECT_FALSE(cache.probe(0x40));
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(SetAssocCache(1000, 2, 64), std::invalid_argument);
  EXPECT_THROW(SetAssocCache(1024, 0, 64), std::invalid_argument);
  EXPECT_THROW(SetAssocCache(1024, 2, 60), std::invalid_argument);
}

TEST(Cache, StatsReset) {
  SetAssocCache cache(1024, 2, 64);
  cache.access(0x0, false);
  cache.reset_stats();
  EXPECT_EQ(cache.stats().accesses, 0u);
  EXPECT_TRUE(cache.probe(0x0));  // contents survive
}

TEST(Cache, EvictionSequenceMatchesTrueLruReference) {
  // Differential oracle for the MRU front-check fast path: drive a
  // pseudo-random access stream — heavy on back-to-back repeats, the
  // pattern the fast path serves — through the cache and a by-the-book
  // true-LRU list model, asserting the full per-access hit/miss sequence
  // and the running eviction counts never diverge. A fast path that
  // forgot a rank update or stamped the wrong MRU way breaks the victim
  // order within a few dozen accesses.
  constexpr int kAssoc = 4;
  SetAssocCache cache(4096, kAssoc, 64);  // 16 sets x 4 ways
  const std::uint64_t num_sets = cache.num_sets();

  // Reference: per-set vector of line tags, front = MRU.
  std::vector<std::vector<std::uint64_t>> lru(num_sets);
  std::uint64_t evictions = 0;

  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  std::uint64_t addr = 0;
  for (int i = 0; i < 20000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const std::uint64_t roll = state >> 33;
    if (i == 0 || roll % 100 >= 60) {
      // 40% repeats of the previous address (exercises the MRU hit), the
      // rest spread over 8 lines per set so ways thrash and evict.
      addr = (roll % (num_sets * 8)) * 64;
    }
    const bool hit = cache.access(addr, roll % 2 == 0);

    const std::uint64_t line = addr / 64;
    auto& set = lru[line % num_sets];
    const auto it = std::find(set.begin(), set.end(), line);
    const bool ref_hit = it != set.end();
    if (ref_hit) {
      set.erase(it);
    } else if (set.size() == kAssoc) {
      set.pop_back();  // back = LRU victim
      ++evictions;
    }
    set.insert(set.begin(), line);

    ASSERT_EQ(hit, ref_hit) << "access " << i << " addr " << addr;
    ASSERT_EQ(cache.stats().evictions, evictions) << "access " << i;
  }
  EXPECT_GT(evictions, 0u) << "stream never evicted: oracle too gentle";
  EXPECT_GT(cache.stats().hits, 0u);
}

TEST(Tlb, WalkLatencyOnMissOnly) {
  Tlb tlb(16, 4, 30);
  EXPECT_EQ(tlb.access(0x1000), 30);
  EXPECT_EQ(tlb.access(0x1FFF), 0);  // same 4K page
  EXPECT_EQ(tlb.access(0x2000), 30); // next page
}

TEST(Hierarchy, LatenciesPerLevel) {
  HierarchyConfig cfg;
  MemoryHierarchy mem(cfg);
  // Cold: DTLB walk + L1 miss + L2 miss -> memory.
  const auto cold = mem.load(0x10000, 0);
  EXPECT_EQ(cold.level, HitLevel::kMemory);
  EXPECT_TRUE(cold.l2_miss);
  EXPECT_GE(cold.latency,
            cfg.l1_latency + cfg.l2_latency + cfg.memory_latency);
  // Warm L1.
  const auto warm = mem.load(0x10000, 10);
  EXPECT_EQ(warm.level, HitLevel::kL1);
  EXPECT_EQ(warm.latency, cfg.l1_latency);
}

TEST(Hierarchy, L2HitAfterL1Eviction) {
  HierarchyConfig cfg;
  cfg.l1_size = 128;  // 2 lines, 2-way: one set
  cfg.l1_assoc = 2;
  MemoryHierarchy mem(cfg);
  (void)mem.load(0x0000, 0);
  (void)mem.load(0x1000, 200);
  (void)mem.load(0x2000, 400);  // evicts 0x0000 from L1
  const auto res = mem.load(0x0000, 600);
  EXPECT_EQ(res.level, HitLevel::kL2);
  EXPECT_FALSE(res.l2_miss);
}

TEST(Hierarchy, BusQueueingDelaysBursts) {
  HierarchyConfig cfg;
  MemoryHierarchy mem(cfg);
  // Fire many L1 misses in the same cycle: later ones queue on the 2 buses.
  int first_latency = mem.load(0x100000, 0).latency;
  int last_latency = 0;
  for (int i = 1; i < 8; ++i) {
    last_latency = mem.load(0x100000 + i * 0x10000, 0).latency;
  }
  EXPECT_GT(last_latency, first_latency);
}

TEST(Hierarchy, SharedBetweenCallers) {
  HierarchyConfig cfg;
  MemoryHierarchy mem(cfg);
  (void)mem.load(0x5000, 0);
  // A second "thread" touching the same line hits: the hierarchy is shared.
  EXPECT_EQ(mem.load(0x5000, 100).level, HitLevel::kL1);
}

TEST(Mob, AllocateUntilFull) {
  MemOrderBuffer mob(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_GE(mob.allocate(0, i, false), 0);
  }
  EXPECT_TRUE(mob.full());
  EXPECT_EQ(mob.allocate(0, 99, false), -1);
  EXPECT_EQ(mob.stats().allocations, 4u);
}

TEST(Mob, ForwardFromYoungestMatchingStore) {
  MemOrderBuffer mob(16);
  const int st1 = mob.allocate(0, 1, true);
  const int st2 = mob.allocate(0, 2, true);
  const int ld = mob.allocate(0, 3, false);
  mob.set_address(st1, 0x100);
  mob.set_address(st2, 0x100);
  mob.set_address(ld, 0x100);
  EXPECT_EQ(mob.check_load(ld), LoadCheck::kForward);
  EXPECT_EQ(mob.stats().forwards, 1u);
}

TEST(Mob, WaitOnUnknownOlderStoreAddress) {
  MemOrderBuffer mob(16);
  const int st = mob.allocate(0, 1, true);
  const int ld = mob.allocate(0, 2, false);
  mob.set_address(ld, 0x200);
  EXPECT_EQ(mob.check_load(ld), LoadCheck::kWait);
  mob.set_address(st, 0x300);  // different word
  EXPECT_EQ(mob.check_load(ld), LoadCheck::kAccess);
}

TEST(Mob, UnknownStoreHidesOlderMatch) {
  MemOrderBuffer mob(16);
  const int match = mob.allocate(0, 1, true);
  const int unknown = mob.allocate(0, 2, true);
  const int ld = mob.allocate(0, 3, false);
  mob.set_address(match, 0x100);
  mob.set_address(ld, 0x100);
  // The younger store's address is unknown: must wait, despite the match.
  EXPECT_EQ(mob.check_load(ld), LoadCheck::kWait);
  mob.set_address(unknown, 0x900);
  EXPECT_EQ(mob.check_load(ld), LoadCheck::kForward);
}

TEST(Mob, ThreadsAreIndependent) {
  MemOrderBuffer mob(16);
  const int st = mob.allocate(0, 1, true);  // thread 0 store, unknown addr
  const int ld = mob.allocate(1, 1, false); // thread 1 load
  mob.set_address(ld, 0x100);
  EXPECT_EQ(mob.check_load(ld), LoadCheck::kAccess);
  (void)st;
}

TEST(Mob, ReleaseFrontBackAndMiddle) {
  MemOrderBuffer mob(8);
  const int a = mob.allocate(0, 1, false);
  const int b = mob.allocate(0, 2, false);
  const int c = mob.allocate(0, 3, false);
  mob.release(a);  // front (commit order)
  mob.release(c);  // back (squash order)
  mob.release(b);  // middle
  EXPECT_EQ(mob.occupancy(), 0);
  EXPECT_EQ(mob.thread_slots(0).size(), 0u);
  // Slots are reusable.
  EXPECT_GE(mob.allocate(0, 4, true), 0);
}

TEST(Mob, ForwardMatchesWordGranularity) {
  MemOrderBuffer mob(8);
  const int st = mob.allocate(0, 1, true);
  const int ld = mob.allocate(0, 2, false);
  mob.set_address(st, 0x100);
  mob.set_address(ld, 0x104);  // same 8-byte word
  EXPECT_EQ(mob.check_load(ld), LoadCheck::kForward);
}

}  // namespace
}  // namespace clusmt::memory
