// Heterogeneous cluster shapes: the refactor's behaviour-preservation
// oracle plus directed coverage of the new capability paths.
//
// The homogeneity oracle is the load-bearing test: a machine described by
// explicit all-equal ClusterShape overrides (and a fully written link
// matrix) must produce field-for-field identical SimStats to the same
// machine described by the legacy scalars alone, for every scheme and for
// both thread counts — i.e. zero-means-inherit is an encoding detail, not
// a behaviour change. The directed tests then pin down that heterogeneous
// shapes actually reach the hardware: port mixes per width, per-pair link
// latencies, capacity-scaled steering, and constructor validation.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "backend/interconnect.h"
#include "backend/ports.h"
#include "common/cli.h"
#include "core/simulator.h"
#include "harness/presets.h"
#include "harness/runner.h"
#include "harness/shape_flags.h"
#include "policy/policy.h"
#include "steer/steering.h"
#include "trace/workload.h"

namespace clusmt::core {
namespace {

/// Field-by-field SimStats equality with a readable failure message
/// (mirrors the issue-wakeup differential oracle).
void expect_stats_equal(const SimStats& a, const SimStats& b,
                        const std::string& label) {
#define CLUSMT_EXPECT_FIELD(field) \
  EXPECT_EQ(a.field, b.field) << label << ": SimStats::" #field " diverged"
  CLUSMT_EXPECT_FIELD(cycles);
  for (int t = 0; t < kMaxThreads; ++t) CLUSMT_EXPECT_FIELD(committed[t]);
  CLUSMT_EXPECT_FIELD(committed_copies);
  CLUSMT_EXPECT_FIELD(committed_branches);
  CLUSMT_EXPECT_FIELD(committed_loads);
  CLUSMT_EXPECT_FIELD(committed_stores);
  CLUSMT_EXPECT_FIELD(renamed_uops);
  CLUSMT_EXPECT_FIELD(copies_created);
  CLUSMT_EXPECT_FIELD(rename_cycles);
  CLUSMT_EXPECT_FIELD(rename_blocked_cycles);
  CLUSMT_EXPECT_FIELD(rename_block_iq);
  CLUSMT_EXPECT_FIELD(rename_block_rf);
  CLUSMT_EXPECT_FIELD(rename_block_rob);
  CLUSMT_EXPECT_FIELD(rename_block_mob);
  CLUSMT_EXPECT_FIELD(iq_pref_stall_events);
  CLUSMT_EXPECT_FIELD(non_preferred_dispatches);
  CLUSMT_EXPECT_FIELD(issued_uops);
  CLUSMT_EXPECT_FIELD(cycles_with_issue);
  for (int i = 0; i < 2; ++i) {
    for (int k = 0; k < trace::kNumPortClasses; ++k) {
      CLUSMT_EXPECT_FIELD(imbalance_events[i][k]);
    }
  }
  CLUSMT_EXPECT_FIELD(squashed_uops);
  CLUSMT_EXPECT_FIELD(branches_resolved);
  CLUSMT_EXPECT_FIELD(mispredicts_resolved);
  CLUSMT_EXPECT_FIELD(policy_flushes);
  CLUSMT_EXPECT_FIELD(load_l2_misses);
  CLUSMT_EXPECT_FIELD(store_l2_misses);
  CLUSMT_EXPECT_FIELD(load_forwards);
#undef CLUSMT_EXPECT_FIELD
}

/// The same machine re-described with explicit all-equal shape overrides:
/// every ClusterShape field set to the scalar it would have inherited, and
/// the full link matrix written out.
SimConfig with_explicit_shapes(const SimConfig& base) {
  SimConfig shaped = base;
  for (int c = 0; c < base.num_clusters; ++c) {
    shaped.shape[c].issue_width = base.issue_width;
    shaped.shape[c].iq_entries = base.iq_entries;
    if (!base.rf_unbounded()) {
      shaped.shape[c].int_regs = base.int_regs;
      shaped.shape[c].fp_regs = base.fp_regs;
    }
    for (int to = 0; to < base.num_clusters; ++to) {
      shaped.link_latency_cc[c][to] = base.link_latency;
    }
  }
  return shaped;
}

TEST(HeteroHomogeneityOracle, ExplicitEqualShapesMatchScalarsEveryScheme) {
  // 14 schemes x {2T, SMT4}: the scalar description and the explicit
  // all-equal shape description must be indistinguishable in SimStats.
  struct Machine {
    const char* name;
    SimConfig config;
    trace::WorkloadSpec workload;
  };
  const std::vector<Machine> machines = {
      {"2T", harness::paper_baseline(),
       trace::build_quick_suite(1, 1, 2).front()},
      {"SMT4", harness::smt4_baseline(),
       trace::build_smt4_suite(1, 2).front()},
  };
  for (const Machine& m : machines) {
    for (policy::PolicyKind kind : policy::all_policy_kinds()) {
      SimConfig scalar = m.config;
      scalar.policy = kind;
      const SimConfig shaped = with_explicit_shapes(scalar);
      const harness::RunResult a =
          harness::simulate_workload(scalar, m.workload, 3000, 500);
      const harness::RunResult b =
          harness::simulate_workload(shaped, m.workload, 3000, 500);
      expect_stats_equal(
          a.stats, b.stats,
          std::string(m.name) + "/" +
              std::string(policy::policy_kind_name(kind)));
    }
  }
}

TEST(HeteroSmoke, AsymmetricShapesRunAndValidate) {
  // A 2:1-width, lopsided-IQ/RF, far-link machine must run every scheme
  // without tripping the incremental-view validator or the watchdog.
  const trace::WorkloadSpec workload =
      trace::build_quick_suite(1, 1, 2).front();
  for (policy::PolicyKind kind : policy::all_policy_kinds()) {
    SimConfig config = harness::paper_baseline();
    config.policy = kind;
    config.shape[0] = {.issue_width = 4, .iq_entries = 48, .int_regs = 96,
                       .fp_regs = 96};
    config.shape[1] = {.issue_width = 2, .iq_entries = 16, .int_regs = 32,
                       .fp_regs = 32};
    config.link_latency_cc[0][1] = 4;
    config.link_latency_cc[1][0] = 4;
    Simulator sim(config);
    for (std::size_t t = 0; t < workload.threads.size(); ++t) {
      sim.attach_thread(static_cast<ThreadId>(t), workload.threads[t]);
    }
    sim.run(2500);
    EXPECT_TRUE(sim.validate_view())
        << policy::policy_kind_name(kind);
    EXPECT_GT(sim.stats().committed_total(), 0u)
        << policy::policy_kind_name(kind);
  }
}

TEST(HeteroSmoke, ShapeOverridesReachTheHardware) {
  SimConfig config = harness::paper_baseline();
  config.shape[0] = {.issue_width = 4, .iq_entries = 48, .int_regs = 96,
                     .fp_regs = 80};
  config.link_latency_cc[0][1] = 5;
  Simulator sim(config);
  EXPECT_EQ(sim.cluster(0).ports().num_ports(), 4);
  EXPECT_EQ(sim.cluster(1).ports().num_ports(), 3);
  EXPECT_EQ(sim.cluster(0).iq().capacity(), 48);
  EXPECT_EQ(sim.cluster(1).iq().capacity(), 32);
  EXPECT_EQ(sim.cluster(0).rf(RegClass::kInt).capacity(), 96);
  EXPECT_EQ(sim.cluster(0).rf(RegClass::kFp).capacity(), 80);
  EXPECT_EQ(sim.cluster(1).rf(RegClass::kInt).capacity(), 64);
  EXPECT_EQ(sim.view().rf_capacity_of(0, RegClass::kInt), 96);
  EXPECT_EQ(sim.view().rf_capacity_of(1, RegClass::kInt), 64);
  EXPECT_EQ(sim.view().rf_capacity_total(RegClass::kInt), 160);
  EXPECT_EQ(sim.view().issue_width_of(0), 4);
  EXPECT_EQ(sim.view().issue_width_total(), 7);
  EXPECT_EQ(sim.interconnect().latency(0, 1), 5);
  EXPECT_EQ(sim.interconnect().latency(1, 0), 1);
}

TEST(HeteroSmoke, ShapeChangesSimulationOutcome) {
  // Sanity that heterogeneity is not cosmetic: a narrowed cluster 1 and a
  // far link must perturb the committed stream of a busy two-thread run.
  const trace::WorkloadSpec workload =
      trace::build_quick_suite(1, 1, 2).front();
  SimConfig flat = harness::paper_baseline();
  SimConfig narrow = flat;
  narrow.shape[1].issue_width = 1;
  SimConfig far = flat;
  far.link_latency_cc[0][1] = 8;
  far.link_latency_cc[1][0] = 8;
  const auto run = [&](const SimConfig& c) {
    return harness::simulate_workload(c, workload, 4000, 500).stats;
  };
  const SimStats flat_stats = run(flat);
  const SimStats narrow_stats = run(narrow);
  const SimStats far_stats = run(far);
  EXPECT_NE(flat_stats.issued_uops, narrow_stats.issued_uops);
  EXPECT_NE(flat_stats.committed_total(), far_stats.committed_total());
}

// ---- Config accessors ----------------------------------------------------

TEST(ClusterShapeConfig, ZeroMeansInherit) {
  SimConfig c;
  c.iq_entries = 32;
  c.int_regs = 100;
  c.fp_regs = 90;
  c.issue_width = 3;
  c.link_latency = 2;
  EXPECT_EQ(c.effective_iq_entries(0), 32);
  EXPECT_EQ(c.effective_issue_width(1), 3);
  EXPECT_EQ(c.effective_int_regs(0), 100);
  EXPECT_EQ(c.effective_fp_regs(1), 90);
  EXPECT_EQ(c.effective_link_latency(0, 1), 2);

  c.shape[1] = {.issue_width = 2, .iq_entries = 16, .int_regs = 48,
                .fp_regs = 40};
  c.link_latency_cc[1][0] = 7;
  EXPECT_EQ(c.effective_iq_entries(1), 16);
  EXPECT_EQ(c.effective_issue_width(1), 2);
  EXPECT_EQ(c.effective_int_regs(1), 48);
  EXPECT_EQ(c.effective_fp_regs(1), 40);
  EXPECT_EQ(c.effective_regs(1, RegClass::kInt), 48);
  EXPECT_EQ(c.effective_regs(1, RegClass::kFp), 40);
  EXPECT_EQ(c.effective_link_latency(1, 0), 7);
  EXPECT_EQ(c.effective_link_latency(0, 1), 2) << "direction matters";
  // Cluster 0 still inherits everything.
  EXPECT_EQ(c.effective_iq_entries(0), 32);
  EXPECT_EQ(c.effective_issue_width(0), 3);
}

// ---- Constructor validation ----------------------------------------------

TEST(HeteroValidation, MalformedShapesAreRejected) {
  const auto reject = [](void (*mutate)(SimConfig&)) {
    SimConfig config = harness::paper_baseline();
    mutate(config);
    EXPECT_THROW(Simulator sim(config), std::invalid_argument);
  };
  reject([](SimConfig& c) { c.shape[0].iq_entries = -1; });
  reject([](SimConfig& c) { c.shape[1].int_regs = -4; });
  reject([](SimConfig& c) { c.shape[0].issue_width = 9; });
  reject([](SimConfig& c) { c.link_latency_cc[0][1] = -2; });
  // Unbounded register mode is machine-wide; a per-cluster bounded
  // override contradicts it.
  reject([](SimConfig& c) {
    c.int_regs = 0;
    c.fp_regs = 0;
    c.shape[0].int_regs = 64;
  });
  // The register floor sums per-cluster effective sizes: 20+12 = 32 < the
  // 2 threads x 16 arch + 6 rename headroom = 38 required.
  reject([](SimConfig& c) {
    c.shape[0].int_regs = 20;
    c.shape[1].int_regs = 12;
  });
}

TEST(HeteroValidation, TrailingShapeSlotsAreInert) {
  // Shape entries past num_clusters never instantiate hardware; garbage
  // there must not reject an otherwise valid machine.
  SimConfig config = harness::paper_baseline();
  config.shape[3] = {.issue_width = -5, .iq_entries = -5, .int_regs = -5,
                     .fp_regs = -5};
  EXPECT_NO_THROW(Simulator sim(config));
}

// ---- Port mixes ----------------------------------------------------------

TEST(HeteroPorts, GeneralizedMixMatchesTable1AtWidth3) {
  using trace::PortClass;
  for (int p : {0, 1}) {
    EXPECT_TRUE(backend::PortSet::compatible(p, PortClass::kFpSimd, 3));
    EXPECT_FALSE(backend::PortSet::compatible(p, PortClass::kMem, 3));
  }
  EXPECT_FALSE(backend::PortSet::compatible(2, PortClass::kFpSimd, 3));
  EXPECT_TRUE(backend::PortSet::compatible(2, PortClass::kMem, 3));
}

TEST(HeteroPorts, NarrowAndWideMixes) {
  using trace::PortClass;
  // Width 1: a single universal port.
  for (PortClass cls :
       {PortClass::kInt, PortClass::kFpSimd, PortClass::kMem}) {
    EXPECT_TRUE(backend::PortSet::compatible(0, cls, 1));
  }
  // Width 2: port 0 int+fp/simd, port 1 int+mem.
  EXPECT_TRUE(backend::PortSet::compatible(0, PortClass::kFpSimd, 2));
  EXPECT_FALSE(backend::PortSet::compatible(1, PortClass::kFpSimd, 2));
  EXPECT_TRUE(backend::PortSet::compatible(1, PortClass::kMem, 2));
  EXPECT_FALSE(backend::PortSet::compatible(0, PortClass::kMem, 2));
  // Width 4: three fp/simd-capable ports, mem rides the last.
  backend::PortSet wide(4);
  EXPECT_EQ(wide.free_compatible(PortClass::kInt), 4);
  EXPECT_EQ(wide.free_compatible(PortClass::kFpSimd), 3);
  EXPECT_EQ(wide.free_compatible(PortClass::kMem), 1);
  // A width-2 set saturates after two bookings.
  backend::PortSet narrow(2);
  EXPECT_TRUE(narrow.try_book(PortClass::kFpSimd));
  EXPECT_FALSE(narrow.try_book(PortClass::kFpSimd)) << "one fp port";
  EXPECT_TRUE(narrow.try_book(PortClass::kMem));
  EXPECT_TRUE(narrow.all_booked());
  narrow.new_cycle();
  EXPECT_TRUE(narrow.try_book(PortClass::kInt));
  EXPECT_TRUE(narrow.try_book(PortClass::kInt));
  EXPECT_FALSE(narrow.try_book(PortClass::kInt));
}

// ---- Interconnect pair latency -------------------------------------------

TEST(HeteroInterconnect, PairOverridesFallBackToBase) {
  backend::Interconnect net(2, 3);
  EXPECT_EQ(net.latency(0, 1), 3);
  net.set_pair_latency(0, 1, 9);
  EXPECT_EQ(net.latency(0, 1), 9);
  EXPECT_EQ(net.latency(1, 0), 3) << "directed override";
  net.set_pair_latency(0, 1, 0);
  EXPECT_EQ(net.latency(0, 1), 3) << "zero restores the base";
  EXPECT_THROW(net.set_pair_latency(0, 1, -1), std::invalid_argument);
  EXPECT_THROW(net.set_pair_latency(kMaxClusters, 0, 1),
               std::invalid_argument);
}

// ---- Shape flags ---------------------------------------------------------

TEST(ShapeFlags, ListsApplyPerCluster) {
  const char* argv[] = {"prog", "--width=4,2", "--iq=48,16",
                        "--int-regs=96,32", "--fp-regs=80,48",
                        "--link=0,4,2,0"};
  const CliArgs args(6, argv);
  SimConfig config = harness::paper_baseline();
  EXPECT_TRUE(harness::has_shape_flags(args));
  harness::apply_shape_flags(args, config);
  EXPECT_EQ(config.shape[0].issue_width, 4);
  EXPECT_EQ(config.shape[1].issue_width, 2);
  EXPECT_EQ(config.shape[0].iq_entries, 48);
  EXPECT_EQ(config.shape[1].int_regs, 32);
  EXPECT_EQ(config.shape[1].fp_regs, 48);
  EXPECT_EQ(config.link_latency_cc[0][1], 4);
  EXPECT_EQ(config.link_latency_cc[1][0], 2);
  EXPECT_EQ(config.effective_link_latency(0, 0), config.link_latency)
      << "0 in the matrix inherits";
}

TEST(ShapeFlags, AbsentFlagsLeaveConfigUntouched) {
  const char* argv[] = {"prog", "--cycles=100"};
  const CliArgs args(2, argv);
  const SimConfig before = harness::paper_baseline();
  SimConfig config = before;
  EXPECT_FALSE(harness::has_shape_flags(args));
  harness::apply_shape_flags(args, config);
  for (int c = 0; c < kMaxClusters; ++c) {
    EXPECT_EQ(config.shape[c].issue_width, before.shape[c].issue_width);
    EXPECT_EQ(config.shape[c].iq_entries, before.shape[c].iq_entries);
  }
}

TEST(ShapeFlagsDeath, WrongArityExitsWithError) {
  // Three widths on a two-cluster machine is a usage error: silently
  // dropping or recycling entries would shape a different machine.
  const char* argv[] = {"prog", "--width=4,2,1"};
  const CliArgs args(2, argv);
  SimConfig config = harness::paper_baseline();
  EXPECT_EXIT(harness::apply_shape_flags(args, config),
              ::testing::ExitedWithCode(2),
              "--width expects 2 comma-separated values");
}

TEST(ShapeFlagsDeath, LinkMatrixArityIsClustersSquared) {
  const char* argv[] = {"prog", "--link=1,4"};
  const CliArgs args(2, argv);
  SimConfig config = harness::paper_baseline();
  EXPECT_EXIT(harness::apply_shape_flags(args, config),
              ::testing::ExitedWithCode(2),
              "--link expects 4 comma-separated values");
}

TEST(ShapeFlagsDeath, ClusterCountOutOfRangeExitsWithError) {
  const char* argv[] = {"prog", "--clusters=9"};
  const CliArgs args(2, argv);
  SimConfig config = harness::paper_baseline();
  EXPECT_EXIT(harness::apply_shape_flags(args, config),
              ::testing::ExitedWithCode(2), "--clusters expects 1..4");
}

// ---- Capability-aware steering -------------------------------------------

TEST(HeteroSteering, EqualCapacitiesAreTheIdentityScale) {
  steer::Steering s(steer::SteeringKind::kLeastLoaded, 2, 6);
  const int caps[] = {32, 32};
  s.set_capacities(caps);
  EXPECT_EQ(s.scaled_load(0, 17), 17);
  EXPECT_EQ(s.scaled_load(1, 31), 31);
}

TEST(HeteroSteering, LeastLoadedComparesRelativeToCapacity) {
  steer::Steering s(steer::SteeringKind::kLeastLoaded, 2, 6);
  const int caps[] = {48, 16};
  s.set_capacities(caps);
  // Raw occupancy says cluster 1 is lighter (12 < 30); relative to
  // capacity cluster 0 is (30/48 scales to 30, 12/16 scales to 36).
  EXPECT_EQ(s.scaled_load(0, 30), 30);
  EXPECT_EQ(s.scaled_load(1, 12), 36);
  const int dep[] = {0, 0};
  const int occ[] = {30, 12};
  EXPECT_EQ(s.preferred(dep, occ), 0);
}

TEST(HeteroSteering, BalanceOverrideUsesScaledImbalance) {
  steer::Steering s(steer::SteeringKind::kDependenceBalance, 2, 6);
  const int caps[] = {48, 16};
  s.set_capacities(caps);
  // All operands live in cluster 1. Raw imbalance 8-10 = -2 would never
  // override; scaled (24 vs 10) exceeds the threshold, so the vote is
  // overridden to the relatively lighter cluster 0.
  const int dep[] = {0, 2};
  const int occ[] = {10, 8};
  EXPECT_EQ(s.preferred(dep, occ), 0);
  EXPECT_EQ(s.stats().balance_overrides, 1u);
}

TEST(HeteroSteering, InvalidCapacitiesAreRejected) {
  steer::Steering s(steer::SteeringKind::kLeastLoaded, 2, 6);
  const int zero[] = {32, 0};
  EXPECT_THROW(s.set_capacities(zero), std::invalid_argument);
  const int too_few[] = {32};
  EXPECT_THROW(s.set_capacities(too_few), std::invalid_argument);
}

}  // namespace
}  // namespace clusmt::core
