// The spool work queue (harness/spool.h): cell-spec codec round-trips,
// claim mutual exclusion under concurrent claimants, injected mid-cell
// deaths healed by lease reclaim, attempt exhaustion turning terminal,
// exactly-once-effective results in a shared store, and spool-dir hygiene
// (gc_spool).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "harness/presets.h"
#include "harness/run_key.h"
#include "harness/run_store.h"
#include "harness/spool.h"
#include "trace/workload.h"

namespace clusmt::harness {
namespace {

namespace fs = std::filesystem;

class SpoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string tmpl =
        (fs::temp_directory_path() / "clusmt_spool_XXXXXX").string();
    ASSERT_NE(::mkdtemp(tmpl.data()), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string dir_;
};

/// Distinct real cells: the quick suite's workloads on the paper baseline,
/// keyed exactly as the sweep engine would key them.
std::vector<SpoolCell> sample_cells(std::size_t count) {
  const core::SimConfig config = paper_baseline();
  const std::vector<trace::WorkloadSpec> suite =
      trace::build_quick_suite(1, 2, 8);
  std::vector<SpoolCell> cells;
  for (std::size_t i = 0; i < count && i < suite.size(); ++i) {
    SpoolCell cell;
    cell.config = config;
    cell.workload = suite[i];
    cell.cycles = 2000 + 100 * static_cast<Cycle>(i);
    cell.warmup = 500;
    cell.key = run_key(cell.config, cell.workload, cell.cycles, cell.warmup);
    cells.push_back(std::move(cell));
  }
  EXPECT_EQ(cells.size(), count) << "quick suite too small for this test";
  return cells;
}

// ---- Cell-spec codec -----------------------------------------------------

TEST_F(SpoolTest, CellSpecRoundTripReDerivesItsKey) {
  for (const SpoolCell& cell : sample_cells(4)) {
    const std::string record = encode_cell_spec(cell);
    const auto decoded = decode_cell_spec(record);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->key, cell.key);
    EXPECT_EQ(decoded->cycles, cell.cycles);
    EXPECT_EQ(decoded->warmup, cell.warmup);
    EXPECT_EQ(decoded->workload.name, cell.workload.name);
    EXPECT_EQ(decoded->workload.category, cell.workload.category);
    EXPECT_EQ(decoded->workload.type, cell.workload.type);
    // The decisive property: the decoded spec reproduces the embedded key,
    // i.e. every field run_key() hashes survived the round trip intact.
    EXPECT_EQ(run_key(decoded->config, decoded->workload, decoded->cycles,
                      decoded->warmup),
              cell.key);
  }
}

TEST_F(SpoolTest, CellSpecRoundTripsHeterogeneousShapes) {
  // Every ClusterShape field and link-matrix slot must survive the codec:
  // the decoded spec re-derives the embedded key, which hashes them all.
  SpoolCell cell = sample_cells(1)[0];
  cell.config.issue_width = 4;
  cell.config.shape[0] = {.issue_width = 4, .iq_entries = 48,
                          .int_regs = 96, .fp_regs = 80};
  cell.config.shape[1] = {.issue_width = 2, .iq_entries = 16,
                          .int_regs = 32, .fp_regs = 48};
  cell.config.link_latency_cc[0][1] = 4;
  cell.config.link_latency_cc[1][0] = 2;
  cell.key = run_key(cell.config, cell.workload, cell.cycles, cell.warmup);

  const auto decoded = decode_cell_spec(encode_cell_spec(cell));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->config.shape[0].issue_width, 4);
  EXPECT_EQ(decoded->config.shape[1].iq_entries, 16);
  EXPECT_EQ(decoded->config.shape[0].fp_regs, 80);
  EXPECT_EQ(decoded->config.link_latency_cc[0][1], 4);
  EXPECT_EQ(run_key(decoded->config, decoded->workload, decoded->cycles,
                    decoded->warmup),
            cell.key);
}

TEST_F(SpoolTest, OldFormatVersionIsRejectedNotMisdecoded) {
  // A v1 record (pre-ClusterShape layout) must fail the *version* check,
  // not limp through the field reader and checksum. To isolate the version
  // gate, forge an otherwise self-consistent record: patch the version
  // field to every stale value and fix up the trailing checksum so only
  // the version differs.
  ASSERT_GE(kSpoolFormatVersion, 2u)
      << "the ClusterShape layout change requires a version bump";
  const SpoolCell cell = sample_cells(1)[0];
  const std::string record = encode_cell_spec(cell);
  ASSERT_TRUE(decode_cell_spec(record).has_value());

  const auto with_version = [&](std::uint32_t version) {
    std::string forged = record;
    for (int i = 0; i < 4; ++i) {  // version u32 sits after the u32 magic
      forged[4 + i] = static_cast<char>(version >> (8 * i));
    }
    // Recompute the checksum exactly as spool.cc does (FNV over the body
    // with the spool seed), so the forgery is valid except for version.
    Fnv1a h(0x53504f4f4cull);
    h.add_bytes(forged.data(), forged.size() - sizeof(std::uint64_t));
    const std::uint64_t sum = h.digest();
    for (int i = 0; i < 8; ++i) {
      forged[forged.size() - 8 + i] = static_cast<char>(sum >> (8 * i));
    }
    return forged;
  };
  EXPECT_TRUE(decode_cell_spec(with_version(kSpoolFormatVersion)).has_value())
      << "forgery plumbing is broken: rewriting the current version and "
         "checksum must still decode";
  for (std::uint32_t stale = 0; stale < kSpoolFormatVersion; ++stale) {
    EXPECT_FALSE(decode_cell_spec(with_version(stale)).has_value())
        << "version " << stale;
  }
  EXPECT_FALSE(
      decode_cell_spec(with_version(kSpoolFormatVersion + 1)).has_value())
      << "future versions are unreadable too, not best-effort parsed";
}

TEST_F(SpoolTest, CellSpecRejectsTruncationBitFlipsAndVersionBump) {
  const SpoolCell cell = sample_cells(1)[0];
  const std::string record = encode_cell_spec(cell);
  ASSERT_TRUE(decode_cell_spec(record).has_value());

  EXPECT_FALSE(decode_cell_spec("").has_value());
  EXPECT_FALSE(decode_cell_spec("junk").has_value());
  for (const std::size_t cut :
       {record.size() - 1, record.size() / 2, std::size_t{6}}) {
    EXPECT_FALSE(decode_cell_spec(record.substr(0, cut)).has_value())
        << "truncated to " << cut;
  }
  for (const std::size_t at :
       {std::size_t{5}, record.size() / 2, record.size() - 2}) {
    std::string corrupt = record;
    corrupt[at] ^= 0x20;
    EXPECT_FALSE(decode_cell_spec(corrupt).has_value())
        << "bit flip at " << at;
  }
  EXPECT_FALSE(decode_cell_spec(record + "y").has_value());
}

// ---- Claim lifecycle -----------------------------------------------------

TEST_F(SpoolTest, PushClaimAckLifecycle) {
  const Spool spool(dir_);
  ASSERT_TRUE(spool.init_dirs());
  const SpoolCell cell = sample_cells(1)[0];
  ASSERT_TRUE(spool.push(cell));

  SpoolCounts c = spool.counts();
  EXPECT_EQ(c.todo, 1u);
  EXPECT_FALSE(spool.drained());

  const auto claim = spool.claim("w1");
  ASSERT_TRUE(claim.has_value());
  EXPECT_EQ(claim->cell.key, cell.key);
  EXPECT_EQ(claim->attempt, 1);
  c = spool.counts();
  EXPECT_EQ(c.todo, 0u);
  EXPECT_EQ(c.claimed, 1u);
  EXPECT_FALSE(spool.drained()) << "a leased cell is still in flight";
  EXPECT_FALSE(spool.claim("w2").has_value()) << "todo/ is empty";

  EXPECT_TRUE(Spool::refresh_lease(*claim));
  EXPECT_TRUE(spool.ack(*claim));
  c = spool.counts();
  EXPECT_EQ(c.claimed, 0u);
  EXPECT_EQ(c.done, 1u);
  EXPECT_TRUE(spool.drained());
}

TEST_F(SpoolTest, RacingClaimantsEachCellClaimedExactlyOnce) {
  const Spool spool(dir_);
  ASSERT_TRUE(spool.init_dirs());
  const std::vector<SpoolCell> cells = sample_cells(8);
  for (const SpoolCell& cell : cells) ASSERT_TRUE(spool.push(cell));

  constexpr int kClaimants = 6;
  std::vector<std::vector<RunKey>> claimed_by(kClaimants);
  std::vector<std::thread> claimants;
  for (int t = 0; t < kClaimants; ++t) {
    claimants.emplace_back([&, t] {
      const std::string id = "w" + std::to_string(t);
      while (const auto claim = spool.claim(id)) {
        claimed_by[t].push_back(claim->cell.key);
        ASSERT_TRUE(spool.ack(*claim));
      }
    });
  }
  for (std::thread& t : claimants) t.join();

  std::set<RunKey> seen;
  std::size_t total = 0;
  for (const auto& keys : claimed_by) {
    for (const RunKey& key : keys) {
      EXPECT_TRUE(seen.insert(key).second) << "cell claimed twice";
      ++total;
    }
  }
  EXPECT_EQ(total, cells.size());
  EXPECT_TRUE(spool.drained());
  EXPECT_EQ(spool.counts().done, cells.size());
}

// ---- Failure handling ----------------------------------------------------

TEST_F(SpoolTest, LeaseReclaimRequeuesAbandonedClaimsWithBumpedAttempt) {
  const Spool spool(dir_);
  ASSERT_TRUE(spool.init_dirs());
  const SpoolCell cell = sample_cells(1)[0];
  ASSERT_TRUE(spool.push(cell));

  // Claim, then "die" without acking (an injected mid-cell kill).
  ASSERT_TRUE(spool.claim("victim").has_value());
  EXPECT_EQ(spool.counts().claimed, 1u);

  // A fresh lease must NOT be stealable.
  EXPECT_EQ(spool.reclaim_stale(std::chrono::milliseconds(60000)), 0u);
  EXPECT_EQ(spool.counts().claimed, 1u);

  // With a zero lease the orphan is requeued, attempt bumped to 2.
  EXPECT_EQ(spool.reclaim_stale(std::chrono::milliseconds(0)), 1u);
  EXPECT_EQ(spool.counts().todo, 1u);
  const auto second = spool.claim("thief");
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->attempt, 2);
  EXPECT_EQ(second->cell.key, cell.key);
  EXPECT_TRUE(spool.ack(*second));
  EXPECT_TRUE(spool.drained());
}

TEST_F(SpoolTest, FailuresExhaustAttemptsIntoTerminalWithMessages) {
  const Spool spool(dir_, /*max_attempts=*/3);
  ASSERT_TRUE(spool.init_dirs());
  const SpoolCell cell = sample_cells(1)[0];
  ASSERT_TRUE(spool.push(cell));

  for (int attempt = 1; attempt <= 3; ++attempt) {
    const auto claim = spool.claim("w");
    ASSERT_TRUE(claim.has_value()) << "attempt " << attempt;
    EXPECT_EQ(claim->attempt, attempt);
    spool.fail(*claim, "boom " + std::to_string(attempt));
  }
  EXPECT_FALSE(spool.claim("w").has_value());
  EXPECT_TRUE(spool.terminally_failed(cell.key));
  EXPECT_TRUE(spool.drained()) << "terminal cells do not block drain";
  const std::string messages = spool.failure_message(cell.key);
  EXPECT_NE(messages.find("boom 1"), std::string::npos);
  EXPECT_NE(messages.find("boom 3"), std::string::npos);

  // Re-pushing the key resurrects it with a fresh attempt budget.
  ASSERT_TRUE(spool.push(cell));
  const auto fresh = spool.claim("w");
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(fresh->attempt, 1);
}

TEST_F(SpoolTest, CorruptSpecIsQuarantinedNotClaimed) {
  const Spool spool(dir_);
  ASSERT_TRUE(spool.init_dirs());
  const SpoolCell cell = sample_cells(1)[0];
  ASSERT_TRUE(spool.push(cell));
  // Corrupt the pending spec in place.
  for (const auto& entry : fs::directory_iterator(fs::path(dir_) / "todo")) {
    std::ofstream(entry.path(), std::ios::binary) << "garbage";
  }
  EXPECT_FALSE(spool.claim("w").has_value());
  EXPECT_EQ(spool.counts().todo, 0u);
  EXPECT_TRUE(spool.terminally_failed(cell.key));
}

// ---- The swarm shape: concurrent claimants + injected kills --------------

TEST_F(SpoolTest, SwarmWithInjectedKillsDrainsExactlyOnceEffective) {
  // 6 claimant threads drain 10 cells through one spool into one shared
  // store. Each claimant abandons its first claim (simulating a kill mid-
  // cell) and relies on lease reclaim to heal; the "result" written is a
  // deterministic function of the key, so exactly-once-EFFECTIVE is
  // checked by the store holding the right record for every key at the
  // end, with no key lost or corrupted.
  const Spool spool(dir_ + "/spool", /*max_attempts=*/10);
  ASSERT_TRUE(spool.init_dirs());
  const RunStore store(dir_ + "/store");
  const std::vector<SpoolCell> cells = sample_cells(10);
  for (const SpoolCell& cell : cells) ASSERT_TRUE(spool.push(cell));

  const auto result_of = [](const SpoolCell& cell) {
    RunResult r;
    r.workload = cell.workload.name;
    r.throughput = static_cast<double>(cell.key.lo % 1000) / 10.0;
    return r;
  };

  std::atomic<std::size_t> completed{0};
  constexpr int kClaimants = 6;
  std::vector<std::thread> claimants;
  for (int t = 0; t < kClaimants; ++t) {
    claimants.emplace_back([&, t] {
      const std::string id = "w" + std::to_string(t);
      bool killed_once = false;
      while (true) {
        const auto claim = spool.claim(id);
        if (!claim) {
          if (spool.drained()) return;
          // Steal abandoned leases. The lease is long relative to cell
          // execution, as in production — live claims must NOT be stolen.
          (void)spool.reclaim_stale(std::chrono::minutes(5));
          std::this_thread::yield();
          continue;
        }
        if (!killed_once) {
          // Die mid-cell: no result, no ack, no fail. Backdating the
          // lease stands in for the heartbeat a dead worker stops
          // sending.
          killed_once = true;
          fs::last_write_time(claim->path, fs::file_time_type::clock::now() -
                                               std::chrono::hours(1));
          continue;
        }
        ASSERT_TRUE(store.save(claim->cell.key, result_of(claim->cell)));
        if (spool.ack(*claim)) completed.fetch_add(1);
      }
    });
  }
  for (std::thread& t : claimants) t.join();

  EXPECT_TRUE(spool.drained());
  EXPECT_EQ(completed.load(), cells.size());
  for (const SpoolCell& cell : cells) {
    const auto loaded = store.load(cell.key);
    ASSERT_TRUE(loaded.has_value()) << cell.workload.name;
    EXPECT_EQ(loaded->workload, cell.workload.name);
    EXPECT_EQ(loaded->throughput, result_of(cell).throughput);
  }
}

// ---- Spool hygiene (cache_gc spool) --------------------------------------

TEST_F(SpoolTest, GcReclaimsOrphansAndExpiresOldEntries) {
  const Spool spool(dir_);
  ASSERT_TRUE(spool.init_dirs());
  const std::vector<SpoolCell> cells = sample_cells(3);
  for (const SpoolCell& cell : cells) ASSERT_TRUE(spool.push(cell));

  // Cell 0: acked long ago. Cell 1: orphaned claim. Cell 2: stays pending.
  const auto done_claim = spool.claim("old");
  ASSERT_TRUE(done_claim.has_value());
  ASSERT_TRUE(spool.ack(*done_claim));
  const fs::path done_dir = fs::path(dir_) / "done";
  for (const auto& entry : fs::directory_iterator(done_dir)) {
    fs::last_write_time(entry.path(), fs::file_time_type::clock::now() -
                                          std::chrono::hours(48));
  }
  const auto orphan = spool.claim("dead-worker");
  ASSERT_TRUE(orphan.has_value());
  fs::last_write_time(orphan->path, fs::file_time_type::clock::now() -
                                        std::chrono::hours(2));

  SpoolGcOptions dry;
  dry.lease = std::chrono::seconds(300);
  dry.done_ttl = std::chrono::seconds(24 * 3600);
  dry.dry_run = true;
  const SpoolGcResult planned = gc_spool(dir_, dry);
  EXPECT_EQ(planned.reclaimed, 1u);
  EXPECT_EQ(planned.deleted_done, 1u);
  EXPECT_EQ(spool.counts().done, 1u) << "dry run must not delete";
  EXPECT_EQ(spool.counts().claimed, 1u) << "dry run must not requeue";

  SpoolGcOptions wet = dry;
  wet.dry_run = false;
  const SpoolGcResult swept = gc_spool(dir_, wet);
  EXPECT_EQ(swept.reclaimed, 1u);
  EXPECT_EQ(swept.deleted_done, 1u);
  const SpoolCounts after = spool.counts();
  EXPECT_EQ(after.done, 0u);
  EXPECT_EQ(after.claimed, 0u);
  EXPECT_EQ(after.todo, 2u) << "orphan requeued next to the pending cell";

  // The requeued orphan claims with a bumped attempt.
  std::set<int> attempts;
  while (const auto claim = spool.claim("w")) {
    attempts.insert(claim->attempt);
    ASSERT_TRUE(spool.ack(*claim));
  }
  EXPECT_EQ(attempts, (std::set<int>{1, 2}));

  const SpoolGcResult missing =
      gc_spool(dir_ + "/nope", SpoolGcOptions{});
  EXPECT_EQ(missing.scanned, 0u);
}

}  // namespace
}  // namespace clusmt::harness
