// Sharded sweep execution (harness/shard.h): run_sweep with
// --shard-workers N farms cache-miss cells to real sweep_worker processes
// through a spool directory, then assembles tables from the warm store.
// Covers bit-identical output across worker counts (including 0 =
// in-process), the all-warm fast path that spawns nothing, the missing
// cache-dir error, and a cell that always crashes turning into a clean
// per-cell error instead of a hang.
//
// These tests spawn the real sweep_worker binary, resolved relative to
// this test binary (build/tests/ -> build/tools/sweep_worker), exactly as
// a bench run would resolve it.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/presets.h"
#include "harness/run_cache.h"
#include "harness/spool.h"
#include "harness/sweep.h"
#include "trace/workload.h"

namespace clusmt::harness {
namespace {

namespace fs = std::filesystem;

class ShardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string tmpl =
        (fs::temp_directory_path() / "clusmt_shard_XXXXXX").string();
    ASSERT_NE(::mkdtemp(tmpl.data()), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  [[nodiscard]] std::string subdir(const std::string& name) const {
    return (fs::path(dir_) / name).string();
  }

  std::string dir_;
};

/// The small two-point grid every test runs: 2 schemes x 3 workloads with
/// fairness baselines, enough to exercise grid cells, dedup, and baseline
/// spooling while staying quick.
SweepSpec small_spec() {
  SweepSpec spec;
  spec.suite = trace::build_quick_suite(1, 1, 2);
  spec.suite.resize(3);
  spec.cycles = 1500;
  spec.warmup = 300;
  spec.jobs = 2;
  spec.with_fairness = true;
  spec.progress = false;
  spec.base = paper_baseline();
  spec.axes = {{"scheme",
                {{"Icount",
                  [](core::SimConfig& c) {
                    c.policy = policy::PolicyKind::kIcount;
                  }},
                 {"CDPRF", [](core::SimConfig& c) {
                    c.policy = policy::PolicyKind::kCdprf;
                  }}}}};
  return spec;
}

/// Renders the sweep the way benches do, so "bit-identical tables" is
/// checked on the actual emitted artifact bytes.
std::string render_csv(const SweepResult& result) {
  std::vector<std::pair<std::string, std::vector<double>>> series;
  for (std::size_t p = 0; p < result.points.size(); ++p) {
    series.emplace_back(result.points[p].label + " thr",
                        result.throughput(p));
    series.emplace_back(result.points[p].label + " fair",
                        result.fairness(p));
  }
  return category_table(result.suite, series, 6).to_csv();
}

TEST_F(ShardTest, WorkerCountsZeroOneFourProduceIdenticalTables) {
  std::vector<std::string> csv;
  std::vector<std::string> json;
  for (const int workers : {0, 1, 4}) {
    // Fresh cache + fresh store dir per worker count: every variant starts
    // cold and really takes its own execution path.
    RunCache cache;
    cache.set_store_dir(subdir("store-" + std::to_string(workers)));
    SweepSpec spec = small_spec();
    spec.cache = &cache;
    spec.shard.workers = workers;
    spec.shard.spool_dir = subdir("spool-" + std::to_string(workers));
    const SweepResult result = run_sweep(spec);
    if (workers > 0) {
      EXPECT_EQ(result.cache_misses, 0u)
          << workers << " workers: assembly must run fully warm";
      EXPECT_GT(result.cache_disk_hits, 0u);
    } else {
      EXPECT_GT(result.cache_misses, 0u) << "in-process run must simulate";
    }
    std::vector<std::pair<std::string, std::vector<double>>> series;
    for (std::size_t p = 0; p < result.points.size(); ++p) {
      series.emplace_back(result.points[p].label, result.throughput(p));
    }
    csv.push_back(render_csv(result));
    json.push_back(category_table(result.suite, series, 6).to_json());
  }
  EXPECT_EQ(csv[0], csv[1]) << "1 worker vs in-process";
  EXPECT_EQ(csv[0], csv[2]) << "4 workers vs in-process";
  EXPECT_EQ(json[0], json[1]);
  EXPECT_EQ(json[0], json[2]);
}

TEST_F(ShardTest, WarmStoreSpawnsNoWorkersAndSpoolsNothing) {
  RunCache cold;
  cold.set_store_dir(subdir("store"));
  SweepSpec spec = small_spec();
  spec.cache = &cold;
  (void)run_sweep(spec);  // in-process, fills the store

  // Same spec, fresh cache over the warm store: the prefetch finds every
  // cell on disk and the swarm machinery never engages.
  RunCache warm;
  warm.set_store_dir(subdir("store"));
  spec.cache = &warm;
  spec.shard.workers = 4;
  spec.shard.spool_dir = subdir("spool");
  const ShardStats stats = shard_prefetch(spec, spec.expand_points());
  EXPECT_EQ(stats.served_from_store, stats.cells);
  EXPECT_EQ(stats.spooled, 0u);
  EXPECT_EQ(stats.workers_spawned, 0u);

  const SweepResult result = run_sweep(spec);
  EXPECT_EQ(result.cache_misses, 0u);
}

TEST_F(ShardTest, ShardWithoutCacheDirIsAnActionableError) {
  RunCache cache;  // no store dir attached
  SweepSpec spec = small_spec();
  spec.cache = &cache;
  spec.shard.workers = 2;
  try {
    (void)run_sweep(spec);
    FAIL() << "expected a runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("--shard-workers requires"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(ShardTest, AlwaysCrashingCellExhaustsRetriesIntoPerCellError) {
  // A 3-thread workload on a 2-thread machine: simulate_workload throws
  // std::invalid_argument deterministically, in every worker, on every
  // attempt. The sweep must fail with a clean per-cell error naming the
  // cell — never hang, never leave the swarm running.
  RunCache cache;
  cache.set_store_dir(subdir("store"));
  SweepSpec spec = small_spec();
  spec.with_fairness = false;
  spec.cache = &cache;
  spec.shard.workers = 2;
  spec.shard.spool_dir = subdir("spool");
  spec.shard.max_attempts = 2;  // keep the retry churn short

  trace::WorkloadSpec poison = spec.suite[0];
  poison.name = "poison.3thread";
  poison.threads.push_back(poison.threads[0]);
  poison.threads.push_back(poison.threads[0]);
  ASSERT_GT(poison.threads.size(),
            static_cast<std::size_t>(spec.base.num_threads));
  spec.suite = {spec.suite[1], poison};

  try {
    (void)run_sweep(spec);
    FAIL() << "expected the poisoned cell to surface as an error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("failed after"), std::string::npos) << what;
    EXPECT_NE(what.find("poison.3thread"), std::string::npos) << what;
  }

  // The healthy cells completed and are reusable: dropping the poisoned
  // workload, the same spec now runs entirely from the store.
  spec.suite.pop_back();
  spec.shard.spool_dir = subdir("spool2");
  RunCache fresh;
  fresh.set_store_dir(subdir("store"));
  spec.cache = &fresh;
  const SweepResult result = run_sweep(spec);
  EXPECT_EQ(result.cache_misses, 0u)
      << "healthy cells must have survived the failed sweep";

  // And the spool preserved the diagnosis for post-mortem: one terminal
  // cell per grid point (the poisoned workload keys differently under each
  // scheme).
  std::size_t terminal = 0;
  for (const auto& entry :
       fs::directory_iterator(fs::path(subdir("spool")) / "failed")) {
    terminal += entry.path().extension() == ".cell" ? 1 : 0;
  }
  EXPECT_EQ(terminal, 2u);
}

}  // namespace
}  // namespace clusmt::harness
