// Four-thread (SMT4) integration tests: the paper evaluates two threads,
// but the machine model accepts up to kMaxThreads contexts. These tests
// pin down the >2-thread behaviour the Flush++ extension targets and the
// generalisation of the suite/runner/fairness plumbing.
#include <gtest/gtest.h>

#include <set>

#include "core/simulator.h"
#include "harness/presets.h"
#include "harness/runner.h"
#include "policy/adaptive.h"
#include "trace/workload.h"

namespace clusmt {
namespace {

core::SimConfig smt4_config(policy::PolicyKind kind) {
  core::SimConfig config = harness::smt4_baseline();
  config.policy = kind;
  return config;
}

TEST(Smt4Config, RejectsRegisterFilesBelowArchitecturalFloor) {
  // 4 threads x 32 FP arch registers = 128 committed mappings; 64 regs per
  // cluster (128 total) leaves rename no headroom and wedges the machine.
  core::SimConfig config = harness::paper_baseline();  // 64 regs/cluster
  config.num_threads = 4;
  EXPECT_THROW(core::Simulator{config}, std::invalid_argument);

  // Unbounded register files are exempt from the floor.
  config.int_regs = 0;
  config.fp_regs = 0;
  EXPECT_NO_THROW(core::Simulator{config});

  // The SMT4 preset satisfies it by construction.
  EXPECT_NO_THROW(core::Simulator{harness::smt4_baseline()});
}

trace::WorkloadSpec first_mix(const std::vector<trace::WorkloadSpec>& suite) {
  for (const auto& w : suite) {
    if (w.type == "mix") return w;
  }
  return suite.front();
}

TEST(Smt4Suite, BuildsFourThreadWorkloads) {
  const auto suite = trace::build_smt4_suite(7, /*mixes_count=*/16);
  // 9 plain categories x 4 workloads + 2 ISPEC-FSPEC + 16 mixes.
  EXPECT_EQ(suite.size(), 9u * 4u + 2u + 16u);
  for (const auto& w : suite) {
    EXPECT_EQ(w.threads.size(), 4u) << w.name;
    EXPECT_NE(w.name.find(".4."), std::string::npos) << w.name;
  }
}

TEST(Smt4Suite, MixWorkloadsUseDistinctTraces) {
  const auto suite = trace::build_smt4_suite(7);
  for (const auto& w : suite) {
    if (w.category != "mixes") continue;
    std::set<std::string> ids;
    for (const auto& t : w.threads) ids.insert(t.id());
    EXPECT_EQ(ids.size(), 4u) << w.name;
  }
}

TEST(Smt4Suite, DeterministicForSameSeed) {
  const auto a = trace::build_smt4_suite(99);
  const auto b = trace::build_smt4_suite(99);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    for (std::size_t t = 0; t < 4; ++t) {
      EXPECT_EQ(a[i].threads[t].id(), b[i].threads[t].id());
      EXPECT_EQ(a[i].threads[t].seed, b[i].threads[t].seed);
    }
  }
}

TEST(Smt4Sim, FourThreadsAllCommit) {
  const auto suite = trace::build_smt4_suite(11);
  const trace::WorkloadSpec w = first_mix(suite);

  core::Simulator sim(smt4_config(policy::PolicyKind::kIcount));
  for (int t = 0; t < 4; ++t) sim.attach_thread(t, w.threads[t]);
  sim.run(40000);
  for (int t = 0; t < 4; ++t) {
    EXPECT_GT(sim.stats().committed[t], 50u) << "thread " << t;
  }
}

TEST(Smt4Sim, EveryPolicyMakesProgressWithFourThreads) {
  const auto suite = trace::build_smt4_suite(13);
  const trace::WorkloadSpec w = first_mix(suite);
  for (policy::PolicyKind kind : policy::all_policy_kinds()) {
    core::Simulator sim(smt4_config(kind));
    for (int t = 0; t < 4; ++t) sim.attach_thread(t, w.threads[t]);
    ASSERT_NO_THROW(sim.run(30000))
        << "policy " << policy::policy_kind_name(kind);
    EXPECT_GT(sim.stats().committed_total(), 2000u)
        << "policy " << policy::policy_kind_name(kind);
  }
}

TEST(Smt4Sim, FlushPlusPlusEntersFlushModeAtFour) {
  core::Simulator sim(smt4_config(policy::PolicyKind::kFlushPlusPlus));
  const auto suite = trace::build_smt4_suite(17);
  const trace::WorkloadSpec w = first_mix(suite);
  for (int t = 0; t < 4; ++t) sim.attach_thread(t, w.threads[t]);
  sim.run(5000);
  const auto& policy =
      dynamic_cast<const policy::FlushPlusPlusPolicy&>(sim.policy());
  EXPECT_FALSE(policy.stall_mode());
}

TEST(Smt4Sim, FlushPlusPlusActuallyFlushesWithFourThreads) {
  const auto suite = trace::build_smt4_suite(19);
  // A memory-heavy workload guarantees L2 misses.
  const trace::WorkloadSpec* mem = nullptr;
  for (const auto& w : suite) {
    if (w.type == "mem") {
      mem = &w;
      break;
    }
  }
  ASSERT_NE(mem, nullptr);

  core::Simulator sim(smt4_config(policy::PolicyKind::kFlushPlusPlus));
  for (int t = 0; t < 4; ++t) sim.attach_thread(t, mem->threads[t]);
  sim.run(60000);
  EXPECT_GT(sim.stats().policy_flushes, 0u);
}

TEST(Smt4Sim, FlushPlusPlusNeverFlushesWithTwoThreads) {
  const auto suite = trace::build_quick_suite(19, /*per_type=*/1);
  const trace::WorkloadSpec* mem = nullptr;
  for (const auto& w : suite) {
    if (w.type == "mem") {
      mem = &w;
      break;
    }
  }
  ASSERT_NE(mem, nullptr);

  core::SimConfig config = harness::paper_baseline();
  config.policy = policy::PolicyKind::kFlushPlusPlus;
  core::Simulator sim(config);
  sim.attach_thread(0, mem->threads[0]);
  sim.attach_thread(1, mem->threads[1]);
  sim.run(60000);
  EXPECT_EQ(sim.stats().policy_flushes, 0u);
}

TEST(Smt4Runner, RunsWorkloadAndComputesFairness) {
  const auto suite = trace::build_smt4_suite(23, /*mixes_count=*/1);
  core::SimConfig config = smt4_config(policy::PolicyKind::kCssp);
  harness::Runner runner(config, /*cycles=*/20000, /*warmup=*/5000);

  const trace::WorkloadSpec w = first_mix(suite);
  const harness::RunResult result = runner.run_workload(w);
  for (int t = 0; t < 4; ++t) EXPECT_GT(result.ipc[t], 0.0);
  EXPECT_GT(result.throughput, 0.0);

  const double fairness = runner.fairness_of(result, w);
  EXPECT_GT(fairness, 0.0);
  EXPECT_LE(fairness, 1.0 + 1e-9);
}

TEST(Smt4Runner, RejectsTwoThreadWorkloadUnderFourThreadConfig) {
  core::SimConfig config = smt4_config(policy::PolicyKind::kIcount);
  harness::Runner runner(config, 1000);
  const auto two_thread = trace::build_quick_suite(5, 1, 1);
  EXPECT_THROW((void)runner.run_workload(two_thread.front()),
               std::invalid_argument);
}

}  // namespace
}  // namespace clusmt
