// Persistence tier of the run cache: record round-trips, cross-instance
// ("cross-process") reuse through a shared directory, corruption and
// version-bump fallback to recompute, concurrent writers, and the
// sweep-level zero-simulation guarantee on a warm cache dir.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <string>
#include <vector>

#include "common/faultpoint.h"
#include "common/thread_pool.h"
#include "harness/presets.h"
#include "harness/run_cache.h"
#include "harness/run_store.h"
#include "harness/sweep.h"
#include "trace/workload.h"

namespace clusmt::harness {
namespace {

namespace fs = std::filesystem;

/// Fresh unique cache dir per test, removed on teardown.
class RunStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string tmpl =
        (fs::temp_directory_path() / "clusmt_store_XXXXXX").string();
    ASSERT_NE(::mkdtemp(tmpl.data()), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string dir_;
};

RunResult sample_result(double salt) {
  RunResult r;
  r.workload = "wl-α";  // non-ASCII survives the byte-exact string encoding
  r.category = "ISPEC00";
  r.type = "ILP";
  r.stats.cycles = 12345;
  r.stats.committed[0] = 1000;
  r.stats.committed[1] = 2000;
  r.stats.committed_copies = 37;
  r.stats.rename_block_rf = 11;
  r.stats.imbalance_events[1][2] = 99;
  r.stats.load_forwards = 5;
  r.ipc[0] = 1.25 + salt;
  r.ipc[1] = 0.75;
  r.throughput = 2.0 + salt;
  r.fairness = 0.9;
  return r;
}

void expect_equal(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.category, b.category);
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.stats.cycles, b.stats.cycles);
  for (int t = 0; t < kMaxThreads; ++t) {
    EXPECT_EQ(a.stats.committed[t], b.stats.committed[t]);
    EXPECT_EQ(a.ipc[t], b.ipc[t]);
  }
  EXPECT_EQ(a.stats.committed_copies, b.stats.committed_copies);
  EXPECT_EQ(a.stats.rename_block_rf, b.stats.rename_block_rf);
  EXPECT_EQ(a.stats.imbalance_events[1][2], b.stats.imbalance_events[1][2]);
  EXPECT_EQ(a.stats.load_forwards, b.stats.load_forwards);
  EXPECT_EQ(a.throughput, b.throughput);
  EXPECT_EQ(a.fairness, b.fairness);
}

// ---- Record encoding -----------------------------------------------------

TEST_F(RunStoreTest, RecordRoundTripsEveryField) {
  const RunKey key{0x0123456789abcdefull, 0xfedcba9876543210ull};
  const RunResult original = sample_result(0.5);
  const std::string record = encode_run_record(key, original);

  const auto decoded = decode_run_record(key, record);
  ASSERT_TRUE(decoded.has_value());
  expect_equal(original, *decoded);
}

TEST_F(RunStoreTest, DecodeRejectsForeignKeyAndGarbage) {
  const RunKey key{1, 2};
  const std::string record = encode_run_record(key, sample_result(0.0));

  EXPECT_FALSE(decode_run_record(RunKey{1, 3}, record).has_value());
  EXPECT_FALSE(decode_run_record(key, "").has_value());
  EXPECT_FALSE(decode_run_record(key, "not a record").has_value());
}

TEST_F(RunStoreTest, DecodeRejectsTruncationAndBitFlips) {
  const RunKey key{7, 8};
  const std::string record = encode_run_record(key, sample_result(0.25));

  for (const std::size_t cut : {record.size() - 1, record.size() / 2,
                                std::size_t{12}}) {
    EXPECT_FALSE(decode_run_record(key, record.substr(0, cut)).has_value())
        << "truncated to " << cut << " bytes";
  }
  // A flipped bit anywhere — header, payload, or checksum — invalidates.
  for (const std::size_t at : {std::size_t{9}, record.size() / 2,
                               record.size() - 3}) {
    std::string corrupt = record;
    corrupt[at] ^= 0x40;
    EXPECT_FALSE(decode_run_record(key, corrupt).has_value())
        << "bit flip at byte " << at;
  }
  // Trailing junk after a valid record is corruption too.
  EXPECT_FALSE(decode_run_record(key, record + "x").has_value());
}

TEST_F(RunStoreTest, VersionBumpReadsAsMiss) {
  const RunKey key{3, 4};
  std::string record = encode_run_record(key, sample_result(0.0));
  ASSERT_TRUE(decode_run_record(key, record).has_value());
  // Byte 4 is the low byte of the little-endian format version.
  record[4] = static_cast<char>(kRunStoreFormatVersion + 1);
  EXPECT_FALSE(decode_run_record(key, record).has_value());
}

// ---- RunStore files ------------------------------------------------------

TEST_F(RunStoreTest, SaveThenLoadAcrossStoreInstances) {
  const RunKey key{0xaa, 0xbb};
  const RunResult original = sample_result(1.0);
  {
    const RunStore writer(dir_);
    ASSERT_TRUE(writer.save(key, original));
  }
  const RunStore reader(dir_);
  const auto loaded = reader.load(key);
  ASSERT_TRUE(loaded.has_value());
  expect_equal(original, *loaded);

  EXPECT_FALSE(reader.load(RunKey{0xaa, 0xcc}).has_value());
}

TEST_F(RunStoreTest, TruncatedFileOnDiskIsAMiss) {
  const RunKey key{5, 6};
  const RunStore store(dir_);
  ASSERT_TRUE(store.save(key, sample_result(0.0)));

  const std::string path = store.path_of(key);
  const auto full_size = fs::file_size(path);
  fs::resize_file(path, full_size / 2);
  EXPECT_FALSE(store.load(key).has_value());
}

TEST_F(RunStoreTest, LeavesNoTempFilesBehind) {
  const RunStore store(dir_);
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(store.save(RunKey{i, i}, sample_result(0.0)));
  }
  for (const auto& entry : fs::recursive_directory_iterator(dir_)) {
    if (entry.is_regular_file()) {
      EXPECT_EQ(entry.path().extension(), ".run") << entry.path();
    }
  }
}

// ---- RunCache + store ----------------------------------------------------

TEST_F(RunStoreTest, SecondCacheInstanceLoadsInsteadOfComputing) {
  const RunKey key{11, 22};
  std::atomic<int> computes{0};
  const auto compute = [&] {
    computes.fetch_add(1);
    return sample_result(2.0);
  };

  RunCache first;
  first.set_store_dir(dir_);
  (void)first.get_or_run(key, compute);
  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(first.misses(), 1u);
  EXPECT_EQ(first.disk_hits(), 0u);

  // A fresh cache on the same dir — a new process, effectively — loads the
  // persisted record and never invokes compute.
  RunCache second;
  second.set_store_dir(dir_);
  const RunResult loaded = second.get_or_run(key, compute);
  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(second.misses(), 0u);
  EXPECT_EQ(second.disk_hits(), 1u);
  expect_equal(sample_result(2.0), loaded);

  // Memory tier still answers repeats without touching the disk counter.
  (void)second.get_or_run(key, compute);
  EXPECT_EQ(second.hits(), 1u);
  EXPECT_EQ(second.disk_hits(), 1u);
}

TEST_F(RunStoreTest, CorruptRecordFallsBackToCompute) {
  const RunKey key{33, 44};
  RunCache first;
  first.set_store_dir(dir_);
  (void)first.get_or_run(key, [] { return sample_result(0.0); });

  // Mangle the record in place.
  const std::string path = RunStore(dir_).path_of(key);
  std::ofstream(path, std::ios::binary) << "corrupted";

  RunCache second;
  second.set_store_dir(dir_);
  std::atomic<int> computes{0};
  (void)second.get_or_run(key, [&] {
    computes.fetch_add(1);
    return sample_result(3.0);
  });
  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(second.misses(), 1u);
  EXPECT_EQ(second.disk_hits(), 0u);

  // ... and the recompute healed the record for the next instance.
  RunCache third;
  third.set_store_dir(dir_);
  expect_equal(sample_result(3.0),
               third.get_or_run(key, [] { return sample_result(9.0); }));
  EXPECT_EQ(third.disk_hits(), 1u);
}

TEST_F(RunStoreTest, ConcurrentWritersToOneDirAgree) {
  // Two caches (processes) x 8 workers race over the same keys in one dir;
  // every answer must be the deterministic function of the key.
  RunCache a;
  RunCache b;
  a.set_store_dir(dir_);
  b.set_store_dir(dir_);

  const auto value_of = [](std::uint64_t k) {
    RunResult r = sample_result(0.0);
    r.throughput = static_cast<double>(k) * 1.5;
    return r;
  };

  ThreadPool pool(8);
  std::vector<std::future<RunResult>> futures;
  for (int round = 0; round < 4; ++round) {
    for (std::uint64_t k = 0; k < 8; ++k) {
      RunCache& cache = (round + k) % 2 == 0 ? a : b;
      futures.push_back(pool.submit_task([&cache, k, value_of] {
        return cache.get_or_run(RunKey{k, ~k}, [&] { return value_of(k); });
      }));
    }
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const std::uint64_t k = i % 8;
    EXPECT_DOUBLE_EQ(futures[i].get().throughput,
                     static_cast<double>(k) * 1.5);
  }
  // Each key computed at most once per cache (the store may have saved
  // either copy; both encode the same bytes).
  EXPECT_LE(a.misses() + b.misses(), 16u);
  for (std::uint64_t k = 0; k < 8; ++k) {
    EXPECT_TRUE(RunStore(dir_).load(RunKey{k, ~k}).has_value());
  }
}

// ---- Injected-fault recovery (common/faultpoint.h) -----------------------

TEST_F(RunStoreTest, EnospcSaveFailsCleanlyAndKeepsThePriorRecord) {
  const RunKey key{21, 42};
  const RunStore store(dir_);
  ASSERT_TRUE(store.save(key, sample_result(0.0)));
  const std::string before =
      [&] {
        std::ifstream in(store.path_of(key), std::ios::binary);
        return std::string((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
      }();

  // The disk fills mid-write: the save reports failure, the temp file is
  // cleaned up, and the previously persisted record is untouched.
  faultpoint::arm("fsio.write", faultpoint::Mode::kEnospc);
  EXPECT_FALSE(store.save(key, sample_result(9.0)));
  faultpoint::disarm_all();

  std::ifstream in(store.path_of(key), std::ios::binary);
  const std::string after((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  EXPECT_EQ(after, before) << "a failed write must leave the old record";
  const auto loaded = store.load(key);
  ASSERT_TRUE(loaded.has_value());
  expect_equal(sample_result(0.0), *loaded);
  // No orphan temp files either: the failed write cleaned up after itself.
  std::size_t strays = 0;
  for (const auto& entry : fs::recursive_directory_iterator(dir_)) {
    if (entry.is_regular_file() && entry.path().extension() != ".run") {
      ++strays;
    }
  }
  EXPECT_EQ(strays, 0u);
}

TEST_F(RunStoreTest, TornWriteReadsAsMissAndCountsAsCorrupt) {
  const RunKey key{5, 6};
  const RunStore store(dir_);

  // A torn write REPORTS SUCCESS (the silent corruption a non-atomic
  // filesystem produces) but lands only a prefix of the record.
  faultpoint::arm("fsio.write", faultpoint::Mode::kPartial);
  EXPECT_TRUE(store.save(key, sample_result(0.0)));
  faultpoint::disarm_all();

  const std::uint64_t corrupt_before = run_store_corrupt_reads();
  EXPECT_FALSE(store.load(key).has_value())
      << "the checksum must reject the torn record";
  EXPECT_EQ(run_store_corrupt_reads(), corrupt_before + 1)
      << "a rejected record must be surfaced, not silently recomputed";

  // A clean rewrite recovers the cell.
  ASSERT_TRUE(store.save(key, sample_result(0.0)));
  EXPECT_TRUE(store.load(key).has_value());
}

TEST_F(RunStoreTest, InjectedLoadErrorIsAMissNotCorruption) {
  const RunKey key{30, 31};
  const RunStore store(dir_);
  ASSERT_TRUE(store.save(key, sample_result(0.0)));

  const std::uint64_t corrupt_before = run_store_corrupt_reads();
  faultpoint::arm("run_store.load", faultpoint::Mode::kError);
  EXPECT_FALSE(store.load(key).has_value());
  faultpoint::disarm_all();
  EXPECT_EQ(run_store_corrupt_reads(), corrupt_before)
      << "an I/O error is not a corrupt record";
  EXPECT_TRUE(store.load(key).has_value()) << "the record itself is fine";
}

TEST_F(RunStoreTest, UnwritableDirDegradesToProcessLocalCaching) {
  RunCache cache;
  cache.set_store_dir("/proc/definitely/not/writable");
  std::atomic<int> computes{0};
  const RunKey key{1, 1};
  (void)cache.get_or_run(key, [&] {
    computes.fetch_add(1);
    return sample_result(0.0);
  });
  (void)cache.get_or_run(key, [&] {
    computes.fetch_add(1);
    return sample_result(0.0);
  });
  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(cache.hits(), 1u);
}

// ---- Sweep-level persistence (the acceptance-criterion shape) ------------

TEST_F(RunStoreTest, WarmCacheDirMakesSecondSweepSimulateNothing) {
  SweepSpec spec;
  spec.suite = trace::build_quick_suite(1, 1, 2);
  spec.suite.resize(3);
  spec.cycles = 1500;
  spec.warmup = 300;
  spec.jobs = 2;
  spec.with_fairness = true;
  spec.progress = false;
  spec.base = paper_baseline();
  spec.axes = {{"scheme",
                {{"Icount",
                  [](core::SimConfig& c) {
                    c.policy = policy::PolicyKind::kIcount;
                  }},
                 {"CDPRF", [](core::SimConfig& c) {
                    c.policy = policy::PolicyKind::kCdprf;
                  }}}}};

  RunCache cold;
  cold.set_store_dir(dir_);
  spec.cache = &cold;
  const SweepResult first = run_sweep(spec);
  EXPECT_GT(first.cache_misses, 0u);
  EXPECT_EQ(first.cache_disk_hits, 0u);

  // A fresh cache over the same dir — the "second invocation of the bench"
  // — performs zero simulations: every cell loads from disk.
  RunCache warm;
  warm.set_store_dir(dir_);
  spec.cache = &warm;
  const SweepResult second = run_sweep(spec);
  EXPECT_EQ(second.cache_misses, 0u);
  EXPECT_GT(second.cache_disk_hits, 0u);

  // And the tables are bit-identical to the computed ones.
  for (std::size_t p = 0; p < first.cells.size(); ++p) {
    for (std::size_t w = 0; w < first.cells[p].size(); ++w) {
      EXPECT_EQ(first.cells[p][w].throughput, second.cells[p][w].throughput);
      EXPECT_EQ(first.cells[p][w].fairness, second.cells[p][w].fairness);
    }
  }
}

// ---- Garbage collection (cache_gc) ---------------------------------------

TEST_F(RunStoreTest, GcEnforcesSizeCapOldestFirst) {
  RunStore store(dir_);
  // Ten records with strictly increasing mtimes (explicitly set: the test
  // must not depend on filesystem timestamp granularity).
  std::vector<std::string> paths;
  for (int i = 0; i < 10; ++i) {
    const RunKey key{static_cast<std::uint64_t>(i) << 56, 7ull + i};
    ASSERT_TRUE(store.save(key, sample_result(0.01 * i)));
    paths.push_back(store.path_of(key));
    fs::last_write_time(paths.back(),
                        fs::file_time_type::clock::now() -
                            std::chrono::hours(100 - i));
  }
  const auto record_bytes = fs::file_size(paths[0]);

  // Cap at ~4 records: the six oldest must go, the four newest stay.
  GcOptions options;
  options.max_bytes = record_bytes * 4;
  const GcResult result = gc_run_store(dir_, options);
  EXPECT_EQ(result.scanned_files, 10u);
  EXPECT_EQ(result.deleted_files, 6u);
  EXPECT_EQ(result.deleted_bytes, record_bytes * 6);
  for (int i = 0; i < 6; ++i) EXPECT_FALSE(fs::exists(paths[i])) << i;
  for (int i = 6; i < 10; ++i) EXPECT_TRUE(fs::exists(paths[i])) << i;
}

TEST_F(RunStoreTest, GcFileCapDryRunAndForeignFilesUntouched) {
  RunStore store(dir_);
  for (int i = 0; i < 5; ++i) {
    const RunKey key{static_cast<std::uint64_t>(i) << 56, 11ull + i};
    ASSERT_TRUE(store.save(key, sample_result(0.0)));
    fs::last_write_time(store.path_of(key),
                        fs::file_time_type::clock::now() -
                            std::chrono::hours(50 - i));
  }
  // A non-record file in the dir must be ignored by scan and never deleted.
  const fs::path foreign = fs::path(dir_) / "README.txt";
  std::ofstream(foreign) << "not a record";

  GcOptions dry{.max_files = 2, .dry_run = true};
  const GcResult planned = gc_run_store(dir_, dry);
  EXPECT_EQ(planned.scanned_files, 5u);
  EXPECT_EQ(planned.deleted_files, 3u);
  std::size_t live = 0;
  for (auto it = fs::recursive_directory_iterator(dir_);
       it != fs::recursive_directory_iterator(); ++it) {
    if (it->is_regular_file() && it->path().extension() == ".run") ++live;
  }
  EXPECT_EQ(live, 5u) << "dry run must not delete";

  GcOptions real{.max_files = 2};
  const GcResult swept = gc_run_store(dir_, real);
  EXPECT_EQ(swept.deleted_files, 3u);
  EXPECT_TRUE(fs::exists(foreign));

  // Kept records still load (GC never corrupts survivors).
  const RunKey newest{4ull << 56, 15ull};
  EXPECT_TRUE(store.load(newest).has_value());
}

TEST_F(RunStoreTest, GcOnMissingDirIsEmpty) {
  const GcResult result =
      gc_run_store(dir_ + "/does-not-exist", GcOptions{.max_bytes = 1});
  EXPECT_EQ(result.scanned_files, 0u);
  EXPECT_EQ(result.deleted_files, 0u);
}

}  // namespace
}  // namespace clusmt::harness
