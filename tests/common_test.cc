#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.h"
#include "common/csv.h"
#include "common/fsio.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "common/types.h"

namespace clusmt {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, BoundedStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
}

TEST(Rng, BoundedCoversRange) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.bounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Xoshiro256 rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ChanceExtremes) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, GeometricMeanMatchesTheory) {
  Xoshiro256 rng(13);
  const double p = 0.25;
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.geometric(p, 1000));
  }
  // E[failures before success] = (1-p)/p = 3.
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, GeometricRespectsCap) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LE(rng.geometric(0.01, 5), 5u);
  }
}

TEST(Rng, HashCombineChanges) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  EXPECT_NE(hash_combine(1, 2), hash_combine(1, 3));
  EXPECT_EQ(hash_combine(10, 20), hash_combine(10, 20));
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.7 - 3;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(GeomeanStats, MatchesClosedForm) {
  GeomeanStats g;
  EXPECT_TRUE(g.add(2.0));
  EXPECT_TRUE(g.add(8.0));
  EXPECT_DOUBLE_EQ(g.geomean(), 4.0);
  EXPECT_FALSE(g.add(0.0));
  EXPECT_FALSE(g.add(-1.0));
  EXPECT_EQ(g.count(), 2u);
}

TEST(SpanStats, MeanGeomeanHarmonic) {
  const std::vector<double> xs = {1.0, 2.0, 4.0};
  EXPECT_NEAR(mean_of(xs), 7.0 / 3.0, 1e-12);
  EXPECT_NEAR(geomean_of(xs), 2.0, 1e-12);
  EXPECT_NEAR(harmonic_mean_of(xs), 3.0 / (1.0 + 0.5 + 0.25), 1e-12);
  EXPECT_EQ(mean_of({}), 0.0);
}

TEST(Histogram, AddAndQuantiles) {
  Histogram h(10);
  for (std::uint64_t v = 0; v < 10; ++v) h.add(v);
  EXPECT_EQ(h.total(), 10u);
  EXPECT_DOUBLE_EQ(h.mean(), 4.5);
  EXPECT_EQ(h.quantile(0.5), 4u);
  EXPECT_EQ(h.quantile(1.0), 9u);
}

TEST(Histogram, OverflowClamps) {
  Histogram h(4);
  h.add(100, 3);
  EXPECT_EQ(h.count(3), 3u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, MergeAndFraction) {
  Histogram a(4), b(4);
  a.add(0, 2);
  b.add(1, 2);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.fraction(0), 0.5);
  EXPECT_DOUBLE_EQ(a.fraction(1), 0.5);
  Histogram c(5);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  // header + rule + 2 rows
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Csv, QuotesSpecialCharacters) {
  CsvWriter csv({"a", "b"});
  csv.add_row({"x,y", "he said \"hi\""});
  const std::string out = csv.to_string();
  EXPECT_NE(out.find("\"x,y\""), std::string::npos);
  EXPECT_NE(out.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Csv, JsonKeepsColumnOrderAndNumberTyping) {
  CsvWriter csv({"name", "value"});
  csv.add_row({"alpha", "1.500"});
  csv.add_row({"be\"ta", "12%"});
  const std::string out = csv.to_json();
  // Keys in header order; numeric cells bare, non-numeric cells quoted.
  EXPECT_NE(out.find("{\"name\": \"alpha\", \"value\": 1.500}"),
            std::string::npos);
  EXPECT_NE(out.find("{\"name\": \"be\\\"ta\", \"value\": \"12%\"}"),
            std::string::npos);
}

TEST(Csv, JsonQuotesTokensStrtodWouldAccept) {
  // strtod consumes these fully, but they are not JSON numbers — they must
  // be emitted as strings or the document is unparseable.
  CsvWriter csv({"v"});
  for (const char* cell : {"nan", "inf", "-inf", "0x1A", " 1", "1.", "017"}) {
    csv.add_row({cell});
  }
  csv.add_row({"-12.5e3"});  // and this one IS a JSON number
  const std::string out = csv.to_json();
  EXPECT_NE(out.find("{\"v\": \"nan\"}"), std::string::npos);
  EXPECT_NE(out.find("{\"v\": \"inf\"}"), std::string::npos);
  EXPECT_NE(out.find("{\"v\": \"-inf\"}"), std::string::npos);
  EXPECT_NE(out.find("{\"v\": \"0x1A\"}"), std::string::npos);
  EXPECT_NE(out.find("{\"v\": \" 1\"}"), std::string::npos);
  EXPECT_NE(out.find("{\"v\": \"1.\"}"), std::string::npos);
  EXPECT_NE(out.find("{\"v\": \"017\"}"), std::string::npos);
  EXPECT_NE(out.find("{\"v\": -12.5e3}"), std::string::npos);
}

TEST(Csv, JsonPadsShortRowsWithNull) {
  // A short row must still carry every header key (the stable-column
  // contract the golden gate diffs against), with null flagging the gap.
  CsvWriter csv({"a", "b", "c"});
  csv.add_row({"full", "1.0", "2.0"});
  csv.add_row({"short"});
  const std::string out = csv.to_json();
  EXPECT_NE(out.find("{\"a\": \"full\", \"b\": 1.0, \"c\": 2.0}"),
            std::string::npos);
  EXPECT_NE(out.find("{\"a\": \"short\", \"b\": null, \"c\": null}"),
            std::string::npos);
}

TEST(Csv, WriteFilesAreAtomicAndComplete) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "clusmt_csv_test").string();
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/out.csv";

  CsvWriter csv({"k", "v"});
  csv.add_row({"x", "1"});
  ASSERT_TRUE(csv.write_file(path));
  ASSERT_TRUE(csv.write_json_file(path + ".json"));

  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, csv.to_string());

  // No temp droppings, and a failed write reports rather than truncates.
  std::size_t files = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    ++files;
    EXPECT_EQ(e.path().filename().string().find(".tmp."), std::string::npos);
  }
  EXPECT_EQ(files, 2u);
  EXPECT_FALSE(csv.write_file(dir + "/missing/sub/dir.csv"));
  std::filesystem::remove_all(dir);
}

TEST(Fsio, AtomicWriteReplacesWholeFile) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "clusmt_fsio_test").string();
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/data.txt";
  ASSERT_TRUE(write_file_atomic(path, "first version"));
  ASSERT_TRUE(write_file_atomic(path, "second"));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "second");
  EXPECT_FALSE(write_file_atomic(dir + "/no/such/dir.txt", "x"));
  std::filesystem::remove_all(dir);
}

TEST(CliDeath, MalformedIntegerExitsWithError) {
  // "--cycles=10k" must not silently run 10 cycles.
  const char* argv[] = {"prog", "--cycles=10k"};
  const CliArgs args(2, argv);
  EXPECT_EXIT((void)args.get_int("cycles", 0),
              ::testing::ExitedWithCode(2), "--cycles expects an integer");
}

TEST(CliDeath, BareFlagAskedAsIntegerExitsWithError) {
  // "--jobs" with no value parses as boolean "true"; reading it as a
  // number must not silently become 0.
  const char* argv[] = {"prog", "--jobs"};
  const CliArgs args(2, argv);
  EXPECT_EXIT((void)args.get_int("jobs", 4), ::testing::ExitedWithCode(2),
              "--jobs expects an integer");
}

TEST(CliDeath, MalformedDoubleExitsWithError) {
  const char* argv[] = {"prog", "--frac=abc"};
  const CliArgs args(2, argv);
  EXPECT_EXIT((void)args.get_double("frac", 0.5),
              ::testing::ExitedWithCode(2), "--frac expects a number");
}

TEST(CliDeath, IntListJunkTokenExitsWithError) {
  // "--iq=48,16x" must not silently truncate the second cluster to 16.
  const char* argv[] = {"prog", "--iq=48,16x"};
  const CliArgs args(2, argv);
  EXPECT_EXIT((void)args.get_int_list("iq"), ::testing::ExitedWithCode(2),
              "--iq expects a comma-separated list");
}

TEST(CliDeath, IntListEmptyElementExitsWithError) {
  // A dangling comma ("48,") or a double comma ("48,,16") is a malformed
  // list, not a shorter one.
  const char* trailing[] = {"prog", "--iq=48,"};
  EXPECT_EXIT((void)CliArgs(2, trailing).get_int_list("iq"),
              ::testing::ExitedWithCode(2),
              "--iq expects a comma-separated list");
  const char* doubled[] = {"prog", "--width=4,,2"};
  EXPECT_EXIT((void)CliArgs(2, doubled).get_int_list("width"),
              ::testing::ExitedWithCode(2),
              "--width expects a comma-separated list");
}

TEST(CliDeath, IntListNegativeValueExitsWithError) {
  // Shape fields are sizes; -16 IQ entries is a usage error, not a value.
  const char* argv[] = {"prog", "--iq=48,-16"};
  const CliArgs args(2, argv);
  EXPECT_EXIT((void)args.get_int_list("iq"), ::testing::ExitedWithCode(2),
              "non-negative");
}

TEST(CliDeath, BareFlagAskedAsIntListExitsWithError) {
  const char* argv[] = {"prog", "--iq"};
  const CliArgs args(2, argv);
  EXPECT_EXIT((void)args.get_int_list("iq"), ::testing::ExitedWithCode(2),
              "--iq expects a comma-separated list");
}

TEST(Cli, WellFormedIntListsParse) {
  const char* argv[] = {"prog", "--iq=48,16", "--width=3", "--link=1,4,4,1"};
  const CliArgs args(4, argv);
  EXPECT_EQ(args.get_int_list("iq"),
            (std::vector<std::int64_t>{48, 16}));
  EXPECT_EQ(args.get_int_list("width"), (std::vector<std::int64_t>{3}));
  EXPECT_EQ(args.get_int_list("link"),
            (std::vector<std::int64_t>{1, 4, 4, 1}));
  EXPECT_TRUE(args.get_int_list("absent").empty());
}

TEST(Cli, WellFormedNumbersStillParse) {
  const char* argv[] = {"prog", "--n=-42", "--x=2.5e-3", "--big=123456789"};
  const CliArgs args(4, argv);
  EXPECT_EQ(args.get_int("n", 0), -42);
  EXPECT_DOUBLE_EQ(args.get_double("x", 0.0), 2.5e-3);
  EXPECT_EQ(args.get_int("big", 0), 123456789);
  EXPECT_DOUBLE_EQ(args.get_double("n", 0.0), -42.0);  // int as double: fine
  EXPECT_EQ(args.get_int("absent", 7), 7);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SubmitTaskReturnsValue) {
  ThreadPool pool(2);
  auto doubled = pool.submit_task([] { return 21 * 2; });
  auto text = pool.submit_task([] { return std::string("ok"); });
  EXPECT_EQ(doubled.get(), 42);
  EXPECT_EQ(text.get(), "ok");
}

TEST(ThreadPool, SubmitTaskPropagatesException) {
  ThreadPool pool(2);
  auto failing = pool.submit_task(
      []() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)failing.get(), std::runtime_error);
}

TEST(ThreadPool, SubmitBulkCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  auto futures =
      pool.submit_bulk(hits.size(), [&](std::size_t i) { hits[i]++; });
  ASSERT_EQ(futures.size(), hits.size());
  for (auto& f : futures) f.get();
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SubmitBulkReportsPerIndexFailure) {
  ThreadPool pool(2);
  auto futures = pool.submit_bulk(3, [](std::size_t i) {
    if (i == 1) throw std::runtime_error("index 1");
  });
  EXPECT_NO_THROW(futures[0].get());
  EXPECT_THROW(futures[1].get(), std::runtime_error);
  EXPECT_NO_THROW(futures[2].get());
}

TEST(ParallelFor, CoversAllIndices) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, 4);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroAndSingle) {
  parallel_for(0, [](std::size_t) { FAIL(); });
  int calls = 0;
  parallel_for(1, [&](std::size_t) { ++calls; }, 1);
  EXPECT_EQ(calls, 1);
}

TEST(Cli, ParsesAllForms) {
  // Note: a bare "--flag" followed by a non-flag token consumes it as a
  // value, so positionals must precede boolean flags.
  const char* argv[] = {"prog",   "--alpha=3", "--beta", "7",
                        "pos1",   "--flag",    "--gamma=x,y"};
  CliArgs args(7, argv);
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_EQ(args.get_int("beta", 0), 7);
  EXPECT_TRUE(args.get_bool("flag", false));
  EXPECT_EQ(args.get_string("gamma", ""), "x,y");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
  EXPECT_EQ(args.get_int("missing", -5), -5);
}

TEST(Types, ArchRegClassBoundaries) {
  EXPECT_EQ(arch_reg_class(0), RegClass::kInt);
  EXPECT_EQ(arch_reg_class(kNumIntArchRegs - 1), RegClass::kInt);
  EXPECT_EQ(arch_reg_class(kNumIntArchRegs), RegClass::kFp);
  EXPECT_EQ(arch_reg_class(kNumArchRegs - 1), RegClass::kFp);
  EXPECT_TRUE(is_valid_arch_reg(0));
  EXPECT_FALSE(is_valid_arch_reg(-1));
  EXPECT_FALSE(is_valid_arch_reg(kNumArchRegs));
}

}  // namespace
}  // namespace clusmt
