// Chaos-hardening of the distributed sweep/store/spool stack
// (common/faultpoint.h): multi-worker sharded sweeps run under randomized
// fault schedules — worker crashes after claim and before ack, injected
// simulation failures, torn store writes, read errors, spawn failures —
// and the resulting tables must be BYTE-identical to a fault-free run,
// with the shared store exactly-once-effective (one valid record per cell,
// byte-identical to the fault-free record). Also covers the full-disk
// degradation of the run store to a memory-only tier, and the
// --degrade-local rescue of a swarm that cannot spawn.
//
// Worker-side faults are armed through $CLUSMT_FAULTS (inherited by the
// spawned sweep_worker processes); coordinator-side faults are armed
// programmatically — crash-mode points only ever fire in workers because
// the coordinator never claims or acks.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/faultpoint.h"
#include "harness/presets.h"
#include "harness/run_cache.h"
#include "harness/shard.h"
#include "harness/sweep.h"
#include "trace/workload.h"

namespace clusmt::harness {
namespace {

namespace fs = std::filesystem;

// Captured before any test runs (ChaosTest fixtures unset the variable):
// the schedule the CI job exported, if any.
const std::string g_ambient_faults = [] {
  const char* env = std::getenv("CLUSMT_FAULTS");
  return env != nullptr ? std::string(env) : std::string();
}();

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Neutralize any ambient schedule (e.g. the CI smoke arming): every
    // test arms exactly the faults it wants, and the fault-free reference
    // runs must really be fault-free.
    faultpoint::disarm_all();
    ::unsetenv("CLUSMT_FAULTS");
    std::string tmpl =
        (fs::temp_directory_path() / "clusmt_chaos_XXXXXX").string();
    ASSERT_NE(::mkdtemp(tmpl.data()), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    faultpoint::disarm_all();
    ::unsetenv("CLUSMT_FAULTS");
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  [[nodiscard]] std::string subdir(const std::string& name) const {
    return (fs::path(dir_) / name).string();
  }

  std::string dir_;
};

/// Same small grid as shard_test: 2 schemes x 3 workloads with fairness
/// baselines — grid cells, dedup, and baseline spooling, kept quick.
SweepSpec small_spec() {
  SweepSpec spec;
  spec.suite = trace::build_quick_suite(1, 1, 2);
  spec.suite.resize(3);
  spec.cycles = 1500;
  spec.warmup = 300;
  spec.jobs = 2;
  spec.with_fairness = true;
  spec.progress = false;
  spec.base = paper_baseline();
  spec.axes = {{"scheme",
                {{"Icount",
                  [](core::SimConfig& c) {
                    c.policy = policy::PolicyKind::kIcount;
                  }},
                 {"CDPRF", [](core::SimConfig& c) {
                    c.policy = policy::PolicyKind::kCdprf;
                  }}}}};
  return spec;
}

/// The emitted artifact bytes, as a bench would write them.
std::string render_csv(const SweepResult& result) {
  std::vector<std::pair<std::string, std::vector<double>>> series;
  for (std::size_t p = 0; p < result.points.size(); ++p) {
    series.emplace_back(result.points[p].label + " thr",
                        result.throughput(p));
    series.emplace_back(result.points[p].label + " fair",
                        result.fairness(p));
  }
  return category_table(result.suite, series, 6).to_csv();
}

std::string render_json(const SweepResult& result) {
  std::vector<std::pair<std::string, std::vector<double>>> series;
  for (std::size_t p = 0; p < result.points.size(); ++p) {
    series.emplace_back(result.points[p].label, result.throughput(p));
  }
  return category_table(result.suite, series, 6).to_json();
}

/// Every .run record under `dir`, keyed by store-relative path. Orphan
/// temp files from injected crashes are deliberately not collected: they
/// are invisible to readers, which is the point of atomic writes.
std::map<std::string, std::string> store_records(const std::string& dir) {
  std::map<std::string, std::string> out;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    std::error_code fec;
    if (!it->is_regular_file(fec) || it->path().extension() != ".run") {
      continue;
    }
    std::ifstream in(it->path(), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::error_code rel_ec;
    out.emplace(fs::relative(it->path(), dir, rel_ec).string(),
                std::move(bytes));
  }
  return out;
}

// The acceptance-criterion test: >= 2 workers, >= 6 distinct fault points
// across worker and coordinator processes, randomized per-round schedules,
// and byte-identical artifacts + store against a fault-free reference.
TEST_F(ChaosTest, ShardedSweepUnderFaultScheduleMatchesFaultFreeRun) {
  // Fault-free reference: the table bytes and the exact store records.
  SweepSpec ref_spec = small_spec();
  RunCache ref_cache;
  ref_cache.set_store_dir(subdir("store-ref"));
  ref_spec.cache = &ref_cache;
  const SweepResult reference = run_sweep(ref_spec);
  const std::string ref_csv = render_csv(reference);
  const std::string ref_json = render_json(reference);
  const auto ref_records = store_records(subdir("store-ref"));
  ASSERT_FALSE(ref_records.empty());

  for (int round = 0; round < 2; ++round) {
    SCOPED_TRACE("chaos round " + std::to_string(round));
    const std::string tag = std::to_string(round);
    const std::string seed = std::to_string(100 + round);

    // Worker-side schedule, inherited via the environment by every
    // sweep_worker the coordinator spawns. Crash points land in the
    // claim->ack window; the rest are error/torn-write/read faults whose
    // worst case is a recompute.
    const std::string worker_schedule =
        "spool.claim:crash:0.04:" + seed +
        ";spool.ack:crash:0.04:" + seed +
        ";worker.sim:error:0.08:" + seed +
        ";fsio.write:partial:0.05:" + seed +
        ";run_store.load:error:0.1:" + seed;
    ASSERT_EQ(::setenv("CLUSMT_FAULTS", worker_schedule.c_str(), 1), 0);
    // The coordinator process must not run the worker schedule: clear
    // everything (this also forces the env parse, making the clear stick
    // for this process) and arm coordinator-side faults explicitly.
    faultpoint::disarm_all();
    faultpoint::arm("shard.spawn",
                    {faultpoint::Mode::kError, 1.0,
                     static_cast<std::uint64_t>(round), /*max_fires=*/1, 20});
    faultpoint::arm("run_store.load", faultpoint::Mode::kError, 0.15,
                    static_cast<std::uint64_t>(round));

    RunCache cache;
    cache.set_store_dir(subdir("store-" + tag));
    SweepSpec spec = small_spec();
    spec.cache = &cache;
    spec.shard.workers = 2;
    spec.shard.spool_dir = subdir("spool-" + tag);
    spec.shard.max_attempts = 8;
    spec.shard.lease_ms = 600;
    spec.shard.idle_timeout_ms = 4000;
    spec.shard.degrade_local = true;  // liveness backstop: never hang CI
    const SweepResult result = run_sweep(spec);

    // The armed spawn fault deterministically ate the first spawn attempt.
    EXPECT_EQ(faultpoint::fires("shard.spawn"), 1u);
    faultpoint::disarm_all();
    ::unsetenv("CLUSMT_FAULTS");

    // Tables byte-identical to the fault-free run.
    EXPECT_EQ(render_csv(result), ref_csv);
    EXPECT_EQ(render_json(result), ref_json);

    // Store exactly-once-effective: exactly one record per cell, each
    // byte-identical to the fault-free record (duplicate executions and
    // torn writes must never leave a second or different version).
    const auto records = store_records(subdir("store-" + tag));
    EXPECT_EQ(records.size(), ref_records.size());
    for (const auto& [rel, bytes] : ref_records) {
      const auto it = records.find(rel);
      ASSERT_NE(it, records.end()) << "missing record " << rel;
      EXPECT_EQ(it->second, bytes) << "record bytes differ: " << rel;
    }
  }
}

TEST_F(ChaosTest, FullDiskStoreDegradesToMemoryOnlyWithWarning) {
  // Every save fails (the disk is "full" from the first write): the sweep
  // must complete with correct numbers, warn once, and demote the store to
  // memory-only instead of aborting or warning per cell.
  SweepSpec ref_spec = small_spec();
  RunCache ref_cache;  // no store attached: pure in-memory reference
  ref_spec.cache = &ref_cache;
  const std::string ref_csv = render_csv(run_sweep(ref_spec));

  faultpoint::arm("run_store.save", faultpoint::Mode::kError);
  RunCache cache;
  cache.set_store_dir(subdir("store"));
  SweepSpec spec = small_spec();
  spec.cache = &cache;
  ::testing::internal::CaptureStderr();
  const SweepResult result = run_sweep(spec);
  const std::string log = ::testing::internal::GetCapturedStderr();
  faultpoint::disarm_all();

  EXPECT_EQ(render_csv(result), ref_csv) << "degradation must not change "
                                            "results";
  EXPECT_TRUE(cache.store_write_degraded());
  EXPECT_GE(cache.save_failures(),
            static_cast<std::uint64_t>(RunCache::kDegradeAfterSaveFailures));
  EXPECT_NE(log.find("degraded to memory-only"), std::string::npos) << log;
  EXPECT_TRUE(store_records(subdir("store")).empty())
      << "no record can land while every write fails";

  // Re-attaching a (healthy) store clears the degradation.
  cache.set_store_dir(subdir("store2"));
  EXPECT_FALSE(cache.store_write_degraded());
}

TEST_F(ChaosTest, SpawnFailuresDegradeToLocalWhenRequested) {
  SweepSpec ref_spec = small_spec();
  RunCache ref_cache;
  ref_spec.cache = &ref_cache;
  const std::string ref_csv = render_csv(run_sweep(ref_spec));

  // Default (degrade_local off): an unspawnable worker binary aborts.
  {
    RunCache cache;
    cache.set_store_dir(subdir("store-abort"));
    SweepSpec spec = small_spec();
    spec.cache = &cache;
    spec.shard.workers = 2;
    spec.shard.spool_dir = subdir("spool-abort");
    spec.shard.worker_bin = subdir("no-such-binary");
    EXPECT_THROW((void)run_sweep(spec), std::runtime_error);
  }

  // degrade_local: the same dead swarm falls back to in-process
  // simulation and the sweep completes bit-identically.
  {
    RunCache cache;
    cache.set_store_dir(subdir("store-degrade"));
    SweepSpec spec = small_spec();
    spec.cache = &cache;
    spec.shard.workers = 2;
    spec.shard.spool_dir = subdir("spool-degrade");
    spec.shard.worker_bin = subdir("no-such-binary");
    spec.shard.degrade_local = true;
    const ShardStats stats = shard_prefetch(spec, spec.expand_points());
    EXPECT_GT(stats.simulated_locally, 0u);
    EXPECT_EQ(stats.simulated_locally, stats.spooled);
    EXPECT_EQ(stats.workers_spawned, 0);

    const SweepResult result = run_sweep(spec);  // fully warm now
    EXPECT_EQ(result.cache_misses, 0u);
    EXPECT_EQ(render_csv(result), ref_csv);
  }
}

// CI smoke hook: when the job exports an ambient CLUSMT_FAULTS (the ASan
// lane does), its schedule must at least parse — a typo in the workflow
// should fail loudly here instead of silently arming nothing.
TEST(ChaosEnvSmoke, AmbientScheduleParsesCleanly) {
  if (g_ambient_faults.empty()) GTEST_SKIP() << "no ambient CLUSMT_FAULTS";
  EXPECT_TRUE(faultpoint::arm_from_spec(g_ambient_faults))
      << g_ambient_faults;
  faultpoint::disarm_all();
}

}  // namespace
}  // namespace clusmt::harness
