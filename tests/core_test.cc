#include <gtest/gtest.h>

#include <memory>

#include "core/metrics.h"
#include "core/simulator.h"
#include "harness/presets.h"
#include "trace/trace_source.h"
#include "trace/workload.h"

namespace clusmt::core {
namespace {

using trace::MicroOp;
using trace::UopClass;

/// A tiny deterministic program: `alu_chain` dependent ALU ops, then a
/// strongly-taken loop branch back to the start.
std::shared_ptr<trace::VectorTrace> make_chain_loop(int alu_chain) {
  std::vector<MicroOp> ops;
  for (int i = 0; i < alu_chain; ++i) {
    MicroOp op;
    op.pc = 0x400000 + i * 4;
    op.cls = UopClass::kIntAlu;
    op.dst = 1;
    op.src0 = 1;  // serial chain through r1
    ops.push_back(op);
  }
  MicroOp br;
  br.pc = 0x400000 + alu_chain * 4;
  br.cls = UopClass::kBranch;
  br.taken = true;
  br.target = 0x400000;
  br.fallthrough = br.pc + 4;
  br.src0 = 0;
  ops.push_back(br);
  return std::make_shared<trace::VectorTrace>("chain", std::move(ops));
}

SimConfig single_thread_config() {
  SimConfig config = harness::paper_baseline();
  config.num_threads = 1;
  return config;
}

TEST(Simulator, SerialChainCommitsAboutOnePerCycle) {
  SimConfig config = single_thread_config();
  Simulator sim(config);
  sim.attach_thread(0, make_chain_loop(30), nullptr, 1);
  sim.run(5000);
  const double ipc = sim.stats().ipc(0);
  // A fully serial chain through one register cannot exceed 1 IPC (1-cycle
  // ALUs), and should get close once the predictor learns the loop.
  EXPECT_LE(ipc, 1.05);
  EXPECT_GE(ipc, 0.70);
}

TEST(Simulator, IndependentOpsExceedOneIpc) {
  std::vector<MicroOp> ops;
  for (int i = 0; i < 30; ++i) {
    MicroOp op;
    op.pc = 0x400000 + i * 4;
    op.cls = UopClass::kIntAlu;
    op.dst = static_cast<std::int16_t>(i % 12);
    // Sources come from far-away registers: effectively independent.
    op.src0 = static_cast<std::int16_t>((i + 6) % 12);
    ops.push_back(op);
  }
  MicroOp br;
  br.pc = 0x400000 + 30 * 4;
  br.cls = UopClass::kBranch;
  br.taken = true;
  br.target = 0x400000;
  br.fallthrough = br.pc + 4;
  ops.push_back(br);

  SimConfig config = single_thread_config();
  Simulator sim(config);
  sim.attach_thread(
      0, std::make_shared<trace::VectorTrace>("indep", std::move(ops)),
      nullptr, 1);
  sim.run(5000);
  EXPECT_GT(sim.stats().ipc(0), 2.0);
}

TEST(Simulator, CommitsAreExactlyTraceOrder) {
  // With a single thread and no wrong paths (perfectly predictable branch),
  // committed non-copy µops == renamed - squashed - in flight, and the
  // committed counters stay coherent.
  SimConfig config = single_thread_config();
  Simulator sim(config);
  sim.attach_thread(0, make_chain_loop(10), nullptr, 1);
  sim.run(3000);
  const SimStats& s = sim.stats();
  EXPECT_GT(s.committed[0], 0u);
  EXPECT_GE(s.renamed_uops + s.copies_created,
            s.committed_total() + s.committed_copies);
  EXPECT_EQ(s.committed[1], 0u);
}

TEST(Simulator, StoreLoadForwardingWorks) {
  // store r2 -> [A]; load [A] -> r3 repeatedly: loads should forward.
  std::vector<MicroOp> ops;
  MicroOp st;
  st.pc = 0x400000;
  st.cls = UopClass::kStore;
  st.src0 = 0;
  st.src1 = 2;
  st.mem_addr = 0x10000;
  ops.push_back(st);
  MicroOp ld;
  ld.pc = 0x400004;
  ld.cls = UopClass::kLoad;
  ld.dst = 3;
  ld.src0 = 0;
  ld.mem_addr = 0x10000;
  ops.push_back(ld);
  MicroOp br;
  br.pc = 0x400008;
  br.cls = UopClass::kBranch;
  br.taken = true;
  br.target = 0x400000;
  br.fallthrough = 0x40000C;
  ops.push_back(br);

  SimConfig config = single_thread_config();
  Simulator sim(config);
  sim.attach_thread(
      0, std::make_shared<trace::VectorTrace>("fwd", std::move(ops)),
      nullptr, 1);
  sim.run(2000);
  EXPECT_GT(sim.stats().load_forwards, 50u);
}

TEST(Simulator, MispredictsSquashWrongPath) {
  trace::TracePool pool(3);
  SimConfig config = single_thread_config();
  Simulator sim(config);
  sim.attach_thread(0, pool.get(trace::Category::kOffice,
                                trace::TraceKind::kIlp, 0));
  sim.run(20000);
  const SimStats& s = sim.stats();
  EXPECT_GT(s.mispredicts_resolved, 10u);
  EXPECT_GT(s.squashed_uops, s.mispredicts_resolved);
  // Wrong-path work never commits: committed counters grow monotonically
  // through squashes (sanity: positive and plausible).
  EXPECT_GT(s.committed[0], 1000u);
}

TEST(Simulator, CrossClusterCopiesAreCreatedAndCommitted) {
  trace::TracePool pool(1);
  SimConfig config = single_thread_config();
  Simulator sim(config);
  sim.attach_thread(0, pool.get(trace::Category::kFSpec00,
                                trace::TraceKind::kIlp, 0));
  sim.run(20000);
  EXPECT_GT(sim.stats().copies_created, 100u);
  EXPECT_GT(sim.stats().committed_copies, 50u);
  EXPECT_GT(sim.interconnect().stats().transfers, 50u);
}

TEST(Simulator, PrivateClustersNeverCopy) {
  trace::TracePool pool(1);
  SimConfig config = harness::paper_baseline();
  config.policy = policy::PolicyKind::kPrivateClusters;
  Simulator sim(config);
  sim.attach_thread(0, pool.get(trace::Category::kISpec00,
                                trace::TraceKind::kIlp, 0));
  sim.attach_thread(1, pool.get(trace::Category::kFSpec00,
                                trace::TraceKind::kIlp, 0));
  sim.run(20000);
  EXPECT_EQ(sim.stats().copies_created, 0u);
  EXPECT_EQ(sim.cluster(0).iq().occupancy_of(1), 0);
  EXPECT_EQ(sim.cluster(1).iq().occupancy_of(0), 0);
}

TEST(Simulator, FlushPlusActuallyFlushes) {
  trace::TracePool pool(1);
  SimConfig config = harness::paper_baseline();
  config.policy = policy::PolicyKind::kFlushPlus;
  Simulator sim(config);
  sim.attach_thread(0, pool.get(trace::Category::kISpec00,
                                trace::TraceKind::kMem, 0));
  sim.attach_thread(1, pool.get(trace::Category::kDH,
                                trace::TraceKind::kIlp, 0));
  sim.run(30000);
  EXPECT_GT(sim.stats().policy_flushes, 5u);
  EXPECT_GT(sim.stats().committed[0], 0u);  // flushed thread still advances
  EXPECT_GT(sim.stats().committed[1], 0u);
}

TEST(Simulator, ResetStatsKeepsMachineWarm) {
  trace::TracePool pool(1);
  SimConfig config = single_thread_config();
  Simulator sim(config);
  sim.attach_thread(0, pool.get(trace::Category::kDH,
                                trace::TraceKind::kIlp, 0));
  sim.run(10000);
  const double cold_hit_rate = sim.hierarchy().l1_stats().hit_rate();
  sim.reset_stats();
  EXPECT_EQ(sim.stats().committed[0], 0u);
  EXPECT_EQ(sim.stats().cycles, 0u);
  sim.run(10000);
  // Warm-phase hit rate should beat the cold phase.
  EXPECT_GT(sim.hierarchy().l1_stats().hit_rate(), cold_hit_rate);
}

TEST(Simulator, UnboundedResourcesRemoveRfBlocks) {
  trace::TracePool pool(1);
  SimConfig config = harness::iq_study_config(32);
  Simulator sim(config);
  sim.attach_thread(0, pool.get(trace::Category::kISpec00,
                                trace::TraceKind::kIlp, 0));
  sim.attach_thread(1, pool.get(trace::Category::kISpec00,
                                trace::TraceKind::kIlp, 1));
  sim.run(20000);
  EXPECT_EQ(sim.stats().rename_block_rf, 0u);
}

TEST(Simulator, RejectsBadConfigs) {
  SimConfig config;
  config.num_threads = kMaxThreads + 1;
  EXPECT_THROW(Simulator{config}, std::invalid_argument);
  config = SimConfig{};
  config.num_clusters = 0;
  EXPECT_THROW(Simulator{config}, std::invalid_argument);
}

TEST(Metrics, FairnessProperties) {
  const std::vector<double> single = {2.0, 1.0};
  // Equal slowdowns (both halved) => fairness 1.
  EXPECT_DOUBLE_EQ(fairness(std::vector<double>{1.0, 0.5}, single), 1.0);
  // Unequal slowdowns: min ratio < 1, symmetric in thread order.
  const double f1 = fairness(std::vector<double>{1.0, 0.25}, single);
  const double f2 = fairness(std::vector<double>{0.5, 0.5},
                             std::vector<double>{1.0, 2.0});
  EXPECT_LT(f1, 1.0);
  EXPECT_GT(f1, 0.0);
  EXPECT_DOUBLE_EQ(f1, f2);
  // Degenerate inputs.
  EXPECT_EQ(fairness({}, {}), 0.0);
}

TEST(Metrics, SlowdownAndSpeedups) {
  EXPECT_DOUBLE_EQ(slowdown(2.0, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(slowdown(2.0, 0.0), 0.0);
  const std::vector<double> single = {2.0, 2.0};
  const std::vector<double> smt = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(weighted_speedup(smt, single), 1.0);
  EXPECT_DOUBLE_EQ(harmonic_speedup(smt, single), 0.5);
}

TEST(Rob, RingSemantics) {
  Rob rob(4);
  EXPECT_TRUE(rob.empty());
  DynUop* a = rob.push();
  DynUop* b = rob.push();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  a->seq = 1;
  b->seq = 2;
  EXPECT_EQ(rob.size(), 2);
  EXPECT_EQ(rob.head().seq, 1u);
  EXPECT_EQ(rob.tail().seq, 2u);
  rob.pop_head();
  EXPECT_EQ(rob.head().seq, 2u);
  rob.pop_tail();
  EXPECT_TRUE(rob.empty());
  // Fill to capacity.
  for (int i = 0; i < 4; ++i) ASSERT_NE(rob.push(), nullptr);
  EXPECT_TRUE(rob.full());
  EXPECT_EQ(rob.push(), nullptr);
}

}  // namespace
}  // namespace clusmt::core
