#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <map>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.h"
#include "harness/presets.h"
#include "harness/run_cache.h"
#include "harness/run_key.h"
#include "harness/sweep.h"
#include "trace/workload.h"

namespace clusmt::harness {
namespace {

std::vector<trace::WorkloadSpec> tiny_suite(std::size_t n) {
  auto suite = trace::build_quick_suite(1, 1, 2);
  suite.resize(std::min(n, suite.size()));
  return suite;
}

// ---- RunKey --------------------------------------------------------------

TEST(RunKey, SensitiveToEveryRunInput) {
  const auto suite = tiny_suite(1);
  const core::SimConfig base = paper_baseline();
  const RunKey key = run_key(base, suite[0], 1000, 200);
  EXPECT_EQ(run_key(base, suite[0], 1000, 200), key);

  core::SimConfig other = base;
  other.policy = policy::PolicyKind::kCssp;
  EXPECT_NE(run_key(other, suite[0], 1000, 200), key);
  other = base;
  other.policy_config.cdprf_interval = 4096;
  EXPECT_NE(run_key(other, suite[0], 1000, 200), key);

  EXPECT_NE(run_key(base, suite[0], 2000, 200), key);
  EXPECT_NE(run_key(base, suite[0], 1000, 100), key);

  trace::WorkloadSpec reseeded = suite[0];
  reseeded.threads[0].seed ^= 1;
  EXPECT_NE(run_key(base, reseeded, 1000, 200), key);
}

TEST(RunKey, SensitiveToEveryClusterShapeField) {
  // Heterogeneous grids: every per-cluster shape field, the width scalar
  // and every link-matrix slot must perturb the content hash — a missed
  // field silently merges cache entries for different machines.
  const auto suite = tiny_suite(1);
  const core::SimConfig base = paper_baseline();
  const RunKey key = run_key(base, suite[0], 1000, 200);

  const auto perturbed = [&](void (*mutate)(core::SimConfig&)) {
    core::SimConfig other = base;
    mutate(other);
    return run_key(other, suite[0], 1000, 200);
  };
  EXPECT_NE(perturbed([](core::SimConfig& c) { c.issue_width = 4; }), key);
  for (int cl = 0; cl < kMaxClusters; ++cl) {
    core::SimConfig other = base;
    other.shape[cl].issue_width = 2;
    EXPECT_NE(run_key(other, suite[0], 1000, 200), key) << "width " << cl;
    other = base;
    other.shape[cl].iq_entries = 48;
    EXPECT_NE(run_key(other, suite[0], 1000, 200), key) << "iq " << cl;
    other = base;
    other.shape[cl].int_regs = 96;
    EXPECT_NE(run_key(other, suite[0], 1000, 200), key) << "int " << cl;
    other = base;
    other.shape[cl].fp_regs = 96;
    EXPECT_NE(run_key(other, suite[0], 1000, 200), key) << "fp " << cl;
  }
  for (int from = 0; from < kMaxClusters; ++from) {
    for (int to = 0; to < kMaxClusters; ++to) {
      core::SimConfig other = base;
      other.link_latency_cc[from][to] = 9;
      EXPECT_NE(run_key(other, suite[0], 1000, 200), key)
          << "link " << from << "->" << to;
    }
  }
  // Distinct fields must not alias each other either: the same value in
  // a different slot is a different machine.
  core::SimConfig a = base;
  a.shape[0].iq_entries = 48;
  core::SimConfig b = base;
  b.shape[1].iq_entries = 48;
  EXPECT_NE(run_key(a, suite[0], 1000, 200),
            run_key(b, suite[0], 1000, 200));
}

TEST(RunKey, TraceContentNotNameIsIdentity) {
  const auto suite = tiny_suite(1);
  trace::TraceSpec a = suite[0].threads[0];
  trace::TraceSpec b = a;

  // Same content, different display name: identical keys (shared runs).
  b.profile.name = "an-alias";
  EXPECT_EQ(trace_content_key(a), trace_content_key(b));

  // Same name, different content: distinct keys (no collision).
  b = a;
  b.seed ^= 1;
  EXPECT_NE(trace_content_key(a), trace_content_key(b));
  b = a;
  b.profile.dep_geo_p += 0.25;
  EXPECT_NE(trace_content_key(a), trace_content_key(b));
}

TEST(BaselineConfig, SingleThreadIcountSharedAcrossSchemeKnobs) {
  core::SimConfig a = rf_study_config(64);
  a.policy = policy::PolicyKind::kCdprf;
  a.policy_config.cdprf_interval = 8192;
  core::SimConfig b = rf_study_config(64);
  b.policy = policy::PolicyKind::kCssp;

  Fnv1a ha, hb;
  hash_config(ha, baseline_config(a));
  hash_config(hb, baseline_config(b));
  EXPECT_EQ(ha.digest(), hb.digest());
  EXPECT_EQ(baseline_config(a).num_threads, 1);
  EXPECT_EQ(baseline_config(a).policy, policy::PolicyKind::kIcount);
}

// ---- RunCache ------------------------------------------------------------

TEST(RunCache, ComputesOncePerKeyUnderContention) {
  RunCache cache;
  const RunKey key{1, 2};
  std::atomic<int> computes{0};
  ThreadPool pool(8);
  std::vector<std::future<RunResult>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit_task([&] {
      return cache.get_or_run(key, [&] {
        computes.fetch_add(1);
        RunResult r;
        r.throughput = 3.5;
        return r;
      });
    }));
  }
  for (auto& f : futures) EXPECT_DOUBLE_EQ(f.get().throughput, 3.5);
  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 63u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(RunCache, DistinctKeysComputeSeparately) {
  RunCache cache;
  auto make = [](double v) {
    RunResult r;
    r.throughput = v;
    return r;
  };
  EXPECT_DOUBLE_EQ(
      cache.get_or_run(RunKey{1, 1}, [&] { return make(1.0); }).throughput,
      1.0);
  EXPECT_DOUBLE_EQ(
      cache.get_or_run(RunKey{1, 2}, [&] { return make(2.0); }).throughput,
      2.0);
  // Second request for key {1,1} must not re-run compute.
  EXPECT_DOUBLE_EQ(
      cache.get_or_run(RunKey{1, 1}, [&] { return make(9.0); }).throughput,
      1.0);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 1u);
}

// ---- SweepSpec expansion -------------------------------------------------

TEST(SweepSpec, ExpandsAxisProductFirstAxisSlowest) {
  SweepSpec spec;
  spec.base = paper_baseline();
  spec.axes = {
      {"iq",
       {{"32", [](core::SimConfig& c) { c.iq_entries = 32; }},
        {"64", [](core::SimConfig& c) { c.iq_entries = 64; }}}},
      {"scheme",
       {{"A", [](core::SimConfig& c) { c.policy = policy::PolicyKind::kIcount; }},
        {"B", [](core::SimConfig& c) { c.policy = policy::PolicyKind::kCssp; }},
        {"C", [](core::SimConfig& c) { c.policy = policy::PolicyKind::kCisp; }}}},
  };
  core::SimConfig extra = paper_baseline();
  extra.iq_entries = 7;
  spec.points.push_back({"extra", extra});

  const auto points = spec.expand_points();
  ASSERT_EQ(points.size(), 7u);
  EXPECT_EQ(points[0].label, "32@A");
  EXPECT_EQ(points[1].label, "32@B");
  EXPECT_EQ(points[2].label, "32@C");
  EXPECT_EQ(points[3].label, "64@A");
  EXPECT_EQ(points[5].label, "64@C");
  EXPECT_EQ(points[6].label, "extra");
  EXPECT_EQ(points[4].config.iq_entries, 64);
  EXPECT_EQ(points[4].config.policy, policy::PolicyKind::kCssp);
  EXPECT_EQ(points[6].config.iq_entries, 7);
}

TEST(SweepSpec, LabelFnOverridesComposition) {
  SweepSpec spec;
  spec.axes = {{"x", {{"1", {}}, {"2", {}}}}};
  spec.label_fn = [](const std::vector<std::string>& parts) {
    return "p" + parts[0];
  };
  const auto points = spec.expand_points();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].label, "p1");
  EXPECT_EQ(points[1].label, "p2");
}

// ---- run_sweep -----------------------------------------------------------

SweepSpec small_sweep(std::size_t jobs, RunCache* cache) {
  SweepSpec spec;
  spec.suite = tiny_suite(3);
  spec.cycles = 2000;
  spec.warmup = 500;
  spec.jobs = jobs;
  spec.with_fairness = true;
  spec.progress = false;
  spec.cache = cache;
  spec.base = paper_baseline();
  spec.axes = {{"scheme",
                {{"Icount",
                  [](core::SimConfig& c) {
                    c.policy = policy::PolicyKind::kIcount;
                  }},
                 {"CSSP", [](core::SimConfig& c) {
                    c.policy = policy::PolicyKind::kCssp;
                  }}}}};
  return spec;
}

TEST(RunSweep, MetricTablesBitIdenticalAcrossJobCounts) {
  RunCache cache1, cache8;
  const SweepResult serial = run_sweep(small_sweep(1, &cache1));
  const SweepResult parallel = run_sweep(small_sweep(8, &cache8));

  ASSERT_EQ(serial.points.size(), parallel.points.size());
  ASSERT_EQ(serial.suite.size(), parallel.suite.size());
  for (std::size_t p = 0; p < serial.points.size(); ++p) {
    for (std::size_t w = 0; w < serial.suite.size(); ++w) {
      const RunResult& a = serial.cells[p][w];
      const RunResult& b = parallel.cells[p][w];
      EXPECT_EQ(a.stats.committed_total(), b.stats.committed_total());
      EXPECT_EQ(a.throughput, b.throughput);  // bit-identical, not near
      EXPECT_EQ(a.fairness, b.fairness);
      for (int t = 0; t < kMaxThreads; ++t) EXPECT_EQ(a.ipc[t], b.ipc[t]);
    }
  }
}

TEST(RunSweep, RepeatedPointsHitTheCache) {
  RunCache cache;
  SweepSpec spec;
  spec.suite = tiny_suite(2);
  spec.cycles = 1500;
  spec.warmup = 0;
  spec.jobs = 2;
  spec.progress = false;
  spec.cache = &cache;
  core::SimConfig config = paper_baseline();
  spec.points.push_back({"first", config});
  spec.points.push_back({"duplicate", config});  // identical content

  const SweepResult res = run_sweep(spec);
  // 2 points x 2 workloads = 4 requests over 2 distinct cells.
  EXPECT_EQ(res.cache_misses, 2u);
  EXPECT_EQ(res.cache_hits, 2u);
  for (std::size_t w = 0; w < res.suite.size(); ++w) {
    EXPECT_EQ(res.cells[0][w].throughput, res.cells[1][w].throughput);
  }

  // Re-running the same sweep on the same cache simulates nothing new.
  const SweepResult again = run_sweep(spec);
  EXPECT_EQ(again.cache_misses, 0u);
  EXPECT_EQ(again.cache_hits, 4u);
}

TEST(RunSweep, FairnessBaselinesSharedAcrossPoints) {
  RunCache cache;
  SweepSpec spec = small_sweep(2, &cache);
  const std::size_t workloads = spec.suite.size();

  // Unique baseline traces across the suite (by content).
  std::map<RunKey, int> unique;
  for (const auto& w : spec.suite) {
    for (const auto& t : w.threads) ++unique[trace_content_key(t)];
  }

  const SweepResult res = run_sweep(spec);
  // Both scheme points share one Icount baseline machine, so the baselines
  // are simulated once each: cells = 2 x workloads, baselines = unique.
  EXPECT_EQ(res.cache_misses, 2 * workloads + unique.size());
  EXPECT_GT(res.cache_hits, 0u);
}

TEST(RunSweep, PointIndexAndMetricShaping) {
  RunCache cache;
  const SweepResult res = run_sweep(small_sweep(2, &cache));
  EXPECT_EQ(res.point_index("Icount"), 0u);
  EXPECT_EQ(res.point_index("CSSP"), 1u);
  EXPECT_THROW((void)res.point_index("nope"), std::out_of_range);

  const auto thr = res.throughput(0);
  ASSERT_EQ(thr.size(), res.suite.size());
  for (double v : thr) EXPECT_GT(v, 0.0);

  const auto ratio = ratio_to_baseline(res.throughput(1), thr);
  for (double v : ratio) EXPECT_GT(v, 0.0);
  EXPECT_THROW((void)ratio_to_baseline(thr, std::vector<double>(1)),
               std::invalid_argument);
}

TEST(RunSweep, CellExceptionPropagates) {
  RunCache cache;
  SweepSpec spec;
  spec.suite = tiny_suite(1);
  spec.cycles = 500;
  spec.jobs = 2;
  spec.progress = false;
  spec.cache = &cache;
  core::SimConfig bad = paper_baseline();
  bad.num_threads = 4;  // two-thread workloads: every cell throws
  spec.points.push_back({"bad", bad});
  EXPECT_THROW((void)run_sweep(spec), std::invalid_argument);
}

// ---- Result tables -------------------------------------------------------

TEST(CategoryTable, MatchesByCategoryAggregation) {
  const auto suite = tiny_suite(3);
  std::vector<double> metric(suite.size());
  for (std::size_t i = 0; i < metric.size(); ++i) {
    metric[i] = static_cast<double>(i + 1);
  }
  const TableDoc doc = category_table(suite, {{"m", metric}});
  ASSERT_GE(doc.rows.size(), 1u);
  EXPECT_EQ(doc.header.front(), "category");
  EXPECT_EQ(doc.header.back(), "m");
  EXPECT_EQ(doc.rows.back().front(), "AVG");

  const std::string csv = doc.to_csv();
  EXPECT_NE(csv.find("category,m"), std::string::npos);
  const std::string json = doc.to_json();
  EXPECT_NE(json.find("\"category\": \"AVG\""), std::string::npos);
}

}  // namespace
}  // namespace clusmt::harness
