// Differential coverage for the flattened trace datapath: SyntheticTrace
// (the flat contiguous-µop-array cursor) must produce exactly the µop
// sequence of BlockWalkTrace (the retained per-block walker) — every field,
// in order — for every workload character and across seeds. This is the
// trace layer's analogue of the issue stage's kScanReference oracle: the
// two generators share the sampling machinery (SyntheticCursor), so any
// divergence is a flat-layout bug (wrong successor index, wrong pc, a
// dropped or duplicated µop), not an RNG difference.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "trace/profile.h"
#include "trace/synthetic.h"
#include "trace/workload.h"

namespace clusmt::trace {
namespace {

void expect_same_stream(const TraceProfile& profile, std::uint64_t seed,
                        int uops, const std::string& label) {
  auto program = std::make_shared<SyntheticProgram>(profile, seed);
  SyntheticTrace flat(program, seed);
  BlockWalkTrace walk(program, seed);
  for (int i = 0; i < uops; ++i) {
    const MicroOp a = flat.next();
    const MicroOp b = walk.next();
    const auto at = label + " uop #" + std::to_string(i);
    ASSERT_EQ(a.pc, b.pc) << at;
    ASSERT_EQ(a.cls, b.cls) << at;
    ASSERT_EQ(a.dst, b.dst) << at;
    ASSERT_EQ(a.src0, b.src0) << at;
    ASSERT_EQ(a.src1, b.src1) << at;
    ASSERT_EQ(a.mem_addr, b.mem_addr) << at;
    ASSERT_EQ(a.taken, b.taken) << at;
    ASSERT_EQ(a.indirect, b.indirect) << at;
    ASSERT_EQ(a.target, b.target) << at;
    ASSERT_EQ(a.fallthrough, b.fallthrough) << at;
  }
}

TEST(TraceFlatDifferential, AllCharactersAndVariantsMatchBlockWalk) {
  for (Category cat : all_plain_categories()) {
    for (TraceKind kind : {TraceKind::kIlp, TraceKind::kMem}) {
      for (int v = 0; v < TracePool::kVariantsPerKind; ++v) {
        const TraceProfile profile = make_profile(cat, kind, v);
        expect_same_stream(profile, /*seed=*/7 + v, /*uops=*/4000,
                           profile.name);
      }
    }
  }
}

TEST(TraceFlatDifferential, SeedSweepMatchesBlockWalk) {
  const TraceProfile profile =
      make_profile(Category::kISpec00, TraceKind::kIlp, 0);
  for (std::uint64_t seed : {1ull, 2ull, 42ull, 0xDEADBEEFull, 1ull << 40}) {
    expect_same_stream(profile, seed,
                       /*uops=*/5000,
                       profile.name + "@seed" + std::to_string(seed));
  }
}

TEST(TraceFlatDifferential, BatchedFillMatchesPerUopNext) {
  // fill() must be exactly `count` next() calls — mixed batch sizes across
  // branch boundaries against a lockstep per-µop reference.
  const TraceProfile profile =
      make_profile(Category::kServer, TraceKind::kMem, 1);
  auto program = std::make_shared<SyntheticProgram>(profile, 9);
  SyntheticTrace batched(program, 9);
  SyntheticTrace single(program, 9);
  MicroOp buf[13];
  int emitted = 0;
  for (int round = 0; round < 600; ++round) {
    const int n = 1 + round % 13;
    batched.fill(buf, n);
    for (int i = 0; i < n; ++i) {
      const MicroOp want = single.next();
      ASSERT_EQ(buf[i].pc, want.pc) << "uop #" << (emitted + i);
      ASSERT_EQ(buf[i].src0, want.src0) << "uop #" << (emitted + i);
      ASSERT_EQ(buf[i].mem_addr, want.mem_addr) << "uop #" << (emitted + i);
    }
    emitted += n;
  }
}

TEST(TraceFlat, FlatArrayMirrorsBlocks) {
  // Structural invariants of the flattened layout itself: one entry per
  // body µop plus one branch per block, contiguous, with matching static
  // fields and a successor table that names real blocks.
  const TraceProfile profile =
      make_profile(Category::kMultimedia, TraceKind::kIlp, 2);
  const SyntheticProgram program(profile, 21);
  const auto& blocks = program.blocks();
  const auto& flat = program.flat_uops();
  const auto& info = program.block_info();
  ASSERT_EQ(info.size(), blocks.size());

  std::size_t expected_total = 0;
  for (const BasicBlock& b : blocks) expected_total += b.body.size() + 1;
  ASSERT_EQ(flat.size(), expected_total);

  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const BasicBlock& block = blocks[b];
    const BlockInfo& bi = info[b];
    for (std::size_t i = 0; i < block.body.size(); ++i) {
      const FlatUop& f = flat[bi.first_uop + i];
      EXPECT_FALSE(f.is_branch);
      EXPECT_EQ(f.cls, block.body[i].cls);
      EXPECT_EQ(f.dst, block.body[i].dst);
      EXPECT_EQ(f.fp_dst, block.body[i].fp_dst);
      EXPECT_EQ(f.block, static_cast<std::int32_t>(b));
      EXPECT_EQ(f.pc, block.start_pc + i * 4);
    }
    const FlatUop& branch = flat[bi.first_uop + block.body.size()];
    EXPECT_TRUE(branch.is_branch);
    EXPECT_EQ(branch.pc, bi.branch_pc);
    EXPECT_EQ(bi.taken_start_pc, blocks[bi.taken_next].start_pc);
    EXPECT_EQ(bi.fallthrough_start_pc,
              blocks[bi.fallthrough_next].start_pc);
    ASSERT_EQ(bi.indirect_count, block.indirect_targets.size());
    for (std::uint32_t t = 0; t < bi.indirect_count; ++t) {
      const IndirectTarget& target =
          program.indirect_targets()[bi.indirect_begin + t];
      EXPECT_EQ(target.block, block.indirect_targets[t]);
      EXPECT_EQ(target.start_pc,
                blocks[block.indirect_targets[t]].start_pc);
    }
  }
}

}  // namespace
}  // namespace clusmt::trace
