// End-to-end architectural-order verification via the commit hook: the
// stream of committed (non-copy) µops of a thread must be *exactly* the
// dynamic µop stream of its program — no skips, duplicates or reorderings —
// through branch mispredict squashes and Flush+ policy flushes with
// replay. This is the strongest correctness check on the recovery paths.
#include <gtest/gtest.h>

#include <deque>
#include <memory>

#include "core/simulator.h"
#include "harness/presets.h"
#include "trace/synthetic.h"
#include "trace/workload.h"

namespace clusmt::core {
namespace {

/// Checks the committed stream of each thread against an independently
/// regenerated copy of the same deterministic trace.
class CommitOrderChecker {
 public:
  void add_reference(ThreadId tid, const trace::TraceProfile& profile,
                     std::uint64_t seed) {
    refs_[tid] = std::make_unique<trace::SyntheticTrace>(profile, seed);
  }

  void attach(Simulator& sim) {
    sim.set_commit_hook([this](const DynUop& uop) {
      if (uop.is_copy) return;
      ASSERT_FALSE(uop.wrong_path) << "wrong-path µop committed";
      auto& ref = refs_.at(uop.tid);
      const trace::MicroOp expected = ref->next();
      ASSERT_EQ(uop.op.pc, expected.pc)
          << "thread " << uop.tid << " commit #" << count_[uop.tid];
      ASSERT_EQ(uop.op.cls, expected.cls);
      ASSERT_EQ(uop.op.dst, expected.dst);
      ASSERT_EQ(uop.op.mem_addr, expected.mem_addr);
      if (expected.is_branch()) {
        ASSERT_EQ(uop.op.taken, expected.taken);
      }
      ++count_[uop.tid];
    });
  }

  [[nodiscard]] std::uint64_t count(ThreadId tid) const {
    return count_[tid];
  }

 private:
  std::map<ThreadId, std::unique_ptr<trace::SyntheticTrace>> refs_;
  std::uint64_t count_[kMaxThreads] = {};
};

class CommitOrder : public ::testing::TestWithParam<policy::PolicyKind> {};

TEST_P(CommitOrder, CommittedStreamEqualsDynamicTrace) {
  trace::TracePool pool(31);
  const trace::TraceSpec& a =
      pool.get(trace::Category::kOffice, trace::TraceKind::kIlp, 0);
  const trace::TraceSpec& b =
      pool.get(trace::Category::kServer, trace::TraceKind::kMem, 0);

  SimConfig config = harness::paper_baseline();
  config.policy = GetParam();
  Simulator sim(config);
  sim.attach_thread(0, a);
  sim.attach_thread(1, b);

  CommitOrderChecker checker;
  checker.add_reference(0, a.profile, a.seed);
  checker.add_reference(1, b.profile, b.seed);
  checker.attach(sim);

  sim.run(30000);
  // Branchy office code + missing server code: plenty of mispredict
  // squashes, and under Flush+ plenty of policy flushes with replay.
  EXPECT_GT(checker.count(0), 1000u);
  EXPECT_GT(checker.count(1), 100u);
  if (GetParam() == policy::PolicyKind::kFlushPlus) {
    EXPECT_GT(sim.stats().policy_flushes, 0u);
  }
  EXPECT_GT(sim.stats().mispredicts_resolved, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    RecoveryHeavyPolicies, CommitOrder,
    ::testing::Values(policy::PolicyKind::kIcount,
                      policy::PolicyKind::kStall,
                      policy::PolicyKind::kFlushPlus,
                      policy::PolicyKind::kCssp,
                      policy::PolicyKind::kCdprf),
    [](const auto& info) {
      std::string name{policy::policy_kind_name(info.param)};
      for (char& c : name) {
        if (c == '+') c = 'P';
      }
      return name;
    });

TEST(CommitOrderSingle, SurvivesTinyIqAndRf) {
  // Stress recovery under extreme resource scarcity.
  trace::TracePool pool(5);
  const trace::TraceSpec& a =
      pool.get(trace::Category::kISpec00, trace::TraceKind::kIlp, 1);
  SimConfig config = harness::paper_baseline();
  config.num_threads = 1;
  config.iq_entries = 8;
  config.int_regs = 56;  // barely above architectural state
  config.fp_regs = 56;
  config.rob_entries = 32;
  Simulator sim(config);
  sim.attach_thread(0, a);
  CommitOrderChecker checker;
  checker.add_reference(0, a.profile, a.seed);
  checker.attach(sim);
  ASSERT_NO_THROW(sim.run(20000));
  EXPECT_GT(checker.count(0), 500u);
}

}  // namespace
}  // namespace clusmt::core
