// Property-based invariants: for every resource-assignment scheme and a
// sweep of workload seeds, step the simulator and check machine invariants
// that must hold at every observation point.
#include <gtest/gtest.h>

#include <tuple>

#include "core/simulator.h"
#include "harness/presets.h"
#include "trace/workload.h"

namespace clusmt::core {
namespace {

using Param = std::tuple<policy::PolicyKind, std::uint64_t>;

class PolicyInvariants : public ::testing::TestWithParam<Param> {};

TEST_P(PolicyInvariants, HoldEveryFewCycles) {
  const auto [kind, seed] = GetParam();
  trace::TracePool pool(seed);
  SimConfig config = harness::paper_baseline();
  config.policy = kind;
  Simulator sim(config);
  sim.attach_thread(
      0, pool.get(trace::Category::kISpec00, trace::TraceKind::kIlp,
                  static_cast<int>(seed % 4)));
  sim.attach_thread(
      1, pool.get(trace::Category::kFSpec00, trace::TraceKind::kMem,
                  static_cast<int>(seed % 4)));

  std::uint64_t last_committed = 0;
  for (int chunk = 0; chunk < 120; ++chunk) {
    sim.run(50);
    const auto& view = sim.view();
    const auto& stats = sim.stats();

    // Issue-queue occupancies decompose exactly by thread and never exceed
    // capacity.
    for (int c = 0; c < config.num_clusters; ++c) {
      const auto& iq = sim.cluster(c).iq();
      EXPECT_LE(iq.occupancy(), config.iq_entries);
      int per_thread = 0;
      for (int t = 0; t < config.num_threads; ++t) {
        per_thread += iq.occupancy_of(t);
      }
      EXPECT_EQ(per_thread, iq.occupancy());
    }

    // Register files: free + per-thread used == capacity (no leaks, no
    // double-frees), for every cluster and class.
    for (int c = 0; c < config.num_clusters; ++c) {
      for (RegClass cls : {RegClass::kInt, RegClass::kFp}) {
        const auto& rf = sim.cluster(c).rf(cls);
        int used = 0;
        for (int t = 0; t < config.num_threads; ++t) used += rf.used_by(t);
        EXPECT_EQ(used + rf.free_count(), rf.capacity())
            << "cluster " << c << " class " << static_cast<int>(cls);
      }
    }

    // Scheme-specific caps (evaluated on the refreshed view).
    const int half_cluster = config.iq_entries / 2;
    if (kind == policy::PolicyKind::kCssp ||
        kind == policy::PolicyKind::kCssprf ||
        kind == policy::PolicyKind::kCisprf ||
        kind == policy::PolicyKind::kCdprf) {
      for (int t = 0; t < config.num_threads; ++t) {
        for (int c = 0; c < config.num_clusters; ++c) {
          EXPECT_LE(view.iq_occ_tc[t][c], half_cluster);
        }
      }
    }
    if (kind == policy::PolicyKind::kCisp) {
      for (int t = 0; t < config.num_threads; ++t) {
        EXPECT_LE(view.iq_occ_thread_total(t),
                  config.iq_entries * config.num_clusters / 2);
      }
    }
    if (kind == policy::PolicyKind::kPrivateClusters) {
      EXPECT_EQ(sim.cluster(0).iq().occupancy_of(1), 0);
      EXPECT_EQ(sim.cluster(1).iq().occupancy_of(0), 0);
    }
    if (kind == policy::PolicyKind::kCssprf) {
      const int half_rf = config.int_regs / 2;
      for (int t = 0; t < config.num_threads; ++t) {
        for (int c = 0; c < config.num_clusters; ++c) {
          // The CSSPRF cap applies to speculative allocations; committed
          // architectural state also holds registers, so allow the
          // committed-state margin (bounded by the architectural register
          // count).
          EXPECT_LE(view.rf_used[t][c][0], half_rf + kNumIntArchRegs);
        }
      }
    }

    // MOB never exceeds capacity.
    EXPECT_LE(sim.mob().occupancy(), config.mob_entries);

    // Forward progress: both threads keep committing.
    EXPECT_GE(stats.committed_total(), last_committed);
    last_committed = stats.committed_total();
  }

  EXPECT_GT(sim.stats().committed[0], 100u);
  EXPECT_GT(sim.stats().committed[1], 20u);
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  std::string name{policy::policy_kind_name(std::get<0>(info.param))};
  for (char& c : name) {
    if (c == '+') c = 'P';
  }
  return name + "_seed" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyInvariants,
    ::testing::Combine(::testing::ValuesIn(policy::all_policy_kinds()),
                       ::testing::Values(1u, 2u, 3u)),
    param_name);

// --- Four-context invariants: the same machine laws hold at SMT4 ---

class Smt4Invariants : public ::testing::TestWithParam<policy::PolicyKind> {};

TEST_P(Smt4Invariants, HoldEveryFewCycles) {
  const policy::PolicyKind kind = GetParam();
  const auto suite = trace::build_smt4_suite(29, /*mixes_count=*/1);
  const trace::WorkloadSpec* mix = nullptr;
  for (const auto& w : suite) {
    if (w.category == "mixes") mix = &w;
  }
  ASSERT_NE(mix, nullptr);

  SimConfig config = harness::smt4_baseline();
  config.policy = kind;
  Simulator sim(config);
  for (int t = 0; t < 4; ++t) sim.attach_thread(t, mix->threads[t]);

  std::uint64_t last_committed = 0;
  for (int chunk = 0; chunk < 60; ++chunk) {
    sim.run(100);
    const auto& view = sim.view();

    // Occupancy decomposition and capacity, per cluster.
    for (int c = 0; c < config.num_clusters; ++c) {
      const auto& iq = sim.cluster(c).iq();
      EXPECT_LE(iq.occupancy(), config.iq_entries);
      int per_thread = 0;
      for (int t = 0; t < 4; ++t) per_thread += iq.occupancy_of(t);
      EXPECT_EQ(per_thread, iq.occupancy());
      for (RegClass cls : {RegClass::kInt, RegClass::kFp}) {
        const auto& rf = sim.cluster(c).rf(cls);
        int used = 0;
        for (int t = 0; t < 4; ++t) used += rf.used_by(t);
        EXPECT_EQ(used + rf.free_count(), rf.capacity());
      }
    }

    // The cluster-sensitive partitions cap each of the four threads at
    // half a cluster, exactly as with two threads.
    if (kind == policy::PolicyKind::kCssp ||
        kind == policy::PolicyKind::kCdprf) {
      for (int t = 0; t < 4; ++t) {
        for (int c = 0; c < config.num_clusters; ++c) {
          EXPECT_LE(view.iq_occ_tc[t][c], config.iq_entries / 2);
        }
      }
    }
    // Private clusters pins thread t to cluster t mod 2.
    if (kind == policy::PolicyKind::kPrivateClusters) {
      EXPECT_EQ(sim.cluster(0).iq().occupancy_of(1), 0);
      EXPECT_EQ(sim.cluster(0).iq().occupancy_of(3), 0);
      EXPECT_EQ(sim.cluster(1).iq().occupancy_of(0), 0);
      EXPECT_EQ(sim.cluster(1).iq().occupancy_of(2), 0);
    }

    EXPECT_GE(sim.stats().committed_total(), last_committed);
    last_committed = sim.stats().committed_total();
  }
  EXPECT_GT(sim.stats().committed_total(), 500u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, Smt4Invariants,
                         ::testing::ValuesIn(policy::all_policy_kinds()),
                         [](const auto& info) {
                           std::string name{
                               policy::policy_kind_name(info.param)};
                           for (char& c : name) {
                             if (c == '+') c = 'P';
                           }
                           return name;
                         });

// --- Determinism sweep: same (policy, seed) twice => identical counters ---

class Determinism : public ::testing::TestWithParam<policy::PolicyKind> {};

TEST_P(Determinism, BitIdenticalRuns) {
  const policy::PolicyKind kind = GetParam();
  auto run_once = [&] {
    trace::TracePool pool(17);
    SimConfig config = harness::paper_baseline();
    config.policy = kind;
    Simulator sim(config);
    sim.attach_thread(0, pool.get(trace::Category::kServer,
                                  trace::TraceKind::kMem, 1));
    sim.attach_thread(1, pool.get(trace::Category::kDH,
                                  trace::TraceKind::kIlp, 1));
    sim.run(8000);
    return sim.stats();
  };
  const SimStats a = run_once();
  const SimStats b = run_once();
  EXPECT_EQ(a.committed[0], b.committed[0]);
  EXPECT_EQ(a.committed[1], b.committed[1]);
  EXPECT_EQ(a.committed_copies, b.committed_copies);
  EXPECT_EQ(a.issued_uops, b.issued_uops);
  EXPECT_EQ(a.squashed_uops, b.squashed_uops);
  EXPECT_EQ(a.mispredicts_resolved, b.mispredicts_resolved);
  EXPECT_EQ(a.load_l2_misses, b.load_l2_misses);
  EXPECT_EQ(a.iq_pref_stall_events, b.iq_pref_stall_events);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, Determinism,
                         ::testing::ValuesIn(policy::all_policy_kinds()),
                         [](const auto& info) {
                           std::string name{
                               policy::policy_kind_name(info.param)};
                           for (char& c : name) {
                             if (c == '+') c = 'P';
                           }
                           return name;
                         });

// --- IQ size monotonicity: more entries never hurt badly ---

class IqMonotonic : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IqMonotonic, BiggerQueuesDontCollapse) {
  const std::uint64_t seed = GetParam();
  trace::TracePool pool(seed);
  auto throughput_with = [&](int iq) {
    SimConfig config = harness::iq_study_config(iq);
    Simulator sim(config);
    sim.attach_thread(0, pool.get(trace::Category::kMultimedia,
                                  trace::TraceKind::kIlp, 0));
    sim.attach_thread(1, pool.get(trace::Category::kOffice,
                                  trace::TraceKind::kIlp, 1));
    sim.run(15000);
    return sim.stats().throughput();
  };
  // 64-entry queues should never be drastically worse than 32.
  EXPECT_GT(throughput_with(64), 0.8 * throughput_with(32));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IqMonotonic, ::testing::Values(1u, 5u, 9u));

}  // namespace
}  // namespace clusmt::core
