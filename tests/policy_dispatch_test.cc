// Differential coverage for the devirtualized policy/steer dispatch: with
// the sealed per-kind switch (PolicyDispatch, the default) the simulator
// must make exactly the decisions it makes through the virtual
// ResourceAssignmentPolicy interface (the retained oracle), for EVERY
// scheme — including the ones the switch collapses to inline constants.
// Identical decisions imply bit-identical SimStats, which is what is
// asserted, across {2T, SMT4} × {bounded, unbounded register files} on
// squash-heavy traces, and across the sealed steering kinds. A policy
// override added without a matching dispatch case diverges here instead of
// silently skewing results.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/simulator.h"
#include "harness/presets.h"
#include "policy/policy.h"
#include "trace/workload.h"

namespace clusmt::core {
namespace {

/// Field-by-field SimStats equality with a readable failure message.
void expect_stats_equal(const SimStats& a, const SimStats& b,
                        const std::string& label) {
#define CLUSMT_EXPECT_FIELD(field) \
  EXPECT_EQ(a.field, b.field) << label << ": SimStats::" #field " diverged"
  CLUSMT_EXPECT_FIELD(cycles);
  for (int t = 0; t < kMaxThreads; ++t) CLUSMT_EXPECT_FIELD(committed[t]);
  CLUSMT_EXPECT_FIELD(committed_copies);
  CLUSMT_EXPECT_FIELD(committed_branches);
  CLUSMT_EXPECT_FIELD(committed_loads);
  CLUSMT_EXPECT_FIELD(committed_stores);
  CLUSMT_EXPECT_FIELD(renamed_uops);
  CLUSMT_EXPECT_FIELD(copies_created);
  CLUSMT_EXPECT_FIELD(rename_cycles);
  CLUSMT_EXPECT_FIELD(rename_blocked_cycles);
  CLUSMT_EXPECT_FIELD(rename_block_iq);
  CLUSMT_EXPECT_FIELD(rename_block_rf);
  CLUSMT_EXPECT_FIELD(rename_block_rob);
  CLUSMT_EXPECT_FIELD(rename_block_mob);
  CLUSMT_EXPECT_FIELD(iq_pref_stall_events);
  CLUSMT_EXPECT_FIELD(non_preferred_dispatches);
  CLUSMT_EXPECT_FIELD(issued_uops);
  CLUSMT_EXPECT_FIELD(cycles_with_issue);
  CLUSMT_EXPECT_FIELD(squashed_uops);
  CLUSMT_EXPECT_FIELD(branches_resolved);
  CLUSMT_EXPECT_FIELD(mispredicts_resolved);
  CLUSMT_EXPECT_FIELD(policy_flushes);
  CLUSMT_EXPECT_FIELD(load_l2_misses);
  CLUSMT_EXPECT_FIELD(store_l2_misses);
  CLUSMT_EXPECT_FIELD(load_forwards);
#undef CLUSMT_EXPECT_FIELD
}

std::vector<trace::TraceSpec> make_squashy_threads(int num_threads,
                                                   std::uint64_t seed) {
  const trace::TracePool pool(seed);
  std::vector<trace::TraceSpec> threads;
  for (int t = 0; t < num_threads; ++t) {
    trace::TraceSpec spec =
        pool.get(t % 2 == 0 ? trace::Category::kISpec00
                            : trace::Category::kFSpec00,
                 t % 2 == 0 ? trace::TraceKind::kIlp : trace::TraceKind::kMem,
                 t % trace::TracePool::kVariantsPerKind);
    // Squash-heavy: hard-to-predict branches keep recovery (and with it
    // the eligibility/flush queries) permanently busy.
    spec.profile.hard_branch_fraction = 0.5;
    spec.profile.name += "+squashy";
    threads.push_back(std::move(spec));
  }
  return threads;
}

SimStats run_once(const SimConfig& config, bool devirtualized,
                  const std::vector<trace::TraceSpec>& threads) {
  Simulator sim(config);
  sim.set_policy_devirtualized(devirtualized);
  for (std::size_t t = 0; t < threads.size(); ++t) {
    sim.attach_thread(static_cast<ThreadId>(t), threads[t]);
  }
  sim.run(1000);
  sim.reset_stats();
  sim.run(4000);
  EXPECT_TRUE(sim.validate_view());
  return sim.stats();
}

TEST(PolicyDispatchParity, AllSchemesAcrossMachines) {
  struct MachineCase {
    const char* name;
    SimConfig config;
    int threads;
  };
  const MachineCase machines[] = {
      {"bounded-2t", harness::rf_study_config(64), 2},
      {"unbounded-2t", harness::iq_study_config(32), 2},
      {"smt4", harness::smt4_baseline(), 4},
  };

  for (const MachineCase& machine : machines) {
    for (const policy::PolicyKind scheme : policy::all_policy_kinds()) {
      SimConfig config = machine.config;
      config.policy = scheme;
      const auto threads = make_squashy_threads(machine.threads, /*seed=*/5);
      const std::string label =
          std::string(machine.name) + "/" +
          std::string(policy::policy_kind_name(scheme));
      const SimStats sealed = run_once(config, /*devirtualized=*/true,
                                       threads);
      const SimStats virt = run_once(config, /*devirtualized=*/false,
                                     threads);
      expect_stats_equal(sealed, virt, label);
    }
  }
}

TEST(PolicyDispatchParity, SteeringKindsStayDecisionIdentical) {
  // The steering dispatch is sealed too (final class, inline kind switch);
  // exercise each kind under both policy-dispatch modes.
  for (const steer::SteeringKind kind :
       {steer::SteeringKind::kDependenceBalance,
        steer::SteeringKind::kRoundRobin,
        steer::SteeringKind::kLeastLoaded}) {
    SimConfig config = harness::rf_study_config(64);
    config.policy = policy::PolicyKind::kCssp;
    config.steering = kind;
    const auto threads = make_squashy_threads(2, /*seed=*/13);
    const SimStats sealed = run_once(config, /*devirtualized=*/true, threads);
    const SimStats virt = run_once(config, /*devirtualized=*/false, threads);
    expect_stats_equal(sealed, virt,
                       "steering-" + std::to_string(static_cast<int>(kind)));
  }
}

TEST(PolicyDispatchParity, DispatchExposesConfiguredKind) {
  SimConfig config = harness::rf_study_config(64);
  config.policy = policy::PolicyKind::kCdprf;
  Simulator sim(config);
  EXPECT_TRUE(sim.policy_devirtualized());
  EXPECT_EQ(sim.policy().name(), "CDPRF");
  sim.set_policy_devirtualized(false);
  EXPECT_FALSE(sim.policy_devirtualized());
}

}  // namespace
}  // namespace clusmt::core
